// Quickstart: two service classes with target slowdown ratio 1:2 on a
// Bounded Pareto workload, 50% system load — the paper's baseline setup.
//
// Shows the three levels of the API:
//   1. analytic   — eq. 17 rates and eq. 18 expected slowdowns,
//   2. simulation — the full Fig.-1 server with estimator + allocator,
//   3. comparison — achieved vs expected per class.
#include <iostream>

#include "psd.hpp"

int main() {
  using namespace psd;

  // ---------------------------------------------------------------- analytic
  BoundedPareto dist(1.5, 0.1, 100.0);  // paper defaults
  const double load = 0.5;
  const auto lambdas = rates_for_equal_load(load, 1.0, dist.mean(), 2);
  const std::vector<double> delta = {1.0, 2.0};

  PsdInput in;
  in.lambda = lambdas;
  in.delta = delta;
  in.mean_size = dist.mean();
  const auto alloc = allocate_psd_rates(in);
  const auto expected = expected_psd_slowdowns(lambdas, delta, dist);

  std::cout << "Bounded Pareto: E[X]=" << dist.mean()
            << "  E[X^2]=" << dist.second_moment()
            << "  E[1/X]=" << dist.mean_inverse() << "\n\n";
  std::cout << "eq.17 rates:  r1=" << alloc.rate[0] << "  r2=" << alloc.rate[1]
            << "  (sum=" << alloc.rate[0] + alloc.rate[1] << ")\n";
  std::cout << "eq.18 slowdowns:  E[S1]=" << expected[0]
            << "  E[S2]=" << expected[1]
            << "  ratio=" << expected[1] / expected[0] << "\n\n";

  // -------------------------------------------------------------- simulation
  ScenarioConfig cfg;
  cfg.delta = delta;
  cfg.load = load;
  cfg.measure_tu = 20000.0;  // shorter than the paper's 60k for a quick demo
  const auto result = run_replications(cfg, 8);

  // -------------------------------------------------------------- comparison
  Table t({"class", "delta", "S simulated", "S expected", "ratio vs class 1"});
  for (std::size_t i = 0; i < delta.size(); ++i) {
    t.add_row({std::to_string(i + 1), Table::fmt(delta[i], 1),
               Table::fmt(result.slowdown[i].mean),
               Table::fmt(result.expected[i]),
               Table::fmt(result.mean_ratio[i], 3)});
  }
  t.print(std::cout);
  std::cout << "\nsystem slowdown: simulated=" << result.system_slowdown
            << "  expected=" << result.expected_system << "\n";
  std::cout << "completions: " << result.completed_total << " across "
            << result.runs << " runs\n";
  return 0;
}
