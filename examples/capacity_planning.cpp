// Example: analytic capacity planning with the closed forms — no simulation.
//
// Questions a service operator can answer directly from eq. 17 / eq. 18:
//  1. Given traffic and deltas, what rates do my task servers need and what
//     slowdowns will each class see?
//  2. How much total capacity do I need so the premium class stays under a
//     slowdown budget?
//  3. How does the answer move if the workload tail gets heavier?
#include <iostream>

#include "psd.hpp"

int main() {
  using namespace psd;

  BoundedPareto dist(1.5, 0.1, 100.0);
  const std::vector<double> delta = {1.0, 2.0, 4.0};

  // --- question 1: rates and slowdowns at current traffic -----------------
  const auto lambdas = rates_for_load(0.75, 1.0, dist.mean(), {0.2, 0.3, 0.5});
  PsdInput in;
  in.lambda = lambdas;
  in.delta = delta;
  in.mean_size = dist.mean();
  const auto alloc = allocate_psd_rates(in);
  const auto sd = expected_psd_slowdowns(lambdas, delta, dist);

  Table t({"class", "delta", "lambda", "rate (eq.17)", "E[S] (eq.18)"});
  for (std::size_t i = 0; i < delta.size(); ++i) {
    t.add_row(std::vector<double>{static_cast<double>(i + 1), delta[i],
                                  lambdas[i], alloc.rate[i], sd[i]},
              3);
  }
  t.print(std::cout);
  std::cout << "utilization " << Table::fmt(alloc.utilization, 3)
            << ", expected system slowdown "
            << Table::fmt(expected_system_slowdown(lambdas, delta, dist), 2)
            << "\n\n";

  // --- question 2: capacity to meet a premium slowdown budget -------------
  const double budget = 5.0;  // premium class: E[S1] <= 5
  double lo = 0.76, hi = 8.0;  // capacity search bracket (rho<1 needs >0.75)
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto s = expected_psd_slowdowns(lambdas, delta, dist, mid);
    (s[0] > budget ? lo : hi) = mid;
  }
  std::cout << "capacity needed so that E[S1] <= " << budget << ": "
            << Table::fmt(hi, 3) << "x the current server\n";
  const auto sd_hi = expected_psd_slowdowns(lambdas, delta, dist, hi);
  std::cout << "  at that capacity: E[S1]=" << Table::fmt(sd_hi[0], 2)
            << " E[S2]=" << Table::fmt(sd_hi[1], 2)
            << " E[S3]=" << Table::fmt(sd_hi[2], 2) << "\n\n";

  // --- question 3: sensitivity to the workload tail -----------------------
  Table t3({"upper bound p", "E[X^2]", "E[1/X]", "E[S1]", "capacity for "
            "budget"});
  for (double p : {100.0, 1000.0, 10000.0}) {
    BoundedPareto d(1.5, 0.1, p);
    const auto lam = rates_for_load(0.75, 1.0, d.mean(), {0.2, 0.3, 0.5});
    const auto s = expected_psd_slowdowns(lam, delta, d);
    double clo = 0.76, chi = 80.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (clo + chi);
      (expected_psd_slowdowns(lam, delta, d, mid)[0] > budget ? clo : chi) =
          mid;
    }
    t3.add_row(std::vector<double>{p, d.second_moment(), d.mean_inverse(),
                                   s[0], chi},
               3);
  }
  t3.print(std::cout);
  std::cout << "\nHeavier tails inflate E[X^2] and with it every slowdown — "
               "capacity requirements grow accordingly.\n";
  return 0;
}
