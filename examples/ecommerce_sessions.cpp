// Example: session-based e-commerce differentiation (paper §2.2).
//
// A storefront serves two request classes — the transaction path
// (register/buy: class 1, delta 1) and the browsing path (home/browse/
// search: class 2, delta 2).  Sessions walk a state machine; transaction
// states have near-constant service demand (the paper's M/D/1 motivation).
// The PSD allocator keeps the transaction path's slowdown at half the
// browsing path's, whatever the traffic volume does.
#include <iostream>

#include "psd.hpp"

int main() {
  using namespace psd;

  const auto profile = SessionProfile::storefront(/*session_rate=*/0.3);
  std::cout << "storefront session profile:\n";
  const auto visits = profile.expected_visits();
  const char* names[] = {"home", "browse", "search", "register", "buy"};
  for (std::size_t s = 0; s < profile.states.size(); ++s) {
    std::cout << "  " << names[s] << ": expected visits/session "
              << Table::fmt(visits[s], 3) << " -> class "
              << profile.states[s].cls + 1 << "\n";
  }
  const auto rates = profile.class_request_rates(2);
  std::cout << "implied request rates: class1 (transactions) = "
            << Table::fmt(rates[0], 3) << "/tu, class2 (browsing) = "
            << Table::fmt(rates[1], 3) << "/tu\n\n";

  // Per-class service-time mixtures: class 1 = register/buy deterministic
  // mixture, class 2 = home/browse/search (deterministic + Bounded Pareto).
  // These feed the *heterogeneous* PSD allocator — the paper's eq. 17
  // assumes one shared distribution, which session traffic violates.
  const auto mixtures = profile.class_mixtures(2);
  std::cout << "class service-time moments (visit-weighted mixtures):\n";
  for (int c = 0; c < 2; ++c) {
    std::cout << "  class " << c + 1 << ": E[X]="
              << Table::fmt(mixtures[c].mean(), 3)
              << " E[X^2]=" << Table::fmt(mixtures[c].second_moment(), 3)
              << " E[1/X]=" << Table::fmt(mixtures[c].mean_inverse(), 3)
              << "\n";
  }
  std::cout << "\n";

  // --- run the full server on this workload, three session intensities ---
  Table t({"session rate", "class", "completed", "mean slowdown",
           "achieved ratio"});
  for (double session_rate : {0.2, 0.3, 0.4}) {
    Simulator sim;
    auto p = profile;
    p.session_rate = session_rate;

    ServerConfig sc;
    sc.num_classes = 2;
    sc.realloc_period = 500.0;
    sc.metrics.num_classes = 2;
    sc.metrics.warmup_end = 5000.0;
    sc.metrics.window = 500.0;

    Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                  std::make_unique<HeteroPsdAllocator>(
                      std::vector<double>{1.0, 2.0}, mixtures),
                  Rng(11));
    server.start(0.0);
    SessionWorkload sessions(sim, Rng(12), p, server);
    sessions.start(0.0);
    sim.run_until(80000.0);
    server.finalize();

    const double s1 = server.metrics().slowdown(0).mean();
    const double s2 = server.metrics().slowdown(1).mean();
    for (ClassId c = 0; c < 2; ++c) {
      t.add_row({Table::fmt(session_rate, 2), std::to_string(c + 1),
                 std::to_string(server.metrics().completed(c)),
                 Table::fmt(c == 0 ? s1 : s2, 3),
                 c == 1 ? Table::fmt(s2 / s1, 2) : std::string("-")});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe transaction path keeps ~half the browsing slowdown "
               "across session intensities (target ratio 2.0).\n";
  return 0;
}
