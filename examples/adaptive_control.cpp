// Example: the adaptive feedback extension (the paper's future work).
//
// Open-loop eq. 17 acts on class loads only, so windowed slowdown ratios
// wander around the target (Figs. 5-8).  The adaptive allocator feeds the
// measured per-window slowdowns back into effective deltas.
//
// Spoiler (an honest one): on Bounded Pareto traffic the windowed slowdown
// signal is so noisy that feedback holds the long-run target but does NOT
// tighten the short-timescale spread, and aggressive gains hurt — run the
// tables below and see.  The paper's future-work problem is genuinely hard.
#include <iostream>

#include "psd.hpp"

int main() {
  using namespace psd;

  auto base = []() {
    ScenarioConfig cfg;
    cfg.delta = {1.0, 4.0};
    cfg.load = 0.6;
    cfg.warmup_tu = 5000.0;
    cfg.measure_tu = 40000.0;
    cfg.seed = 2024;
    return cfg;
  };

  Table t({"allocator", "gain", "achieved ratio", "windowed p5", "p50", "p95"});
  {
    auto cfg = base();
    const auto r = run_replications(cfg, 24);
    t.add_row({"open-loop eq.17", "-", Table::fmt(r.mean_ratio[1], 2),
               Table::fmt(r.ratio[0].p5, 2), Table::fmt(r.ratio[0].p50, 2),
               Table::fmt(r.ratio[0].p95, 2)});
  }
  for (double gain : {0.2, 0.5}) {
    auto cfg = base();
    cfg.allocator = AllocatorKind::kAdaptivePsd;
    cfg.adaptive.gain = gain;
    const auto r = run_replications(cfg, 24);
    t.add_row({"adaptive", Table::fmt(gain, 1), Table::fmt(r.mean_ratio[1], 2),
               Table::fmt(r.ratio[0].p5, 2), Table::fmt(r.ratio[0].p50, 2),
               Table::fmt(r.ratio[0].p95, 2)});
  }
  t.print(std::cout);

  // --- burstiness stress: does feedback help under non-Poisson traffic? ---
  std::cout << "\nunder bursty (MMPP) arrivals, burstiness 4x:\n";
  Table t2({"allocator", "achieved ratio", "windowed p5", "p95"});
  for (int adaptive = 0; adaptive < 2; ++adaptive) {
    auto cfg = base();
    cfg.arrivals = ArrivalKind::kBursty;
    cfg.burstiness = 4.0;
    if (adaptive) {
      cfg.allocator = AllocatorKind::kAdaptivePsd;
      cfg.adaptive.gain = 0.3;
    }
    const auto r = run_replications(cfg, 24);
    t2.add_row({adaptive ? "adaptive (gain 0.3)" : "open-loop eq.17",
                Table::fmt(r.mean_ratio[1], 2), Table::fmt(r.ratio[0].p5, 2),
                Table::fmt(r.ratio[0].p95, 2)});
  }
  t2.print(std::cout);
  return 0;
}
