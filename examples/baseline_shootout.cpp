// Example: why delay-oriented schedulers cannot deliver PSD (paper §5).
//
// All policies see the *same* recorded arrival trace, so differences are
// purely scheduling.  The PSD allocator pins the slowdown ratio; WTP (a
// proportional *delay* scheduler) controls delay spacing instead, and
// equal-share controls nothing.
#include <iostream>

#include "psd.hpp"

int main() {
  using namespace psd;

  const std::vector<double> delta = {1.0, 2.0};
  auto cfg = [&](BackendKind backend, AllocatorKind alloc) {
    ScenarioConfig c;
    c.delta = delta;
    c.load = 0.7;
    c.warmup_tu = 5000.0;
    c.measure_tu = 40000.0;
    c.backend = backend;
    c.allocator = alloc;
    c.seed = 777;  // identical arrival streams across policies
    return c;
  };

  struct Policy {
    const char* label;
    BackendKind backend;
    AllocatorKind alloc;
  };
  const Policy policies[] = {
      {"psd-eq17 (paper)", BackendKind::kDedicated, AllocatorKind::kPsd},
      {"adaptive psd", BackendKind::kDedicated, AllocatorKind::kAdaptivePsd},
      {"equal-share", BackendKind::kDedicated, AllocatorKind::kEqualShare},
      {"wtp delay scheduler", BackendKind::kWtp, AllocatorKind::kNone},
      {"hpd delay scheduler", BackendKind::kHpd, AllocatorKind::kNone},
      {"strict priority", BackendKind::kStrict, AllocatorKind::kNone},
  };

  std::cout << "two classes, deltas (1,2), 70% load, identical seeds\n"
            << "target SLOWDOWN ratio = 2.0; WTP/HPD instead target the "
               "DELAY ratio\n\n";
  Table t({"policy", "S1", "S2", "slowdown ratio", "D1", "D2", "delay ratio"});
  for (const auto& p : policies) {
    const auto c = cfg(p.backend, p.alloc);
    // Single long run (same seed!) so arrival streams are identical.
    const auto r = run_scenario(c, 0);
    const double s1 = r.cls[0].mean_slowdown;
    const double s2 = r.cls[1].mean_slowdown;
    const double d1 = r.cls[0].mean_delay;
    const double d2 = r.cls[1].mean_delay;
    t.add_row({p.label, Table::fmt(s1, 2), Table::fmt(s2, 2),
               Table::fmt(s2 / s1, 2), Table::fmt(d1, 2), Table::fmt(d2, 2),
               Table::fmt(d2 / d1, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: only the PSD allocators put the SLOWDOWN ratio near 2.\n"
         "WTP/HPD move the DELAY ratio toward 2 — which is their goal — but\n"
         "slowdown mixes in service times they never observe (paper §5).\n";
  return 0;
}
