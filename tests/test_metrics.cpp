// MetricsCollector: warmup cutoff, per-window series, recording, weighting.
#include <gtest/gtest.h>

#include <cmath>

#include "server/metrics.hpp"

namespace psd {
namespace {

Request completed_req(ClassId cls, Time arrival, Time start, Time depart) {
  Request r;
  r.cls = cls;
  r.arrival = arrival;
  r.service_start = start;
  r.departure = depart;
  r.service_elapsed = depart - start;
  return r;
}

MetricsConfig base_cfg() {
  MetricsConfig c;
  c.num_classes = 2;
  c.warmup_end = 100.0;
  c.window = 50.0;
  return c;
}

TEST(Metrics, WarmupCompletionsIgnored) {
  MetricsCollector m(base_cfg());
  m.on_complete(completed_req(0, 10.0, 20.0, 30.0));  // before warmup end
  EXPECT_EQ(m.completed(0), 0u);
  m.on_complete(completed_req(0, 90.0, 100.0, 110.0));  // departs after
  EXPECT_EQ(m.completed(0), 1u);
}

TEST(Metrics, SlowdownAndDelayMoments) {
  MetricsCollector m(base_cfg());
  // delay 8, service 2 -> slowdown 4.
  m.on_complete(completed_req(0, 100.0, 108.0, 110.0));
  // delay 1, service 1 -> slowdown 1.
  m.on_complete(completed_req(0, 110.0, 111.0, 112.0));
  EXPECT_DOUBLE_EQ(m.slowdown(0).mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.delay(0).mean(), 4.5);
  EXPECT_DOUBLE_EQ(m.service(0).mean(), 1.5);
}

TEST(Metrics, SystemSlowdownIsCompletionWeighted) {
  MetricsCollector m(base_cfg());
  // class 0: two completions with slowdown 1.
  m.on_complete(completed_req(0, 100.0, 101.0, 102.0));
  m.on_complete(completed_req(0, 102.0, 103.0, 104.0));
  // class 1: one completion with slowdown 4 (delay 4, service 1).
  m.on_complete(completed_req(1, 104.0, 108.0, 109.0));
  EXPECT_DOUBLE_EQ(m.system_slowdown(), (1.0 * 2 + 4.0 * 1) / 3.0);
  EXPECT_EQ(m.completed_total(), 3u);
}

TEST(Metrics, WindowSeriesRollsAtWindowLength) {
  MetricsCollector m(base_cfg());  // windows of 50 starting at 100
  m.on_complete(completed_req(0, 100.0, 110.0, 120.0));  // window 0
  m.on_complete(completed_req(0, 120.0, 130.0, 160.0));  // window 1
  m.on_complete(completed_req(0, 160.0, 170.0, 210.0));  // window 2
  m.finalize();
  const auto& w = m.windows(0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0].start, 100.0);
  EXPECT_EQ(w[0].count, 1u);
  EXPECT_DOUBLE_EQ(w[1].start, 150.0);
}

TEST(Metrics, RecordingWindowFilter) {
  auto cfg = base_cfg();
  cfg.record_requests = true;
  cfg.record_from = 200.0;
  cfg.record_to = 300.0;
  MetricsCollector m(cfg);
  m.on_complete(completed_req(0, 150.0, 160.0, 170.0));  // outside
  m.on_complete(completed_req(1, 200.0, 210.0, 250.0));  // inside
  m.on_complete(completed_req(0, 290.0, 295.0, 300.0));  // at upper edge: out
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_EQ(m.records()[0].cls, 1u);
}

TEST(Metrics, LastWindowSlowdownsNaNWhenSilent) {
  MetricsCollector m(base_cfg());
  m.on_complete(completed_req(0, 100.0, 110.0, 120.0));
  // Window for class 0 still open, class 1 never completed anything.
  m.on_complete(completed_req(0, 140.0, 150.0, 160.0));  // closes window 0
  const auto sd = m.last_window_slowdowns();
  EXPECT_FALSE(std::isnan(sd[0]));
  EXPECT_TRUE(std::isnan(sd[1]));
}

TEST(Metrics, RejectsBadInput) {
  MetricsCollector m(base_cfg());
  EXPECT_THROW(m.on_complete(completed_req(5, 100.0, 101.0, 102.0)),
               std::invalid_argument);
  Request incomplete;
  incomplete.cls = 0;
  EXPECT_THROW(m.on_complete(incomplete), std::logic_error);
}

TEST(Metrics, ZeroDelayRequestsHaveZeroSlowdown) {
  MetricsCollector m(base_cfg());
  m.on_complete(completed_req(0, 100.0, 100.0, 105.0));
  EXPECT_DOUBLE_EQ(m.slowdown(0).mean(), 0.0);
}

}  // namespace
}  // namespace psd
