// Runtime allocator adapters: PSD (eq. 17), baselines, overload clamping.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/static_allocators.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "workload/class_spec.hpp"

namespace psd {
namespace {

PsdAllocatorConfig paper_cfg() {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdAllocatorConfig c;
  c.delta = {1.0, 2.0};
  c.capacity = 1.0;
  c.mean_size = bp.mean();
  return c;
}

TEST(PsdRateAllocator, MatchesClosedFormOnTrueLambdas) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  auto cfg = paper_cfg();
  cfg.min_residual_share = 0.0;
  PsdRateAllocator alloc(cfg);
  const auto lam = rates_for_equal_load(0.5, 1.0, bp.mean(), 2);
  const auto rates = alloc.allocate(lam);
  PsdInput in;
  in.lambda = lam;
  in.delta = cfg.delta;
  in.mean_size = cfg.mean_size;
  in.min_residual_share = 0.0;
  const auto direct = allocate_psd_rates(in);
  EXPECT_NEAR(rates[0], direct.rate[0], 1e-12);
  EXPECT_NEAR(rates[1], direct.rate[1], 1e-12);
  EXPECT_EQ(alloc.name(), "psd-eq17");
}

TEST(PsdRateAllocator, AlwaysFeasibleUnderEstimatorSpikes) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdRateAllocator alloc(paper_cfg());
  // Estimate spike: 5x the capacity.
  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 2);
  const std::vector<double> spike = {lam[0] * 5, lam[1] * 5};
  const auto rates = alloc.allocate(spike);
  EXPECT_NEAR(std::accumulate(rates.begin(), rates.end(), 0.0), 1.0, 1e-9);
  EXPECT_EQ(alloc.clamp_events(), 1u);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

TEST(PsdRateAllocator, ColdStartZeroEstimatesSplitEvenly) {
  PsdRateAllocator alloc(paper_cfg());
  const auto rates = alloc.allocate({0.0, 0.0});
  EXPECT_NEAR(rates[0], 0.5, 1e-12);
  EXPECT_NEAR(rates[1], 0.5, 1e-12);
}

TEST(PsdRateAllocator, RejectsSizeMismatch) {
  PsdRateAllocator alloc(paper_cfg());
  EXPECT_THROW(alloc.allocate({1.0}), std::invalid_argument);
}

TEST(PsdRateAllocator, RejectsBadConfig) {
  auto bad = paper_cfg();
  bad.delta.clear();
  EXPECT_THROW(PsdRateAllocator{bad}, std::invalid_argument);
  bad = paper_cfg();
  bad.mean_size = 0.0;
  EXPECT_THROW(PsdRateAllocator{bad}, std::invalid_argument);
}

TEST(EqualShare, ConstantRegardlessOfLoad) {
  EqualShareAllocator alloc(4, 2.0);
  const auto r1 = alloc.allocate({0.0, 0.0, 0.0, 0.0});
  const auto r2 = alloc.allocate({5.0, 0.1, 2.0, 9.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r1[i], 0.5);
    EXPECT_DOUBLE_EQ(r2[i], 0.5);
  }
  EXPECT_EQ(alloc.name(), "equal-share");
}

TEST(LoadProportional, TracksWorkDemand) {
  LoadProportionalAllocator alloc(2, 1.0, 0.5);
  const auto r = alloc.allocate({3.0, 1.0});
  EXPECT_NEAR(r[0], 0.75, 1e-9);
  EXPECT_NEAR(r[1], 0.25, 1e-9);
}

TEST(LoadProportional, ZeroTotalFallsBackToEqual) {
  LoadProportionalAllocator alloc(2, 1.0, 0.5);
  const auto r = alloc.allocate({0.0, 0.0});
  EXPECT_DOUBLE_EQ(r[0], 0.5);
}

TEST(LoadProportional, IdleClassKeepsTrickle) {
  LoadProportionalAllocator alloc(2, 1.0, 0.5);
  const auto r = alloc.allocate({4.0, 0.0});
  EXPECT_GT(r[1], 0.0);
  EXPECT_NEAR(r[0] + r[1], 1.0, 1e-9);
}

TEST(FixedRate, ReturnsPinnedRates) {
  FixedRateAllocator alloc({0.7, 0.3});
  const auto r = alloc.allocate({9.0, 9.0});
  EXPECT_DOUBLE_EQ(r[0], 0.7);
  EXPECT_DOUBLE_EQ(r[1], 0.3);
  EXPECT_THROW(FixedRateAllocator({0.5, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace psd
