// Campaign engine: grid expansion/dedup, content hashing, seed derivation,
// JSONL schema and byte-determinism across thread counts, resume-by-key,
// cluster-axis execution.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "sweep/campaign.hpp"
#include "sweep/grid.hpp"
#include "sweep/jsonl.hpp"

namespace psd {
namespace {

GridSpec tiny_grid() {
  GridSpec grid;
  grid.base.warmup_tu = 200.0;
  grid.base.measure_tu = 1500.0;
  grid.loads = {0.3, 0.6};
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq};
  return grid;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Grid, ExpansionCrossesAxesLoadsFastest) {
  const auto points = expand_grid(tiny_grid());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].cfg.backend, BackendKind::kDedicated);
  EXPECT_DOUBLE_EQ(points[0].cfg.load, 0.3);
  EXPECT_DOUBLE_EQ(points[1].cfg.load, 0.6);
  EXPECT_EQ(points[2].cfg.backend, BackendKind::kSfq);
  EXPECT_DOUBLE_EQ(points[2].cfg.load, 0.3);
}

TEST(Grid, EmptyAxesFallBackToBaseConfig) {
  GridSpec grid;
  grid.base.load = 0.42;
  const auto points = expand_grid(grid);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].cfg.load, 0.42);
  EXPECT_EQ(points[0].cfg.backend, grid.base.backend);
}

TEST(Grid, DuplicateAxisValuesCollapse) {
  auto grid = tiny_grid();
  grid.loads = {0.3, 0.6, 0.3, 0.6, 0.3};
  grid.backends = {BackendKind::kDedicated, BackendKind::kDedicated};
  const auto points = expand_grid(grid);
  EXPECT_EQ(points.size(), 2u);
}

TEST(Grid, InvalidPointFailsExpansion) {
  auto grid = tiny_grid();
  grid.loads = {0.3, 1.5};
  EXPECT_THROW(expand_grid(grid), std::invalid_argument);
}

TEST(Grid, KeyIgnoresSeedButTracksContent) {
  ScenarioConfig a;
  ScenarioConfig b;
  b.seed = a.seed + 1;
  EXPECT_EQ(config_key(a), config_key(b));  // seed is not identity

  b = a;
  b.load = a.load + 0.1;
  EXPECT_NE(config_key(a), config_key(b));
  b = a;
  b.backend = BackendKind::kSfq;
  EXPECT_NE(config_key(a), config_key(b));
  b = a;
  b.cluster_nodes = 4;
  EXPECT_NE(config_key(a), config_key(b));
  b = a;
  b.size_dist = DistSpec::bounded_pareto(1.5, 0.1, 1000.0);
  EXPECT_NE(config_key(a), config_key(b));
}

TEST(Grid, KeyNormalizesFieldsTheMachineryNeverReads) {
  ScenarioConfig a;  // dedicated backend, psd allocator, one node
  ScenarioConfig b = a;
  b.lottery_quantum_tu = 99.0;  // unread off the lottery backend
  EXPECT_EQ(config_key(a), config_key(b));
  b = a;
  b.adaptive.gain = 0.9;  // unread off the adaptive allocator
  EXPECT_EQ(config_key(a), config_key(b));
  b = a;
  b.cluster_policy = AssignmentPolicy::kLeastWorkLeft;  // unread on 1 node
  EXPECT_EQ(config_key(a), config_key(b));
  b = a;
  b.burstiness = 5.0;  // unread off bursty arrivals
  EXPECT_EQ(config_key(a), config_key(b));
  b = a;
  b.backend = BackendKind::kSfq;
  b.rate_change = RateChangePolicy::kFinishAtOldRate;  // dedicated-only
  EXPECT_EQ(config_key(b), [&] {
    auto c = b;
    c.rate_change = RateChangePolicy::kRescaleRemaining;
    return config_key(c);
  }());

  // ...but each field counts when its machinery is selected.
  b = a;
  b.backend = BackendKind::kLottery;
  auto c = b;
  c.lottery_quantum_tu = 99.0;
  EXPECT_NE(config_key(b), config_key(c));
  b = a;
  b.rate_change = RateChangePolicy::kFinishAtOldRate;  // on dedicated
  EXPECT_NE(config_key(a), config_key(b));
}

TEST(Grid, PointSeedDependsOnMasterAndContent) {
  ScenarioConfig a;
  ScenarioConfig b;
  b.load = a.load + 0.1;
  EXPECT_NE(derive_point_seed(42, a), derive_point_seed(42, b));
  EXPECT_NE(derive_point_seed(42, a), derive_point_seed(43, a));
  EXPECT_EQ(derive_point_seed(42, a), derive_point_seed(42, a));
}

TEST(Json, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_array({1.0, 0.5, std::nan("")}), "[1,0.5,null]");
}

TEST(Json, StringsEscape) {
  EXPECT_EQ(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ObjectBuilds) {
  const auto s = JsonObject()
                     .field("a", 1.5)
                     .field("b", std::uint64_t{7})
                     .field("c", "x")
                     .field_bool("d", true)
                     .raw("e", "[1,2]")
                     .str();
  EXPECT_EQ(s, "{\"a\":1.5,\"b\":7,\"c\":\"x\",\"d\":true,\"e\":[1,2]}");
}

TEST(Campaign, ByteIdenticalAcrossThreadCounts) {
  TempFile f1("test_sweep_threads1.jsonl");
  TempFile f4("test_sweep_threads4.jsonl");
  CampaignOptions opt;
  opt.runs = 3;
  opt.master_seed = 7;
  opt.threads = 1;
  opt.jsonl_path = f1.path;
  const auto r1 = run_campaign(tiny_grid(), opt);
  opt.threads = 4;
  opt.jsonl_path = f4.path;
  const auto r4 = run_campaign(tiny_grid(), opt);

  EXPECT_EQ(r1.executed, 4u);
  EXPECT_EQ(r4.executed, 4u);
  const auto bytes1 = read_file(f1.path);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, read_file(f4.path));

  // And the in-memory aggregates match bitwise.
  for (std::size_t i = 0; i < r1.points.size(); ++i) {
    ASSERT_EQ(r1.points[i].point.key, r4.points[i].point.key);
    const auto& a = r1.points[i].result;
    const auto& b = r4.points[i].result;
    for (std::size_t c = 0; c < a.slowdown.size(); ++c) {
      EXPECT_DOUBLE_EQ(a.slowdown[c].mean, b.slowdown[c].mean);
      EXPECT_DOUBLE_EQ(a.slowdown[c].half_width, b.slowdown[c].half_width);
    }
    EXPECT_EQ(a.completed_total, b.completed_total);
  }
}

TEST(Campaign, RerunSkipsCompletedPoints) {
  TempFile f("test_sweep_resume.jsonl");
  CampaignOptions opt;
  opt.runs = 2;
  opt.jsonl_path = f.path;
  const auto first = run_campaign(tiny_grid(), opt);
  EXPECT_EQ(first.executed, 4u);
  EXPECT_EQ(first.skipped, 0u);
  const auto bytes = read_file(f.path);

  const auto second = run_campaign(tiny_grid(), opt);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.skipped, 4u);
  for (const auto& p : second.points) EXPECT_TRUE(p.skipped);
  EXPECT_EQ(read_file(f.path), bytes);  // nothing appended

  // A grown grid only runs the new points.
  auto grid = tiny_grid();
  grid.loads.push_back(0.8);
  const auto third = run_campaign(grid, opt);
  EXPECT_EQ(third.executed, 2u);  // one new load x two backends
  EXPECT_EQ(third.skipped, 4u);
}

TEST(Campaign, DifferentMasterSeedDoesNotResume) {
  TempFile f("test_sweep_seedmix.jsonl");
  CampaignOptions opt;
  opt.runs = 2;
  opt.jsonl_path = f.path;
  opt.master_seed = 1;
  (void)run_campaign(tiny_grid(), opt);
  opt.master_seed = 2;
  const auto r = run_campaign(tiny_grid(), opt);
  EXPECT_EQ(r.executed, 4u);  // other seed's records are not ours
  EXPECT_EQ(r.skipped, 0u);
}

TEST(Campaign, NoResumeTruncatesAndRerunsEverything) {
  TempFile f("test_sweep_noresume.jsonl");
  CampaignOptions opt;
  opt.runs = 2;
  opt.jsonl_path = f.path;
  (void)run_campaign(tiny_grid(), opt);
  const auto bytes = read_file(f.path);
  opt.resume = false;
  const auto r = run_campaign(tiny_grid(), opt);
  EXPECT_EQ(r.executed, 4u);
  // The artifact was truncated, not appended to: one record per key.
  EXPECT_EQ(read_file(f.path), bytes);
}

TEST(Campaign, RecordCarriesSchemaFields) {
  CampaignOptions opt;
  opt.runs = 2;
  const auto r = run_campaign(tiny_grid(), opt);
  ASSERT_EQ(r.points.size(), 4u);
  const auto& rec = r.points[0].record;
  for (const char* field :
       {"\"type\":\"point\"", "\"schema\":1", "\"key\":\"", "\"master_seed\":",
        "\"point_seed\":", "\"delta\":[1,2]", "\"load\":", "\"backend\":",
        "\"allocator\":", "\"dist\":", "\"runs\":2", "\"slowdown\":[",
        "\"expected\":[", "\"mean_ratio\":", "\"target_ratio\":[1,2]",
        "\"achieved_over_target\":", "\"ratio_windows\":[", "\"completed\":"}) {
    EXPECT_NE(rec.find(field), std::string::npos) << "missing " << field;
  }
  // Timing is opt-in: default records stay byte-deterministic.
  EXPECT_EQ(rec.find("\"wall_ms\""), std::string::npos);
}

TEST(Campaign, TimingFieldIsOptIn) {
  CampaignOptions opt;
  opt.runs = 1;
  opt.timing = true;
  GridSpec grid = tiny_grid();
  grid.backends = {BackendKind::kDedicated};
  grid.loads = {0.3};
  const auto r = run_campaign(grid, opt);
  EXPECT_NE(r.points[0].record.find("\"wall_ms\""), std::string::npos);
}

TEST(Campaign, SharedPoolServesMultipleCampaigns) {
  WorkStealingPool pool(2);
  CampaignOptions opt;
  opt.runs = 2;
  auto grid = tiny_grid();
  grid.backends = {BackendKind::kDedicated};
  const auto a = run_campaign(grid, opt, &pool);
  grid.backends = {BackendKind::kSfq};
  const auto b = run_campaign(grid, opt, &pool);
  EXPECT_EQ(a.executed, 2u);
  EXPECT_EQ(b.executed, 2u);
  EXPECT_EQ(a.threads, 2u);
  // Per-campaign busy time is a delta, not the pool's lifetime total.
  EXPECT_GE(a.pool_busy_seconds, 0.0);
  EXPECT_GE(b.pool_busy_seconds, 0.0);
  EXPECT_EQ(pool.stats().executed, 8u);
}

TEST(Campaign, OnPointFiresInExpansionOrder) {
  CampaignOptions opt;
  opt.runs = 2;
  opt.threads = 4;  // completion order is scrambled; release order is not
  std::vector<std::string> seen;
  const auto r = run_campaign(tiny_grid(), opt, nullptr,
                              [&](const PointOutcome& p) {
                                seen.push_back(p.point.key);
                              });
  ASSERT_EQ(seen.size(), r.points.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], r.points[i].point.key);
  }
}

TEST(Campaign, ClusterAxisRunsMultiNodePoints) {
  GridSpec grid;
  grid.base.warmup_tu = 200.0;
  grid.base.measure_tu = 1500.0;
  grid.loads = {0.5};
  grid.cluster_nodes = {1, 2};
  grid.cluster_policies = {AssignmentPolicy::kRoundRobin};
  CampaignOptions opt;
  opt.runs = 2;
  const auto r = run_campaign(grid, opt);
  ASSERT_EQ(r.points.size(), 2u);
  for (const auto& p : r.points) {
    EXPECT_GT(p.result.completed_total, 0u);
    EXPECT_NE(p.record.find("\"nodes\":"), std::string::npos);
  }
  // Two nodes at the same per-node load complete about twice the work.
  EXPECT_GT(r.points[1].result.completed_total,
            r.points[0].result.completed_total);
}

TEST(Campaign, FailedPointStillPersistsTheOthers) {
  // lottery_quantum_tu == 0 passes validate() but throws when the lottery
  // backend is constructed inside run_scenario — a runtime-only failure.
  // The dedicated points must still aggregate, stream to the JSONL, and be
  // resumable; the campaign reports the failure afterwards.
  TempFile f("test_sweep_partial.jsonl");
  GridSpec grid = tiny_grid();
  grid.base.lottery_quantum_tu = 0.0;
  grid.backends = {BackendKind::kDedicated, BackendKind::kLottery};
  CampaignOptions opt;
  opt.runs = 2;
  opt.jsonl_path = f.path;
  EXPECT_THROW(run_campaign(grid, opt), std::runtime_error);
  EXPECT_EQ(load_completed_keys(f.path, opt.master_seed).size(), 2u);

  // Fixing the config reruns only the failed points (new content = new key).
  grid.base.lottery_quantum_tu = 1.0;
  const auto r = run_campaign(grid, opt);
  EXPECT_EQ(r.executed, 2u);  // the two lottery points
  EXPECT_EQ(r.skipped, 2u);   // the two dedicated points resume
}

TEST(Cluster, WindowSeriesMergesOntoOneTimeGrid) {
  // Multi-node runs merge per-node window series index-wise (shared grid),
  // they do not concatenate them — otherwise class-0/class-j ratio pairing
  // would cross node and time boundaries.
  ScenarioConfig cfg;
  cfg.warmup_tu = 200.0;
  cfg.measure_tu = 1500.0;
  cfg.window_tu = 250.0;
  cfg.cluster_nodes = 3;
  const auto r = run_scenario(cfg, 0);
  // 1500 tu / 250 tu = 6 windows (+1 partial); 3 concatenated nodes would
  // give ~18.
  for (const auto& c : r.cls) {
    EXPECT_LE(c.windows.size(), 8u);
    for (std::size_t w = 1; w < c.windows.size(); ++w) {
      if (c.windows[w].count > 0 && c.windows[w - 1].count > 0) {
        EXPECT_GT(c.windows[w].start, c.windows[w - 1].start);
      }
    }
  }
}

TEST(Cluster, RunScenarioIsDeterministicAcrossPolicies) {
  for (auto policy :
       {AssignmentPolicy::kRandom, AssignmentPolicy::kRoundRobin,
        AssignmentPolicy::kLeastWorkLeft, AssignmentPolicy::kSizeInterval}) {
    ScenarioConfig cfg;
    cfg.warmup_tu = 200.0;
    cfg.measure_tu = 1500.0;
    cfg.cluster_nodes = 3;
    cfg.cluster_policy = policy;
    const auto a = run_scenario(cfg, 1);
    const auto b = run_scenario(cfg, 1);
    EXPECT_EQ(a.submitted, b.submitted);
    ASSERT_EQ(a.cls.size(), b.cls.size());
    for (std::size_t i = 0; i < a.cls.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.cls[i].mean_slowdown, b.cls[i].mean_slowdown);
      EXPECT_EQ(a.cls[i].completed, b.cls[i].completed);
    }
  }
}

TEST(Cluster, SitaPolicyRequiresBoundedPareto) {
  ScenarioConfig cfg;
  cfg.cluster_nodes = 2;
  cfg.cluster_policy = AssignmentPolicy::kSizeInterval;
  cfg.size_dist = DistSpec::deterministic(1.0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Jsonl, LoaderIgnoresForeignAndMalformedLines) {
  TempFile f("test_sweep_loader.jsonl");
  {
    std::ofstream out(f.path);
    out << "{\"key\":\"aaaa\",\"master_seed\":42}\n";
    out << "{\"key\":\"bbbb\",\"master_seed\":421}\n";  // prefix, not 42
    out << "not json at all\n";
    out << "{\"master_seed\":42}\n";  // no key
    out << "{\"key\":\"cccc\",\"master_seed\":7}\n";
  }
  const auto keys = load_completed_keys(f.path, 42);
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_TRUE(keys.count("aaaa"));
  EXPECT_TRUE(load_completed_keys("does_not_exist.jsonl", 42).empty());
}

}  // namespace
}  // namespace psd
