// The sealed sampler layer: ziggurat exactness, alias-table correctness,
// cached inverse transforms vs the legacy samplers, value-copy determinism,
// and — the tentpole property — zero heap allocations per sample on the
// steady-state path.
//
// Like tests/test_event_core.cpp, this binary overrides global operator
// new/delete with a counting hook armed only inside explicit regions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "dist/alias_table.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/sampler.hpp"
#include "dist/uniform.hpp"
#include "dist/ziggurat.hpp"
#include "stats/online.hpp"
#include "workload/arrival.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

struct AllocationCounter {
  AllocationCounter() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_allocs.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace psd {
namespace {

// ---- ziggurat exponential --------------------------------------------------

TEST(Ziggurat, MomentsMatchExpOne) {
  Rng rng(101);
  OnlineMoments m, m2;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = ziggurat_exponential(rng);
    ASSERT_GE(x, 0.0);
    m.add(x);
    m2.add(x * x);
  }
  // Exp(1): E[X] = 1 (se ~ 1/sqrt(n) = 1.6e-3), E[X^2] = 2
  // (se = sqrt(E[X^4]-4)/sqrt(n) = sqrt(20)/632 ~ 7e-3); 5-sigma bounds.
  EXPECT_NEAR(m.mean(), 1.0, 0.008);
  EXPECT_NEAR(m2.mean(), 2.0, 0.036);
  EXPECT_NEAR(m.variance(), 1.0, 0.05);  // scv == 1
}

TEST(Ziggurat, QuantilesMatchExpOneIncludingTail) {
  // CDF spot checks, including the rare tail branch beyond R ~ 7.697.
  Rng rng(102);
  const int n = 1000000;
  int below_ln2 = 0, below_one = 0, beyond_r = 0;
  const double r = 7.69711747013104972;
  for (int i = 0; i < n; ++i) {
    const double x = ziggurat_exponential(rng);
    below_ln2 += (x < 0.6931471805599453);
    below_one += (x < 1.0);
    beyond_r += (x > r);
  }
  EXPECT_NEAR(below_ln2 / static_cast<double>(n), 0.5, 0.003);
  EXPECT_NEAR(below_one / static_cast<double>(n), 1.0 - std::exp(-1.0), 0.003);
  // P(X > R) = e^-R ~ 4.53e-4: expect ~453 hits, 5 sigma ~ 107.
  EXPECT_NEAR(beyond_r / static_cast<double>(n), std::exp(-r), 1.1e-4);
  EXPECT_GT(beyond_r, 0);  // the tail branch actually runs
}

TEST(Ziggurat, RateScalingGivesRequestedMean) {
  Rng rng(103);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(ziggurat_exponential(rng, 4.0));
  EXPECT_NEAR(m.mean(), 0.25, 0.005);
}

TEST(ZigguratSampler, MatchesLegacyExponentialMoments) {
  const Exponential legacy(2.0);
  const ExponentialSampler fast(2.0);
  EXPECT_DOUBLE_EQ(fast.mean(), legacy.mean());
  EXPECT_DOUBLE_EQ(fast.second_moment(), legacy.second_moment());
  EXPECT_THROW(fast.mean_inverse(), std::domain_error);
  Rng rng(104);
  OnlineMoments m;
  for (int i = 0; i < 300000; ++i) m.add(fast.sample(rng));
  EXPECT_NEAR(m.mean(), 2.0, 0.02);
  EXPECT_NEAR(m.variance(), 4.0, 0.15);
}

// ---- alias table -----------------------------------------------------------

TEST(AliasTable, FrequenciesMatchWeights) {
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(105);
  std::vector<int> hits(w.size(), 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++hits[t.pick(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(n), w[i] / 10.0, 0.005)
        << "bucket " << i;
  }
}

TEST(AliasTable, ZeroWeightBucketsNeverDrawn) {
  AliasTable t({0.0, 1.0, 0.0, 3.0});
  Rng rng(106);
  for (int i = 0; i < 100000; ++i) {
    const std::size_t k = t.pick(rng);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(AliasTable, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

// ---- empirical sampler -----------------------------------------------------

TEST(EmpiricalSampler, UniformWeightsMatchLegacyMoments) {
  const std::vector<double> values = {1.0, 2.0, 4.0};
  const Empirical legacy(values);
  const EmpiricalSampler fast(values);
  EXPECT_DOUBLE_EQ(fast.mean(), legacy.mean());
  EXPECT_DOUBLE_EQ(fast.second_moment(), legacy.second_moment());
  EXPECT_DOUBLE_EQ(fast.mean_inverse(), legacy.mean_inverse());
  EXPECT_DOUBLE_EQ(fast.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(fast.max_value(), 4.0);
  Rng rng(107);
  for (int i = 0; i < 1000; ++i) {
    const double x = fast.sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 4.0);
  }
}

TEST(EmpiricalSampler, WeightedResamplingMatchesWeights) {
  const EmpiricalSampler e({1.0, 2.0, 4.0}, {1.0, 1.0, 2.0});
  // Weighted moments: (1 + 2 + 2*4) / 4.
  EXPECT_DOUBLE_EQ(e.mean(), 11.0 / 4.0);
  EXPECT_DOUBLE_EQ(e.mean_inverse(), (1.0 + 0.5 + 2.0 * 0.25) / 4.0);
  Rng rng(108);
  int fours = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) fours += (e.sample(rng) == 4.0);
  EXPECT_NEAR(fours / static_cast<double>(n), 0.5, 0.01);
}

TEST(EmpiricalSampler, SampleMomentsConvergeToTableMoments) {
  const EmpiricalSampler e({0.5, 1.5, 2.5, 8.0}, {4.0, 2.0, 1.0, 1.0});
  Rng rng(109);
  OnlineMoments m, inv;
  for (int i = 0; i < 300000; ++i) {
    const double x = e.sample(rng);
    m.add(x);
    inv.add(1.0 / x);
  }
  EXPECT_NEAR(m.mean() / e.mean(), 1.0, 0.02);
  EXPECT_NEAR(inv.mean() / e.mean_inverse(), 1.0, 0.02);
}

// ---- mixture sampler -------------------------------------------------------

TEST(MixtureSampler, MomentsAndPickFrequencies) {
  std::vector<MixtureComponent> comps;
  comps.push_back({1.0, DeterministicSampler(1.0)});
  comps.push_back({3.0, DeterministicSampler(2.0)});
  const MixtureSampler m{std::move(comps)};
  EXPECT_DOUBLE_EQ(m.mean(), 0.25 * 1.0 + 0.75 * 2.0);
  EXPECT_DOUBLE_EQ(m.second_moment(), 0.25 * 1.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(m.mean_inverse(), 0.25 * 1.0 + 0.75 * 0.5);
  Rng rng(110);
  int ones = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ones += (m.sample(rng) == 1.0);
  EXPECT_NEAR(ones / static_cast<double>(n), 0.25, 0.01);
}

// ---- cached inverse transforms vs legacy -----------------------------------

TEST(BoundedParetoSampler, MatchesLegacyInverseTransformOnSameStream) {
  // Same uniform stream through both implementations: the cached fast paths
  // (reciprocal / rsqrt / rcbrt for alpha 1, 2, 1.5) must agree with the
  // legacy pow() inverse CDF to floating-point rounding.
  for (double alpha : {1.0, 1.5, 2.0, 2.7}) {
    const BoundedPareto legacy(alpha, 0.1, 100.0);
    const BoundedParetoSampler fast(alpha, 0.1, 100.0);
    EXPECT_DOUBLE_EQ(fast.mean(), legacy.mean());
    EXPECT_DOUBLE_EQ(fast.second_moment(), legacy.second_moment());
    EXPECT_DOUBLE_EQ(fast.mean_inverse(), legacy.mean_inverse());
    Rng ra(111), rb(111);
    for (int i = 0; i < 20000; ++i) {
      const double a = legacy.sample(ra);
      const double b = fast.sample(rb);
      EXPECT_NEAR(b, a, 1e-12 * a) << "alpha=" << alpha << " i=" << i;
    }
  }
}

TEST(BoundedExponentialSampler, BitIdenticalToLegacyOnSameStream) {
  const BoundedExponential legacy(1.0, 0.1, 10.0);
  const BoundedExponentialSampler fast(1.0, 0.1, 10.0);
  EXPECT_DOUBLE_EQ(fast.mean(), legacy.mean());
  EXPECT_DOUBLE_EQ(fast.mean_inverse(), legacy.mean_inverse());
  Rng ra(112), rb(112);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_DOUBLE_EQ(fast.sample(rb), legacy.sample(ra)) << "i=" << i;
  }
}

// ---- legacy/sampler moment agreement ---------------------------------------

TEST(SamplerVariant, MomentsMatchLegacyClassesExactly) {
  // The sealed samplers and the analysis-side ABC classes must stay two
  // views of the SAME law: eq. 17/18 uses the ABC moments while simulation
  // draws through the variant, so any formula drift desynchronizes the
  // allocator from the traffic it is allocating for.
  const auto expect_same = [](const SizeDistribution& legacy,
                              const SamplerVariant& fast) {
    EXPECT_DOUBLE_EQ(fast.mean(), legacy.mean()) << legacy.name();
    EXPECT_DOUBLE_EQ(fast.second_moment(), legacy.second_moment())
        << legacy.name();
    EXPECT_DOUBLE_EQ(fast.min_value(), legacy.min_value()) << legacy.name();
    EXPECT_DOUBLE_EQ(fast.max_value(), legacy.max_value()) << legacy.name();
    try {
      const double legacy_inv = legacy.mean_inverse();
      EXPECT_DOUBLE_EQ(fast.mean_inverse(), legacy_inv) << legacy.name();
    } catch (const std::domain_error&) {
      EXPECT_THROW(fast.mean_inverse(), std::domain_error) << legacy.name();
    }
  };
  expect_same(BoundedPareto(1.5, 0.1, 100.0),
              BoundedParetoSampler(1.5, 0.1, 100.0));
  expect_same(Exponential(2.0), ExponentialSampler(2.0));
  expect_same(BoundedExponential(1.0, 0.1, 10.0),
              BoundedExponentialSampler(1.0, 0.1, 10.0));
  expect_same(Lognormal(0.3, 0.8), LognormalSampler(0.3, 0.8));
  expect_same(UniformSize(1.0, 3.0), UniformSampler(1.0, 3.0));
  expect_same(Pareto(1.5, 0.5), ParetoSampler(1.5, 0.5));
  expect_same(Deterministic(2.5), DeterministicSampler(2.5));
  expect_same(Empirical({1.0, 2.0, 4.0}), EmpiricalSampler({1.0, 2.0, 4.0}));
}

// ---- determinism across copies --------------------------------------------

TEST(SamplerVariant, CopiesReproduceFixedSeedStreams) {
  const std::vector<SamplerVariant> originals = {
      BoundedParetoSampler(1.5, 0.1, 100.0),
      ExponentialSampler(1.0),
      BoundedExponentialSampler(1.0, 0.1, 10.0),
      LognormalSampler(0.0, 1.0),
      UniformSampler(1.0, 3.0),
      ParetoSampler(1.5, 0.5),
      DeterministicSampler(2.0),
      EmpiricalSampler({1.0, 2.0, 4.0}, {1.0, 2.0, 3.0}),
      MixtureSampler({{1.0, DeterministicSampler(1.0)},
                      {1.0, BoundedParetoSampler(1.5, 0.1, 100.0)}}),
  };
  for (const auto& original : originals) {
    const SamplerVariant copy = original;  // value copy
    Rng ra(113), rb(113);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_DOUBLE_EQ(original.sample(ra), copy.sample(rb))
          << original.name();
    }
  }
}

TEST(SamplerVariant, SampleNMatchesRepeatedSample) {
  const SamplerVariant s = BoundedParetoSampler(1.5, 0.1, 100.0);
  Rng ra(114), rb(114);
  double block[256];
  s.sample_n(ra, block, 256);
  for (int i = 0; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(block[i], s.sample(rb)) << "i=" << i;
  }
}

TEST(ArrivalVariant, FillMatchesRepeatedNext) {
  ArrivalVariant a = PoissonArrivals(2.0);
  ArrivalVariant b = PoissonArrivals(2.0);
  Rng ra(115), rb(115);
  double block[128];
  a.fill_interarrivals(ra, block, 128);
  for (int i = 0; i < 128; ++i) {
    EXPECT_DOUBLE_EQ(block[i], b.next_interarrival(rb)) << "i=" << i;
  }
}

// ---- Lemma-2 scaling as a value transform ----------------------------------

TEST(SamplerVariant, ScaledByRateTransformsMomentsForEveryKind) {
  const std::vector<SamplerVariant> samplers = {
      BoundedParetoSampler(1.5, 0.1, 100.0),
      BoundedExponentialSampler(1.0, 0.1, 10.0),
      LognormalSampler(0.0, 1.0),
      UniformSampler(1.0, 3.0),
      ParetoSampler(1.5, 0.5),
      DeterministicSampler(2.0),
      EmpiricalSampler({1.0, 2.0, 4.0}),
      MixtureSampler({{1.0, DeterministicSampler(1.0)},
                      {3.0, DeterministicSampler(2.0)}}),
  };
  for (const auto& s : samplers) {
    for (double r : {0.5, 2.0, 7.5}) {
      const SamplerVariant scaled = s.scaled_by_rate(r);
      EXPECT_NEAR(scaled.mean(), s.mean() / r, 1e-9 * s.mean() / r)
          << s.name();
      if (std::isfinite(s.second_moment())) {
        EXPECT_NEAR(scaled.second_moment(), s.second_moment() / (r * r),
                    1e-9 * s.second_moment() / (r * r))
            << s.name();
      }
      EXPECT_NEAR(scaled.mean_inverse(), r * s.mean_inverse(),
                  1e-6 * r * s.mean_inverse())
          << s.name();
    }
  }
}

// ---- allocation freedom ----------------------------------------------------

TEST(SamplerVariant, SteadyStateSamplingIsAllocationFree) {
  // Every alternative — including the shared-table Empirical and Mixture —
  // must draw without touching the heap.
  std::vector<SamplerVariant> samplers = {
      BoundedParetoSampler(1.5, 0.1, 100.0),
      ExponentialSampler(1.0),
      BoundedExponentialSampler(1.0, 0.1, 10.0),
      LognormalSampler(0.0, 1.0),
      UniformSampler(1.0, 3.0),
      ParetoSampler(1.5, 0.5),
      DeterministicSampler(2.0),
      EmpiricalSampler({1.0, 2.0, 4.0}, {1.0, 2.0, 3.0}),
      MixtureSampler({{1.0, DeterministicSampler(1.0)},
                      {1.0, BoundedParetoSampler(1.5, 0.1, 100.0)}}),
  };
  Rng rng(116);
  double block[512];
  volatile double sink = 0.0;
  // Warm pass outside the counter faults everything in.
  for (const auto& s : samplers) {
    sink = sink + s.sample(rng);
    s.sample_n(rng, block, 512);
  }
  {
    AllocationCounter counter;
    for (const auto& s : samplers) {
      for (int i = 0; i < 10000; ++i) sink = sink + s.sample(rng);
      for (int i = 0; i < 20; ++i) {
        s.sample_n(rng, block, 512);
        sink = sink + block[0];
      }
    }
    EXPECT_EQ(counter.count(), 0u);
  }
}

TEST(SamplerVariant, CopiesAreAllocationFree) {
  // Copy = memcpy for parametric samplers, refcount bump for table-backed
  // ones: either way the heap is never touched.
  const SamplerVariant bp = BoundedParetoSampler(1.5, 0.1, 100.0);
  const SamplerVariant emp = EmpiricalSampler({1.0, 2.0, 4.0});
  const SamplerVariant mix =
      MixtureSampler({{1.0, DeterministicSampler(1.0)},
                      {1.0, BoundedParetoSampler(1.5, 0.1, 100.0)}});
  Rng rng(117);
  volatile double sink = 0.0;
  {
    AllocationCounter counter;
    for (int i = 0; i < 1000; ++i) {
      const SamplerVariant a = bp;
      const SamplerVariant b = emp;
      const SamplerVariant c = mix;
      sink = sink + a.sample(rng) + b.sample(rng) + c.sample(rng);
    }
    EXPECT_EQ(counter.count(), 0u);
  }
}

TEST(ArrivalVariant, SteadyStateDrawsAreAllocationFree) {
  std::vector<ArrivalVariant> arrivals = {
      PoissonArrivals(2.0),
      DeterministicArrivals(1.0),
      Mmpp2Arrivals(1.0, 9.0, 0.5, 0.5),
  };
  Rng rng(118);
  double block[256];
  volatile double sink = 0.0;
  for (auto& a : arrivals) a.fill_interarrivals(rng, block, 256);
  {
    AllocationCounter counter;
    for (auto& a : arrivals) {
      for (int i = 0; i < 10000; ++i) sink = sink + a.next_interarrival(rng);
      for (int i = 0; i < 20; ++i) {
        a.fill_interarrivals(rng, block, 256);
        sink = sink + block[0];
      }
      const ArrivalVariant copy = a;  // value copy, no heap
      sink = sink + copy.mean_rate();
    }
    EXPECT_EQ(counter.count(), 0u);
  }
}

}  // namespace
}  // namespace psd
