// Lockstep batch kernel: per-lane results must be BITWISE identical to the
// per-task path at the same derived seeds — across allocators, rate-change
// policies, arrival shapes, profiles, class counts and recording — plus the
// ragged-tail group split and campaign JSONL byte-identity in both modes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "experiment/lockstep.hpp"
#include "experiment/runner.hpp"
#include "sweep/campaign.hpp"

namespace psd {
namespace {

ScenarioConfig base_cfg() {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.6;
  cfg.warmup_tu = 400.0;
  cfg.measure_tu = 2500.0;
  cfg.seed = 1234;
  return cfg;
}

// Exact-bit double comparison that treats NaN == NaN as equal (settle times
// and empty-class means are NaN by contract).
void expect_bits(double a, double b, const char* what) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  const bool both_nan = std::isnan(a) && std::isnan(b);
  EXPECT_TRUE(ba == bb || both_nan) << what << ": " << a << " vs " << b;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.reallocations, b.reallocations);
  expect_bits(a.system_slowdown, b.system_slowdown, "system_slowdown");
  expect_bits(a.time_unit, b.time_unit, "time_unit");
  ASSERT_EQ(a.cls.size(), b.cls.size());
  for (std::size_t i = 0; i < a.cls.size(); ++i) {
    EXPECT_EQ(a.cls[i].completed, b.cls[i].completed) << "class " << i;
    expect_bits(a.cls[i].mean_slowdown, b.cls[i].mean_slowdown, "slowdown");
    expect_bits(a.cls[i].mean_delay, b.cls[i].mean_delay, "delay");
    ASSERT_EQ(a.cls[i].windows.size(), b.cls[i].windows.size());
    for (std::size_t w = 0; w < a.cls[i].windows.size(); ++w) {
      EXPECT_EQ(a.cls[i].windows[w].count, b.cls[i].windows[w].count);
      expect_bits(a.cls[i].windows[w].mean, b.cls[i].windows[w].mean,
                  "window mean");
    }
  }
  ASSERT_EQ(a.settle_tu.size(), b.settle_tu.size());
  for (std::size_t j = 0; j < a.settle_tu.size(); ++j) {
    expect_bits(a.settle_tu[j], b.settle_tu[j], "settle_tu");
  }
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t r = 0; r < a.records.size(); ++r) {
    EXPECT_EQ(a.records[r].id, b.records[r].id);
    expect_bits(a.records[r].arrival, b.records[r].arrival, "rec arrival");
    expect_bits(a.records[r].size, b.records[r].size, "rec size");
    expect_bits(a.records[r].service_start, b.records[r].service_start,
                "rec service_start");
    expect_bits(a.records[r].departure, b.records[r].departure,
                "rec departure");
    expect_bits(a.records[r].service_elapsed, b.records[r].service_elapsed,
                "rec service_elapsed");
  }
}

void check_lanes_match_per_task(const ScenarioConfig& cfg,
                                std::uint64_t first, std::size_t lanes) {
  const auto batch = run_scenario_lanes(cfg, first, lanes);
  ASSERT_EQ(batch.size(), lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    SCOPED_TRACE("lane " + std::to_string(l));
    expect_bitwise_equal(batch[l], run_scenario(cfg, first + l));
  }
}

TEST(Lockstep, DefaultScenarioBitwiseEqual) {
  check_lanes_match_per_task(base_cfg(), 0, 4);
}

TEST(Lockstep, NonzeroFirstRunIndex) {
  check_lanes_match_per_task(base_cfg(), 7, 3);
}

TEST(Lockstep, HighLoadThreeClasses) {
  ScenarioConfig cfg = base_cfg();
  cfg.delta = {1.0, 2.0, 8.0};
  cfg.load = 0.9;
  check_lanes_match_per_task(cfg, 0, 3);
}

TEST(Lockstep, AdaptiveAllocatorAndFinishAtOldRate) {
  ScenarioConfig cfg = base_cfg();
  cfg.allocator = AllocatorKind::kAdaptivePsd;
  cfg.rate_change = RateChangePolicy::kFinishAtOldRate;
  check_lanes_match_per_task(cfg, 0, 3);
}

TEST(Lockstep, EqualShareAndNoAllocator) {
  ScenarioConfig cfg = base_cfg();
  cfg.allocator = AllocatorKind::kEqualShare;
  check_lanes_match_per_task(cfg, 0, 2);
  cfg.allocator = AllocatorKind::kNone;  // realloc loop disabled entirely
  check_lanes_match_per_task(cfg, 0, 2);
}

TEST(Lockstep, BurstyArrivalsAndLognormalSizes) {
  ScenarioConfig cfg = base_cfg();
  cfg.arrivals = ArrivalKind::kBursty;
  cfg.burstiness = 4.0;
  cfg.size_dist = DistSpec::lognormal(1.0, 2.0);
  check_lanes_match_per_task(cfg, 0, 3);
}

TEST(Lockstep, NonstationaryProfileWithSettleMetric) {
  ScenarioConfig cfg = base_cfg();
  cfg.load = 0.4;
  cfg.profile = LoadProfile::spike(1200.0, 600.0, 2.0);
  check_lanes_match_per_task(cfg, 0, 3);
}

TEST(Lockstep, RequestRecordingWindow) {
  ScenarioConfig cfg = base_cfg();
  cfg.record_requests = true;
  cfg.record_from_tu = 1000.0;
  cfg.record_to_tu = 1400.0;
  check_lanes_match_per_task(cfg, 0, 2);
}

TEST(Lockstep, IneligibleBackendFallsBackToPerTask) {
  ScenarioConfig cfg = base_cfg();
  cfg.backend = BackendKind::kSfq;
  EXPECT_FALSE(lockstep_eligible(cfg));
  check_lanes_match_per_task(cfg, 0, 2);
}

TEST(Lockstep, RaggedTailAggregatesIdentically) {
  const ScenarioConfig cfg = base_cfg();
  const std::size_t runs = 10;  // K=4 -> groups of 4, 4, 2
  ReplicationPlan plan;
  plan.mode = ReplicationMode::kLockstep;
  plan.lanes = 4;
  const auto lockstep =
      run_replications(cfg, runs, /*parallel=*/false, plan);
  const auto per_task = run_replications(cfg, runs, /*parallel=*/false);
  ASSERT_EQ(lockstep.runs, per_task.runs);
  ASSERT_EQ(lockstep.slowdown.size(), per_task.slowdown.size());
  for (std::size_t i = 0; i < lockstep.slowdown.size(); ++i) {
    expect_bits(lockstep.slowdown[i].mean, per_task.slowdown[i].mean,
                "agg slowdown mean");
    expect_bits(lockstep.slowdown[i].half_width,
                per_task.slowdown[i].half_width, "agg half width");
  }
  expect_bits(lockstep.system_slowdown, per_task.system_slowdown,
              "agg system");
  EXPECT_EQ(lockstep.completed_total, per_task.completed_total);
}

GridSpec small_grid() {
  GridSpec grid;
  grid.base.warmup_tu = 300.0;
  grid.base.measure_tu = 1500.0;
  grid.loads = {0.4, 0.8};
  grid.deltas = {{1.0, 2.0}};
  // One lockstep-eligible and one fallback backend in the same campaign.
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq};
  return grid;
}

std::vector<std::string> campaign_records(const CampaignOptions& opt) {
  std::vector<std::string> records;
  const auto result = run_campaign(small_grid(), opt);
  for (const auto& p : result.points) records.push_back(p.record);
  return records;
}

TEST(Lockstep, CampaignRecordsByteIdenticalAcrossModes) {
  CampaignOptions per_task;
  per_task.runs = 5;
  per_task.threads = 2;

  CampaignOptions lockstep = per_task;
  lockstep.replication_mode = ReplicationMode::kLockstep;
  lockstep.lockstep_lanes = 2;  // 5 runs -> groups of 2, 2, 1 (ragged tail)

  const auto a = campaign_records(per_task);
  const auto b = campaign_records(lockstep);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].empty());
    EXPECT_EQ(a[i], b[i]) << "point " << i;
  }
}

}  // namespace
}  // namespace psd
