// Priority backend with the PDD baselines (WTP / PAD / HPD / strict).
#include <deque>
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/pdd_policies.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

struct Harness {
  Simulator sim;
  std::vector<WaitingQueue> queues;
  std::vector<Request> done;
  std::deque<Request> staged;  ///< Stable storage for not-yet-arrived requests.
  std::unique_ptr<SchedulerBackend> backend;

  Harness(std::size_t classes, std::unique_ptr<SchedulerBackend> b)
      : queues(classes), backend(std::move(b)) {
    backend->attach(sim, queues, 1.0, Rng(1),
                    [this](Request&& r) { done.push_back(std::move(r)); });
  }

  void submit(ClassId cls, Time t, Work size, RequestId id = 0) {
    Request r;
    r.id = id;
    r.cls = cls;
    r.arrival = t;
    r.size = size;
    staged.push_back(r);
    const std::size_t idx = staged.size() - 1;
    sim.at_fast(t, [this, idx, cls] {
      queues[cls].push(staged[idx], sim.now());
      backend->notify_arrival(cls);
    });
  }
};

TEST(WtpPolicyUnit, ScoresAreWaitOverDelta) {
  WtpPolicy p({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.score(0, 4.0, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(p.score(1, 4.0, 0.0), 2.0);
}

TEST(WtpPolicyUnit, RejectsBadDeltas) {
  EXPECT_THROW(WtpPolicy({}), std::invalid_argument);
  EXPECT_THROW(WtpPolicy({1.0, 0.0}), std::invalid_argument);
}

TEST(HpdPolicyUnit, BlendsWtpAndPad) {
  HpdPolicy p({1.0, 1.0}, 0.25);
  // score = 0.25 * wait/delta + 0.75 * avg/delta
  EXPECT_DOUBLE_EQ(p.score(0, 4.0, 8.0), 0.25 * 4.0 + 0.75 * 8.0);
  EXPECT_THROW(HpdPolicy({1.0}, 1.5), std::invalid_argument);
}

TEST(PriorityBackend, ServesHigherWtpScoreFirst) {
  // Both classes backlogged behind a long job; the class-0 request (delta 1)
  // outranks the *older* class-1 request only when wait_1/2 < wait_0.
  Harness h(2, make_wtp_backend({1.0, 2.0}));
  h.submit(0, 0.0, 5.0, 1);   // occupies the server until t=5
  h.submit(1, 0.5, 1.0, 2);   // at t=5 waited 4.5 -> score 2.25
  h.submit(0, 2.0, 1.0, 3);   // at t=5 waited 3.0 -> score 3.0 (wins)
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 3u);
  EXPECT_EQ(h.done[1].id, 3u);
  EXPECT_EQ(h.done[2].id, 2u);
}

TEST(PriorityBackend, WtpEqualDeltasApproximateGlobalFcfs) {
  Harness h(2, make_wtp_backend({1.0, 1.0}));
  h.submit(0, 0.0, 1.0, 1);
  h.submit(1, 0.1, 1.0, 2);
  h.submit(0, 0.2, 1.0, 3);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 3u);
  EXPECT_EQ(h.done[0].id, 1u);
  EXPECT_EQ(h.done[1].id, 2u);
  EXPECT_EQ(h.done[2].id, 3u);
}

TEST(PriorityBackend, StrictAlwaysPrefersClassZero) {
  Harness h(2, make_strict_backend(2));
  h.submit(1, 0.0, 1.0, 1);           // starts immediately (server idle)
  for (int i = 0; i < 5; ++i) {
    h.submit(0, 0.1, 1.0, 10 + i);    // queued class-0 burst
    h.submit(1, 0.1, 1.0, 20 + i);
  }
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 11u);
  // After the in-flight job, all five class-0 jobs precede any class-1 job.
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(h.done[i].cls, 0u);
  for (int i = 6; i <= 10; ++i) EXPECT_EQ(h.done[i].cls, 1u);
}

TEST(PriorityBackend, NonPreemptive) {
  Harness h(2, make_strict_backend(2));
  h.submit(1, 0.0, 5.0, 1);
  h.submit(0, 1.0, 1.0, 2);  // higher class arrives mid-service
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  EXPECT_EQ(h.done[0].id, 1u);  // finishes its service uninterrupted
  EXPECT_DOUBLE_EQ(h.done[0].departure, 5.0);
  EXPECT_DOUBLE_EQ(h.done[1].departure, 6.0);
}

TEST(PriorityBackend, PadConvergesTowardDelayRatios) {
  // Saturated two-class system with PAD(delta 1:2): average delays should
  // order correctly (class 0 smaller delay).
  Harness h(2, make_pad_backend({1.0, 2.0}));
  Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += rng.exponential(2.5);  // ~83% load with mean size 1/3
    h.submit(i % 2, t, 1.0 / 3.0, i);
  }
  h.sim.run_until(t + 1000.0);
  double d0 = 0, d1 = 0;
  std::size_t n0 = 0, n1 = 0;
  for (const auto& r : h.done) {
    if (r.cls == 0) { d0 += r.delay(); ++n0; }
    else { d1 += r.delay(); ++n1; }
  }
  ASSERT_GT(n0, 100u);
  ASSERT_GT(n1, 100u);
  EXPECT_LT(d0 / n0, d1 / n1);
}

TEST(PriorityBackend, IgnoresSetRates) {
  Harness h(2, make_wtp_backend({1.0, 2.0}));
  h.backend->set_rates({0.9, 0.1});  // must be a no-op, not a crash
  h.submit(0, 0.0, 1.0);
  h.sim.run_until(10.0);
  EXPECT_EQ(h.done.size(), 1u);
}

TEST(PriorityBackend, NamesIdentifyPolicy) {
  EXPECT_EQ(make_wtp_backend({1.0})->name(), "priority-wtp");
  EXPECT_EQ(make_pad_backend({1.0})->name(), "priority-pad");
  EXPECT_EQ(make_hpd_backend({1.0})->name(), "priority-hpd");
  EXPECT_EQ(make_strict_backend(1)->name(), "priority-strict");
}

}  // namespace
}  // namespace psd
