// Arrival processes: rate correctness, interarrival distributions, MMPP
// burstiness semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/online.hpp"
#include "workload/arrival.hpp"

namespace psd {
namespace {

TEST(Poisson, MeanInterarrivalIsOneOverRate) {
  PoissonArrivals p(4.0);
  Rng rng(1);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(p.next_interarrival(rng));
  EXPECT_NEAR(m.mean(), 0.25, 0.005);
  // Exponential interarrivals: scv == 1.
  EXPECT_NEAR(m.variance() / (m.mean() * m.mean()), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 4.0);
}

TEST(Poisson, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
}

TEST(Poisson, CountsInFixedWindowArePoisson) {
  // Variance-to-mean ratio of event counts in unit windows should be ~1.
  PoissonArrivals p(5.0);
  Rng rng(2);
  OnlineMoments counts;
  for (int w = 0; w < 5000; ++w) {
    double t = 0.0;
    int c = 0;
    for (;;) {
      t += p.next_interarrival(rng);
      if (t > 1.0) break;
      ++c;
    }
    counts.add(c);
  }
  EXPECT_NEAR(counts.mean(), 5.0, 0.15);
  EXPECT_NEAR(counts.variance() / counts.mean(), 1.0, 0.1);
}

TEST(DeterministicArrivals, FixedSpacing) {
  DeterministicArrivals d(2.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d.next_interarrival(rng), 0.5);
  }
  EXPECT_DOUBLE_EQ(d.mean_rate(), 2.0);
}

TEST(Mmpp2, MeanRateIsStationaryAverage) {
  Mmpp2Arrivals m(1.0, 9.0, 0.5, 0.5);  // symmetric phases
  EXPECT_DOUBLE_EQ(m.mean_rate(), 5.0);

  Mmpp2Arrivals skew(1.0, 9.0, 1.0, 3.0);  // p_high = 1/4
  EXPECT_DOUBLE_EQ(skew.mean_rate(), 0.25 * 9.0 + 0.75 * 1.0);
}

TEST(Mmpp2, EmpiricalRateMatches) {
  Mmpp2Arrivals m(2.0, 10.0, 0.2, 0.2);
  Rng rng(4);
  double t = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) t += m.next_interarrival(rng);
  EXPECT_NEAR(n / t, m.mean_rate(), 0.25);
}

TEST(Mmpp2, IsOverdispersedVsPoisson) {
  // Counts in windows must show variance/mean > 1 (burstiness).
  Mmpp2Arrivals m(1.0, 19.0, 0.05, 0.05);
  Rng rng(5);
  OnlineMoments counts;
  double carry = 0.0;
  for (int w = 0; w < 4000; ++w) {
    double t = carry;
    int c = 0;
    for (;;) {
      t += m.next_interarrival(rng);
      if (t > 1.0) break;
      ++c;
    }
    carry = 0.0;
    counts.add(c);
  }
  EXPECT_GT(counts.variance() / counts.mean(), 1.5);
}

TEST(MakeBursty, UnitBurstinessIsPlainPoisson) {
  const ArrivalVariant a = make_bursty_arrivals(3.0, 1.0);
  EXPECT_NE(a.name().find("Poisson"), std::string::npos);
  EXPECT_DOUBLE_EQ(a.mean_rate(), 3.0);
  EXPECT_NE(a.get_if<PoissonArrivals>(), nullptr);
}

TEST(MakeBursty, PreservesMeanRate) {
  for (double b : {1.5, 2.0, 4.0}) {
    const ArrivalVariant a = make_bursty_arrivals(2.0, b);
    EXPECT_NEAR(a.mean_rate(), 2.0, 1e-9) << "burstiness=" << b;
  }
}

TEST(MakeBursty, RejectsBurstinessBelowOne) {
  EXPECT_THROW(make_bursty_arrivals(1.0, 0.5), std::invalid_argument);
}

TEST(ArrivalCopy, VariantCopiesCarryPhaseStateAndStayInSync) {
  // Copying a variant is a plain value copy: a copy taken mid-stream must
  // produce the exact same continuation from an identical Rng.
  ArrivalVariant a = Mmpp2Arrivals(1.0, 9.0, 0.5, 0.5);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) a.next_interarrival(rng);
  ArrivalVariant b = a;  // mid-stream copy, phase state included
  Rng ra = rng.fork(1), rb = rng.fork(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(ra), b.next_interarrival(rb));
  }
  EXPECT_EQ(a.name(), b.name());
  EXPECT_DOUBLE_EQ(a.mean_rate(), b.mean_rate());
}

}  // namespace
}  // namespace psd
