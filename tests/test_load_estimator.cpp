// Load estimator: the paper's five-window moving average, cold start, and
// per-class bookkeeping.
#include <gtest/gtest.h>

#include "server/load_estimator.hpp"

namespace psd {
namespace {

TEST(LoadEstimator, RejectsBadConstruction) {
  EXPECT_THROW(LoadEstimator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(LoadEstimator(2, 0.0), std::invalid_argument);
  EXPECT_THROW(LoadEstimator(2, 1.0, 0), std::invalid_argument);
}

TEST(LoadEstimator, ColdStartEstimatesZero) {
  LoadEstimator est(2, 1000.0);
  EXPECT_FALSE(est.warm());
  const auto l = est.lambda_estimate();
  EXPECT_DOUBLE_EQ(l[0], 0.0);
  EXPECT_DOUBLE_EQ(l[1], 0.0);
}

TEST(LoadEstimator, SingleWindowRate) {
  LoadEstimator est(2, 1000.0);
  for (int i = 0; i < 500; ++i) est.on_arrival(0, 1.0);
  for (int i = 0; i < 100; ++i) est.on_arrival(1, 2.0);
  est.roll(1000.0);
  EXPECT_TRUE(est.warm());
  const auto l = est.lambda_estimate();
  EXPECT_DOUBLE_EQ(l[0], 0.5);
  EXPECT_DOUBLE_EQ(l[1], 0.1);
  const auto w = est.work_rate_estimate();
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.2);
}

TEST(LoadEstimator, MovingAverageOverHistory) {
  // Paper: "the load for next thousand time units was the average load in
  // past five thousand time units."
  LoadEstimator est(1, 1000.0, 5);
  double t = 0.0;
  // Six windows with arrival counts 100, 200, 300, 400, 500, 600.
  for (int w = 1; w <= 6; ++w) {
    for (int i = 0; i < 100 * w; ++i) est.on_arrival(0, 1.0);
    t += 1000.0;
    est.roll(t);
  }
  // Only the last five windows (200..600) count: mean rate = 400/1000.
  EXPECT_DOUBLE_EQ(est.lambda_estimate()[0], 0.4);
  EXPECT_EQ(est.windows_closed(), 6u);
}

TEST(LoadEstimator, PartialHistoryAveragesWhatExists) {
  LoadEstimator est(1, 1000.0, 5);
  for (int i = 0; i < 300; ++i) est.on_arrival(0, 1.0);
  est.roll(1000.0);
  for (int i = 0; i < 100; ++i) est.on_arrival(0, 1.0);
  est.roll(2000.0);
  EXPECT_DOUBLE_EQ(est.lambda_estimate()[0], 0.2);
}

TEST(LoadEstimator, ZeroArrivalWindowDilutesEstimate) {
  LoadEstimator est(1, 1000.0, 5);
  for (int i = 0; i < 400; ++i) est.on_arrival(0, 1.0);
  est.roll(1000.0);
  est.roll(2000.0);  // empty window
  EXPECT_DOUBLE_EQ(est.lambda_estimate()[0], 0.2);
}

TEST(LoadEstimator, IrregularWindowLengthsWeightedByTime) {
  LoadEstimator est(1, 1000.0, 5);
  for (int i = 0; i < 100; ++i) est.on_arrival(0, 1.0);
  est.roll(500.0);  // 0.2 arrivals / time over 500
  for (int i = 0; i < 300; ++i) est.on_arrival(0, 1.0);
  est.roll(2000.0);  // 0.2 over 1500
  EXPECT_DOUBLE_EQ(est.lambda_estimate()[0], 0.2);
}

TEST(LoadEstimator, ClassIsolation) {
  LoadEstimator est(3, 100.0);
  est.on_arrival(1, 5.0);
  est.roll(100.0);
  const auto l = est.lambda_estimate();
  EXPECT_DOUBLE_EQ(l[0], 0.0);
  EXPECT_DOUBLE_EQ(l[1], 0.01);
  EXPECT_DOUBLE_EQ(l[2], 0.0);
}

TEST(LoadEstimator, RejectsOutOfRangeClass) {
  LoadEstimator est(2, 100.0);
  EXPECT_THROW(est.on_arrival(2, 1.0), std::invalid_argument);
}

TEST(LoadEstimator, RollWithoutElapsedTimeThrows) {
  LoadEstimator est(1, 100.0);
  EXPECT_THROW(est.roll(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace psd
