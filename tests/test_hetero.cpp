// Mixture distribution + heterogeneous PSD allocation (the per-class-
// distribution generalization of eq. 17) + session-workload integration.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "core/hetero_psd_allocator.hpp"
#include "core/psd_allocation.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/mixture.hpp"
#include "dist/sampler.hpp"
#include "stats/online.hpp"
#include "workload/session.hpp"

namespace psd {
namespace {

Mixture two_point_mixture() {
  std::vector<Mixture::Component> comps;
  comps.push_back({1.0, std::make_unique<Deterministic>(1.0)});
  comps.push_back({3.0, std::make_unique<Deterministic>(2.0)});
  return Mixture(std::move(comps));
}

TEST(Mixture, MomentsAreWeightedAverages) {
  const auto m = two_point_mixture();
  // Weights normalize to (0.25, 0.75).
  EXPECT_DOUBLE_EQ(m.mean(), 0.25 * 1.0 + 0.75 * 2.0);
  EXPECT_DOUBLE_EQ(m.second_moment(), 0.25 * 1.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(m.mean_inverse(), 0.25 * 1.0 + 0.75 * 0.5);
  EXPECT_DOUBLE_EQ(m.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(m.max_value(), 2.0);
}

TEST(Mixture, SamplingMatchesWeights) {
  const auto m = two_point_mixture();
  Rng rng(3);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += (m.sample(rng) == 1.0);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.25, 0.01);
}

TEST(Mixture, HeavyTailComponentDominatesSecondMoment) {
  std::vector<Mixture::Component> comps;
  comps.push_back({0.5, std::make_unique<Deterministic>(0.3)});
  comps.push_back({0.5, std::make_unique<BoundedPareto>(1.5, 0.1, 100.0)});
  Mixture m(std::move(comps));
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_NEAR(m.second_moment(), 0.5 * 0.09 + 0.5 * bp.second_moment(), 1e-9);
  Rng rng(4);
  OnlineMoments inv;
  for (int i = 0; i < 200000; ++i) inv.add(1.0 / m.sample(rng));
  EXPECT_NEAR(inv.mean() / m.mean_inverse(), 1.0, 0.02);
}

TEST(Mixture, RateScalingScalesComponents) {
  // Lemma-2 scaling lives on the sealed mixture sampler.
  std::vector<MixtureComponent> comps;
  comps.push_back({1.0, DeterministicSampler(1.0)});
  comps.push_back({3.0, DeterministicSampler(2.0)});
  const MixtureSampler m{std::move(comps)};
  const MixtureSampler s = m.scaled_by_rate(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), m.mean() / 2.0);
  EXPECT_DOUBLE_EQ(s.mean_inverse(), 2.0 * m.mean_inverse());
}

TEST(Mixture, RejectsBadComponents) {
  EXPECT_THROW(Mixture({}), std::invalid_argument);
  std::vector<Mixture::Component> comps;
  comps.push_back({0.0, std::make_unique<Deterministic>(1.0)});
  EXPECT_THROW(Mixture(std::move(comps)), std::invalid_argument);
}

// ---- heterogeneous allocation -------------------------------------------

TEST(HeteroEq17, ReducesToHomogeneousWithIdenticalDistributions) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> lambda = {0.8, 0.6};
  const std::vector<double> delta = {1.0, 2.0};

  PsdInput homo;
  homo.lambda = lambda;
  homo.delta = delta;
  homo.mean_size = bp.mean();
  homo.min_residual_share = 0.0;

  HeteroPsdInput het;
  het.lambda = lambda;
  het.delta = delta;
  het.dist = {&bp, &bp};
  het.min_residual_share = 0.0;

  const auto a = allocate_psd_rates(homo);
  const auto b = allocate_psd_rates_hetero(het);
  EXPECT_NEAR(a.rate[0], b.rate[0], 1e-12);
  EXPECT_NEAR(a.rate[1], b.rate[1], 1e-12);
}

TEST(HeteroEq17, RatesSumToCapacityAndExceedDemand) {
  Deterministic d1(0.4);
  BoundedPareto d2(1.5, 0.1, 100.0);
  HeteroPsdInput in;
  in.lambda = {0.5, 0.9};
  in.delta = {1.0, 2.0};
  in.dist = {&d1, &d2};
  in.min_residual_share = 0.0;
  const auto a = allocate_psd_rates_hetero(in);
  EXPECT_NEAR(std::accumulate(a.rate.begin(), a.rate.end(), 0.0), 1.0, 1e-12);
  EXPECT_GT(a.rate[0], 0.5 * 0.4);
  EXPECT_GT(a.rate[1], 0.9 * d2.mean());
}

TEST(HeteroEq17, PredictedSlowdownsHitDeltaRatios) {
  Deterministic d1(0.4);
  BoundedPareto d2(1.5, 0.1, 100.0);
  const std::vector<double> lambda = {0.5, 0.9};
  const std::vector<double> delta = {1.0, 3.0};
  const std::vector<const SizeDistribution*> dist = {&d1, &d2};
  const auto sd = expected_psd_slowdowns_hetero(lambda, delta, dist);
  EXPECT_NEAR(sd[1] / sd[0], 3.0, 1e-12);
}

TEST(HeteroEq17, Theorem1ConsistencyPerClass) {
  // Applying Theorem 1 to each class's own distribution at the hetero rates
  // must reproduce the predicted slowdowns (ignoring floors).
  Deterministic d1(0.4);
  BoundedPareto d2(1.5, 0.1, 100.0);
  HeteroPsdInput in;
  in.lambda = {0.5, 0.9};
  in.delta = {1.0, 3.0};
  in.dist = {&d1, &d2};
  in.min_residual_share = 0.0;
  const auto a = allocate_psd_rates_hetero(in);
  const auto sd = expected_psd_slowdowns_hetero(in.lambda, in.delta, in.dist);
  EXPECT_NEAR(theorem1_slowdown(in.lambda[0], d1, a.rate[0]) / sd[0], 1.0,
              1e-9);
  EXPECT_NEAR(theorem1_slowdown(in.lambda[1], d2, a.rate[1]) / sd[1], 1.0,
              1e-9);
}

TEST(HeteroEq17, OverloadClampWorks) {
  Deterministic d1(1.0);
  HeteroPsdInput in;
  in.lambda = {2.0};
  in.delta = {1.0};
  in.dist = {&d1};
  in.overload = OverloadPolicy::kClamp;
  in.rho_max = 0.9;
  const auto a = allocate_psd_rates_hetero(in);
  EXPECT_TRUE(a.clamped);
  EXPECT_NEAR(a.utilization, 0.9, 1e-12);
  in.overload = OverloadPolicy::kThrow;
  EXPECT_THROW(allocate_psd_rates_hetero(in), std::domain_error);
}

TEST(HeteroAllocator, RuntimeAdapterMatchesClosedForm) {
  Deterministic d1(0.4);
  BoundedPareto d2(1.5, 0.1, 100.0);
  std::vector<SamplerVariant> samplers = {
      DeterministicSampler(0.4), BoundedParetoSampler(1.5, 0.1, 100.0)};
  HeteroPsdAllocator alloc({1.0, 2.0}, std::move(samplers), 1.0, 0.98, 0.0);
  const std::vector<double> lam = {0.5, 0.9};
  const auto rates = alloc.allocate(lam);
  HeteroPsdInput in;
  in.lambda = lam;
  in.delta = {1.0, 2.0};
  in.dist = {&d1, &d2};
  in.min_residual_share = 0.0;
  const auto direct = allocate_psd_rates_hetero(in);
  EXPECT_NEAR(rates[0], direct.rate[0], 1e-12);
  EXPECT_NEAR(rates[1], direct.rate[1], 1e-12);
}

// ---- session integration --------------------------------------------------

TEST(SessionMixtures, ClassMixtureMomentsArePositiveAndOrdered) {
  const auto profile = SessionProfile::storefront(0.3);
  const auto mix = profile.class_mixtures(2);
  ASSERT_EQ(mix.size(), 2u);
  for (const auto& m : mix) {
    EXPECT_GT(m.mean(), 0.0);
    EXPECT_GT(m.second_moment(), 0.0);
    EXPECT_GT(m.mean_inverse(), 0.0);
  }
  // The browsing class mixes heavy-tailed states: bigger second moment.
  EXPECT_GT(mix[1].second_moment(), mix[0].second_moment());
}

TEST(SessionMixtures, MixtureMeanMatchesEmpiricalSessionSizes) {
  // Sample sizes emitted by the session generator for each class and compare
  // against the analytic mixture mean.
  const auto profile = SessionProfile::storefront(0.5);
  const auto mix = profile.class_mixtures(2);

  Simulator sim;
  struct Sink final : RequestSink {
    OnlineMoments size_by_class[2];
    void submit(const Request& r) override { size_by_class[r.cls].add(r.size); }
  } sink;
  SessionWorkload w(sim, Rng(8), profile, sink);
  w.start(0.0);
  sim.run_until(30000.0);
  w.stop();
  for (int c = 0; c < 2; ++c) {
    ASSERT_GT(sink.size_by_class[c].count(), 1000u);
    EXPECT_NEAR(sink.size_by_class[c].mean() / mix[c].mean(), 1.0, 0.1)
        << "class " << c;
  }
}

}  // namespace
}  // namespace psd
