// Real-time runtime (src/rt) under a ManualClock: every component steps on
// the test thread, so these tests are deterministic by construction — no
// sleeps, no timing-dependent assertions, bitwise-reproducible reports.
#include <gtest/gtest.h>

#include <cmath>

#include "core/psd_allocation.hpp"
#include "rt/clock.hpp"
#include "rt/runtime.hpp"
#include "rt/seqlock.hpp"
#include "rt/token_bucket.hpp"

namespace psd::rt {
namespace {

Request make_request(ClassId cls, Time arrival, Work size,
                     RequestId id = 0) {
  Request r;
  r.id = id;
  r.cls = cls;
  r.arrival = arrival;
  r.size = size;
  return r;
}

// ---------------------------------------------------------------- clocks

TEST(RtClock, ManualAdvancesAndRejectsBackwards) {
  ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance_to(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_THROW(clock.advance_to(1.0), std::invalid_argument);
}

TEST(RtClock, VariantDispatchesAndExposesManual) {
  ClockVariant manual{ManualClock{3.0}};
  EXPECT_DOUBLE_EQ(manual.now(), 3.0);
  ASSERT_NE(manual.manual(), nullptr);
  manual.manual()->advance_to(4.0);
  EXPECT_DOUBLE_EQ(manual.now(), 4.0);

  ClockVariant steady{SteadyClock{}};
  EXPECT_EQ(steady.manual(), nullptr);
  EXPECT_GE(steady.now(), 0.0);
}

// ---------------------------------------------------------- token bucket

TEST(TokenBucket, AccruesAtRateUpToBurst) {
  TokenBucket b(2.0, 4.0, 0.0);  // rate 2/s, burst 4, starts full
  EXPECT_DOUBLE_EQ(b.level(0.0), 4.0);
  EXPECT_TRUE(b.try_consume(4.0, 0.0));
  EXPECT_DOUBLE_EQ(b.level(0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.level(1.0), 2.0);   // +2 after 1s
  EXPECT_DOUBLE_EQ(b.level(10.0), 4.0);  // capped at burst
}

TEST(TokenBucket, DeficitDelaysButNeverDeadlocks) {
  TokenBucket b(1.0, 2.0, 0.0);
  // A giant twice the burst still releases (level is non-negative)...
  EXPECT_TRUE(b.try_consume(4.0, 0.0));
  EXPECT_DOUBLE_EQ(b.level(0.0), -2.0);
  // ...but the class pays the deficit off before the next release.
  EXPECT_FALSE(b.try_consume(1.0, 1.0));  // level -1
  EXPECT_TRUE(b.try_consume(1.0, 2.0));   // level 0: ok
}

TEST(TokenBucket, SetRateSettlesAtOldRateFirst) {
  TokenBucket b(1.0, 10.0, 0.0);
  ASSERT_TRUE(b.try_consume(10.0, 0.0));  // empty it
  b.set_rate(4.0, 2.0);  // 2s at old rate 1/s accrued first
  EXPECT_DOUBLE_EQ(b.level(2.0), 2.0);
  EXPECT_DOUBLE_EQ(b.level(3.0), 6.0);  // then 4/s
}

// --------------------------------------------------------------- seqlock

TEST(Seqlock, SingleThreadRoundTrip) {
  struct Payload {
    double a = 0.0;
    std::uint64_t b = 0;
    double c[3] = {};
  };
  Seqlock<Payload> lock;
  Payload p;
  p.a = 1.5;
  p.b = 42;
  p.c[2] = -7.0;
  lock.publish(p);
  const Payload out = lock.read();
  EXPECT_DOUBLE_EQ(out.a, 1.5);
  EXPECT_EQ(out.b, 42u);
  EXPECT_DOUBLE_EQ(out.c[2], -7.0);
}

// ----------------------------------------------------------------- shard

ShardConfig two_class_config() {
  ShardConfig cfg;
  cfg.num_classes = 2;
  cfg.capacity = 1.0;
  cfg.window = 1.0;
  cfg.bucket_burst_seconds = 10.0;  // buckets out of the way by default
  return cfg;
}

TEST(Shard, ServesWithExactSimulatedTimestamps) {
  ShardConfig cfg = two_class_config();
  cfg.num_classes = 1;
  cfg.initial_rates = {1.0};
  Shard shard(cfg, Rng(1));

  ASSERT_TRUE(shard.submit(make_request(0, 0.0, 1.0, 1)));
  ASSERT_TRUE(shard.submit(make_request(0, 0.0, 1.0, 2)));
  shard.drain(0.0);
  EXPECT_EQ(shard.outstanding(), 2u);

  // First request served [0,1), second [1,2) — completions fire at their
  // exact model times no matter when drain runs.
  shard.drain(5.0);
  EXPECT_EQ(shard.outstanding(), 0u);
  const auto& m = shard.server().metrics();
  ASSERT_EQ(m.completed(0), 2u);
  // Slowdowns: 0/1 (immediate service) and 1/1 (waited one service time).
  EXPECT_DOUBLE_EQ(m.slowdown(0).mean(), 0.5);
}

TEST(Shard, TokenBucketStagesWorkBeyondTheClassRate) {
  ShardConfig cfg = two_class_config();
  cfg.bucket_burst_seconds = 1.0;  // burst = 1 work unit
  cfg.initial_rates = {0.5, 0.5};
  Shard shard(cfg, Rng(1));

  // A size-2 giant against a burst of 1: released immediately (deficit
  // semantics), leaving the bucket at -1; the follow-up request stages
  // until the deficit is paid off at rate 0.5 (t = 2).
  ASSERT_TRUE(shard.submit(make_request(1, 0.0, 2.0, 1)));
  ASSERT_TRUE(shard.submit(make_request(1, 0.0, 1.0, 2)));
  shard.drain(0.0);
  ShardSnapshot snap = shard.snapshot();
  EXPECT_EQ(snap.staged[1], 1u);

  shard.drain(1.9);  // level -0.05: still staged
  EXPECT_EQ(shard.snapshot().staged[1], 1u);
  shard.drain(2.0);  // level back to 0: released
  EXPECT_EQ(shard.snapshot().staged[1], 0u);
}

TEST(Shard, CountsDropsWhenIngressOverflows) {
  ShardConfig cfg = two_class_config();
  cfg.ingress_capacity = 2;
  Shard shard(cfg, Rng(1));
  EXPECT_TRUE(shard.submit(make_request(0, 0.0, 1.0)));
  EXPECT_TRUE(shard.submit(make_request(0, 0.0, 1.0)));
  EXPECT_FALSE(shard.submit(make_request(0, 0.0, 1.0)));
  EXPECT_EQ(shard.dropped(), 1u);
  shard.drain(0.0);
  EXPECT_EQ(shard.outstanding(), 2u);
}

TEST(Shard, AppliesControllerRatesAtNextDrain) {
  ShardConfig cfg = two_class_config();
  Shard shard(cfg, Rng(1));
  EXPECT_DOUBLE_EQ(shard.snapshot().rate[0], 0.5);
  shard.apply_rates({0.8, 0.2});
  EXPECT_DOUBLE_EQ(shard.snapshot().rate[0], 0.5);  // not yet
  shard.drain(1.0);
  EXPECT_DOUBLE_EQ(shard.snapshot().rate[0], 0.8);
  EXPECT_DOUBLE_EQ(shard.snapshot().rate[1], 0.2);
}

TEST(Shard, EstimatorTracksArrivalRatePerWindow) {
  ShardConfig cfg = two_class_config();
  Shard shard(cfg, Rng(1));
  // 30 class-0 and 10 class-1 arrivals in the first 1s window.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(shard.submit(make_request(0, i * 0.03, 0.01)));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(shard.submit(make_request(1, i * 0.09, 0.01)));
  }
  shard.drain(0.95);
  shard.drain(1.0);  // rolls the [0,1) window
  const ShardSnapshot snap = shard.snapshot();
  EXPECT_EQ(snap.windows_closed, 1u);
  EXPECT_DOUBLE_EQ(snap.lambda_hat[0], 30.0);
  EXPECT_DOUBLE_EQ(snap.lambda_hat[1], 10.0);
}

// ------------------------------------------------------------ controller

TEST(Controller, ColdStartKeepsEqualSplitThenMatchesEq17) {
  ShardConfig cfg = two_class_config();
  Shard shard(cfg, Rng(1));
  ControllerConfig cc;
  cc.delta = {1.0, 2.0};
  cc.total_capacity = 1.0;
  cc.mean_size = 0.01;
  cc.allocator = AllocatorKind::kPsd;
  Controller controller(cc, {&shard});

  // Cold: no estimator window closed yet -> no reallocation.
  controller.tick(0.5);
  EXPECT_EQ(controller.snapshot().allocations, 0u);
  EXPECT_DOUBLE_EQ(controller.snapshot().rate[0], 0.5);

  // Warm one window with known rates (30/s and 10/s of size 0.01).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(shard.submit(make_request(0, i * 0.03, 0.01)));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(shard.submit(make_request(1, i * 0.09, 0.01)));
  }
  shard.drain(1.0);
  controller.tick(1.0);
  EXPECT_EQ(controller.snapshot().allocations, 1u);

  PsdInput in;
  in.lambda = {30.0, 10.0};
  in.delta = cc.delta;
  in.mean_size = cc.mean_size;
  in.capacity = cc.total_capacity;
  in.overload = OverloadPolicy::kClamp;
  const auto expected = allocate_psd_rates(in);
  const ControllerSnapshot snap = controller.snapshot();
  EXPECT_NEAR(snap.rate[0], expected.rate[0], 1e-12);
  EXPECT_NEAR(snap.rate[1], expected.rate[1], 1e-12);
  EXPECT_DOUBLE_EQ(snap.lambda[0], 30.0);

  // The shard adopts the slice at its next drain.
  shard.drain(1.1);
  EXPECT_NEAR(shard.snapshot().rate[0], expected.rate[0], 1e-12);
}

// --------------------------------------------------------------- runtime

RtConfig small_runtime_config() {
  RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.mean_service_seconds = 1e-3;  // 500 req/s at load 0.5
  cfg.shards = 2;
  cfg.loadgens = 2;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.5;
  cfg.duration = 3.0;
  cfg.seed = 71;
  return cfg;
}

RtReport drive_manual(const RtConfig& cfg) {
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  return runtime.report();
}

TEST(Runtime, ManualDriveServesAndDifferentiates) {
  const RtConfig cfg = small_runtime_config();
  const RtReport r = drive_manual(cfg);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.outstanding, 0u);
  EXPECT_EQ(r.produced, r.completed_all);
  EXPECT_GT(r.cls[0].completed, 100u);
  EXPECT_GT(r.cls[1].completed, 100u);
  EXPECT_GT(r.reallocations, 10u);
  // Differentiation engaged: class 2 measurably slower than class 1 and in
  // the right neighborhood of the 2.0 target (deterministic, fixed seed).
  EXPECT_GT(r.cls[1].achieved_ratio, 1.3);
  EXPECT_LT(r.cls[1].achieved_ratio, 3.0);
  EXPECT_TRUE(std::isfinite(r.max_window_ratio_error));
}

TEST(Runtime, ManualDriveIsBitwiseDeterministic) {
  const RtConfig cfg = small_runtime_config();
  const RtReport a = drive_manual(cfg);
  const RtReport b = drive_manual(cfg);
  ASSERT_EQ(a.cls.size(), b.cls.size());
  EXPECT_EQ(a.produced, b.produced);
  EXPECT_EQ(a.completed_all, b.completed_all);
  EXPECT_EQ(a.drains, b.drains);
  for (std::size_t c = 0; c < a.cls.size(); ++c) {
    EXPECT_EQ(a.cls[c].completed, b.cls[c].completed);
    // Bitwise: identical draw order, identical drain schedule.
    EXPECT_DOUBLE_EQ(a.cls[c].mean_slowdown, b.cls[c].mean_slowdown);
    if (c > 0) {  // class 0's ratio-vs-itself is deliberately unset (NaN)
      EXPECT_DOUBLE_EQ(a.cls[c].window_ratio_p50, b.cls[c].window_ratio_p50);
    }
  }
}

TEST(Runtime, NoneAllocatorNeverReallocates) {
  RtConfig cfg = small_runtime_config();
  cfg.allocator = AllocatorKind::kNone;
  cfg.duration = 1.0;
  cfg.warmup = 0.2;
  const RtReport r = drive_manual(cfg);
  EXPECT_EQ(r.reallocations, 0u);
  EXPECT_GT(r.controller_ticks, 0u);
}

TEST(Runtime, TraceReplayDeliversEveryEntry) {
  RtConfig cfg = small_runtime_config();
  cfg.size_dist = DistSpec::deterministic(1.0);
  cfg.shards = 2;
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    // Recorded in model units where E[X] = 1; class alternates.
    trace.push_back({10.0 + i * 0.5, static_cast<ClassId>(i % 2), 1.0});
  }
  Runtime runtime(cfg, ManualClock{}, trace, cfg.mean_service_seconds);
  for (Time t = 0.005; t <= 0.06 + 1e-9; t += 0.005) runtime.step_to(t);
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  const RtReport r = runtime.report();
  EXPECT_EQ(r.produced, 100u);
  EXPECT_EQ(r.completed_all, 100u);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(Runtime, ThreadedRunRejectsManualClockAndViceVersa) {
  RtConfig cfg = small_runtime_config();
  Runtime manual(cfg, ManualClock{});
  EXPECT_THROW(manual.run(), std::invalid_argument);
  Runtime steady(cfg, SteadyClock{});
  EXPECT_THROW(steady.step_to(1.0), std::invalid_argument);
}

TEST(RtConfig, ValidatesInputs) {
  RtConfig cfg;
  cfg.load = 1.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = RtConfig{};
  cfg.delta = {2.0, 1.0};  // decreasing
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = RtConfig{};
  cfg.warmup = cfg.duration;  // no measurement interval
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = RtConfig{};
  cfg.load_share = {0.9, 0.3};  // sums to 1.2
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace psd::rt
