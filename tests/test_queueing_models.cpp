// Analytic queueing layer: Pollaczek–Khinchin (Lemma 1), Theorem-1 scaling,
// M/D/1 eq. 15, M/M/1 textbook values, cross-model consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/exponential.hpp"
#include "queueing/mg1_priority.hpp"
#include "queueing/md1.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"

namespace psd {
namespace {

TEST(Mm1, TextbookValues) {
  Mm1 q(0.5, 1.0);
  EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
  EXPECT_DOUBLE_EQ(q.expected_wait(), 1.0);
  EXPECT_DOUBLE_EQ(q.expected_response(), 2.0);
  EXPECT_DOUBLE_EQ(q.expected_queue_length(), 0.5);
  EXPECT_TRUE(q.stable());
}

TEST(Mm1, UnstableThrows) {
  Mm1 q(2.0, 1.0);
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.expected_wait(), std::domain_error);
}

TEST(Md1, Equation15IsLoadOnly) {
  // eq. 15: E[S] = rho/(2(1-rho)) regardless of the constant c.
  for (double c : {0.1, 1.0, 10.0}) {
    Md1 q(0.5 / c, c);
    EXPECT_NEAR(q.expected_slowdown(), 0.5, 1e-12) << "c=" << c;
  }
}

TEST(Md1, WaitScalesWithService) {
  Md1 a(0.5, 1.0);
  Md1 b(0.05, 10.0);
  EXPECT_NEAR(b.expected_wait() / a.expected_wait(), 10.0, 1e-9);
}

TEST(Md1, RateParameterActsLikeCapacity) {
  // Serving constant c at rate r == serving constant c/r at rate 1.
  Md1 scaled(0.25, 1.0, 0.5);
  Md1 direct(0.25, 2.0, 1.0);
  EXPECT_NEAR(scaled.expected_wait(), direct.expected_wait(), 1e-12);
  EXPECT_NEAR(scaled.expected_slowdown(), direct.expected_slowdown(), 1e-12);
}

TEST(Mg1, MatchesMm1ForExponentialService) {
  // P-K with E[X^2] = 2 m^2 must reproduce M/M/1 exactly.
  Exponential ex(1.0);
  Mg1 g(0.5, ex);
  Mm1 m(0.5, 1.0);
  EXPECT_NEAR(g.expected_wait(), m.expected_wait(), 1e-12);
  EXPECT_NEAR(g.expected_response(), m.expected_response(), 1e-12);
}

TEST(Mg1, MatchesMd1ForDeterministicService) {
  Deterministic d(1.0);
  Mg1 g(0.5, d);
  Md1 m(0.5, 1.0);
  EXPECT_NEAR(g.expected_wait(), m.expected_wait(), 1e-12);
  EXPECT_NEAR(g.expected_slowdown(), m.expected_slowdown(), 1e-12);
}

TEST(Mg1, Lemma1SlowdownFactorization) {
  // E[S] = E[W] * E[1/X] for the Bounded Pareto (Lemma 1).
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double lam = 0.5 / bp.mean();
  Mg1 g(lam, bp);
  EXPECT_NEAR(g.expected_slowdown(), g.expected_wait() * bp.mean_inverse(),
              1e-10);
}

TEST(Mg1, Theorem1ClosedForm) {
  // E[S_i] = lambda E[X^2] E[1/X] / (2 (r - lambda E[X])).
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double r : {0.3, 0.5, 1.0}) {
    const double lam = 0.4 * r / bp.mean();  // rho = 0.4 at this rate
    Mg1 g(lam, bp, r);
    const double expect = lam * bp.second_moment() * bp.mean_inverse() /
                          (2.0 * (r - lam * bp.mean()));
    EXPECT_NEAR(g.expected_slowdown(), expect, 1e-10 * expect) << "r=" << r;
  }
}

TEST(Mg1, Theorem1EqualsLemma1OnScaledDistribution) {
  // Serving X at rate r == serving X/r at rate 1 (Lemma 2 consistency).
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double r = 0.37;
  const double lam = 0.6 * r / bp.mean();
  Mg1 direct(lam, bp, r);
  const BoundedPareto scaled = bp.scaled_by_rate(r);
  Mg1 unit(lam, scaled, 1.0);
  EXPECT_NEAR(direct.expected_wait(), unit.expected_wait(), 1e-10);
  EXPECT_NEAR(direct.expected_slowdown(), unit.expected_slowdown(), 1e-10);
}

TEST(Mg1, SlowdownDivergesAsRhoApproachesOne) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  double prev = 0.0;
  for (double rho : {0.5, 0.9, 0.99, 0.999}) {
    Mg1 g(rho / bp.mean(), bp);
    const double s = g.expected_slowdown();
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 1000.0);
}

TEST(Mg1, UnstableThrowsButUtilizationReadable) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  Mg1 g(2.0 / bp.mean(), bp);
  EXPECT_FALSE(g.stable());
  EXPECT_NEAR(g.utilization(), 2.0, 1e-12);
  EXPECT_THROW(g.expected_wait(), std::domain_error);
  EXPECT_THROW(g.expected_slowdown(), std::domain_error);
}

TEST(Mg1, MetricsBundleConsistent) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  Mg1 g(0.5 / bp.mean(), bp);
  const auto m = g.metrics();
  EXPECT_DOUBLE_EQ(m.utilization, g.utilization());
  EXPECT_DOUBLE_EQ(m.expected_wait, g.expected_wait());
  EXPECT_DOUBLE_EQ(m.expected_response, g.expected_response());
  EXPECT_DOUBLE_EQ(m.expected_slowdown, g.expected_slowdown());
  EXPECT_NEAR(m.expected_response - m.expected_wait, bp.mean(), 1e-12);
}

TEST(Mg1, RejectsNonPositiveInputs) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_THROW(Mg1(0.0, bp), std::invalid_argument);
  EXPECT_THROW(Mg1(1.0, bp, 0.0), std::invalid_argument);
}

TEST(Mg1SecondMoments, TakacsMatchesMm1ClosedForm) {
  // M/M/1 wait: P(W=0)=1-rho plus an exponential tail, so
  // E[W^2] = 2 rho / (mu - lambda)^2.  Takacs must reproduce it.
  Exponential ex(1.0);
  const double lam = 0.5;
  Mg1 g(lam, ex, 1.0, /*E[X^3]=*/6.0);
  EXPECT_NEAR(g.wait_second_moment(), 2.0 * 0.5 / 0.25, 1e-12);
}

TEST(Mg1SecondMoments, RequiresThirdMoment) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  Mg1 g(0.5 / bp.mean(), bp);  // third moment not supplied
  EXPECT_THROW(g.wait_second_moment(), std::domain_error);
}

TEST(Mg1SecondMoments, BoundedParetoViaMomentFunction) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double lam = 0.5 / bp.mean();
  Mg1 g(lam, bp, 1.0, bp.moment(3.0));
  const double ew = g.expected_wait();
  EXPECT_GT(g.wait_second_moment(), ew * ew);  // Var[W] > 0
  // Slowdown CV is large for heavy tails — the analytic root of the wide
  // percentile bands in the paper's Fig. 5.
  const double cv = g.slowdown_cv(bp.moment(-2.0));
  EXPECT_GT(cv, 1.0);
}

TEST(Mg1SecondMoments, SlowdownCvGrowsWithUpperBound) {
  // Fig.-12/Fig.-5 connection: a heavier tail widens the slowdown spread.
  double prev = 0.0;
  for (double p : {100.0, 1000.0, 10000.0}) {
    BoundedPareto bp(1.5, 0.1, p);
    Mg1 g(0.5 / bp.mean(), bp, 1.0, bp.moment(3.0));
    const double cv = g.slowdown_cv(bp.moment(-2.0));
    EXPECT_GT(cv, prev) << "p=" << p;
    prev = cv;
  }
}

TEST(Mg1SecondMoments, VarianceNonNegativeAcrossLoads) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double rho : {0.1, 0.5, 0.9}) {
    Mg1 g(rho / bp.mean(), bp, 1.0, bp.moment(3.0));
    EXPECT_GE(g.slowdown_variance(bp.moment(-2.0)), 0.0) << rho;
  }
}

TEST(Mg1, ExponentialSlowdownUndefinedButDelayWorks) {
  // Paper §5: E[1/X] diverges under unbounded exponential service, so the
  // slowdown is undefined — yet delay/response metrics must remain usable.
  Exponential ex(1.0);
  Mg1 g(0.5, ex);
  EXPECT_NEAR(g.expected_wait(), 1.0, 1e-12);
  EXPECT_THROW(g.expected_slowdown(), std::domain_error);
  EXPECT_THROW(g.metrics(), std::domain_error);
}

}  // namespace
}  // namespace psd
