// Numeric helpers: compensated summation, grids, adaptive quadrature.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/math.hpp"

namespace psd {
namespace {

TEST(KahanSum, ExactForSmallSums) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
}

TEST(KahanSum, CompensatesCatastrophicCancellation) {
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10000000; ++i) s.add(1e-16);
  // Naive summation would lose the small terms entirely.
  EXPECT_NEAR(s.value(), 1.0 + 1e-9, 1e-12);
}

TEST(KahanSum, ResetClearsState) {
  KahanSum s;
  s.add(5.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AlmostEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_TRUE(almost_equal(0.0, 1e-12));
}

TEST(RelativeError, AgainstReference) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 11);
  ASSERT_EQ(g.size(), 11u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_NEAR(g[i] - g[i - 1], 0.1, 1e-12);
  }
}

TEST(Linspace, RejectsDegenerate) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

TEST(Logspace, EndpointsAndGeometricSpacing) {
  const auto g = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 1000.0);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[2], 100.0, 1e-9);
}

TEST(Logspace, RejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 3), std::invalid_argument);
}

TEST(Integrate, Polynomial) {
  const double v = integrate([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 8.0, 1e-9);
}

TEST(Integrate, SineOverHalfPeriod) {
  const double v =
      integrate([](double x) { return std::sin(x); }, 0.0, std::numbers::pi);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(Integrate, SteepIntegrand) {
  // x^{-2.5} over [0.1, 100]: the Bounded Pareto inverse-moment shape.
  const double v =
      integrate([](double x) { return std::pow(x, -2.5); }, 0.1, 100.0);
  const double exact = (std::pow(0.1, -1.5) - std::pow(100.0, -1.5)) / 1.5;
  EXPECT_NEAR(v, exact, 1e-7 * exact);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 3.0, 3.0), 0.0);
}

TEST(Integrate, RejectsInvertedBounds) {
  EXPECT_THROW(integrate([](double) { return 1.0; }, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace psd
