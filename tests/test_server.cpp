// Server composition: wiring, reallocation loop, estimator integration.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/static_allocators.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

ServerConfig base_cfg(std::size_t classes, Duration realloc = 0.0) {
  ServerConfig c;
  c.num_classes = classes;
  c.capacity = 1.0;
  c.realloc_period = realloc;
  c.metrics.num_classes = classes;
  c.metrics.warmup_end = 0.0;
  c.metrics.window = 100.0;
  return c;
}

TEST(Server, ProcessesSubmittedRequestEndToEnd) {
  Simulator sim;
  Server server(sim, base_cfg(1), std::make_unique<DedicatedRateBackend>(),
                nullptr, Rng(1));
  Request r;
  r.cls = 0;
  r.arrival = 0.0;
  r.size = 2.0;
  sim.at_fast(0.0, [&] { server.submit(r); });
  sim.run_until(10.0);
  server.finalize();
  EXPECT_EQ(server.metrics().completed(0), 1u);
  EXPECT_EQ(server.submitted(), 1u);
  EXPECT_DOUBLE_EQ(server.metrics().service(0).mean(), 2.0);
}

TEST(Server, InitialRatesDefaultToEqualSplit) {
  Simulator sim;
  Server server(sim, base_cfg(4), std::make_unique<DedicatedRateBackend>(),
                nullptr, Rng(1));
  for (double r : server.current_rates()) EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(Server, ExplicitInitialRatesRespected) {
  Simulator sim;
  auto cfg = base_cfg(2);
  cfg.initial_rates = {0.8, 0.2};
  Server server(sim, cfg, std::make_unique<DedicatedRateBackend>(), nullptr,
                Rng(1));
  EXPECT_DOUBLE_EQ(server.current_rates()[0], 0.8);
}

TEST(Server, InitialRatesExceedingCapacityRejected) {
  Simulator sim;
  auto cfg = base_cfg(2);
  cfg.initial_rates = {0.8, 0.8};
  EXPECT_THROW(Server(sim, cfg, std::make_unique<DedicatedRateBackend>(),
                      nullptr, Rng(1)),
               std::invalid_argument);
}

TEST(Server, ReallocRequiresAllocator) {
  Simulator sim;
  EXPECT_THROW(Server(sim, base_cfg(1, 100.0),
                      std::make_unique<DedicatedRateBackend>(), nullptr,
                      Rng(1)),
               std::invalid_argument);
}

TEST(Server, PeriodicReallocationUpdatesRates) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdAllocatorConfig pc;
  pc.delta = {1.0, 2.0};
  pc.mean_size = bp.mean();
  Server server(sim, base_cfg(2, 100.0),
                std::make_unique<DedicatedRateBackend>(),
                std::make_unique<PsdRateAllocator>(pc), Rng(2));
  server.start(0.0);

  // Only class 0 receives traffic: after reallocation its rate must exceed
  // the cold-start equal split.
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  gens.push_back(std::make_unique<RequestGenerator>(
      sim, Rng(3), 0, PoissonArrivals(1.0),
      BoundedParetoSampler(bp), server));
  gens[0]->start(0.0);
  sim.run_until(1000.0);
  EXPECT_GE(server.reallocations(), 9u);
  EXPECT_GT(server.current_rates()[0], 0.9);
  EXPECT_LT(server.current_rates()[1], 0.1);
}

TEST(Server, EstimatorSeesArrivals) {
  Simulator sim;
  Server server(sim, base_cfg(2, 100.0),
                std::make_unique<DedicatedRateBackend>(),
                std::make_unique<EqualShareAllocator>(2, 1.0), Rng(1));
  server.start(0.0);
  for (int i = 0; i < 50; ++i) {
    const Time arrival = static_cast<double>(i);
    sim.at_fast(arrival, [&server, arrival] {
      Request r;
      r.cls = 1;
      r.arrival = arrival;
      r.size = 0.5;
      server.submit(r);
    });
  }
  sim.run_until(100.0);  // first estimator window closes
  const auto lam = server.estimator().lambda_estimate();
  EXPECT_DOUBLE_EQ(lam[0], 0.0);
  EXPECT_NEAR(lam[1], 0.5, 1e-9);
}

TEST(Server, SubmitValidatesRequests) {
  Simulator sim;
  Server server(sim, base_cfg(2), std::make_unique<DedicatedRateBackend>(),
                nullptr, Rng(1));
  Request bad_cls;
  bad_cls.cls = 7;
  bad_cls.size = 1.0;
  EXPECT_THROW(server.submit(bad_cls), std::invalid_argument);
  Request bad_size;
  bad_size.cls = 0;
  bad_size.size = 0.0;
  EXPECT_THROW(server.submit(bad_size), std::invalid_argument);
}

TEST(Server, MetricsClassCountMustMatch) {
  Simulator sim;
  auto cfg = base_cfg(2);
  cfg.metrics.num_classes = 3;
  EXPECT_THROW(Server(sim, cfg, std::make_unique<DedicatedRateBackend>(),
                      nullptr, Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace psd
