// IntervalSeries: the per-1000-tu windowing that underlies Figs. 5-8.
#include <gtest/gtest.h>

#include "stats/interval_series.hpp"

namespace psd {
namespace {

TEST(IntervalSeries, RejectsNonPositiveWindow) {
  EXPECT_THROW(IntervalSeries(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(IntervalSeries(0.0, -1.0), std::invalid_argument);
}

TEST(IntervalSeries, SingleWindowMean) {
  IntervalSeries s(0.0, 10.0);
  s.add(1.0, 2.0);
  s.add(2.0, 4.0);
  s.finalize();
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].count, 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].mean, 3.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].max, 4.0);
  EXPECT_DOUBLE_EQ(s.windows()[0].start, 0.0);
}

TEST(IntervalSeries, RollsAcrossWindows) {
  IntervalSeries s(0.0, 10.0);
  s.add(5.0, 1.0);
  s.add(15.0, 3.0);
  s.add(25.0, 5.0);
  s.finalize();
  ASSERT_EQ(s.windows().size(), 3u);
  EXPECT_DOUBLE_EQ(s.windows()[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].mean, 3.0);
  EXPECT_DOUBLE_EQ(s.windows()[2].mean, 5.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].start, 10.0);
}

TEST(IntervalSeries, EmptyGapWindowsAreRecorded) {
  IntervalSeries s(0.0, 1.0);
  s.add(0.5, 1.0);
  s.add(4.5, 2.0);  // windows 1,2,3 are empty
  s.finalize();
  ASSERT_EQ(s.windows().size(), 5u);
  EXPECT_EQ(s.windows()[1].count, 0u);
  EXPECT_EQ(s.windows()[2].count, 0u);
  EXPECT_EQ(s.windows()[3].count, 0u);
  EXPECT_EQ(s.windows()[4].count, 1u);
}

TEST(IntervalSeries, NonZeroOrigin) {
  IntervalSeries s(100.0, 50.0);
  s.add(120.0, 7.0);
  s.add(160.0, 9.0);
  s.finalize();
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows()[0].start, 100.0);
  EXPECT_DOUBLE_EQ(s.windows()[1].start, 150.0);
}

TEST(IntervalSeries, BoundaryObservationGoesToNextWindow) {
  IntervalSeries s(0.0, 10.0);
  s.add(10.0, 5.0);  // exactly at the boundary -> second window
  s.finalize();
  ASSERT_EQ(s.windows().size(), 2u);
  EXPECT_EQ(s.windows()[0].count, 0u);
  EXPECT_EQ(s.windows()[1].count, 1u);
}

TEST(IntervalSeries, FinalizeIsIdempotent) {
  IntervalSeries s(0.0, 10.0);
  s.add(1.0, 1.0);
  s.finalize();
  s.finalize();
  EXPECT_EQ(s.windows().size(), 1u);
}

TEST(IntervalSeries, AddAfterFinalizeThrows) {
  IntervalSeries s(0.0, 10.0);
  s.finalize();
  EXPECT_THROW(s.add(1.0, 1.0), std::logic_error);
}

TEST(IntervalSeries, ClampsSlightClockJitterBeforeOrigin) {
  IntervalSeries s(10.0, 10.0);
  s.add(9.9999, 1.0);  // clamped into the first window
  s.finalize();
  ASSERT_EQ(s.windows().size(), 1u);
  EXPECT_EQ(s.windows()[0].count, 1u);
}

}  // namespace
}  // namespace psd
