// The three predictability/controllability properties the paper derives from
// eq. 18 (§3), verified numerically across a parameter grid, plus invariance
// properties of the allocation (property-style sweeps via TEST_P).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/psd_allocation.hpp"
#include "dist/bounded_pareto.hpp"
#include "workload/class_spec.hpp"

namespace psd {
namespace {

using Grid = std::tuple<double, double>;  // (load, delta2)

class PsdPropertyGrid : public ::testing::TestWithParam<Grid> {
 protected:
  BoundedPareto bp_{1.5, 0.1, 100.0};

  std::vector<double> lambdas() const {
    const auto [load, d2] = GetParam();
    (void)d2;
    return rates_for_equal_load(load, 1.0, bp_.mean(), 2);
  }
  std::vector<double> deltas() const {
    const auto [load, d2] = GetParam();
    (void)load;
    return {1.0, d2};
  }
};

TEST_P(PsdPropertyGrid, RatioPinnedToDeltaRatio) {
  const auto sd = expected_psd_slowdowns(lambdas(), deltas(), bp_);
  EXPECT_NEAR(sd[1] / sd[0], deltas()[1], 1e-10);
}

TEST_P(PsdPropertyGrid, Property1SlowdownIncreasesWithOwnArrivalRate) {
  auto lam = lambdas();
  const auto base = expected_psd_slowdowns(lam, deltas(), bp_);
  lam[0] *= 1.05;
  const auto bumped = expected_psd_slowdowns(lam, deltas(), bp_);
  EXPECT_GT(bumped[0], base[0]);
  EXPECT_GT(bumped[1], base[1]);  // shared capacity: everyone slows
}

TEST_P(PsdPropertyGrid, Property2DeltaRaisesOwnLowersOthers) {
  const auto lam = lambdas();
  auto d = deltas();
  const auto base = expected_psd_slowdowns(lam, d, bp_);
  d[1] *= 1.25;
  const auto bumped = expected_psd_slowdowns(lam, d, bp_);
  EXPECT_GT(bumped[1], base[1]);  // its own slowdown rises
  EXPECT_LT(bumped[0], base[0]);  // every other class improves
}

TEST_P(PsdPropertyGrid, Property3HigherClassLoadHurtsMore) {
  // Adding load to the higher class (smaller delta) increases everyone's
  // slowdown MORE than adding the same load to a lower class.
  const auto lam = lambdas();
  const auto d = deltas();
  const double eps = lam[0] * 0.05;

  auto lam_hi = lam;
  lam_hi[0] += eps;  // bump the higher class (delta 1)
  auto lam_lo = lam;
  lam_lo[1] += eps;  // bump the lower class (delta d2 > 1)

  const auto sd_hi = expected_psd_slowdowns(lam_hi, d, bp_);
  const auto sd_lo = expected_psd_slowdowns(lam_lo, d, bp_);
  EXPECT_GT(sd_hi[0], sd_lo[0]);
  EXPECT_GT(sd_hi[1], sd_lo[1]);
}

TEST_P(PsdPropertyGrid, HigherClassAlwaysFasterWithOrderedDeltas) {
  const auto sd = expected_psd_slowdowns(lambdas(), deltas(), bp_);
  EXPECT_LT(sd[0], sd[1]);  // predictability: class 1 (delta 1) is fastest
}

TEST_P(PsdPropertyGrid, AllocationInvariantUnderDeltaRescaling) {
  // Only delta *ratios* matter: scaling all deltas by a constant leaves the
  // rates untouched.
  PsdInput a;
  a.lambda = lambdas();
  a.delta = deltas();
  a.mean_size = bp_.mean();
  a.min_residual_share = 0.0;
  auto b = a;
  for (auto& x : b.delta) x *= 7.3;
  const auto ra = allocate_psd_rates(a);
  const auto rb = allocate_psd_rates(b);
  for (std::size_t i = 0; i < ra.rate.size(); ++i) {
    EXPECT_NEAR(ra.rate[i], rb.rate[i], 1e-12);
  }
}

TEST_P(PsdPropertyGrid, SlowdownDependsOnDistOnlyThroughThreeMoments) {
  // eq. 18 factorizes: doubling E[X^2]E[1/X] doubles every slowdown.
  BoundedPareto wide(1.5, 0.1, 1000.0);  // heavier tail
  const auto sd_narrow = expected_psd_slowdowns(lambdas(), deltas(), bp_);
  // Rescale lambdas so utilization matches under the wider distribution.
  const auto [load, d2] = GetParam();
  (void)d2;
  const auto lam_wide = rates_for_equal_load(load, 1.0, wide.mean(), 2);
  const auto sd_wide = expected_psd_slowdowns(lam_wide, deltas(), wide);
  const double factor_moments =
      (wide.second_moment() * wide.mean_inverse() / wide.mean()) /
      (bp_.second_moment() * bp_.mean_inverse() / bp_.mean());
  EXPECT_NEAR(sd_wide[0] / sd_narrow[0], factor_moments, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    LoadDeltaGrid, PsdPropertyGrid,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(1.5, 2.0, 4.0, 8.0)));

// ---- three-class sweeps -------------------------------------------------

class ThreeClassGrid : public ::testing::TestWithParam<double> {};

TEST_P(ThreeClassGrid, PairwiseRatiosAllPinned) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double load = GetParam();
  const std::vector<double> delta = {1.0, 2.0, 3.0};
  const auto lam = rates_for_equal_load(load, 1.0, bp.mean(), 3);
  const auto sd = expected_psd_slowdowns(lam, delta, bp);
  EXPECT_NEAR(sd[1] / sd[0], 2.0, 1e-10);
  EXPECT_NEAR(sd[2] / sd[0], 3.0, 1e-10);
  EXPECT_NEAR(sd[2] / sd[1], 1.5, 1e-10);
}

TEST_P(ThreeClassGrid, RatesMonotoneInPriorityGivenEqualLoads) {
  // With equal lambdas, the higher class (smaller delta) gets more rate.
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in;
  in.delta = {1.0, 2.0, 3.0};
  in.lambda = rates_for_equal_load(GetParam(), 1.0, bp.mean(), 3);
  in.mean_size = bp.mean();
  in.min_residual_share = 0.0;
  const auto a = allocate_psd_rates(in);
  EXPECT_GT(a.rate[0], a.rate[1]);
  EXPECT_GT(a.rate[1], a.rate[2]);
}

INSTANTIATE_TEST_SUITE_P(Loads, ThreeClassGrid,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ---- unequal load mixes -------------------------------------------------

TEST(UnequalMix, RatiosHoldUnderSkewedShares) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> delta = {1.0, 2.0};
  for (double hi_share : {0.1, 0.3, 0.7, 0.9}) {
    const auto lam =
        rates_for_load(0.6, 1.0, bp.mean(), {hi_share, 1.0 - hi_share});
    const auto sd = expected_psd_slowdowns(lam, delta, bp);
    EXPECT_NEAR(sd[1] / sd[0], 2.0, 1e-10) << "share=" << hi_share;
  }
}

TEST(UnequalMix, LoadConcentrationRaisesAbsoluteSlowdowns) {
  // eq. 18: E[S_i] ∝ sum(lambda_j/delta_j); shifting load into the higher
  // class (delta 1) increases that sum and thus all slowdowns.
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> delta = {1.0, 2.0};
  const auto balanced = expected_psd_slowdowns(
      rates_for_load(0.6, 1.0, bp.mean(), {0.5, 0.5}), delta, bp);
  const auto skewed = expected_psd_slowdowns(
      rates_for_load(0.6, 1.0, bp.mean(), {0.9, 0.1}), delta, bp);
  EXPECT_GT(skewed[0], balanced[0]);
}

}  // namespace
}  // namespace psd
