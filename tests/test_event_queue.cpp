// Event queue: ordering, stable ties, cancellation, drain behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"

namespace psd {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(std::isinf(q.next_time()));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_fast(3.0, [&] { order.push_back(3); });
  q.schedule_fast(1.0, [&] { order.push_back(1); });
  q.schedule_fast(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_fast(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PopReturnsEventTime) {
  EventQueue q;
  q.schedule_fast(4.25, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.25);
  EXPECT_DOUBLE_EQ(q.pop_and_run(), 4.25);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());  // cancelled entries are skipped
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int runs = 0;
  auto h = q.schedule(1.0, [&] { ++runs; });
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  h.cancel();
  EXPECT_EQ(runs, 1);
}

TEST(EventQueue, CancelMiddleEntryKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_fast(1.0, [&] { order.push_back(1); });
  auto h = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule_fast(3.0, [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule_fast(2.0, [] {});
  h.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_fast(1.0, [&] {
    order.push_back(1);
    q.schedule_fast(1.5, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ScheduledTotalCounts) {
  EventQueue q;
  q.schedule_fast(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.scheduled_total(), 2u);
}

TEST(EventQueue, PopFromEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop_and_run(), std::logic_error);
}

TEST(EventQueue, LargeRandomOrderStress) {
  EventQueue q;
  std::vector<double> fired;
  // Insertion order deliberately scrambled via multiplicative hashing.
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 2654435761u) % 100000) / 100.0;
    q.schedule_fast(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(fired.size(), 10000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace psd
