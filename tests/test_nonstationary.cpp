// Nonstationary traffic: the rate allocator is a *periodic* controller, so
// the system must re-converge after load shifts — the adaptiveness claim
// behind the paper's estimator design ("the load for next thousand time
// units was the average load in past five thousand time units").
#include <gtest/gtest.h>

#include <memory>

#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

struct Rig {
  Simulator sim;
  std::unique_ptr<Server> server;
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  BoundedPareto bp{1.5, 0.1, 100.0};

  explicit Rig(std::vector<double> delta) {
    ServerConfig sc;
    sc.num_classes = delta.size();
    sc.realloc_period = 290.0;  // ~1000 tu
    sc.metrics.num_classes = delta.size();
    sc.metrics.warmup_end = 0.0;
    sc.metrics.window = 290.0;
    PsdAllocatorConfig pc;
    pc.delta = delta;
    pc.mean_size = bp.mean();
    server = std::make_unique<Server>(
        sim, sc, std::make_unique<DedicatedRateBackend>(),
        std::make_unique<PsdRateAllocator>(pc), Rng(17));
    server->start(0.0);
  }

  RequestGenerator* add_generator(ClassId cls, double lambda,
                                  std::uint64_t seed) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(seed), cls, PoissonArrivals(lambda),
        BoundedParetoSampler(bp), *server));
    return gens.back().get();
  }
};

TEST(Nonstationary, RatesTrackLoadShift) {
  // Phase 1: only class 0 loaded -> it should own most of the capacity.
  // Phase 2: class 0 stops, class 1 ramps -> allocation must flip.
  Rig rig({1.0, 2.0});
  auto* g0 = rig.add_generator(0, 2.0, 100);
  g0->start(0.0);
  rig.sim.run_until(8000.0);
  const double r0_phase1 = rig.server->current_rates()[0];
  EXPECT_GT(r0_phase1, 0.9);

  g0->stop();
  auto* g1 = rig.add_generator(1, 2.0, 101);
  g1->start(rig.sim.now());
  rig.sim.run_until(20000.0);
  const auto& rates = rig.server->current_rates();
  EXPECT_GT(rates[1], 0.9);
  EXPECT_LT(rates[0], 0.1);
}

TEST(Nonstationary, EstimatorLagIsBoundedByHistoryWindow) {
  // After a step change the estimate is fully refreshed once `history`
  // windows have elapsed; rates must settle within ~6 realloc periods.
  Rig rig({1.0, 2.0});
  auto* g0 = rig.add_generator(0, 1.0, 200);
  auto* g1 = rig.add_generator(1, 1.0, 201);
  g0->start(0.0);
  g1->start(0.0);
  rig.sim.run_until(10000.0);

  // Step: class 1 doubles its rate.
  g1->stop();
  auto* g1b = rig.add_generator(1, 2.0, 202);
  g1b->start(rig.sim.now());

  rig.sim.run_until(10000.0 + 7 * 290.0);
  const auto lam = rig.server->estimator().lambda_estimate();
  EXPECT_NEAR(lam[1], 2.0, 0.4);  // fully refreshed estimate
  EXPECT_NEAR(lam[0], 1.0, 0.3);
}

TEST(Nonstationary, RatioRecoversAfterBurst) {
  // A transient 3x burst on class 1 perturbs the ratio; once the burst ends
  // the long-run means over the post-burst era must again be ordered and
  // roughly proportional.
  Rig rig({1.0, 2.0});
  const auto lam = rates_for_equal_load(0.5, 1.0, rig.bp.mean(), 2);
  auto* g0 = rig.add_generator(0, lam[0], 300);
  auto* g1 = rig.add_generator(1, lam[1], 301);
  g0->start(0.0);
  g1->start(0.0);
  rig.sim.run_until(5000.0);

  auto* burst = rig.add_generator(1, 2.0 * lam[1], 302);
  burst->start(rig.sim.now());
  rig.sim.run_until(8000.0);
  burst->stop();

  rig.sim.run_until(60000.0);
  rig.server->finalize();

  // Judge recovery on the post-burst era only (the whole-run mean is
  // dominated by the backlog drained right after the burst): average the
  // per-window means from well after the burst ended.
  auto era_mean = [&](ClassId c) {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& w : rig.server->metrics().windows(c)) {
      if (w.start > 15000.0 && w.count > 0) {
        sum += w.mean * static_cast<double>(w.count);
        n += w.count;
      }
    }
    return n ? sum / static_cast<double>(n) : kNaN;
  };
  const double s0 = era_mean(0);
  const double s1 = era_mean(1);
  EXPECT_LT(s0, s1);
  EXPECT_GT(s1 / s0, 1.1);
  EXPECT_LT(s1 / s0, 8.0);
}

TEST(Nonstationary, ColdStartServesBeforeFirstEstimate) {
  // Requests arriving before the first estimator window closes must still
  // be served (equal initial split), not stall.
  Rig rig({1.0, 2.0});
  auto* g = rig.add_generator(0, 1.0, 400);
  g->start(0.0);
  rig.sim.run_until(200.0);  // before the first realloc at 290
  rig.server->finalize();
  EXPECT_GT(rig.server->metrics().completed(0), 100u);
}

}  // namespace
}  // namespace psd
