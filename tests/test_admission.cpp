// Admission controllers: gating logic, shedding order, eq.-18 budget math,
// and end-to-end overload protection through the server.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "admission/admission.hpp"
#include "core/psd_allocation.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/arrival.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

TEST(AdmitAll, PassesEverything) {
  AdmitAll a;
  a.update({100.0, 100.0});
  EXPECT_TRUE(a.admit(0));
  EXPECT_TRUE(a.admit(1));
}

TEST(UtilizationGate, AdmitsEverythingUnderThreshold) {
  UtilizationGate g(2, 0.5, 1.0, 0.9);
  g.update({0.5, 0.5});  // demand 0.5 < 0.9
  EXPECT_TRUE(g.admit(0));
  EXPECT_TRUE(g.admit(1));
}

TEST(UtilizationGate, ShedsLowestClassFirst) {
  UtilizationGate g(3, 0.5, 1.0, 0.9);
  g.update({1.0, 1.0, 1.0});  // demand 1.5 > 0.9; drop class 2 -> 1.0;
                              // still > 0.9; drop class 1 -> 0.5
  EXPECT_TRUE(g.admit(0));
  EXPECT_FALSE(g.admit(1));
  EXPECT_FALSE(g.admit(2));
}

TEST(UtilizationGate, NeverShedsHighestClass) {
  UtilizationGate g(2, 1.0, 1.0, 0.5);
  g.update({10.0, 10.0});  // hopeless overload: class 0 stays admitted
  EXPECT_TRUE(g.admit(0));
  EXPECT_FALSE(g.admit(1));
}

TEST(UtilizationGate, ReadmitsWhenLoadFalls) {
  UtilizationGate g(2, 0.5, 1.0, 0.9);
  g.update({1.5, 1.5});
  EXPECT_FALSE(g.admit(1));
  g.update({0.4, 0.4});
  EXPECT_TRUE(g.admit(1));
}

TEST(UtilizationGate, RejectsBadConstruction) {
  EXPECT_THROW(UtilizationGate(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(UtilizationGate(2, 1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(SlowdownBudgetGate, AdmitsWhileBudgetHolds) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  // eq. 18 unit slowdown at load 0.5, two equal classes, deltas (1,2).
  const auto lam = rates_for_equal_load(0.5, 1.0, bp.mean(), 2);
  const auto sd = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  SlowdownBudgetGate generous({1.0, 2.0}, BoundedParetoSampler(bp), 1.0,
                              sd[0] * 1.5 /* above prediction */);
  generous.update(lam);
  EXPECT_TRUE(generous.admit(0));
  EXPECT_TRUE(generous.admit(1));
}

TEST(SlowdownBudgetGate, ShedsWhenBudgetExceeded) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 2);
  const auto sd = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  SlowdownBudgetGate tight({1.0, 2.0}, BoundedParetoSampler(bp), 1.0,
                           sd[0] * 0.25);
  tight.update(lam);
  EXPECT_TRUE(tight.admit(0));   // highest class survives
  EXPECT_FALSE(tight.admit(1));  // lower class shed
}

TEST(SlowdownBudgetGate, SheddingActuallyRestoresBudget) {
  // After shedding class 2, eq. 18 for class 1 alone must satisfy the
  // budget that triggered the shed (when feasible).
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.8, 1.0, bp.mean(), 2);
  const auto full = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  const double budget = full[0] * 0.6;
  SlowdownBudgetGate gate({1.0, 2.0}, BoundedParetoSampler(bp), 1.0, budget);
  gate.update(lam);
  ASSERT_FALSE(gate.admit(1));
  const auto solo = expected_psd_slowdowns({lam[0]}, {1.0}, bp);
  EXPECT_LE(solo[0], budget);
}

TEST(SlowdownBudgetGate, InfeasibleLoadShedsToFeasibility) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 3);
  std::vector<double> heavy = {lam[0] * 2, lam[1] * 2, lam[2] * 2};  // rho 1.8
  SlowdownBudgetGate gate({1.0, 2.0, 3.0}, BoundedParetoSampler(bp), 1.0,
                          50.0);
  gate.update(heavy);
  EXPECT_TRUE(gate.admit(0));
  EXPECT_FALSE(gate.admit(2));  // at least the lowest class must go
}

TEST(ProportionalShedGate, ThinsInDeltaProportionAndLatches) {
  ProportionalShedGate g({1.0, 2.0}, 1.0, 1.0, 0.8);
  g.update({1.0, 1.0});  // demand 2.0, excess 1.2 split 1:2 -> shed 0.4/0.8
  ASSERT_EQ(g.keep().size(), 2u);
  EXPECT_NEAR(g.keep()[0], 0.6, 1e-12);
  EXPECT_NEAR(g.keep()[1], 0.2, 1e-12);
  EXPECT_TRUE(g.admit(0));  // every class survives, just thinned
  EXPECT_TRUE(g.admit(1));
  const auto latched = g.keep();
  for (int i = 0; i < 100; ++i) g.admit_request(1, i * 0.1, 1.0);
  EXPECT_EQ(g.keep(), latched);  // per-request calls never move the latch
  g.update({0.3, 0.3});          // demand fits again: full readmission
  EXPECT_EQ(g.keep()[0], 1.0);
  EXPECT_EQ(g.keep()[1], 1.0);
}

TEST(ProportionalShedGate, ErrorDiffusionAdmitsExactFraction) {
  // Deterministic thinning: over n arrivals class c admits n * keep[c]
  // requests to within one (credit bank carries the fractional remainder).
  ProportionalShedGate g({1.0, 2.0}, 1.0, 1.0, 0.8);
  g.update({1.0, 1.0});  // keep 0.6 / 0.2
  const int n = 1000;
  for (ClassId c = 0; c < 2; ++c) {
    int admitted = 0;
    for (int i = 0; i < n; ++i) {
      admitted += g.admit_request(c, i * 0.01, 1.0) ? 1 : 0;
    }
    EXPECT_NEAR(admitted, n * g.keep()[c], 1.0) << "class " << c;
  }
}

TEST(ProportionalShedGate, HopelessOverloadClampsLowestClassToZero) {
  ProportionalShedGate g({1.0, 2.0}, 1.0, 1.0, 0.8);
  g.update({10.0, 10.0});  // demand 20: class 1's shed share exceeds its
                           // own demand -> zero keep, excess redistributed
  EXPECT_EQ(g.keep()[1], 0.0);
  EXPECT_FALSE(g.admit(1));
  EXPECT_TRUE(g.admit(0));
  // The surviving class is thinned until admitted demand == target.
  EXPECT_NEAR(g.keep()[0] * 10.0, 0.8, 1e-9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(g.admit_request(1, i * 1.0, 1.0));  // zero keep banks zero
  }
}

TEST(TokenBucketGate, BanksBurstThenMetersToRate) {
  // 1 class, threshold 0.5, burst 4 tu -> rate 0.5 work/s, 2.0 banked.
  TokenBucketGate g(1, 1.0, 1.0, 0.5, 4.0);
  EXPECT_TRUE(g.admit(0));  // no latched mask: classes are metered, not cut
  // Deficit semantics: the bucket admits while non-negative, so the third
  // unit request lands on exactly 0 and overdraws; the deficit then gates.
  EXPECT_TRUE(g.admit_request(0, 0.0, 1.0));
  EXPECT_TRUE(g.admit_request(0, 0.0, 1.0));
  EXPECT_TRUE(g.admit_request(0, 0.0, 1.0));
  EXPECT_FALSE(g.admit_request(0, 0.0, 1.0));
  // Offered 1 unit/s against the 0.5 rate: the bucket pays off a 1.0
  // deficit every 2 s, so exactly every other request is admitted.
  int admitted = 0;
  for (int t = 1; t <= 1000; ++t) {
    admitted += g.admit_request(0, static_cast<double>(t), 1.0) ? 1 : 0;
  }
  EXPECT_NEAR(admitted, 500, 5);
}

// Wraps a real gate to observe the latching contract: per-request verdicts
// may only change after an update() call (the estimation-window boundary),
// never between two arrivals inside the same window.
class LatchProbe final : public AdmissionController {
 public:
  LatchProbe(Simulator& sim, std::unique_ptr<AdmissionController> inner,
             std::size_t num_classes)
      : sim_(sim), inner_(std::move(inner)), seen_(num_classes) {}

  void update(const std::vector<double>& lambda_hat) override {
    inner_->update(lambda_hat);
    update_times.push_back(sim_.now());
  }
  bool admit(ClassId cls) const override { return inner_->admit(cls); }
  bool admit_request(ClassId cls, Time now, double size) override {
    const bool verdict = inner_->admit_request(cls, now, size);
    Seen& s = seen_[cls];
    if (s.observed && verdict != s.verdict) {
      ++flips;
      if (update_times.size() == s.updates_seen) ++unexplained_flips;
    }
    s = {true, verdict, update_times.size()};
    return verdict;
  }
  std::string name() const override { return inner_->name(); }

  std::vector<Time> update_times;
  std::size_t flips = 0;
  std::size_t unexplained_flips = 0;

 private:
  struct Seen {
    bool observed = false;
    bool verdict = false;
    std::size_t updates_seen = 0;
  };
  Simulator& sim_;
  std::unique_ptr<AdmissionController> inner_;
  std::vector<Seen> seen_;
};

TEST(ServerAdmission, GateDecisionsLatchOnEstimationWindows) {
  // MMPP phases swing total demand between 0.18 and 1.62 around the 0.85
  // threshold, so the gate sheds class 1 during bursts and readmits it in
  // the lulls — but every verdict change must coincide with an estimator
  // tick, and every tick must land on a realloc_period boundary.
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 200.0;
  sc.estimator_history = 2;  // responsive estimate: phases span ~10 windows
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 2000.0;
  sc.metrics.window = 200.0;

  PsdAllocatorConfig pc;
  pc.delta = {1.0, 2.0};
  pc.mean_size = bp.mean();
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                std::make_unique<PsdRateAllocator>(pc), Rng(3));
  auto probe = std::make_unique<LatchProbe>(
      sim, std::make_unique<UtilizationGate>(2, bp.mean(), 1.0, 0.85), 2);
  LatchProbe* latch = probe.get();
  server.set_admission(std::move(probe));
  server.start(0.0);

  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 2);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    // sojourn is denominated in mean interarrivals: 2000 * lam raw-time
    // high phases, long enough to outlast the estimator smoothing.
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(50 + c), c,
        make_bursty_arrivals(lam[c], 1.8, 2000.0 * lam[c], 0.5),
        BoundedParetoSampler(bp), server));
    gens.back()->start(0.0);
  }
  sim.run_until(40000.0);

  EXPECT_GE(latch->flips, 2u);  // shed at least once, readmitted at least once
  EXPECT_EQ(latch->unexplained_flips, 0u);  // changes only at boundaries
  ASSERT_GT(latch->update_times.size(), 100u);
  for (Time t : latch->update_times) {
    const double k = t / sc.realloc_period;
    EXPECT_NEAR(k, std::round(k), 1e-9) << "update off-boundary at t=" << t;
  }
}

TEST(ServerAdmission, OverloadedServerStaysStableWithGate) {
  // Offered load 1.6 (unstable).  With the utilization gate the highest
  // class must still see bounded queues and complete steadily.
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 200.0;
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 2000.0;
  sc.metrics.window = 200.0;

  PsdAllocatorConfig pc;
  pc.delta = {1.0, 2.0};
  pc.mean_size = bp.mean();
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                std::make_unique<PsdRateAllocator>(pc), Rng(3));
  server.set_admission(
      std::make_unique<UtilizationGate>(2, bp.mean(), 1.0, 0.85));
  server.start(0.0);  // admission decisions latch on estimator ticks

  const auto lam = rates_for_equal_load(1.6, 1.0, bp.mean(), 2);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(50 + c), c, PoissonArrivals(lam[c]),
        BoundedParetoSampler(bp), server));
    gens.back()->start(0.0);
  }
  sim.run_until(20000.0);
  server.finalize();

  EXPECT_GT(server.rejected_total(), 0u);
  EXPECT_EQ(server.rejected(0), 0u);  // highest class never shed
  EXPECT_GT(server.rejected(1), 1000u);
  // Class 0 keeps completing with finite mean slowdown.
  EXPECT_GT(server.metrics().completed(0), 5000u);
  EXPECT_LT(server.metrics().slowdown(0).mean(), 500.0);
}

TEST(ServerAdmission, NoGateMeansNoRejections) {
  Simulator sim;
  ServerConfig sc;
  sc.num_classes = 1;
  sc.metrics.num_classes = 1;
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(), nullptr,
                Rng(1));
  Request r;
  r.cls = 0;
  r.size = 1.0;
  sim.at_fast(0.0, [&] { server.submit(r); });
  sim.run_until(10.0);
  EXPECT_EQ(server.rejected_total(), 0u);
}

}  // namespace
}  // namespace psd
