// Admission controllers: gating logic, shedding order, eq.-18 budget math,
// and end-to-end overload protection through the server.
#include <gtest/gtest.h>

#include <memory>

#include "admission/admission.hpp"
#include "core/psd_allocation.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

TEST(AdmitAll, PassesEverything) {
  AdmitAll a;
  a.update({100.0, 100.0});
  EXPECT_TRUE(a.admit(0));
  EXPECT_TRUE(a.admit(1));
}

TEST(UtilizationGate, AdmitsEverythingUnderThreshold) {
  UtilizationGate g(2, 0.5, 1.0, 0.9);
  g.update({0.5, 0.5});  // demand 0.5 < 0.9
  EXPECT_TRUE(g.admit(0));
  EXPECT_TRUE(g.admit(1));
}

TEST(UtilizationGate, ShedsLowestClassFirst) {
  UtilizationGate g(3, 0.5, 1.0, 0.9);
  g.update({1.0, 1.0, 1.0});  // demand 1.5 > 0.9; drop class 2 -> 1.0;
                              // still > 0.9; drop class 1 -> 0.5
  EXPECT_TRUE(g.admit(0));
  EXPECT_FALSE(g.admit(1));
  EXPECT_FALSE(g.admit(2));
}

TEST(UtilizationGate, NeverShedsHighestClass) {
  UtilizationGate g(2, 1.0, 1.0, 0.5);
  g.update({10.0, 10.0});  // hopeless overload: class 0 stays admitted
  EXPECT_TRUE(g.admit(0));
  EXPECT_FALSE(g.admit(1));
}

TEST(UtilizationGate, ReadmitsWhenLoadFalls) {
  UtilizationGate g(2, 0.5, 1.0, 0.9);
  g.update({1.5, 1.5});
  EXPECT_FALSE(g.admit(1));
  g.update({0.4, 0.4});
  EXPECT_TRUE(g.admit(1));
}

TEST(UtilizationGate, RejectsBadConstruction) {
  EXPECT_THROW(UtilizationGate(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(UtilizationGate(2, 1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(SlowdownBudgetGate, AdmitsWhileBudgetHolds) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  // eq. 18 unit slowdown at load 0.5, two equal classes, deltas (1,2).
  const auto lam = rates_for_equal_load(0.5, 1.0, bp.mean(), 2);
  const auto sd = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  SlowdownBudgetGate generous({1.0, 2.0}, BoundedParetoSampler(bp), 1.0,
                              sd[0] * 1.5 /* above prediction */);
  generous.update(lam);
  EXPECT_TRUE(generous.admit(0));
  EXPECT_TRUE(generous.admit(1));
}

TEST(SlowdownBudgetGate, ShedsWhenBudgetExceeded) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 2);
  const auto sd = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  SlowdownBudgetGate tight({1.0, 2.0}, BoundedParetoSampler(bp), 1.0,
                           sd[0] * 0.25);
  tight.update(lam);
  EXPECT_TRUE(tight.admit(0));   // highest class survives
  EXPECT_FALSE(tight.admit(1));  // lower class shed
}

TEST(SlowdownBudgetGate, SheddingActuallyRestoresBudget) {
  // After shedding class 2, eq. 18 for class 1 alone must satisfy the
  // budget that triggered the shed (when feasible).
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.8, 1.0, bp.mean(), 2);
  const auto full = expected_psd_slowdowns(lam, {1.0, 2.0}, bp);
  const double budget = full[0] * 0.6;
  SlowdownBudgetGate gate({1.0, 2.0}, BoundedParetoSampler(bp), 1.0, budget);
  gate.update(lam);
  ASSERT_FALSE(gate.admit(1));
  const auto solo = expected_psd_slowdowns({lam[0]}, {1.0}, bp);
  EXPECT_LE(solo[0], budget);
}

TEST(SlowdownBudgetGate, InfeasibleLoadShedsToFeasibility) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.9, 1.0, bp.mean(), 3);
  std::vector<double> heavy = {lam[0] * 2, lam[1] * 2, lam[2] * 2};  // rho 1.8
  SlowdownBudgetGate gate({1.0, 2.0, 3.0}, BoundedParetoSampler(bp), 1.0,
                          50.0);
  gate.update(heavy);
  EXPECT_TRUE(gate.admit(0));
  EXPECT_FALSE(gate.admit(2));  // at least the lowest class must go
}

TEST(ServerAdmission, OverloadedServerStaysStableWithGate) {
  // Offered load 1.6 (unstable).  With the utilization gate the highest
  // class must still see bounded queues and complete steadily.
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 200.0;
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 2000.0;
  sc.metrics.window = 200.0;

  PsdAllocatorConfig pc;
  pc.delta = {1.0, 2.0};
  pc.mean_size = bp.mean();
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                std::make_unique<PsdRateAllocator>(pc), Rng(3));
  server.set_admission(
      std::make_unique<UtilizationGate>(2, bp.mean(), 1.0, 0.85));
  server.start(0.0);  // admission decisions latch on estimator ticks

  const auto lam = rates_for_equal_load(1.6, 1.0, bp.mean(), 2);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(50 + c), c, PoissonArrivals(lam[c]),
        BoundedParetoSampler(bp), server));
    gens.back()->start(0.0);
  }
  sim.run_until(20000.0);
  server.finalize();

  EXPECT_GT(server.rejected_total(), 0u);
  EXPECT_EQ(server.rejected(0), 0u);  // highest class never shed
  EXPECT_GT(server.rejected(1), 1000u);
  // Class 0 keeps completing with finite mean slowdown.
  EXPECT_GT(server.metrics().completed(0), 5000u);
  EXPECT_LT(server.metrics().slowdown(0).mean(), 500.0);
}

TEST(ServerAdmission, NoGateMeansNoRejections) {
  Simulator sim;
  ServerConfig sc;
  sc.num_classes = 1;
  sc.metrics.num_classes = 1;
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(), nullptr,
                Rng(1));
  Request r;
  r.cls = 0;
  r.size = 1.0;
  sim.at_fast(0.0, [&] { server.submit(r); });
  sim.run_until(10.0);
  EXPECT_EQ(server.rejected_total(), 0u);
}

}  // namespace
}  // namespace psd
