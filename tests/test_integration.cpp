// End-to-end integration: the full Fig.-1 server under the eq.-17 allocator
// reproduces the paper's analytic predictions within simulation noise.
//
// Absolute mean slowdowns on Bounded Pareto converge slowly (the estimator is
// dominated by rare long busy periods), so assertions favour *ratios* (which
// the PSD model pins) and M/D/1 cases (which converge fast).
#include <gtest/gtest.h>

#include <cmath>

#include "experiment/runner.hpp"
#include "queueing/md1.hpp"

namespace psd {
namespace {

ScenarioConfig fast_cfg() {
  ScenarioConfig cfg;
  cfg.warmup_tu = 2000.0;
  cfg.measure_tu = 20000.0;
  cfg.seed = 1234;
  return cfg;
}

TEST(Integration, TwoClassRatioPinnedAtModerateLoad) {
  // The mean-of-means ratio is noisy under heavy tails (a single monster
  // busy period skews one class's mean), so the primary assertion is the
  // median windowed ratio — the statistic the paper's Fig. 5 bars report.
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.measure_tu = 60000.0;
  const auto r = run_replications(cfg, 48);
  EXPECT_GT(r.ratio[0].p50, 1.3);
  EXPECT_LT(r.ratio[0].p50, 3.0);
  EXPECT_NEAR(r.mean_ratio[1], 2.0, 0.8);
  EXPECT_GT(r.slowdown[0].mean, 0.0);
  EXPECT_LT(r.slowdown[0].mean, r.slowdown[1].mean);
}

TEST(Integration, TwoClassRatioPinnedAtHighLoad) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.9;
  cfg.measure_tu = 60000.0;
  const auto r = run_replications(cfg, 48);
  EXPECT_GT(r.ratio[0].p50, 1.3);
  EXPECT_LT(r.ratio[0].p50, 3.0);
  EXPECT_NEAR(r.mean_ratio[1], 2.0, 0.8);
}

TEST(Integration, ThreeClassRatiosPinned) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0, 3.0};
  cfg.load = 0.6;
  cfg.measure_tu = 60000.0;
  const auto r = run_replications(cfg, 48);
  EXPECT_GT(r.ratio[0].p50, 1.3);
  EXPECT_LT(r.ratio[0].p50, 3.0);
  EXPECT_GT(r.ratio[1].p50, 1.8);
  EXPECT_LT(r.ratio[1].p50, 4.5);
  // Ordering of the long-run means must match the deltas.
  EXPECT_LT(r.slowdown[0].mean, r.slowdown[1].mean);
  EXPECT_LT(r.slowdown[1].mean, r.slowdown[2].mean);
}

TEST(Integration, Md1DeterministicServiceMatchesEq15Closely) {
  // Deterministic service kills the heavy-tail noise: simulated slowdowns
  // must land on eq. 15 / eq. 18 tightly, per class.
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.6;
  cfg.size_dist = DistSpec::deterministic(1.0);
  const auto r = run_replications(cfg, 8);
  ASSERT_TRUE(std::isfinite(r.expected[0]));
  EXPECT_NEAR(r.slowdown[0].mean / r.expected[0], 1.0, 0.1);
  EXPECT_NEAR(r.slowdown[1].mean / r.expected[1], 1.0, 0.1);
  EXPECT_NEAR(r.mean_ratio[1], 2.0, 0.15);
}

TEST(Integration, Md1SlowdownIndependentOfServiceConstant) {
  // eq. 15: E[S] depends only on rho.
  auto base = fast_cfg();
  base.delta = {1.0, 2.0};
  base.load = 0.5;
  base.size_dist = DistSpec::deterministic(0.25);
  auto big = base;
  big.size_dist = DistSpec::deterministic(4.0);
  const auto a = run_replications(base, 6);
  const auto b = run_replications(big, 6);
  EXPECT_NEAR(a.slowdown[0].mean / b.slowdown[0].mean, 1.0, 0.15);
}

TEST(Integration, BoundedParetoMeanSlowdownTracksEq18) {
  // Loose absolute check (heavy tail): within a factor of 2 of eq. 18 at
  // moderate load with a decent replication count.
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  const auto r = run_replications(cfg, 24);
  EXPECT_GT(r.slowdown[0].mean, r.expected[0] * 0.5);
  EXPECT_LT(r.slowdown[0].mean, r.expected[0] * 2.0);
}

TEST(Integration, SlowdownIncreasesWithLoad) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  double prev = 0.0;
  for (double load : {0.2, 0.5, 0.8}) {
    cfg.load = load;
    const auto r = run_replications(cfg, 8);
    EXPECT_GT(r.slowdown[0].mean, prev) << "load=" << load;
    prev = r.slowdown[0].mean;
  }
}

TEST(Integration, EqualShareBaselineDoesNotDifferentiate) {
  // With equal loads and equal rates every class sees the same queue:
  // achieved ratio ~1 regardless of deltas.
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 4.0};
  cfg.load = 0.6;
  cfg.allocator = AllocatorKind::kEqualShare;
  const auto r = run_replications(cfg, 10);
  EXPECT_NEAR(r.mean_ratio[1], 1.0, 0.3);
  EXPECT_TRUE(std::isnan(r.expected[0]));  // eq. 18 not applicable
}

TEST(Integration, SfqBackendStillDifferentiates) {
  // Work-conserving SFQ with eq.-17 weights differentiates, but much less
  // than the strict partition: whenever one class idles the other borrows
  // its capacity, compressing the slowdown gap (ablation A1 quantifies it).
  // Assert ordering and a compressed-but-present gap at high load.
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.9;
  cfg.measure_tu = 60000.0;
  cfg.backend = BackendKind::kSfq;
  const auto r = run_replications(cfg, 24);
  EXPECT_GT(r.mean_ratio[1], 1.05);
  EXPECT_LT(r.slowdown[0].mean, r.slowdown[1].mean);
}

TEST(Integration, AdaptiveAllocatorAlsoHitsTargetRatio) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.6;
  cfg.allocator = AllocatorKind::kAdaptivePsd;
  // Heavy tails make the mean-of-means ratio the slow statistic; the median
  // windowed ratio is the robust one (see the file header), so pin that
  // tightly and give the mean the replication count it needs.
  const auto r = run_replications(cfg, 40);
  EXPECT_NEAR(r.ratio[0].p50, 2.0, 0.5);
  EXPECT_NEAR(r.mean_ratio[1], 2.0, 0.5);
}

TEST(Integration, BurstyArrivalsKeepRatios) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.arrivals = ArrivalKind::kBursty;
  cfg.burstiness = 3.0;
  const auto r = run_replications(cfg, 10);
  EXPECT_NEAR(r.mean_ratio[1], 2.0, 0.6);
}

TEST(Integration, RecordsCapturedInRequestedWindow) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.record_requests = true;
  cfg.record_from_tu = 10000.0;
  cfg.record_to_tu = 11000.0;
  cfg.measure_tu = 11000.0;
  const auto r = run_scenario(cfg, 0);
  ASSERT_FALSE(r.records.empty());
  const double unit = r.time_unit;
  for (const auto& req : r.records) {
    EXPECT_GE(req.departure, 10000.0 * unit);
    EXPECT_LT(req.departure, 11000.0 * unit);
    EXPECT_TRUE(req.completed());
  }
}

TEST(Integration, UnequalLoadSharesStillProportional) {
  auto cfg = fast_cfg();
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.6;
  cfg.load_share = {0.75, 0.25};
  cfg.measure_tu = 60000.0;
  const auto r = run_replications(cfg, 48);
  // With a 75/25 mix the lower class has few requests per window, which
  // biases the windowed-median ratio toward 1; assert ordering plus a
  // present gap rather than the exact pin.
  EXPECT_GT(r.ratio[0].p50, 1.05);
  EXPECT_LT(r.ratio[0].p50, 3.2);
  EXPECT_LT(r.slowdown[0].mean, r.slowdown[1].mean);
}

}  // namespace
}  // namespace psd
