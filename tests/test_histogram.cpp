// Log / linear histograms: binning, quantiles, overflow handling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/percentile.hpp"

namespace psd {
namespace {

TEST(LogHistogram, RejectsBadBounds) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, CountsAndEmptyQuantile) {
  LogHistogram h(0.1, 1000.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  h.add(1.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LogHistogram, UnderflowAndOverflowRetainExtremes) {
  LogHistogram h(1.0, 100.0);
  h.add(0.01);   // underflow
  h.add(5000.0); // overflow
  h.add(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.01);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
}

TEST(LogHistogram, QuantileAccuracyOnLogUniform) {
  Rng rng(3);
  LogHistogram h(0.1, 1000.0, 50);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-1.0, 3.0));
    h.add(x);
    all.push_back(x);
  }
  for (double q : {0.1, 0.5, 0.9}) {
    const double exact = percentile_of(all, q);
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(LogHistogram, BinLowerIsMonotone) {
  LogHistogram h(1.0, 1000.0, 10);
  for (std::size_t i = 1; i < h.bin_count(); ++i) {
    EXPECT_GT(h.bin_lower(i), h.bin_lower(i - 1));
  }
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-12);
}

TEST(LogHistogram, MergeMatchesSingleCollectorExactly) {
  // Shards collect disjoint streams; the fold must be bit-identical to one
  // histogram that saw every sample (this is what the rt report relies on).
  Rng rng(11);
  LogHistogram ground(0.1, 1000.0, 20);
  LogHistogram shard_a(0.1, 1000.0, 20);
  LogHistogram shard_b(0.1, 1000.0, 20);
  LogHistogram shard_c(0.1, 1000.0, 20);  // stays empty
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-2.0, 4.0));  // spills both ends
    ground.add(x);
    (i % 2 == 0 ? shard_a : shard_b).add(x);
  }
  LogHistogram merged = shard_a;
  merged.merge(shard_b);
  merged.merge(shard_c);
  ASSERT_EQ(merged.count(), ground.count());
  ASSERT_EQ(merged.bin_count(), ground.bin_count());
  for (std::size_t i = 0; i < ground.bin_count(); ++i) {
    EXPECT_EQ(merged.bin(i), ground.bin(i)) << "bin " << i;
  }
  for (double q : {0.0, 0.05, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), ground.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MergeRejectsLayoutMismatch) {
  LogHistogram a(0.1, 1000.0, 20);
  LogHistogram b(0.1, 1000.0, 10);   // different bin count
  LogHistogram c(1.0, 1000.0, 20);   // different lower bound
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(LinearHistogram, MergeMatchesSingleCollectorExactly) {
  Rng rng(12);
  LinearHistogram ground(0.0, 1.0, 50);
  LinearHistogram lo(0.0, 1.0, 50);
  LinearHistogram hi(0.0, 1.0, 50);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(-0.1, 1.1);  // spills both ends
    ground.add(x);
    (x < 0.5 ? lo : hi).add(x);
  }
  LinearHistogram merged = lo;
  merged.merge(hi);
  ASSERT_EQ(merged.count(), ground.count());
  for (std::size_t i = 0; i < ground.bin_count(); ++i) {
    EXPECT_EQ(merged.bin(i), ground.bin(i)) << "bin " << i;
  }
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), ground.quantile(q)) << "q=" << q;
  }
}

TEST(LinearHistogram, MergeRejectsLayoutMismatch) {
  LinearHistogram a(0.0, 1.0, 10);
  LinearHistogram b(0.0, 2.0, 10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LinearHistogram, RejectsBadConfig) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, QuantileAccuracyOnUniform) {
  Rng rng(8);
  LinearHistogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(LinearHistogram, QuantileBoundsInvalid) {
  LinearHistogram h(0.0, 1.0, 4);
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
}

TEST(LinearHistogram, NaNGoesToUnderflowBucket) {
  LinearHistogram h(0.0, 1.0, 4);
  h.add(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace psd
