// Log / linear histograms: binning, quantiles, overflow handling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/percentile.hpp"

namespace psd {
namespace {

TEST(LogHistogram, RejectsBadBounds) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, CountsAndEmptyQuantile) {
  LogHistogram h(0.1, 1000.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  h.add(1.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LogHistogram, UnderflowAndOverflowRetainExtremes) {
  LogHistogram h(1.0, 100.0);
  h.add(0.01);   // underflow
  h.add(5000.0); // overflow
  h.add(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.01);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
}

TEST(LogHistogram, QuantileAccuracyOnLogUniform) {
  Rng rng(3);
  LogHistogram h(0.1, 1000.0, 50);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-1.0, 3.0));
    h.add(x);
    all.push_back(x);
  }
  for (double q : {0.1, 0.5, 0.9}) {
    const double exact = percentile_of(all, q);
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.05) << "q=" << q;
  }
}

TEST(LogHistogram, BinLowerIsMonotone) {
  LogHistogram h(1.0, 1000.0, 10);
  for (std::size_t i = 1; i < h.bin_count(); ++i) {
    EXPECT_GT(h.bin_lower(i), h.bin_lower(i - 1));
  }
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-12);
}

TEST(LinearHistogram, RejectsBadConfig) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, QuantileAccuracyOnUniform) {
  Rng rng(8);
  LinearHistogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(LinearHistogram, QuantileBoundsInvalid) {
  LinearHistogram h(0.0, 1.0, 4);
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
}

TEST(LinearHistogram, NaNGoesToUnderflowBucket) {
  LinearHistogram h(0.0, 1.0, 4);
  h.add(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace psd
