// Session-based e-commerce workload (§2.2): chain analysis and emission.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/session.hpp"

namespace psd {
namespace {

class CollectingSink final : public RequestSink {
 public:
  void submit(const Request& req) override { requests.push_back(req); }
  std::vector<Request> requests;
};

TEST(SessionProfile, StorefrontIsWellFormed) {
  const auto p = SessionProfile::storefront(0.1);
  ASSERT_EQ(p.states.size(), 5u);
  for (const auto& st : p.states) {
    double total = 0.0;
    for (double q : st.next_prob) total += q;
    EXPECT_LE(total, 1.0) << st.label;
    EXPECT_EQ(st.next_prob.size(), 5u);
  }
}

TEST(SessionProfile, ExpectedVisitsSolveTheChain) {
  // Two-state chain: entry -> state1 w.p. 0.5, state1 -> state1 w.p. 0.5.
  SessionProfile p;
  p.session_rate = 1.0;
  p.states = {
      {"a", 0, DistSpec::deterministic(1.0), 1.0, {0.0, 0.5}},
      {"b", 1, DistSpec::deterministic(1.0), 1.0, {0.0, 0.5}},
  };
  const auto v = p.expected_visits();
  EXPECT_NEAR(v[0], 1.0, 1e-10);
  // visits(b) = 0.5 * visits(a) + 0.5 * visits(b) -> visits(b) = 1.0
  EXPECT_NEAR(v[1], 1.0, 1e-10);
}

TEST(SessionProfile, ClassRequestRatesAggregateByClass) {
  SessionProfile p;
  p.session_rate = 2.0;
  p.states = {
      {"a", 0, DistSpec::deterministic(1.0), 1.0, {0.0, 1.0}},
      {"b", 1, DistSpec::deterministic(1.0), 1.0, {0.0, 0.0}},
  };
  const auto rates = p.class_request_rates(2);
  EXPECT_NEAR(rates[0], 2.0, 1e-10);  // state a visited once per session
  EXPECT_NEAR(rates[1], 2.0, 1e-10);  // b visited once per session
}

TEST(SessionWorkload, EmitsRequestsWithStateClasses) {
  Simulator sim;
  CollectingSink sink;
  SessionWorkload w(sim, Rng(5), SessionProfile::storefront(0.5), sink);
  w.start(0.0);
  sim.run_until(2000.0);
  w.stop();
  ASSERT_GT(w.sessions_started(), 100u);
  ASSERT_GT(sink.requests.size(), w.sessions_started());  // > 1 req/session
  for (const auto& r : sink.requests) {
    EXPECT_LT(r.cls, 2u);
    EXPECT_GT(r.size, 0.0);
  }
}

TEST(SessionWorkload, EmpiricalRatesMatchChainAnalysis) {
  Simulator sim;
  CollectingSink sink;
  const auto profile = SessionProfile::storefront(0.5);
  SessionWorkload w(sim, Rng(6), profile, sink);
  w.start(0.0);
  const double horizon = 20000.0;
  sim.run_until(horizon);
  w.stop();
  sim.run_until(horizon + 100.0);  // drain in-flight sessions a little

  const auto predicted = profile.class_request_rates(2);
  std::vector<double> counts(2, 0.0);
  for (const auto& r : sink.requests) counts[r.cls] += 1.0;
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(counts[c] / horizon / predicted[c], 1.0, 0.1) << "class " << c;
  }
}

TEST(SessionWorkload, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    CollectingSink sink;
    SessionWorkload w(sim, Rng(seed), SessionProfile::storefront(0.2), sink);
    w.start(0.0);
    sim.run_until(500.0);
    return sink.requests.size();
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(SessionWorkload, StopCutsOffMidSessionWalks) {
  Simulator sim;
  CollectingSink sink;
  SessionWorkload w(sim, Rng(7), SessionProfile::storefront(1.0), sink);
  w.start(0.0);
  sim.run_until(100.0);
  w.stop();
  const auto n = sink.requests.size();
  sim.run_until(10000.0);
  EXPECT_EQ(sink.requests.size(), n);
}

TEST(SessionWorkload, RejectsMalformedProfiles) {
  Simulator sim;
  CollectingSink sink;
  SessionProfile empty;
  empty.states.clear();
  EXPECT_THROW(SessionWorkload(sim, Rng(1), empty, sink),
               std::invalid_argument);

  SessionProfile over;
  over.session_rate = 1.0;
  over.states = {{"x", 0, DistSpec::deterministic(1.0), 1.0, {0.7, 0.7}}};
  EXPECT_THROW(SessionWorkload(sim, Rng(1), over, sink),
               std::invalid_argument);
}

}  // namespace
}  // namespace psd
