// Simulator: clock semantics (the now()-before-event-body contract that the
// whole server model depends on), horizons, periodic processes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

TEST(Simulator, ClockAdvancesBeforeEventBodyRuns) {
  // Regression test for the stale-clock bug: an event scheduled at t must
  // observe now() == t inside its callback.
  Simulator sim;
  std::vector<double> observed;
  sim.at_fast(1.0, [&] { observed.push_back(sim.now()); });
  sim.at_fast(2.5, [&] { observed.push_back(sim.now()); });
  sim.run_until(10.0);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_DOUBLE_EQ(observed[0], 1.0);
  EXPECT_DOUBLE_EQ(observed[1], 2.5);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at_fast(2.0, [&] {
    sim.after_fast(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizonInclusive) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(5.0, [&] { ++runs; });  // exactly at horizon: executes
  sim.at_fast(5.0001, [&] { ++runs; });
  EXPECT_EQ(sim.run_until(5.0), 2u);
  EXPECT_EQ(runs, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, ClockJumpsToHorizonWhenIdle) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.at_fast(1.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at_fast(2.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after_fast(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunAllDrains) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(2.0, [&] { ++runs; });
  EXPECT_EQ(sim.run_all(), 2u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(2.0, [&] { ++runs; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelledEventsDoNotAdvanceClock) {
  Simulator sim;
  auto h = sim.at(1.0, [] {});
  sim.at_fast(3.0, [] {});
  h.cancel();
  sim.step();
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Periodic, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 10.0, [&](Time t) { ticks.push_back(t); });
  p.start(10.0);
  sim.run_until(55.0);
  EXPECT_EQ(ticks, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(Periodic, TickSeesAdvancedClock) {
  Simulator sim;
  std::vector<double> nows;
  PeriodicProcess p(sim, 5.0, [&](Time) { nows.push_back(sim.now()); });
  p.start(5.0);
  sim.run_until(16.0);
  EXPECT_EQ(nows, (std::vector<double>{5, 10, 15}));
}

TEST(Periodic, StopCancelsFutureTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicProcess p(sim, 10.0, [&](Time t) {
    ++ticks;
    if (t >= 30.0) p.stop();
  });
  p.start(10.0);
  sim.run_until(1000.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(p.running());
}

TEST(Periodic, RestartRelocatesFirstTick) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 10.0, [&](Time t) { ticks.push_back(t); });
  p.start(10.0);
  p.start(25.0);  // restart supersedes the first schedule
  sim.run_until(50.0);
  EXPECT_EQ(ticks, (std::vector<double>{25, 35, 45}));
}

TEST(Periodic, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0.0, [](Time) {}), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(sim, 1.0, nullptr), std::invalid_argument);
}

TEST(Periodic, DestructorCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicProcess p(sim, 1.0, [&](Time) { ++ticks; });
    p.start(1.0);
  }
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 0);
}

// ---- time streams ----------------------------------------------------------

TEST(Streams, FireAtReturnedTimesAndSeeAdvancedClock) {
  Simulator sim;
  std::vector<double> fired;
  sim.add_stream(1.0, [&](Time t) {
    EXPECT_DOUBLE_EQ(sim.now(), t);  // clock advanced before the callback
    fired.push_back(t);
    return t + 2.0;
  });
  sim.run_until(6.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 3.0);
  EXPECT_DOUBLE_EQ(fired[2], 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 6.0);  // clock still lands on the horizon
}

TEST(Streams, InterleaveWithQueueEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.add_stream(1.5, [&](Time t) {
    order.push_back(1);
    return t + 2.0;  // 1.5, 3.5
  });
  sim.at_fast(1.0, [&] { order.push_back(0); });
  sim.at_fast(2.0, [&] { order.push_back(0); });
  sim.at_fast(4.0, [&] { order.push_back(0); });
  sim.run_until(4.0);  // stream fires at 1.5 and 3.5 inside the horizon
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(Streams, QueueWinsExactTiesAndRanksOrderStreams) {
  Simulator sim;
  std::vector<int> order;
  // Registered completion-style stream (rank 1) BEFORE the arrival-style
  // stream (rank 0): rank must beat registration order at equal times.
  sim.add_stream(2.0, [&](Time) { order.push_back(2); return kInf; }, 1);
  sim.add_stream(2.0, [&](Time) { order.push_back(1); return kInf; }, 0);
  sim.at_fast(2.0, [&] { order.push_back(0); });
  sim.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Streams, SetStreamTimePausesAndResumes) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.add_stream(1.0, [&](Time t) {
    ++fired;
    return t + 1.0;
  });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 3);  // 1, 2, 3
  sim.set_stream_time(id, kInf);  // pause
  sim.run_until(6.0);
  EXPECT_EQ(fired, 3);
  sim.set_stream_time(id, 8.0);  // resume
  sim.run_until(8.0);
  EXPECT_EQ(fired, 4);
}

TEST(Streams, RunAllDrainsQueueAndIdlesOnInfStreams) {
  Simulator sim;
  int fires = 0;
  sim.add_stream(1.0, [&](Time) {
    ++fires;
    return kInf;  // one-shot
  });
  sim.at_fast(2.0, [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_EQ(sim.run_all(), 2u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(fires, 1);
}

TEST(Streams, StepExecutesOneTimelinePointAtATime) {
  Simulator sim;
  std::vector<int> order;
  sim.add_stream(1.0, [&](Time) { order.push_back(1); return kInf; });
  sim.at_fast(2.0, [&] { order.push_back(0); });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(order.size(), 1u);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Streams, ExplicitRescheduleDuringOwnFireBeatsReturnValue) {
  // A sink that stops its generator runs inside that generator's own stream
  // fire; the pause (set_stream_time to kInf) must survive the callback's
  // returned next-arrival time.
  Simulator sim;
  int fires = 0;
  Simulator::StreamId id = Simulator::kNoStream;
  id = sim.add_stream(1.0, [&](Time t) {
    ++fires;
    if (fires == 2) sim.set_stream_time(id, kInf);  // "stop" mid-fire
    return t + 1.0;  // would keep going if the pause were overwritten
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(Streams, CallbackSchedulingQueueEventsPreservesOrder) {
  // A stream callback that schedules an event EARLIER than the stream's own
  // next fire: the cached queue probe in the run loop must pick it up.
  Simulator sim;
  std::vector<double> fired;
  sim.add_stream(1.0, [&](Time t) {
    fired.push_back(t);
    sim.at_fast(t + 0.5, [&] { fired.push_back(sim.now()); });
    return t + 2.0;
  });
  sim.run_until(4.0);
  // stream at 1, event at 1.5, stream at 3, event at 3.5.
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 1.5);
  EXPECT_DOUBLE_EQ(fired[2], 3.0);
  EXPECT_DOUBLE_EQ(fired[3], 3.5);
}

}  // namespace
}  // namespace psd
