// Simulator: clock semantics (the now()-before-event-body contract that the
// whole server model depends on), horizons, periodic processes.
#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

TEST(Simulator, ClockAdvancesBeforeEventBodyRuns) {
  // Regression test for the stale-clock bug: an event scheduled at t must
  // observe now() == t inside its callback.
  Simulator sim;
  std::vector<double> observed;
  sim.at_fast(1.0, [&] { observed.push_back(sim.now()); });
  sim.at_fast(2.5, [&] { observed.push_back(sim.now()); });
  sim.run_until(10.0);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_DOUBLE_EQ(observed[0], 1.0);
  EXPECT_DOUBLE_EQ(observed[1], 2.5);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at_fast(2.0, [&] {
    sim.after_fast(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizonInclusive) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(5.0, [&] { ++runs; });  // exactly at horizon: executes
  sim.at_fast(5.0001, [&] { ++runs; });
  EXPECT_EQ(sim.run_until(5.0), 2u);
  EXPECT_EQ(runs, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, ClockJumpsToHorizonWhenIdle) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.at_fast(1.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at_fast(2.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after_fast(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunAllDrains) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(2.0, [&] { ++runs; });
  EXPECT_EQ(sim.run_all(), 2u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int runs = 0;
  sim.at_fast(1.0, [&] { ++runs; });
  sim.at_fast(2.0, [&] { ++runs; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelledEventsDoNotAdvanceClock) {
  Simulator sim;
  auto h = sim.at(1.0, [] {});
  sim.at_fast(3.0, [] {});
  h.cancel();
  sim.step();
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Periodic, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 10.0, [&](Time t) { ticks.push_back(t); });
  p.start(10.0);
  sim.run_until(55.0);
  EXPECT_EQ(ticks, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(Periodic, TickSeesAdvancedClock) {
  Simulator sim;
  std::vector<double> nows;
  PeriodicProcess p(sim, 5.0, [&](Time) { nows.push_back(sim.now()); });
  p.start(5.0);
  sim.run_until(16.0);
  EXPECT_EQ(nows, (std::vector<double>{5, 10, 15}));
}

TEST(Periodic, StopCancelsFutureTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicProcess p(sim, 10.0, [&](Time t) {
    ++ticks;
    if (t >= 30.0) p.stop();
  });
  p.start(10.0);
  sim.run_until(1000.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(p.running());
}

TEST(Periodic, RestartRelocatesFirstTick) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 10.0, [&](Time t) { ticks.push_back(t); });
  p.start(10.0);
  p.start(25.0);  // restart supersedes the first schedule
  sim.run_until(50.0);
  EXPECT_EQ(ticks, (std::vector<double>{25, 35, 45}));
}

TEST(Periodic, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0.0, [](Time) {}), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(sim, 1.0, nullptr), std::invalid_argument);
}

TEST(Periodic, DestructorCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicProcess p(sim, 1.0, [&](Time) { ++ticks; });
    p.start(1.0);
  }
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace psd
