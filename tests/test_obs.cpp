// Observability layer (src/obs) and its wiring through the rt stack.
//
// The two contracts that matter most here:
//   1. Telemetry OFF is free and invisible — a ManualClock run with
//      cfg.obs.enabled=false produces a report bitwise-identical to one
//      that never knew the obs layer existed.
//   2. Telemetry ON under a ManualClock is deterministic — the streamed
//      JSONL is byte-identical across repeats, and every snapshot is
//      internally consistent (histogram counts match the counters they
//      shadow).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/counters.hpp"
#include "obs/prof.hpp"
#include "rt/clock.hpp"
#include "rt/runtime.hpp"
#include "rt/shard.hpp"

namespace psd {
namespace {

using rt::ManualClock;
using rt::RtConfig;
using rt::RtReport;
using rt::Runtime;
using rt::Shard;
using rt::ShardConfig;

// ---------------------------------------------------------------- counters

static_assert(alignof(obs::Counter) == 64,
              "Counter must own its cache line");

TEST(ObsCounter, AddsFromDefaultAndExplicitIncrements) {
  obs::Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
}

TEST(ObsLog2Hist, CountEqualsAddCallsIncludingExtremes) {
  obs::Log2Hist h;
  h.add(0.0);                 // underflow (non-positive)
  h.add(std::nan(""));        // underflow (NaN)
  h.add(1e-12);               // below 2^-27
  h.add(1e12);                // above 2^27
  h.add(1.5);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.underflow, 3u);
  EXPECT_EQ(h.overflow, 1u);
  EXPECT_EQ(h.count, h.underflow + h.overflow + 1u);
}

TEST(ObsLog2Hist, MergeMatchesSingleCollectorExactly) {
  obs::Log2Hist ground, a, b;
  for (int i = 1; i <= 2000; ++i) {
    const double x = 1e-4 * static_cast<double>(i * i);
    ground.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  obs::Log2Hist merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, ground.count);
  EXPECT_DOUBLE_EQ(merged.sum, ground.sum);
  for (int i = 0; i < obs::Log2Hist::kBuckets; ++i) {
    EXPECT_EQ(merged.bucket[i], ground.bucket[i]) << "bucket " << i;
  }
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), ground.quantile(q)) << "q=" << q;
  }
}

TEST(ObsLog2Hist, QuantileIsMonotoneAndBracketsTheData) {
  obs::Log2Hist h;
  for (int i = 1; i <= 1000; ++i) h.add(0.01 * static_cast<double>(i));
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Bucket bounds bracket: all data in [0.01, 10].
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 16.0);  // next power of two above 10
}

// -------------------------------------------------------------- profiling

TEST(ObsProf, DisabledTableRecordsNothing) {
  obs::ProfTable t;
  { obs::ScopedProfTimer timer(&t, obs::kProfDrain); }
  { obs::ScopedProfTimer timer(nullptr, obs::kProfDrain); }  // null-safe
  const obs::ProfSnap s = t.snap();
  EXPECT_EQ(s.count[obs::kProfDrain], 0u);
}

TEST(ObsProf, EnabledTableCountsScopes) {
  obs::ProfTable t;
  t.set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    obs::ScopedProfTimer timer(&t, obs::kProfAllocate);
  }
  const obs::ProfSnap s = t.snap();
  EXPECT_EQ(s.count[obs::kProfAllocate], 8u);
  EXPECT_GT(obs::ticks_per_second(), 0.0);
}

TEST(ObsProf, EverySlotHasAName) {
  for (int i = 0; i < static_cast<int>(obs::kProfSlotCount); ++i) {
    const char* name = obs::prof_slot_name(static_cast<obs::ProfSlot>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// -------------------------------------------------- shard-level telemetry

Request make_request(ClassId cls, Time arrival, double size) {
  Request r;
  r.cls = cls;
  r.arrival = arrival;
  r.size = size;
  return r;
}

ShardConfig telemetry_shard_config() {
  ShardConfig cfg;
  cfg.num_classes = 2;
  cfg.capacity = 1.0;
  cfg.window = 1.0;
  cfg.bucket_burst_seconds = 10.0;
  cfg.telemetry = true;
  cfg.telemetry_sample_period = 1;  // exact fills: every event recorded
  return cfg;
}

TEST(ShardTelemetry, HistogramCountsShadowTheCounters) {
  Shard shard(telemetry_shard_config(), Rng(5));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(shard.submit(make_request(i % 2, i * 0.05, 0.01)));
  }
  shard.drain(1.0);   // pop arrivals, schedule service
  shard.drain(5.0);   // fire completions (well past every model finish time)
  shard.finalize(5.0);
  const rt::ShardTelemetry t = shard.telemetry();
  ASSERT_EQ(t.num_classes, 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(t.accepted[c], 6u);
    EXPECT_EQ(t.completions[c], 6u);
    // Snapshot coherence: one ingress-wait sample per accepted request, one
    // queue-delay and one slowdown sample per completion.
    EXPECT_EQ(t.ingress_wait[c].count, t.accepted[c]);
    EXPECT_EQ(t.queue_delay[c].count, t.completions[c]);
    EXPECT_EQ(t.slowdown[c].count, t.completions[c]);
  }
}

TEST(ShardTelemetry, SampledFillsKeepCountersExact) {
  ShardConfig cfg = telemetry_shard_config();
  cfg.telemetry_sample_period = 4;
  Shard shard(cfg, Rng(5));
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(shard.submit(make_request(i % 2, i * 0.01, 0.01)));
  }
  shard.drain(1.0);
  shard.drain(5.0);
  shard.finalize(5.0);
  const rt::ShardTelemetry t = shard.telemetry();
  EXPECT_EQ(t.sample_period, 4u);
  for (std::size_t c = 0; c < 2; ++c) {
    // Counters are exact regardless of the sampling period...
    EXPECT_EQ(t.accepted[c], 12u);
    EXPECT_EQ(t.completions[c], 12u);
    // ...while the histograms hold the 1-in-4 subsample: per-class event
    // ordinals 4, 8, and 12 — exactly 12 / 4 = 3 samples.
    EXPECT_EQ(t.ingress_wait[c].count, 3u);
    EXPECT_EQ(t.queue_delay[c].count, 3u);
    EXPECT_EQ(t.slowdown[c].count, 3u);
    EXPECT_EQ(shard.slowdown_hists()[c].count(), 3u);
  }
}

TEST(ShardTelemetry, DropsAreCountedPerClass) {
  ShardConfig cfg = telemetry_shard_config();
  cfg.ingress_capacity = 2;
  Shard shard(cfg, Rng(5));
  EXPECT_TRUE(shard.submit(make_request(0, 0.0, 0.01)));
  EXPECT_TRUE(shard.submit(make_request(1, 0.0, 0.01)));
  EXPECT_FALSE(shard.submit(make_request(1, 0.0, 0.01)));
  EXPECT_FALSE(shard.submit(make_request(1, 0.0, 0.01)));
  EXPECT_FALSE(shard.submit(make_request(0, 0.0, 0.01)));
  EXPECT_EQ(shard.dropped(static_cast<ClassId>(0)), 1u);
  EXPECT_EQ(shard.dropped(static_cast<ClassId>(1)), 2u);
  EXPECT_EQ(shard.dropped(), 3u);  // aggregate = sum of classes
}

// ------------------------------------------------------- runtime wiring

RtConfig obs_runtime_config() {
  RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.mean_service_seconds = 1e-3;
  cfg.shards = 2;
  cfg.loadgens = 2;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.5;
  cfg.duration = 3.0;
  cfg.seed = 71;
  return cfg;
}

RtReport drive_manual(const RtConfig& cfg) {
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  return runtime.report();
}

TEST(RuntimeObs, TelemetryOffReportIsUnchanged) {
  const RtConfig off = obs_runtime_config();
  RtConfig on = obs_runtime_config();
  on.obs.enabled = true;

  const RtReport a = drive_manual(off);
  const RtReport b = drive_manual(on);

  // Every pre-existing field is bitwise-identical: telemetry observes the
  // run, it does not perturb it.
  EXPECT_EQ(a.produced, b.produced);
  EXPECT_EQ(a.completed_all, b.completed_all);
  EXPECT_EQ(a.drains, b.drains);
  EXPECT_EQ(a.reallocations, b.reallocations);
  ASSERT_EQ(a.cls.size(), b.cls.size());
  for (std::size_t c = 0; c < a.cls.size(); ++c) {
    EXPECT_EQ(a.cls[c].completed, b.cls[c].completed);
    EXPECT_EQ(a.cls[c].dropped, b.cls[c].dropped);
    EXPECT_DOUBLE_EQ(a.cls[c].mean_slowdown, b.cls[c].mean_slowdown);
    // The new percentile fields are the one divergence: NaN when the
    // telemetry histograms never existed, populated when they did.
    EXPECT_TRUE(std::isnan(a.cls[c].slowdown_p50));
    EXPECT_TRUE(std::isfinite(b.cls[c].slowdown_p50));
    EXPECT_TRUE(std::isfinite(b.cls[c].slowdown_p95));
    EXPECT_LE(b.cls[c].slowdown_p50, b.cls[c].slowdown_p95);
    EXPECT_LE(b.cls[c].slowdown_p95, b.cls[c].slowdown_p99);
  }
}

// Drives a full ManualClock run with the exporter streaming to `path`.
void drive_with_stats(const RtConfig& cfg, const std::string& path) {
  RtConfig c = cfg;
  c.obs.enabled = true;
  c.obs.stats_path = path;
  c.obs.stats_interval = 0.25;
  Runtime runtime(c, ManualClock{});
  for (Time t = 0.02; t <= c.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  ASSERT_NE(runtime.exporter(), nullptr);
  EXPECT_GT(runtime.exporter()->samples(), 0u);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RuntimeObs, ManualClockStatsStreamIsBitIdentical) {
  const std::string pa = ::testing::TempDir() + "psd_obs_a.jsonl";
  const std::string pb = ::testing::TempDir() + "psd_obs_b.jsonl";
  const RtConfig cfg = obs_runtime_config();
  drive_with_stats(cfg, pa);
  drive_with_stats(cfg, pb);
  const std::string a = slurp(pa);
  const std::string b = slurp(pb);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical across repeats
  // Every line is a schema'd record on the fixed sample grid.
  std::istringstream lines(a);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"schema\":\"psd.rt.stats.v1\""), std::string::npos);
    ++n;
  }
  EXPECT_GE(n, 10u);  // 3s at 0.25s cadence
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(RuntimeObs, PrometheusTextRendersEveryFamily) {
  RtConfig cfg = obs_runtime_config();
  cfg.duration = 1.0;
  cfg.warmup = 0.2;
  cfg.obs.enabled = true;
  cfg.obs.stats_path = ::testing::TempDir() + "psd_obs_prom.jsonl";
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  ASSERT_NE(runtime.exporter(), nullptr);
  const std::string text = runtime.exporter()->prometheus_text();
  for (const char* family :
       {"psd_rt_produced_total", "psd_rt_dropped_total",
        "psd_rt_accepted_total", "psd_rt_completed_total",
        "psd_rt_lambda_hat", "psd_rt_rate", "psd_rt_shard_drains_total",
        "psd_rt_ingress_wait_seconds_bucket", "psd_rt_queue_delay_seconds_sum",
        "psd_rt_slowdown_count", "psd_rt_controller_ticks_total",
        "psd_rt_controller_rate"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  std::remove(cfg.obs.stats_path.c_str());
}

TEST(RuntimeObs, ControllerTraceAdvancesWithCursor) {
  RtConfig cfg = obs_runtime_config();
  cfg.duration = 1.0;
  cfg.warmup = 0.2;
  cfg.obs.enabled = true;
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  std::uint64_t cursor = 0;
  const auto first = runtime.controller_mut().trace_since(&cursor);
  ASSERT_FALSE(first.empty());
  EXPECT_GT(cursor, 0u);
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GT(first[i].tick, first[i - 1].tick);  // monotone tick numbers
  }
  for (const auto& e : first) {
    ASSERT_EQ(e.num_classes, 2u);
    for (std::size_t c = 0; c < e.num_classes; ++c) {
      EXPECT_TRUE(std::isfinite(e.rate_out[c]));
      EXPECT_GE(e.lambda[c], 0.0);
    }
  }
  // Cursor consumed everything; no new ticks -> nothing new.
  EXPECT_TRUE(runtime.controller_mut().trace_since(&cursor).empty());
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
}

}  // namespace
}  // namespace psd
