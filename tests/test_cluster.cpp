// Cluster dispatcher: routing policies, SITA-E cutoffs, aggregate metrics.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/dispatcher.hpp"
#include "cluster/router.hpp"
#include "common/math.hpp"
#include "core/psd_rate_allocator.hpp"
#include "sched/dedicated_rate.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

ServerConfig node_cfg(std::size_t classes) {
  ServerConfig sc;
  sc.num_classes = classes;
  sc.realloc_period = 200.0;
  sc.metrics.num_classes = classes;
  sc.metrics.warmup_end = 500.0;
  sc.metrics.window = 200.0;
  return sc;
}

Cluster::BackendFactory dedicated_factory() {
  return [] { return std::make_unique<DedicatedRateBackend>(); };
}

Cluster::AllocatorFactory psd_factory(const BoundedPareto& bp,
                                      std::vector<double> delta) {
  PsdAllocatorConfig pc;
  pc.delta = std::move(delta);
  pc.mean_size = bp.mean();
  return [pc] { return std::make_unique<PsdRateAllocator>(pc); };
}

TEST(SitaCutoffs, EqualLoadPartition) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto cuts = sita_equal_load_cutoffs(bp, 3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_GT(cuts[0], bp.lower());
  EXPECT_LT(cuts[1], bp.upper());
  EXPECT_LT(cuts[0], cuts[1]);
  // Each interval carries 1/3 of E[X]: check by quadrature on x f(x).
  auto work = [&](double a, double b) {
    return integrate([&](double x) { return x * bp.pdf(x); }, a, b, 1e-10);
  };
  const double total = work(bp.lower(), bp.upper());
  EXPECT_NEAR(work(bp.lower(), cuts[0]) / total, 1.0 / 3.0, 1e-3);
  EXPECT_NEAR(work(cuts[0], cuts[1]) / total, 1.0 / 3.0, 1e-3);
}

TEST(SitaCutoffs, SingleNodeHasNoCutoffs) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_TRUE(sita_equal_load_cutoffs(bp, 1).empty());
}

TEST(SitaCutoffs, ZeroNodesRejected) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_THROW(sita_equal_load_cutoffs(bp, 0), std::invalid_argument);
}

TEST(SitaCutoffs, ManyNodesStayMonotoneAndInterior) {
  // More nodes than the support spans "distinct sizes" in any practical
  // sense: 64 intervals over [0.1, 100].  Cutoffs must stay strictly
  // increasing and strictly inside (k, p) — the bisection must not collapse
  // adjacent cutoffs onto each other or the bounds.
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::size_t nodes = 64;
  const auto cuts = sita_equal_load_cutoffs(bp, nodes);
  ASSERT_EQ(cuts.size(), nodes - 1);
  EXPECT_GT(cuts.front(), bp.lower());
  EXPECT_LT(cuts.back(), bp.upper());
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_GT(cuts[i], cuts[i - 1]);
  }
}

TEST(SitaCutoffs, NarrowSupportStaysOrdered) {
  // Nodes >> the distribution's dynamic range: a nearly-degenerate support
  // [1, 1.001] still yields non-decreasing interior cutoffs.
  BoundedPareto bp(1.5, 1.0, 1.001);
  const auto cuts = sita_equal_load_cutoffs(bp, 8);
  ASSERT_EQ(cuts.size(), 7u);
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    EXPECT_GE(cuts[i], bp.lower());
    EXPECT_LE(cuts[i], bp.upper());
    if (i > 0) EXPECT_GE(cuts[i], cuts[i - 1]);
  }
}

TEST(SitaCutoffs, AlphaOneUsesLogForm) {
  // alpha == 1 hits the log branch of the partial-work integral; the
  // equal-load property must hold there too.
  BoundedPareto bp(1.0, 0.1, 100.0);
  const auto cuts = sita_equal_load_cutoffs(bp, 2);
  ASSERT_EQ(cuts.size(), 1u);
  auto work = [&](double a, double b) {
    return integrate([&](double x) { return x * bp.pdf(x); }, a, b, 1e-10);
  };
  EXPECT_NEAR(work(bp.lower(), cuts[0]) / work(bp.lower(), bp.upper()), 0.5,
              1e-3);
}

TEST(SitaCutoffs, TwoNodesHalveTheWork) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto cuts = sita_equal_load_cutoffs(bp, 2);
  ASSERT_EQ(cuts.size(), 1u);
  auto work = [&](double a, double b) {
    return integrate([&](double x) { return x * bp.pdf(x); }, a, b, 1e-10);
  };
  EXPECT_NEAR(work(bp.lower(), cuts[0]) / work(bp.lower(), bp.upper()), 0.5,
              1e-3);
}

TEST(Cluster, RoundRobinBalancesDispatchCounts) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  Cluster cluster(sim, 3, node_cfg(1), dedicated_factory(),
                  psd_factory(bp, {1.0}), AssignmentPolicy::kRoundRobin,
                  Rng(1));
  cluster.start(0.0);
  for (int i = 0; i < 99; ++i) {
    Request r;
    r.cls = 0;
    r.size = 0.5;
    r.arrival = 0.0;
    cluster.submit(r);
  }
  EXPECT_EQ(cluster.dispatched(0), 33u);
  EXPECT_EQ(cluster.dispatched(1), 33u);
  EXPECT_EQ(cluster.dispatched(2), 33u);
}

TEST(Cluster, RandomRoughlyBalances) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  Cluster cluster(sim, 2, node_cfg(1), dedicated_factory(),
                  psd_factory(bp, {1.0}), AssignmentPolicy::kRandom, Rng(2));
  cluster.start(0.0);
  for (int i = 0; i < 10000; ++i) {
    Request r;
    r.cls = 0;
    r.size = 0.1;
    cluster.submit(r);
  }
  EXPECT_NEAR(static_cast<double>(cluster.dispatched(0)), 5000.0, 300.0);
}

TEST(Cluster, SizeIntervalRoutesBySize) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  Cluster cluster(sim, 2, node_cfg(1), dedicated_factory(),
                  psd_factory(bp, {1.0}), AssignmentPolicy::kSizeInterval,
                  Rng(3), {1.0});
  cluster.start(0.0);
  Request small;
  small.cls = 0;
  small.size = 0.5;
  cluster.submit(small);
  Request big;
  big.cls = 0;
  big.size = 5.0;
  cluster.submit(big);
  EXPECT_EQ(cluster.dispatched(0), 1u);
  EXPECT_EQ(cluster.dispatched(1), 1u);
}

TEST(Cluster, SizeIntervalRequiresCutoffs) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_THROW(Cluster(sim, 3, node_cfg(1), dedicated_factory(),
                       psd_factory(bp, {1.0}),
                       AssignmentPolicy::kSizeInterval, Rng(1), {1.0}),
               std::invalid_argument);
}

TEST(Cluster, LeastWorkLeftPrefersIdleNode) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  Cluster cluster(sim, 2, node_cfg(1), dedicated_factory(),
                  psd_factory(bp, {1.0}), AssignmentPolicy::kLeastWorkLeft,
                  Rng(4));
  cluster.start(0.0);
  Request big;
  big.cls = 0;
  big.size = 50.0;
  cluster.submit(big);  // node 0 now has 50 outstanding
  for (int i = 0; i < 5; ++i) {
    Request small;
    small.cls = 0;
    small.size = 0.1;
    cluster.submit(small);  // all go to node 1 until it accumulates work
  }
  EXPECT_EQ(cluster.dispatched(0), 1u);
  EXPECT_EQ(cluster.dispatched(1), 5u);
  EXPECT_GT(cluster.outstanding_work(0), cluster.outstanding_work(1));
}

TEST(Cluster, OutstandingWorkDrainsOnCompletion) {
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  auto cfg = node_cfg(1);
  cfg.metrics.warmup_end = 0.0;  // count the single early completion
  Cluster cluster(sim, 1, cfg, dedicated_factory(),
                  psd_factory(bp, {1.0}), AssignmentPolicy::kRoundRobin,
                  Rng(5));
  cluster.start(0.0);
  Request r;
  r.cls = 0;
  r.size = 2.0;
  sim.at_fast(0.0, [&] { cluster.submit(r); });
  sim.run_until(100.0);
  cluster.finalize();
  EXPECT_NEAR(cluster.outstanding_work(0), 0.0, 1e-9);
  EXPECT_EQ(cluster.completed_total(), 1u);
}

TEST(Cluster, EndToEndPsdOnEveryNode) {
  // Two classes, four nodes, round robin: the cluster-wide slowdown ratio
  // still honours the deltas because every node runs eq. 17 locally.
  Simulator sim;
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> delta = {1.0, 2.0};
  Cluster cluster(sim, 4, node_cfg(2), dedicated_factory(),
                  psd_factory(bp, delta), AssignmentPolicy::kRoundRobin,
                  Rng(6));
  cluster.start(0.0);

  // Total load 0.6 across 4 unit-capacity nodes.
  const auto lam = rates_for_equal_load(0.6 * 4.0, 1.0, bp.mean(), 2);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(70 + c), c, PoissonArrivals(lam[c]),
        BoundedParetoSampler(bp), cluster));
    gens.back()->start(0.0);
  }
  sim.run_until(30000.0);
  cluster.finalize();

  const auto sd = cluster.mean_slowdowns();
  ASSERT_GT(cluster.completed_total(), 50000u);
  EXPECT_LT(sd[0], sd[1]);
  EXPECT_NEAR(sd[1] / sd[0], 2.0, 0.9);
}


// ----------------------------------------------------------- AssignmentRouter
// The one routing implementation both the sim Cluster and the rt
// ClusterRuntime dispatch through (cluster/router.hpp).

TEST(Router, JsqFullScanTiesBreakToLowestIndex) {
  // d >= alive degenerates to a deterministic full least-loaded scan.
  AssignmentRouter r({AssignmentPolicy::kJsq, 8}, 4, Rng(1));
  EXPECT_EQ(r.route(1.0, {5.0, 3.0, 3.0, 9.0}), 1u);
  EXPECT_EQ(r.route(1.0, {2.0, 2.0, 2.0, 2.0}), 0u);
}

TEST(Router, JsqSamplesOnlyAliveNodes) {
  AssignmentRouter r({AssignmentPolicy::kJsq, 2}, 4, Rng(2));
  r.set_alive(0, false);
  r.set_alive(2, false);
  // Node 0 is idle but dead; every decision must land on 1 or 3.
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = r.route(1.0, {0.0, 4.0, 0.0, 5.0});
    EXPECT_TRUE(n == 1 || n == 3) << n;
  }
}

TEST(Router, JsqPrefersLessLoadedOfTheSample) {
  // With d = alive = 2 the sample (with replacement) either hits both
  // nodes — then the less-loaded one must win — or the same node twice.
  // Over many draws the idle node must dominate.
  AssignmentRouter r({AssignmentPolicy::kJsq, 2}, 4, Rng(3));
  r.set_alive(2, false);
  r.set_alive(3, false);
  int idle = 0;
  for (int i = 0; i < 400; ++i) {
    idle += r.route(1.0, {0.0, 50.0, 0.0, 0.0}) == 0 ? 1 : 0;
  }
  EXPECT_GT(idle, 250);
}

TEST(Router, SitaReroutesDeadBandToNextAliveWrapping) {
  const std::vector<double> cutoffs = {1.0, 2.0, 3.0};
  AssignmentRouter r(AssignmentPolicy::kSizeInterval, 4, Rng(4), cutoffs);
  EXPECT_EQ(r.route(0.5, {}), 0u);
  EXPECT_EQ(r.route(1.5, {}), 1u);
  EXPECT_EQ(r.route(9.0, {}), 3u);
  r.set_alive(1, false);
  EXPECT_EQ(r.route(1.5, {}), 2u);  // band 1 -> next alive
  r.set_alive(3, false);
  EXPECT_EQ(r.route(9.0, {}), 0u);  // band 3 wraps to node 0
  EXPECT_EQ(r.route(0.5, {}), 0u);  // alive bands stay home
}

TEST(Router, RoundRobinSkipsDeadNodes) {
  AssignmentRouter r(AssignmentPolicy::kRoundRobin, 3, Rng(5));
  r.set_alive(1, false);
  EXPECT_EQ(r.route(1.0, {}), 0u);
  EXPECT_EQ(r.route(1.0, {}), 2u);
  EXPECT_EQ(r.route(1.0, {}), 0u);
  EXPECT_EQ(r.alive_count(), 2u);
}

TEST(Router, LastAliveNodeCannotBeKilled) {
  AssignmentRouter r(AssignmentPolicy::kRoundRobin, 2, Rng(6));
  r.set_alive(0, false);
  EXPECT_THROW(r.set_alive(1, false), std::invalid_argument);
  r.set_alive(0, true);  // revival re-enters the rotation
  EXPECT_EQ(r.alive_count(), 2u);
}

TEST(Router, WorkWeightsFollowThePolicy) {
  // Uniform policies: equal share over alive nodes, 0 on the dead.
  AssignmentRouter rr(AssignmentPolicy::kRoundRobin, 4, Rng(7));
  rr.set_alive(2, false);
  const auto w = rr.work_weights();
  EXPECT_DOUBLE_EQ(w[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);

  // SITA-E: a dead node's equal-load band moves to the node that inherits
  // it, so that node carries a double share.
  AssignmentRouter sita(AssignmentPolicy::kSizeInterval, 4, Rng(8),
                        std::vector<double>{1.0, 2.0, 3.0});
  sita.set_alive(1, false);
  const auto ws = sita.work_weights();
  EXPECT_DOUBLE_EQ(ws[0], 0.25);
  EXPECT_DOUBLE_EQ(ws[1], 0.0);
  EXPECT_DOUBLE_EQ(ws[2], 0.50);
  EXPECT_DOUBLE_EQ(ws[3], 0.25);
}


}  // namespace
}  // namespace psd
