// Cobham's non-preemptive priority M/G/1 formulas, cross-validated against
// the PriorityBackend simulation (strict policy).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/pdd_policies.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/exponential.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_priority.hpp"
#include "sim/simulator.hpp"
#include "stats/online.hpp"
#include "workload/generator.hpp"

namespace psd {
namespace {

TEST(Mg1Priority, SingleClassReducesToPlainMg1) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double lam = 0.6 / bp.mean();
  Mg1Priority prio({lam}, {&bp});
  Mg1 plain(lam, bp);
  EXPECT_NEAR(prio.expected_wait(0), plain.expected_wait(), 1e-12);
  EXPECT_NEAR(prio.expected_slowdown(0), plain.expected_slowdown(), 1e-12);
}

TEST(Mg1Priority, TwoClassTextbookValues) {
  // M/D/1 with two equal classes, service 1, lambda 0.25 each (rho = 0.5).
  // R = (0.25 + 0.25) * 1 / 2 = 0.25.
  // W_1 = R / (1 * (1 - 0.25)) = 1/3; W_2 = R / (0.75 * 0.5) = 2/3.
  Deterministic d(1.0);
  Mg1Priority prio({0.25, 0.25}, {&d, &d});
  EXPECT_NEAR(prio.expected_wait(0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(prio.expected_wait(1), 2.0 / 3.0, 1e-12);
}

TEST(Mg1Priority, ConservationLaw) {
  // Kleinrock's conservation: sum rho_i W_i is invariant and equals
  // rho * W_fcfs for any non-preemptive work-conserving discipline.
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double lam = 0.35 / bp.mean();
  Mg1Priority prio({lam, lam}, {&bp, &bp});
  Mg1 fcfs(2.0 * lam, bp);
  const double rho_i = lam * bp.mean();
  const double lhs =
      rho_i * prio.expected_wait(0) + rho_i * prio.expected_wait(1);
  const double rhs = 2.0 * rho_i * fcfs.expected_wait();
  EXPECT_NEAR(lhs / rhs, 1.0, 1e-12);
}

TEST(Mg1Priority, HigherClassAlwaysWaitsLess) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double lam = 0.2 / bp.mean();
  Mg1Priority prio({lam, lam, lam, lam}, {&bp, &bp, &bp, &bp});
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(prio.expected_wait(i), prio.expected_wait(i - 1));
  }
}

TEST(Mg1Priority, UnstableLowerClassThrowsButHigherWorks) {
  Deterministic d(1.0);
  Mg1Priority prio({0.5, 0.7}, {&d, &d});  // total rho 1.2
  EXPECT_GT(prio.expected_wait(0), 0.0);   // sigma_1 = 0.5 < 1: finite
  EXPECT_THROW(prio.expected_wait(1), std::domain_error);
  EXPECT_FALSE(prio.stable());
}

TEST(Mg1Priority, SlowdownUndefinedForExponential) {
  Exponential e(1.0);
  Mg1Priority prio({0.4}, {&e});
  EXPECT_GT(prio.expected_wait(0), 0.0);
  EXPECT_THROW(prio.expected_slowdown(0), std::domain_error);
}

TEST(Mg1Priority, RatiosAreLoadDeterminedNotControllable) {
  // The paper's §5 point made quantitative: under strict priority the
  // delay-ratio between classes is fully determined by the loads — there is
  // no operator knob.  Doubling class-2 load changes the ratio; nothing the
  // operator configures can restore it.
  Deterministic d(1.0);
  Mg1Priority base({0.25, 0.25}, {&d, &d});
  Mg1Priority shifted({0.25, 0.45}, {&d, &d});
  const double ratio_base = base.expected_wait(1) / base.expected_wait(0);
  const double ratio_shift =
      shifted.expected_wait(1) / shifted.expected_wait(0);
  EXPECT_GT(std::abs(ratio_base - ratio_shift), 0.3);
}

// --- simulation cross-check -------------------------------------------------

TEST(Mg1PrioritySim, StrictBackendMatchesCobham) {
  // Strict-priority simulation vs the closed form, deterministic service
  // (tight convergence).
  Simulator sim;
  std::vector<WaitingQueue> queues(2);
  std::vector<OnlineMoments> delay(2);
  auto backend = make_strict_backend(2);
  backend->attach(sim, queues, 1.0, Rng(1), [&](Request&& r) {
    delay[r.cls].add(r.delay());
  });

  struct Sink final : RequestSink {
    Simulator* sim;
    std::vector<WaitingQueue>* queues;
    SchedulerBackend* backend;
    void submit(const Request& req) override {
      const ClassId cls = req.cls;
      (*queues)[cls].push(req, sim->now());
      backend->notify_arrival(cls);
    }
  } sink;
  sink.sim = &sim;
  sink.queues = &queues;
  sink.backend = backend.get();

  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(100 + c), c, PoissonArrivals(0.25),
        DeterministicSampler(1.0), sink));
    gens.back()->start(0.0);
  }
  sim.run_until(400000.0);
  for (auto& g : gens) g->stop();

  Deterministic d(1.0);
  Mg1Priority prio({0.25, 0.25}, {&d, &d});
  ASSERT_GT(delay[0].count(), 50000u);
  EXPECT_NEAR(delay[0].mean() / prio.expected_wait(0), 1.0, 0.05);
  EXPECT_NEAR(delay[1].mean() / prio.expected_wait(1), 1.0, 0.05);
}

}  // namespace
}  // namespace psd
