// The allocation-free event core: slab-slot recycling, generation-counted
// handles, exact size accounting, steady-state allocation freedom, and
// whole-scenario determinism.
//
// This binary overrides global operator new/delete with a counting hook so
// it can assert that steady-state schedule->pop cycles perform ZERO heap
// allocations (the tentpole property of the pooled event core).  The hook
// only counts inside explicitly armed regions, so gtest's own bookkeeping
// does not pollute the measurement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "experiment/runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

struct AllocationCounter {
  AllocationCounter() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_allocs.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// Count the aligned and nothrow paths too, so a future event-core change
// that allocates via an over-aligned type cannot slip past the hook.
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace psd {
namespace {

// ---- slab recycling & stale generations ----------------------------------

TEST(EventCore, HandleStaysInertAfterSlotRecycled) {
  EventQueue q;
  bool a_ran = false, b_ran = false;
  auto ha = q.schedule(1.0, [&] { a_ran = true; });
  ha.cancel();
  EXPECT_EQ(q.next_time(), kInf);  // pruning the stale head recycles its slot
  // B reuses the recycled slot; A's stale handle must not affect it.
  auto hb = q.schedule(2.0, [&] { b_ran = true; });
  EXPECT_FALSE(ha.pending());
  EXPECT_TRUE(hb.pending());
  ha.cancel();  // stale: must be a no-op on the recycled slot
  EXPECT_TRUE(hb.pending());
  ASSERT_FALSE(q.empty());
  q.pop_and_run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(EventCore, DoubleCancelIsNoop) {
  EventQueue q;
  int runs = 0;
  auto h = q.schedule(1.0, [&] { ++runs; });
  q.schedule_fast(2.0, [&] { ++runs; });
  h.cancel();
  h.cancel();
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(runs, 1);
}

TEST(EventCore, CancelAfterFireDoesNotKillRecycledEvent) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.pop_and_run();  // fires; slot recycled
  int runs = 0;
  auto h2 = q.schedule(2.0, [&] { ++runs; });  // reuses the slot
  h.cancel();                                  // stale generation: no-op
  EXPECT_TRUE(h2.pending());
  q.pop_and_run();
  EXPECT_EQ(runs, 1);
}

TEST(EventCore, SizeIsExactWithInteriorCancellations) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  // Cancel every third event, including interior (non-top) entries.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    handles[i].cancel();
    ++cancelled;
  }
  EXPECT_EQ(q.size(), 100u - cancelled);  // exact, no prune required
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop_and_run();
    ++fired;
  }
  EXPECT_EQ(fired, 100u - cancelled);
}

TEST(EventCore, ConstObserversDoNotPrune) {
  // empty()/size() must be callable on a const queue and must not mutate it
  // (the seed implementation laundered a prune through `mutable`).
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule_fast(2.0, [] {});
  h.cancel();
  const EventQueue& cq = q;
  EXPECT_EQ(cq.size(), 1u);
  EXPECT_FALSE(cq.empty());
}

TEST(EventCore, FifoForSimultaneousEventsAcrossRecycling) {
  EventQueue q;
  std::vector<int> order;
  // Force heavy slot churn first so later slots come from the free list in
  // scrambled order; FIFO must hold regardless because ordering is by seq.
  for (int i = 0; i < 64; ++i) {
    auto h = q.schedule(0.0, [] {});
    if (i % 2 == 0) h.cancel();
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 32; ++i) {
    q.schedule_fast(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

// ---- allocation freedom ---------------------------------------------------

TEST(EventCore, SteadyStateScheduleFastPopIsAllocationFree) {
  EventQueue q;
  Rng rng(11);
  double t = 0.0;
  // Warm up past the high-water mark so heap_ and slots_ reach capacity.
  for (int i = 0; i < 4096; ++i) {
    q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
  }
  for (int i = 0; i < 20000; ++i) {
    q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
    t = q.pop_and_run();
  }
  {
    AllocationCounter counter;
    for (int i = 0; i < 10000; ++i) {
      q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
      t = q.pop_and_run();
    }
    EXPECT_EQ(counter.count(), 0u);
  }
}

TEST(EventCore, SteadyStateCancellableCycleIsAllocationFree) {
  EventQueue q;
  Rng rng(12);
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    auto h = q.schedule(t + rng.uniform01() * 10.0, [] {});
    q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
    h.cancel();
    t = q.pop_and_run();
  }
  {
    AllocationCounter counter;
    for (int i = 0; i < 10000; ++i) {
      auto h = q.schedule(t + rng.uniform01() * 10.0, [] {});
      q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
      h.cancel();
      t = q.pop_and_run();
    }
    EXPECT_EQ(counter.count(), 0u);
  }
}

TEST(EventCore, SimulatorSteadyStateIsAllocationFree) {
  Simulator sim;
  Rng rng(13);
  // A self-rescheduling event chain through the Simulator facade.
  struct Chain {
    Simulator* sim;
    Rng* rng;
    std::uint64_t fired = 0;
    void arm() {
      sim->after_fast(rng->uniform01() * 2.0, [this] {
        ++fired;
        arm();
      });
    }
  } chain{&sim, &rng};
  chain.arm();
  sim.run_until(5000.0);
  const Time resume = sim.now();
  {
    AllocationCounter counter;
    sim.run_until(resume + 5000.0);
    EXPECT_EQ(counter.count(), 0u);
  }
  EXPECT_GT(chain.fired, 1000u);
}

// ---- determinism ----------------------------------------------------------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.system_slowdown, b.system_slowdown);  // bit-identical
  ASSERT_EQ(a.cls.size(), b.cls.size());
  for (std::size_t i = 0; i < a.cls.size(); ++i) {
    EXPECT_EQ(a.cls[i].mean_slowdown, b.cls[i].mean_slowdown);
    EXPECT_EQ(a.cls[i].mean_delay, b.cls[i].mean_delay);
    EXPECT_EQ(a.cls[i].completed, b.cls[i].completed);
    ASSERT_EQ(a.cls[i].windows.size(), b.cls[i].windows.size());
    for (std::size_t w = 0; w < a.cls[i].windows.size(); ++w) {
      EXPECT_EQ(a.cls[i].windows[w].mean, b.cls[i].windows[w].mean);
      EXPECT_EQ(a.cls[i].windows[w].count, b.cls[i].windows[w].count);
    }
  }
}

TEST(EventCore, FixedSeedScenarioIsBitwiseDeterministic) {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0, 4.0};
  cfg.load = 0.7;
  cfg.warmup_tu = 300.0;
  cfg.measure_tu = 2000.0;
  const auto a = run_scenario(cfg, 3);
  const auto b = run_scenario(cfg, 3);
  expect_identical(a, b);
  for (const auto& c : a.cls) EXPECT_GT(c.completed, 0u);
}

TEST(EventCore, DeterminismHoldsAcrossBackends) {
  for (auto backend :
       {BackendKind::kDedicated, BackendKind::kSfq, BackendKind::kLottery}) {
    ScenarioConfig cfg;
    cfg.delta = {1.0, 2.0};
    cfg.load = 0.6;
    cfg.warmup_tu = 200.0;
    cfg.measure_tu = 1500.0;
    cfg.backend = backend;
    const auto a = run_scenario(cfg, 5);
    const auto b = run_scenario(cfg, 5);
    expect_identical(a, b);
  }
}

}  // namespace
}  // namespace psd
