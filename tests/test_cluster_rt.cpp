// ClusterRuntime (src/cluster/cluster_runtime.*): the multi-node serving
// tier under a ManualClock — bitwise determinism, dispatch accounting, the
// global controller holding cluster-wide slowdown ratios, and node-kill
// re-convergence.
//
// Manual steps run at the inter-arrival timescale (0.2ms): coarser steps
// batch arrivals, and co-batched classes then share GPS capacity from equal
// start times, compressing the measured ratio toward 1 (a clock-granularity
// artifact, not controller error).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "cluster/cluster_runtime.hpp"

namespace psd {
namespace {

constexpr double kStep = 0.0002;

rt::ClusterRtConfig base_cfg(AssignmentSpec assignment) {
  rt::ClusterRtConfig cfg;
  cfg.nodes = 4;
  cfg.assignment = assignment;
  cfg.node.delta = {1.0, 2.0};
  cfg.node.load = 0.6;
  cfg.node.warmup = 0.5;
  cfg.node.duration = 3.0;
  cfg.node.seed = 0x5EEDu;
  if (assignment.policy != AssignmentPolicy::kSizeInterval) {
    cfg.node.size_dist = DistSpec::uniform(0.5, 1.5);
  }
  return cfg;
}

rt::ClusterReport run_manual(const rt::ClusterRtConfig& cfg) {
  rt::ClusterRuntime cluster(cfg, rt::ManualClock());
  for (double t = 0.0; t < cfg.node.duration; t += kStep) {
    cluster.step_to(t);
  }
  cluster.step_to(cfg.node.duration);
  cluster.quiesce();
  cluster.finish();
  return cluster.report();
}

/// Bitwise double equality (NaN == NaN; no epsilon — determinism means
/// identical bits, not close values).
::testing::AssertionResult same_bits(double x, double y) {
  if (std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << x << " and " << y << " differ in bits";
}

TEST(ClusterRt, ManualClockRunsAreBitwiseIdentical) {
  const auto cfg = base_cfg({AssignmentPolicy::kJsq, 2});
  const rt::ClusterReport a = run_manual(cfg);
  const rt::ClusterReport b = run_manual(cfg);

  EXPECT_EQ(a.produced, b.produced);
  EXPECT_EQ(a.completed_total, b.completed_total);
  EXPECT_EQ(a.rebalances, b.rebalances);
  EXPECT_EQ(a.global_ticks, b.global_ticks);
  EXPECT_TRUE(same_bits(a.max_window_ratio_error, b.max_window_ratio_error));
  EXPECT_TRUE(same_bits(a.cross_node_ratio_error, b.cross_node_ratio_error));
  EXPECT_TRUE(same_bits(a.max_settle_seconds, b.max_settle_seconds));
  ASSERT_EQ(a.cls.size(), b.cls.size());
  for (std::size_t c = 0; c < a.cls.size(); ++c) {
    EXPECT_EQ(a.cls[c].completed, b.cls[c].completed);
    EXPECT_TRUE(same_bits(a.cls[c].mean_slowdown, b.cls[c].mean_slowdown));
    EXPECT_TRUE(
        same_bits(a.cls[c].window_ratio_p50, b.cls[c].window_ratio_p50));
  }
  ASSERT_EQ(a.node.size(), b.node.size());
  for (std::size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_EQ(a.node[i].dispatched, b.node[i].dispatched);
    EXPECT_EQ(a.node[i].rt.completed_total, b.node[i].rt.completed_total);
  }
  // Timing is deliberately off under a ManualClock (reading steady_clock
  // would break the determinism this test pins down).
  EXPECT_TRUE(std::isnan(a.mean_dispatch_ns));
}

TEST(ClusterRt, SeedChangesTheRun) {
  auto cfg = base_cfg({AssignmentPolicy::kJsq, 2});
  const rt::ClusterReport a = run_manual(cfg);
  cfg.node.seed = 0x5EEEu;
  const rt::ClusterReport b = run_manual(cfg);
  EXPECT_NE(a.produced, b.produced);
}

TEST(ClusterRt, DispatchAccountingIsConserved) {
  const auto cfg = base_cfg({AssignmentPolicy::kRoundRobin});
  const rt::ClusterReport r = run_manual(cfg);
  std::uint64_t dispatched = 0;
  for (const auto& nd : r.node) dispatched += nd.dispatched;
  EXPECT_EQ(dispatched, r.produced);
  EXPECT_EQ(r.outstanding, 0u);
  EXPECT_EQ(r.lost_to_kill, 0u);
  // Round-robin with no failures splits arrivals evenly (within one cycle).
  for (const auto& nd : r.node) {
    EXPECT_NEAR(static_cast<double>(nd.dispatched),
                static_cast<double>(r.produced) / 4.0, 1.0);
  }
}

TEST(ClusterRt, HoldsClusterWideRatioUnderJsq2) {
  const rt::ClusterReport r = run_manual(base_cfg({AssignmentPolicy::kJsq, 2}));
  ASSERT_EQ(r.cls.size(), 2u);
  EXPECT_NEAR(r.cls[1].window_ratio_p50, 2.0, 0.3);
  EXPECT_LE(r.max_window_ratio_error, 0.15);
}

TEST(ClusterRt, HoldsClusterWideRatioUnderSitaE) {
  // SITA-E keeps the heavy-tailed default dist (cutoffs need its CDF).
  auto cfg = base_cfg({AssignmentPolicy::kSizeInterval});
  cfg.node.warmup = 1.0;
  cfg.node.duration = 6.0;
  const rt::ClusterReport r = run_manual(cfg);
  EXPECT_LE(r.max_window_ratio_error, 0.15);
  // SITA-E concentrates the giants on the last band's node; dispatch counts
  // must be monotonically decreasing in band index (smallest sizes are the
  // most frequent under bounded-pareto).
  for (std::size_t i = 1; i < r.node.size(); ++i) {
    EXPECT_LT(r.node[i].dispatched, r.node[i - 1].dispatched);
  }
}

TEST(ClusterRt, NodeKillReconvergesWithinSettleBound) {
  auto cfg = base_cfg({AssignmentPolicy::kJsq, 2});
  cfg.node.duration = 5.0;
  cfg.kill_node = 3;
  cfg.kill_at = 2.0;
  const rt::ClusterReport r = run_manual(cfg);

  EXPECT_FALSE(r.node[3].alive);
  EXPECT_TRUE(r.node[0].alive);
  // Dispatch to the dead node stops at the kill: its share is well under
  // the ~1/4 it would carry alive for the full run.
  EXPECT_LT(r.node[3].dispatched, r.produced / 5);
  // The ratio held cluster-wide across the failure, and re-settled into the
  // tolerance band within the remaining run (settle is measured from the
  // kill instant).
  EXPECT_LE(r.max_window_ratio_error, 0.15);
  EXPECT_NEAR(r.settle_onset, 2.0, 1e-9);
  ASSERT_TRUE(std::isfinite(r.max_settle_seconds));
  EXPECT_LE(r.max_settle_seconds, 3.0);
}

TEST(ClusterRt, KillRejectsBadSchedules) {
  auto cfg = base_cfg({AssignmentPolicy::kRoundRobin});
  cfg.kill_at = 1.0;
  cfg.kill_node = 7;  // out of range
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.kill_node = 0;
  cfg.kill_at = 99.0;  // past the end of the run
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClusterRt, SingleNodeClusterMatchesConfigValidation) {
  auto cfg = base_cfg({AssignmentPolicy::kRoundRobin});
  cfg.nodes = 1;
  cfg.node.duration = 1.0;
  const rt::ClusterReport r = run_manual(cfg);
  EXPECT_EQ(r.node.size(), 1u);
  EXPECT_EQ(r.node[0].dispatched, r.produced);
}

}  // namespace
}  // namespace psd
