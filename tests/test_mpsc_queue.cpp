// MpscQueue: single-thread semantics, then multi-producer ordering and
// liveness with real threads.  The concurrent tests are written for
// ThreadSanitizer: real contention, atomic-only communication, and no
// timing-dependent assertions (completion is awaited, never assumed).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/mpsc_queue.hpp"

namespace psd::rt {
namespace {

TEST(MpscQueue, RoundsCapacityUpToPowerOfTwo) {
  MpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpscQueue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
}

TEST(MpscQueue, FifoSingleThread) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(MpscQueue, FullQueueRejectsWithoutBlocking) {
  MpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(MpscQueue, WrapsAroundManyLaps) {
  MpscQueue<std::uint64_t> q(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(i));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  q.publish_consumed();
  EXPECT_EQ(q.approx_size(), 0u);
}

// Encode (producer, sequence) in one word so the consumer can check
// per-producer FIFO order.
constexpr std::uint64_t pack(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 32) | seq;
}

/// `producers` threads each push `per_producer` tagged items through a ring
/// deliberately smaller than the item count (full-queue retries exercise the
/// CAS path); one consumer thread pops until everything arrived, asserting
/// per-producer FIFO.  Oversubscribed on purpose when producers+1 exceeds
/// the core count — preemption inside the push window is exactly the
/// liveness scenario worth testing.
void run_mpsc_storm(std::size_t producers, std::uint64_t per_producer) {
  MpscQueue<std::uint64_t> q(256);
  std::vector<std::thread> threads;
  threads.reserve(producers + 1);

  std::atomic<std::uint64_t> popped{0};
  std::vector<std::uint64_t> next_seq(producers, 0);
  std::atomic<bool> order_ok{true};
  const std::uint64_t total = producers * per_producer;

  threads.emplace_back([&] {  // consumer
    std::uint64_t item = 0;
    std::uint64_t count = 0;
    while (count < total) {
      if (!q.try_pop(item)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t producer = item >> 32;
      const std::uint64_t seq = item & 0xFFFFFFFFu;
      if (producer >= producers || seq != next_seq[producer]) {
        order_ok.store(false, std::memory_order_relaxed);
      } else {
        ++next_seq[producer];
      }
      ++count;
      q.publish_consumed();
    }
    popped.store(count, std::memory_order_release);
  });
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&q, p, per_producer] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        while (!q.try_push(pack(p, i))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(popped.load(), total);
  EXPECT_TRUE(order_ok.load());
  for (std::size_t p = 0; p < producers; ++p) {
    EXPECT_EQ(next_seq[p], per_producer) << "producer " << p;
  }
}

TEST(MpscQueue, TwoProducersKeepPerProducerFifo) {
  run_mpsc_storm(2, 20000);
}

TEST(MpscQueue, OversubscribedProducersLoseNothing) {
  // More threads than this machine has cores, pushing through a 256-slot
  // ring: heavy retry traffic, every item still arrives exactly once and in
  // per-producer order.
  const std::size_t producers =
      std::max<std::size_t>(8, std::thread::hardware_concurrency() * 2);
  run_mpsc_storm(producers, 4000);
}

}  // namespace
}  // namespace psd::rt
