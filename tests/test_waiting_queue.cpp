// FCFS waiting queue: ordering, stats, time-weighted occupancy.
#include <gtest/gtest.h>

#include "server/waiting_queue.hpp"

namespace psd {
namespace {

Request make_req(RequestId id, Time arrival) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.size = 1.0;
  return r;
}

TEST(WaitingQueue, FifoOrder) {
  WaitingQueue q;
  q.push(make_req(1, 0.0), 0.0);
  q.push(make_req(2, 1.0), 1.0);
  q.push(make_req(3, 2.0), 2.0);
  EXPECT_EQ(q.pop(3.0).id, 1u);
  EXPECT_EQ(q.pop(3.0).id, 2u);
  EXPECT_EQ(q.pop(3.0).id, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitingQueue, FrontPeeksWithoutRemoving) {
  WaitingQueue q;
  q.push(make_req(7, 0.0), 0.0);
  EXPECT_EQ(q.front().id, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(WaitingQueue, CountsArrivalsAndMaxDepth) {
  WaitingQueue q;
  q.push(make_req(1, 0.0), 0.0);
  q.push(make_req(2, 0.0), 0.0);
  q.pop(1.0);
  q.push(make_req(3, 1.0), 1.0);
  q.push(make_req(4, 1.0), 1.0);
  q.push(make_req(5, 1.0), 1.0);
  EXPECT_EQ(q.total_arrivals(), 5u);
  EXPECT_EQ(q.max_depth(), 4u);
}

TEST(WaitingQueue, PopEmptyThrows) {
  WaitingQueue q;
  EXPECT_THROW(q.pop(0.0), std::logic_error);
  EXPECT_THROW(q.front(), std::logic_error);
}

TEST(WaitingQueue, LengthTimeIntegral) {
  WaitingQueue q;
  q.push(make_req(1, 0.0), 0.0);   // length 1 over [0, 2)
  q.push(make_req(2, 2.0), 2.0);   // length 2 over [2, 5)
  q.pop(5.0);                      // length 1 over [5, 10)
  EXPECT_DOUBLE_EQ(q.length_time_integral(10.0), 1 * 2 + 2 * 3 + 1 * 5);
}

TEST(WaitingQueue, LittlesLawOnDeterministicPattern) {
  // Arrivals every 1.0, pops after exactly 2.0 in queue: L = lambda * W = 2.
  WaitingQueue q;
  double t = 0.0;
  RequestId id = 0;
  // Prime two arrivals before the first pop.
  q.push(make_req(id++, 0.0), 0.0);
  q.push(make_req(id++, 1.0), 1.0);
  for (t = 2.0; t < 1000.0; t += 1.0) {
    q.push(make_req(id++, t), t);
    q.pop(t);  // departs exactly 2 after its arrival
  }
  const double avg_len = q.length_time_integral(t) / t;
  EXPECT_NEAR(avg_len, 2.0, 0.05);
}

}  // namespace
}  // namespace psd
