// Exact percentiles, confidence intervals, batch means, reservoir sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/batch_means.hpp"
#include "stats/ci.hpp"
#include "stats/percentile.hpp"
#include "stats/reservoir.hpp"

namespace psd {
namespace {

TEST(Percentile, EmptyIsNaN) {
  std::vector<double> v;
  EXPECT_TRUE(std::isnan(percentile_of(v, 0.5)));
}

TEST(Percentile, SingleElement) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 1.0), 7.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.5), 5.0);
}

TEST(Percentile, MultipleQuantilesSingleSort) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0, 5.0};
  const auto ps = percentiles_of(v, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(ps[0], 1.0);
  EXPECT_DOUBLE_EQ(ps[1], 3.0);
  EXPECT_DOUBLE_EQ(ps[2], 5.0);
}

TEST(Percentile, RejectsOutOfRangeQuantile) {
  std::vector<double> v = {1.0};
  EXPECT_THROW(percentile_of(v, 1.5), std::invalid_argument);
}

TEST(ConfidenceInterval, EmptyAndSingle) {
  EXPECT_EQ(mean_confidence({}).n, 0u);
  const auto ci = mean_confidence({5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceInterval, KnownTwoSample) {
  const auto ci = mean_confidence({1.0, 3.0});
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  // s = sqrt(2), se = 1, t(df=1) = 12.706
  EXPECT_NEAR(ci.half_width, 12.706, 1e-9);
}

TEST(ConfidenceInterval, CoverageOnGaussianLikeData) {
  // ~95% of intervals over repeated samples should cover the true mean.
  Rng rng(42);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i) xs.push_back(rng.uniform(0, 2));  // mean 1
    const auto ci = mean_confidence(xs);
    if (std::abs(ci.mean - 1.0) <= ci.half_width) ++covered;
  }
  EXPECT_GT(covered, trials * 0.90);
  EXPECT_LT(covered, trials * 0.995);
}

TEST(TQuantile, TableSanity) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_quantile_975(30), 2.042, 1e-9);
  EXPECT_NEAR(t_quantile_975(1000), 1.96, 1e-9);
  EXPECT_DOUBLE_EQ(t_quantile_975(0), 0.0);
}

TEST(BatchMeans, RequiresTwoBatches) {
  EXPECT_THROW(batch_means({1.0, 2.0}, 1), std::invalid_argument);
}

TEST(BatchMeans, FallsBackOnTinyInput) {
  const auto r = batch_means({1.0, 2.0, 3.0}, 10);
  EXPECT_DOUBLE_EQ(r.mean, 2.0);
  EXPECT_EQ(r.batches, 1u);
}

TEST(BatchMeans, MeanMatchesAndCIPositive) {
  Rng rng(5);
  std::vector<double> xs;
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.exponential(1.0));
    sum += xs.back();
  }
  const auto r = batch_means(xs, 20);
  EXPECT_EQ(r.batches, 20u);
  EXPECT_EQ(r.per_batch, 100u);
  EXPECT_NEAR(r.mean, sum / 2000.0, 1e-9);
  EXPECT_GT(r.half_width, 0.0);
  EXPECT_LT(r.half_width, 0.2);
}

TEST(Reservoir, KeepsAllWhenUnderCapacity) {
  Rng rng(1);
  ReservoirSample rs(10);
  for (int i = 0; i < 5; ++i) rs.add(i, rng);
  EXPECT_EQ(rs.values().size(), 5u);
  EXPECT_EQ(rs.seen(), 5u);
}

TEST(Reservoir, CapacityBoundHolds) {
  Rng rng(2);
  ReservoirSample rs(100);
  for (int i = 0; i < 10000; ++i) rs.add(i, rng);
  EXPECT_EQ(rs.values().size(), 100u);
  EXPECT_EQ(rs.seen(), 10000u);
}

TEST(Reservoir, SampleIsApproximatelyUniform) {
  // Mean of a uniform stream 0..N-1 retained by the reservoir should stay
  // near (N-1)/2.
  Rng rng(3);
  ReservoirSample rs(2000);
  const int n = 100000;
  for (int i = 0; i < n; ++i) rs.add(i, rng);
  double sum = 0.0;
  for (double v : rs.values()) sum += v;
  const double mean = sum / 2000.0;
  EXPECT_NEAR(mean, (n - 1) / 2.0, 2500.0);
  EXPECT_NEAR(rs.quantile(0.5), n / 2.0, 5000.0);
}

TEST(Reservoir, RejectsZeroCapacity) {
  EXPECT_THROW(ReservoirSample(0), std::invalid_argument);
}

}  // namespace
}  // namespace psd
