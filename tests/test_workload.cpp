// Request generators and load helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "dist/sampler.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"
#include "workload/sink.hpp"

namespace psd {
namespace {

class CollectingSink final : public RequestSink {
 public:
  void submit(const Request& req) override { requests.push_back(req); }
  std::vector<Request> requests;
};

TEST(RatesForLoad, EqualSplit) {
  const auto r = rates_for_equal_load(0.6, 1.0, 0.3, 3);
  ASSERT_EQ(r.size(), 3u);
  for (double x : r) EXPECT_NEAR(x, 0.2 / 0.3, 1e-12);
  // Total utilization check: sum(lambda) * E[X] == load.
  EXPECT_NEAR((r[0] + r[1] + r[2]) * 0.3, 0.6, 1e-12);
}

TEST(RatesForLoad, CustomShares) {
  const auto r = rates_for_load(0.5, 2.0, 0.25, {0.5, 0.3, 0.2});
  EXPECT_NEAR(r[0] * 0.25, 0.5 * 0.5 * 2.0, 1e-12);
  EXPECT_NEAR(r[1] * 0.25, 0.3 * 0.5 * 2.0, 1e-12);
  EXPECT_NEAR(r[2] * 0.25, 0.2 * 0.5 * 2.0, 1e-12);
}

TEST(RatesForLoad, SharesMustSumToOne) {
  EXPECT_THROW(rates_for_load(0.5, 1.0, 0.3, {0.5, 0.4}),
               std::invalid_argument);
  EXPECT_THROW(rates_for_load(0.5, 1.0, 0.3, {0.5, 0.5, 0.5}),
               std::invalid_argument);
}

TEST(RatesForLoad, RejectsZeroShare) {
  EXPECT_THROW(rates_for_load(0.5, 1.0, 0.3, {1.0, 0.0}),
               std::invalid_argument);
}

TEST(Generator, ProducesRequestsWithCorrectClassAndTimes) {
  Simulator sim;
  CollectingSink sink;
  Rng rng(1);
  RequestGenerator gen(sim, rng, 3,
                       DeterministicArrivals(1.0),
                       make_sampler(DistSpec::deterministic(0.5)), sink);
  gen.start(0.0);
  sim.run_until(10.0);
  gen.stop();
  ASSERT_EQ(sink.requests.size(), 10u);
  for (std::size_t i = 0; i < sink.requests.size(); ++i) {
    EXPECT_EQ(sink.requests[i].cls, 3u);
    EXPECT_DOUBLE_EQ(sink.requests[i].arrival, static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(sink.requests[i].size, 0.5);
  }
  EXPECT_EQ(gen.generated(), 10u);
}

TEST(Generator, IdsUniqueAndClassTagged) {
  Simulator sim;
  CollectingSink sink;
  RequestGenerator gen(sim, Rng(2), 5,
                       DeterministicArrivals(10.0),
                       make_sampler(DistSpec::deterministic(1.0)), sink);
  gen.start(0.0);
  sim.run_until(5.0);
  ASSERT_GE(sink.requests.size(), 2u);
  EXPECT_NE(sink.requests[0].id, sink.requests[1].id);
  EXPECT_EQ(sink.requests[0].id >> 48, 5u);
}

TEST(Generator, PoissonRateRealized) {
  Simulator sim;
  CollectingSink sink;
  RequestGenerator gen(sim, Rng(3), 0, PoissonArrivals(2.0),
                       make_sampler(DistSpec::deterministic(1.0)), sink);
  gen.start(0.0);
  sim.run_until(50000.0);
  EXPECT_NEAR(static_cast<double>(sink.requests.size()) / 50000.0, 2.0, 0.05);
}

TEST(Generator, StopHaltsProduction) {
  Simulator sim;
  CollectingSink sink;
  RequestGenerator gen(sim, Rng(4), 0,
                       DeterministicArrivals(1.0),
                       make_sampler(DistSpec::deterministic(1.0)), sink);
  gen.start(0.0);
  sim.run_until(5.0);
  gen.stop();
  sim.run_until(100.0);
  EXPECT_EQ(sink.requests.size(), 5u);
}

TEST(Generator, HeavyTailedSizesWithinSupport) {
  Simulator sim;
  CollectingSink sink;
  RequestGenerator gen(sim, Rng(5), 0,
                       DeterministicArrivals(100.0),
                       make_sampler(DistSpec::bounded_pareto(1.5, 0.1, 100.0)), sink);
  gen.start(0.0);
  sim.run_until(100.0);
  ASSERT_GT(sink.requests.size(), 1000u);
  for (const auto& r : sink.requests) {
    EXPECT_GE(r.size, 0.1);
    EXPECT_LE(r.size, 100.0);
  }
}

TEST(Generator, SameSeedSameStream) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    CollectingSink sink;
    RequestGenerator gen(sim, Rng(seed), 0,
                         PoissonArrivals(5.0),
                         make_sampler(DistSpec::bounded_pareto(1.5, 0.1, 100.0)),
                         sink);
    gen.start(0.0);
    sim.run_until(100.0);
    return sink.requests;
  };
  const auto a = run(77);
  const auto b = run(77);
  const auto c = run(78);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].size, b[i].size);
  }
  EXPECT_NE(a.size(), c.size());
}

TEST(RequestStruct, SlowdownDefinition) {
  Request r;
  r.arrival = 10.0;
  r.service_start = 14.0;
  r.departure = 16.0;
  r.service_elapsed = 2.0;
  EXPECT_DOUBLE_EQ(r.delay(), 4.0);
  EXPECT_DOUBLE_EQ(r.slowdown(), 2.0);  // delay / service time (paper §1)
  EXPECT_TRUE(r.completed());
}

}  // namespace
}  // namespace psd
