// P² streaming quantile estimator vs exact percentiles.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "dist/bounded_pareto.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/percentile.hpp"

namespace psd {
namespace {

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, EmptyIsNaN) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // median of {1, 5}
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // median of {1, 3, 5}
}

// Parameterized over (quantile, distribution shape): the estimator must stay
// within a few percent of the exact sample quantile.
class P2Accuracy : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(P2Accuracy, TracksExactQuantile) {
  const double q = std::get<0>(GetParam());
  const int shape = std::get<1>(GetParam());
  Rng rng(1234 + shape);
  P2Quantile est(q);
  std::vector<double> all;
  all.reserve(50000);
  for (int i = 0; i < 50000; ++i) {
    double x = 0;
    switch (shape) {
      case 0: x = rng.uniform01(); break;
      case 1: x = rng.exponential(1.0); break;
      case 2: {  // heavy-tailed: the regime the library actually faces
        BoundedPareto bp(1.5, 0.1, 100.0);
        x = bp.sample(rng);
        break;
      }
      default: x = rng.uniform(5, 6);
    }
    est.add(x);
    all.push_back(x);
  }
  const double exact = percentile_of(all, q);
  // Relative tolerance loosened for extreme quantiles of heavy tails.
  const double tol = (shape == 2 ? 0.15 : 0.05) * std::max(exact, 0.05);
  EXPECT_NEAR(est.value(), exact, tol)
      << "q=" << q << " shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(
    QuantileSweep, P2Accuracy,
    ::testing::Combine(::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95),
                       ::testing::Values(0, 1, 2)));

TEST(P2QuantileSet, TracksMultipleQuantiles) {
  Rng rng(7);
  P2QuantileSet set({0.05, 0.5, 0.95});
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(2.0);
    set.add(x);
    all.push_back(x);
  }
  const auto exact = percentiles_of(all, {0.05, 0.5, 0.95});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(set.value(i), exact[i], 0.05 * std::max(exact[i], 0.05));
  }
  EXPECT_EQ(set.count(), 20000u);
}

TEST(P2QuantileSet, RejectsEmpty) {
  EXPECT_THROW(P2QuantileSet({}), std::invalid_argument);
}

TEST(P2Quantile, MonotoneDataConverges) {
  P2Quantile q(0.5);
  for (int i = 1; i <= 10001; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 5001.0, 100.0);
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile q(0.9);
  for (int i = 0; i < 1000; ++i) q.add(4.2);
  EXPECT_DOUBLE_EQ(q.value(), 4.2);
}

}  // namespace
}  // namespace psd
