// Adaptive feedback extension: bias dynamics and closed-loop direction.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/types.hpp"
#include "core/adaptive_psd.hpp"
#include "dist/bounded_pareto.hpp"
#include "workload/class_spec.hpp"

namespace psd {
namespace {

PsdAllocatorConfig paper_cfg() {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdAllocatorConfig c;
  c.delta = {1.0, 2.0};
  c.capacity = 1.0;
  c.mean_size = bp.mean();
  return c;
}

TEST(AdaptivePsd, NoObservationsBehavesLikeOpenLoop) {
  AdaptivePsdAllocator adaptive(paper_cfg(), {});
  PsdRateAllocator open(paper_cfg());
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.5, 1.0, bp.mean(), 2);
  const auto ra = adaptive.allocate(lam);
  const auto ro = open.allocate(lam);
  EXPECT_NEAR(ra[0], ro[0], 1e-12);
  EXPECT_NEAR(ra[1], ro[1], 1e-12);
}

TEST(AdaptivePsd, OnTargetObservationsLeaveBiasNearZero) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  // Achieved ratio exactly 2 == delta ratio: normalized slowdowns equal.
  a.observe_slowdowns({5.0, 10.0});
  for (double b : a.bias()) EXPECT_NEAR(b, 0.0, 1e-12);
}

TEST(AdaptivePsd, SlowClassGetsMoreRateNextRound) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.5, 1.0, bp.mean(), 2);
  const auto before = a.allocate(lam);
  // Class 0 running at ratio 1:1 instead of 1:2 — class 1 is too slow
  // relative to target (10/2 > 10/1? no: normalized 10/1=10 vs 10/2=5 ->
  // class 0 too slow). Feed class-0-too-slow signal:
  a.observe_slowdowns({10.0, 10.0});  // S0/d0 = 10 > S1/d1 = 5
  const auto after = a.allocate(lam);
  EXPECT_GT(after[0], before[0]);  // class 0 compensated with more rate
  EXPECT_LT(after[1], before[1]);
}

TEST(AdaptivePsd, BiasIsBoundedByMaxCorrection) {
  AdaptiveConfig ac;
  ac.gain = 10.0;  // aggressive
  ac.max_correction = 2.0;
  AdaptivePsdAllocator a(paper_cfg(), ac);
  for (int i = 0; i < 100; ++i) a.observe_slowdowns({100.0, 1.0});
  for (double b : a.bias()) {
    EXPECT_LE(std::abs(b), std::log(2.0) + 1e-9);
  }
}

TEST(AdaptivePsd, BiasesStayCentered) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  for (int i = 0; i < 10; ++i) a.observe_slowdowns({30.0, 10.0});
  const auto& b = a.bias();
  EXPECT_NEAR(std::accumulate(b.begin(), b.end(), 0.0), 0.0, 1e-9);
}

TEST(AdaptivePsd, IgnoresWindowsWithSilentClasses) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  a.observe_slowdowns({10.0, kNaN});  // only one class reported: skip
  for (double b : a.bias()) EXPECT_DOUBLE_EQ(b, 0.0);
  a.observe_slowdowns({kNaN, kNaN});
  for (double b : a.bias()) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(AdaptivePsd, RatesRemainFeasibleUnderFeedback) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.8, 1.0, bp.mean(), 2);
  for (int i = 0; i < 50; ++i) {
    a.observe_slowdowns({50.0, 10.0 + i});
    const auto r = a.allocate(lam);
    EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-9);
    for (double x : r) EXPECT_GT(x, 0.0);
  }
}

TEST(AdaptivePsd, RejectsBadConfig) {
  AdaptiveConfig ac;
  ac.max_correction = 1.0;
  EXPECT_THROW(AdaptivePsdAllocator(paper_cfg(), ac), std::invalid_argument);
  ac = {};
  ac.gain = -0.1;
  EXPECT_THROW(AdaptivePsdAllocator(paper_cfg(), ac), std::invalid_argument);
}

TEST(AdaptivePsd, ObservationSizeMismatchThrows) {
  AdaptivePsdAllocator a(paper_cfg(), {});
  EXPECT_THROW(a.observe_slowdowns({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace psd
