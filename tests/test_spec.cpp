// The spec registry contract (common/spec.hpp): every spec type round-trips
// parse(name()) == value, keeps accepting the historical CLI spellings, and
// rejects malformed input with std::invalid_argument.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/spec.hpp"

namespace psd {
namespace {

// ------------------------------------------------------------- round-trips

template <spec::Spec S>
void expect_roundtrip(const S& s) {
  EXPECT_EQ(spec::parse<S>(spec::name(s)), s) << spec::name(s);
}

TEST(SpecRegistry, DistSpecRoundTrips) {
  expect_roundtrip(DistSpec::bounded_pareto(1.5, 0.1, 100.0));
  expect_roundtrip(DistSpec::deterministic(2.0));
  expect_roundtrip(DistSpec::exponential(0.25));
  expect_roundtrip(DistSpec::bounded_exponential(1.0, 0.1, 10.0));
  expect_roundtrip(DistSpec::lognormal(1.0, 4.0));
  expect_roundtrip(DistSpec::uniform(0.5, 1.5));
}

TEST(SpecRegistry, ArrivalSpecRoundTrips) {
  ArrivalSpec poisson;
  expect_roundtrip(poisson);
  ArrivalSpec det;
  det.kind = ArrivalKind::kDeterministic;
  expect_roundtrip(det);
  ArrivalSpec mmpp;
  mmpp.kind = ArrivalKind::kBursty;
  mmpp.burstiness = 8.0;
  mmpp.sojourn = 20.0;
  mmpp.duty = 0.2;
  expect_roundtrip(mmpp);
}

TEST(SpecRegistry, LoadProfileRoundTrips) {
  expect_roundtrip(LoadProfile::none());
  expect_roundtrip(LoadProfile::ramp(0.0, 100.0, 1.0, 2.0));
  expect_roundtrip(LoadProfile::sinusoid(200.0, 0.5));
  expect_roundtrip(LoadProfile::spike(100.0, 20.0, 3.0));
}

TEST(SpecRegistry, AdmissionSpecRoundTrips) {
  AdmissionSpec none;
  expect_roundtrip(none);
  AdmissionSpec util;
  util.kind = AdmissionSpec::Kind::kUtilization;
  util.threshold = 0.85;
  expect_roundtrip(util);
  AdmissionSpec budget;
  budget.kind = AdmissionSpec::Kind::kSlowdownBudget;
  budget.budget = 12.5;
  expect_roundtrip(budget);
  AdmissionSpec bucket;
  bucket.kind = AdmissionSpec::Kind::kTokenBucket;
  bucket.threshold = 0.9;
  bucket.burst_tu = 2.0;
  expect_roundtrip(bucket);
}

TEST(SpecRegistry, AssignmentSpecRoundTrips) {
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kRandom});
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kRoundRobin});
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kLeastWorkLeft});
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kSizeInterval});
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kJsq, 2});
  expect_roundtrip(AssignmentSpec{AssignmentPolicy::kJsq, 5});
}

TEST(SpecRegistry, ClusterSpecRoundTrips) {
  ClusterSpec one;
  expect_roundtrip(one);
  ClusterSpec four;
  four.nodes = 4;
  four.assignment = {AssignmentPolicy::kJsq, 2};
  expect_roundtrip(four);
  ClusterSpec eight;
  eight.nodes = 8;
  eight.assignment = AssignmentPolicy::kSizeInterval;
  expect_roundtrip(eight);
}

// ----------------------------------------------- historical CLI spellings

TEST(SpecRegistry, AcceptsHistoricalSpellings) {
  // The exact strings the CLIs documented before the registry existed must
  // keep parsing to the same values (byte-compat contract).
  EXPECT_EQ(spec::parse<DistSpec>("bp:1.5,0.1,100"),
            DistSpec::bounded_pareto(1.5, 0.1, 100.0));
  EXPECT_EQ(spec::parse<DistSpec>("uniform:0.5,1.5"),
            DistSpec::uniform(0.5, 1.5));

  EXPECT_EQ(spec::parse<ArrivalSpec>("deterministic").kind,
            ArrivalKind::kDeterministic);
  EXPECT_EQ(spec::parse<ArrivalSpec>("det").kind,
            ArrivalKind::kDeterministic);
  EXPECT_EQ(spec::parse<ArrivalSpec>("mmpp:4").burstiness, 4.0);

  EXPECT_EQ(spec::parse<LoadProfile>("none"), LoadProfile::none());
  EXPECT_EQ(spec::parse<LoadProfile>("spike:100,20,3"),
            LoadProfile::spike(100.0, 20.0, 3.0));

  EXPECT_EQ(spec::parse<AdmissionSpec>("util").kind,
            AdmissionSpec::Kind::kUtilization);
  EXPECT_EQ(spec::parse<AdmissionSpec>("delta-aware:0.95").threshold, 0.95);

  // Bare "jsq" defaults d = 2; bare "N" keeps default round-robin.
  EXPECT_EQ(spec::parse<AssignmentSpec>("jsq"),
            (AssignmentSpec{AssignmentPolicy::kJsq, 2}));
  const ClusterSpec bare = spec::parse<ClusterSpec>("4");
  EXPECT_EQ(bare.nodes, 4u);
  EXPECT_EQ(bare.assignment.policy, AssignmentPolicy::kRoundRobin);
}

// ------------------------------------------------------------- rejections

TEST(SpecRegistry, RejectsMalformedInput) {
  EXPECT_THROW(spec::parse<DistSpec>("pareto:1.5"), std::invalid_argument);
  EXPECT_THROW(spec::parse<DistSpec>("bp:1.5"), std::invalid_argument);
  EXPECT_THROW(spec::parse<ArrivalSpec>("mmpp:0.5"), std::invalid_argument);
  EXPECT_THROW(spec::parse<ArrivalSpec>("burst"), std::invalid_argument);
  EXPECT_THROW(spec::parse<LoadProfile>("ramp:1,2"), std::invalid_argument);
  EXPECT_THROW(spec::parse<AdmissionSpec>("tokens"), std::invalid_argument);
  EXPECT_THROW(spec::parse<AssignmentSpec>("jsq0"), std::invalid_argument);
  EXPECT_THROW(spec::parse<AssignmentSpec>("sjf"), std::invalid_argument);
  EXPECT_THROW(spec::parse<ClusterSpec>("0:rr"), std::invalid_argument);
  EXPECT_THROW(spec::parse<ClusterSpec>("4:sjf"), std::invalid_argument);
}

TEST(SpecRegistry, HintsNameEveryGrammar) {
  EXPECT_NE(std::string(spec::hint<DistSpec>()).find("bp:"),
            std::string::npos);
  EXPECT_NE(std::string(spec::hint<ArrivalSpec>()).find("mmpp"),
            std::string::npos);
  EXPECT_NE(std::string(spec::hint<LoadProfile>()).find("spike"),
            std::string::npos);
  EXPECT_NE(std::string(spec::hint<AdmissionSpec>()).find("token-bucket"),
            std::string::npos);
  EXPECT_NE(std::string(spec::hint<AssignmentSpec>()).find("jsq"),
            std::string::npos);
  EXPECT_NE(std::string(spec::hint<ClusterSpec>()).find("nodes"),
            std::string::npos);
}

}  // namespace
}  // namespace psd
