// Overload survival, end to end: deterministic rt shedding, sim-vs-rt
// agreement on a shared replayed trace, the delta-aware ratio-integrity
// guarantee at 2x capacity, and the admission-off byte-identity contract.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "rt/runtime.hpp"
#include "workload/trace.hpp"

namespace psd {
namespace {

// The canonical overload operating point (see src/admission/README.md):
// bexp sizes keep E[1/X] finite with a light tail, and the adaptive
// allocator's feedback is what holds the admitted ratios on target once
// error-diffusion thinning regularizes the arrival streams away from the
// Poisson that eq. 17/18 assume.
ScenarioConfig overload_scenario(double load, const std::string& admission) {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = load;
  cfg.size_dist = DistSpec::bounded_exponential(1.0, 0.1, 10.0);
  cfg.allocator = AllocatorKind::kAdaptivePsd;
  cfg.warmup_tu = 20000.0;
  cfg.measure_tu = 40000.0;
  cfg.admission = AdmissionSpec::parse(admission);
  return cfg;
}

rt::RtConfig small_overload_rt_config() {
  rt::RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 2.0;  // deliberate overload; the gate makes this legal
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.mean_service_seconds = 1e-3;
  cfg.shards = 2;
  cfg.loadgens = 2;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.5;
  cfg.duration = 3.0;
  cfg.seed = 71;
  cfg.admission = AdmissionSpec::parse("delta-aware:0.8");
  return cfg;
}

rt::RtReport drive_manual(const rt::RtConfig& cfg) {
  rt::Runtime runtime(cfg, rt::ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  return runtime.report();
}

TEST(OverloadRt, ManualDriveWithSheddingIsBitwiseDeterministic) {
  const rt::RtConfig cfg = small_overload_rt_config();
  const rt::RtReport a = drive_manual(cfg);
  const rt::RtReport b = drive_manual(cfg);

  // The gate is actually working: sheds happen, ring drops don't, and the
  // overload metrics come back populated.
  EXPECT_GT(a.shed_total, 0u);
  EXPECT_EQ(a.dropped, 0u);
  EXPECT_TRUE(std::isfinite(a.goodput));
  EXPECT_TRUE(std::isfinite(a.survivor_window_ratio_error));

  ASSERT_EQ(a.cls.size(), b.cls.size());
  EXPECT_EQ(a.produced, b.produced);
  EXPECT_EQ(a.shed_total, b.shed_total);
  EXPECT_EQ(a.completed_all, b.completed_all);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  for (std::size_t c = 0; c < a.cls.size(); ++c) {
    EXPECT_EQ(a.cls[c].completed, b.cls[c].completed);
    EXPECT_EQ(a.cls[c].shed, b.cls[c].shed);
    // Bitwise: identical draw order, identical thinning credit sequence.
    EXPECT_DOUBLE_EQ(a.cls[c].shed_rate, b.cls[c].shed_rate);
    EXPECT_DOUBLE_EQ(a.cls[c].mean_slowdown, b.cls[c].mean_slowdown);
  }
}

TEST(OverloadSimRt, ShedFractionsAgreeOnSharedReplayedTrace) {
  // One recorded 2x-capacity workload (the tee records the OFFERED stream,
  // ahead of the gate), replayed through both stacks with the same
  // delta-aware:0.8 policy: each side re-sheds with its own estimator, and
  // the overall shed fractions must land in the same place (~1 - 0.8/2).
  ScenarioConfig sc;
  sc.delta = {1.0, 2.0};
  sc.load = 2.0;
  sc.size_dist = DistSpec::deterministic(1.0);  // E[X] = 1: tu == raw time
  sc.allocator = AllocatorKind::kAdaptivePsd;
  sc.warmup_tu = 2000.0;
  sc.measure_tu = 8000.0;
  sc.admission = AdmissionSpec::parse("delta-aware:0.8");

  Trace trace;
  const RunResult sim = run_scenario_recorded(sc, trace);
  ASSERT_FALSE(trace.empty());
  double sim_offered = 0.0;
  double sim_shed = 0.0;
  for (std::size_t c = 0; c < sim.shed.size(); ++c) {
    sim_offered += static_cast<double>(sim.offered[c]);
    sim_shed += static_cast<double>(sim.shed[c]);
  }
  ASSERT_GT(sim_offered, 0.0);
  const double sim_frac = sim_shed / sim_offered;

  rt::RtConfig rc;
  rc.delta = {1.0, 2.0};
  rc.load = 2.0;
  rc.size_dist = DistSpec::deterministic(1.0);
  rc.mean_service_seconds = 1e-3;  // 1 tu = 1 ms; trace spans 10 s
  rc.shards = 1;
  rc.loadgens = 1;
  rc.controller_period = 1.0;  // 1000 tu: the simulator's realloc cadence
  rc.warmup = 2.0;
  rc.duration = 10.0;
  rc.seed = sc.seed;
  rc.admission = sc.admission;
  rt::Runtime runtime(rc, rt::ManualClock{}, trace, rc.mean_service_seconds);
  for (Time t = 0.02; t <= rc.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(30.0, 0.05);
  runtime.finish();
  const rt::RtReport rr = runtime.report();
  EXPECT_EQ(rr.produced, trace.size());
  EXPECT_EQ(rr.dropped, 0u);
  ASSERT_GT(rr.produced, 0u);
  const double rt_frac =
      static_cast<double>(rr.shed_total) / static_cast<double>(rr.produced);

  // Both gates target admitted demand 0.8 of capacity against offered 2.0;
  // the first estimation window admits everything, so both land slightly
  // under the asymptotic 0.6.
  EXPECT_GT(sim_frac, 0.4);
  EXPECT_LT(sim_frac, 0.75);
  EXPECT_GT(rt_frac, 0.4);
  EXPECT_LT(rt_frac, 0.75);
  EXPECT_NEAR(sim_frac, rt_frac, 0.1);
}

TEST(OverloadSim, DeltaAwareKeepsRatiosWhereAdmitAllCannot) {
  // The PR's acceptance criterion: at 2x capacity, delta-aware thinning
  // holds the admitted windowed-median ratio within 15% of target while
  // admit-all (gate installed, nothing shed) lets differentiation collapse
  // toward 1.0 as every queue diverges together.
  const ReplicatedResult gated =
      run_replications(overload_scenario(2.0, "delta-aware:0.8"), 4);
  EXPECT_GT(gated.shed_total, 0u);
  ASSERT_TRUE(std::isfinite(gated.survivor_ratio_err));
  EXPECT_LE(gated.survivor_ratio_err, 0.15);
  // Settle/goodput metrics come back populated and sane.
  EXPECT_GT(gated.goodput_tu, 0.5);
  EXPECT_LT(gated.goodput_tu, 1.0);

  const ReplicatedResult open =
      run_replications(overload_scenario(2.0, "admit-all"), 4);
  EXPECT_EQ(open.shed_total, 0u);
  ASSERT_TRUE(std::isfinite(open.survivor_ratio_err));
  EXPECT_GT(open.survivor_ratio_err, 0.15);
}

TEST(OverloadSim, AdmitAllAtSubCapacityMatchesNoGateBitwise) {
  // Installing the pass-through gate at a feasible load must not perturb a
  // single byte of the existing metrics: same arrivals, same draw order,
  // same completions — only the additive overload accounting appears.
  ScenarioConfig base;
  base.delta = {1.0, 2.0};
  base.load = 0.6;
  base.warmup_tu = 1000.0;
  base.measure_tu = 5000.0;
  const RunResult off = run_scenario(base);
  base.admission = AdmissionSpec::parse("admit-all");
  const RunResult on = run_scenario(base);

  EXPECT_EQ(off.submitted, on.submitted);
  EXPECT_EQ(off.reallocations, on.reallocations);
  EXPECT_DOUBLE_EQ(off.system_slowdown, on.system_slowdown);
  ASSERT_EQ(off.cls.size(), on.cls.size());
  for (std::size_t c = 0; c < off.cls.size(); ++c) {
    EXPECT_EQ(off.cls[c].completed, on.cls[c].completed);
    EXPECT_DOUBLE_EQ(off.cls[c].mean_slowdown, on.cls[c].mean_slowdown);
    EXPECT_DOUBLE_EQ(off.cls[c].mean_delay, on.cls[c].mean_delay);
  }
  // The gate's additive block: offered counted, nothing shed, goodput real.
  ASSERT_EQ(on.shed.size(), on.cls.size());
  for (std::uint64_t s : on.shed) EXPECT_EQ(s, 0u);
  EXPECT_TRUE(std::isfinite(on.goodput_tu));
  EXPECT_TRUE(std::isnan(off.goodput_tu));  // admission off: block absent
  EXPECT_TRUE(off.shed.empty());
}

TEST(OverloadRt, AdmitAllAtSubCapacityMatchesNoGateBitwise) {
  rt::RtConfig cfg = small_overload_rt_config();
  cfg.load = 0.5;
  cfg.admission = AdmissionSpec{};
  const rt::RtReport off = drive_manual(cfg);
  cfg.admission = AdmissionSpec::parse("admit-all");
  const rt::RtReport on = drive_manual(cfg);

  EXPECT_EQ(off.produced, on.produced);
  EXPECT_EQ(off.completed_all, on.completed_all);
  EXPECT_EQ(off.drains, on.drains);
  EXPECT_EQ(on.shed_total, 0u);
  ASSERT_EQ(off.cls.size(), on.cls.size());
  for (std::size_t c = 0; c < off.cls.size(); ++c) {
    EXPECT_EQ(off.cls[c].completed, on.cls[c].completed);
    EXPECT_DOUBLE_EQ(off.cls[c].mean_slowdown, on.cls[c].mean_slowdown);
  }
  EXPECT_TRUE(std::isnan(off.goodput));
  EXPECT_TRUE(std::isfinite(on.goodput));
}

}  // namespace
}  // namespace psd
