// Bounded Pareto: closed-form moments vs numeric integration vs sampling;
// inverse-CDF correctness; Lemma-2 rate scaling — parameterized across the
// (alpha, k, p) grid the paper sweeps in Figs. 11-12.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "dist/bounded_pareto.hpp"
#include "stats/online.hpp"

namespace psd {
namespace {

TEST(BoundedPareto, RejectsInvalidParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 0.1, 100.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.5, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.5, -1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.5, 100.0, 100.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.5, 100.0, 0.1), std::invalid_argument);
}

TEST(BoundedPareto, PdfIntegratesToOne) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const double total =
      integrate([&](double x) { return bp.pdf(x); }, 0.1, 100.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(BoundedPareto, PdfZeroOutsideSupport) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_DOUBLE_EQ(bp.pdf(0.05), 0.0);
  EXPECT_DOUBLE_EQ(bp.pdf(100.5), 0.0);
  EXPECT_GT(bp.pdf(0.1), 0.0);
  EXPECT_GT(bp.pdf(100.0), 0.0);
}

TEST(BoundedPareto, CdfEndpointsAndMonotonicity) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_DOUBLE_EQ(bp.cdf(0.1), 0.0);
  EXPECT_DOUBLE_EQ(bp.cdf(100.0), 1.0);
  double prev = 0.0;
  for (double x : {0.2, 0.5, 1.0, 5.0, 20.0, 80.0}) {
    const double c = bp.cdf(x);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(BoundedPareto, InverseCdfRoundTrip) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double u : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    const double x = bp.inv_cdf(u);
    EXPECT_NEAR(bp.cdf(x), u, 1e-10);
  }
  EXPECT_THROW(bp.inv_cdf(1.0), std::invalid_argument);
  EXPECT_THROW(bp.inv_cdf(-0.1), std::invalid_argument);
}

TEST(BoundedPareto, PaperDefaultMoments) {
  // The exact scalars driving every figure: BP(1.5, 0.1, 100).
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_NEAR(bp.mean(), 0.29052, 1e-4);
  EXPECT_NEAR(bp.second_moment(), 0.91871, 1e-4);
  EXPECT_NEAR(bp.mean_inverse(), 6.0002, 1e-3);
}

using BpParams = std::tuple<double, double, double>;

class BpMomentGrid : public ::testing::TestWithParam<BpParams> {
 protected:
  BoundedPareto make() const {
    const auto [a, k, p] = GetParam();
    return BoundedPareto(a, k, p);
  }
};

TEST_P(BpMomentGrid, ClosedFormMatchesQuadrature) {
  const auto bp = make();
  for (double n : {-1.0, 1.0, 2.0}) {
    const double closed = bp.moment(n);
    const double numeric = integrate(
        [&](double x) { return std::pow(x, n) * bp.pdf(x); }, bp.lower(),
        bp.upper(), 1e-11);
    EXPECT_NEAR(closed / numeric, 1.0, 1e-6)
        << "n=" << n << " " << bp.name();
  }
}

TEST_P(BpMomentGrid, SampleMomentsMatchClosedForm) {
  const auto bp = make();
  Rng rng(99);
  OnlineMoments m, inv;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = bp.sample(rng);
    ASSERT_GE(x, bp.lower());
    ASSERT_LE(x, bp.upper());
    m.add(x);
    inv.add(1.0 / x);
  }
  // Heavy tails converge slowly in the sample mean (p = 10^4 gives a
  // non-negligible mass of 1000x-mean outliers); 10% is still a strong check.
  EXPECT_NEAR(m.mean() / bp.mean(), 1.0, 0.10) << bp.name();
  EXPECT_NEAR(inv.mean() / bp.mean_inverse(), 1.0, 0.02) << bp.name();
}

TEST_P(BpMomentGrid, Lemma2ScalingOfAllThreeMoments) {
  const auto bp = make();
  for (double r : {0.25, 0.5, 2.0, 7.5}) {
    const BoundedPareto scaled = bp.scaled_by_rate(r);
    // Lemma 2: E[X_i] = E[X]/r, E[X_i^2] = E[X^2]/r^2, E[1/X_i] = r E[1/X].
    EXPECT_NEAR(scaled.mean(), bp.mean() / r, 1e-9 * bp.mean() / r);
    EXPECT_NEAR(scaled.second_moment(), bp.second_moment() / (r * r),
                1e-9 * bp.second_moment() / (r * r));
    EXPECT_NEAR(scaled.mean_inverse(), r * bp.mean_inverse(),
                1e-9 * r * bp.mean_inverse());
    // Support scales as [k/r, p/r] (paper's task-server distribution).
    EXPECT_NEAR(scaled.min_value(), bp.lower() / r, 1e-12);
    EXPECT_NEAR(scaled.max_value(), bp.upper() / r, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaKPGrid, BpMomentGrid,
    ::testing::Values(BpParams{1.5, 0.1, 100.0},   // paper default
                      BpParams{1.0, 0.1, 100.0},   // alpha == 1 edge
                      BpParams{2.0, 0.1, 100.0},   // alpha == E[X^2] edge
                      BpParams{1.1, 0.1, 100.0},
                      BpParams{1.9, 0.5, 50.0},
                      BpParams{1.5, 0.1, 1000.0},  // Fig. 12 sweep
                      BpParams{1.5, 0.1, 10000.0},
                      BpParams{0.8, 1.0, 10.0},    // alpha < 1
                      BpParams{3.0, 2.0, 200.0}));

TEST(BoundedPareto, AlphaEqualsMomentOrderUsesLogForm) {
  // E[X^n] at n == alpha switches to g*ln(p/k); check continuity around it.
  BoundedPareto bp(2.0, 0.1, 100.0);
  const double at = bp.moment(2.0);
  const double below = bp.moment(2.0 - 1e-7);
  const double above = bp.moment(2.0 + 1e-7);
  EXPECT_NEAR(at / below, 1.0, 1e-4);
  EXPECT_NEAR(at / above, 1.0, 1e-4);
}

TEST(BoundedPareto, ShapeParameterEffectMatchesFig11Narrative) {
  // Paper §4.5: smaller alpha => larger E[X^2] (burstier) => larger slowdown;
  // E[1/X] shrinks slightly as alpha falls.
  BoundedPareto lo(1.1, 0.1, 100.0), hi(1.9, 0.1, 100.0);
  EXPECT_GT(lo.second_moment(), hi.second_moment());
  EXPECT_GT(lo.second_moment() * lo.mean_inverse(),
            hi.second_moment() * hi.mean_inverse());
}

TEST(BoundedPareto, UpperBoundEffectMatchesFig12Narrative) {
  // Paper §4.5: larger p => larger E[X^2], E[1/X] nearly unchanged.
  BoundedPareto p100(1.5, 0.1, 100.0), p10k(1.5, 0.1, 10000.0);
  EXPECT_GT(p10k.second_moment(), p100.second_moment());
  EXPECT_NEAR(p10k.mean_inverse() / p100.mean_inverse(), 1.0, 0.01);
}

TEST(BoundedPareto, CopyIsIndependentAndEqual) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const BoundedPareto c = bp;  // plain value copy, no heap clone
  EXPECT_EQ(c.name(), bp.name());
  EXPECT_DOUBLE_EQ(c.mean(), bp.mean());
}

TEST(BoundedPareto, ScvIsLargeForHeavyTail) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_GT(bp.scv(), 5.0);  // strongly non-exponential
}

}  // namespace
}  // namespace psd
