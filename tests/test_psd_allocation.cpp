// eq. 17 / eq. 18 — the paper's core closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "core/psd_allocation.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "queueing/md1.hpp"
#include "workload/class_spec.hpp"

namespace psd {
namespace {

PsdInput paper_input(std::vector<double> delta, double load,
                     const BoundedPareto& bp) {
  PsdInput in;
  in.delta = delta;
  in.lambda = rates_for_equal_load(load, 1.0, bp.mean(), delta.size());
  in.mean_size = bp.mean();
  in.min_residual_share = 0.0;  // pure eq. 17 for analytic checks
  return in;
}

TEST(Eq17, RatesSumToCapacity) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double load : {0.1, 0.5, 0.9}) {
    const auto a = allocate_psd_rates(paper_input({1.0, 2.0}, load, bp));
    EXPECT_NEAR(a.rate[0] + a.rate[1], 1.0, 1e-12) << "load=" << load;
    EXPECT_NEAR(a.utilization, load, 1e-12);
    EXPECT_FALSE(a.clamped);
  }
}

TEST(Eq17, EachClassGetsAtLeastItsDemand) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto in = paper_input({1.0, 2.0, 3.0}, 0.8, bp);
  const auto a = allocate_psd_rates(in);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(a.rate[i], in.lambda[i] * bp.mean());
  }
}

TEST(Eq17, ClosedFormMatchesHandDerivation) {
  // r_i = lambda_i E[X] + (lambda_i/delta_i)/(sum lambda_j/delta_j) * (1-rho)
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto in = paper_input({1.0, 4.0}, 0.6, bp);
  const auto a = allocate_psd_rates(in);
  const double denom = in.lambda[0] / 1.0 + in.lambda[1] / 4.0;
  const double residual = 1.0 - 0.6;
  EXPECT_NEAR(a.rate[0],
              in.lambda[0] * bp.mean() + in.lambda[0] / 1.0 / denom * residual,
              1e-12);
  EXPECT_NEAR(a.rate[1],
              in.lambda[1] * bp.mean() + in.lambda[1] / 4.0 / denom * residual,
              1e-12);
}

TEST(Eq17, SingleClassGetsEverything) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto a = allocate_psd_rates(paper_input({1.0}, 0.5, bp));
  EXPECT_NEAR(a.rate[0], 1.0, 1e-12);
}

TEST(Eq17, EqualDeltasReduceToEqualResidualSplit) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto in = paper_input({2.0, 2.0}, 0.5, bp);
  const auto a = allocate_psd_rates(in);
  EXPECT_NEAR(a.rate[0], a.rate[1], 1e-12);  // equal lambdas + equal deltas
}

TEST(Eq17, GeneralizesToArbitraryCapacity) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  auto in = paper_input({1.0, 2.0}, 0.5, bp);
  // Doubling capacity and lambdas scales all rates by 2.
  auto in2 = in;
  in2.capacity = 2.0;
  for (auto& l : in2.lambda) l *= 2.0;
  const auto a = allocate_psd_rates(in);
  const auto a2 = allocate_psd_rates(in2);
  EXPECT_NEAR(a2.rate[0], 2.0 * a.rate[0], 1e-12);
  EXPECT_NEAR(a2.rate[1], 2.0 * a.rate[1], 1e-12);
}

TEST(Eq18, AchievesTargetRatiosExactly) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double d2 : {2.0, 4.0, 8.0}) {
    const auto lam = rates_for_equal_load(0.7, 1.0, bp.mean(), 2);
    const auto sd = expected_psd_slowdowns(lam, {1.0, d2}, bp);
    EXPECT_NEAR(sd[1] / sd[0], d2, 1e-12) << "d2=" << d2;
  }
}

TEST(Eq18, EqualsTheorem1AppliedToEq17Rates) {
  // The consistency identity the whole paper rests on.
  BoundedPareto bp(1.5, 0.1, 100.0);
  for (double load : {0.2, 0.5, 0.8}) {
    const auto in = paper_input({1.0, 2.0, 3.0}, load, bp);
    const auto a = allocate_psd_rates(in);
    const auto sd = expected_psd_slowdowns(in.lambda, in.delta, bp);
    for (std::size_t i = 0; i < 3; ++i) {
      const double direct = theorem1_slowdown(in.lambda[i], bp, a.rate[i]);
      EXPECT_NEAR(sd[i] / direct, 1.0, 1e-10)
          << "load=" << load << " class=" << i;
    }
  }
}

TEST(Eq18, Md1SpecialCaseViaDeterministicDistribution) {
  // eq. 15 consistency: with X == c the generic machinery must reproduce
  // rho_i / (2 (1 - rho_i)) on each task server.
  Deterministic d(0.5);
  const std::vector<double> delta = {1.0, 2.0};
  const auto lam = rates_for_equal_load(0.6, 1.0, d.mean(), 2);
  PsdInput in;
  in.lambda = lam;
  in.delta = delta;
  in.mean_size = d.mean();
  in.min_residual_share = 0.0;
  const auto a = allocate_psd_rates(in);
  const auto sd = expected_psd_slowdowns(lam, delta, d);
  for (std::size_t i = 0; i < 2; ++i) {
    Md1 md(lam[i], 0.5, a.rate[i]);
    EXPECT_NEAR(sd[i], md.expected_slowdown(), 1e-10);
  }
  EXPECT_NEAR(sd[1] / sd[0], 2.0, 1e-12);
}

TEST(Eq18, SystemSlowdownIsLambdaWeighted) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> lam = {0.3, 0.9};
  const std::vector<double> delta = {1.0, 2.0};
  const auto sd = expected_psd_slowdowns(lam, delta, bp);
  const double sys = expected_system_slowdown(lam, delta, bp);
  EXPECT_NEAR(sys, (0.3 * sd[0] + 0.9 * sd[1]) / 1.2, 1e-12);
}

TEST(Overload, ThrowPolicy) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in = paper_input({1.0, 2.0}, 0.9, bp);
  for (auto& l : in.lambda) l *= 2.0;  // rho = 1.8
  in.overload = OverloadPolicy::kThrow;
  EXPECT_THROW(allocate_psd_rates(in), std::domain_error);
  EXPECT_FALSE(psd_feasible(in.lambda, bp.mean(), 1.0));
}

TEST(Overload, ClampPreservesMixAndFeasibility) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in = paper_input({1.0, 2.0}, 0.9, bp);
  in.lambda[0] *= 3.0;  // asymmetric overload
  in.overload = OverloadPolicy::kClamp;
  in.rho_max = 0.95;
  const auto a = allocate_psd_rates(in);
  EXPECT_TRUE(a.clamped);
  EXPECT_NEAR(a.utilization, 0.95, 1e-12);
  EXPECT_NEAR(std::accumulate(a.rate.begin(), a.rate.end(), 0.0), 1.0, 1e-12);
  for (double r : a.rate) EXPECT_GT(r, 0.0);
}

TEST(Floor, ZeroLambdaClassKeepsTrickleRate) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in = paper_input({1.0, 2.0}, 0.5, bp);
  in.lambda[1] = 0.0;  // estimator saw nothing for class 1
  in.min_residual_share = 1e-3;
  const auto a = allocate_psd_rates(in);
  EXPECT_GT(a.rate[1], 0.0);
  EXPECT_NEAR(a.rate[0] + a.rate[1], 1.0, 1e-12);
}

TEST(Floor, AllZeroLambdasSplitEvenly) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in = paper_input({1.0, 2.0}, 0.5, bp);
  in.lambda = {0.0, 0.0};
  const auto a = allocate_psd_rates(in);
  EXPECT_NEAR(a.rate[0], 0.5, 1e-12);
  EXPECT_NEAR(a.rate[1], 0.5, 1e-12);
}

TEST(Validation, RejectsMalformedInputs) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  PsdInput in = paper_input({1.0, 2.0}, 0.5, bp);
  auto bad = in;
  bad.delta = {1.0};
  EXPECT_THROW(allocate_psd_rates(bad), std::invalid_argument);
  bad = in;
  bad.lambda[0] = -1.0;
  EXPECT_THROW(allocate_psd_rates(bad), std::invalid_argument);
  bad = in;
  bad.delta[0] = 0.0;
  EXPECT_THROW(allocate_psd_rates(bad), std::invalid_argument);
  bad = in;
  bad.mean_size = 0.0;
  EXPECT_THROW(allocate_psd_rates(bad), std::invalid_argument);
  EXPECT_THROW(expected_psd_slowdowns({1.0}, {1.0, 2.0}, bp),
               std::invalid_argument);
}

TEST(Eq18, UnstableInputThrows) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  const auto lam = rates_for_equal_load(0.99, 1.0, bp.mean(), 2);
  std::vector<double> heavy = {lam[0] * 3, lam[1] * 3};
  EXPECT_THROW(expected_psd_slowdowns(heavy, {1.0, 2.0}, bp),
               std::domain_error);
}

}  // namespace
}  // namespace psd
