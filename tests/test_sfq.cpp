// Start-time fair queueing backend: work conservation, weighted sharing,
// FCFS within class.
#include <deque>
#include <gtest/gtest.h>

#include <vector>

#include "sched/sfq.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

struct Harness {
  Simulator sim;
  std::vector<WaitingQueue> queues;
  std::vector<Request> done;
  std::deque<Request> staged;  ///< Stable storage for not-yet-arrived requests.
  SfqBackend backend;

  explicit Harness(std::size_t classes) : queues(classes) {
    backend.attach(sim, queues, 1.0, Rng(1),
                   [this](Request&& r) { done.push_back(std::move(r)); });
  }

  void submit(ClassId cls, Time t, Work size, RequestId id = 0) {
    Request r;
    r.id = id;
    r.cls = cls;
    r.arrival = t;
    r.size = size;
    staged.push_back(r);
    const std::size_t idx = staged.size() - 1;
    sim.at_fast(t, [this, idx, cls] {
      queues[cls].push(staged[idx], sim.now());
      backend.notify_arrival(cls);
    });
  }

  double work_done(ClassId cls, Time until) const {
    double w = 0.0;
    for (const auto& r : done) {
      if (r.cls == cls && r.departure <= until) w += r.size;
    }
    return w;
  }
};

TEST(Sfq, SingleClassRunsAtFullCapacity) {
  // Work conservation: unlike the dedicated backend, one backlogged class
  // gets the whole processor.
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  h.submit(0, 0.0, 1.0);
  h.submit(0, 0.0, 1.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 1.0);  // full rate, not 0.5
  EXPECT_DOUBLE_EQ(h.done[1].departure, 2.0);
}

TEST(Sfq, EqualWeightsInterleaveBacklog) {
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  // Saturate both classes with unit jobs.
  for (int i = 0; i < 20; ++i) {
    h.submit(0, 0.0, 1.0, i);
    h.submit(1, 0.0, 1.0, 100 + i);
  }
  h.sim.run_until(20.0);
  // After 20 time units each class must have received ~10 units of work.
  EXPECT_NEAR(h.work_done(0, 20.0), 10.0, 1.0);
  EXPECT_NEAR(h.work_done(1, 20.0), 10.0, 1.0);
}

TEST(Sfq, WeightedSharingUnderBacklog) {
  Harness h(2);
  h.backend.set_rates({0.75, 0.25});
  for (int i = 0; i < 100; ++i) {
    h.submit(0, 0.0, 0.5, i);
    h.submit(1, 0.0, 0.5, 1000 + i);
  }
  h.sim.run_until(40.0);
  const double w0 = h.work_done(0, 40.0);
  const double w1 = h.work_done(1, 40.0);
  EXPECT_NEAR(w0 / (w0 + w1), 0.75, 0.05);
}

TEST(Sfq, FcfsWithinClass) {
  Harness h(1);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 1.0, 1);
  h.submit(0, 0.1, 1.0, 2);
  h.submit(0, 0.2, 1.0, 3);
  h.sim.run_until(10.0);
  ASSERT_EQ(h.done.size(), 3u);
  EXPECT_EQ(h.done[0].id, 1u);
  EXPECT_EQ(h.done[1].id, 2u);
  EXPECT_EQ(h.done[2].id, 3u);
}

TEST(Sfq, NonPreemptiveServiceDuration) {
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  h.submit(0, 0.0, 4.0);
  h.submit(1, 0.1, 1.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  // Class 0's long job runs to completion at full rate first (it arrived to
  // an idle server); class 1 waits behind it.
  EXPECT_EQ(h.done[0].cls, 0u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 4.0);
  EXPECT_DOUBLE_EQ(h.done[0].service_elapsed, 4.0);
  EXPECT_DOUBLE_EQ(h.done[1].departure, 5.0);
  EXPECT_DOUBLE_EQ(h.done[1].delay(), 4.0 - 0.1);
}

TEST(Sfq, IdleClassCapacityRedistributed) {
  // Class 1 idle: class 0 with weight 0.25 still gets full capacity.
  Harness h(2);
  h.backend.set_rates({0.25, 0.75});
  h.submit(0, 0.0, 2.0);
  h.sim.run_until(10.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 2.0);
}

TEST(Sfq, VirtualTimeMonotone) {
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  double last_v = 0.0;
  for (int i = 0; i < 50; ++i) {
    h.submit(i % 2, 0.1 * i, 0.3);
  }
  h.sim.run_until(100.0);
  EXPECT_GE(h.backend.virtual_time(), last_v);
  EXPECT_EQ(h.done.size(), 50u);
}

TEST(Sfq, RateVectorSizeMismatchThrows) {
  Harness h(2);
  EXPECT_THROW(h.backend.set_rates({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace psd
