// Non-Pareto service-time distributions: closed-form moments vs sampling and
// quadrature; Lemma-2-style rate scaling holds for every family; the
// exponential correctly refuses E[1/X] (paper §5's divergence argument).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/sampler.hpp"
#include "dist/uniform.hpp"
#include "stats/online.hpp"

namespace psd {
namespace {

void expect_sample_moments(const SizeDistribution& d, double tol_mean = 0.02,
                           double tol_inv = 0.02, int n = 300000) {
  Rng rng(4242);
  OnlineMoments m, inv;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    ASSERT_GT(x, 0.0);
    m.add(x);
    inv.add(1.0 / x);
  }
  EXPECT_NEAR(m.mean() / d.mean(), 1.0, tol_mean) << d.name();
  EXPECT_NEAR(inv.mean() / d.mean_inverse(), 1.0, tol_inv) << d.name();
}

// ---------------------------------------------------------------- exponential
TEST(Exponential, MomentsAndSampling) {
  Exponential e(2.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_DOUBLE_EQ(e.second_moment(), 8.0);
  Rng rng(1);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(e.sample(rng));
  EXPECT_NEAR(m.mean(), 2.0, 0.05);
}

TEST(Exponential, MeanInverseDiverges) {
  // The paper's related-work point: slowdown has no finite expectation under
  // unbounded exponential service times.
  Exponential e(1.0);
  EXPECT_THROW(e.mean_inverse(), std::domain_error);
}

TEST(Exponential, RateScaling) {
  // Lemma-2 scaling now lives on the sealed sampler as a value transform.
  ExponentialSampler e(3.0);
  const ExponentialSampler s = e.scaled_by_rate(1.5);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

// --------------------------------------------------------- bounded exponential
TEST(BoundedExponential, MomentsMatchQuadrature) {
  BoundedExponential be(1.0, 0.05, 8.0);
  const auto num_mean = integrate(
      [&](double x) { return x * be.pdf(x); }, 0.05, 8.0, 1e-12);
  const auto num_m2 = integrate(
      [&](double x) { return x * x * be.pdf(x); }, 0.05, 8.0, 1e-12);
  EXPECT_NEAR(be.mean(), num_mean, 1e-8);
  EXPECT_NEAR(be.second_moment(), num_m2, 1e-8);
  // pdf integrates to 1
  const auto total = integrate([&](double x) { return be.pdf(x); }, 0.05, 8.0);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(BoundedExponential, FiniteMeanInverseUnlikeUnbounded) {
  BoundedExponential be(1.0, 0.05, 8.0);
  EXPECT_GT(be.mean_inverse(), 0.0);
  EXPECT_LT(be.mean_inverse(), 1.0 / 0.05);
  expect_sample_moments(be);
}

TEST(BoundedExponential, SamplesStayInBounds) {
  BoundedExponential be(2.0, 0.5, 4.0);
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    const double x = be.sample(rng);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 4.0);
  }
}

TEST(BoundedExponential, RateScalingScalesAllMoments) {
  BoundedExponential be(1.0, 0.1, 10.0);
  const BoundedExponentialSampler s =
      BoundedExponentialSampler(1.0, 0.1, 10.0).scaled_by_rate(2.0);
  EXPECT_NEAR(s.mean(), be.mean() / 2.0, 1e-9);
  EXPECT_NEAR(s.second_moment(), be.second_moment() / 4.0, 1e-9);
  EXPECT_NEAR(s.mean_inverse(), 2.0 * be.mean_inverse(), 1e-6);
}

TEST(BoundedExponential, RejectsZeroLowerBound) {
  EXPECT_THROW(BoundedExponential(1.0, 0.0, 5.0), std::invalid_argument);
}

// -------------------------------------------------------------- deterministic
TEST(Deterministic, AllMomentsExact) {
  Deterministic d(2.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.second_moment(), 6.25);
  EXPECT_DOUBLE_EQ(d.mean_inverse(), 0.4);
  EXPECT_DOUBLE_EQ(d.scv(), 0.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(d.sample(rng), 2.5);
}

TEST(Deterministic, RateScaling) {
  DeterministicSampler d(3.0);
  const DeterministicSampler s = d.scaled_by_rate(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.5);
  EXPECT_DOUBLE_EQ(s.mean_inverse(), 2.0);
}

// ------------------------------------------------------------------ lognormal
TEST(Lognormal, ClosedFormMoments) {
  Lognormal ln(0.5, 0.75);
  const double s2 = 0.75 * 0.75;
  EXPECT_NEAR(ln.mean(), std::exp(0.5 + s2 / 2), 1e-12);
  EXPECT_NEAR(ln.second_moment(), std::exp(1.0 + 2 * s2), 1e-12);
  EXPECT_NEAR(ln.mean_inverse(), std::exp(-0.5 + s2 / 2), 1e-12);
  expect_sample_moments(ln, 0.03, 0.03);
}

TEST(Lognormal, FromMeanScvRoundTrip) {
  const auto ln = Lognormal::from_mean_scv(2.0, 4.0);
  EXPECT_NEAR(ln.mean(), 2.0, 1e-9);
  EXPECT_NEAR(ln.scv(), 4.0, 1e-9);
}

TEST(Lognormal, RateScalingShiftsMu) {
  LognormalSampler ln(1.0, 0.5);
  const LognormalSampler s = ln.scaled_by_rate(std::exp(1.0));
  EXPECT_NEAR(s.mean(), ln.mean() / std::exp(1.0), 1e-9);
}

// -------------------------------------------------------------------- uniform
TEST(UniformSize, ClosedFormMoments) {
  UniformSize u(1.0, 3.0);
  EXPECT_DOUBLE_EQ(u.mean(), 2.0);
  EXPECT_NEAR(u.second_moment(), 13.0 / 3.0, 1e-12);
  EXPECT_NEAR(u.mean_inverse(), std::log(3.0) / 2.0, 1e-12);
  expect_sample_moments(u, 0.01, 0.01);
}

TEST(UniformSize, RequiresPositiveLowerBound) {
  EXPECT_THROW(UniformSize(0.0, 1.0), std::invalid_argument);
}

// --------------------------------------------------------------------- pareto
TEST(Pareto, MomentExistenceThresholds) {
  Pareto p12(1.2, 1.0);
  EXPECT_TRUE(std::isfinite(p12.mean()));
  EXPECT_TRUE(std::isinf(p12.second_moment()));  // alpha <= 2
  Pareto p08(0.8, 1.0);
  EXPECT_TRUE(std::isinf(p08.mean()));  // alpha <= 1
  Pareto p30(3.0, 1.0);
  EXPECT_TRUE(std::isfinite(p30.second_moment()));
}

TEST(Pareto, MeanInverseAlwaysFinite) {
  Pareto p(1.5, 2.0);
  EXPECT_NEAR(p.mean_inverse(), 1.5 / (2.5 * 2.0), 1e-12);
}

TEST(Pareto, SamplesAboveLowerBound) {
  Pareto p(1.5, 0.5);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 0.5);
}

// ------------------------------------------------------------------ empirical
TEST(Empirical, MomentsAreSampleMoments) {
  Empirical e({1.0, 2.0, 4.0});
  EXPECT_NEAR(e.mean(), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.second_moment(), 21.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.mean_inverse(), (1.0 + 0.5 + 0.25) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(e.max_value(), 4.0);
}

TEST(Empirical, ResamplesOnlyGivenValues) {
  Empirical e({1.0, 2.0, 4.0});
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = e.sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 4.0);
  }
}

TEST(Empirical, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(Empirical({}), std::invalid_argument);
  EXPECT_THROW(Empirical({1.0, -2.0}), std::invalid_argument);
}

TEST(Empirical, RateScalingDividesSamples) {
  EmpiricalSampler e({2.0, 4.0});
  const EmpiricalSampler s = e.scaled_by_rate(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.min_value(), 1.0);
}

// -------------------------------------------------------------------- factory
TEST(Factory, BuildsEveryKind) {
  EXPECT_EQ(make_distribution(DistSpec::bounded_pareto(1.5, 0.1, 100))->mean(),
            BoundedPareto(1.5, 0.1, 100).mean());
  EXPECT_DOUBLE_EQ(make_distribution(DistSpec::deterministic(2.0))->mean(), 2.0);
  EXPECT_DOUBLE_EQ(make_distribution(DistSpec::exponential(3.0))->mean(), 3.0);
  EXPECT_NEAR(make_distribution(DistSpec::lognormal(2.0, 1.0))->mean(), 2.0,
              1e-9);
  EXPECT_DOUBLE_EQ(make_distribution(DistSpec::uniform(1.0, 3.0))->mean(), 2.0);
  EXPECT_GT(
      make_distribution(DistSpec::bounded_exponential(1.0, 0.1, 5.0))->mean(),
      0.0);
}

TEST(Factory, ScaledSamplerKeepsKind) {
  const SamplerVariant d = make_sampler(DistSpec::bounded_pareto(1.5, 0.1, 100));
  const SamplerVariant s = d.scaled_by_rate(0.5);
  EXPECT_NEAR(s.mean(), d.mean() * 2.0, 1e-9);
  EXPECT_NE(s.get_if<BoundedParetoSampler>(), nullptr);
}

}  // namespace
}  // namespace psd
