// Request-lifecycle tracing + SLO watchdog (src/obs/trace, src/obs/watchdog).
//
// The contracts under test:
//   1. Exactness — the 1-in-N sampler emits exactly floor(counter / period)
//      spans per class per event kind; no off-by-one at either end.
//   2. Determinism — a ManualClock run writes a byte-identical trace file
//      across repeats (the ISSUE's replay-debugging requirement).
//   3. The watchdog fires on a genuine SLO breach (2x overload behind an
//      admit-all gate collapses differentiation), stays quiet when the
//      delta-aware gate holds the ratios, and its flight bundle is a
//      loadable JSON document.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "admission/admission.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "rt/clock.hpp"
#include "rt/runtime.hpp"
#include "rt/shard.hpp"

namespace psd {
namespace {

using rt::ManualClock;
using rt::RtConfig;
using rt::RtReport;
using rt::Runtime;
using rt::Shard;
using rt::ShardConfig;

// ------------------------------------------------- minimal JSON loader
//
// Just enough of a recursive-descent parser to load the trace and flight
// bundles the obs layer writes: objects, arrays, strings (no unicode
// escapes), numbers, true/false/null.  Throws std::runtime_error on any
// syntax violation, which is exactly what the round-trip tests want.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return fields.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.fields[key.str] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
      }
      v.str += s_[pos_++];
    }
    expect('"');
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (s_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// -------------------------------------------------- span-ring primitives

TEST(SpanRing, PushDrainRoundTripsAndCountsDrops) {
  obs::SpanRing ring(4);
  obs::Span s;
  for (int i = 0; i < 6; ++i) {
    s.trace_id = static_cast<std::uint64_t>(i);
    ring.push(s);
  }
  // All 4 slots fill; the 2 overflow pushes drop-newest.
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::Span> out;
  EXPECT_EQ(ring.drain(out), 4u);
  EXPECT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].trace_id, i);  // FIFO order preserved
  }
  EXPECT_EQ(ring.drain(out), 0u);  // drained dry
}

TEST(SloRules, ParseAcceptsTheGrammarAndRejectsTypos) {
  const auto rules =
      obs::parse_slo_rules("ratio_err>0.3, goodput<100; shed_rate>0.5");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].metric, obs::SloMetric::kRatioErr);
  EXPECT_TRUE(rules[0].greater);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 0.3);
  EXPECT_EQ(rules[1].metric, obs::SloMetric::kGoodput);
  EXPECT_FALSE(rules[1].greater);
  EXPECT_EQ(rules[2].metric, obs::SloMetric::kShedRate);

  EXPECT_THROW(obs::parse_slo_rules(""), std::exception);
  EXPECT_THROW(obs::parse_slo_rules("bogus>1"), std::exception);
  EXPECT_THROW(obs::parse_slo_rules("ratio_err=0.3"), std::exception);
  EXPECT_THROW(obs::parse_slo_rules("ratio_err>abc"), std::exception);
}

// ----------------------------------------------- shard-level exactness

Request make_request(ClassId cls, Time arrival, double size) {
  Request r;
  r.cls = cls;
  r.arrival = arrival;
  r.size = size;
  return r;
}

TEST(ShardTracing, SampledSpanCountIsExactlyCounterOverPeriod) {
  ShardConfig cfg;
  cfg.num_classes = 2;
  cfg.capacity = 1.0;
  cfg.window = 1.0;
  cfg.bucket_burst_seconds = 10.0;
  cfg.tracing = true;
  cfg.trace_sample_period = 4;
  Shard shard(cfg, Rng(5));
  ASSERT_TRUE(shard.tracing());
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(shard.submit(make_request(i % 2, i * 0.01, 0.01)));
  }
  shard.drain(1.0);  // pop + schedule
  shard.drain(5.0);  // fire every completion
  shard.finalize(5.0);

  std::vector<obs::Span> spans;
  shard.drain_spans(spans);
  // 12 completions per class at period 4: per-class completion ordinals
  // 4, 8, 12 — exactly 3 spans each, all fully timestamped.
  EXPECT_EQ(spans.size(), 6u);
  EXPECT_EQ(shard.spans_dropped(), 0u);
  std::size_t per_class[2] = {0, 0};
  for (const obs::Span& s : spans) {
    ASSERT_LT(s.cls, 2u);
    ++per_class[s.cls];
    EXPECT_EQ(s.verdict, obs::kSpanAdmitted);
    EXPECT_LE(s.t_ingress, s.t_admit);
    EXPECT_LE(s.t_admit, s.t_pop);
    EXPECT_LE(s.t_pop, s.t_start);
    EXPECT_LE(s.t_start, s.t_complete);
    EXPECT_TRUE(std::isfinite(s.slowdown));
    // trace_id packs (shard, class, shed, ordinal); shard 0, shed 0.
    EXPECT_EQ(s.trace_id >> 56, 0u);
    EXPECT_EQ((s.trace_id >> 48) & 0xff, s.cls);
    EXPECT_EQ((s.trace_id >> 47) & 1u, 0u);
    EXPECT_EQ(s.trace_id & ((1ull << 47) - 1), (per_class[s.cls]) * 4u);
  }
  EXPECT_EQ(per_class[0], 3u);
  EXPECT_EQ(per_class[1], 3u);
}

TEST(ShardTracing, OffShardExposesNoRing) {
  ShardConfig cfg;
  cfg.num_classes = 2;
  Shard shard(cfg, Rng(5));
  EXPECT_FALSE(shard.tracing());
  std::vector<obs::Span> spans;
  EXPECT_EQ(shard.drain_spans(spans), 0u);
  EXPECT_EQ(shard.spans_dropped(), 0u);
}

// --------------------------------------------------- runtime trace file

RtConfig trace_runtime_config() {
  RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.mean_service_seconds = 1e-3;
  cfg.shards = 2;
  cfg.loadgens = 2;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.5;
  cfg.duration = 3.0;
  cfg.seed = 71;
  return cfg;
}

void drive_with_trace(const RtConfig& base, const std::string& path) {
  RtConfig cfg = base;
  cfg.obs.enabled = true;
  cfg.obs.trace_path = path;
  cfg.obs.trace_sample_period = 4;
  cfg.obs.stats_interval = 0.25;
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(20.0, 0.05);
  runtime.finish();
  ASSERT_NE(runtime.exporter(), nullptr);
  EXPECT_GT(runtime.exporter()->trace_events(), 0u);
}

TEST(RuntimeTrace, ManualClockTraceFileIsByteIdentical) {
  const std::string pa = ::testing::TempDir() + "psd_trace_a.json";
  const std::string pb = ::testing::TempDir() + "psd_trace_b.json";
  const RtConfig cfg = trace_runtime_config();
  drive_with_trace(cfg, pa);
  drive_with_trace(cfg, pb);
  const std::string a = slurp(pa);
  const std::string b = slurp(pb);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // replay debugging depends on this
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(RuntimeTrace, TraceFileIsLoadableOrderedAndSchemad) {
  const std::string path = ::testing::TempDir() + "psd_trace_load.json";
  drive_with_trace(trace_runtime_config(), path);

  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(slurp(path)).parse());
  EXPECT_EQ(doc.at("otherData").at("schema").str, "psd.rt.trace.v1");
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);

  std::size_t spans = 0;
  std::size_t reallocs = 0;
  for (const JsonValue& e : events.items) {
    const std::string& ph = e.at("ph").str;
    if (ph == "X") {
      ++spans;
      const JsonValue& args = e.at("args");
      EXPECT_EQ(args.at("verdict").str, "admitted");  // no gate in this run
      EXPECT_LE(args.at("t_ingress").number, args.at("t_admit").number);
      EXPECT_LE(args.at("t_admit").number, args.at("t_pop").number);
      EXPECT_LE(args.at("t_pop").number, args.at("t_start").number);
      EXPECT_LE(args.at("t_start").number, args.at("t_complete").number);
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "i") {
      ++reallocs;
      EXPECT_EQ(e.at("pid").number, 0.0);  // controller track
      EXPECT_TRUE(e.at("args").has("rate"));
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(reallocs, 0u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- watchdog

// 2x-capacity rt run behind an admission gate, with the watchdog armed on
// the persistence rule.  Under admit-all, every queue diverges together,
// the achieved ratio collapses toward 1.0 (error ~0.5 against target 2.0,
// band 0.25), and the settle clock climbs monotonically — it never
// re-enters the band.  Under delta-aware thinning the admitted survivors
// hold the ratio on average; single 0.1s windows are noisy, but the clock
// resets every time a window lands back in band, so it stays well under 3s
// (empirically <= 2.0 over a 10s run at this seed).  Same physics as
// test_overload.cpp, read through the watchdog.  The goodput rule is a
// deliberate non-breach (both gates complete ~800-1000/s): it exercises
// multi-rule evaluation with only one rule firing.
RtConfig overload_watchdog_config(const std::string& admission,
                                  const std::string& flight_prefix) {
  RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 2.0;
  cfg.size_dist = DistSpec::deterministic(1.0);
  cfg.mean_service_seconds = 1e-3;
  cfg.shards = 1;
  cfg.loadgens = 1;
  cfg.controller_period = 0.1;
  cfg.warmup = 1.0;
  cfg.duration = 8.0;
  cfg.seed = 71;
  cfg.admission = AdmissionSpec::parse(admission);
  cfg.obs.enabled = true;
  cfg.obs.slo_rules = "settle>3, goodput<100";
  cfg.obs.flight_prefix = flight_prefix;
  return cfg;
}

RtReport drive_watchdog(const RtConfig& cfg, std::uint64_t* breaches,
                        std::uint64_t* dumps, std::string* flight_path) {
  Runtime runtime(cfg, ManualClock{});
  for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
    runtime.step_to(t);
  }
  runtime.quiesce(30.0, 0.05);
  runtime.finish();
  EXPECT_NE(runtime.watchdog(), nullptr);
  *breaches = runtime.watchdog()->total_breaches();
  *dumps = runtime.watchdog()->dumps();
  *flight_path = runtime.watchdog()->last_flight_path();
  return runtime.report();
}

TEST(Watchdog, FiresOnAdmitAllOverloadAndStaysQuietWhenGated) {
  const std::string prefix = ::testing::TempDir() + "psd_flight";
  std::uint64_t breaches = 0;
  std::uint64_t dumps = 0;
  std::string flight;

  drive_watchdog(overload_watchdog_config("admit-all", prefix), &breaches,
                 &dumps, &flight);
  EXPECT_GT(breaches, 0u)
      << "2x admit-all overload sits out of band for the whole run — the "
         "settle clock must cross 3s";
  ASSERT_GE(dumps, 1u);
  ASSERT_FALSE(flight.empty());

  // The bundle is a loadable, self-describing postmortem document.
  JsonValue doc;
  ASSERT_NO_THROW(doc = JsonParser(slurp(flight)).parse());
  EXPECT_EQ(doc.at("schema").str, "psd.rt.flight.v1");
  const JsonValue& breached = doc.at("breach");
  ASSERT_EQ(breached.kind, JsonValue::kArray);
  ASSERT_EQ(breached.items.size(), 1u);  // goodput<100 must NOT fire
  EXPECT_EQ(breached.items[0].at("rule").str, "settle>3");
  EXPECT_GT(breached.items[0].at("value").number, 3.0);
  EXPECT_DOUBLE_EQ(breached.items[0].at("threshold").number, 3.0);
  const JsonValue& window = doc.at("window");
  EXPECT_GT(window.at("ratio_err").number, 0.25);  // out of the settle band
  const JsonValue& shards = doc.at("shards");
  ASSERT_EQ(shards.kind, JsonValue::kArray);
  ASSERT_EQ(shards.items.size(), 1u);
  EXPECT_GT(shards.items[0].at("sheds").items[0].number +
                shards.items[0].at("sheds").items[1].number +
                shards.items[0].at("accepted").items[0].number,
            0.0);
  // SLO rules imply tracing: the bundle retains sampled spans and the
  // controller's decision trace for the postmortem.
  EXPECT_FALSE(doc.at("spans").items.empty());
  EXPECT_FALSE(doc.at("controller_trace").items.empty());
  std::remove(flight.c_str());

  // Same physics behind the delta-aware gate: ratios hold, no breach, no
  // flight bundle.
  drive_watchdog(overload_watchdog_config("delta-aware:0.8", prefix),
                 &breaches, &dumps, &flight);
  EXPECT_EQ(breaches, 0u) << "delta-aware:0.8 keeps re-entering the band — "
                             "the settle clock must never reach 3s";
  EXPECT_EQ(dumps, 0u);
  EXPECT_TRUE(flight.empty());
}

TEST(Watchdog, FlightDumpIsDeterministicUnderManualClock) {
  const std::string pa = ::testing::TempDir() + "psd_flight_rep_a";
  const std::string pb = ::testing::TempDir() + "psd_flight_rep_b";
  std::uint64_t breaches = 0;
  std::uint64_t dumps = 0;
  std::string fa;
  std::string fb;
  drive_watchdog(overload_watchdog_config("admit-all", pa), &breaches, &dumps,
                 &fa);
  ASSERT_GE(dumps, 1u);
  drive_watchdog(overload_watchdog_config("admit-all", pb), &breaches, &dumps,
                 &fb);
  ASSERT_GE(dumps, 1u);
  // Identical runs breach at the identical model time...
  EXPECT_EQ(fa.substr(pa.size()), fb.substr(pb.size()));
  // ...and dump byte-identical bundles (modulo nothing: same seeds, same
  // clock, same spans).
  EXPECT_EQ(slurp(fa), slurp(fb));
  std::remove(fa.c_str());
  std::remove(fb.c_str());
}

}  // namespace
}  // namespace psd
