// Trace record / replay and CSV round-trip.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "dist/bounded_pareto.hpp"
#include "experiment/runner.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace psd {
namespace {

class CollectingSink final : public RequestSink {
 public:
  void submit(const Request& req) override { requests.push_back(req); }
  std::vector<Request> requests;
};

TEST(RecordingSink, CapturesAndForwards) {
  CollectingSink down;
  RecordingSink rec(&down);
  Request r;
  r.cls = 2;
  r.arrival = 5.0;
  r.size = 1.5;
  rec.submit(r);
  ASSERT_EQ(rec.trace().size(), 1u);
  EXPECT_DOUBLE_EQ(rec.trace()[0].time, 5.0);
  EXPECT_EQ(rec.trace()[0].cls, 2u);
  EXPECT_DOUBLE_EQ(rec.trace()[0].size, 1.5);
  EXPECT_EQ(down.requests.size(), 1u);
}

TEST(RecordingSink, WorksWithoutDownstream) {
  RecordingSink rec;
  Request r;
  r.arrival = 1.0;
  r.size = 1.0;
  rec.submit(r);
  EXPECT_EQ(rec.trace().size(), 1u);
}

TEST(TracePlayer, ReplaysAtShiftedTimes) {
  Trace t = {{10.0, 0, 1.0}, {12.0, 1, 2.0}, {15.0, 0, 3.0}};
  Simulator sim;
  CollectingSink sink;
  TracePlayer player(sim, t, sink);
  player.start(100.0);
  sim.run_until(1000.0);
  ASSERT_EQ(sink.requests.size(), 3u);
  EXPECT_DOUBLE_EQ(sink.requests[0].arrival, 100.0);
  EXPECT_DOUBLE_EQ(sink.requests[1].arrival, 102.0);
  EXPECT_DOUBLE_EQ(sink.requests[2].arrival, 105.0);
  EXPECT_EQ(sink.requests[1].cls, 1u);
  EXPECT_DOUBLE_EQ(sink.requests[2].size, 3.0);
}

TEST(TracePlayer, RejectsUnorderedTrace) {
  Trace t = {{10.0, 0, 1.0}, {5.0, 0, 1.0}};
  Simulator sim;
  CollectingSink sink;
  EXPECT_THROW(TracePlayer(sim, t, sink), std::invalid_argument);
}

TEST(TracePlayer, EmptyTraceIsNoop) {
  Simulator sim;
  CollectingSink sink;
  TracePlayer player(sim, {}, sink);
  player.start(0.0);
  sim.run_until(10.0);
  EXPECT_TRUE(sink.requests.empty());
}

TEST(TraceCsv, RoundTrip) {
  Trace t = {{1.5, 0, 0.25}, {2.75, 3, 17.0}};
  std::stringstream ss;
  write_trace(ss, t);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].time, 1.5);
  EXPECT_EQ(back[1].cls, 3u);
  EXPECT_DOUBLE_EQ(back[1].size, 17.0);
}

TEST(TraceCsv, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n1.0,0,2.0\n# mid\n2.0,1,3.0\n");
  const auto t = read_trace(ss);
  ASSERT_EQ(t.size(), 2u);
}

TEST(TraceCsv, RejectsMalformedLine) {
  std::stringstream ss("1.0;0;2.0\n");
  EXPECT_THROW(read_trace(ss), std::invalid_argument);
}

TEST(TraceCsv, RoundTripIsExactForArbitraryDoubles) {
  // Full-precision round-trip: replayed arrivals must hit the server at
  // bit-identical times, so the text format cannot truncate.
  Trace t = {{0.1 + 0.2, 0, 1.0 / 3.0}, {12345.6789012345678, 1, 9.87e-7}};
  std::stringstream ss;
  write_trace(ss, t);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].time, t[0].time);    // bitwise, not NEAR
  EXPECT_EQ(back[0].size, t[0].size);
  EXPECT_EQ(back[1].time, t[1].time);
  EXPECT_EQ(back[1].size, t[1].size);
}

TEST(TraceScenario, RecordedScenarioReplaysToIdenticalResults) {
  // The runner-level round trip psdsim's --record-trace/--replay-trace use:
  // a replication recorded through the tee, then replayed through the same
  // measurement protocol, must reproduce every statistic exactly (the
  // arrivals — the only stochastic input the dedicated backend consumes —
  // are pinned by the trace).
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.6;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 3000.0;
  cfg.seed = 13;

  Trace trace;
  const RunResult recorded = run_scenario_recorded(cfg, trace);
  ASSERT_GT(trace.size(), 100u);
  ASSERT_EQ(recorded.submitted, trace.size());

  // Round-trip through the text format, as the CLI does.
  std::stringstream ss;
  write_trace(ss, trace);
  const Trace reloaded = read_trace(ss);

  const RunResult replayed = run_scenario_replayed(cfg, reloaded);
  ASSERT_EQ(replayed.cls.size(), recorded.cls.size());
  EXPECT_EQ(replayed.submitted, recorded.submitted);
  for (std::size_t c = 0; c < recorded.cls.size(); ++c) {
    EXPECT_EQ(replayed.cls[c].completed, recorded.cls[c].completed);
    EXPECT_DOUBLE_EQ(replayed.cls[c].mean_slowdown,
                     recorded.cls[c].mean_slowdown);
    EXPECT_DOUBLE_EQ(replayed.cls[c].mean_delay, recorded.cls[c].mean_delay);
  }
  EXPECT_DOUBLE_EQ(replayed.system_slowdown, recorded.system_slowdown);
}

TEST(TraceEndToEnd, RecordedWorkloadReplaysIdentically) {
  // Record a Poisson/BoundedPareto stream, replay it, and compare.
  Simulator sim1;
  RecordingSink rec;
  RequestGenerator gen(sim1, Rng(9), 1, PoissonArrivals(3.0),
                       make_sampler(DistSpec::bounded_pareto(1.5, 0.1, 100.0)),
                       rec);
  gen.start(0.0);
  sim1.run_until(100.0);
  const Trace trace = rec.trace();
  ASSERT_GT(trace.size(), 100u);

  Simulator sim2;
  CollectingSink sink;
  TracePlayer player(sim2, trace, sink);
  player.start(trace.front().time);
  sim2.run_until(1000.0);
  ASSERT_EQ(sink.requests.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(sink.requests[i].arrival, trace[i].time, 1e-12);
    EXPECT_DOUBLE_EQ(sink.requests[i].size, trace[i].size);
    EXPECT_EQ(sink.requests[i].cls, trace[i].cls);
  }
}

}  // namespace
}  // namespace psd
