// Lottery backend: proportional share in expectation, preempt-resume
// bookkeeping, completion integrity.
#include <deque>
#include <gtest/gtest.h>

#include <vector>

#include "sched/lottery.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

struct Harness {
  Simulator sim;
  std::vector<WaitingQueue> queues;
  std::vector<Request> done;
  std::deque<Request> staged;  ///< Stable storage for not-yet-arrived requests.
  LotteryBackend backend;

  Harness(std::size_t classes, Duration quantum)
      : queues(classes), backend(quantum) {
    backend.attach(sim, queues, 1.0, Rng(7),
                   [this](Request&& r) { done.push_back(std::move(r)); });
  }

  void submit(ClassId cls, Time t, Work size) {
    Request r;
    r.cls = cls;
    r.arrival = t;
    r.size = size;
    staged.push_back(r);
    const std::size_t idx = staged.size() - 1;
    sim.at_fast(t, [this, idx, cls] {
      queues[cls].push(staged[idx], sim.now());
      backend.notify_arrival(cls);
    });
  }

  double work_done(ClassId cls) const {
    double w = 0.0;
    for (const auto& r : done) {
      if (r.cls == cls) w += r.size;
    }
    return w;
  }
};

TEST(Lottery, RejectsNonPositiveQuantum) {
  EXPECT_THROW(LotteryBackend(0.0), std::invalid_argument);
}

TEST(Lottery, SingleJobCompletesExactly) {
  Harness h(1, 0.25);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 1.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 1.0);
  EXPECT_NEAR(h.done[0].service_elapsed, 1.0, 1e-9);
}

TEST(Lottery, TicketsGovernLongRunShare) {
  // Two always-backlogged classes with 3:1 tickets -> ~75/25 work split.
  Harness h(2, 0.1);
  h.backend.set_rates({0.75, 0.25});
  for (int i = 0; i < 2000; ++i) {
    h.submit(0, 0.0, 0.5);
    h.submit(1, 0.0, 0.5);
  }
  h.sim.run_until(200.0);
  const double w0 = h.work_done(0);
  const double w1 = h.work_done(1);
  ASSERT_GT(w0 + w1, 150.0);  // processor kept busy
  EXPECT_NEAR(w0 / (w0 + w1), 0.75, 0.05);
}

TEST(Lottery, WorkConservingWhenOneClassIdle) {
  Harness h(2, 0.1);
  h.backend.set_rates({0.01, 0.99});
  h.submit(0, 0.0, 2.0);  // tiny ticket count but alone -> full capacity
  h.sim.run_until(10.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_NEAR(h.done[0].departure, 2.0, 1e-6);
}

TEST(Lottery, PreemptResumeAccumulatesServiceElapsed) {
  Harness h(2, 0.5);
  h.backend.set_rates({0.5, 0.5});
  h.submit(0, 0.0, 2.0);
  h.submit(1, 0.0, 2.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  // Each request's accumulated service equals its size (capacity 1).
  for (const auto& r : h.done) {
    EXPECT_NEAR(r.service_elapsed, r.size, 1e-9);
    EXPECT_GE(r.departure - r.service_start, r.size - 1e-9);
  }
  // Total elapsed = total work (no idle gaps while backlogged).
  EXPECT_NEAR(h.done[1].departure, 4.0, 1e-9);
}

TEST(Lottery, FcfsWithinClass) {
  Harness h(1, 0.25);
  h.backend.set_rates({1.0});
  for (int i = 0; i < 5; ++i) h.submit(0, 0.01 * i, 0.5);
  h.sim.run_until(10.0);
  ASSERT_EQ(h.done.size(), 5u);
  for (std::size_t i = 1; i < h.done.size(); ++i) {
    EXPECT_LE(h.done[i - 1].arrival, h.done[i].arrival);
  }
}

TEST(Lottery, ZeroTicketClassStillScheduledWhenAlone) {
  Harness h(2, 0.1);
  h.backend.set_rates({0.0, 1.0});
  h.submit(0, 0.0, 1.0);
  h.sim.run_until(50.0);
  ASSERT_EQ(h.done.size(), 1u);  // epsilon tickets prevent total starvation
}

}  // namespace
}  // namespace psd
