// OnlineMoments / WeightedMean: correctness against direct computation,
// merge semantics, numerical stability.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/online.hpp"

namespace psd {
namespace {

TEST(OnlineMoments, EmptyStateIsNeutral) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_TRUE(std::isnan(m.mean()));
  EXPECT_TRUE(std::isnan(m.variance()));
  EXPECT_TRUE(std::isinf(m.min()));
  EXPECT_TRUE(std::isinf(m.max()));
}

TEST(OnlineMoments, SingleValue) {
  OnlineMoments m;
  m.add(3.5);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 3.5);
  EXPECT_TRUE(std::isnan(m.variance()));  // undefined for n < 2
  EXPECT_DOUBLE_EQ(m.min(), 3.5);
  EXPECT_DOUBLE_EQ(m.max(), 3.5);
}

TEST(OnlineMoments, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineMoments m;
  for (double x : xs) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance_population(), 4.0);
  EXPECT_NEAR(m.variance(), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(OnlineMoments, MergeEqualsSequential) {
  Rng rng(21);
  OnlineMoments whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineMoments, MergeWithEmptyIsIdentity) {
  OnlineMoments a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  OnlineMoments b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(OnlineMoments, StableUnderLargeOffset) {
  // Classic catastrophic-cancellation scenario for naive sum-of-squares.
  OnlineMoments m;
  for (int i = 0; i < 1000; ++i) m.add(1e9 + (i % 2));
  EXPECT_NEAR(m.variance_population(), 0.25, 1e-6);
}

TEST(OnlineMoments, ResetRestoresEmpty) {
  OnlineMoments m;
  m.add(1.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_TRUE(std::isnan(m.mean()));
}

TEST(WeightedMean, BasicWeighting) {
  WeightedMean wm;
  wm.add(10.0, 1.0);
  wm.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(wm.mean(), 17.5);
  EXPECT_DOUBLE_EQ(wm.weight(), 4.0);
}

TEST(WeightedMean, ZeroWeightIgnored) {
  WeightedMean wm;
  wm.add(10.0, 1.0);
  wm.add(1e9, 0.0);
  EXPECT_DOUBLE_EQ(wm.mean(), 10.0);
}

TEST(WeightedMean, EmptyIsNaN) {
  WeightedMean wm;
  EXPECT_TRUE(std::isnan(wm.mean()));
}

TEST(WeightedMean, MergeMatchesCombined) {
  WeightedMean a, b, whole;
  a.add(1.0, 2.0);
  a.add(3.0, 1.0);
  b.add(10.0, 5.0);
  whole.add(1.0, 2.0);
  whole.add(3.0, 1.0);
  whole.add(10.0, 5.0);
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_DOUBLE_EQ(a.weight(), whole.weight());
}

}  // namespace
}  // namespace psd
