// RNG substrate: determinism, stream independence, distributional sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "stats/online.hpp"

namespace psd {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGeneratorBounds) {
  EXPECT_EQ(Xoshiro256ss::min(), 0u);
  EXPECT_EQ(Xoshiro256ss::max(), ~std::uint64_t{0});
}

TEST(Xoshiro, ReproducibleFromSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(11);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.uniform01());
  EXPECT_NEAR(m.mean(), 0.5, 0.005);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(5);
  OnlineMoments m;
  for (int i = 0; i < 200000; ++i) m.add(rng.exponential(4.0));
  EXPECT_NEAR(m.mean(), 0.25, 0.005);
  // Exponential: stddev == mean.
  EXPECT_NEAR(m.stddev(), 0.25, 0.01);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(5);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BelowIsBoundedAndCoversSupport) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(10);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(100);
  Rng a = parent.fork(3);
  Rng b = parent.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(100);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.bits() == b.bits());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIndependentOfConsumption) {
  // fork() derives from the seed, not the engine state, so child streams do
  // not depend on how much the parent has been used.
  Rng p1(55), p2(55);
  for (int i = 0; i < 10; ++i) p2.bits();
  Rng a = p1.fork(2);
  Rng b = p2.fork(2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, ManyForksPairwiseDistinctFirstDraw) {
  Rng parent(77);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) firsts.insert(parent.fork(i).bits());
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Rng, Uniform01OpenLowNeverZero) {
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_GT(rng.uniform01_open_low(), 0.0);
    EXPECT_LE(rng.uniform01_open_low(), 1.0);
  }
}

}  // namespace
}  // namespace psd
