// The umbrella header must compile standalone and expose the public API.
#include "psd.hpp"

#include <gtest/gtest.h>

namespace psd {
namespace {

TEST(Umbrella, PublicTypesAreVisible) {
  BoundedPareto bp(1.5, 0.1, 100.0);
  EXPECT_GT(bp.mean(), 0.0);

  Mg1 mg1(0.5 / bp.mean(), bp);
  EXPECT_TRUE(mg1.stable());

  ScenarioConfig cfg;
  cfg.validate();

  Simulator sim;
  EXPECT_TRUE(sim.idle());

  PsdInput in;
  in.lambda = {0.5};
  in.delta = {1.0};
  in.mean_size = bp.mean();
  EXPECT_NEAR(allocate_psd_rates(in).rate[0], 1.0, 1e-12);
}

TEST(Umbrella, EndToEndOneLiner) {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.4;
  cfg.warmup_tu = 200.0;
  cfg.measure_tu = 1500.0;
  const auto r = run_replications(cfg, 2);
  EXPECT_GT(r.completed_total, 0u);
}

}  // namespace
}  // namespace psd
