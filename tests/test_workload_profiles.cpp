// Nonstationary workload subsystem: MMPP/ON-OFF arrival moments, load
// profiles and the thinning that applies them, the settle-time metric, and
// the determinism/equivalence guarantees the profiled paths inherit from
// the stationary stack (fixed seeds, any thread count, sim vs rt).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "experiment/runner.hpp"
#include "rt/runtime.hpp"
#include "stats/convergence.hpp"
#include "workload/arrival.hpp"
#include "workload/load_profile.hpp"

namespace psd {
namespace {

// ---------------------------------------------------------------- profiles

TEST(LoadProfile, FactorShapes) {
  const LoadProfile none;
  EXPECT_FALSE(none.active());
  EXPECT_DOUBLE_EQ(none.factor(17.0), 1.0);
  EXPECT_DOUBLE_EQ(none.peak_factor(), 1.0);
  EXPECT_TRUE(std::isnan(none.step_time()));

  const LoadProfile ramp = LoadProfile::ramp(100.0, 200.0, 0.5, 1.5);
  EXPECT_DOUBLE_EQ(ramp.factor(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ramp.factor(150.0), 1.0);
  EXPECT_DOUBLE_EQ(ramp.factor(1000.0), 1.5);
  EXPECT_DOUBLE_EQ(ramp.peak_factor(), 1.5);
  EXPECT_DOUBLE_EQ(ramp.step_time(), 200.0);

  const LoadProfile sin = LoadProfile::sinusoid(400.0, 0.5);
  EXPECT_DOUBLE_EQ(sin.factor(0.0), 1.0);
  EXPECT_NEAR(sin.factor(100.0), 1.5, 1e-12);  // quarter period: peak
  EXPECT_NEAR(sin.factor(300.0), 0.5, 1e-12);  // three quarters: trough
  EXPECT_DOUBLE_EQ(sin.peak_factor(), 1.5);
  EXPECT_TRUE(std::isnan(sin.step_time()));

  const LoadProfile spike = LoadProfile::spike(50.0, 10.0, 3.0);
  EXPECT_DOUBLE_EQ(spike.factor(49.9), 1.0);
  EXPECT_DOUBLE_EQ(spike.factor(50.0), 3.0);
  EXPECT_DOUBLE_EQ(spike.factor(59.9), 3.0);
  EXPECT_DOUBLE_EQ(spike.factor(60.0), 1.0);
  EXPECT_DOUBLE_EQ(spike.peak_factor(), 3.0);
  EXPECT_DOUBLE_EQ(spike.step_time(), 60.0);

  // Time scaling stretches times, not factors.
  const LoadProfile scaled = spike.scaled_time(2.0);
  EXPECT_DOUBLE_EQ(scaled.factor(99.0), 1.0);
  EXPECT_DOUBLE_EQ(scaled.factor(101.0), 3.0);
  EXPECT_DOUBLE_EQ(scaled.step_time(), 120.0);
}

TEST(LoadProfile, ParseRoundTripsAndRejectsJunk) {
  for (const char* spec :
       {"none", "ramp:100,200,0.5,1.5", "sin:400,0.5", "spike:50,10,3"}) {
    const LoadProfile p = LoadProfile::parse(spec);
    EXPECT_EQ(LoadProfile::parse(p.name()), p) << spec;
  }
  EXPECT_THROW(LoadProfile::parse("sine:400,0.5"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("spike:50,10"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("spike:50,10,3,4"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("spike:a,b,c"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("ramp:200,100,1,1"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("sin:400,1.5"), std::invalid_argument);
  EXPECT_THROW(LoadProfile::parse("spike:0,10,0"), std::invalid_argument);
}

// ------------------------------------------------------------------- MMPP

/// Mean empirical rate over `n` draws.
double empirical_rate(ArrivalVariant a, std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed);
  double t = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) t += a.next_interarrival(rng);
  return static_cast<double>(n) / t;
}

/// Index of dispersion of counts in fixed bins (1 for Poisson, > 1 bursty).
double dispersion(ArrivalVariant a, double bin, std::size_t bins,
                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> counts(bins, 0.0);
  double t = 0.0;
  for (;;) {
    t += a.next_interarrival(rng);
    const auto b = static_cast<std::size_t>(t / bin);
    if (b >= bins) break;
    counts[b] += 1.0;
  }
  double mean = 0.0;
  for (double c : counts) mean += c;
  mean /= static_cast<double>(bins);
  double var = 0.0;
  for (double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(bins - 1);
  return var / mean;
}

TEST(Mmpp, MomentsMatchSpec) {
  // Asymmetric ON-OFF-ish shape: duty 0.2, burst 4 -> high phase at 4x the
  // mean rate for 20% of the time.
  const double rate = 2.0;
  ArrivalVariant a = make_bursty_arrivals(rate, 4.0, 10.0, 0.2);
  EXPECT_NEAR(a.mean_rate(), rate, 1e-9);
  EXPECT_NEAR(empirical_rate(a, 400000, 7), rate, 0.05 * rate);

  // Burstiness: MMPP counts must be overdispersed, Poisson's must not be.
  const double disp_mmpp = dispersion(make_bursty_arrivals(rate, 4.0, 10.0,
                                                           0.2),
                                      20.0 / rate, 2000, 11);
  const double disp_poisson =
      dispersion(PoissonArrivals(rate), 20.0 / rate, 2000, 11);
  EXPECT_GT(disp_mmpp, 2.0);
  EXPECT_LT(disp_poisson, 1.3);

  // Legacy two-parameter form is the duty 0.5 / sojourn 10 special case,
  // draw for draw.
  Rng r1(42), r2(42);
  ArrivalVariant legacy = make_bursty_arrivals(rate, 3.0);
  ArrivalVariant general = make_bursty_arrivals(rate, 3.0, 10.0, 0.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(legacy.next_interarrival(r1),
                     general.next_interarrival(r2));
  }
}

// --------------------------------------------------------------- thinning

TEST(Thinning, EmpiricalRateTracksTheProfile) {
  // Sinusoid: the first half period is the crest, the second the trough;
  // average factor over each half is 1 +- 2*amp/pi.
  const double rate = 5.0, period = 400.0, amp = 0.6;
  ArrivalVariant a =
      make_arrivals(ArrivalKind::kPoisson, rate, 1.0, 10.0, 0.5,
                    LoadProfile::sinusoid(period, amp));
  Rng rng(123);
  double t = 0.0;
  double crest = 0.0, trough = 0.0, horizon = 600 * period;
  while (t < horizon) {
    t += a.next_interarrival(rng);
    if (t >= horizon) break;
    const double phase = std::fmod(t, period);
    (phase < period / 2 ? crest : trough) += 1.0;
  }
  const double half_span = 600.0 * period / 2.0;
  const double boost = 2.0 * amp / 3.14159265358979323846;
  EXPECT_NEAR(crest / half_span, rate * (1.0 + boost),
              0.03 * rate * (1.0 + boost));
  EXPECT_NEAR(trough / half_span, rate * (1.0 - boost),
              0.05 * rate * (1.0 - boost));

  // Flash crowd: the in-spike empirical rate is mag x base, outside 1 x.
  ArrivalVariant s =
      make_arrivals(ArrivalKind::kPoisson, rate, 1.0, 10.0, 0.5,
                    LoadProfile::spike(1000.0, 500.0, 3.0));
  Rng rng2(77);
  t = 0.0;
  double inside = 0.0, outside = 0.0;
  while (t < 10000.0) {
    t += s.next_interarrival(rng2);
    if (t >= 10000.0) break;
    (t >= 1000.0 && t < 1500.0 ? inside : outside) += 1.0;
  }
  EXPECT_NEAR(inside / 500.0, 3.0 * rate, 0.10 * 3.0 * rate);
  EXPECT_NEAR(outside / 9500.0, rate, 0.05 * rate);
}

TEST(Thinning, ProfiledStreamsAreSeedDeterministic) {
  const LoadProfile ramp = LoadProfile::ramp(10.0, 50.0, 1.0, 2.0);
  ArrivalVariant a =
      make_arrivals(ArrivalKind::kBursty, 3.0, 4.0, 10.0, 0.3, ramp);
  ArrivalVariant b =
      make_arrivals(ArrivalKind::kBursty, 3.0, 4.0, 10.0, 0.3, ramp);
  Rng r1(99), r2(99);
  double buf_a[64], buf_b[64];
  a.fill_interarrivals(r1, buf_a, 64);   // generator batch path
  for (int i = 0; i < 64; ++i) buf_b[i] = b.next_interarrival(r2);
  for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(buf_a[i], buf_b[i]);
}

// ------------------------------------------------------------ settle time

std::vector<IntervalStat> make_series(
    const std::vector<double>& means, double window,
    std::uint64_t count = 100) {
  std::vector<IntervalStat> out(means.size());
  for (std::size_t i = 0; i < means.size(); ++i) {
    out[i].start = static_cast<double>(i) * window;
    out[i].mean = means[i];
    out[i].count = means[i] > 0.0 ? count : 0;
    out[i].max = means[i];
  }
  return out;
}

TEST(Convergence, SettleTimeFromWindowSeries) {
  const double win = 10.0;
  const auto w0 =
      make_series({1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, win);

  // In band from the onset: settles immediately.
  EXPECT_DOUBLE_EQ(
      ratio_settle_time(
          w0, make_series({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, win), 2.0,
          0.25, 20.0, win),
      0.0);

  // Disturbed from t=20 to t=50, in band afterwards: the EWMA (decay 0.7)
  // needs 5 clean windows to flush the 3x excursion, so the last
  // out-of-band evaluation is the window ending at t=90 -> settle 70.
  const double settled = ratio_settle_time(
      w0, make_series({2, 2, 6, 6, 6, 2, 2, 2, 2, 2, 2, 2}, win), 2.0, 0.25,
      20.0, win);
  EXPECT_DOUBLE_EQ(settled, 70.0);

  // Out of band at the end: never settled.
  EXPECT_TRUE(std::isnan(ratio_settle_time(
      w0, make_series({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 6, 6}, win), 2.0, 0.25,
      20.0, win)));

  // No valid windows after the onset.
  EXPECT_TRUE(std::isnan(ratio_settle_time(
      w0, make_series({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}, win), 2.0, 0.25,
      1000.0, win)));
}

// ------------------------------------------- end-to-end scenario plumbing

ScenarioConfig spike_scenario() {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.warmup_tu = 1000.0;
  cfg.measure_tu = 12000.0;
  cfg.allocator = AllocatorKind::kAdaptivePsd;
  cfg.profile = LoadProfile::spike(3000.0, 800.0, 1.6);
  cfg.seed = 2026;
  return cfg;
}

TEST(ProfiledScenario, ParallelEqualsSerialAtAnyThreadCount) {
  const ScenarioConfig cfg = spike_scenario();
  const ReplicatedResult serial = run_replications(cfg, 4, /*parallel=*/false);
  const ReplicatedResult parallel = run_replications(cfg, 4, /*parallel=*/true);
  ASSERT_EQ(serial.slowdown.size(), parallel.slowdown.size());
  for (std::size_t i = 0; i < serial.slowdown.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.slowdown[i].mean, parallel.slowdown[i].mean);
  }
  ASSERT_EQ(serial.settle_mean_tu.size(), parallel.settle_mean_tu.size());
  for (std::size_t j = 0; j < serial.settle_mean_tu.size(); ++j) {
    EXPECT_DOUBLE_EQ(serial.settle_rate[j], parallel.settle_rate[j]);
    if (std::isfinite(serial.settle_mean_tu[j])) {
      EXPECT_DOUBLE_EQ(serial.settle_mean_tu[j], parallel.settle_mean_tu[j]);
    } else {
      EXPECT_TRUE(std::isnan(parallel.settle_mean_tu[j]));
    }
    if (std::isfinite(serial.settle_p75_tu[j])) {
      EXPECT_DOUBLE_EQ(serial.settle_p75_tu[j], parallel.settle_p75_tu[j]);
    } else {
      EXPECT_TRUE(std::isnan(parallel.settle_p75_tu[j]));
    }
  }
  EXPECT_EQ(serial.completed_total, parallel.completed_total);
}

TEST(ProfiledScenario, SettleMetricPopulatedForSpike) {
  const RunResult r = run_scenario(spike_scenario(), 0);
  ASSERT_EQ(r.settle_tu.size(), 1u);
  // Either it settled (finite, inside the run) or provably never did (NaN);
  // with this gentle spike and the adaptive allocator it should settle.
  EXPECT_TRUE(std::isfinite(r.settle_tu[0]));
  EXPECT_LT(r.settle_tu[0], 9000.0);
}

TEST(ProfiledScenario, SinProfileHasNoSettlePoint) {
  ScenarioConfig cfg = spike_scenario();
  cfg.profile = LoadProfile::sinusoid(2000.0, 0.4);
  cfg.measure_tu = 4000.0;
  const RunResult r = run_scenario(cfg, 0);
  EXPECT_TRUE(r.settle_tu.empty());  // periodic: nothing to settle after
  EXPECT_GT(r.cls[0].completed, 100u);
}

// ------------------------------------------------------------------- rt

TEST(ProfiledRt, ManualDriveIsBitwiseDeterministic) {
  rt::RtConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.size_dist = DistSpec::uniform(0.5, 1.5);
  cfg.mean_service_seconds = 1e-3;
  cfg.shards = 2;
  cfg.loadgens = 2;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.5;
  cfg.duration = 3.0;
  cfg.seed = 71;
  cfg.profile = LoadProfile::spike(1.0, 0.5, 2.0);
  cfg.arrivals = {ArrivalKind::kBursty, 3.0, 10.0, 0.5};

  auto drive = [&cfg] {
    rt::Runtime runtime(cfg, rt::ManualClock{});
    for (Time t = 0.02; t <= cfg.duration + 1e-9; t += 0.02) {
      runtime.step_to(t);
    }
    runtime.quiesce(20.0, 0.05);
    runtime.finish();
    return runtime.report();
  };
  const rt::RtReport a = drive();
  const rt::RtReport b = drive();
  ASSERT_EQ(a.cls.size(), b.cls.size());
  EXPECT_EQ(a.produced, b.produced);
  EXPECT_GT(a.produced, 500u);
  EXPECT_EQ(a.completed_all, b.completed_all);
  for (std::size_t c = 0; c < a.cls.size(); ++c) {
    EXPECT_EQ(a.cls[c].completed, b.cls[c].completed);
    EXPECT_DOUBLE_EQ(a.cls[c].mean_slowdown, b.cls[c].mean_slowdown);
    if (c > 0) {
      // Settle metric is deterministic too (NaN == NaN counts as equal).
      if (std::isfinite(a.cls[c].settle_seconds)) {
        EXPECT_DOUBLE_EQ(a.cls[c].settle_seconds, b.cls[c].settle_seconds);
      } else {
        EXPECT_TRUE(std::isnan(b.cls[c].settle_seconds));
      }
    }
  }
}

TEST(ProfiledRt, SimTraceReplaysThroughRtUnderRamp) {
  // One recorded profiled arrival set drives both stacks: record a ramped
  // scenario in the simulator, replay the trace through the rt runtime on a
  // ManualClock, and the rt side must consume every recorded arrival and
  // complete the same per-class workload.
  ScenarioConfig sim_cfg = spike_scenario();
  sim_cfg.profile = LoadProfile::ramp(1000.0, 4000.0, 0.7, 1.3);
  sim_cfg.warmup_tu = 0.0;
  sim_cfg.measure_tu = 5000.0;
  Trace trace;
  const RunResult sim_r = run_scenario_recorded(sim_cfg, trace);
  ASSERT_GT(trace.size(), 1000u);
  EXPECT_EQ(sim_r.submitted, trace.size());

  rt::RtConfig cfg;
  cfg.delta = sim_cfg.delta;
  cfg.load = sim_cfg.load;
  cfg.size_dist = sim_cfg.size_dist;
  cfg.mean_service_seconds = 1e-3;
  cfg.controller_period = 0.1;
  cfg.warmup = 0.0;
  // Replay at native speed: mean service seconds per unit of E[X].
  const double scale = 1e-3 / 1.0;  // E[X] of uniform(0.5,1.5) is 1
  const double span = (trace.back().time - trace.front().time) * scale;
  cfg.duration = span + 0.5;

  rt::Runtime runtime(cfg, rt::ManualClock{}, trace, scale);
  for (Time t = 0.0; t <= cfg.duration + 1e-9; t += 0.05) {
    runtime.step_to(t);
  }
  runtime.quiesce(30.0, 0.05);
  runtime.finish();
  const rt::RtReport r = runtime.report();
  EXPECT_EQ(r.produced, trace.size());
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.completed_all, trace.size());
  // Same per-class split as the simulator saw.
  std::vector<std::uint64_t> per_class(cfg.delta.size(), 0);
  for (const auto& e : trace) per_class[e.cls]++;
  for (std::size_t c = 0; c < cfg.delta.size(); ++c) {
    EXPECT_EQ(r.cls[c].completed, per_class[c]);
  }
}

}  // namespace
}  // namespace psd
