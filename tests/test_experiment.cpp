// Experiment harness: determinism, parallel == serial aggregation, scenario
// validation, figure configs, table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "experiment/figures.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"

namespace psd {
namespace {

ScenarioConfig tiny_cfg() {
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.5;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 3000.0;
  cfg.seed = 99;
  return cfg;
}

TEST(Runner, SameSeedSameRunIndexIsBitIdentical) {
  const auto a = run_scenario(tiny_cfg(), 3);
  const auto b = run_scenario(tiny_cfg(), 3);
  ASSERT_EQ(a.cls.size(), b.cls.size());
  EXPECT_EQ(a.submitted, b.submitted);
  for (std::size_t i = 0; i < a.cls.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cls[i].mean_slowdown, b.cls[i].mean_slowdown);
    EXPECT_EQ(a.cls[i].completed, b.cls[i].completed);
  }
}

TEST(Runner, DifferentRunIndicesDiffer) {
  const auto a = run_scenario(tiny_cfg(), 0);
  const auto b = run_scenario(tiny_cfg(), 1);
  EXPECT_NE(a.submitted, b.submitted);
}

// EXPECT_DOUBLE_EQ on every field, with NaN == NaN (both paths must produce
// NaN in the same places for bit-identity to hold).
void expect_bit_identical(const ReplicatedResult& p,
                          const ReplicatedResult& s) {
  auto same = [](double a, double b) {
    if (std::isnan(a) || std::isnan(b)) {
      EXPECT_TRUE(std::isnan(a) && std::isnan(b));
    } else {
      EXPECT_DOUBLE_EQ(a, b);
    }
  };
  EXPECT_EQ(p.runs, s.runs);
  ASSERT_EQ(p.slowdown.size(), s.slowdown.size());
  for (std::size_t i = 0; i < p.slowdown.size(); ++i) {
    same(p.slowdown[i].mean, s.slowdown[i].mean);
    same(p.slowdown[i].half_width, s.slowdown[i].half_width);
    EXPECT_EQ(p.slowdown[i].n, s.slowdown[i].n);
  }
  ASSERT_EQ(p.expected.size(), s.expected.size());
  for (std::size_t i = 0; i < p.expected.size(); ++i) {
    same(p.expected[i], s.expected[i]);
  }
  same(p.system_slowdown, s.system_slowdown);
  same(p.expected_system, s.expected_system);
  ASSERT_EQ(p.mean_ratio.size(), s.mean_ratio.size());
  for (std::size_t i = 0; i < p.mean_ratio.size(); ++i) {
    same(p.mean_ratio[i], s.mean_ratio[i]);
  }
  ASSERT_EQ(p.ratio.size(), s.ratio.size());
  for (std::size_t i = 0; i < p.ratio.size(); ++i) {
    same(p.ratio[i].p5, s.ratio[i].p5);
    same(p.ratio[i].p50, s.ratio[i].p50);
    same(p.ratio[i].p95, s.ratio[i].p95);
    same(p.ratio[i].mean, s.ratio[i].mean);
    EXPECT_EQ(p.ratio[i].windows, s.ratio[i].windows);
  }
  EXPECT_EQ(p.completed_total, s.completed_total);
}

// The sweep engine's ordering-independence rests on this: for a fixed seed,
// thread-parallel and serial replication sets aggregate to bit-identical
// ReplicatedResults, every field.
TEST(Runner, ParallelAndSerialReplicationsBitIdentical) {
  const auto p = run_replications(tiny_cfg(), 6, /*parallel=*/true);
  const auto s = run_replications(tiny_cfg(), 6, /*parallel=*/false);
  expect_bit_identical(p, s);

  // Same guarantee on a config whose eq.-18 closed form does NOT apply
  // (NaN expected values must agree too).
  auto cfg = tiny_cfg();
  cfg.allocator = AllocatorKind::kEqualShare;
  expect_bit_identical(run_replications(cfg, 5, true),
                       run_replications(cfg, 5, false));
}

TEST(Runner, AggregateReplicationsMatchesRunReplications) {
  // The exposed aggregation hook (used by the sweep campaign engine) must
  // reproduce run_replications exactly when fed the same per-run results.
  const auto cfg = tiny_cfg();
  std::vector<RunResult> results;
  for (std::size_t r = 0; r < 4; ++r) results.push_back(run_scenario(cfg, r));
  const auto a = aggregate_replications(cfg, results);
  const auto b = run_replications(cfg, 4, /*parallel=*/false);
  expect_bit_identical(a, b);
  EXPECT_THROW(aggregate_replications(cfg, {}), std::invalid_argument);
}

TEST(Runner, ExpectedValuesMatchClosedForm) {
  const auto r = run_replications(tiny_cfg(), 2);
  ASSERT_EQ(r.expected.size(), 2u);
  EXPECT_TRUE(std::isfinite(r.expected[0]));
  EXPECT_NEAR(r.expected[1] / r.expected[0], 2.0, 1e-9);
  EXPECT_TRUE(std::isfinite(r.expected_system));
}

TEST(Runner, WindowCountsMatchProtocol) {
  // 3000 tu of measurement in 1000-tu windows -> ~3 windows per class.
  const auto r = run_scenario(tiny_cfg(), 0);
  EXPECT_GE(r.cls[0].windows.size(), 2u);
  EXPECT_LE(r.cls[0].windows.size(), 4u);
}

TEST(Runner, RatioPercentilesOrdered) {
  const auto r = run_replications(tiny_cfg(), 6);
  ASSERT_EQ(r.ratio.size(), 1u);
  EXPECT_LE(r.ratio[0].p5, r.ratio[0].p50);
  EXPECT_LE(r.ratio[0].p50, r.ratio[0].p95);
  EXPECT_GT(r.ratio[0].windows, 0u);
}

TEST(Runner, ZeroRunsRejected) {
  EXPECT_THROW(run_replications(tiny_cfg(), 0), std::invalid_argument);
}

TEST(Scenario, ValidationCatchesBadConfigs) {
  auto cfg = tiny_cfg();
  cfg.load = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_cfg();
  cfg.delta = {2.0, 1.0};  // must be non-decreasing
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_cfg();
  cfg.delta.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = tiny_cfg();
  cfg.load_share = {0.5, 0.3, 0.2};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Scenario, TimeUnitIsMeanOverCapacity) {
  auto cfg = tiny_cfg();
  cfg.size_dist = DistSpec::deterministic(2.0);
  cfg.capacity = 4.0;
  EXPECT_DOUBLE_EQ(cfg.time_unit(), 0.5);
}

TEST(Scenario, TrueLambdasHitTargetUtilization) {
  auto cfg = tiny_cfg();
  cfg.load = 0.7;
  const auto lam = cfg.true_lambdas();
  const auto dist = make_distribution(cfg.size_dist);
  double rho = 0.0;
  for (double l : lam) rho += l * dist->mean();
  EXPECT_NEAR(rho, 0.7, 1e-9);
}

TEST(Figures, CannedConfigsValid) {
  for (double load : standard_load_sweep()) {
    two_class_scenario(2.0, load).validate();
    three_class_scenario(load).validate();
  }
  individual_request_scenario(50.0).validate();
  EXPECT_THROW(two_class_scenario(0.5, 50.0), std::invalid_argument);
  EXPECT_THROW(two_class_scenario(2.0, 100.0), std::invalid_argument);
}

TEST(Figures, SweepsCoverPaperRanges) {
  const auto alphas = shape_parameter_sweep();
  EXPECT_DOUBLE_EQ(alphas.front(), 1.0);
  EXPECT_DOUBLE_EQ(alphas.back(), 2.0);
  const auto bounds = upper_bound_sweep();
  EXPECT_DOUBLE_EQ(bounds.front(), 100.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 10000.0);
}

TEST(Table, AlignsAndFormats) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row(std::vector<double>{1.5, kNaN, 2.0}, 2);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("-"), std::string::npos);  // NaN cell
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row(std::vector<std::string>{"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({std::string("1")}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(DefaultRuns, EnvOverrides) {
  // Without env vars this returns the paper default passed in.
  unsetenv("PSD_RUNS");
  unsetenv("PSD_FAST");
  EXPECT_EQ(default_runs(40), 40u);
  setenv("PSD_FAST", "1", 1);
  EXPECT_EQ(default_runs(40), 8u);
  setenv("PSD_RUNS", "17", 1);
  EXPECT_EQ(default_runs(40), 17u);  // PSD_RUNS wins
  unsetenv("PSD_RUNS");
  unsetenv("PSD_FAST");
}

}  // namespace
}  // namespace psd
