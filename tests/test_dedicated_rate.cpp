// Dedicated-rate backend (the paper's task-server model): FCFS service at
// the allocated rate, correct work conservation across rate changes.
#include <deque>
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/dedicated_rate.hpp"
#include "sim/simulator.hpp"

namespace psd {
namespace {

struct Harness {
  Simulator sim;
  std::vector<WaitingQueue> queues;
  std::vector<Request> done;
  std::deque<Request> staged;  ///< Stable storage for not-yet-arrived requests.
  DedicatedRateBackend backend;

  explicit Harness(std::size_t classes,
                   RateChangePolicy policy = RateChangePolicy::kRescaleRemaining)
      : queues(classes), backend(policy) {
    backend.attach(sim, queues, 1.0, Rng(1),
                   [this](Request&& r) { done.push_back(std::move(r)); });
  }

  void submit(ClassId cls, Time t, Work size) {
    Request r;
    r.id = done.size() + queues[cls].total_arrivals();
    r.cls = cls;
    r.arrival = t;
    r.size = size;
    staged.push_back(r);
    const std::size_t idx = staged.size() - 1;
    sim.at_fast(t, [this, idx, cls] {
      queues[cls].push(staged[idx], sim.now());
      backend.notify_arrival(cls);
    });
  }
};

TEST(DedicatedRate, ServiceTimeIsSizeOverRate) {
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  h.submit(0, 0.0, 1.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_DOUBLE_EQ(h.done[0].service_start, 0.0);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 2.0);  // 1.0 work at rate 0.5
  EXPECT_DOUBLE_EQ(h.done[0].service_elapsed, 2.0);
}

TEST(DedicatedRate, FcfsWithinClass) {
  Harness h(1);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 2.0);
  h.submit(0, 0.1, 1.0);
  h.submit(0, 0.2, 1.0);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 3u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 2.0);
  EXPECT_DOUBLE_EQ(h.done[1].departure, 3.0);
  EXPECT_DOUBLE_EQ(h.done[1].delay(), 2.0 - 0.1);
  EXPECT_DOUBLE_EQ(h.done[2].departure, 4.0);
}

TEST(DedicatedRate, ClassesAreIsolated) {
  // Strict partition: a backlog in class 0 must not delay class 1.
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  h.submit(0, 0.0, 10.0);  // long job hogs class 0 only
  h.submit(1, 0.0, 0.5);
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  EXPECT_EQ(h.done[0].cls, 1u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 1.0);  // 0.5 work at 0.5
}

TEST(DedicatedRate, RescaleRemainingConservesWork) {
  // 4.0 work: 2s at rate 1.0 (2.0 done) then rate drops to 0.25 ->
  // remaining 2.0 takes 8s more; total departure at 10.
  Harness h(1);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 4.0);
  h.sim.at_fast(2.0, [&] { h.backend.set_rates({0.25}); });
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 10.0);
  EXPECT_DOUBLE_EQ(h.done[0].service_elapsed, 10.0);
}

TEST(DedicatedRate, RateIncreaseSpeedsUpInFlight) {
  Harness h(1);
  h.backend.set_rates({0.25});
  h.submit(0, 0.0, 4.0);  // would finish at 16
  h.sim.at_fast(8.0, [&] { h.backend.set_rates({1.0}); });  // 2.0 left -> 2s
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 1u);
  EXPECT_DOUBLE_EQ(h.done[0].departure, 10.0);
}

TEST(DedicatedRate, RepeatedRateChangesAccumulateExactly) {
  Harness h(1);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 3.0);
  // 1 unit of work per second toggled between 0.5 and 1.5 every second:
  // work done = 0.5 + 1.5 + 0.5 + 1.5 ... reaching 3.0 at t = 3.333...
  h.sim.at_fast(0.0, [&] { h.backend.set_rates({0.5}); });
  h.sim.at_fast(1.0, [&] { h.backend.set_rates({1.5}); });
  h.sim.at_fast(2.0, [&] { h.backend.set_rates({0.5}); });
  h.sim.at_fast(3.0, [&] { h.backend.set_rates({1.5}); });
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 1u);
  // Work by t: [0,1):0.5, [1,2):1.5 (cum 2.0), [2,3):0.5 (cum 2.5),
  // then at rate 1.5 the remaining 0.5 takes 1/3 s.
  EXPECT_NEAR(h.done[0].departure, 3.0 + 1.0 / 3.0, 1e-9);
}

TEST(DedicatedRate, FinishAtOldRatePolicy) {
  Harness h(1, RateChangePolicy::kFinishAtOldRate);
  h.backend.set_rates({1.0});
  h.submit(0, 0.0, 4.0);
  h.submit(0, 0.5, 1.0);
  h.sim.at_fast(2.0, [&] { h.backend.set_rates({0.25}); });
  h.sim.run_until(100.0);
  ASSERT_EQ(h.done.size(), 2u);
  // First request unaffected by the change: departs at 4.
  EXPECT_DOUBLE_EQ(h.done[0].departure, 4.0);
  // Second request starts at 4 at the NEW rate: 1.0/0.25 = 4s.
  EXPECT_DOUBLE_EQ(h.done[1].departure, 8.0);
}

TEST(DedicatedRate, NearZeroRatePausesClass) {
  Harness h(2);
  h.backend.set_rates({1e-12, 1.0});
  h.submit(0, 0.0, 1.0);
  h.submit(1, 0.0, 1.0);
  h.sim.run_until(50.0);
  ASSERT_EQ(h.done.size(), 1u);  // class 0 effectively frozen
  EXPECT_EQ(h.done[0].cls, 1u);
  // Un-pausing releases the work.
  h.backend.set_rates({1.0, 1.0});
  h.sim.run_until(100.0);
  EXPECT_EQ(h.done.size(), 2u);
}

TEST(DedicatedRate, InServiceCount) {
  Harness h(2);
  h.backend.set_rates({0.5, 0.5});
  EXPECT_EQ(h.backend.in_service(), 0u);
  h.submit(0, 0.0, 10.0);
  h.sim.run_until(1.0);
  EXPECT_EQ(h.backend.in_service(), 1u);
}

TEST(DedicatedRate, RateVectorSizeMismatchThrows) {
  Harness h(2);
  EXPECT_THROW(h.backend.set_rates({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace psd
