// WorkStealingPool: execution counts, nested submits, stealing, wait_idle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sweep/thread_pool.hpp"

namespace psd {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.stats().executed, 1000u);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.stats().stolen, 0u);  // nobody to steal from
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 4; ++j) {
        pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPool, WaitIdleCoversInFlightWork) {
  WorkStealingPool pool(2);
  std::atomic<bool> finished{false};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
  EXPECT_GT(pool.stats().busy_seconds, 0.0);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ImbalancedLoadGetsStolen) {
  // External submits round-robin over the two deques; the long task goes
  // LAST so it sits at the BACK of deque 0 — owners pop LIFO, so whichever
  // worker owns it blocks for 20 ms with ~50 short tasks still under it,
  // and the other worker must steal (FIFO, from the front) to drain them.
  // OS scheduling could still let one worker do everything, so retry; work
  // completion is asserted every attempt.
  bool stole = false;
  for (int attempt = 0; attempt < 50 && !stole; ++attempt) {
    WorkStealingPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      count.fetch_add(1, std::memory_order_relaxed);
    });
    pool.wait_idle();
    ASSERT_EQ(count.load(), 101);
    stole = pool.stats().stolen > 0;
  }
  EXPECT_TRUE(stole);
}

TEST(ThreadPool, DefaultWorkerCountIsHardwareBound) {
  WorkStealingPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, OversubscribedPoolDrainsEverything) {
  // More workers than this machine has cores: workers get preempted at
  // arbitrary points in the deque/steal protocol, which is exactly where
  // lost-wakeup and double-execution bugs hide.  Counts must still be exact.
  const std::size_t workers =
      std::max<std::size_t>(8, std::thread::hardware_concurrency() * 4);
  WorkStealingPool pool(workers);
  std::atomic<int> count{0};
  for (int i = 0; i < 5000; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 5000);
  EXPECT_EQ(pool.stats().executed, 5000u);
  EXPECT_EQ(pool.worker_count(), workers);
}

TEST(ThreadPool, OversubscribedNestedSubmitStorm) {
  // Nested submits land on the submitting worker's own deque; with workers
  // outnumbering cores the owner is routinely descheduled between producing
  // and consuming them, so completion depends on stealing staying live.
  const std::size_t workers =
      std::max<std::size_t>(8, std::thread::hardware_concurrency() * 4);
  WorkStealingPool pool(workers);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 16; ++j) {
        pool.submit([&] {
          count.fetch_add(1, std::memory_order_relaxed);
          pool.submit(
              [&] { count.fetch_add(1, std::memory_order_relaxed); });
        });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64 + 64 * 16 + 64 * 16);
  // wait_idle() must be exact even with every worker racing: re-run works.
  pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64 + 64 * 16 + 64 * 16 + 1);
}

TEST(ThreadPool, RejectsEmptyTask) {
  WorkStealingPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), std::invalid_argument);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace psd
