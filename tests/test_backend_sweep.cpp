// Property sweep across (backend, load): every scheduling substrate must
// satisfy the same basic sanity contract under the standard workload —
// requests complete, slowdowns are finite and non-negative, per-request
// accounting is consistent, and the rate-respecting backends keep the
// class ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "experiment/runner.hpp"

namespace psd {
namespace {

using Sweep = std::tuple<BackendKind, double>;

class BackendLoadSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(BackendLoadSweep, CompletesAndStaysSane) {
  const auto [backend, load] = GetParam();
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = load;
  cfg.backend = backend;
  cfg.allocator = (backend == BackendKind::kWtp ||
                   backend == BackendKind::kPad ||
                   backend == BackendKind::kHpd ||
                   backend == BackendKind::kStrict)
                      ? AllocatorKind::kNone
                      : AllocatorKind::kPsd;
  cfg.warmup_tu = 1000.0;
  cfg.measure_tu = 8000.0;
  cfg.seed = 777;

  const auto r = run_scenario(cfg, 0);
  std::uint64_t total = 0;
  for (const auto& c : r.cls) {
    total += c.completed;
    if (c.completed > 0) {
      EXPECT_TRUE(std::isfinite(c.mean_slowdown));
      EXPECT_GE(c.mean_slowdown, 0.0);
      EXPECT_TRUE(std::isfinite(c.mean_delay));
      EXPECT_GE(c.mean_delay, 0.0);
    }
  }
  EXPECT_GT(total, 1000u);
  // Throughput sanity: at stable load, completions track submissions.
  EXPECT_GT(static_cast<double>(total),
            0.5 * static_cast<double>(r.submitted) *
                (cfg.measure_tu / (cfg.measure_tu + cfg.warmup_tu)));
}

TEST_P(BackendLoadSweep, DeterministicGivenSeed) {
  const auto [backend, load] = GetParam();
  ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = load;
  cfg.backend = backend;
  cfg.allocator = (backend == BackendKind::kWtp ||
                   backend == BackendKind::kPad ||
                   backend == BackendKind::kHpd ||
                   backend == BackendKind::kStrict)
                      ? AllocatorKind::kNone
                      : AllocatorKind::kPsd;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 2000.0;
  const auto a = run_scenario(cfg, 4);
  const auto b = run_scenario(cfg, 4);
  EXPECT_EQ(a.submitted, b.submitted);
  for (std::size_t i = 0; i < a.cls.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cls[i].mean_slowdown, b.cls[i].mean_slowdown);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllLoads, BackendLoadSweep,
    ::testing::Combine(::testing::Values(BackendKind::kDedicated,
                                         BackendKind::kSfq,
                                         BackendKind::kLottery,
                                         BackendKind::kWtp,
                                         BackendKind::kPad,
                                         BackendKind::kHpd,
                                         BackendKind::kStrict),
                       ::testing::Values(0.3, 0.6, 0.9)));

}  // namespace
}  // namespace psd
