// Microbenchmarks of the arrival-process layer: the per-draw cost of each
// process shape, the batched refill the RequestGenerator hot path rides,
// and the thinning overhead a LoadProfile adds on top of a stationary base.
//
//   ./micro_workload [records.json]    (default BENCH_workload.json)
//
// Suite "workload" in the JSONL record; the committed baseline at the repo
// root arms tools/bench_gate.py --suite workload in CI.  The numbers to
// watch: modulated draws must stay within a small constant factor of the
// plain Poisson draw (one uniform + one profile evaluation per accepted
// candidate — more only when the profile dips and candidates are thinned
// away), and the batch-64 fill must stay cheaper per gap than 64 singles.
#include <cstdint>
#include <string>

#include "json_bench.hpp"
#include "workload/arrival.hpp"

namespace {

using namespace psd;
using bench::emit_record;
using bench::min_ns_per_op;

constexpr std::uint64_t kWarmup = 1 << 12;
constexpr std::uint64_t kIters = 1 << 17;
constexpr int kReps = 5;

/// One record for a single-draw loop over `arrivals`.
void bench_draw(const std::string& path, const char* name,
                ArrivalVariant arrivals) {
  Rng rng(0xBE9C5u);
  const double ns = min_ns_per_op(kWarmup, kIters, kReps, [&] {
    return arrivals.next_interarrival(rng);
  });
  emit_record(path, "workload", name, "\"impl\":\"variant\"", ns, kIters);
}

/// One record for the generator-style batched refill (per-gap cost).
void bench_batch(const std::string& path, const char* name,
                 ArrivalVariant arrivals) {
  Rng rng(0xBA7C4u);
  double buf[64];
  const double ns = min_ns_per_op(kWarmup / 64, kIters / 64, kReps, [&] {
    arrivals.fill_interarrivals(rng, buf, 64);
    return buf[63];
  });
  emit_record(path, "workload", name, "\"impl\":\"batch64\"", ns / 64.0,
              kIters);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_workload.json";

  bench_draw(path, "poisson_draw", PoissonArrivals(1.0));
  bench_draw(path, "mmpp_draw", make_bursty_arrivals(1.0, 4.0));
  bench_draw(path, "mmpp_onoff_draw", make_bursty_arrivals(1.0, 8.0, 20.0, 0.2));

  // Profiles over a Poisson base: spike (flat envelope, factor 1 outside
  // the spike so acceptance is mostly certain), sin (continuous thinning),
  // ramp mid-slope.
  bench_draw(path, "modulated_spike_draw",
             make_arrivals(ArrivalKind::kPoisson, 1.0, 1.0, 10.0, 0.5,
                           LoadProfile::spike(1e6, 1e5, 3.0)));
  bench_draw(path, "modulated_sin_draw",
             make_arrivals(ArrivalKind::kPoisson, 1.0, 1.0, 10.0, 0.5,
                           LoadProfile::sinusoid(1e4, 0.5)));
  bench_draw(path, "modulated_ramp_draw",
             make_arrivals(ArrivalKind::kPoisson, 1.0, 1.0, 10.0, 0.5,
                           LoadProfile::ramp(0.0, 1e9, 0.5, 1.5)));

  bench_batch(path, "poisson_batch", PoissonArrivals(1.0));
  bench_batch(path, "modulated_sin_batch",
              make_arrivals(ArrivalKind::kPoisson, 1.0, 1.0, 10.0, 0.5,
                            LoadProfile::sinusoid(1e4, 0.5)));
  return 0;
}
