// Microbenchmark M3, grown into the hot-path before/after suite: sampling
// throughput of the distribution layer, legacy virtual dispatch vs the
// sealed SamplerVariant, plus the batch API and a campaign-engine
// points/sec record.  The request generators draw one arrival gap and one
// size per request, so ns/sample here bounds every simulation bench.
//
// Three implementations per distribution:
//   * legacy  — make_distribution(): virtual SizeDistribution::sample
//               through a unique_ptr (the pre-variant hot path),
//   * variant — SamplerVariant::sample(): one std::visit, fast-path math
//               (ziggurat exponentials, alias tables, cached BP exponents),
//   * batched — SamplerVariant::sample_n(): one visit per 256 draws, the
//               refill path the generators actually run.
//
// Appends JSONL to BENCH_hot_path.json (shared with micro_simulator's
// end-to-end ns/request records; CI gates on the combined file).
//
//   ./micro_distributions [records.json]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/empirical.hpp"
#include "dist/factory.hpp"
#include "dist/mixture.hpp"
#include "dist/sampler.hpp"
#include "dist/ziggurat.hpp"
#include "json_bench.hpp"
#include "sweep/campaign.hpp"

namespace {

using namespace psd;
using bench::emit_record;
using bench::min_ns_per_op;

constexpr std::uint64_t kIters = 2'000'000;
constexpr int kRepeats = 5;
constexpr std::size_t kBlock = 256;

void bench_dist(const std::string& path, const std::string& bench,
                const SizeDistribution& legacy, const SamplerVariant& fast) {
  Rng rng(42);
  const double legacy_ns = min_ns_per_op(
      kIters / 5, kIters, kRepeats, [&] { return legacy.sample(rng); });
  emit_record(path, "distributions", bench, "\"impl\":\"legacy\"", legacy_ns,
              kIters);

  const double variant_ns = min_ns_per_op(
      kIters / 5, kIters, kRepeats, [&] { return fast.sample(rng); });
  emit_record(path, "distributions", bench, "\"impl\":\"variant\"", variant_ns,
              kIters);

  double block[kBlock];
  const double batched_ns =
      min_ns_per_op(kIters / (5 * kBlock), kIters / kBlock, kRepeats, [&] {
        fast.sample_n(rng, block, kBlock);
        return block[0];
      }) /
      static_cast<double>(kBlock);
  emit_record(path, "distributions", bench,
              "\"impl\":\"batched\",\"block\":" + std::to_string(kBlock),
              batched_ns, kIters);

  std::printf("%-18s legacy %6.2f  variant %6.2f (%.2fx)  batched %6.2f "
              "(%.2fx) ns/sample\n",
              bench.c_str(), legacy_ns, variant_ns, legacy_ns / variant_ns,
              batched_ns, legacy_ns / batched_ns);
}

void bench_spec(const std::string& path, const std::string& bench,
                const DistSpec& spec) {
  bench_dist(path, bench, *make_distribution(spec), make_sampler(spec));
}

void bench_rng_primitives(const std::string& path) {
  Rng rng(7);
  const double inv_ns = min_ns_per_op(kIters / 5, kIters, kRepeats,
                                      [&] { return rng.exponential(1.0); });
  emit_record(path, "rng", "exponential", "\"impl\":\"inverse_log\"", inv_ns,
              kIters);
  const double zig_ns = min_ns_per_op(
      kIters / 5, kIters, kRepeats, [&] { return ziggurat_exponential(rng); });
  emit_record(path, "rng", "exponential", "\"impl\":\"ziggurat\"", zig_ns,
              kIters);
  const double uni_ns = min_ns_per_op(kIters / 5, kIters, kRepeats,
                                      [&] { return rng.uniform01(); });
  emit_record(path, "rng", "uniform01", "\"impl\":\"xoshiro\"", uni_ns, kIters);
  std::printf("%-18s inverse %5.2f  ziggurat %5.2f (%.2fx) ns/draw\n",
              "exp(1) draw", inv_ns, zig_ns, inv_ns / zig_ns);
}

// Campaign throughput with the devirtualized hot path: the sweep engine's
// points/sec is the number every figure reproduction ultimately waits on.
void bench_campaign(const std::string& path) {
  GridSpec grid;
  grid.base.warmup_tu = 500.0;
  grid.base.measure_tu = 4000.0;
  grid.loads = {0.3, 0.6, 0.9};
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq};
  grid.deltas = {{1.0, 2.0}};
  CampaignOptions opt;
  opt.runs = 8;
  opt.master_seed = 42;
  const auto result = run_campaign(grid, opt);
  char extra[192];
  std::snprintf(extra, sizeof(extra),
                "\"impl\":\"variant\",\"points\":%zu,\"runs\":%zu,"
                "\"threads\":%zu,\"points_per_sec\":%.4f",
                result.points.size(), opt.runs, result.threads,
                result.points_per_sec());
  emit_record(path, "campaign", "points_per_sec", extra,
              result.wall_seconds * 1e9 /
                  static_cast<double>(result.points.size()),
              result.points.size());
  std::printf("%-18s %.2f points/s (%zu points x %zu runs, %zu threads)\n",
              "campaign", result.points_per_sec(), result.points.size(),
              opt.runs, result.threads);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : psd::bench::kHotPathRecordsPath;

  bench_spec(path, "bounded_pareto15", DistSpec::bounded_pareto(1.5, 0.1, 100.0));
  bench_spec(path, "bounded_pareto27", DistSpec::bounded_pareto(2.7, 0.1, 100.0));
  bench_spec(path, "exponential", DistSpec::exponential(1.0));
  bench_spec(path, "bounded_exp", DistSpec::bounded_exponential(1.0, 0.1, 10.0));
  bench_spec(path, "lognormal", DistSpec::lognormal(1.0, 4.0));
  bench_spec(path, "uniform", DistSpec::uniform(0.5, 2.0));
  bench_spec(path, "deterministic", DistSpec::deterministic(1.0));

  {
    // Empirical: 1024-point value set, uniform weights (trace resampling).
    std::vector<double> values;
    values.reserve(1024);
    Rng seed_rng(9);
    for (int i = 0; i < 1024; ++i) values.push_back(0.1 + seed_rng.uniform01());
    const Empirical legacy(values);
    bench_dist(path, "empirical1024", legacy, EmpiricalSampler(values));
  }
  {
    // Mixture: the storefront-style det + heavy-tail blend.
    std::vector<Mixture::Component> legacy_comps;
    legacy_comps.push_back({0.6, std::make_unique<Deterministic>(0.3)});
    legacy_comps.push_back(
        {0.4, std::make_unique<BoundedPareto>(1.5, 0.1, 50.0)});
    const Mixture legacy(std::move(legacy_comps));
    const SamplerVariant fast =
        MixtureSampler({{0.6, DeterministicSampler(0.3)},
                        {0.4, BoundedParetoSampler(1.5, 0.1, 50.0)}});
    bench_dist(path, "mixture_det_bp", legacy, fast);
  }

  bench_rng_primitives(path);
  bench_campaign(path);

  std::printf("done; records appended to %s\n", path.c_str());
  return 0;
}
