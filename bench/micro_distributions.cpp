// Microbenchmark M3: sampling throughput of the distribution layer (the
// request generators call these on every arrival).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"

namespace {

template <typename Dist, typename... Args>
void sample_loop(benchmark::State& state, Args... args) {
  Dist d(args...);
  psd::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BoundedPareto(benchmark::State& state) {
  sample_loop<psd::BoundedPareto>(state, 1.5, 0.1, 100.0);
}
BENCHMARK(BM_BoundedPareto);

void BM_Exponential(benchmark::State& state) {
  sample_loop<psd::Exponential>(state, 1.0);
}
BENCHMARK(BM_Exponential);

void BM_BoundedExponential(benchmark::State& state) {
  sample_loop<psd::BoundedExponential>(state, 1.0, 0.1, 10.0);
}
BENCHMARK(BM_BoundedExponential);

void BM_Lognormal(benchmark::State& state) {
  sample_loop<psd::Lognormal>(state, 0.0, 1.0);
}
BENCHMARK(BM_Lognormal);

void BM_Deterministic(benchmark::State& state) {
  sample_loop<psd::Deterministic>(state, 1.0);
}
BENCHMARK(BM_Deterministic);

void BM_RngUniform01(benchmark::State& state) {
  psd::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform01);

}  // namespace

BENCHMARK_MAIN();
