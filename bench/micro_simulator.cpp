// Microbenchmark M4: end-to-end simulation throughput — requests simulated
// per second for the full Fig.-1 server (generator + queues + estimator +
// eq.-17 allocator + dedicated backend), the rate that bounds every
// figure-reproduction bench.
#include <benchmark/benchmark.h>

#include "experiment/runner.hpp"

namespace {

void BM_FullServerSimulation(benchmark::State& state) {
  const double load = static_cast<double>(state.range(0)) / 100.0;
  psd::ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = load;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 5000.0;
  std::uint64_t requests = 0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    const auto r = psd::run_scenario(cfg, run++);
    requests += r.submitted;
    benchmark::DoNotOptimize(r.system_slowdown);
  }
  state.SetItemsProcessed(static_cast<int64_t>(requests));
  state.counters["requests/run"] =
      static_cast<double>(requests) / static_cast<double>(run);
}
BENCHMARK(BM_FullServerSimulation)->Arg(30)->Arg(60)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_ThreeClassSimulation(benchmark::State& state) {
  psd::ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0, 3.0};
  cfg.load = 0.7;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 5000.0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    const auto r = psd::run_scenario(cfg, run++);
    benchmark::DoNotOptimize(r.system_slowdown);
  }
}
BENCHMARK(BM_ThreeClassSimulation)->Unit(benchmark::kMillisecond);

void BM_SfqSimulation(benchmark::State& state) {
  psd::ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = 0.7;
  cfg.backend = psd::BackendKind::kSfq;
  cfg.warmup_tu = 500.0;
  cfg.measure_tu = 5000.0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    const auto r = psd::run_scenario(cfg, run++);
    benchmark::DoNotOptimize(r.system_slowdown);
  }
}
BENCHMARK(BM_SfqSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
