// Microbenchmark M4: end-to-end simulation throughput — requests simulated
// per second for the full Fig.-1 server (generator + queues + estimator +
// eq.-17 allocator + backend), the rate that bounds every figure-
// reproduction bench.  Appends records to BENCH_hot_path.json (JSONL)
// alongside micro_distributions' per-sample numbers, so the whole hot-path
// perf trajectory lives in one file; CI gates full_server_load60 against the
// checked-in baseline (tools/bench_gate.py).
//
// Repetition discipline: min-of-k over full replications (each replication
// is one timed block) after one warmup replication — the same warm-up +
// min-of-k scheme as json_bench's min_ns_per_op, applied at scenario
// granularity so BENCH numbers are stable across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

#include "experiment/runner.hpp"
#include "json_bench.hpp"

namespace {

using psd::bench::emit_record;

void bench_scenario(const std::string& path, const std::string& bench,
                    psd::ScenarioConfig cfg, int repeats) {
  // Warmup run: faults in code paths and sizes all the arena vectors.
  (void)psd::run_scenario(cfg, 0);
  std::uint64_t requests = 0;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto r = psd::run_scenario(cfg, static_cast<std::uint64_t>(rep));
    const auto done = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(done - start)
            .count());
    requests += r.submitted;
    best = std::min(best, ns / static_cast<double>(r.submitted));
  }
  emit_record(path, "simulator", bench,
              "\"impl\":\"variant\",\"requests\":" + std::to_string(requests),
              best, requests);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : psd::bench::kHotPathRecordsPath;

  for (int load : {30, 60, 90}) {
    psd::ScenarioConfig cfg;
    cfg.delta = {1.0, 2.0};
    cfg.load = static_cast<double>(load) / 100.0;
    cfg.warmup_tu = 500.0;
    cfg.measure_tu = 5000.0;
    bench_scenario(path, "full_server_load" + std::to_string(load), cfg, 8);
  }
  {
    psd::ScenarioConfig cfg;
    cfg.delta = {1.0, 2.0, 3.0};
    cfg.load = 0.7;
    cfg.warmup_tu = 500.0;
    cfg.measure_tu = 5000.0;
    bench_scenario(path, "three_class", cfg, 8);
  }
  {
    psd::ScenarioConfig cfg;
    cfg.delta = {1.0, 2.0};
    cfg.load = 0.7;
    cfg.backend = psd::BackendKind::kSfq;
    cfg.warmup_tu = 500.0;
    cfg.measure_tu = 5000.0;
    bench_scenario(path, "sfq", cfg, 8);
  }
  std::printf("done; records appended\n");
  return 0;
}
