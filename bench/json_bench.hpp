// Minimal self-contained microbench harness (no external dependency), after
// the warmup + volatile-sink discipline of the wg21-p0493 bench runner:
// run the op under test in a tight loop against a `volatile` data sink the
// compiler cannot elide, after a warmup pass that faults in caches and
// brings vectors to their steady-state capacity.
//
// Results land as one JSON object per line in a records file (JSONL —
// trivially machine-readable, and several binaries can share one file
// without a merge step).  A record REPLACES any earlier record with the
// same (suite, bench, impl) key — re-running a bench refreshes its line in
// place instead of appending a duplicate (the committed baselines stay
// deduplicated by construction; bench_gate.py's last-wins keying remains
// correct either way).  The rewrite goes through a temp file + rename so a
// crash mid-write never truncates the shared records file.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

namespace psd::bench {

inline const char* kDefaultRecordsPath = "BENCH_event_core.json";
inline const char* kHotPathRecordsPath = "BENCH_hot_path.json";

/// Min-of-k repetition: one warmup pass, then `k` independently timed blocks
/// of `iters` iterations; report the fastest block.  The minimum estimates
/// the noise-free cost of the op — means drift with scheduler jitter and
/// frequency scaling, which made single-shot BENCH_*.json numbers too shaky
/// to compare across PRs.  `fn` must feed its observable result into a
/// volatile sink itself or return a value, which the harness accumulates.
template <typename F>
double min_ns_per_op(std::uint64_t warmup, std::uint64_t iters, int k,
                     F&& fn) {
  volatile double sink = 0.0;
  for (std::uint64_t i = 0; i < warmup; ++i) sink = sink + fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < k; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) sink = sink + fn();
    const auto done = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(done - start)
            .count();
    best = std::min(best,
                    static_cast<double>(ns) / static_cast<double>(iters));
  }
  (void)sink;
  return best;
}

/// Render a double as a JSON number, or null when non-finite — a literal
/// "nan"/"inf" in one record line breaks every JSONL consumer of the whole
/// file (tools/bench_gate.py aborts in load_records).
inline std::string json_num(double v) {
  if (!(v == v) || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    return "null";
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Value of a string field in a rendered JSONL record line, or "" when the
/// field is absent.  Enough JSON for the records this header itself writes
/// (keys/values without escaped quotes).
inline std::string record_field(const std::string& line,
                                const std::string& field) {
  const std::string needle = "\"" + field + "\":\"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return "";
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// One benchmark record; `extra` is pre-rendered JSON key/values, e.g.
/// "\"impl\":\"pooled\",\"backlog\":4096".  Replaces any existing record
/// with the same (suite, bench, impl); all other lines are preserved.
inline void emit_record(const std::string& path, const std::string& suite,
                        const std::string& bench, const std::string& extra,
                        double ns_per_op, std::uint64_t iters) {
  std::ostringstream os;
  os << "{\"suite\":\"" << suite << "\",\"bench\":\"" << bench << "\"";
  if (!extra.empty()) os << ',' << extra;
  os << ",\"ns_per_op\":" << json_num(ns_per_op)
     << ",\"ops_per_sec\":" << json_num(1e9 / ns_per_op)
     << ",\"iters\":" << iters << "}";
  const std::string line = os.str();
  const std::string impl = record_field(line, "impl");

  std::string kept;  // every line whose key differs from the new record's
  {
    std::ifstream in(path);
    std::string old;
    while (std::getline(in, old)) {
      if (old.empty()) continue;
      if (record_field(old, "suite") == suite &&
          record_field(old, "bench") == bench &&
          record_field(old, "impl") == impl) {
        continue;  // superseded
      }
      kept += old;
      kept += '\n';
    }
  }

  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << kept << line << '\n';
      out.flush();
      ok = static_cast<bool>(out);
    }
  }
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::cerr << "warning: could not write record to " << path << '\n';
  }
  std::cout << line << '\n';
}

}  // namespace psd::bench
