// Microbenchmark M1: cost of one eq.-17 allocation as the class count grows.
// The allocator runs on every reallocation tick (1000 tu), so it must be
// cheap; expected O(N) with a tiny constant.
#include <benchmark/benchmark.h>

#include "core/psd_allocation.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"

namespace {

void BM_AllocatePsdRates(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  psd::BoundedPareto bp(1.5, 0.1, 100.0);
  psd::PsdInput in;
  in.mean_size = bp.mean();
  for (std::size_t i = 0; i < n; ++i) {
    in.delta.push_back(static_cast<double>(i + 1));
    in.lambda.push_back(0.8 / in.mean_size / static_cast<double>(n));
  }
  for (auto _ : state) {
    auto out = psd::allocate_psd_rates(in);
    benchmark::DoNotOptimize(out.rate.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatePsdRates)->RangeMultiplier(4)->Range(2, 512);

void BM_ExpectedSlowdowns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  psd::BoundedPareto bp(1.5, 0.1, 100.0);
  std::vector<double> lambda(n, 0.8 / bp.mean() / static_cast<double>(n));
  std::vector<double> delta;
  for (std::size_t i = 0; i < n; ++i) delta.push_back(static_cast<double>(i + 1));
  for (auto _ : state) {
    auto sd = psd::expected_psd_slowdowns(lambda, delta, bp);
    benchmark::DoNotOptimize(sd.data());
  }
}
BENCHMARK(BM_ExpectedSlowdowns)->RangeMultiplier(4)->Range(2, 512);

void BM_RuntimeAllocatorRoundTrip(benchmark::State& state) {
  psd::BoundedPareto bp(1.5, 0.1, 100.0);
  psd::PsdAllocatorConfig cfg;
  cfg.delta = {1.0, 2.0, 3.0};
  cfg.mean_size = bp.mean();
  psd::PsdRateAllocator alloc(cfg);
  const std::vector<double> lam = {0.9, 0.9, 0.9};
  for (auto _ : state) {
    auto rates = alloc.allocate(lam);
    benchmark::DoNotOptimize(rates.data());
  }
}
BENCHMARK(BM_RuntimeAllocatorRoundTrip);

}  // namespace

BENCHMARK_MAIN();
