// Microbenchmark M2: event-queue throughput — schedule/pop cycles at
// different pending-set sizes, plus cancellation overhead.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace {

void BM_SchedulePop(benchmark::State& state) {
  const auto backlog = static_cast<std::size_t>(state.range(0));
  psd::EventQueue q;
  psd::Rng rng(1);
  double t = 0.0;
  for (std::size_t i = 0; i < backlog; ++i) {
    q.schedule_fast(t + rng.uniform01() * 100.0, [] {});
  }
  for (auto _ : state) {
    q.schedule_fast(t + rng.uniform01() * 100.0, [] {});
    t = q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulePop)->RangeMultiplier(8)->Range(8, 32768);

void BM_CancellableSchedulePop(benchmark::State& state) {
  psd::EventQueue q;
  psd::Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 1024; ++i) {
    q.schedule(t + rng.uniform01() * 100.0, [] {});
  }
  for (auto _ : state) {
    auto h = q.schedule(t + rng.uniform01() * 100.0, [] {});
    benchmark::DoNotOptimize(h.pending());
    t = q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancellableSchedulePop);

void BM_CancelHeavy(benchmark::State& state) {
  // Half of all scheduled events get cancelled before they fire.
  psd::EventQueue q;
  psd::Rng rng(3);
  double t = 0.0;
  for (auto _ : state) {
    auto h1 = q.schedule(t + rng.uniform01() * 10.0, [] {});
    q.schedule_fast(t + rng.uniform01() * 10.0, [] {});
    h1.cancel();
    t = q.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelHeavy);

}  // namespace

BENCHMARK_MAIN();
