// Microbenchmark M2: event-queue throughput, before vs after the pooled
// rewrite, from one binary so the ratio is apples-to-apples.
//
//   * legacy — the seed design kept as a bench-only reference
//     (legacy_event_queue.hpp): binary heap of fat entries, std::function
//     payloads (heap-allocates for captures > its ~16-byte SSO buffer),
//     one shared_ptr<bool> per cancellable event.
//   * pooled — the current core: slab payload pool, 4-ary heap of 24-byte
//     keys, generation-counted handles, zero steady-state allocations.
//
// Benches:
//   schedule_pop_empty      captureless payloads — isolates the heap/layout
//                           difference (legacy's SSO avoids allocation too).
//   schedule_pop_completion 24-byte captures, the size of a real completion
//                           callback ([this, cls, ran]) — legacy pays one
//                           malloc/free per event here.
//   cancellable             completion-sized capture + cancellation token.
//   hot_path_mix            the per-request pattern of the real simulator at
//                           a realistic pending-set size: one cancellable
//                           arrival, one cancellable completion that gets
//                           cancelled and rescheduled (the reallocation
//                           pattern), one fast event, two pops.  This is the
//                           headline number.
//
// Appends machine-readable records to BENCH_event_core.json (JSONL).
#include <cstdio>
#include <string>

#include "common/rng.hpp"
#include "json_bench.hpp"
#include "legacy_event_queue.hpp"
#include "sim/event_queue.hpp"

namespace {

using psd::bench::emit_record;
using psd::bench::min_ns_per_op;

// Per timed block; each bench reports the min over kRepeats blocks after a
// warmup pass, so records stay comparable across PRs.
constexpr std::uint64_t kIters = 500'000;
constexpr int kRepeats = 5;

// One op: schedule one captureless event, pop the earliest.
template <typename Queue>
double bench_schedule_pop_empty(const std::string& impl,
                                const std::string& path,
                                std::size_t backlog) {
  Queue q;
  psd::Rng rng(1);
  double t = 0.0;
  for (std::size_t i = 0; i < backlog; ++i) {
    q.schedule_fast(t + rng.uniform01() * 100.0, [] {});
  }
  const double ns = min_ns_per_op(kIters / 5, kIters, kRepeats, [&] {
    q.schedule_fast(t + rng.uniform01() * 100.0, [] {});
    t = q.pop_and_run();
    return t;
  });
  emit_record(path, "event_queue", "schedule_pop_empty",
              "\"impl\":\"" + impl +
                  "\",\"backlog\":" + std::to_string(backlog),
              ns, kIters);
  return ns;
}

// One op: schedule an event whose payload captures 24 bytes (pointer + two
// scalars — a completion callback), pop the earliest.
template <typename Queue>
double bench_schedule_pop_completion(const std::string& impl,
                                     const std::string& path,
                                     std::size_t backlog) {
  Queue q;
  psd::Rng rng(2);
  double t = 0.0, acc = 0.0;
  double* sink = &acc;
  for (std::size_t i = 0; i < backlog; ++i) {
    const double sz = rng.uniform01();
    q.schedule_fast(t + rng.uniform01() * 100.0,
                    [sink, sz, t] { *sink += sz + t; });
  }
  const double ns = min_ns_per_op(kIters / 5, kIters, kRepeats, [&] {
    const double sz = rng.uniform01();
    q.schedule_fast(t + rng.uniform01() * 100.0,
                    [sink, sz, t] { *sink += sz + t; });
    t = q.pop_and_run();
    return t;
  });
  emit_record(path, "event_queue", "schedule_pop_completion",
              "\"impl\":\"" + impl +
                  "\",\"backlog\":" + std::to_string(backlog),
              ns, kIters);
  return ns;
}

// One op: cancellable schedule (token allocation on the legacy path, slab
// slot on the pooled path) with a completion-sized capture, then pop.
template <typename Queue>
double bench_cancellable(const std::string& impl, const std::string& path,
                         std::size_t backlog) {
  Queue q;
  psd::Rng rng(3);
  double t = 0.0, acc = 0.0;
  double* sink = &acc;
  for (std::size_t i = 0; i < backlog; ++i) {
    const double sz = rng.uniform01();
    q.schedule(t + rng.uniform01() * 100.0, [sink, sz, t] { *sink += sz; });
  }
  const double ns = min_ns_per_op(kIters / 5, kIters, kRepeats, [&] {
    const double sz = rng.uniform01();
    auto h =
        q.schedule(t + rng.uniform01() * 100.0, [sink, sz, t] { *sink += sz; });
    const double alive = h.pending() ? 1.0 : 0.0;
    t = q.pop_and_run();
    return t + alive;
  });
  emit_record(path, "event_queue", "cancellable",
              "\"impl\":\"" + impl +
                  "\",\"backlog\":" + std::to_string(backlog),
              ns, kIters);
  return ns;
}

// One op: schedule a cancellable + a fast event (completion-sized captures),
// cancel the first, pop one.  Half of all scheduled events die before firing
// — the dedicated-rate backend's reallocation churn.  On the legacy path
// every op pays two std::function allocations plus one make_shared.
template <typename Queue>
double bench_cancel_heavy(const std::string& impl, const std::string& path) {
  Queue q;
  psd::Rng rng(5);
  double t = 0.0, acc = 0.0;
  double* sink = &acc;
  const double ns = min_ns_per_op(kIters / 5, kIters, kRepeats, [&] {
    const double sz = rng.uniform01();
    auto h =
        q.schedule(t + rng.uniform01() * 10.0, [sink, sz, t] { *sink += sz; });
    q.schedule_fast(t + rng.uniform01() * 10.0,
                    [sink, sz, t] { *sink += sz + t; });
    h.cancel();
    t = q.pop_and_run();
    return t;
  });
  emit_record(path, "event_queue", "cancel_heavy",
              "\"impl\":\"" + impl + "\"", ns, kIters);
  return ns;
}

// One op = one simulated "request" at a realistic pending-set size (a real
// run keeps ~tens of events pending: per-class completions, next arrivals,
// the reallocation timer):
//   1. cancellable arrival event (generator pattern),
//   2. cancellable completion event, immediately cancelled and rescheduled
//      (the dedicated-rate backend's set_rates pattern),
//   3. one fast event (timer tick),
//   4. pop three events to keep the set in steady state.
template <typename Queue>
double bench_hot_path_mix(const std::string& impl, const std::string& path,
                          std::size_t backlog) {
  Queue q;
  psd::Rng rng(4);
  double t = 0.0, acc = 0.0;
  double* sink = &acc;
  for (std::size_t i = 0; i < backlog; ++i) {
    q.schedule_fast(t + rng.uniform01() * 8.0, [] {});
  }
  const double ns = min_ns_per_op(kIters / 5, kIters, kRepeats, [&] {
    const double sz = rng.uniform01();
    q.schedule(t + rng.uniform01() * 8.0, [sink, sz, t] { *sink += sz + t; });
    auto completion =
        q.schedule(t + rng.uniform01() * 8.0, [sink, sz, t] { *sink += sz; });
    completion.cancel();
    q.schedule(t + 0.5 + rng.uniform01() * 8.0,
               [sink, sz, t] { *sink += 2.0 * sz; });
    q.schedule_fast(t + rng.uniform01() * 8.0, [sink, t] { *sink += t; });
    t = q.pop_and_run();
    t = q.pop_and_run();
    t = q.pop_and_run();
    return t;
  });
  emit_record(path, "event_queue", "hot_path_mix",
              "\"impl\":\"" + impl +
                  "\",\"backlog\":" + std::to_string(backlog),
              ns, kIters);
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : psd::bench::kDefaultRecordsPath;

  for (std::size_t backlog : {std::size_t{64}, std::size_t{4096},
                              std::size_t{32768}}) {
    bench_schedule_pop_empty<psd::bench::LegacyEventQueue>("legacy", path,
                                                           backlog);
    bench_schedule_pop_empty<psd::EventQueue>("pooled", path, backlog);
  }
  for (std::size_t backlog : {std::size_t{32}, std::size_t{1024}}) {
    bench_schedule_pop_completion<psd::bench::LegacyEventQueue>("legacy", path,
                                                                backlog);
    bench_schedule_pop_completion<psd::EventQueue>("pooled", path, backlog);
  }
  bench_cancellable<psd::bench::LegacyEventQueue>("legacy", path, 1024);
  bench_cancellable<psd::EventQueue>("pooled", path, 1024);

  const double legacy_churn =
      bench_cancel_heavy<psd::bench::LegacyEventQueue>("legacy", path);
  const double pooled_churn = bench_cancel_heavy<psd::EventQueue>("pooled", path);

  const double legacy_mix =
      bench_hot_path_mix<psd::bench::LegacyEventQueue>("legacy", path, 32);
  const double pooled_mix =
      bench_hot_path_mix<psd::EventQueue>("pooled", path, 32);

  std::printf("cancel-churn speedup: %.2fx (legacy %.1f -> pooled %.1f ns/op)\n",
              legacy_churn / pooled_churn, legacy_churn, pooled_churn);
  std::printf("hot-path-mix speedup: %.2fx (legacy %.1f -> pooled %.1f "
              "ns/request)\n",
              legacy_mix / pooled_mix, legacy_mix, pooled_mix);
  return 0;
}
