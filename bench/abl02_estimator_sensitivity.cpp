// Ablation A2: load-estimation configuration.  Paper §4.4 attributes the
// achieved-ratio error at large delta ratios to estimation error in short
// windows; this bench varies the estimation history and the reallocation
// period and reports achieved ratio and its windowed spread.
//
// Expected: longer histories / periods reduce estimation noise (ratio closer
// to target, tighter p5..p95) but react slower; the paper's 5x1000-tu choice
// is a middle point.  Error grows with the target ratio (8 >> 2).
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A2 — estimator history and reallocation period",
                "deltas (1,8) at 60% load: the regime the paper flags as "
                "estimation-sensitive",
                runs);
  Table t({"history (windows)", "realloc (tu)", "achieved ratio (target 8)",
           "windowed p5", "windowed p95"});
  for (std::size_t history : {1, 5, 20}) {
    for (double period : {200.0, 1000.0, 5000.0}) {
      auto cfg = two_class_scenario(8.0, 60.0);
      cfg.estimator_history = history;
      cfg.realloc_tu = period;
      const auto r = run_replications(cfg, runs);
      t.add_row({std::to_string(history), Table::fmt(period, 0),
                 Table::fmt(r.mean_ratio[1], 2), Table::fmt(r.ratio[0].p5, 2),
                 Table::fmt(r.ratio[0].p95, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nreference: same sweep at target ratio 2\n";
  Table t2({"history (windows)", "realloc (tu)", "achieved ratio (target 2)"});
  for (std::size_t history : {1, 5, 20}) {
    for (double period : {200.0, 1000.0, 5000.0}) {
      auto cfg = two_class_scenario(2.0, 60.0);
      cfg.estimator_history = history;
      cfg.realloc_tu = period;
      const auto r = run_replications(cfg, runs);
      t2.add_row({std::to_string(history), Table::fmt(period, 0),
                  Table::fmt(r.mean_ratio[1], 2)});
    }
  }
  t2.print(std::cout);
  return 0;
}
