// Figure 11: influence of the Bounded Pareto shape parameter alpha on the
// experienced slowdowns, alpha in [1.0, 2.0], deltas (1, 2), fixed load.
//
// Paper shape (log-y): slowdown *decreases* as alpha increases (smaller
// alpha => burstier traffic => larger E[X^2] => larger queueing delay);
// the differentiation itself — simulated tracking expected, ratio pinned at
// 2 — is insensitive to alpha because eq. 17 makes no assumption about it.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  const double load = 80.0;
  bench::header("Figure 11 — influence of the shape parameter alpha",
                "BP(alpha, 0.1, 100), deltas (1,2), load 80%", runs);
  Table t({"alpha", "S1 sim", "S1 exp", "S2 sim", "S2 exp", "ratio"});
  for (double alpha : shape_parameter_sweep()) {
    auto cfg = two_class_scenario(2.0, load);
    cfg.size_dist = DistSpec::bounded_pareto(alpha, 0.1, 100.0);
    const auto r = run_replications(cfg, runs);
    t.add_row({Table::fmt(alpha, 1), Table::fmt(r.slowdown[0].mean, 2),
               Table::fmt(r.expected[0], 2), Table::fmt(r.slowdown[1].mean, 2),
               Table::fmt(r.expected[1], 2), Table::fmt(r.mean_ratio[1], 2)});
  }
  t.print(std::cout);
  return 0;
}
