// Campaign-engine performance records (BENCH_sweep.json):
//
//   * campaign_2x3_grid — points/sec and pool efficiency for a small mixed
//     grid on the shared work-stealing pool, against the pre-sweep baseline
//     of serializing scenarios and parallelizing only replications.
//   * lockstep_grid_per_task / lockstep_grid_lockstep8 — the same dedicated-
//     backend grid executed in both replication modes: one replication per
//     task vs lane-groups of K=8 on the lockstep batch kernel.  Before
//     emitting, every point record of the two runs is compared byte-for-byte
//     (the lockstep determinism contract); a mismatch fails the bench.
//
//   ./micro_sweep [records.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "json_bench.hpp"
#include "sweep/campaign.hpp"

namespace {

using namespace psd;

GridSpec small_grid() {
  GridSpec grid;
  grid.base.warmup_tu = 500.0;
  grid.base.measure_tu = 4000.0;
  grid.loads = {0.3, 0.6, 0.9};
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq};
  grid.deltas = {{1.0, 2.0}};
  return grid;
}

/// Dedicated-backend-only grid: every point is lockstep-eligible, so the
/// mode comparison measures the kernel, not the fallback path.
GridSpec lockstep_grid() {
  GridSpec grid;
  grid.base.warmup_tu = 500.0;
  grid.base.measure_tu = 10000.0;
  grid.loads = {0.3, 0.5, 0.7, 0.9};
  grid.deltas = {{1.0, 2.0}, {1.0, 4.0}, {1.0, 8.0}};
  grid.backends = {BackendKind::kDedicated};
  return grid;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct ModeRun {
  CampaignResult result;
  std::uint64_t requests = 0;  ///< Completed requests across all points.
};

ModeRun run_mode(const GridSpec& grid, std::size_t runs,
                 ReplicationMode mode, std::size_t lanes) {
  CampaignOptions opt;
  opt.runs = runs;
  opt.master_seed = 42;
  opt.replication_mode = mode;
  opt.lockstep_lanes = lanes;
  ModeRun out;
  out.result = run_campaign(grid, opt);
  for (const auto& p : out.result.points) {
    out.requests += p.result.completed_total;
  }
  return out;
}

void emit_mode_record(const std::string& path, const char* bench,
                      const char* impl, const ModeRun& run, double speedup) {
  const double wall_ns = run.result.wall_seconds * 1e9;
  const double ns_per_request =
      run.requests > 0 ? wall_ns / static_cast<double>(run.requests) : 0.0;
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"impl\":\"%s\",\"points\":%zu,\"threads\":%zu,"
                "\"points_per_sec\":%.4f,\"ns_per_request\":%.2f,"
                "\"speedup_vs_per_task\":%.4f",
                impl, run.result.points.size(), run.result.threads,
                run.result.points_per_sec(), ns_per_request, speedup);
  psd::bench::emit_record(
      path, "sweep", bench, extra,
      wall_ns / static_cast<double>(run.result.points.size()),
      run.result.points.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "BENCH_sweep.json";

  // --- campaign engine vs scenario-serial baseline (mixed grid) ---
  const GridSpec grid = small_grid();
  const std::size_t kRuns = 8;

  const auto t0 = std::chrono::steady_clock::now();
  const auto points = expand_grid(grid);
  for (const auto& p : points) {
    ScenarioConfig cfg = p.cfg;
    cfg.seed = derive_point_seed(42, p.cfg);
    (void)run_replications(cfg, kRuns, /*parallel=*/true);
  }
  const double serial_sec = seconds_since(t0);

  CampaignOptions opt;
  opt.runs = kRuns;
  opt.master_seed = 42;
  const auto result = run_campaign(grid, opt);

  std::printf(
      "campaign: %zu points x %zu runs, %zu threads — %.2fs (%.2f points/s, "
      "efficiency %.0f%%) vs %.2fs scenario-serial (%.2fx)\n",
      result.points.size(), kRuns, result.threads, result.wall_seconds,
      result.points_per_sec(), 100.0 * result.pool_efficiency(), serial_sec,
      serial_sec / result.wall_seconds);

  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"impl\":\"campaign_pool\",\"points\":%zu,\"runs\":%zu,"
                "\"threads\":%zu,\"points_per_sec\":%.4f,"
                "\"pool_efficiency\":%.4f,\"scenario_serial_sec\":%.4f",
                result.points.size(), kRuns, result.threads,
                result.points_per_sec(), result.pool_efficiency(), serial_sec);
  bench::emit_record(path, "sweep", "campaign_2x3_grid", extra,
                     result.wall_seconds * 1e9 /
                         static_cast<double>(result.points.size()),
                     result.points.size());

  // --- per-task vs lockstep(K=8) on the dedicated-only grid ---
  const GridSpec lgrid = lockstep_grid();
  const std::size_t kLanes = 8;
  const auto per_task =
      run_mode(lgrid, kRuns, ReplicationMode::kPerTask, kLanes);
  const auto lockstep =
      run_mode(lgrid, kRuns, ReplicationMode::kLockstep, kLanes);

  // Determinism cross-check: the two modes must render identical records.
  if (per_task.result.points.size() != lockstep.result.points.size()) {
    std::fprintf(stderr, "lockstep bench: point count mismatch\n");
    return 1;
  }
  for (std::size_t i = 0; i < per_task.result.points.size(); ++i) {
    if (per_task.result.points[i].record !=
        lockstep.result.points[i].record) {
      std::fprintf(stderr,
                   "lockstep bench: record %zu differs between modes\n", i);
      return 1;
    }
  }

  const double speedup =
      lockstep.result.wall_seconds > 0.0
          ? per_task.result.wall_seconds / lockstep.result.wall_seconds
          : 0.0;
  std::printf(
      "lockstep grid: %zu points x %zu runs — per-task %.2fs (%.2f points/s),"
      " lockstep(K=%zu) %.2fs (%.2f points/s) — %.2fx, records identical\n",
      per_task.result.points.size(), kRuns, per_task.result.wall_seconds,
      per_task.result.points_per_sec(), kLanes,
      lockstep.result.wall_seconds, lockstep.result.points_per_sec(),
      speedup);

  emit_mode_record(path, "lockstep_grid_per_task", "per_task", per_task, 1.0);
  emit_mode_record(path, "lockstep_grid_lockstep8", "lockstep8", lockstep,
                   speedup);
  return 0;
}
