// Campaign-engine performance record: points/sec and pool efficiency for a
// small grid executed as scenarios x replications on the shared
// work-stealing pool, against the pre-sweep baseline of serializing
// scenarios and parallelizing only replications (run_replications per
// point).  Appends JSONL records to BENCH_sweep.json.
//
//   ./micro_sweep [records.json]
#include <chrono>
#include <cstdio>

#include "json_bench.hpp"
#include "sweep/campaign.hpp"

namespace {

using namespace psd;

GridSpec small_grid() {
  GridSpec grid;
  grid.base.warmup_tu = 500.0;
  grid.base.measure_tu = 4000.0;
  grid.loads = {0.3, 0.6, 0.9};
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq};
  grid.deltas = {{1.0, 2.0}};
  return grid;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "BENCH_sweep.json";
  const GridSpec grid = small_grid();
  const std::size_t kRuns = 8;

  // Baseline: scenario-serial, replication-parallel (the pre-sweep shape).
  const auto t0 = std::chrono::steady_clock::now();
  const auto points = expand_grid(grid);
  for (const auto& p : points) {
    ScenarioConfig cfg = p.cfg;
    cfg.seed = derive_point_seed(42, p.cfg);
    (void)run_replications(cfg, kRuns, /*parallel=*/true);
  }
  const double serial_sec = seconds_since(t0);

  // Campaign: all points x replications share one work-stealing pool.
  CampaignOptions opt;
  opt.runs = kRuns;
  opt.master_seed = 42;
  const auto result = run_campaign(grid, opt);

  std::printf(
      "campaign: %zu points x %zu runs, %zu threads — %.2fs (%.2f points/s, "
      "efficiency %.0f%%) vs %.2fs scenario-serial (%.2fx)\n",
      result.points.size(), kRuns, result.threads, result.wall_seconds,
      result.points_per_sec(), 100.0 * result.pool_efficiency(), serial_sec,
      serial_sec / result.wall_seconds);

  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"impl\":\"campaign_pool\",\"points\":%zu,\"runs\":%zu,"
                "\"threads\":%zu,\"points_per_sec\":%.4f,"
                "\"pool_efficiency\":%.4f,\"scenario_serial_sec\":%.4f",
                result.points.size(), kRuns, result.threads,
                result.points_per_sec(), result.pool_efficiency(), serial_sec);
  bench::emit_record(path, "sweep", "campaign_2x3_grid", extra,
                     result.wall_seconds * 1e9 /
                         static_cast<double>(result.points.size()),
                     result.points.size());
  return 0;
}
