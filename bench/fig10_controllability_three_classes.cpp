// Figure 10: achieved slowdown ratios with three classes, deltas (1, 2, 3):
// S2/S1 (target 2) and S3/S1 (target 3) vs load.
//
// Paper shape: both ratios hover around their targets with larger variance
// than the two-class case — a mis-estimated class perturbs every other
// class's rate, so error grows with the number of classes.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 10 — controllability, three classes (deltas 1:2:3)",
                "achieved long-run ratios S2/S1 (target 2) and S3/S1 "
                "(target 3) vs load",
                runs);
  Table t({"load%", "S2/S1 (target 2)", "S3/S1 (target 3)"});
  for (double load : standard_load_sweep()) {
    auto cfg = three_class_scenario(load);
    const auto r = run_replications(cfg, runs);
    t.add_row({Table::fmt(load, 0), Table::fmt(r.mean_ratio[1], 2),
               Table::fmt(r.mean_ratio[2], 2)});
  }
  t.print(std::cout);
  return 0;
}
