// Figure 9: achieved (simulated) slowdown ratios of two classes vs load for
// target ratios 2, 4, 8.
//
// Paper shape: ratios 2 and 4 are tracked accurately across loads; ratio 8
// shows visible deviation at various loads — the paper attributes this to
// load-estimation error, whose influence on the achieved ratio grows with
// the differentiation parameter (see eq. 17).
//
// Same campaign grid as Fig. 5 (campaigns/fig05_fig09.spec): the engine
// runs the 3 x 11 points concurrently and this binary reads the achieved
// long-run ratios out of the per-point results.
#include "bench_util.hpp"
#include "experiment/figures.hpp"
#include "sweep/campaign.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 9 — controllability, two classes",
                "achieved long-run slowdown ratio S2/S1 vs load for target "
                "ratios 2, 4, 8",
                runs);

  const auto result = bench::two_class_load_campaign({2.0, 4.0, 8.0}, runs);

  Table t({"load%", "achieved (target 2)", "achieved (target 4)",
           "achieved (target 8)"});
  for (double load : standard_load_sweep()) {
    std::vector<std::string> row = {Table::fmt(load, 0)};
    for (double d2 : {2.0, 4.0, 8.0}) {
      const auto& r = bench::point_for(result, d2, load).result;
      row.push_back(Table::fmt(r.mean_ratio[1], 2));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return 0;
}
