// Cluster-tier benchmark: assignment-router dispatch cost per policy, plus
// deterministic differentiation-quality records from ManualClock cluster
// runs.
//
// Appends JSONL records to BENCH_cluster.json (suite "cluster"):
//
//   * route_<policy>   — ns per AssignmentRouter::route() decision at 4
//                        nodes, the pure dispatch overhead every cluster
//                        arrival pays (min-of-k, machine-dependent).
//   * quality_<policy> — cluster-wide windowed-median ratio error of a
//                        4-node ManualClock run, ENCODED as ns_per_op =
//                        1e4 x error so the ordinary ns_per_op gate arms
//                        it.  The run is bitwise deterministic, so the
//                        gated value moves only when behavior changes —
//                        this is a drift tripwire, not a perf number.
//
//   ./micro_cluster [records.json]     (default BENCH_cluster.json)
#include <string>
#include <vector>

#include "cluster/cluster_runtime.hpp"
#include "cluster/dispatcher.hpp"
#include "dist/sampler.hpp"
#include "json_bench.hpp"

namespace {

using namespace psd;

constexpr std::size_t kNodes = 4;

double route_cost_ns(const AssignmentSpec& spec) {
  std::vector<double> cutoffs;
  if (spec.policy == AssignmentPolicy::kSizeInterval) {
    cutoffs = sita_equal_load_cutoffs(BoundedPareto(1.5, 0.1, 100.0), kNodes);
  }
  AssignmentRouter router(spec, kNodes, Rng(0xC1A5Bu), std::move(cutoffs));

  // Pre-drawn request sizes (the SITA band lookup cost depends on them) and
  // a rotating synthetic load vector (the LWL/JSQ scan input).
  const SamplerVariant sampler =
      make_sampler(DistSpec::bounded_pareto(1.5, 0.1, 100.0));
  Rng rng(0xD15Bu);
  std::vector<double> sizes(4096);
  for (auto& s : sizes) s = const_cast<SamplerVariant&>(sampler).sample(rng);
  std::vector<double> load(kNodes, 0.0);
  std::size_t i = 0;
  return bench::min_ns_per_op(1 << 14, 1 << 18, 5, [&] {
    load[i & (kNodes - 1)] = static_cast<double>((i * 7) % 13);
    const std::size_t n = router.route(sizes[i & 4095], load);
    ++i;
    return static_cast<double>(n);
  });
}

double quality_ratio_error(const AssignmentSpec& spec) {
  rt::ClusterRtConfig cfg;
  cfg.nodes = kNodes;
  cfg.assignment = spec;
  cfg.node.delta = {1.0, 2.0};
  cfg.node.load = 0.6;
  // SITA-E requires (and is built for) the heavy-tailed default; JSQ(2)'s
  // sampled-of-2 signal is seed-noisy under bounded-pareto giants on
  // 1-shard nodes, so its tripwire runs the light-tailed uniform dist —
  // the same split the CI smokes use.
  if (spec.policy != AssignmentPolicy::kSizeInterval) {
    cfg.node.size_dist = DistSpec::uniform(0.5, 1.5);
  }
  cfg.node.warmup = 0.5;
  cfg.node.duration = 4.0;
  cfg.node.seed = 0xBE9C4u;
  rt::ClusterRuntime cluster(cfg, rt::ManualClock());
  // Step at the inter-arrival timescale: coarse manual steps batch arrivals
  // and the co-batched classes then share GPS capacity from equal start
  // times, compressing the measured ratio toward 1.
  for (double t = 0.0; t < cfg.node.duration; t += 0.0002) {
    cluster.step_to(t);
  }
  cluster.step_to(cfg.node.duration);
  cluster.quiesce();
  cluster.finish();
  return cluster.report().max_window_ratio_error;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_cluster.json";

  const std::vector<AssignmentSpec> policies = {
      AssignmentPolicy::kRandom,
      AssignmentPolicy::kRoundRobin,
      AssignmentPolicy::kLeastWorkLeft,
      AssignmentPolicy::kSizeInterval,
      {AssignmentPolicy::kJsq, 2},
  };

  for (const AssignmentSpec& spec : policies) {
    const double ns = route_cost_ns(spec);
    bench::emit_record(path, "cluster", "route_" + spec.name(),
                       "\"impl\":\"router\",\"nodes\":4", ns, 1 << 18);
  }

  // Quality tripwires: deterministic, so the 25% gate effectively demands
  // "unchanged" — JSQ(2) and SITA-E exercise both router load signals.
  for (const AssignmentSpec& spec :
       {AssignmentSpec{AssignmentPolicy::kJsq, 2},
        AssignmentSpec{AssignmentPolicy::kSizeInterval}}) {
    const double err = quality_ratio_error(spec);
    bench::emit_record(path, "cluster", "quality_" + spec.name(),
                       "\"impl\":\"manualclock\",\"nodes\":4,"
                       "\"window_ratio_error\":" +
                           bench::json_num(err),
                       err * 1e4, 1);
  }
  return 0;
}
