// Figure 8: slowdowns of individual requests in [60000, 61000) tu at 90%
// load.  Paper shape: heavy backlogs; in the paper's sampled window class-1
// requests experienced LARGER slowdowns than class-2 (achieved window ratio
// 0.33 instead of 2) — short-timescale predictability is weak because the
// allocator acts on class load, not per-request slowdowns.  Our summary
// reports the same achieved-vs-target window ratio.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "experiment/figures.hpp"

namespace {

void individual_report(double load_percent, std::uint64_t run_index) {
  using namespace psd;
  auto cfg = individual_request_scenario(load_percent);
  const auto r = run_scenario(cfg, run_index);

  std::vector<std::vector<double>> sd(2);
  for (const auto& req : r.records) sd[req.cls].push_back(req.slowdown());
  double s1 = 0, s2 = 0;
  for (double x : sd[0]) s1 += x;
  for (double x : sd[1]) s2 += x;
  const double m1 = sd[0].empty() ? 0 : s1 / sd[0].size();
  const double m2 = sd[1].empty() ? 0 : s2 / sd[1].size();
  double mx1 = 0, mx2 = 0;
  for (double x : sd[0]) mx1 = std::max(mx1, x);
  for (double x : sd[1]) mx2 = std::max(mx2, x);

  std::cout << "run " << run_index << ":  n1=" << sd[0].size()
            << " mean S1=" << Table::fmt(m1, 2)
            << " max S1=" << Table::fmt(mx1, 1) << "   n2=" << sd[1].size()
            << " mean S2=" << Table::fmt(m2, 2)
            << " max S2=" << Table::fmt(mx2, 1) << "   window ratio S2/S1="
            << Table::fmt(m2 / std::max(m1, 1e-12), 2) << "\n";
}

}  // namespace

int main() {
  psd::bench::header(
      "Figure 8 — individual request slowdowns, 90% load",
      "single runs, deltas (1,2); the windowed ratio can deviate far from "
      "the target 2 (the paper observed 0.33) — weak short-timescale "
      "predictability",
      1);
  // Several independent runs of the same window show both on-target and
  // inverted short-timescale behaviour.
  for (std::uint64_t run = 0; run < 6; ++run) individual_report(90.0, run);
  return 0;
}
