// Figure 12: influence of the Bounded Pareto upper bound p on experienced
// slowdowns, p in [100, 10000] (log axis), deltas (1, 2), fixed load.
//
// Paper shape: slowdown *increases* with p (heavier tail => larger E[X^2],
// with E[1/X] nearly unchanged), while differentiation predictability is
// unaffected — simulated still tracks eq. 18 and the ratio stays 2.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  const double load = 80.0;
  bench::header("Figure 12 — influence of the upper bound p",
                "BP(1.5, 0.1, p), deltas (1,2), load 80%", runs);
  Table t({"p", "S1 sim", "S1 exp", "S2 sim", "S2 exp", "ratio"});
  for (double p : upper_bound_sweep()) {
    auto cfg = two_class_scenario(2.0, load);
    cfg.size_dist = DistSpec::bounded_pareto(1.5, 0.1, p);
    const auto r = run_replications(cfg, runs);
    t.add_row({Table::fmt(p, 0), Table::fmt(r.slowdown[0].mean, 2),
               Table::fmt(r.expected[0], 2), Table::fmt(r.slowdown[1].mean, 2),
               Table::fmt(r.expected[1], 2), Table::fmt(r.mean_ratio[1], 2)});
  }
  t.print(std::cout);
  return 0;
}
