// Ablation A6: PSD on a server cluster under different task-assignment
// policies (Harchol-Balter [13], Zhu et al. [25] — the slowdown literature
// the paper builds on).
//
// Four unit-capacity nodes, each running the full eq.-17 pipeline; the
// dispatcher varies.  Expected (Harchol-Balter's classic result): under
// heavy-tailed sizes, SITA-E (size-interval assignment) crushes random and
// round-robin on mean slowdown because small jobs never queue behind
// monsters; least-work-left sits between.  The PSD ratio stays near the
// target under per-node allocation for the class-blind policies; SITA-E
// segregates sizes, which interacts with per-node estimation.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "cluster/dispatcher.hpp"
#include "core/psd_rate_allocator.hpp"
#include "sched/dedicated_rate.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace psd;
  const std::size_t kNodes = 4;
  const double kLoad = 0.7;
  bench::header("Ablation A6 — cluster task assignment x PSD",
                "4 nodes, deltas (1,2), 70% per-node load, BP(1.5,0.1,100)",
                1);

  BoundedPareto bp(1.5, 0.1, 100.0);
  const std::vector<double> delta = {1.0, 2.0};

  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 290.0;
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 3000.0;
  sc.metrics.window = 290.0;

  PsdAllocatorConfig pc;
  pc.delta = delta;
  pc.mean_size = bp.mean();

  struct Row {
    const char* label;
    AssignmentPolicy policy;
  };
  const Row rows[] = {
      {"random", AssignmentPolicy::kRandom},
      {"round-robin", AssignmentPolicy::kRoundRobin},
      {"least-work-left", AssignmentPolicy::kLeastWorkLeft},
      {"SITA-E (size intervals)", AssignmentPolicy::kSizeInterval},
  };

  Table t({"assignment", "S1", "S2", "ratio", "system slowdown",
           "completed"});
  for (const auto& row : rows) {
    Simulator sim;
    std::vector<double> cutoffs;
    if (row.policy == AssignmentPolicy::kSizeInterval) {
      cutoffs = sita_equal_load_cutoffs(bp, kNodes);
    }
    Cluster cluster(
        sim, kNodes, sc, [] { return std::make_unique<DedicatedRateBackend>(); },
        [pc] { return std::make_unique<PsdRateAllocator>(pc); }, row.policy,
        Rng(13), cutoffs);
    cluster.start(0.0);

    const auto lam = rates_for_equal_load(kLoad * kNodes, 1.0, bp.mean(), 2);
    std::vector<std::unique_ptr<RequestGenerator>> gens;
    for (ClassId c = 0; c < 2; ++c) {
      gens.push_back(std::make_unique<RequestGenerator>(
          sim, Rng(40 + c), c, PoissonArrivals(lam[c]),
          BoundedParetoSampler(bp), cluster));
      gens.back()->start(0.0);
    }
    sim.run_until(30000.0);
    cluster.finalize();

    const auto sd = cluster.mean_slowdowns();
    double weighted = 0.0;
    std::uint64_t total = cluster.completed_total();
    for (ClassId c = 0; c < 2; ++c) {
      std::uint64_t cc = 0;
      for (std::size_t nn = 0; nn < kNodes; ++nn) {
        cc += cluster.node(nn).metrics().completed(c);
      }
      weighted += sd[c] * static_cast<double>(cc);
    }
    weighted /= static_cast<double>(total);
    t.add_row({row.label, Table::fmt(sd[0], 2), Table::fmt(sd[1], 2),
               Table::fmt(sd[1] / sd[0], 2), Table::fmt(weighted, 2),
               std::to_string(total)});
  }
  t.print(std::cout);
  std::cout << "\nSITA-E's size segregation slashes the system slowdown under "
               "heavy tails\n(small jobs never wait behind monsters) — the "
               "effect Harchol-Balter [13]\nidentified with this same metric.\n";
  return 0;
}
