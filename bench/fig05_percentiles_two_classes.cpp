// Figure 5: 5th/50th/95th percentiles of per-window (1000 tu) slowdown
// ratios for two classes, delta2/delta1 in {2, 4, 8}, across the load sweep.
//
// Paper shape: the 50th percentile sits near the target ratio; the spread is
// wide at low load (95th percentile ~12 and beyond at 10% load for ratio 4,
// one callout of 27.07 for ratio 8) and tightens as load grows; for ratio 2
// at 10% load the 5th percentile dips below 1 (short-timescale inversion).
//
// Runs as ONE campaign on the shared sweep pool: the 3 x 11 grid executes
// scenarios x replications concurrently instead of point by point.  The
// same grid is expressible declaratively as campaigns/fig05_fig09.spec
// (whose JSONL carries both this figure's percentiles and Fig. 9's ratios).
#include "bench_util.hpp"
#include "experiment/figures.hpp"
#include "sweep/campaign.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header(
      "Figure 5 — percentiles of windowed slowdown ratios, two classes",
      "per 1000-tu window: ratio = mean slowdown(class2)/mean slowdown(class1)"
      "; pooled over windows x runs",
      runs);

  const auto result = bench::two_class_load_campaign({2.0, 4.0, 8.0}, runs);

  for (double d2 : {2.0, 4.0, 8.0}) {
    std::cout << "--- delta2/delta1 = " << d2 << " ---\n";
    Table t({"load%", "p5", "p50", "p95", "mean", "windows"});
    for (double load : standard_load_sweep()) {
      const auto& r = bench::point_for(result, d2, load).result;
      t.add_row({Table::fmt(load, 0), Table::fmt(r.ratio[0].p5, 2),
                 Table::fmt(r.ratio[0].p50, 2), Table::fmt(r.ratio[0].p95, 2),
                 Table::fmt(r.ratio[0].mean, 2),
                 std::to_string(r.ratio[0].windows)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
