// Figure 2: simulated vs expected slowdowns of two classes,
// deltas (1, 2), BP(1.5, 0.1, 100), equal class loads, load sweep.
//
// Paper shape: both curves grow hyperbolically in load (log-y from ~1 at 10%
// to ~100 near saturation); simulated tracks eq. 18; class 2 is pinned at 2x
// class 1.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 2 — effectiveness, two classes (delta1:delta2 = 1:2)",
                "paper protocol: warmup 10k tu, measure 60k tu, realloc every "
                "1k tu, estimate over last 5k tu",
                runs);
  auto cfg = two_class_scenario(2.0, 50.0);
  bench::effectiveness_sweep(cfg, standard_load_sweep(), runs);
  return 0;
}
