// Real-time runtime benchmark: requests/sec through the full rt stack and
// achieved-vs-target slowdown ratio error at load 30 / 60 / 90.
//
// Appends one JSONL record per load point to BENCH_rt.json (suite "rt").
// Because the load generators are open loop, ops_per_sec tracks the OFFERED
// rate whenever the runtime keeps up — so the gated number asserts "the
// stack sustained the load without stalling or dropping", which is stable
// across machines, unlike a saturation throughput.  ratio_error rides along
// ungated as the differentiation-quality trend.
//
//   ./micro_rt [records.json]     (default BENCH_rt.json)
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "json_bench.hpp"
#include "rt/runtime.hpp"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_rt.json";

  for (const double load : {0.3, 0.6, 0.9}) {
    psd::rt::RtConfig cfg;
    cfg.delta = {1.0, 2.0};
    cfg.load = load;
    cfg.mean_service_seconds = 1e-4;
    cfg.warmup = 0.5;
    cfg.duration = 2.5;
    cfg.seed = 0xBE7C4ULL;

    psd::rt::Runtime runtime(cfg, psd::rt::SteadyClock());
    const psd::rt::RtReport r = runtime.run();

    std::ostringstream extra;
    extra << "\"impl\":\"threaded\",\"load\":" << static_cast<int>(load * 100)
          << ",\"shards\":" << cfg.shards
          << ",\"ratio_error\":" << psd::bench::json_num(r.max_ratio_error)
          << ",\"window_ratio_error\":"
          << psd::bench::json_num(r.max_window_ratio_error)
          << ",\"dropped\":" << r.dropped;
    psd::bench::emit_record(
        path, "rt", "serve_load" + std::to_string(static_cast<int>(load * 100)),
        extra.str(), 1e9 / r.requests_per_sec, r.completed_all);
    std::printf("  load %.0f%%: %.0f req/s, ratio error %.1f%%\n\n",
                load * 100, r.requests_per_sec, r.max_ratio_error * 100);
  }
  return 0;
}
