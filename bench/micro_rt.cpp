// Real-time runtime benchmark: requests/sec through the full rt stack and
// achieved-vs-target slowdown ratio error at load 30 / 60 / 90.
//
// Appends one JSONL record per load point to BENCH_rt.json (suite "rt").
// Because the load generators are open loop, ops_per_sec tracks the OFFERED
// rate whenever the runtime keeps up — so the gated number asserts "the
// stack sustained the load without stalling or dropping", which is stable
// across machines, unlike a saturation throughput.  ratio_error rides along
// ungated as the differentiation-quality trend.
//
//   ./micro_rt [records.json]     (default BENCH_rt.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include "json_bench.hpp"
#include "rt/runtime.hpp"
#include "rt/shard.hpp"

namespace {

// Telemetry / tracing overhead probe: the submit -> drain -> complete path
// on one shard, driven in model time on this thread (no open-loop pacing,
// so the measured ns/request is the actual per-request cost and the
// telemetry branch + histogram updates — or the trace-sampling branch +
// span matching + ring pushes — show up directly).
//
// One timed rep of identical work, the probed feature off or on:
double shard_drain_rep_ns(bool telemetry, bool tracing,
                          std::uint64_t* requests_out) {
  constexpr int kBatch = 512;    // requests per drain cycle
  constexpr int kIters = 400;    // drain cycles per timed rep
  constexpr double kSize = 1e-5;  // work units; 2e-5 s at the 0.5 split

  psd::rt::ShardConfig cfg;
  cfg.num_classes = 2;
  cfg.window = 0.05;
  cfg.bucket_burst_seconds = 10.0;
  cfg.telemetry = telemetry;
  cfg.tracing = tracing;
  cfg.trace_sample_period = 64;
  // Nothing drains the ring inside a rep; size it past the sampled span
  // count (kIters * kBatch / 64 = 3200) so every push pays the slot-write
  // cost, not the cheaper drop path.
  cfg.span_ring_capacity = 1 << 13;
  psd::rt::Shard shard(cfg, psd::Rng(0xD2A1Bu));

  // ~43k requests per MODEL second — production-like density, so costs
  // paid on a model-time cadence (estimator rolls, telemetry publishes)
  // amortize over a realistic request count instead of dominating the
  // per-request figure the way they would at a toy arrival rate.
  double t = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < kIters; ++it) {
    for (int i = 0; i < kBatch; ++i) {
      psd::Request r;
      r.cls = static_cast<psd::ClassId>(i & 1);
      r.arrival = t + i * 1e-8;
      r.size = kSize;
      shard.submit(r);
    }
    // Service time per class: (kBatch/2) * kSize / 0.5 = 0.00512 s.
    t += 0.006;
    shard.drain(t);  // pop + schedule
    t += 0.006;
    shard.drain(t);  // fire every completion
  }
  const auto done = std::chrono::steady_clock::now();
  *requests_out = static_cast<std::uint64_t>(kIters) * kBatch;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(done - start)
                 .count()) /
         static_cast<double>(kIters * kBatch);
}

// Off/on reps INTERLEAVED (off, on, off, on, ...) so slow drift in machine
// state — frequency scaling, cache pollution from other processes — hits
// both sides equally instead of biasing whichever block ran second; best-of
// per side then strips the remaining upward noise.  The ratio is computed
// in-process, which keeps the gate meaningful on slow machines: both sides
// see the same machine.
//
// The rep count is ADAPTIVE: a fixed count lets one side's min converge
// while the other side never catches a quiet scheduling window, and the
// resulting differential luck is exactly what a <5% gate cannot tolerate.
// Pairs keep running until the ratio of mins has been stable to 0.3% for
// eight consecutive pairs (or the cap is hit).
// `tracing_probe` selects what "on" means: the telemetry histograms
// (false) or the 1-in-64 span sampling path (true); "off" is a bare shard
// either way.
void shard_drain_ns(bool tracing_probe, double* off_ns, double* on_ns,
                    std::uint64_t* requests_out) {
  constexpr int kMinReps = 20;
  constexpr int kMaxReps = 64;
  constexpr int kStableWindow = 8;
  constexpr double kStableTol = 0.003;
  *off_ns = std::numeric_limits<double>::infinity();
  *on_ns = std::numeric_limits<double>::infinity();
  double last_ratio = 0.0;
  int stable = 0;
  for (int rep = 0; rep < kMaxReps + 1; ++rep) {  // rep 0 = warmup, untimed
    const double off = shard_drain_rep_ns(false, false, requests_out);
    const double on = tracing_probe
                          ? shard_drain_rep_ns(false, true, requests_out)
                          : shard_drain_rep_ns(true, false, requests_out);
    if (rep == 0) continue;
    *off_ns = std::min(*off_ns, off);
    *on_ns = std::min(*on_ns, on);
    const double ratio = *on_ns / *off_ns;
    stable = std::abs(ratio - last_ratio) <= kStableTol ? stable + 1 : 0;
    last_ratio = ratio;
    if (rep >= kMinReps && stable >= kStableWindow) break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_rt.json";

  // --- telemetry overhead: off vs on through the same drain loop ---
  std::uint64_t drain_requests = 0;
  double off_ns = 0.0;
  double on_ns = 0.0;
  shard_drain_ns(/*tracing_probe=*/false, &off_ns, &on_ns, &drain_requests);
  const double overhead = on_ns / off_ns - 1.0;
  psd::bench::emit_record(path, "rt", "shard_drain_telem_off",
                          "\"impl\":\"drain\"", off_ns, drain_requests);
  std::ostringstream on_extra;
  on_extra << "\"impl\":\"drain\",\"overhead_vs_off\":"
           << psd::bench::json_num(overhead);
  psd::bench::emit_record(path, "rt", "shard_drain_telem_on",
                          on_extra.str(), on_ns, drain_requests);
  std::printf(
      "  shard drain: %.0f ns/req off, %.0f ns/req on (telemetry %+.1f%%)\n\n",
      off_ns, on_ns, overhead * 100.0);
  if (overhead >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.1f%% exceeds the 5%% budget\n",
                 overhead * 100.0);
    return 1;
  }

  // --- tracing overhead: 1-in-64 span sampling vs a bare shard ---
  double trace_off_ns = 0.0;
  double trace_on_ns = 0.0;
  shard_drain_ns(/*tracing_probe=*/true, &trace_off_ns, &trace_on_ns,
                 &drain_requests);
  const double trace_overhead = trace_on_ns / trace_off_ns - 1.0;
  psd::bench::emit_record(path, "rt", "shard_drain_trace_off",
                          "\"impl\":\"drain\"", trace_off_ns, drain_requests);
  std::ostringstream trace_extra;
  trace_extra << "\"impl\":\"drain\",\"overhead_vs_off\":"
              << psd::bench::json_num(trace_overhead);
  psd::bench::emit_record(path, "rt", "shard_drain_trace_on",
                          trace_extra.str(), trace_on_ns, drain_requests);
  std::printf(
      "  shard drain: %.0f ns/req off, %.0f ns/req on (tracing %+.1f%%)\n\n",
      trace_off_ns, trace_on_ns, trace_overhead * 100.0);
  if (trace_overhead >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: tracing overhead %.1f%% exceeds the 5%% budget\n",
                 trace_overhead * 100.0);
    return 1;
  }

  for (const double load : {0.3, 0.6, 0.9}) {
    psd::rt::RtConfig cfg;
    cfg.delta = {1.0, 2.0};
    cfg.load = load;
    cfg.mean_service_seconds = 1e-4;
    cfg.warmup = 0.5;
    cfg.duration = 2.5;
    cfg.seed = 0xBE7C4ULL;

    psd::rt::Runtime runtime(cfg, psd::rt::SteadyClock());
    const psd::rt::RtReport r = runtime.run();

    std::ostringstream extra;
    extra << "\"impl\":\"threaded\",\"load\":" << static_cast<int>(load * 100)
          << ",\"shards\":" << cfg.shards
          << ",\"ratio_error\":" << psd::bench::json_num(r.max_ratio_error)
          << ",\"window_ratio_error\":"
          << psd::bench::json_num(r.max_window_ratio_error)
          << ",\"dropped\":" << r.dropped;
    psd::bench::emit_record(
        path, "rt", "serve_load" + std::to_string(static_cast<int>(load * 100)),
        extra.str(), 1e9 / r.requests_per_sec, r.completed_all);
    std::printf("  load %.0f%%: %.0f req/s, ratio error %.1f%%\n\n",
                load * 100, r.requests_per_sec, r.max_ratio_error * 100);
  }
  return 0;
}
