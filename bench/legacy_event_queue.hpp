// Bench-only reference implementation: the pre-optimization event queue
// (binary std::push_heap/pop_heap over fat entries, std::function payloads,
// one shared_ptr<bool> cancellation token per cancellable event).  Kept so
// micro_event_queue can report before/after numbers from a single binary;
// NOT part of the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd::bench {

using LegacyEventFn = std::function<void()>;

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;
  explicit LegacyEventHandle(std::shared_ptr<bool> s) : state_(std::move(s)) {}

  bool pending() const { return state_ && !*state_; }
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  std::shared_ptr<bool> state_;  ///< true == cancelled-or-fired.
};

class LegacyEventQueue {
 public:
  LegacyEventHandle schedule(Time t, LegacyEventFn fn) {
    auto state = std::make_shared<bool>(false);
    heap_.push_back(Entry{t, seq_++, std::move(fn), state});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
    return LegacyEventHandle(std::move(state));
  }

  void schedule_fast(Time t, LegacyEventFn fn) {
    heap_.push_back(Entry{t, seq_++, std::move(fn), nullptr});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
  }

  bool empty() const {
    skip_cancelled();
    return heap_.empty();
  }

  Time pop_and_run() {
    skip_cancelled();
    PSD_CHECK(!heap_.empty(), "pop from empty event queue");
    std::pop_heap(heap_.begin(), heap_.end(), Greater{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (e.cancelled) *e.cancelled = true;
    e.fn();
    return e.time;
  }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    LegacyEventFn fn;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const { return a > b; }
  };

  void skip_cancelled() const {
    while (!heap_.empty() && heap_.front().cancelled &&
           *heap_.front().cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater{});
      heap_.pop_back();
    }
  }

  mutable std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace psd::bench
