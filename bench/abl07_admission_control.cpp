// Ablation A7: admission control under overload.  eq. 17 requires rho < 1;
// when demand exceeds capacity the bare allocator can only clamp (every
// queue then grows without bound).  The gates shed lower classes to keep
// admitted demand feasible — the paper's §5 companion mechanism
// (Abdelzaher-style utilization control, plus our eq.-18-native
// slowdown-budget gate).
//
// Expected: without a gate, all slowdowns explode as offered load passes 1.
// With either gate the highest class keeps a bounded slowdown; the
// slowdown-budget gate holds E[S1] near its target budget.
#include <iostream>
#include <memory>

#include "admission/admission.hpp"
#include "bench_util.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/generator.hpp"

namespace {

struct Outcome {
  double s1 = 0, s2 = 0;
  std::uint64_t done1 = 0, done2 = 0, rejected = 0;
};

Outcome run_with_gate(double offered_load, int gate_kind) {
  using namespace psd;
  BoundedPareto bp(1.5, 0.1, 100.0);
  Simulator sim;

  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 290.0;
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 3000.0;
  sc.metrics.window = 290.0;

  PsdAllocatorConfig pc;
  pc.delta = {1.0, 2.0};
  pc.mean_size = bp.mean();

  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                std::make_unique<PsdRateAllocator>(pc), Rng(5));
  if (gate_kind == 1) {
    server.set_admission(
        std::make_unique<UtilizationGate>(2, bp.mean(), 1.0, 0.9));
  } else if (gate_kind == 2) {
    server.set_admission(std::make_unique<SlowdownBudgetGate>(
        std::vector<double>{1.0, 2.0}, BoundedParetoSampler(bp), 1.0,
        /*max unit slowdown*/ 30.0));
  }
  server.start(0.0);

  const auto lam = rates_for_equal_load(offered_load, 1.0, bp.mean(), 2);
  std::vector<std::unique_ptr<RequestGenerator>> gens;
  for (ClassId c = 0; c < 2; ++c) {
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(60 + c), c, PoissonArrivals(lam[c]),
        BoundedParetoSampler(bp), server));
    gens.back()->start(0.0);
  }
  sim.run_until(25000.0);
  server.finalize();

  Outcome o;
  o.s1 = server.metrics().slowdown(0).mean();
  o.s2 = server.metrics().slowdown(1).mean();
  o.done1 = server.metrics().completed(0);
  o.done2 = server.metrics().completed(1);
  o.rejected = server.rejected_total();
  return o;
}

}  // namespace

int main() {
  using namespace psd;
  bench::header("Ablation A7 — admission control under overload",
                "deltas (1,2); offered load swept past saturation", 1);
  const char* names[] = {"none", "utilization gate (0.9)",
                         "slowdown budget (30/delta-unit)"};
  for (int gate = 0; gate < 3; ++gate) {
    std::cout << "--- gate: " << names[gate] << " ---\n";
    Table t({"offered load", "S1", "S2", "done1", "done2", "rejected"});
    for (double load : {0.7, 0.95, 1.2, 1.6}) {
      const auto o = run_with_gate(load, gate);
      t.add_row({Table::fmt(load, 2), Table::fmt(o.s1, 1),
                 Table::fmt(o.s2, 1), std::to_string(o.done1),
                 std::to_string(o.done2), std::to_string(o.rejected)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Without a gate, slowdowns blow up past load 1.0; the "
               "utilization gate\nbounds them by shedding class 2; the "
               "eq.-18 budget gate additionally keeps\nE[S1] near its "
               "configured budget.\n";
  return 0;
}
