// Figure 7: slowdowns of individual requests in t in [60000, 61000) tu at
// 50% system load, deltas (1, 2) — the paper's short-timescale
// predictability probe.
//
// Paper shape: at moderate load the two classes' per-request slowdowns
// interleave; some class-1 requests see *larger* slowdowns than class-2
// requests even though the long-run target ratio is 2 (weak short-timescale
// predictability).  We print a compact per-sub-interval summary plus the
// largest individual slowdowns per class and the window-wide achieved ratio.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "experiment/figures.hpp"

namespace {

void individual_report(double load_percent) {
  using namespace psd;
  auto cfg = individual_request_scenario(load_percent);
  const auto r = run_scenario(cfg, 0);
  const double unit = r.time_unit;

  // Per-class aggregates over the recorded window.
  std::vector<std::vector<double>> sd(2);
  for (const auto& req : r.records) sd[req.cls].push_back(req.slowdown());

  std::cout << "recorded completions in [60000, 61000) tu:  class1="
            << sd[0].size() << "  class2=" << sd[1].size() << "\n\n";

  // 10 sub-intervals of 100 tu: count / mean / max per class.
  Table t({"sub-interval (tu)", "n1", "mean S1", "max S1", "n2", "mean S2",
           "max S2"});
  for (int k = 0; k < 10; ++k) {
    const double lo = (60000.0 + 100.0 * k) * unit;
    const double hi = lo + 100.0 * unit;
    double m[2] = {0, 0}, mx[2] = {0, 0};
    int n[2] = {0, 0};
    for (const auto& req : r.records) {
      if (req.departure < lo || req.departure >= hi) continue;
      const double s = req.slowdown();
      m[req.cls] += s;
      mx[req.cls] = std::max(mx[req.cls], s);
      ++n[req.cls];
    }
    t.add_row({"[" + std::to_string(60000 + 100 * k) + "," +
                   std::to_string(60100 + 100 * k) + ")",
               std::to_string(n[0]), Table::fmt(n[0] ? m[0] / n[0] : 0, 1),
               Table::fmt(mx[0], 1), std::to_string(n[1]),
               Table::fmt(n[1] ? m[1] / n[1] : 0, 1), Table::fmt(mx[1], 1)});
  }
  t.print(std::cout);

  for (int c = 0; c < 2; ++c) {
    auto v = sd[c];
    std::sort(v.rbegin(), v.rend());
    std::cout << "\nclass " << c + 1 << " top-5 slowdowns:";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, v.size()); ++i) {
      std::cout << ' ' << Table::fmt(v[i], 1);
    }
  }
  double s1 = 0, s2 = 0;
  for (double x : sd[0]) s1 += x;
  for (double x : sd[1]) s2 += x;
  const double m1 = sd[0].empty() ? 0 : s1 / sd[0].size();
  const double m2 = sd[1].empty() ? 0 : s2 / sd[1].size();
  std::cout << "\n\nwindow-wide mean slowdowns: S1=" << Table::fmt(m1, 2)
            << "  S2=" << Table::fmt(m2, 2)
            << "  achieved ratio=" << Table::fmt(m2 / std::max(m1, 1e-12), 2)
            << "  (long-run target 2.0 — short-timescale deviation expected)"
            << "\n";
}

}  // namespace

int main() {
  psd::bench::header(
      "Figure 7 — individual request slowdowns, 50% load",
      "single run, deltas (1,2); per-request slowdowns in [60000, 61000) tu",
      1);
  individual_report(50.0);
  return 0;
}
