// Ablation A3: can anything else provide PSD?  Paper §5 argues that neither
// rate-based PDD schemes nor time-dependent-priority PDD schedulers (WTP /
// PAD / HPD) can, because they never look at service times.  This bench runs
// the PSD allocator against those baselines on identical workloads and
// reports achieved *slowdown* ratios and *delay* ratios.
//
// Expected: only psd-eq17 pins the slowdown ratio at the target; equal-share
// yields ~1; WTP/PAD/HPD steer the DELAY ratio toward the target instead
// (their design goal) while their slowdown ratio drifts; strict priority
// over-serves class 1 without any controllable spacing.
#include <memory>

#include "bench_util.hpp"
#include "baselines/pdd_policies.hpp"
#include "core/hetero_psd_allocator.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "experiment/figures.hpp"
#include "sched/dedicated_rate.hpp"
#include "server/server.hpp"
#include "workload/generator.hpp"

namespace {

// Part 2: classes with DIFFERENT service-time distributions — the regime
// where proportional *delay* and proportional *slowdown* truly diverge,
// because E[S_i] = E[W_i] * E[1/X_i] and the E[1/X_i] differ per class.
void heterogeneous_comparison() {
  using namespace psd;
  Deterministic d0(0.5);                 // E[1/X] = 2.0
  BoundedPareto d1(1.5, 0.1, 100.0);     // E[1/X] = 6.0
  const std::vector<double> delta = {1.0, 2.0};
  // Equal work demand per class: lambda_i * E[X_i] = 0.35.
  const std::vector<double> lam = {0.35 / d0.mean(), 0.35 / d1.mean()};

  struct Row {
    const char* label;
    bool use_psd;    // hetero-PSD allocator on dedicated backend vs WTP
  };
  const Row rows[] = {{"hetero psd-eq17", true}, {"wtp (PDD)", false}};

  Table t({"policy", "S1", "S2", "slowdown ratio", "delay ratio"});
  for (const auto& row : rows) {
    Simulator sim;
    ServerConfig sc;
    sc.num_classes = 2;
    sc.realloc_period = row.use_psd ? 290.0 : 0.0;
    sc.metrics.num_classes = 2;
    sc.metrics.warmup_end = 3000.0;
    sc.metrics.window = 290.0;

    std::unique_ptr<SchedulerBackend> backend;
    std::unique_ptr<RateAllocator> alloc;
    if (row.use_psd) {
      backend = std::make_unique<DedicatedRateBackend>();
      alloc = std::make_unique<HeteroPsdAllocator>(
          delta, std::vector<SamplerVariant>{DeterministicSampler(d0.value()),
                                             BoundedParetoSampler(d1)});
    } else {
      backend = make_wtp_backend(delta);
    }
    Server server(sim, sc, std::move(backend), std::move(alloc), Rng(21));
    server.start(0.0);

    std::vector<std::unique_ptr<RequestGenerator>> gens;
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(31), 0, PoissonArrivals(lam[0]),
        DeterministicSampler(d0.value()),
        server));
    gens.push_back(std::make_unique<RequestGenerator>(
        sim, Rng(32), 1, PoissonArrivals(lam[1]), BoundedParetoSampler(d1),
        server));
    for (auto& g : gens) g->start(0.0);
    sim.run_until(40000.0);
    server.finalize();

    const double s1 = server.metrics().slowdown(0).mean();
    const double s2 = server.metrics().slowdown(1).mean();
    const double w1 = server.metrics().delay(0).mean();
    const double w2 = server.metrics().delay(1).mean();
    t.add_row({row.label, Table::fmt(s1, 2), Table::fmt(s2, 2),
               Table::fmt(s2 / s1, 2), Table::fmt(w2 / w1, 2)});
  }
  std::cout << "\n--- part 2: heterogeneous class distributions "
               "(class 1 det(0.5), class 2 BP(1.5,0.1,100); target slowdown "
               "ratio 2) ---\n";
  t.print(std::cout);
  std::cout << "E[1/X] differs 2.0 vs 6.0 across classes, so delay "
               "proportionality and\nslowdown proportionality decouple: only "
               "the heterogeneous eq.-17 allocator\ncan target the slowdown "
               "ratio (paper §5's argument made concrete).\n";
}

}  // namespace

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A3 — PSD vs delay-oriented baselines",
                "deltas (1,2), 70% load; slowdown ratio target 2", runs);

  struct Row {
    const char* label;
    BackendKind backend;
    AllocatorKind alloc;
  };
  const Row rows[] = {
      {"psd-eq17 (paper)", BackendKind::kDedicated, AllocatorKind::kPsd},
      {"equal-share rates", BackendKind::kDedicated,
       AllocatorKind::kEqualShare},
      {"load-proportional rates", BackendKind::kDedicated,
       AllocatorKind::kLoadProportional},
      {"wtp (PDD)", BackendKind::kWtp, AllocatorKind::kNone},
      {"pad (PDD)", BackendKind::kPad, AllocatorKind::kNone},
      {"hpd (PDD)", BackendKind::kHpd, AllocatorKind::kNone},
      {"strict priority", BackendKind::kStrict, AllocatorKind::kNone},
  };

  Table t({"policy", "slowdown ratio S2/S1", "S1", "S2"});
  for (const auto& row : rows) {
    auto cfg = two_class_scenario(2.0, 70.0);
    cfg.backend = row.backend;
    cfg.allocator = row.alloc;
    const auto r = run_replications(cfg, runs);
    t.add_row({row.label, Table::fmt(r.mean_ratio[1], 2),
               Table::fmt(r.slowdown[0].mean, 2),
               Table::fmt(r.slowdown[1].mean, 2)});
  }
  t.print(std::cout);
  heterogeneous_comparison();
  return 0;
}
