// Ablation A8: overload survival at 1.2x / 1.5x / 2x capacity.
//
// The delta-aware proportional shedder thins every class so admitted demand
// fits under 0.8 of capacity; the adaptive eq.-17 allocator then holds the
// slowdown ratios among the (thinned) survivors.  admit-all is the
// degradation baseline: the gate is installed but sheds nothing, so every
// queue diverges together and differentiation collapses toward 1.0.
//
// Gate records (suite "overload", BENCH_overload.json) abuse ns_per_op as a
// generic lower-is-better metric so tools/bench_gate.py needs no changes:
//   overload_goodput_<load>    ns_per_op = 1000 / goodput_tu
//   overload_ratio_err_<load>  ns_per_op = survivor_ratio_err * 1e4
// A goodput drop or a ratio-integrity loss therefore reads as a perf
// regression.  The raw metrics ride along as extra fields for humans.
// Replication count is a fixed 8 (not PSD_RUNS-sensitive): the committed
// baseline is deterministic at the default seed, so the CI gate compares
// like against like.
#include <cmath>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace {

// The canonical overload operating point (src/admission/README.md): bexp
// sizes keep E[1/X] finite with a light tail; the adaptive allocator's
// feedback closes the model-mismatch gap that error-diffusion thinning
// opens (thinned streams are no longer Poisson, so static eq. 17 drifts).
psd::ScenarioConfig overload_point(double load, const std::string& adm) {
  psd::ScenarioConfig cfg;
  cfg.delta = {1.0, 2.0};
  cfg.load = load;
  cfg.size_dist = psd::DistSpec::bounded_exponential(1.0, 0.1, 10.0);
  cfg.allocator = psd::AllocatorKind::kAdaptivePsd;
  cfg.warmup_tu = 20000.0;
  cfg.measure_tu = 40000.0;
  cfg.admission = psd::AdmissionSpec::parse(adm);
  return cfg;
}

double shed_fraction(const psd::ReplicatedResult& r) {
  double frac = 0.0;
  for (double s : r.shed_rate) frac = std::max(frac, s);
  return frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psd;
  const std::string records =
      argc > 1 ? argv[1] : std::string("BENCH_overload.json");
  const std::size_t runs = 8;

  bench::header("Ablation A8 — overload survival",
                "deltas (1,2); bexp(1,0.1,10); adaptive eq. 17; "
                "delta-aware:0.8 vs admit-all",
                runs);

  Table t({"load", "policy", "goodput/tu", "worst shed%", "ratio err%"});
  for (double load : {1.2, 1.5, 2.0}) {
    ReplicatedResult gated;
    for (const char* adm : {"delta-aware:0.8", "admit-all"}) {
      const auto r = run_replications(overload_point(load, adm), runs);
      t.add_row({Table::fmt(load, 1), adm, Table::fmt(r.goodput_tu, 3),
                 Table::fmt(100.0 * shed_fraction(r), 1),
                 Table::fmt(100.0 * r.survivor_ratio_err, 1)});
      if (adm[0] == 'd') gated = r;
    }
    const std::string pct = std::to_string(static_cast<int>(load * 100));
    bench::emit_record(records, "overload", "overload_goodput_" + pct,
                       "\"impl\":\"delta-aware\",\"goodput_tu\":" +
                           bench::json_num(gated.goodput_tu),
                       1000.0 / gated.goodput_tu, runs);
    bench::emit_record(records, "overload", "overload_ratio_err_" + pct,
                       "\"impl\":\"delta-aware\",\"survivor_ratio_err\":" +
                           bench::json_num(gated.survivor_ratio_err),
                       1e4 * gated.survivor_ratio_err, runs);
  }
  t.print(std::cout);
  std::cout << "\nGoodput holds near the 0.8 admission target at every "
               "overload factor while\nadmit-all's ratio integrity "
               "collapses; see src/admission/README.md.\n";
  return 0;
}
