// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <iostream>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/table.hpp"

namespace psd::bench {

inline void header(const std::string& title, const std::string& paper_note,
                   std::size_t runs) {
  std::cout << "=== " << title << " ===\n"
            << paper_note << "\n"
            << "replications per point: " << runs
            << "  (override with PSD_RUNS, PSD_FAST=1 for smoke runs)\n\n";
}

/// Effectiveness rows (Figs. 2-4): per class, simulated vs eq.-18 expected.
inline void effectiveness_sweep(ScenarioConfig cfg,
                                const std::vector<double>& loads,
                                std::size_t runs) {
  const std::size_t n = cfg.num_classes();
  std::vector<std::string> cols = {"load%"};
  for (std::size_t i = 0; i < n; ++i) {
    cols.push_back("S" + std::to_string(i + 1) + " sim");
    cols.push_back("S" + std::to_string(i + 1) + " exp");
  }
  cols.push_back("system sim");
  cols.push_back("system exp");
  Table t(cols);
  for (double load : loads) {
    cfg.load = load / 100.0;
    const auto r = run_replications(cfg, runs);
    std::vector<double> row = {load};
    for (std::size_t i = 0; i < n; ++i) {
      row.push_back(r.slowdown[i].mean);
      row.push_back(r.expected[i]);
    }
    row.push_back(r.system_slowdown);
    row.push_back(r.expected_system);
    t.add_row(row, 3);
  }
  t.print(std::cout);
}

}  // namespace psd::bench
