// Shared helpers for the figure-reproduction bench binaries.
//
// Timing discipline for anything that lands in a BENCH_*.json record: use
// json_bench.hpp's warm-up + min-of-k harness (min_ns_per_op / the repeated
// scenario loops in micro_simulator) so numbers are stable enough to compare
// across PRs — single-shot timings drift with scheduler jitter and CPU
// frequency scaling.
#pragma once

#include <cmath>
#include <iostream>
#include <stdexcept>
#include <string>

#include "experiment/figures.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"
#include "json_bench.hpp"
#include "sweep/campaign.hpp"

namespace psd::bench {

inline void header(const std::string& title, const std::string& paper_note,
                   std::size_t runs) {
  std::cout << "=== " << title << " ===\n"
            << paper_note << "\n"
            << "replications per point: " << runs
            << "  (override with PSD_RUNS, PSD_FAST=1 for smoke runs)\n\n";
}

/// Effectiveness rows (Figs. 2-4): per class, simulated vs eq.-18 expected.
inline void effectiveness_sweep(ScenarioConfig cfg,
                                const std::vector<double>& loads,
                                std::size_t runs) {
  const std::size_t n = cfg.num_classes();
  std::vector<std::string> cols = {"load%"};
  for (std::size_t i = 0; i < n; ++i) {
    cols.push_back("S" + std::to_string(i + 1) + " sim");
    cols.push_back("S" + std::to_string(i + 1) + " exp");
  }
  cols.push_back("system sim");
  cols.push_back("system exp");
  Table t(cols);
  for (double load : loads) {
    cfg.load = load / 100.0;
    const auto r = run_replications(cfg, runs);
    std::vector<double> row = {load};
    for (std::size_t i = 0; i < n; ++i) {
      row.push_back(r.slowdown[i].mean);
      row.push_back(r.expected[i]);
    }
    row.push_back(r.system_slowdown);
    row.push_back(r.expected_system);
    t.add_row(row, 3);
  }
  t.print(std::cout);
}

/// The Figs. 5/9 campaign: two classes with delta2 in `deltas2`, crossed
/// with the standard load sweep, executed as one grid on the shared pool.
inline CampaignResult two_class_load_campaign(
    const std::vector<double>& deltas2, std::size_t runs) {
  GridSpec grid;
  grid.base = two_class_scenario(2.0, 50.0);
  for (double d2 : deltas2) grid.deltas.push_back({1.0, d2});
  for (double load : standard_load_sweep()) {
    grid.loads.push_back(load / 100.0);
  }
  CampaignOptions opt;
  opt.runs = runs;
  opt.master_seed = grid.base.seed;
  return run_campaign(grid, opt);
}

/// Locate the campaign point with delta2 == `d2` at `load_percent`.
inline const PointOutcome& point_for(const CampaignResult& result, double d2,
                                     double load_percent) {
  for (const auto& p : result.points) {
    const auto& cfg = p.point.cfg;
    if (cfg.num_classes() == 2 && cfg.delta[1] == d2 &&
        std::abs(cfg.load - load_percent / 100.0) < 1e-12) {
      return p;
    }
  }
  throw std::logic_error("campaign point not found");
}

}  // namespace psd::bench
