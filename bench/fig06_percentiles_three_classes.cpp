// Figure 6: percentiles of windowed slowdown ratios with three classes,
// deltas (1, 2, 3): series class2/class1 (target 2) and class3/class1
// (target 3).  Paper shape: medians near targets, wider spread than the
// two-class case (estimation error compounds across classes).
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 6 — ratio percentiles, three classes (deltas 1:2:3)",
                "two series: S2/S1 (target 2) and S3/S1 (target 3)", runs);
  Table t({"load%", "S2/S1 p5", "S2/S1 p50", "S2/S1 p95", "S3/S1 p5",
           "S3/S1 p50", "S3/S1 p95"});
  for (double load : standard_load_sweep()) {
    auto cfg = three_class_scenario(load);
    const auto r = run_replications(cfg, runs);
    t.add_row({Table::fmt(load, 0), Table::fmt(r.ratio[0].p5, 2),
               Table::fmt(r.ratio[0].p50, 2), Table::fmt(r.ratio[0].p95, 2),
               Table::fmt(r.ratio[1].p5, 2), Table::fmt(r.ratio[1].p50, 2),
               Table::fmt(r.ratio[1].p95, 2)});
  }
  t.print(std::cout);
  return 0;
}
