// Figure 4: simulated vs expected slowdowns with three classes,
// deltas (1, 2, 3).  Shape: three ordered curves pinned at ratios 1:2:3,
// all tracking eq. 18.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 4 — effectiveness, three classes (deltas 1:2:3)",
                "identical protocol to Fig. 2 with N = 3", runs);
  auto cfg = three_class_scenario(50.0);
  bench::effectiveness_sweep(cfg, standard_load_sweep(), runs);
  return 0;
}
