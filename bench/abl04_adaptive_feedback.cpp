// Ablation A4: the paper's future work — closed-loop correction of
// short-timescale ratio error.  Compares the open-loop eq.-17 allocator
// against the adaptive allocator (integral feedback on windowed normalized
// slowdowns) at several gains.
//
// Expected: feedback tightens the windowed ratio distribution (p5..p95 band
// narrows around the target) at moderate gain; an over-aggressive gain
// re-widens it (control oscillation).
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A4 — adaptive feedback extension",
                "deltas (1,4) at 60% load; windowed ratio spread around the "
                "target 4",
                runs);
  Table t({"allocator", "achieved ratio", "windowed p5", "windowed p50",
           "windowed p95"});
  {
    auto cfg = two_class_scenario(4.0, 60.0);
    const auto r = run_replications(cfg, runs);
    t.add_row({"open-loop eq.17", Table::fmt(r.mean_ratio[1], 2),
               Table::fmt(r.ratio[0].p5, 2), Table::fmt(r.ratio[0].p50, 2),
               Table::fmt(r.ratio[0].p95, 2)});
  }
  for (double gain : {0.1, 0.3, 1.0, 3.0}) {
    auto cfg = two_class_scenario(4.0, 60.0);
    cfg.allocator = AllocatorKind::kAdaptivePsd;
    cfg.adaptive.gain = gain;
    const auto r = run_replications(cfg, runs);
    t.add_row({"adaptive gain=" + Table::fmt(gain, 1),
               Table::fmt(r.mean_ratio[1], 2), Table::fmt(r.ratio[0].p5, 2),
               Table::fmt(r.ratio[0].p50, 2), Table::fmt(r.ratio[0].p95, 2)});
  }
  t.print(std::cout);
  return 0;
}
