// Figure 3: as Figure 2 with differentiation parameters (1, 4) — a wider
// quality spacing.  Shape: class-2 curve shifts up to 4x class 1; both still
// track eq. 18 across the load sweep.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(60);
  bench::header("Figure 3 — effectiveness, two classes (delta1:delta2 = 1:4)",
                "identical protocol to Fig. 2 with delta2 = 4", runs);
  auto cfg = two_class_scenario(4.0, 50.0);
  bench::effectiveness_sweep(cfg, standard_load_sweep(), runs);
  return 0;
}
