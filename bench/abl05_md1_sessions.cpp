// Ablation A5: the paper's M/D/1 session argument (§2.2).  Session states
// such as "home entry" or "register" have near-constant service demand, so
// the per-class queues reduce to M/D/1 where eq. 15 applies:
//   E[S] = rho / (2 (1 - rho)).
//
// Part 1 checks eq. 15 directly under PSD allocation with deterministic
// service; part 2 drives the full storefront session workload through the
// server and reports per-class slowdowns against the generic eq.-18
// prediction computed from the session mix.
#include <iostream>

#include "bench_util.hpp"
#include "experiment/figures.hpp"
#include "queueing/md1.hpp"
#include "server/server.hpp"
#include "sched/dedicated_rate.hpp"
#include "core/hetero_psd_allocator.hpp"
#include "workload/session.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A5 — M/D/1 sessions (eq. 15)",
                "deterministic service: simulated vs eq. 15 under PSD rates",
                runs);

  // Part 1: deterministic-service PSD across loads.
  Table t({"load%", "S1 sim", "S1 exp", "S2 sim", "S2 exp", "ratio"});
  for (double load : {20.0, 40.0, 60.0, 80.0}) {
    auto cfg = two_class_scenario(2.0, load);
    cfg.size_dist = DistSpec::deterministic(1.0);
    const auto r = run_replications(cfg, runs);
    t.add_row({Table::fmt(load, 0), Table::fmt(r.slowdown[0].mean, 3),
               Table::fmt(r.expected[0], 3), Table::fmt(r.slowdown[1].mean, 3),
               Table::fmt(r.expected[1], 3), Table::fmt(r.mean_ratio[1], 2)});
  }
  t.print(std::cout);

  // Part 2: full storefront session workload (mixed deterministic + BP
  // states, classes = transaction vs browsing path).
  std::cout << "\nstorefront session workload (2 classes, PSD deltas 1:2):\n";
  Simulator sim;
  const auto profile = SessionProfile::storefront(0.35);

  ServerConfig sc;
  sc.num_classes = 2;
  sc.realloc_period = 250.0;
  sc.metrics.num_classes = 2;
  sc.metrics.warmup_end = 2000.0;
  sc.metrics.window = 250.0;

  // Session classes mix different request types, so the allocator needs the
  // heterogeneous generalization of eq. 17 with per-class mixtures.
  const auto mixtures = profile.class_mixtures(2);
  Server server(sim, sc, std::make_unique<DedicatedRateBackend>(),
                std::make_unique<HeteroPsdAllocator>(
                    std::vector<double>{1.0, 2.0}, mixtures),
                Rng(1));
  server.start(0.0);
  SessionWorkload sessions(sim, Rng(2), profile, server);
  sessions.start(0.0);
  sim.run_until(60000.0);
  server.finalize();

  Table t2({"class", "completed", "mean slowdown", "mean delay"});
  for (ClassId c = 0; c < 2; ++c) {
    t2.add_row({std::to_string(c + 1),
                std::to_string(server.metrics().completed(c)),
                Table::fmt(server.metrics().slowdown(c).mean(), 3),
                Table::fmt(server.metrics().delay(c).mean(), 3)});
  }
  t2.print(std::cout);
  const double m1 = server.metrics().slowdown(0).mean();
  const double m2 = server.metrics().slowdown(1).mean();
  std::cout << "achieved session-workload slowdown ratio S2/S1 = "
            << Table::fmt(m2 / m1, 2) << " (target 2.0)\n";
  return 0;
}
