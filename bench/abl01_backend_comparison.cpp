// Ablation A1: scheduling substrate.  The paper assumes eq.-7 proportional
// partitioning and realizes it as strict per-class task servers; this bench
// compares that model against two practical proportional-share mechanisms
// (SFQ, lottery) and the finish-at-old-rate reallocation policy.
//
// Expected: the dedicated (strict-partition) backend pins the ratio at the
// target; work-conserving SFQ and lottery compress it toward 1 at low load
// (idle capacity is lent to the lower class) and approach the target only
// when both classes stay backlogged.
#include "bench_util.hpp"
#include "experiment/figures.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A1 — scheduling backend comparison",
                "achieved S2/S1 (target 2), deltas (1,2), eq.-17 allocator "
                "everywhere; only the enforcement mechanism varies",
                runs);
  struct Row {
    const char* label;
    BackendKind backend;
    RateChangePolicy policy;
  };
  const Row rows[] = {
      {"dedicated (paper)", BackendKind::kDedicated,
       RateChangePolicy::kRescaleRemaining},
      {"dedicated, finish-at-old-rate", BackendKind::kDedicated,
       RateChangePolicy::kFinishAtOldRate},
      {"sfq (work-conserving)", BackendKind::kSfq,
       RateChangePolicy::kRescaleRemaining},
      {"lottery (quantum 1 tu)", BackendKind::kLottery,
       RateChangePolicy::kRescaleRemaining},
  };
  Table t({"backend", "ratio @30%", "ratio @60%", "ratio @90%"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (double load : {30.0, 60.0, 90.0}) {
      auto cfg = two_class_scenario(2.0, load);
      cfg.backend = row.backend;
      cfg.rate_change = row.policy;
      const auto r = run_replications(cfg, runs);
      cells.push_back(Table::fmt(r.mean_ratio[1], 2));
    }
    t.add_row(cells);
  }
  t.print(std::cout);
  return 0;
}
