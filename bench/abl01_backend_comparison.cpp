// Ablation A1: scheduling substrate.  The paper assumes eq.-7 proportional
// partitioning and realizes it as strict per-class task servers; this bench
// compares that model against two practical proportional-share mechanisms
// (SFQ, lottery) and the finish-at-old-rate reallocation policy.
//
// Expected: the dedicated (strict-partition) backend pins the ratio at the
// target; work-conserving SFQ and lottery compress it toward 1 at low load
// (idle capacity is lent to the lower class) and approach the target only
// when both classes stay backlogged.
//
// The whole comparison is one campaign grid (backends x rate-change
// policies x loads, content-deduplicated) on the shared sweep pool; the
// declarative twin is campaigns/abl01.spec.
#include "bench_util.hpp"
#include "experiment/figures.hpp"
#include "sweep/campaign.hpp"

int main() {
  using namespace psd;
  const std::size_t runs = default_runs(40);
  bench::header("Ablation A1 — scheduling backend comparison",
                "achieved S2/S1 (target 2), deltas (1,2), eq.-17 allocator "
                "everywhere; only the enforcement mechanism varies",
                runs);

  // One full cross: rate_change only matters on the dedicated backend, and
  // the engine's content keys normalize unread fields, so sfq/lottery x
  // finish dedup onto their rescale twins — the grid expands to exactly the
  // four meaningful backend combinations per load.
  GridSpec grid;
  grid.base = two_class_scenario(2.0, 50.0);
  grid.backends = {BackendKind::kDedicated, BackendKind::kSfq,
                   BackendKind::kLottery};
  grid.rate_changes = {RateChangePolicy::kRescaleRemaining,
                       RateChangePolicy::kFinishAtOldRate};
  grid.loads = {0.3, 0.6, 0.9};

  CampaignOptions opt;
  opt.runs = runs;
  opt.master_seed = grid.base.seed;
  const auto result = run_campaign(grid, opt);

  auto ratio_at = [&](BackendKind backend, RateChangePolicy policy,
                      double load) {
    for (const auto& p : result.points) {
      if (p.point.cfg.backend == backend &&
          p.point.cfg.rate_change == policy && p.point.cfg.load == load) {
        return p.result.mean_ratio[1];
      }
    }
    throw std::logic_error("campaign point not found");
  };

  struct Row {
    const char* label;
    BackendKind backend;
    RateChangePolicy policy;
  };
  const Row rows[] = {
      {"dedicated (paper)", BackendKind::kDedicated,
       RateChangePolicy::kRescaleRemaining},
      {"dedicated, finish-at-old-rate", BackendKind::kDedicated,
       RateChangePolicy::kFinishAtOldRate},
      {"sfq (work-conserving)", BackendKind::kSfq,
       RateChangePolicy::kRescaleRemaining},
      {"lottery (quantum 1 tu)", BackendKind::kLottery,
       RateChangePolicy::kRescaleRemaining},
  };
  Table t({"backend", "ratio @30%", "ratio @60%", "ratio @90%"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (double load : {0.3, 0.6, 0.9}) {
      cells.push_back(Table::fmt(ratio_at(row.backend, row.policy, load), 2));
    }
    t.add_row(cells);
  }
  t.print(std::cout);
  return 0;
}
