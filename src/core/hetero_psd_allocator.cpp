#include "core/hetero_psd_allocator.hpp"

#include "common/error.hpp"

namespace psd {

HeteroPsdAllocator::HeteroPsdAllocator(std::vector<double> delta,
                                       std::vector<SamplerVariant> dists,
                                       double capacity, double rho_max,
                                       double min_residual_share)
    : delta_(std::move(delta)),
      capacity_(capacity),
      rho_max_(rho_max),
      min_residual_share_(min_residual_share) {
  PSD_REQUIRE(!delta_.empty(), "need at least one class");
  PSD_REQUIRE(delta_.size() == dists.size(), "delta/dists size mismatch");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  dists_.reserve(dists.size());
  for (auto& d : dists) dists_.emplace_back(std::move(d));
}

std::vector<double> HeteroPsdAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == delta_.size(), "estimate size mismatch");
  HeteroPsdInput in;
  in.lambda = lambda_hat;
  in.delta = delta_;
  in.dist.reserve(dists_.size());
  for (const auto& d : dists_) in.dist.push_back(&d);
  in.capacity = capacity_;
  in.overload = OverloadPolicy::kClamp;
  in.rho_max = rho_max_;
  in.min_residual_share = min_residual_share_;
  return std::move(allocate_psd_rates_hetero(in).rate);
}

}  // namespace psd
