// The paper's contribution: closed-form processing-rate allocation for
// proportional slowdown differentiation (PSD), §3.
//
// Given per-class Poisson rates lambda_i, differentiation parameters delta_i
// (delta_1 <= ... <= delta_N, class 0 highest) and a service-time
// distribution X shared by all classes, choose task-server rates r_i with
// sum r_i = C such that E[S_i]/E[S_j] = delta_i/delta_j (eq. 16).
//
// From Theorem 1, E[S_i] = lambda_i E[X^2] E[1/X] / (2 (r_i - lambda_i E[X])),
// so equalizing E[S_i]/delta_i across classes and imposing sum r_i = C gives
//
//   r_i = lambda_i E[X] + (lambda_i/delta_i) / (sum_j lambda_j/delta_j)
//         * (C - sum_j lambda_j E[X])                              (eq. 17)
//
// — class i first receives its mean work demand, then a share of the residual
// capacity proportional to its delta-scaled arrival rate.  The resulting
// expected slowdown is
//
//   E[S_i] = delta_i (sum_j lambda_j/delta_j) E[X^2] E[1/X] / (2 C (1 - rho))
//                                                                 (eq. 18)
// with rho = sum_j lambda_j E[X] / C.
#pragma once

#include <vector>

#include "dist/distribution.hpp"

namespace psd {

class SamplerVariant;

/// What to do when the offered load is infeasible (rho >= 1).
enum class OverloadPolicy {
  kThrow,  ///< Raise std::domain_error (analysis-time default).
  kClamp,  ///< Scale all lambdas down to rho_max, preserving the mix
           ///< (runtime default: rates stay feasible under estimator spikes).
};

struct PsdInput {
  std::vector<double> lambda;  ///< Per-class arrival rates (>= 0).
  std::vector<double> delta;   ///< Differentiation parameters (> 0).
  double mean_size = 1.0;      ///< E[X] at full capacity.
  double capacity = 1.0;       ///< Total processing rate C.
  OverloadPolicy overload = OverloadPolicy::kThrow;
  double rho_max = 0.98;       ///< Clamp target for kClamp.
  /// Floor on each class's share of the residual capacity, as a fraction of
  /// capacity.  Guards classes whose estimated lambda is (transiently) zero
  /// from being allocated zero rate and stalling until the next window.
  double min_residual_share = 1e-3;
};

struct PsdAllocation {
  std::vector<double> rate;  ///< Absolute per-class rates; sum == capacity.
  double utilization = 0.0;  ///< rho actually used (post-clamp).
  bool clamped = false;      ///< Whether the overload clamp engaged.
};

/// eq. 17.  Requires at least one positive lambda; classes with lambda == 0
/// receive only the min_residual_share floor.
PsdAllocation allocate_psd_rates(const PsdInput& in);

/// eq. 18: expected slowdown per class under the eq.-17 allocation.
std::vector<double> expected_psd_slowdowns(const std::vector<double>& lambda,
                                           const std::vector<double>& delta,
                                           const SizeDistribution& dist,
                                           double capacity = 1.0);

/// Theorem 1: expected slowdown of one class on a task server of rate `rate`.
/// (Exposed so tests can check eq. 18 == Theorem 1 ∘ eq. 17.)
double theorem1_slowdown(double lambda, const SizeDistribution& dist,
                         double rate);

/// Expected *system* slowdown: lambda-weighted mean of eq.-18 values.
double expected_system_slowdown(const std::vector<double>& lambda,
                                const std::vector<double>& delta,
                                const SizeDistribution& dist,
                                double capacity = 1.0);

/// Validity helper: true iff sum lambda_i E[X] < capacity.
bool psd_feasible(const std::vector<double>& lambda, double mean_size,
                  double capacity);

// ---------------------------------------------------------------------------
// Heterogeneous generalization (beyond the paper).
//
// The paper assumes every class draws sizes from the SAME Bounded Pareto.
// Real multi-class servers (e.g. the session workload of §2.2) give each
// class its own distribution X_i.  Theorem 1 still applies per class with
//   E[S_i] = A_i lambda_i / (r_i - lambda_i E[X_i]),
//   A_i    = E[X_i^2] E[1/X_i] / 2,
// and equalizing E[S_i]/delta_i under sum r_i = C stays closed-form:
//   s   = sum_j (A_j lambda_j / delta_j) / (C - sum_j lambda_j E[X_j])
//   r_i = lambda_i E[X_i] + A_i lambda_i / (delta_i s),   E[S_i] = delta_i s.
// With identical distributions this reduces exactly to eq. 17.
// ---------------------------------------------------------------------------

struct HeteroPsdInput {
  std::vector<double> lambda;
  std::vector<double> delta;
  /// Per-class service-time distributions (not owned; size == lambda.size()).
  std::vector<const SizeDistribution*> dist;
  double capacity = 1.0;
  OverloadPolicy overload = OverloadPolicy::kThrow;
  double rho_max = 0.98;
  double min_residual_share = 1e-3;
};

PsdAllocation allocate_psd_rates_hetero(const HeteroPsdInput& in);

/// Expected per-class slowdowns under the heterogeneous allocation
/// (each equals delta_i * s).
std::vector<double> expected_psd_slowdowns_hetero(
    const std::vector<double>& lambda, const std::vector<double>& delta,
    const std::vector<const SizeDistribution*>& dist, double capacity = 1.0);

// Sealed-sampler conveniences: the same closed forms fed from SamplerVariant
// values (the hot-path representation) via dist/adapter.hpp bridges.
std::vector<double> expected_psd_slowdowns(const std::vector<double>& lambda,
                                           const std::vector<double>& delta,
                                           const SamplerVariant& dist,
                                           double capacity = 1.0);

double expected_system_slowdown(const std::vector<double>& lambda,
                                const std::vector<double>& delta,
                                const SamplerVariant& dist,
                                double capacity = 1.0);

std::vector<double> expected_psd_slowdowns_hetero(
    const std::vector<double>& lambda, const std::vector<double>& delta,
    const std::vector<SamplerVariant>& dist, double capacity = 1.0);

}  // namespace psd
