// Adaptive PSD allocation — the paper's stated future work ("improving the
// performance of the rate-allocation strategy in providing short-timescale
// differentiation predictability").
//
// The open-loop eq.-17 strategy acts on class *load* only; achieved windowed
// slowdown ratios wander around the target (Figs. 5-8).  This extension
// closes the loop: after each window it compares per-class normalized
// slowdowns S_i/delta_i against their geometric mean and nudges an internal
// effective delta per class by an integral step in log space:
//
//   err_i   = log( (S_i/delta_i) / geomean_j(S_j/delta_j) )
//   bias_i <- clamp(bias_i - gain * err_i, +/- log(max_correction))
//   delta_eff_i = delta_i * exp(bias_i)
//
// A class running slower than its share (err > 0) gets a smaller effective
// delta, hence more of the residual capacity next window.  Biases are
// centered each step so the mean correction stays zero (only *relative*
// rates matter).  Ablation A4 quantifies the effect.
#pragma once

#include "core/psd_rate_allocator.hpp"

namespace psd {

struct AdaptiveConfig {
  double gain = 0.3;            ///< Integral gain on log-ratio error.
  double max_correction = 4.0;  ///< Bias clamp: delta_eff within x/÷ this.
  /// EWMA factor applied to windowed slowdown observations before computing
  /// the error (0 = raw windows).  Heavy-tailed service times make single
  /// windows extremely noisy; smoothing keeps the loop from chasing noise.
  double smoothing = 0.0;
};

class AdaptivePsdAllocator final : public RateAllocator {
 public:
  AdaptivePsdAllocator(PsdAllocatorConfig cfg, AdaptiveConfig adapt);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  void observe_slowdowns(const std::vector<double>& mean_sd) override;
  std::string name() const override { return "psd-adaptive"; }

  const std::vector<double>& bias() const { return bias_; }

 private:
  PsdAllocatorConfig cfg_;
  AdaptiveConfig adapt_;
  std::vector<double> bias_;
  std::vector<double> smoothed_;  ///< EWMA of per-class window slowdowns.
  std::vector<bool> smoothed_valid_;
  std::uint64_t observations_ = 0;
};

}  // namespace psd
