#include "core/adaptive_psd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

AdaptivePsdAllocator::AdaptivePsdAllocator(PsdAllocatorConfig cfg,
                                           AdaptiveConfig adapt)
    : cfg_(std::move(cfg)), adapt_(adapt) {
  PSD_REQUIRE(!cfg_.delta.empty(), "need at least one class");
  PSD_REQUIRE(adapt_.gain >= 0.0, "gain must be >= 0");
  PSD_REQUIRE(adapt_.max_correction > 1.0, "max_correction must exceed 1");
  PSD_REQUIRE(adapt_.smoothing >= 0.0 && adapt_.smoothing < 1.0,
              "smoothing must be in [0,1)");
  bias_.assign(cfg_.delta.size(), 0.0);
  smoothed_.assign(cfg_.delta.size(), 0.0);
  smoothed_valid_.assign(cfg_.delta.size(), false);
}

void AdaptivePsdAllocator::observe_slowdowns(
    const std::vector<double>& mean_sd) {
  PSD_REQUIRE(mean_sd.size() == bias_.size(), "observation size mismatch");
  ++observations_;
  // Optional EWMA pre-filter over the raw window means.
  std::vector<double> obs(mean_sd.size(), kNaN);
  for (std::size_t i = 0; i < mean_sd.size(); ++i) {
    if (!(std::isfinite(mean_sd[i]) && mean_sd[i] > 0.0)) continue;
    if (adapt_.smoothing > 0.0 && smoothed_valid_[i]) {
      smoothed_[i] = adapt_.smoothing * smoothed_[i] +
                     (1.0 - adapt_.smoothing) * mean_sd[i];
    } else {
      smoothed_[i] = mean_sd[i];
      smoothed_valid_[i] = true;
    }
    obs[i] = adapt_.smoothing > 0.0 ? smoothed_[i] : mean_sd[i];
  }
  // Normalized log slowdowns; skip classes with no completions this window.
  std::vector<double> logs(bias_.size(), kNaN);
  double sum = 0.0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (std::isfinite(obs[i]) && obs[i] > 0.0) {
      logs[i] = std::log(obs[i] / cfg_.delta[i]);
      sum += logs[i];
      ++valid;
    }
  }
  if (valid < 2) return;  // nothing to balance against
  const double center = sum / static_cast<double>(valid);
  const double clamp = std::log(adapt_.max_correction);
  double bias_mean = 0.0;
  for (std::size_t i = 0; i < bias_.size(); ++i) {
    if (std::isfinite(logs[i])) {
      bias_[i] -= adapt_.gain * (logs[i] - center);
      bias_[i] = std::clamp(bias_[i], -clamp, clamp);
    }
    bias_mean += bias_[i];
  }
  // Re-center so corrections stay purely relative.
  bias_mean /= static_cast<double>(bias_.size());
  for (auto& b : bias_) b -= bias_mean;
}

std::vector<double> AdaptivePsdAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == cfg_.delta.size(),
              "estimate size mismatch");
  std::vector<double> delta_eff(cfg_.delta.size());
  for (std::size_t i = 0; i < delta_eff.size(); ++i) {
    delta_eff[i] = cfg_.delta[i] * std::exp(bias_[i]);
  }
  PsdInput in;
  in.lambda = lambda_hat;
  in.delta = std::move(delta_eff);
  in.mean_size = cfg_.mean_size;
  in.capacity = cfg_.capacity;
  in.overload = OverloadPolicy::kClamp;
  in.rho_max = cfg_.rho_max;
  in.min_residual_share = cfg_.min_residual_share;
  return std::move(allocate_psd_rates(in).rate);
}

}  // namespace psd
