// Runtime adapter for the heterogeneous PSD allocation: per-class
// service-time distributions (e.g. session workloads whose classes mix
// different request types).
//
// Samplers are held by value — construction copies a SamplerVariant per
// class (cheap: parametric samplers are a few doubles; mixtures share their
// component tables), replacing the per-distribution clone() into unique_ptr
// the virtual hierarchy used to require.
#pragma once

#include <vector>

#include "core/psd_allocation.hpp"
#include "dist/adapter.hpp"
#include "server/allocator.hpp"

namespace psd {

class HeteroPsdAllocator final : public RateAllocator {
 public:
  /// `dists[i]` is class i's service-time sampler.
  HeteroPsdAllocator(std::vector<double> delta,
                     std::vector<SamplerVariant> dists, double capacity = 1.0,
                     double rho_max = 0.98, double min_residual_share = 1e-3);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "psd-hetero"; }

 private:
  std::vector<double> delta_;
  /// ABC views over the samplers for the eq.-17 closed form (value-held; the
  /// moment API still speaks SizeDistribution*).
  std::vector<VariantDistribution> dists_;
  double capacity_;
  double rho_max_;
  double min_residual_share_;
};

}  // namespace psd
