// Runtime adapter for the heterogeneous PSD allocation: per-class
// service-time distributions (e.g. session workloads whose classes mix
// different request types).
#pragma once

#include <memory>
#include <vector>

#include "core/psd_allocation.hpp"
#include "server/allocator.hpp"

namespace psd {

class HeteroPsdAllocator final : public RateAllocator {
 public:
  /// `dists[i]` is class i's service-time distribution (cloned, owned).
  HeteroPsdAllocator(std::vector<double> delta,
                     const std::vector<const SizeDistribution*>& dists,
                     double capacity = 1.0, double rho_max = 0.98,
                     double min_residual_share = 1e-3);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "psd-hetero"; }

 private:
  std::vector<double> delta_;
  std::vector<std::unique_ptr<SizeDistribution>> dists_;
  double capacity_;
  double rho_max_;
  double min_residual_share_;
};

}  // namespace psd
