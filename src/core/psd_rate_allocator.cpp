#include "core/psd_rate_allocator.hpp"

#include "common/error.hpp"

namespace psd {

PsdRateAllocator::PsdRateAllocator(PsdAllocatorConfig cfg)
    : cfg_(std::move(cfg)) {
  PSD_REQUIRE(!cfg_.delta.empty(), "need at least one class");
  for (double d : cfg_.delta) PSD_REQUIRE(d > 0.0, "delta must be > 0");
  PSD_REQUIRE(cfg_.capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(cfg_.mean_size > 0.0, "mean size must be positive");
}

std::vector<double> PsdRateAllocator::allocate(
    const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == cfg_.delta.size(),
              "estimate size mismatch");
  PsdInput in;
  in.lambda = lambda_hat;
  in.delta = cfg_.delta;
  in.mean_size = cfg_.mean_size;
  in.capacity = cfg_.capacity;
  in.overload = OverloadPolicy::kClamp;
  in.rho_max = cfg_.rho_max;
  in.min_residual_share = cfg_.min_residual_share;
  auto result = allocate_psd_rates(in);
  if (result.clamped) ++clamps_;
  return std::move(result.rate);
}

}  // namespace psd
