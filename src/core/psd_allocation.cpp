#include "core/psd_allocation.hpp"

#include <numeric>
#include <stdexcept>

#include "common/error.hpp"
#include "dist/adapter.hpp"
#include "queueing/mg1.hpp"

namespace psd {

namespace {

void validate(const PsdInput& in) {
  PSD_REQUIRE(!in.lambda.empty(), "need at least one class");
  PSD_REQUIRE(in.lambda.size() == in.delta.size(),
              "lambda/delta size mismatch");
  PSD_REQUIRE(in.mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(in.capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(in.rho_max > 0.0 && in.rho_max < 1.0, "rho_max in (0,1)");
  PSD_REQUIRE(in.min_residual_share >= 0.0 && in.min_residual_share < 0.5,
              "min_residual_share in [0, 0.5)");
  for (double l : in.lambda) PSD_REQUIRE(l >= 0.0, "lambda must be >= 0");
  for (double d : in.delta) PSD_REQUIRE(d > 0.0, "delta must be > 0");
}

}  // namespace

bool psd_feasible(const std::vector<double>& lambda, double mean_size,
                  double capacity) {
  const double demand =
      std::accumulate(lambda.begin(), lambda.end(), 0.0) * mean_size;
  return demand < capacity;
}

PsdAllocation allocate_psd_rates(const PsdInput& in) {
  validate(in);
  const std::size_t n = in.lambda.size();

  std::vector<double> lambda = in.lambda;
  double demand = std::accumulate(lambda.begin(), lambda.end(), 0.0) *
                  in.mean_size;
  PsdAllocation out;
  if (demand >= in.capacity) {
    if (in.overload == OverloadPolicy::kThrow) {
      throw std::domain_error(
          "PSD allocation infeasible: offered load >= capacity");
    }
    // Scale the whole mix down so utilization equals rho_max; relative class
    // loads — and therefore the eq.-17 shape — are preserved.
    const double scale = in.rho_max * in.capacity / demand;
    for (auto& l : lambda) l *= scale;
    demand = in.rho_max * in.capacity;
    out.clamped = true;
  }
  out.utilization = demand / in.capacity;

  // Residual capacity split proportionally to lambda_i / delta_i (eq. 17),
  // with an optional floor so zero-lambda classes keep a trickle of rate.
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) denom += lambda[i] / in.delta[i];
  const double residual = in.capacity - demand;

  out.rate.assign(n, 0.0);
  if (denom <= 0.0) {
    // No class has observable load (cold start): split capacity evenly.
    for (auto& r : out.rate) r = in.capacity / static_cast<double>(n);
    return out;
  }

  std::vector<double> share(n, 0.0);
  double floor_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    share[i] = (lambda[i] / in.delta[i]) / denom;
    if (share[i] < in.min_residual_share) {
      share[i] = in.min_residual_share;
    }
    floor_total += share[i];
  }
  // Renormalize shares (floors may have pushed the sum above 1).
  for (auto& s : share) s /= floor_total;

  for (std::size_t i = 0; i < n; ++i) {
    out.rate[i] = lambda[i] * in.mean_size + share[i] * residual;
  }
  return out;
}

double theorem1_slowdown(double lambda, const SizeDistribution& dist,
                         double rate) {
  return Mg1(lambda, dist, rate).expected_slowdown();
}

std::vector<double> expected_psd_slowdowns(const std::vector<double>& lambda,
                                           const std::vector<double>& delta,
                                           const SizeDistribution& dist,
                                           double capacity) {
  PSD_REQUIRE(lambda.size() == delta.size(), "lambda/delta size mismatch");
  PSD_REQUIRE(!lambda.empty(), "need at least one class");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  const double ex = dist.mean();
  const double ex2 = dist.second_moment();
  const double einv = dist.mean_inverse();

  double demand = 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    PSD_REQUIRE(lambda[i] >= 0.0, "lambda must be >= 0");
    PSD_REQUIRE(delta[i] > 0.0, "delta must be > 0");
    demand += lambda[i] * ex;
    denom += lambda[i] / delta[i];
  }
  if (demand >= capacity) {
    throw std::domain_error("expected slowdown undefined: rho >= 1");
  }
  // eq. 18 (generalized to capacity C): the residual capacity is C - demand.
  const double common = denom * ex2 * einv / (2.0 * (capacity - demand));
  std::vector<double> out(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    out[i] = delta[i] * common;
  }
  return out;
}

namespace {

void validate_hetero(const HeteroPsdInput& in) {
  PSD_REQUIRE(!in.lambda.empty(), "need at least one class");
  PSD_REQUIRE(in.lambda.size() == in.delta.size(),
              "lambda/delta size mismatch");
  PSD_REQUIRE(in.lambda.size() == in.dist.size(),
              "lambda/dist size mismatch");
  PSD_REQUIRE(in.capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(in.rho_max > 0.0 && in.rho_max < 1.0, "rho_max in (0,1)");
  for (std::size_t i = 0; i < in.lambda.size(); ++i) {
    PSD_REQUIRE(in.lambda[i] >= 0.0, "lambda must be >= 0");
    PSD_REQUIRE(in.delta[i] > 0.0, "delta must be > 0");
    PSD_REQUIRE(in.dist[i] != nullptr, "distribution required per class");
  }
}

}  // namespace

PsdAllocation allocate_psd_rates_hetero(const HeteroPsdInput& in) {
  validate_hetero(in);
  const std::size_t n = in.lambda.size();

  std::vector<double> lambda = in.lambda;
  std::vector<double> mean(n), a(n);
  for (std::size_t i = 0; i < n; ++i) {
    mean[i] = in.dist[i]->mean();
    a[i] = in.dist[i]->second_moment() * in.dist[i]->mean_inverse() / 2.0;
  }

  double demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) demand += lambda[i] * mean[i];
  PsdAllocation out;
  if (demand >= in.capacity) {
    if (in.overload == OverloadPolicy::kThrow) {
      throw std::domain_error(
          "hetero PSD allocation infeasible: offered load >= capacity");
    }
    const double scale = in.rho_max * in.capacity / demand;
    for (auto& l : lambda) l *= scale;
    demand = in.rho_max * in.capacity;
    out.clamped = true;
  }
  out.utilization = demand / in.capacity;

  // Residual split proportional to A_i lambda_i / delta_i, with the same
  // floor semantics as the homogeneous path.
  double denom = 0.0;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = a[i] * lambda[i] / in.delta[i];
    denom += weight[i];
  }
  out.rate.assign(n, 0.0);
  if (denom <= 0.0) {
    for (auto& r : out.rate) r = in.capacity / static_cast<double>(n);
    return out;
  }
  const double residual = in.capacity - demand;
  double floor_total = 0.0;
  std::vector<double> share(n);
  for (std::size_t i = 0; i < n; ++i) {
    share[i] = std::max(weight[i] / denom, in.min_residual_share);
    floor_total += share[i];
  }
  for (auto& s : share) s /= floor_total;
  for (std::size_t i = 0; i < n; ++i) {
    out.rate[i] = lambda[i] * mean[i] + share[i] * residual;
  }
  return out;
}

std::vector<double> expected_psd_slowdowns_hetero(
    const std::vector<double>& lambda, const std::vector<double>& delta,
    const std::vector<const SizeDistribution*>& dist, double capacity) {
  HeteroPsdInput in;
  in.lambda = lambda;
  in.delta = delta;
  in.dist = dist;
  in.capacity = capacity;
  validate_hetero(in);
  double demand = 0.0, num = 0.0;
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    demand += lambda[i] * dist[i]->mean();
    num += dist[i]->second_moment() * dist[i]->mean_inverse() / 2.0 *
           lambda[i] / delta[i];
  }
  if (demand >= capacity) {
    throw std::domain_error("expected slowdown undefined: rho >= 1");
  }
  const double s = num / (capacity - demand);
  std::vector<double> out(lambda.size());
  for (std::size_t i = 0; i < lambda.size(); ++i) out[i] = delta[i] * s;
  return out;
}

double expected_system_slowdown(const std::vector<double>& lambda,
                                const std::vector<double>& delta,
                                const SizeDistribution& dist,
                                double capacity) {
  const auto sd = expected_psd_slowdowns(lambda, delta, dist, capacity);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < sd.size(); ++i) {
    num += lambda[i] * sd[i];
    den += lambda[i];
  }
  PSD_REQUIRE(den > 0.0, "at least one class must have load");
  return num / den;
}

std::vector<double> expected_psd_slowdowns(const std::vector<double>& lambda,
                                           const std::vector<double>& delta,
                                           const SamplerVariant& dist,
                                           double capacity) {
  return expected_psd_slowdowns(lambda, delta, VariantDistribution(dist),
                                capacity);
}

double expected_system_slowdown(const std::vector<double>& lambda,
                                const std::vector<double>& delta,
                                const SamplerVariant& dist, double capacity) {
  return expected_system_slowdown(lambda, delta, VariantDistribution(dist),
                                  capacity);
}

std::vector<double> expected_psd_slowdowns_hetero(
    const std::vector<double>& lambda, const std::vector<double>& delta,
    const std::vector<SamplerVariant>& dist, double capacity) {
  std::vector<VariantDistribution> views;
  views.reserve(dist.size());
  for (const auto& d : dist) views.emplace_back(d);
  std::vector<const SizeDistribution*> ptrs;
  ptrs.reserve(views.size());
  for (const auto& v : views) ptrs.push_back(&v);
  return expected_psd_slowdowns_hetero(lambda, delta, ptrs, capacity);
}

}  // namespace psd
