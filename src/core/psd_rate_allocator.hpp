// Runtime adapter: plugs the eq.-17 closed form into the server's periodic
// reallocation loop, consuming the load estimator's lambda estimates.
#pragma once

#include <memory>

#include "core/psd_allocation.hpp"
#include "server/allocator.hpp"

namespace psd {

struct PsdAllocatorConfig {
  std::vector<double> delta;
  double capacity = 1.0;
  double mean_size = 1.0;  ///< E[X] of the (known) service-time distribution.
  double rho_max = 0.98;   ///< Overload clamp (runtime always clamps).
  double min_residual_share = 1e-3;
};

class PsdRateAllocator final : public RateAllocator {
 public:
  explicit PsdRateAllocator(PsdAllocatorConfig cfg);

  std::vector<double> allocate(const std::vector<double>& lambda_hat) override;
  std::string name() const override { return "psd-eq17"; }

  const PsdAllocatorConfig& config() const { return cfg_; }
  std::uint64_t clamp_events() const { return clamps_; }

 private:
  PsdAllocatorConfig cfg_;
  std::uint64_t clamps_ = 0;
};

}  // namespace psd
