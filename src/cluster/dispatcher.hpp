// Cluster of PSD servers behind a task-assignment dispatcher.
//
// The paper's related work (Harchol-Balter's task assignment [13], Zhu/Tang/
// Yang's cluster DiffServ [25], ADAPTLOAD [21]) studies slowdown on server
// *clusters*; this module composes our single-node PSD server into that
// setting.  Each node runs its own Fig.-1 pipeline (queues, estimator,
// allocator, task servers); the dispatcher routes every arriving request to
// one node:
//   * kRandom        — uniform random node,
//   * kRoundRobin    — cyclic,
//   * kLeastWorkLeft — node with the least outstanding work (size-aware),
//   * kSizeInterval  — SITA-E: node n serves sizes in [cutoff_{n-1},
//                      cutoff_n), cutoffs chosen to equalize expected load;
//                      the assignment Harchol-Balter showed to excel under
//                      heavy tails because it keeps small jobs away from
//                      monsters,
//   * kJsq           — JSQ(d): least-loaded of d randomly sampled nodes.
//
// Routing itself lives in cluster/router.hpp (AssignmentRouter), shared with
// the rt ClusterRuntime so a policy behaves identically in sim and serving.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/assignment.hpp"
#include "cluster/router.hpp"
#include "dist/bounded_pareto.hpp"
#include "server/server.hpp"

namespace psd {

/// SITA-E cutoffs: partition [k, p] into `nodes` intervals of equal expected
/// work (equal contribution to E[X]).  Returns nodes-1 interior cutoffs.
std::vector<double> sita_equal_load_cutoffs(const BoundedPareto& dist,
                                            std::size_t nodes);

class Cluster final : public RequestSink {
 public:
  using BackendFactory = std::function<std::unique_ptr<SchedulerBackend>()>;
  using AllocatorFactory = std::function<std::unique_ptr<RateAllocator>()>;

  /// Builds `nodes` identical servers from the config and factories.
  /// `cutoffs` is required (size nodes-1, increasing) for kSizeInterval.
  /// (AssignmentSpec is implicitly constructible from AssignmentPolicy, so
  /// policy-enum call sites keep working; pass a spec to set JSQ's d.)
  Cluster(Simulator& sim, std::size_t nodes, const ServerConfig& node_cfg,
          const BackendFactory& backend_factory,
          const AllocatorFactory& allocator_factory, AssignmentSpec policy,
          Rng rng, std::vector<double> cutoffs = {});

  void start(Time origin);
  void submit(const Request& req) override;
  void finalize();

  std::size_t nodes() const { return nodes_.size(); }
  Server& node(std::size_t i) { return *nodes_[i]; }
  const Server& node(std::size_t i) const { return *nodes_[i]; }

  /// Outstanding (submitted - completed) work currently on a node.
  double outstanding_work(std::size_t i) const { return outstanding_[i]; }

  /// Cluster-wide per-class mean slowdown (completion-weighted over nodes).
  std::vector<double> mean_slowdowns() const;
  std::uint64_t completed_total() const;
  std::uint64_t dispatched(std::size_t node) const { return dispatched_[node]; }

  const AssignmentRouter& router() const { return router_; }

 private:
  Simulator& sim_;
  Rng rng_;  ///< Forks per-node streams; the router gets its own copy.
  AssignmentRouter router_;
  std::vector<std::unique_ptr<Server>> nodes_;
  std::vector<double> outstanding_;
  std::vector<std::uint64_t> dispatched_;
  std::size_t num_classes_ = 0;
};

}  // namespace psd
