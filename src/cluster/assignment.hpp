// Task-assignment policies for multi-node dispatching (Harchol-Balter's
// task assignment [13]; see cluster/dispatcher.hpp for the mechanisms).
// Split out so light-weight configs (ScenarioConfig, GridSpec) can name a
// policy without pulling in the full server composition.
#pragma once

#include <cstddef>
#include <string>

namespace psd {

enum class AssignmentPolicy {
  kRandom,        ///< Uniform random node.
  kRoundRobin,    ///< Cyclic.
  kLeastWorkLeft, ///< Node with the least outstanding work (size-aware).
  kSizeInterval,  ///< SITA-E: size bands with equal expected load per node.
  kJsq,           ///< JSQ(d): least-loaded of d uniformly sampled nodes.
};

/// Copyable, comparable assignment spec (DistSpec / LoadProfile idiom):
/// the policy plus its one parameter — the JSQ sample width d.  Implicitly
/// constructible from a bare AssignmentPolicy so call sites that never
/// touch d keep reading naturally.
struct AssignmentSpec {
  AssignmentPolicy policy = AssignmentPolicy::kRoundRobin;
  std::size_t d = 2;  ///< JSQ sample size; ignored by the other policies.

  AssignmentSpec() = default;
  AssignmentSpec(AssignmentPolicy p, std::size_t jsq_d = 2)  // NOLINT
      : policy(p), d(jsq_d) {}

  void validate() const;

  /// Canonical parsable form: "random" | "rr" | "lwl" | "sita" | "jsq<d>"
  /// (e.g. "jsq2").
  std::string name() const;

  /// Inverse of name().  Also accepts bare "jsq" (d defaults to 2).
  /// Throws psd::Error on malformed input.
  static AssignmentSpec parse(const std::string& spec);

  friend bool operator==(const AssignmentSpec& x, const AssignmentSpec& y) {
    return x.policy == y.policy &&
           (x.policy != AssignmentPolicy::kJsq || x.d == y.d);
  }
  friend bool operator!=(const AssignmentSpec& x, const AssignmentSpec& y) {
    return !(x == y);
  }
};

/// Cluster topology spec: node count plus the assignment policy in front of
/// it.  Grammar: "N" | "N:assignment" (e.g. "4:jsq2", "8:sita").
struct ClusterSpec {
  std::size_t nodes = 1;
  AssignmentSpec assignment;

  void validate() const;

  /// Canonical parsable form ("4:jsq2"); a 1-node cluster still renders its
  /// policy ("1:rr") so name() round-trips losslessly.
  std::string name() const;

  /// Inverse of name(); bare "N" keeps the default round-robin assignment.
  /// Throws psd::Error on malformed input.
  static ClusterSpec parse(const std::string& spec);

  friend bool operator==(const ClusterSpec& x, const ClusterSpec& y) {
    return x.nodes == y.nodes && x.assignment == y.assignment;
  }
  friend bool operator!=(const ClusterSpec& x, const ClusterSpec& y) {
    return !(x == y);
  }
};

}  // namespace psd
