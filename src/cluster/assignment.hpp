// Task-assignment policies for multi-node dispatching (Harchol-Balter's
// task assignment [13]; see cluster/dispatcher.hpp for the mechanisms).
// Split out so light-weight configs (ScenarioConfig, GridSpec) can name a
// policy without pulling in the full server composition.
#pragma once

namespace psd {

enum class AssignmentPolicy {
  kRandom,        ///< Uniform random node.
  kRoundRobin,    ///< Cyclic.
  kLeastWorkLeft, ///< Node with the least outstanding work (size-aware).
  kSizeInterval,  ///< SITA-E: size bands with equal expected load per node.
};

}  // namespace psd
