#include "cluster/assignment.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace psd {

namespace {

const char* policy_token(AssignmentPolicy p) {
  switch (p) {
    case AssignmentPolicy::kRandom: return "random";
    case AssignmentPolicy::kRoundRobin: return "rr";
    case AssignmentPolicy::kLeastWorkLeft: return "lwl";
    case AssignmentPolicy::kSizeInterval: return "sita";
    case AssignmentPolicy::kJsq: return "jsq";
  }
  PSD_UNREACHABLE("unknown assignment policy");
}

/// Strict non-negative integer: the whole token must be digits.
bool parse_size(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  std::size_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<std::size_t>(ch - '0');
  }
  *out = v;
  return true;
}

}  // namespace

void AssignmentSpec::validate() const {
  if (policy == AssignmentPolicy::kJsq) {
    PSD_REQUIRE(d >= 1, "jsq sample size d must be >= 1");
  }
}

std::string AssignmentSpec::name() const {
  if (policy == AssignmentPolicy::kJsq) {
    return "jsq" + std::to_string(d);
  }
  return policy_token(policy);
}

AssignmentSpec AssignmentSpec::parse(const std::string& spec) {
  AssignmentSpec out;
  bool known = false;
  for (auto p : {AssignmentPolicy::kRandom, AssignmentPolicy::kRoundRobin,
                 AssignmentPolicy::kLeastWorkLeft,
                 AssignmentPolicy::kSizeInterval}) {
    if (spec == policy_token(p)) {
      out = AssignmentSpec(p);
      known = true;
    }
  }
  if (!known && spec.rfind("jsq", 0) == 0) {
    out = AssignmentSpec(AssignmentPolicy::kJsq);
    const std::string arg = spec.substr(3);
    if (!arg.empty()) {
      PSD_REQUIRE(parse_size(arg, &out.d),
                  "jsq sample size must be a number ('jsq2')");
    }
    known = true;
  }
  PSD_REQUIRE(known, "unknown assignment policy '" + spec +
                         "' (expected random | rr | lwl | sita | jsq[d])");
  out.validate();
  return out;
}

void ClusterSpec::validate() const {
  PSD_REQUIRE(nodes >= 1, "cluster needs at least one node");
  assignment.validate();
}

std::string ClusterSpec::name() const {
  return std::to_string(nodes) + ":" + assignment.name();
}

ClusterSpec ClusterSpec::parse(const std::string& spec) {
  ClusterSpec out;
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  PSD_REQUIRE(parse_size(head, &out.nodes),
              "cluster node count must be a number");
  if (colon != std::string::npos) {
    out.assignment = AssignmentSpec::parse(spec.substr(colon + 1));
  }
  out.validate();
  return out;
}

}  // namespace psd
