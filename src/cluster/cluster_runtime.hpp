// Cluster-scale serving: N in-process rt::Runtime "nodes" behind the shared
// assignment dispatcher, steered by one GLOBAL controller.
//
// This is the rt counterpart of the simulation Cluster (cluster/
// dispatcher.hpp), composed from the same parts the single-node runtime
// uses:
//
//   * each node is an EMBEDDED Runtime (rt/handle.hpp): its own shards,
//     seqlock snapshots, and a node controller pinned to AllocatorKind::
//     kNone — node ticks publish snapshots and stage admission updates but
//     never write rates, so the global controller is the single rate writer;
//   * arrivals come from the runtime's own SyntheticLoadGen sources in sink
//     mode: every produced request lands in dispatch(), which runs the
//     AssignmentRouter (cluster/router.hpp — the identical policy
//     implementation the simulation validates) and submits to the chosen
//     node's handle;
//   * the GlobalController re-runs the paper's eq.-17 allocator one level
//     up: it aggregates lambda estimates and exactly-once window-slowdown
//     feedback across every alive node's shard snapshots, allocates against
//     the ALIVE cluster capacity, and splits each class's global rate
//     across nodes by the router's work weights (uniform for the symmetric
//     policies, band shares under SITA-E) — holding per-class slowdown
//     ratios cluster-wide, not merely per node.
//
// Node failure is first-class: kill(node) flips the router's alive mask
// (dispatch + rebalance both skip the corpse), freezes the node's metrics,
// and shrinks the allocator's capacity, after which the cluster re-converges
// — the report measures how fast (settle time, stats/convergence.hpp).
//
// Like Runtime, the whole thing drives two ways: run() spawns shard/
// generator/controller threads on the wall clock (psdcluster), step_to()
// advances everything deterministically under a ManualClock (tests;
// bitwise-identical reports at a fixed seed).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "obs/cluster_stats.hpp"
#include "rt/handle.hpp"

namespace psd::rt {

struct ClusterRtConfig {
  /// Per-node topology/workload template: shards, deltas, size dist, LOAD
  /// (per-shard utilization — total arrival rate scales with the node
  /// count), controller cadence, warmup/duration, admission, seed.  The
  /// node-level allocator field selects the GLOBAL allocator; node
  /// controllers themselves run rate-less (see file header).
  RtConfig node;
  std::size_t nodes = 2;
  AssignmentSpec assignment{AssignmentPolicy::kRoundRobin};
  /// Global-controller cadence in seconds (also the stats sampling grid).
  /// The settle-time report quotes this as the rebalance resolution.
  double rebalance_period = 0.05;
  /// Node-failure injection: at `kill_at` seconds, `kill_node` is removed
  /// (dispatch stops, shards stop draining, metrics freeze).  Negative =
  /// never.
  double kill_at = -1.0;
  std::size_t kill_node = 0;
  /// psd.cluster.stats.v1 JSONL path; empty = no stream.
  std::string stats_path;

  std::size_t num_classes() const { return node.num_classes(); }
  void validate() const;
};

/// The cluster-wide reallocation loop: rt/controller.hpp's aggregation
/// semantics applied across every alive node's shards, with the rate split
/// delegated to the router's work weights.  tick() is synchronous and
/// called from exactly one thread at a time (the cluster's controller
/// thread, or the deterministic driver).
class GlobalController {
 public:
  struct Config {
    std::vector<double> delta;
    double node_capacity = 1.0;  ///< Sum of ONE node's shard capacities.
    double mean_size = 1.0;
    AllocatorKind allocator = AllocatorKind::kAdaptivePsd;
    AdaptiveConfig adaptive;
    double rho_max = 0.98;
    double min_residual_share = 1e-3;
  };

  /// `nodes` and `router` are borrowed and must outlive the controller.
  GlobalController(Config cfg, std::vector<RuntimeHandle*> nodes,
                   const AssignmentRouter* router);

  /// Aggregate estimates over alive nodes, reallocate against alive
  /// capacity, push per-node rate slices.
  void tick(Time now);

  /// Re-arm after an alive-mask change: rebuilds the allocator against the
  /// new alive capacity (the adaptive integrator restarts — re-convergence
  /// after a kill is exactly what the settle metric measures).
  void on_topology_change();

  const std::vector<double>& rates() const { return rates_; }
  const std::vector<double>& last_lambda() const { return lambda_; }
  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t allocations() const { return allocations_; }

 private:
  void rebuild_allocator();

  Config cfg_;
  std::vector<RuntimeHandle*> nodes_;
  const AssignmentRouter* router_;
  std::unique_ptr<RateAllocator> allocator_;  ///< Null for kNone.
  /// Last window_seq seen per (node, shard, class) — the same exactly-once
  /// feedback gate the node controller applies per (shard, class).
  std::vector<std::uint64_t> windows_seen_;
  std::size_t shards_per_node_;
  std::vector<double> rates_;   ///< Global (cluster-summed) per-class rates.
  std::vector<double> lambda_;  ///< Last aggregated arrival estimate.
  std::uint64_t ticks_ = 0;
  std::uint64_t allocations_ = 0;
};

struct ClusterClassReport {
  double delta = 0.0;
  std::uint64_t completed = 0;  ///< Post-warmup, all nodes.
  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  double mean_slowdown = kNaN;   ///< Completion-weighted over nodes.
  /// Median per-window slowdown ratio vs class 0, pooled across every
  /// shard of every node (stats/convergence.hpp).
  double window_ratio_p50 = kNaN;
  double target_ratio = kNaN;
  /// Seconds past the disturbance onset (node kill, else profile step)
  /// until the cluster-merged windowed ratio re-entered and held the
  /// tolerance band; NaN without an onset or when it never settled.
  double settle_seconds = kNaN;
};

struct ClusterNodeReport {
  bool alive = true;
  std::uint64_t dispatched = 0;  ///< Requests routed to this node.
  RtReport rt;                   ///< The node's own (per-node) report.
};

struct ClusterReport {
  std::vector<ClusterClassReport> cls;
  /// Worst |pooled window ratio / target - 1| over classes, cluster-wide.
  double max_window_ratio_error = kNaN;
  /// Worst PER-NODE windowed ratio error over nodes alive at the end: the
  /// differentiation must hold on every node, not just in aggregate.
  double cross_node_ratio_error = kNaN;
  /// Max over classes of settle_seconds; NaN poisons (a class that never
  /// re-converged must fail a bounded check).  NaN without an onset.
  double max_settle_seconds = kNaN;
  double settle_onset = kNaN;  ///< The onset used (kill time/profile step).
  std::uint64_t produced = 0;
  std::uint64_t dropped = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t completed_total = 0;  ///< Post-warmup, all nodes.
  std::uint64_t outstanding = 0;      ///< Alive nodes only.
  /// Requests stranded on killed nodes (accepted, never completed).
  std::uint64_t lost_to_kill = 0;
  double elapsed = 0.0;
  std::uint64_t rebalances = 0;   ///< Global ticks that produced new rates.
  std::uint64_t global_ticks = 0;
  /// Mean dispatcher cost (route + submit) in nanoseconds.  NaN under a
  /// ManualClock: timing reads would break bitwise determinism.
  double mean_dispatch_ns = kNaN;
  std::vector<ClusterNodeReport> node;
};

class ClusterRuntime {
 public:
  ClusterRuntime(ClusterRtConfig cfg, ClockVariant clock);

  // --- threaded drive (SteadyClock) ---

  /// Spawn per-node shard threads, generator threads, and one controller
  /// thread (node ticks + global rebalances); honor cfg.kill_at; run for
  /// cfg.node.duration, drain, report.  One-shot.
  ClusterReport run();

  // --- deterministic drive (ManualClock) ---

  /// Advance generators, every alive node (its shards + rate-less node
  /// controller), and the global controller to `t` on the calling thread.
  /// Crossing cfg.kill_at performs the kill at exactly that time.
  void step_to(Time t);

  /// Keep stepping past end-of-load until alive nodes drained (or
  /// `max_extra` model seconds pass).
  void quiesce(Duration max_extra = 10.0, Duration step = 0.01);

  /// Finalize every alive node's metrics; idempotent.  run() does this.
  void finish();

  ClusterReport report() const;

  /// Remove a node immediately (deterministic drive; threaded runs use
  /// cfg.kill_at).  At least one node must survive.
  void kill(std::size_t node);

  std::size_t nodes() const { return handles_.size(); }
  RuntimeHandle& node(std::size_t i) { return handles_[i]; }
  const AssignmentRouter& router() const { return *router_; }
  const GlobalController& global_controller() const { return *global_; }
  const ClusterRtConfig& config() const { return cfg_; }
  ClockVariant& clock() { return clock_; }

 private:
  /// Sink for every generated arrival: route via the AssignmentRouter and
  /// submit to the chosen node.  Serialized by dispatch_m_ (the cluster has
  /// one logical dispatcher; the mutex is uncontended under a single
  /// generator thread and is part of the measured dispatch cost otherwise).
  void dispatch(const Request& req);
  void step_to_internal(Time t);
  void global_tick(Time now);
  /// Router flip (under the dispatch mutex) -> optional thread stop hook
  /// (threaded mode joins the node's shard threads here) -> metrics freeze
  /// -> allocator re-arm -> stats event.
  void do_kill(std::size_t node, const std::function<void()>& stop_node = {});
  void sample_stats(Time now);
  std::uint64_t alive_outstanding() const;

  ClusterRtConfig cfg_;
  ClockVariant clock_;
  std::vector<std::unique_ptr<Runtime>> nodes_;
  std::vector<RuntimeHandle> handles_;
  std::optional<AssignmentRouter> router_;
  std::unique_ptr<GlobalController> global_;
  std::vector<std::unique_ptr<LoadSource>> gens_;
  std::unique_ptr<obs::ClusterStatsLog> stats_;

  mutable std::mutex dispatch_m_;
  std::vector<double> load_signal_;  ///< Per-node outstanding, reused.
  std::vector<std::uint64_t> dispatched_;
  std::uint64_t dispatch_ns_ = 0;     ///< Threaded mode only (see report).
  std::uint64_t dispatch_timed_ = 0;  ///< Requests with a timed dispatch.

  Time next_rebalance_;
  bool killed_ = false;        ///< A kill was executed.
  double kill_time_ = kNaN;    ///< When (the settle onset).
  double run_elapsed_ = -1.0;  ///< Set once a threaded run completes.
  bool ran_ = false;
  bool finalized_ = false;
};

}  // namespace psd::rt
