// The one task-assignment implementation both dispatchers share.
//
// The sim Cluster (cluster/dispatcher.cpp) and the rt ClusterRuntime
// (cluster/cluster_runtime.cpp) used to need their own routing switches;
// AssignmentRouter hoists the policy state — SITA-E cutoffs (computed once,
// not per request), the round-robin cursor, the RNG stream, and the alive
// mask — behind a single route() call, so a policy behaves identically in
// simulation and serving and a fix lands in both at once.
//
// Node failure is an alive-mask flip: dead nodes are skipped by every
// policy, and a SITA-E band whose home node died reroutes to the next alive
// node (wrapping), keeping the dispatcher total-function under failures.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/assignment.hpp"
#include "common/rng.hpp"

namespace psd {

class AssignmentRouter {
 public:
  /// `cutoffs` is required (size nodes-1, increasing) for kSizeInterval —
  /// precompute with sita_equal_load_cutoffs(); ignored otherwise.
  AssignmentRouter(AssignmentSpec spec, std::size_t nodes, Rng rng,
                   std::vector<double> cutoffs = {});

  /// Pick the target node for a request of `size`, given the policy's
  /// per-node load signal (outstanding work in the sim, outstanding
  /// requests in rt; only kLeastWorkLeft and kJsq read it).  Always returns
  /// an alive node.
  std::size_t route(double size, const std::vector<double>& load);

  /// Flip a node's liveness.  At least one node must stay alive.
  void set_alive(std::size_t node, bool alive);
  bool alive(std::size_t node) const { return alive_[node] != 0; }
  std::size_t alive_count() const { return alive_n_; }

  std::size_t nodes() const { return alive_.size(); }
  const AssignmentSpec& spec() const { return spec_; }
  const std::vector<double>& cutoffs() const { return cutoffs_; }

  /// Long-run fraction of dispatched WORK each node carries under the
  /// current alive mask, by policy construction: SITA-E bands carry equal
  /// expected load, so an alive node's weight is (bands homed or rerouted
  /// to it) / (total bands); every other policy spreads work uniformly over
  /// the alive nodes.  Dead nodes weigh 0.  The cluster-level allocator
  /// splits per-node rates with this.
  std::vector<double> work_weights() const;

 private:
  std::size_t nth_alive(std::size_t k) const;
  std::size_t next_alive_from(std::size_t node) const;  ///< Wrapping.

  AssignmentSpec spec_;
  Rng rng_;
  std::vector<double> cutoffs_;
  std::vector<std::uint8_t> alive_;
  std::size_t alive_n_;
  std::size_t rr_next_ = 0;
};

}  // namespace psd
