#include "cluster/router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

AssignmentRouter::AssignmentRouter(AssignmentSpec spec, std::size_t nodes,
                                   Rng rng, std::vector<double> cutoffs)
    : spec_(spec),
      rng_(rng),
      cutoffs_(std::move(cutoffs)),
      alive_(nodes, 1),
      alive_n_(nodes) {
  PSD_REQUIRE(nodes >= 1, "need at least one node");
  spec_.validate();
  if (spec_.policy == AssignmentPolicy::kSizeInterval) {
    PSD_REQUIRE(cutoffs_.size() == nodes - 1,
                "size-interval policy needs nodes-1 cutoffs");
    PSD_REQUIRE(std::is_sorted(cutoffs_.begin(), cutoffs_.end()),
                "cutoffs must be increasing");
  }
}

void AssignmentRouter::set_alive(std::size_t node, bool alive) {
  PSD_REQUIRE(node < alive_.size(), "node index out of range");
  if ((alive_[node] != 0) == alive) return;
  PSD_REQUIRE(alive || alive_n_ > 1, "cannot kill the last alive node");
  alive_[node] = alive ? 1 : 0;
  alive_n_ += alive ? 1 : static_cast<std::size_t>(-1);
}

std::size_t AssignmentRouter::nth_alive(std::size_t k) const {
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0 && k-- == 0) return i;
  }
  PSD_UNREACHABLE("alive-node rank out of range");
}

std::size_t AssignmentRouter::next_alive_from(std::size_t node) const {
  for (std::size_t step = 0; step < alive_.size(); ++step) {
    const std::size_t i = (node + step) % alive_.size();
    if (alive_[i] != 0) return i;
  }
  PSD_UNREACHABLE("no alive node");
}

std::size_t AssignmentRouter::route(double size,
                                    const std::vector<double>& load) {
  switch (spec_.policy) {
    case AssignmentPolicy::kRandom:
      return nth_alive(static_cast<std::size_t>(rng_.below(alive_n_)));
    case AssignmentPolicy::kRoundRobin: {
      const std::size_t n = next_alive_from(rr_next_);
      rr_next_ = (n + 1) % alive_.size();
      return n;
    }
    case AssignmentPolicy::kLeastWorkLeft: {
      std::size_t best = next_alive_from(0);
      for (std::size_t i = best + 1; i < alive_.size(); ++i) {
        if (alive_[i] != 0 && load[i] < load[best]) best = i;
      }
      return best;
    }
    case AssignmentPolicy::kSizeInterval: {
      const auto it =
          std::upper_bound(cutoffs_.begin(), cutoffs_.end(), size);
      // A dead node's band reroutes to the next alive node (wrapping).
      return next_alive_from(static_cast<std::size_t>(it - cutoffs_.begin()));
    }
    case AssignmentPolicy::kJsq: {
      // Power of d choices (Mitzenmacher): least-loaded of d uniformly
      // sampled alive nodes (with replacement — the standard analysis);
      // ties break to the lowest index.  d >= alive degenerates to a full
      // least-loaded scan, which makes JSQ(n) testable against lwl.
      if (spec_.d >= alive_n_) {
        std::size_t best = next_alive_from(0);
        for (std::size_t i = best + 1; i < alive_.size(); ++i) {
          if (alive_[i] != 0 && load[i] < load[best]) best = i;
        }
        return best;
      }
      std::size_t best =
          nth_alive(static_cast<std::size_t>(rng_.below(alive_n_)));
      for (std::size_t draw = 1; draw < spec_.d; ++draw) {
        const std::size_t pick =
            nth_alive(static_cast<std::size_t>(rng_.below(alive_n_)));
        if (load[pick] < load[best] ||
            (load[pick] == load[best] && pick < best)) {
          best = pick;
        }
      }
      return best;
    }
  }
  PSD_UNREACHABLE("unknown assignment policy");
}

std::vector<double> AssignmentRouter::work_weights() const {
  std::vector<double> w(alive_.size(), 0.0);
  if (spec_.policy == AssignmentPolicy::kSizeInterval) {
    // Every band carries an equal share of the work by SITA-E construction;
    // a dead node's band adds its share to the node it reroutes to.
    const double band = 1.0 / static_cast<double>(alive_.size());
    for (std::size_t b = 0; b < alive_.size(); ++b) {
      w[next_alive_from(b)] += band;
    }
    return w;
  }
  const double share = 1.0 / static_cast<double>(alive_n_);
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i] != 0) w[i] = share;
  }
  return w;
}

}  // namespace psd
