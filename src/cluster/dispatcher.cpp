#include "cluster/dispatcher.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

std::vector<double> sita_equal_load_cutoffs(const BoundedPareto& dist,
                                            std::size_t nodes) {
  PSD_REQUIRE(nodes >= 1, "need at least one node");
  // Partial expected work up to x: W(x) = g (x^{1-a} - k^{1-a}) / (1-a)
  // (log form at a == 1); each node takes an equal share of W(p).
  const double a = dist.alpha();
  const double g = dist.normalizer();
  const double k = dist.lower();
  auto partial = [&](double x) {
    if (std::abs(a - 1.0) < 1e-12) return g * std::log(x / k);
    return g * (std::pow(x, 1.0 - a) - std::pow(k, 1.0 - a)) / (1.0 - a);
  };
  const double total = partial(dist.upper());
  std::vector<double> cutoffs;
  cutoffs.reserve(nodes - 1);
  for (std::size_t n = 1; n < nodes; ++n) {
    const double target = total * static_cast<double>(n) /
                          static_cast<double>(nodes);
    double lo = dist.lower(), hi = dist.upper();
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (partial(mid) < target ? lo : hi) = mid;
    }
    cutoffs.push_back(0.5 * (lo + hi));
  }
  return cutoffs;
}

Cluster::Cluster(Simulator& sim, std::size_t nodes,
                 const ServerConfig& node_cfg,
                 const BackendFactory& backend_factory,
                 const AllocatorFactory& allocator_factory,
                 AssignmentSpec policy, Rng rng, std::vector<double> cutoffs)
    // The router takes its own copy of `rng`: forks (per-node streams below)
    // don't advance the source, so the random policy draws the same sequence
    // it drew when the dispatcher owned the stream directly.
    : sim_(sim), rng_(rng), router_(policy, nodes, rng, std::move(cutoffs)) {
  PSD_REQUIRE(backend_factory != nullptr, "backend factory required");
  num_classes_ = node_cfg.num_classes;
  nodes_.reserve(nodes);
  outstanding_.assign(nodes, 0.0);
  dispatched_.assign(nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    auto allocator = allocator_factory ? allocator_factory() : nullptr;
    nodes_.push_back(std::make_unique<Server>(sim, node_cfg,
                                              backend_factory(),
                                              std::move(allocator),
                                              rng_.fork(9000 + i)));
    Server* node = nodes_.back().get();
    double* out = &outstanding_[i];
    node->set_completion_observer(
        [out](const Request& req) { *out -= req.size; });
  }
}

void Cluster::start(Time origin) {
  for (auto& n : nodes_) n->start(origin);
}

void Cluster::submit(const Request& req) {
  const std::size_t n = router_.route(req.size, outstanding_);
  outstanding_[n] += req.size;
  ++dispatched_[n];
  nodes_[n]->submit(req);
}

void Cluster::finalize() {
  for (auto& n : nodes_) n->finalize();
}

std::vector<double> Cluster::mean_slowdowns() const {
  std::vector<double> out(num_classes_, kNaN);
  for (ClassId c = 0; c < num_classes_; ++c) {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto& n : nodes_) {
      const auto& m = n->metrics().slowdown(c);
      if (m.count() > 0) {
        sum += m.mean() * static_cast<double>(m.count());
        count += m.count();
      }
    }
    if (count > 0) out[c] = sum / static_cast<double>(count);
  }
  return out;
}

std::uint64_t Cluster::completed_total() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->metrics().completed_total();
  return n;
}

}  // namespace psd
