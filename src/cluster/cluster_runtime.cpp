#include "cluster/cluster_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "baselines/static_allocators.hpp"
#include "cluster/dispatcher.hpp"
#include "core/psd_rate_allocator.hpp"
#include "dist/sampler.hpp"
#include "stats/convergence.hpp"
#include "workload/class_spec.hpp"

namespace psd::rt {

void ClusterRtConfig::validate() const {
  node.validate();
  PSD_REQUIRE(nodes >= 1 && nodes <= 64, "cluster needs 1..64 nodes");
  assignment.validate();
  PSD_REQUIRE(rebalance_period > 0.0, "rebalance period must be positive");
  if (assignment.policy == AssignmentPolicy::kSizeInterval) {
    // SITA-E cutoffs partition the size distribution's support into
    // equal-work bands, which the closed form below only knows how to do
    // for the paper's bounded-Pareto workload.
    PSD_REQUIRE(node.size_dist.kind == DistSpec::Kind::kBoundedPareto,
                "SITA-E cutoffs require a bounded-pareto size distribution");
  }
  if (kill_at >= 0.0) {
    PSD_REQUIRE(nodes >= 2, "cannot kill a node of a 1-node cluster");
    PSD_REQUIRE(kill_node < nodes, "kill node out of range");
    PSD_REQUIRE(kill_at > 0.0 && kill_at < node.duration,
                "kill time must fall inside the run");
  }
}

namespace {

/// The rt controller's allocator switch, rebuilt against a given capacity —
/// the global controller re-runs it every time the alive set changes.
std::unique_ptr<RateAllocator> make_global_allocator(
    const GlobalController::Config& cfg, double capacity) {
  PsdAllocatorConfig pc;
  pc.delta = cfg.delta;
  pc.capacity = capacity;
  pc.mean_size = cfg.mean_size;
  pc.rho_max = cfg.rho_max;
  pc.min_residual_share = cfg.min_residual_share;
  switch (cfg.allocator) {
    case AllocatorKind::kPsd:
      return std::make_unique<PsdRateAllocator>(pc);
    case AllocatorKind::kAdaptivePsd:
      return std::make_unique<AdaptivePsdAllocator>(pc, cfg.adaptive);
    case AllocatorKind::kEqualShare:
      return std::make_unique<EqualShareAllocator>(cfg.delta.size(), capacity);
    case AllocatorKind::kLoadProportional:
      return std::make_unique<LoadProportionalAllocator>(
          cfg.delta.size(), capacity, cfg.mean_size);
    case AllocatorKind::kNone:
      return nullptr;
  }
  PSD_UNREACHABLE("unknown allocator kind");
}

}  // namespace

GlobalController::GlobalController(Config cfg,
                                   std::vector<RuntimeHandle*> nodes,
                                   const AssignmentRouter* router)
    : cfg_(std::move(cfg)), nodes_(std::move(nodes)), router_(router) {
  PSD_REQUIRE(!nodes_.empty(), "global controller needs at least one node");
  PSD_REQUIRE(router_ != nullptr, "global controller needs the router");
  PSD_REQUIRE(!cfg_.delta.empty() && cfg_.delta.size() <= kMaxRtClasses,
              "global controller supports 1..kMaxRtClasses classes");
  shards_per_node_ = nodes_[0]->num_shards();
  windows_seen_.assign(nodes_.size() * shards_per_node_ * cfg_.delta.size(),
                       0);
  // Until the first warm tick every shard runs its initial equal split.
  rates_.assign(cfg_.delta.size(),
                cfg_.node_capacity * static_cast<double>(nodes_.size()) /
                    static_cast<double>(cfg_.delta.size()));
  lambda_.assign(cfg_.delta.size(), 0.0);
  rebuild_allocator();
}

void GlobalController::rebuild_allocator() {
  const double capacity =
      cfg_.node_capacity * static_cast<double>(router_->alive_count());
  allocator_ = make_global_allocator(cfg_, capacity);
}

void GlobalController::on_topology_change() {
  // A fresh allocator against the shrunken capacity: the adaptive
  // integrator restarts from the stationary eq.-17 point, and the time it
  // takes to re-tighten the ratios is exactly the settle metric.
  rebuild_allocator();
}

void GlobalController::tick(Time now) {
  (void)now;
  const std::size_t n = cfg_.delta.size();
  std::vector<double> lambda(n, 0.0);
  std::vector<double> sd_sum(n, 0.0);
  std::vector<std::uint32_t> sd_cnt(n, 0);
  bool fresh_window = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!router_->alive(i)) continue;
    const auto snaps = nodes_[i]->shard_snapshots();
    for (std::size_t s = 0; s < snaps.size(); ++s) {
      const ShardSnapshot& snap = snaps[s];
      for (std::size_t c = 0; c < n; ++c) {
        lambda[c] += snap.lambda_hat[c];
        // Same exactly-once feedback gate the node controller applies per
        // (shard, class), here keyed by (node, shard, class): each closed
        // metrics window feeds the adaptive integrator once, cluster-wide.
        std::uint64_t& seen =
            windows_seen_[(i * shards_per_node_ + s) * n + c];
        const bool advanced = snap.window_seq[c] > seen;
        seen = snap.window_seq[c];
        if (advanced && std::isfinite(snap.window_slowdown[c])) {
          sd_sum[c] += snap.window_slowdown[c];
          ++sd_cnt[c];
          fresh_window = true;
        }
      }
    }
  }
  std::vector<double> mean_sd(n, kNaN);
  for (std::size_t c = 0; c < n; ++c) {
    if (sd_cnt[c] > 0) mean_sd[c] = sd_sum[c] / sd_cnt[c];
  }

  ++ticks_;
  lambda_ = lambda;
  const double total = std::accumulate(lambda.begin(), lambda.end(), 0.0);
  // Cold start keeps the initial equal split, like the node controller.
  if (allocator_ != nullptr && total > 0.0) {
    if (fresh_window) allocator_->observe_slowdowns(mean_sd);
    rates_ = allocator_->allocate(lambda);
    ++allocations_;
    // Split each class's global rate across alive nodes by the router's
    // work weights: uniform for the symmetric policies, band shares under
    // SITA-E (a band node sees only its band's work, so its slice must
    // match what the dispatcher actually sends there).
    const std::vector<double> w = router_->work_weights();
    std::vector<double> node_rates(n);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!router_->alive(i)) continue;
      for (std::size_t c = 0; c < n; ++c) node_rates[c] = rates_[c] * w[i];
      nodes_[i]->set_rates(node_rates, ticks_);
    }
  }
}

ClusterRuntime::ClusterRuntime(ClusterRtConfig cfg, ClockVariant clock)
    : cfg_(std::move(cfg)),
      clock_(std::move(clock)),
      next_rebalance_(cfg_.rebalance_period) {
  cfg_.validate();

  // Nodes: embedded runtimes with RATE-LESS controllers — node ticks still
  // publish controller snapshots and stage admission updates, but the
  // global controller is the single rate writer.  The node template's
  // allocator field selects the GLOBAL allocator instead.
  RtConfig nc = cfg_.node;
  const AllocatorKind global_alloc = nc.allocator;
  nc.allocator = AllocatorKind::kNone;
  nodes_.reserve(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    // Distinct per-node seeds (shard RNG forks diverge per node) derived
    // deterministically from the template seed.
    SplitMix64 sm(cfg_.node.seed + 0x9E3779B97F4A7C15ULL * (i + 1));
    nc.seed = sm.next();
    nodes_.push_back(std::make_unique<Runtime>(nc, clock_, EmbeddedTag{}));
  }
  handles_.reserve(cfg_.nodes);
  for (auto& node : nodes_) handles_.emplace_back(*node);

  // Router: the same assignment implementation the simulation validates.
  // SITA-E cutoffs are precomputed once from the size distribution.
  Rng master(cfg_.node.seed);
  std::vector<double> cutoffs;
  if (cfg_.assignment.policy == AssignmentPolicy::kSizeInterval) {
    const BoundedPareto bp(cfg_.node.size_dist.a, cfg_.node.size_dist.b,
                           cfg_.node.size_dist.c);
    cutoffs = sita_equal_load_cutoffs(bp, cfg_.nodes);
  }
  router_.emplace(cfg_.assignment, cfg_.nodes, master.fork(8000),
                  std::move(cutoffs));

  GlobalController::Config gc;
  gc.delta = cfg_.node.delta;
  gc.node_capacity =
      cfg_.node.shard_capacity() * static_cast<double>(cfg_.node.shards);
  gc.mean_size = make_sampler(cfg_.node.size_dist).mean();
  gc.allocator = global_alloc;
  gc.adaptive = cfg_.node.adaptive;
  gc.rho_max = cfg_.node.rho_max;
  gc.min_residual_share = cfg_.node.min_residual_share;
  std::vector<RuntimeHandle*> handle_ptrs;
  handle_ptrs.reserve(handles_.size());
  for (auto& h : handles_) handle_ptrs.push_back(&h);
  global_ = std::make_unique<GlobalController>(
      std::move(gc), std::move(handle_ptrs), &*router_);

  // Load sources: the single-node Runtime's construction verbatim, except
  // per-class rates scale with the node count (cfg.node.load is per-SHARD
  // utilization, cluster-wide) and every produced request lands in
  // dispatch() via the sink instead of being sprayed over local shards.
  const auto lam_node = cfg_.node.lambdas();
  const double scale = static_cast<double>(cfg_.nodes) /
                       static_cast<double>(cfg_.node.loadgens);
  const SamplerVariant sampler = make_sampler(cfg_.node.size_dist);
  for (std::size_t g = 0; g < cfg_.node.loadgens; ++g) {
    std::vector<SyntheticLoadGen::ClassLoad> classes;
    classes.reserve(cfg_.num_classes());
    for (std::size_t c = 0; c < cfg_.num_classes(); ++c) {
      const double rate = lam_node[c] * scale;
      if (cfg_.node.arrivals.kind == ArrivalKind::kPoisson &&
          !cfg_.node.profile.active()) {
        classes.push_back(
            {static_cast<ClassId>(c), PoissonArrivals(rate), sampler});
      } else {
        classes.push_back(
            {static_cast<ClassId>(c),
             make_arrivals(cfg_.node.arrivals, rate, cfg_.node.profile),
             sampler});
      }
    }
    gens_.push_back(std::make_unique<SyntheticLoadGen>(
        static_cast<std::uint32_t>(g), master.fork(100 + g),
        std::move(classes), [this](const Request& req) { dispatch(req); },
        0.0));
  }

  load_signal_.assign(cfg_.nodes, 0.0);
  dispatched_.assign(cfg_.nodes, 0);

  if (!cfg_.stats_path.empty()) {
    stats_ = std::make_unique<obs::ClusterStatsLog>(
        cfg_.stats_path, cfg_.nodes, cfg_.num_classes(),
        cfg_.assignment.name());
  }
}

void ClusterRuntime::dispatch(const Request& req) {
  std::lock_guard<std::mutex> lock(dispatch_m_);
  // Timing only on the wall clock: steady_clock reads under a ManualClock
  // would cost nothing semantically but break bitwise determinism of the
  // report, which the tests rely on.
  const bool timed = !clock_.is_manual();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  const AssignmentPolicy policy = cfg_.assignment.policy;
  if (policy == AssignmentPolicy::kLeastWorkLeft ||
      policy == AssignmentPolicy::kJsq) {
    // The rt load signal is outstanding REQUESTS per node (accepted, not
    // yet completed) — the queue-length analogue of the simulator's
    // work-left signal, and what JSQ classically samples.
    for (std::size_t i = 0; i < handles_.size(); ++i) {
      load_signal_[i] =
          router_->alive(i)
              ? static_cast<double>(handles_[i].outstanding())
              : 0.0;
    }
  }
  const std::size_t n = router_->route(req.size, load_signal_);
  ++dispatched_[n];
  handles_[n].submit(req);
  if (timed) {
    dispatch_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++dispatch_timed_;
  }
}

void ClusterRuntime::global_tick(Time now) {
  global_->tick(now);
  if (stats_ != nullptr) sample_stats(now);
}

void ClusterRuntime::sample_stats(Time now) {
  const std::size_t n = cfg_.num_classes();
  std::vector<std::uint64_t> dispatched;
  {
    std::lock_guard<std::mutex> lock(dispatch_m_);
    dispatched = dispatched_;
  }
  std::vector<obs::ClusterNodeStats> per_node(handles_.size());
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    per_node[i].alive = router_->alive(i);
    per_node[i].dispatched = dispatched[i];
    per_node[i].outstanding = handles_[i].outstanding();
    per_node[i].lambda.assign(n, 0.0);
    for (const ShardSnapshot& snap : handles_[i].shard_snapshots()) {
      for (std::size_t c = 0; c < n; ++c) {
        per_node[i].lambda[c] += snap.lambda_hat[c];
      }
    }
  }
  stats_->sample(now, per_node, global_->rates(), global_->allocations());
}

void ClusterRuntime::do_kill(std::size_t node,
                             const std::function<void()>& stop_node) {
  {
    // Flip under the dispatch mutex: no arrival routes to the corpse after
    // this point, and the in-flight dispatch (if any) completed first.
    std::lock_guard<std::mutex> lock(dispatch_m_);
    router_->set_alive(node, false);
  }
  if (stop_node) stop_node();  // Threaded mode joins shard threads here.
  // Freeze the node's metrics at the kill instant: its windows end here,
  // its outstanding requests are stranded (counted as lost_to_kill).
  nodes_[node]->finish();
  global_->on_topology_change();
  killed_ = true;
  kill_time_ = clock_.now();
  if (stats_ != nullptr) stats_->kill(kill_time_, node);
}

void ClusterRuntime::kill(std::size_t node) {
  PSD_REQUIRE(clock_.is_manual(),
              "kill() is the deterministic-drive API; threaded runs use "
              "cfg.kill_at");
  PSD_REQUIRE(node < handles_.size(), "kill node out of range");
  PSD_REQUIRE(router_->alive(node), "node already dead");
  do_kill(node);
}

void ClusterRuntime::step_to(Time t) {
  PSD_REQUIRE(clock_.manual() != nullptr, "step_to requires a ManualClock");
  PSD_REQUIRE(!ran_, "step_to cannot mix with a threaded run()");
  if (!killed_ && cfg_.kill_at >= 0.0 && t >= cfg_.kill_at) {
    // Split the step at the kill instant so the kill lands at exactly
    // cfg.kill_at regardless of the caller's step granularity.
    step_to_internal(cfg_.kill_at);
    do_kill(cfg_.kill_node);
  }
  step_to_internal(t);
}

void ClusterRuntime::step_to_internal(Time t) {
  clock_.manual()->advance_to(t);
  // Load stops at cfg.node.duration in both drive modes; quiesce steps
  // beyond it to drain.
  const Time gen_horizon = std::min(t, cfg_.node.duration);
  for (auto& g : gens_) g->step_until(gen_horizon);
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    // Each alive node advances its own clock copy to t, drains its shards,
    // runs its (rate-less) controller ticks, and samples its exporter.
    if (router_->alive(i)) handles_[i].step_to(t);
  }
  while (next_rebalance_ <= t) {
    global_tick(next_rebalance_);
    next_rebalance_ += cfg_.rebalance_period;
  }
}

void ClusterRuntime::quiesce(Duration max_extra, Duration step) {
  PSD_REQUIRE(clock_.is_manual(), "quiesce requires a ManualClock");
  Time t = clock_.now();
  const Time limit = t + max_extra;
  while (alive_outstanding() > 0 && t < limit) {
    t = std::min(t + step, limit);
    step_to(t);
  }
}

std::uint64_t ClusterRuntime::alive_outstanding() const {
  std::lock_guard<std::mutex> lock(dispatch_m_);
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    if (router_->alive(i)) n += handles_[i].outstanding();
  }
  return n;
}

void ClusterRuntime::finish() {
  if (finalized_) return;
  finalized_ = true;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    if (router_->alive(i)) nodes_[i]->finish();
  }
}

ClusterReport ClusterRuntime::run() {
  PSD_REQUIRE(!ran_ && !finalized_, "run() is one-shot");
  PSD_REQUIRE(!clock_.is_manual(),
              "run() spins wall-clock threads; use step_to with ManualClock");
  ran_ = true;

  const std::size_t num_nodes = handles_.size();
  std::atomic<bool> stop_gen{false};
  std::atomic<bool> stop_rest{false};
  std::atomic<bool> kill_requested{false};
  // Per-node stop flags so a mid-run kill can stop just that node's shard
  // threads while the rest of the cluster keeps serving.
  std::unique_ptr<std::atomic<bool>[]> node_stop(
      new std::atomic<bool>[num_nodes]);
  for (std::size_t i = 0; i < num_nodes; ++i) node_stop[i].store(false);

  std::vector<std::vector<std::thread>> node_threads(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    for (std::size_t s = 0; s < handles_[i].num_shards(); ++s) {
      node_threads[i].emplace_back([this, i, s, &node_stop, &stop_rest] {
        Shard& sh = handles_[i].runtime().shard(s);
        while (!stop_rest.load(std::memory_order_acquire) &&
               !node_stop[i].load(std::memory_order_acquire)) {
          if (sh.drain(clock_.now()) == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
        }
      });
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(gens_.size() + 1);
  for (std::size_t g = 0; g < gens_.size(); ++g) {
    threads.emplace_back([this, g, &stop_gen] {
      LoadSource& gen = *gens_[g];
      while (!stop_gen.load(std::memory_order_acquire)) {
        gen.step_until(clock_.now());
        const double dt = gen.next_time() - clock_.now();
        if (dt > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(std::min(dt, 1e-3)));
        }
      }
    });
  }

  // One controller thread drives node ticks, global rebalances, AND the
  // kill: topology changes live on this thread so the router's alive mask
  // has exactly one writer (dispatch reads it under the dispatch mutex).
  threads.emplace_back([this, num_nodes, &stop_rest, &kill_requested,
                        &node_stop, &node_threads] {
    Time next_node = cfg_.node.controller_period;
    bool local_killed = false;
    while (!stop_rest.load(std::memory_order_acquire)) {
      if (kill_requested.load(std::memory_order_acquire) && !local_killed) {
        local_killed = true;
        const std::size_t k = cfg_.kill_node;
        do_kill(k, [&node_stop, &node_threads, k] {
          node_stop[k].store(true, std::memory_order_release);
          for (auto& t : node_threads[k]) t.join();
        });
      }
      const Time now = clock_.now();
      if (now >= next_node) {
        for (std::size_t i = 0; i < num_nodes; ++i) {
          if (router_->alive(i)) {
            handles_[i].runtime().controller_mut().tick(now);
          }
        }
        next_node = now + cfg_.node.controller_period;
      }
      if (now >= next_rebalance_) {
        global_tick(now);
        next_rebalance_ = now + cfg_.rebalance_period;
      }
      const double dt = std::min(next_node, next_rebalance_) - clock_.now();
      if (dt > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(dt, 1e-3)));
      }
    }
  });

  // Let the workload run its course, requesting the kill when its time
  // comes (the controller thread executes it).
  while (clock_.now() < cfg_.node.duration) {
    if (cfg_.kill_at >= 0.0 && clock_.now() >= cfg_.kill_at &&
        !kill_requested.load(std::memory_order_acquire)) {
      kill_requested.store(true, std::memory_order_release);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(cfg_.node.duration - clock_.now(), 1e-3)));
  }
  stop_gen.store(true, std::memory_order_release);

  // Grace period: alive shards keep draining until the accepted backlog
  // clears (bounded, as in the single-node runtime).
  const Time grace_end = clock_.now() + 2.0;
  while (clock_.now() < grace_end && alive_outstanding() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_rest.store(true, std::memory_order_release);
  for (auto& per_node : node_threads) {
    for (auto& t : per_node) {
      if (t.joinable()) t.join();  // The killed node's are already joined.
    }
  }
  for (auto& t : threads) t.join();

  run_elapsed_ = clock_.now();
  finish();
  return report();
}

ClusterReport ClusterRuntime::report() const {
  const std::size_t n = cfg_.num_classes();
  ClusterReport r;
  r.cls.resize(n);
  r.node.resize(handles_.size());
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    r.node[i].alive = router_->alive(i);
    r.node[i].dispatched = dispatched_[i];
    r.node[i].rt = nodes_[i]->report();
  }

  std::vector<double> sd_sum(n, 0.0);
  std::vector<std::uint64_t> sd_n(n, 0);
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    for (std::size_t c = 0; c < n; ++c) {
      const RtClassReport& ncls = r.node[i].rt.cls[c];
      r.cls[c].completed += ncls.completed;
      r.cls[c].dropped += ncls.dropped;
      r.cls[c].shed += ncls.shed;
      if (ncls.completed > 0 && std::isfinite(ncls.mean_slowdown)) {
        sd_sum[c] +=
            ncls.mean_slowdown * static_cast<double>(ncls.completed);
        sd_n[c] += ncls.completed;
      }
    }
    if (r.node[i].alive) {
      r.outstanding += r.node[i].rt.outstanding;
    } else {
      r.lost_to_kill += r.node[i].rt.outstanding;
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    r.cls[c].delta = cfg_.node.delta[c];
    r.cls[c].target_ratio = cfg_.node.delta[c] / cfg_.node.delta[0];
    if (sd_n[c] > 0) {
      r.cls[c].mean_slowdown = sd_sum[c] / static_cast<double>(sd_n[c]);
    }
    r.completed_total += r.cls[c].completed;
    r.dropped += r.cls[c].dropped;
    r.shed_total += r.cls[c].shed;
  }
  for (const auto& g : gens_) r.produced += g->produced();
  r.global_ticks = global_->ticks();
  r.rebalances = global_->allocations();
  r.mean_dispatch_ns =
      dispatch_timed_ > 0
          ? static_cast<double>(dispatch_ns_) /
                static_cast<double>(dispatch_timed_)
          : kNaN;
  r.elapsed = run_elapsed_ >= 0.0 ? run_elapsed_ : clock_.now();

  // Window statistics read the servers' closed series, so finalized only.
  if (finalized_) {
    // Cluster-wide pooled windowed medians: the single-node statistic with
    // every node's shards in the pool.
    double worst = kNaN;
    for (std::size_t c = 1; c < n; ++c) {
      std::vector<const std::vector<IntervalStat>*> base, cls;
      for (std::size_t i = 0; i < handles_.size(); ++i) {
        Runtime* node = nodes_[i].get();
        for (std::size_t s = 0; s < node->num_shards(); ++s) {
          const auto& m = node->shard(s).server().metrics();
          base.push_back(&m.windows(0));
          cls.push_back(&m.windows(static_cast<ClassId>(c)));
        }
      }
      const double p50 = pooled_window_ratio_median(base, cls);
      if (!std::isfinite(p50)) continue;
      r.cls[c].window_ratio_p50 = p50;
      const double err = std::abs(p50 / r.cls[c].target_ratio - 1.0);
      worst = std::isfinite(worst) ? std::max(worst, err) : err;
    }
    r.max_window_ratio_error = worst;

    // Cross-node check: the differentiation must hold on every surviving
    // node individually, not just in the pooled aggregate.  Strict: an
    // alive node with no windowed data poisons the statistic.
    if (n >= 2) {
      double cross = kNaN;
      bool poisoned = false;
      for (std::size_t i = 0; i < handles_.size(); ++i) {
        if (!r.node[i].alive) continue;
        const double err = r.node[i].rt.max_window_ratio_error;
        if (!std::isfinite(err)) {
          poisoned = true;
        } else {
          cross = std::isfinite(cross) ? std::max(cross, err) : err;
        }
      }
      r.cross_node_ratio_error = poisoned ? kNaN : cross;
    }

    // Re-convergence after the disturbance: a node kill if one happened,
    // else the load profile's settling point.  Windows merge across every
    // node's shards (killed nodes contribute their pre-kill windows).
    double onset = kNaN;
    if (std::isfinite(kill_time_)) {
      onset = std::max(kill_time_, cfg_.node.warmup);
    } else if (std::isfinite(cfg_.node.profile.step_time())) {
      onset = std::max(cfg_.node.profile.step_time(), cfg_.node.warmup);
    }
    r.settle_onset = onset;
    if (std::isfinite(onset) && n >= 2) {
      auto merged = [this](ClassId cls_id) {
        std::vector<IntervalStat> out;
        for (std::size_t i = 0; i < handles_.size(); ++i) {
          Runtime* node = nodes_[i].get();
          for (std::size_t s = 0; s < node->num_shards(); ++s) {
            merge_windows_into(
                out, node->shard(s).server().metrics().windows(cls_id));
          }
        }
        return out;
      };
      const auto w0 = merged(0);
      double worst_s = 0.0;
      for (std::size_t c = 1; c < n; ++c) {
        const double settled = ratio_settle_time(
            w0, merged(static_cast<ClassId>(c)), r.cls[c].target_ratio,
            cfg_.node.converge_tol, onset, cfg_.node.controller_period);
        r.cls[c].settle_seconds = settled;
        // NaN (never settled) poisons the max: a bounded check must fail.
        if (!std::isfinite(settled)) {
          worst_s = kNaN;
        } else if (std::isfinite(worst_s)) {
          worst_s = std::max(worst_s, settled);
        }
      }
      r.max_settle_seconds = worst_s;
    }
  }
  return r;
}

}  // namespace psd::rt
