// Discrete-event simulator: a clock plus the pending-event set.
//
// Single-threaded by design; parallelism lives one level up (independent
// replications run on separate Simulator instances, one per thread).
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace psd {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedule at absolute time t (>= now) with a cancellation handle.
  /// Callables are forwarded into the queue's slab (InlineFunction contract).
  template <typename F>
  EventHandle at(Time t, F&& fn) {
    PSD_REQUIRE(t >= now_, "cannot schedule into the past");
    return queue_.schedule(t, std::forward<F>(fn));
  }

  /// Schedule after a non-negative delay with a cancellation handle.
  template <typename F>
  EventHandle after(Duration d, F&& fn) {
    PSD_REQUIRE(d >= 0.0, "negative delay");
    return queue_.schedule(now_ + d, std::forward<F>(fn));
  }

  /// Handle-free variants for hot paths.
  template <typename F>
  void at_fast(Time t, F&& fn) {
    PSD_REQUIRE(t >= now_, "cannot schedule into the past");
    queue_.schedule_fast(t, std::forward<F>(fn));
  }

  template <typename F>
  void after_fast(Duration d, F&& fn) {
    PSD_REQUIRE(d >= 0.0, "negative delay");
    queue_.schedule_fast(now_ + d, std::forward<F>(fn));
  }

  /// Run until the event set drains or the clock would pass `horizon`.
  /// Events exactly at the horizon are executed.  Returns events executed.
  std::uint64_t run_until(Time horizon);

  /// Run until the event set drains completely.
  std::uint64_t run_all();

  /// Execute exactly one event if any is pending; returns whether one ran.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  bool idle() const { return queue_.empty(); }
  const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace psd
