// Discrete-event simulator: a clock, the pending-event set, and pull-based
// time streams.
//
// Single-threaded by design; parallelism lives one level up (independent
// replications run on separate Simulator instances, one per thread).
//
// Two timeline sources merge in the run loop:
//
//   * the event queue — arbitrary one-shot closures, heap-ordered; and
//   * time streams — recurring sources (request generators, task-server
//     completions) that always know their own next fire time.  A stream
//     fires, returns the next time, and never touches the heap: advancing a
//     stream costs one callback plus a scan over the (tiny) stream set,
//     versus a full schedule+sift+pop cycle per event.  This is what lets
//     the per-request hot path consume pre-generated arrival blocks instead
//     of paying the event core once per arrival.
//
// Ordering semantics: events and streams interleave by fire time.  At equal
// times, queue events fire before streams; equal-time streams fire in
// (tie_rank, registration order) — generators register rank 0 and
// completions rank 1, so a simultaneous arrival still precedes a completion,
// matching the legacy all-events schedule order.  All rules are fixed, so
// fixed-seed runs stay bitwise deterministic.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace psd {

class Simulator {
 public:
  /// Identifies a registered stream for rescheduling.  Streams live for the
  /// simulator's lifetime; pausing one is set_stream_time(id, kInf).
  using StreamId = std::uint32_t;
  static constexpr StreamId kNoStream = ~StreamId{0};

  /// Stream callback: fires at its scheduled time (the clock already reads
  /// that time) and returns the next fire time, or kInf to go idle.  If the
  /// callback chain calls set_stream_time on the firing stream itself (a
  /// sink stopping its generator mid-arrival), that explicit time wins over
  /// the return value.  The InlineFunction contract applies (<= 48-byte
  /// trivially-copyable capture).
  using StreamFn = InlineFunction<Time(Time)>;

  Time now() const { return now_; }

  /// Schedule at absolute time t (>= now) with a cancellation handle.
  /// Callables are forwarded into the queue's slab (InlineFunction contract).
  template <typename F>
  EventHandle at(Time t, F&& fn) {
    PSD_REQUIRE(t >= now_, "cannot schedule into the past");
    return queue_.schedule(t, std::forward<F>(fn));
  }

  /// Schedule after a non-negative delay with a cancellation handle.
  template <typename F>
  EventHandle after(Duration d, F&& fn) {
    PSD_REQUIRE(d >= 0.0, "negative delay");
    return queue_.schedule(now_ + d, std::forward<F>(fn));
  }

  /// Handle-free variants for hot paths.
  template <typename F>
  void at_fast(Time t, F&& fn) {
    PSD_REQUIRE(t >= now_, "cannot schedule into the past");
    queue_.schedule_fast(t, std::forward<F>(fn));
  }

  template <typename F>
  void after_fast(Duration d, F&& fn) {
    PSD_REQUIRE(d >= 0.0, "negative delay");
    queue_.schedule_fast(now_ + d, std::forward<F>(fn));
  }

  /// Register a recurring timeline source that first fires at `first`
  /// (kInf = start idle).  Lower `tie_rank` fires earlier among equal-time
  /// streams; ties within a rank break by registration order.
  template <typename F>
  StreamId add_stream(Time first, F&& fn, std::uint32_t tie_rank = 0) {
    PSD_REQUIRE(first >= now_, "cannot schedule a stream into the past");
    // A stream callback runs out of streams_ in place; growing the vector
    // under it would relocate the executing closure.
    PSD_CHECK(!in_stream_fire_, "add_stream from inside a stream callback");
    const StreamId id = static_cast<StreamId>(streams_.size());
    streams_.emplace_back();
    streams_.back().rank = tie_rank;
    streams_.back().fn.emplace(std::forward<F>(fn));
    times_.push_back(first);
    return id;
  }

  /// Move a stream's next fire time (kInf pauses it).  O(1), no heap work —
  /// this replaces the cancel + reschedule pattern for completion events.
  void set_stream_time(StreamId id, Time t) {
    PSD_CHECK(id < times_.size(), "bad stream id");
    PSD_REQUIRE(t >= now_, "cannot schedule a stream into the past");
    times_[id] = t;
  }

  Time stream_time(StreamId id) const {
    PSD_CHECK(id < times_.size(), "bad stream id");
    return times_[id];
  }

  /// Run until the pending timelines drain or the clock would pass
  /// `horizon`.  Events/streams exactly at the horizon are executed.
  /// Returns events executed (stream fires count as events).
  std::uint64_t run_until(Time horizon);

  /// Run until the event set drains completely and every stream is idle.
  std::uint64_t run_all();

  /// Execute exactly one event if any is pending; returns whether one ran.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  bool idle() const {
    return queue_.empty() && earliest_stream() == kNoStream;
  }
  const EventQueue& queue() const { return queue_; }

 private:
  struct Stream {
    std::uint32_t rank = 0;
    StreamFn fn;
  };

  /// Earliest live stream under the (time, rank, index) order, or kNoStream
  /// when all streams are idle.  Fire times live in a dense times_ array
  /// (structure-of-arrays) so this scan touches a handful of contiguous
  /// doubles; ranks are only consulted on exact ties.
  StreamId earliest_stream() const {
    StreamId best = kNoStream;
    Time bt = kInf;
    for (StreamId i = 0; i < times_.size(); ++i) {
      const Time t = times_[i];
      if (t < bt || (t == bt && best != kNoStream &&
                     streams_[i].rank < streams_[best].rank)) {
        best = i;
        bt = t;
      }
    }
    return best;
  }

  /// Fire stream `id` at time `ts`: advance the clock, run the callback in
  /// place (add_stream is rejected while it runs, so streams_ cannot
  /// relocate under it), and store the returned next fire time.  An explicit
  /// set_stream_time ON THE FIRING STREAM from inside its own callback chain
  /// (e.g. a sink stopping its generator mid-arrival) takes precedence over
  /// the returned time — detected via a NaN sentinel parked in the slot
  /// while the callback runs.
  void fire_stream(StreamId id, Time ts) {
    now_ = ts;
    // Scope guard: a throwing callback must not leave the fire flag set, or
    // every later add_stream on this simulator would be rejected.
    struct FireFlag {
      bool& flag;
      explicit FireFlag(bool& f) : flag(f) { flag = true; }
      ~FireFlag() { flag = false; }
    } guard(in_stream_fire_);
    times_[id] = kNaN;  // sentinel: "no explicit reschedule yet"
    const Time next = streams_[id].fn(ts);
    if (times_[id] == times_[id]) return;  // callback set its own time: keep
    PSD_CHECK(next >= ts, "stream returned a next time in the past");
    times_[id] = next;
  }

  EventQueue queue_;
  std::vector<Stream> streams_;   ///< Callback + tie rank (cold).
  std::vector<Time> times_;       ///< Next fire time per stream (hot).
  bool in_stream_fire_ = false;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace psd
