// InlineFunction: a small-object-only, non-allocating delegate.
//
// The discrete-event hot path schedules millions of short-lived callbacks;
// std::function would heap-allocate each one whose captures exceed its tiny
// internal buffer (and libstdc++ allocates for anything beyond one pointer
// with a non-trivial type).  InlineFunction instead stores the callable in a
// fixed 48-byte inline buffer and has NO heap fallback: a callback that does
// not fit, is over-aligned, or is not trivially copyable fails to compile via
// static_assert.  That contract is what lets EventQueue treat event payloads
// as raw trivially-copyable bytes (memcpy-movable slab slots, no destructor
// bookkeeping).
//
// Simulation callbacks capture a `this` pointer plus a couple of scalars —
// at most ~24 bytes today — so 48 bytes leaves generous headroom while
// keeping a pool slot (delegate + bookkeeping) to one cache line.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace psd {

template <typename Signature>
class InlineFunction;  // primary template intentionally undefined

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Inline storage for the callable's captures.
  static constexpr std::size_t kBufferSize = 48;
  static constexpr std::size_t kBufferAlign = alignof(void*);

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Construct the callable directly in the inline buffer — lets owners
  /// (e.g. the event queue's slab) build the payload in place instead of
  /// copying a full InlineFunction through the call chain.
  template <typename F>
  void emplace(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineFunction>) {
      *this = std::forward<F>(f);
    } else {
      using Fn = std::decay_t<F>;
      static_assert(sizeof(Fn) <= kBufferSize,
                    "callback captures exceed the 48-byte inline buffer; "
                    "InlineFunction has no heap fallback by design — capture "
                    "a pointer to bulky state instead");
      static_assert(alignof(Fn) <= kBufferAlign,
                    "callback alignment exceeds pointer alignment");
      static_assert(std::is_trivially_copyable_v<Fn>,
                    "callbacks must be trivially copyable so event payloads "
                    "can be relocated with memcpy (capture raw pointers or "
                    "references, not owning containers)");
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* buf, Args&&... args) -> R {
        return (*static_cast<Fn*>(buf))(std::forward<Args>(args)...);
      };
    }
  }

  /// Invoke.  Precondition: non-empty (enforced by every scheduling site;
  /// an empty delegate is only ever produced by default construction).
  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  alignas(kBufferAlign) unsigned char buf_[kBufferSize];
  R (*invoke_)(void*, Args&&...) = nullptr;
};

}  // namespace psd
