#include "sim/periodic.hpp"

#include "common/error.hpp"

namespace psd {

PeriodicProcess::PeriodicProcess(Simulator& sim, Duration period, TickFn on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  PSD_REQUIRE(period > 0.0, "period must be positive");
  PSD_REQUIRE(static_cast<bool>(on_tick_), "tick callback must be set");
}

void PeriodicProcess::start(Time first) {
  stop();
  stopped_ = false;
  handle_ = sim_.at(first, [this, first] { fire(first); });
}

void PeriodicProcess::stop() {
  stopped_ = true;
  handle_.cancel();
}

void PeriodicProcess::fire(Time t) {
  on_tick_(t);
  if (stopped_) return;  // the callback itself may have called stop()
  const Time next = t + period_;
  handle_ = sim_.at(next, [this, next] { fire(next); });
}

}  // namespace psd
