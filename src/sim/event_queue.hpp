// Pending-event set for the discrete-event engine.
//
// A binary min-heap keyed on (time, sequence).  The sequence number makes
// simultaneous events fire in schedule order, which keeps runs deterministic
// — a property the replication harness relies on.
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// when it reaches the top, which is O(1) amortized and avoids heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace psd {

using EventFn = std::function<void()>;

/// Shared token that lets a scheduler invalidate an event after the fact.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is still pending (not fired, not cancelled).
  bool pending() const { return state_ && !*state_; }

  /// Cancel; no-op if already fired or cancelled.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> s) : state_(std::move(s)) {}
  std::shared_ptr<bool> state_;  ///< true == cancelled-or-fired.
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`; returns a cancellable handle.
  EventHandle schedule(Time t, EventFn fn);

  /// Cheap schedule without a cancellation token (hot path: arrivals).
  void schedule_fast(Time t, EventFn fn);

  /// True when no *pending* (non-cancelled) events remain.
  bool empty() const;

  /// Number of heap entries still pending (skips cancelled top entries;
  /// interior cancelled entries are counted until they surface).
  std::size_t size() const;

  /// Earliest pending event time; +inf when empty.
  Time next_time() const;

  /// Pop and run the earliest pending event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run();

  std::uint64_t scheduled_total() const { return seq_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;  ///< null for schedule_fast entries.

    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void skip_cancelled() const;

  // Mutable: peeking prunes cancelled entries, which is observably const.
  mutable std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace psd
