// Pending-event set for the discrete-event engine — allocation-free in
// steady state.
//
// Three structures cooperate:
//
//   * heap_  — a 4-ary min-heap of 16-byte POD entries keyed on (time, seq).
//     The sequence number makes simultaneous events fire in schedule order,
//     which keeps runs deterministic — a property the replication harness
//     relies on.  Keys are packed separately from payloads: sift operations
//     compare and move only the small key entries, never the 64-byte payload
//     slots, and four children span exactly one cache line.
//   * slots_ — a slab pool of payload slots (callback + owner tag).  Every
//     scheduled event owns exactly one slot for the lifetime of its heap
//     entry; slots are recycled through a free stack when the entry
//     surfaces at the top.
//   * EventHandle — a trivially-copyable {queue, slot, owner} token.
//     The owner tag is the event's globally-unique sequence number, so a
//     handle whose tag no longer matches its slot is stale and every
//     operation on it is a no-op (cancel-after-fire, double-cancel,
//     reuse-after-recycle) — with no generation counter to ever wrap.
//
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// (and its slot freed) when it reaches the top — O(1) amortized, no heap
// surgery.  An exact pending-event counter makes empty()/size() genuinely
// const, non-pruning observers.
//
// Steady-state schedule/pop cycles perform zero heap allocations: callbacks
// live inline in their slot (InlineFunction has no heap fallback), handles
// carry no ownership, and heap_/slots_/free_ reuse their high-water
// capacity.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/delegate.hpp"

namespace psd {

using EventFn = InlineFunction<void()>;

class EventQueue;

/// Cancellation token for a scheduled event.  Trivially copyable; copies
/// alias the same event.  Must not outlive the EventQueue it came from.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is still pending (not fired, not cancelled).
  bool pending() const;

  /// Cancel; no-op if already fired or cancelled.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint64_t owner)
      : queue_(q), slot_(slot), owner_(owner) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t owner_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  // Outstanding EventHandles point into this queue; copying or moving it
  // would silently detach them.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` at absolute time `t` (>= 0); returns a cancellable
  /// handle.  The callable is constructed directly in its slab slot (no
  /// intermediate delegate copies); it must satisfy the InlineFunction
  /// contract (<= 48-byte trivially-copyable captures).
  template <typename F>
  EventHandle schedule(Time t, F&& fn) {
    check_schedulable(t);  // validate BEFORE alloc_slot so a throw leaks nothing
    const std::uint32_t slot = alloc_slot();
    slots_[slot].fn.emplace(std::forward<F>(fn));
    const std::uint64_t owner = push_entry(t, slot);
    return EventHandle(this, slot, owner);
  }

  /// Handle-free schedule (hot path: arrivals, completions).
  template <typename F>
  void schedule_fast(Time t, F&& fn) {
    check_schedulable(t);  // validate BEFORE alloc_slot so a throw leaks nothing
    const std::uint32_t slot = alloc_slot();
    slots_[slot].fn.emplace(std::forward<F>(fn));
    push_entry(t, slot);
  }

  /// True when no pending (non-cancelled) events remain.  Exact and
  /// non-mutating: cancelled entries are tracked by a counter, not pruned.
  bool empty() const { return pending_ == 0; }

  /// Exact number of pending (non-cancelled) events.
  std::size_t size() const { return pending_; }

  /// Earliest pending event time; +inf when empty.  Prunes stale (cancelled)
  /// heap entries off the top, recycling their slots.
  Time next_time() {
    skip_cancelled();
    return heap_.empty() ? kInf : heap_.front().time();
  }

  /// Pop and run the earliest pending event; returns its time.
  /// Precondition: !empty().
  Time pop_and_run() {
    PSD_CHECK(pending_ > 0, "pop from empty event queue");
    Time fired = 0.0;
    // pending_ > 0 guarantees a live event exists, so this always runs one.
    pop_and_run_before(kInf, [&fired](Time t) { fired = t; });
    return fired;
  }

  /// Fused peek + pop for run loops: if a pending event exists with time
  /// <= horizon, invoke pre(time) (the simulator advances its clock here,
  /// BEFORE the event body runs), then run the event and return true.
  /// Saves a second top-read + staleness check per event vs the
  /// next_time()/pop_and_run() pair.
  template <typename PreFire>
  bool pop_and_run_before(Time horizon, PreFire&& pre) {
    skip_cancelled();
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    const Time t = top.time();
    if (!(t <= horizon)) return false;
    const std::uint32_t slot = top.slot();
    Slot& s = slots_[slot];
    pop_entry();
    s.owner = kFired;
    EventFn fn = std::move(s.fn);  // relocate before the slab can grow
    free_.push_back(slot);
    --pending_;
    pre(t);
    fn();
    return true;
  }

  /// Total events ever scheduled (monotone sequence counter).
  std::uint64_t scheduled_total() const { return seq_; }

  /// Monotone counter bumped by every operation that can change the top of
  /// the heap from the outside (schedule or cancel).  Lets run loops cache
  /// next_time() across foreign work and revalidate with one load.
  std::uint64_t mutation_count() const { return mutations_; }

  /// Key-heap capacity currently reserved, in events (diagnostics).  The
  /// payload slab (slots_) can reserve more after cancellation bursts; its
  /// footprint is slab_capacity() * 64 bytes.
  std::size_t capacity() const { return heap_.capacity(); }

  /// Payload-slab capacity currently reserved, in slots (diagnostics).
  std::size_t slab_capacity() const { return slots_.capacity(); }

 private:
  friend class EventHandle;

  /// Heap key entry, 16 bytes: the event time's IEEE-754 bit pattern and a
  /// packed (sequence << 24 | slot) word.  Non-negative doubles order
  /// identically to their bit patterns taken as unsigned integers, so the
  /// (time, seq) lexicographic order collapses into ONE branch-free 128-bit
  /// integer comparison — FP compares would cost data-dependent (on random
  /// keys ~50% mispredicted) branches per comparison inside the sift loops.
  /// The slot index rides in the low bits; sequences are unique, so it can
  /// never influence the order.
  struct Entry {
    std::uint64_t tbits;     ///< bit_cast of the (non-negative) event time.
    std::uint64_t seq_slot;  ///< (seq << kSlotBits) | slot.

    Time time() const { return std::bit_cast<Time>(tbits); }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
    unsigned __int128 key() const {
      return (static_cast<unsigned __int128>(tbits) << 64) | seq_slot;
    }
  };

  /// Payload slot: one cache line (48B callback + 8B invoke + owner tag).
  /// `owner` is the seq_slot of the event currently occupying the slot, or
  /// kFired / kCancelled when the slot is logically dead and awaiting its
  /// heap entry to surface for recycling.
  struct Slot {
    EventFn fn;
    std::uint64_t owner = 0;
  };

  static constexpr unsigned kSlotBits = 24;  ///< up to 16M-1 concurrent events
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kSeqLimit = 1ull << (64 - kSlotBits);
  // Dead-slot owner tags.  Their slot bits are all-ones, and alloc_slot caps
  // real slot indices strictly below kSlotMask, so no live owner tag can
  // ever equal a sentinel — for any sequence number.
  static constexpr std::uint64_t kFired = ~std::uint64_t{0};
  static constexpr std::uint64_t kCancelled =
      ~std::uint64_t{0} - (1ull << kSlotBits);

  static_assert(sizeof(Entry) == 16, "four children = one cache line");
  static_assert(std::is_trivially_copyable_v<Entry>, "keys are POD");
  static_assert(sizeof(Slot) == 64, "one payload slot per cache line");
  static_assert(std::is_trivially_copyable_v<Slot>,
                "slots must be memcpy-relocatable");

  /// Strict weak order on (time, seq): one branch-free integer comparison.
  static bool earlier(const Entry& a, const Entry& b) {
    return a.key() < b.key();
  }

  /// Branchless min of two candidate indices under earlier().
  std::size_t min_entry(std::size_t a, std::size_t b) const {
    return earlier(heap_[b], heap_[a]) ? b : a;  // compiles to cmov
  }

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t i = free_.back();
      free_.pop_back();
      return i;
    }
    const std::uint32_t i = static_cast<std::uint32_t>(slots_.size());
    PSD_CHECK(i < kSlotMask, "too many concurrently pending events");
    slots_.emplace_back();
    return i;
  }

  /// Scheduling preconditions, checked before any slot is allocated so a
  /// throw cannot leak slab state.  The packed-key order (see Entry)
  /// requires non-negative times; the simulation clock never goes negative.
  /// Rejects NaN as a side effect.
  void check_schedulable(Time t) const {
    PSD_REQUIRE(t >= 0.0, "event time must be non-negative");
    PSD_CHECK(seq_ < kSeqLimit, "sequence space exhausted");
  }

  /// Push a key entry for `slot`; returns the owner tag stamped on both.
  /// Precondition: check_schedulable(t) passed.
  std::uint64_t push_entry(Time t, std::uint32_t slot) {
    t += 0.0;  // canonicalize -0.0 to +0.0 so its bit pattern orders first
    ++mutations_;
    const std::uint64_t owner = (seq_++ << kSlotBits) | slot;
    slots_[slot].owner = owner;
    const Entry e{std::bit_cast<std::uint64_t>(t), owner};
    ++pending_;
    // Sift up through 4-ary parents with a hole, placing e once.
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
    return owner;
  }

  __attribute__((always_inline)) void pop_entry() {
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    // Bottom-up deletion: sink the root hole to a leaf along min children
    // (no compare against `last` on the way down — a displaced leaf almost
    // always belongs near the bottom anyway), then sift `last` up from the
    // hole.  Child-min selection is a cmov reduction: on random keys a
    // branchy scan would mispredict about half its comparisons per level.
    std::size_t i = 0;
    for (;;) {
      const std::size_t c0 = 4 * i + 1;
      if (c0 >= n) break;
      std::size_t best;
      if (c0 + 4 <= n) {  // common case: all four children exist
        best = min_entry(min_entry(c0, c0 + 1), min_entry(c0 + 2, c0 + 3));
      } else {
        best = c0;
        for (std::size_t c = c0 + 1; c < n; ++c) best = min_entry(best, c);
      }
      heap_[i] = heap_[best];
      i = best;
    }
    // Sift `last` up from the hole (usually stays put: 1 comparison).
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(last, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = last;
  }

  /// Drop stale (cancelled) entries off the top, recycling their slots.
  void skip_cancelled() {
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      const std::uint32_t slot = top.slot();
      if (slots_[slot].owner == top.seq_slot) return;  // live
      pop_entry();
      free_.push_back(slot);
    }
  }

  // --- EventHandle support -------------------------------------------------
  bool handle_pending(std::uint32_t slot, std::uint64_t owner) const {
    return slots_[slot].owner == owner;
  }

  void handle_cancel(std::uint32_t slot, std::uint64_t owner) {
    Slot& s = slots_[slot];
    if (s.owner != owner) return;  // already fired or cancelled
    s.owner = kCancelled;  // entry is now stale; slot freed when it surfaces
    --pending_;
    ++mutations_;
  }

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< Recycled slot indices (stack).
  std::uint64_t seq_ = 0;
  std::uint64_t mutations_ = 0;
  std::size_t pending_ = 0;
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(slot_, owner_);
}

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->handle_cancel(slot_, owner_);
}

static_assert(std::is_trivially_copyable_v<EventFn>,
              "event payloads must be memcpy-relocatable");
static_assert(std::is_trivially_copyable_v<EventHandle>,
              "handles are value tokens");

}  // namespace psd
