#include "sim/simulator.hpp"

#include "common/error.hpp"

namespace psd {

EventHandle Simulator::at(Time t, EventFn fn) {
  PSD_REQUIRE(t >= now_, "cannot schedule into the past");
  return queue_.schedule(t, std::move(fn));
}

EventHandle Simulator::after(Duration d, EventFn fn) {
  PSD_REQUIRE(d >= 0.0, "negative delay");
  return queue_.schedule(now_ + d, std::move(fn));
}

void Simulator::at_fast(Time t, EventFn fn) {
  PSD_REQUIRE(t >= now_, "cannot schedule into the past");
  queue_.schedule_fast(t, std::move(fn));
}

void Simulator::after_fast(Duration d, EventFn fn) {
  PSD_REQUIRE(d >= 0.0, "negative delay");
  queue_.schedule_fast(now_ + d, std::move(fn));
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t n = 0;
  for (;;) {
    const Time t = queue_.next_time();  // +inf when drained
    if (t > horizon) break;
    now_ = t;  // advance the clock BEFORE the event body runs
    queue_.pop_and_run();
    ++n;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++n;
  }
  executed_ += n;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++executed_;
  return true;
}

}  // namespace psd
