#include "sim/simulator.hpp"

#include "common/error.hpp"

namespace psd {

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t n = 0;
  for (;;) {
    // One queue probe per queue event: while only streams fire, the top of
    // the heap cannot change unless a stream callback schedules something,
    // which the scheduled_total() counter detects without touching the heap.
    Time tq = queue_.next_time();
    for (;;) {
      const StreamId si = earliest_stream();
      if (si == kNoStream) break;
      const Time ts = times_[si];
      if (ts >= tq || ts > horizon) break;  // queue wins ties
      const std::uint64_t mutations = queue_.mutation_count();
      fire_stream(si, ts);
      ++n;
      if (queue_.mutation_count() != mutations) tq = queue_.next_time();
    }
    // Streams are drained up to min(tq, horizon), so the queue's top (at tq)
    // is the next timeline point; run it if it is within the horizon.
    if (queue_.pop_and_run_before(horizon, [this](Time t) { now_ = t; })) {
      ++n;
      continue;
    }
    break;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t n = 0;
  for (;;) {
    const StreamId si = earliest_stream();
    const Time ts = si != kNoStream ? times_[si] : kInf;
    if (queue_.pop_and_run_before(ts, [this](Time t) { now_ = t; })) {
      ++n;
      continue;
    }
    if (si == kNoStream) break;
    fire_stream(si, ts);
    ++n;
  }
  executed_ += n;
  return n;
}

bool Simulator::step() {
  const StreamId si = earliest_stream();
  const Time ts = si != kNoStream ? times_[si] : kInf;
  if (queue_.pop_and_run_before(ts, [this](Time t) { now_ = t; })) {
    ++executed_;
    return true;
  }
  if (si == kNoStream) return false;
  fire_stream(si, ts);
  ++executed_;
  return true;
}

}  // namespace psd
