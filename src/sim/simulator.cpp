#include "sim/simulator.hpp"

#include "common/error.hpp"

namespace psd {

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t n = 0;
  // The fused primitive advances the clock BEFORE each event body runs.
  while (queue_.pop_and_run_before(horizon, [this](Time t) { now_ = t; })) {
    ++n;
  }
  if (now_ < horizon) now_ = horizon;
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_all() {
  std::uint64_t n = 0;
  while (queue_.pop_and_run_before(kInf, [this](Time t) { now_ = t; })) {
    ++n;
  }
  executed_ += n;
  return n;
}

bool Simulator::step() {
  if (!queue_.pop_and_run_before(kInf, [this](Time t) { now_ = t; })) {
    return false;
  }
  ++executed_;
  return true;
}

}  // namespace psd
