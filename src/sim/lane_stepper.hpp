// Lane-stepped timeline grid: the SoA clock table behind the lockstep
// batch kernel (src/experiment/lockstep.cpp), living alongside the event-
// heap Simulator as the second timeline engine in src/sim.
//
// K independent replications ("lanes") of one scenario run inside a single
// task.  Each lane owns a fixed set of recurring time sources ("slots") —
// for the PSD server: one reallocation tick, one arrival stream per class,
// one completion stream per class — laid out contiguously per lane so a
// lane's entire timeline state is one cache line for typical class counts.
//
// The event-ordering contract of the heap+stream Simulator is reproduced by
// *slot index order* alone: next_slot() is a strict first-minimum scan, so
// at equal fire times the lowest-indexed slot wins.  Arranging slots as
//
//   [0]          heap events (the periodic reallocation tick)
//   [1 .. S]     rank-0 streams in registration order (arrival generators)
//   [S+1 .. 2S]  rank-1 streams in registration order (completions)
//
// yields exactly Simulator::run_until's ordering: heap-before-streams at
// ties, then streams by (tie_rank, registration index).  A kernel that
// processes slots while fire_time <= chunk_limit and feeds the same draws
// through the same arithmetic therefore produces bitwise-identical results
// to the per-task path — the determinism contract the lockstep tests pin.
// (The kernel's hot path actually burst-drains each class's arrival/
// completion slot pair strictly below the boundary — legal because classes
// are independent between ticks — and uses this scan for the tick and
// boundary ties; see lockstep.cpp.)
//
// Lanes advance through shared chunk boundaries round-robin (lane 0 to the
// boundary, then lane 1, ...), which keeps every lane's working set warm
// and the draw-block refills batched, without any cross-lane interaction:
// per-lane processing order is invariant to chunk placement because slot
// selection is a pure function of the lane's own clock vector.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

class LaneClockGrid {
 public:
  LaneClockGrid(std::size_t lanes, std::size_t slots)
      : lanes_(lanes), slots_(slots), times_(lanes * slots, kInf) {
    PSD_REQUIRE(lanes > 0, "need at least one lane");
    PSD_REQUIRE(slots > 0, "need at least one slot per lane");
  }

  std::size_t lanes() const { return lanes_; }
  std::size_t slots() const { return slots_; }

  /// Contiguous clock vector of one lane (`slots()` entries).
  Time* lane(std::size_t lane) { return times_.data() + lane * slots_; }
  const Time* lane(std::size_t lane) const {
    return times_.data() + lane * slots_;
  }

  /// First-minimum scan over one lane's clock vector: the slot with the
  /// earliest fire time, ties resolved to the lowest index (strict '<', so
  /// the scan order IS the tie-break order).  A branch-light linear pass —
  /// slot counts are single digits for the PSD server, cheaper than any
  /// heap maintenance, and trivially unrolled by the compiler.
  static std::size_t next_slot(const Time* clocks, std::size_t slots) {
    std::size_t best = 0;
    Time best_t = clocks[0];
    for (std::size_t i = 1; i < slots; ++i) {
      if (clocks[i] < best_t) {
        best_t = clocks[i];
        best = i;
      }
    }
    return best;
  }

  /// Step every lane to successive shared chunk boundaries: `body(lane,
  /// limit)` must process that lane's events with fire_time <= limit.  The
  /// final boundary is exactly `horizon` (no accumulated-rounding overshoot:
  /// boundaries are clamped), matching the per-task run_until(horizon)
  /// cutoff where events at the horizon still execute.
  template <typename Body>
  void run_lockstep(Time horizon, Duration chunk, Body&& body) {
    PSD_REQUIRE(chunk > 0.0, "chunk length must be positive");
    Time limit = 0.0;
    while (limit < horizon) {
      limit = limit + chunk < horizon ? limit + chunk : horizon;
      for (std::size_t l = 0; l < lanes_; ++l) body(l, limit);
    }
  }

 private:
  std::size_t lanes_;
  std::size_t slots_;
  std::vector<Time> times_;  ///< lanes x slots, lane-major.
};

}  // namespace psd
