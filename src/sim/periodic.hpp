// Periodic simulation process: fires a callback every `period` starting at
// `first`.  Drives the paper's load-estimation windows and rate reallocation
// ticks ("the processing rate was reallocated for every thousand time units").
#pragma once

#include "sim/simulator.hpp"

namespace psd {

class PeriodicProcess {
 public:
  /// Non-allocating delegate; captures must fit EventFn's inline buffer.
  using TickFn = InlineFunction<void(Time)>;

  /// Does not start automatically; call start().
  PeriodicProcess(Simulator& sim, Duration period, TickFn on_tick);
  ~PeriodicProcess() { stop(); }

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Schedule the first tick at absolute time `first`.
  void start(Time first);

  /// Cancel any pending tick.
  void stop();

  bool running() const { return handle_.pending(); }
  Duration period() const { return period_; }

 private:
  void fire(Time t);

  Simulator& sim_;
  Duration period_;
  TickFn on_tick_;
  EventHandle handle_;
  bool stopped_ = true;  ///< Allows stop() from inside the tick callback.
};

}  // namespace psd
