#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

namespace {
struct EntryGreater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return a > b;
  }
};
}  // namespace

EventHandle EventQueue::schedule(Time t, EventFn fn) {
  auto state = std::make_shared<bool>(false);
  heap_.push_back(Entry{t, seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
  return EventHandle(std::move(state));
}

void EventQueue::schedule_fast(Time t, EventFn fn) {
  heap_.push_back(Entry{t, seq_++, std::move(fn), nullptr});
  std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && heap_.front().cancelled && *heap_.front().cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  skip_cancelled();
  return heap_.size();
}

Time EventQueue::next_time() const {
  skip_cancelled();
  return heap_.empty() ? kInf : heap_.front().time;
}

Time EventQueue::pop_and_run() {
  skip_cancelled();
  PSD_CHECK(!heap_.empty(), "pop from empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  if (e.cancelled) *e.cancelled = true;  // mark fired
  e.fn();
  return e.time;
}

}  // namespace psd
