#include "admission/admission.hpp"

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

UtilizationGate::UtilizationGate(std::size_t num_classes, double mean_size,
                                 double capacity, double threshold)
    : mean_size_(mean_size), capacity_(capacity), threshold_(threshold) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
  admit_.assign(num_classes, true);
}

void UtilizationGate::update(const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == admit_.size(), "estimate size mismatch");
  admit_.assign(admit_.size(), true);
  double demand = 0.0;
  for (double l : lambda_hat) demand += l * mean_size_;
  // Shed lowest classes (largest index) until under threshold.
  for (std::size_t i = admit_.size(); i-- > 1;) {
    if (demand <= threshold_ * capacity_) break;
    demand -= lambda_hat[i] * mean_size_;
    admit_[i] = false;
  }
}

bool UtilizationGate::admit(ClassId cls) const {
  PSD_REQUIRE(cls < admit_.size(), "class id out of range");
  return admit_[cls];
}

SlowdownBudgetGate::SlowdownBudgetGate(std::vector<double> delta,
                                       SamplerVariant dist, double capacity,
                                       double max_unit_slowdown)
    : delta_(std::move(delta)),
      dist_(std::move(dist)),
      capacity_(capacity),
      budget_(max_unit_slowdown) {
  PSD_REQUIRE(!delta_.empty(), "need at least one class");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(max_unit_slowdown > 0.0, "budget must be positive");
  admit_.assign(delta_.size(), true);
}

double SlowdownBudgetGate::predicted_unit_slowdown(
    const std::vector<double>& lambda_hat,
    const std::vector<bool>& mask) const {
  // eq. 18 restricted to admitted classes: unit slowdown (E[S_i]/delta_i) is
  // the class-independent factor sum(lambda_j/delta_j) E[X^2]E[1/X] /
  // (2 (C - demand)).
  const double ex = dist_.mean();
  double demand = 0.0, denom = 0.0;
  for (std::size_t j = 0; j < lambda_hat.size(); ++j) {
    if (!mask[j]) continue;
    demand += lambda_hat[j] * ex;
    denom += lambda_hat[j] / delta_[j];
  }
  if (demand >= capacity_) return kInf;
  if (denom <= 0.0) return 0.0;
  return denom * dist_.second_moment() * dist_.mean_inverse() /
         (2.0 * (capacity_ - demand));
}

void SlowdownBudgetGate::update(const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == delta_.size(), "estimate size mismatch");
  admit_.assign(delta_.size(), true);
  // Shed lowest classes until eq. 18 predicts the budget holds.
  for (std::size_t i = delta_.size(); i-- > 1;) {
    if (predicted_unit_slowdown(lambda_hat, admit_) <= budget_) return;
    admit_[i] = false;
  }
}

bool SlowdownBudgetGate::admit(ClassId cls) const {
  PSD_REQUIRE(cls < admit_.size(), "class id out of range");
  return admit_[cls];
}

}  // namespace psd
