#include "admission/admission.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

UtilizationGate::UtilizationGate(std::size_t num_classes, double mean_size,
                                 double capacity, double threshold)
    : mean_size_(mean_size), capacity_(capacity), threshold_(threshold) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
  admit_.assign(num_classes, true);
}

void UtilizationGate::update(const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == admit_.size(), "estimate size mismatch");
  admit_.assign(admit_.size(), true);
  double demand = 0.0;
  for (double l : lambda_hat) demand += l * mean_size_;
  // Shed lowest classes (largest index) until under threshold.
  for (std::size_t i = admit_.size(); i-- > 1;) {
    if (demand <= threshold_ * capacity_) break;
    demand -= lambda_hat[i] * mean_size_;
    admit_[i] = false;
  }
}

bool UtilizationGate::admit(ClassId cls) const {
  PSD_REQUIRE(cls < admit_.size(), "class id out of range");
  return admit_[cls];
}

SlowdownBudgetGate::SlowdownBudgetGate(std::vector<double> delta,
                                       SamplerVariant dist, double capacity,
                                       double max_unit_slowdown)
    : delta_(std::move(delta)),
      dist_(std::move(dist)),
      capacity_(capacity),
      budget_(max_unit_slowdown) {
  PSD_REQUIRE(!delta_.empty(), "need at least one class");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(max_unit_slowdown > 0.0, "budget must be positive");
  admit_.assign(delta_.size(), true);
}

double SlowdownBudgetGate::predicted_unit_slowdown(
    const std::vector<double>& lambda_hat,
    const std::vector<bool>& mask) const {
  // eq. 18 restricted to admitted classes: unit slowdown (E[S_i]/delta_i) is
  // the class-independent factor sum(lambda_j/delta_j) E[X^2]E[1/X] /
  // (2 (C - demand)).
  const double ex = dist_.mean();
  double demand = 0.0, denom = 0.0;
  for (std::size_t j = 0; j < lambda_hat.size(); ++j) {
    if (!mask[j]) continue;
    demand += lambda_hat[j] * ex;
    denom += lambda_hat[j] / delta_[j];
  }
  if (demand >= capacity_) return kInf;
  if (denom <= 0.0) return 0.0;
  return denom * dist_.second_moment() * dist_.mean_inverse() /
         (2.0 * (capacity_ - demand));
}

void SlowdownBudgetGate::update(const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == delta_.size(), "estimate size mismatch");
  admit_.assign(delta_.size(), true);
  // Shed lowest classes until eq. 18 predicts the budget holds.
  for (std::size_t i = delta_.size(); i-- > 1;) {
    if (predicted_unit_slowdown(lambda_hat, admit_) <= budget_) return;
    admit_[i] = false;
  }
}

bool SlowdownBudgetGate::admit(ClassId cls) const {
  PSD_REQUIRE(cls < admit_.size(), "class id out of range");
  return admit_[cls];
}

ProportionalShedGate::ProportionalShedGate(std::vector<double> delta,
                                           double mean_size, double capacity,
                                           double threshold)
    : delta_(std::move(delta)),
      mean_size_(mean_size),
      capacity_(capacity),
      threshold_(threshold) {
  PSD_REQUIRE(!delta_.empty(), "need at least one class");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
  for (double d : delta_) PSD_REQUIRE(d > 0.0, "deltas must be positive");
  keep_.assign(delta_.size(), 1.0);
  credit_.assign(delta_.size(), 0.0);
}

void ProportionalShedGate::update(const std::vector<double>& lambda_hat) {
  PSD_REQUIRE(lambda_hat.size() == delta_.size(), "estimate size mismatch");
  const double target = threshold_ * capacity_;
  double demand = 0.0;
  for (double l : lambda_hat) demand += l * mean_size_;
  if (demand <= target) {
    keep_.assign(delta_.size(), 1.0);
    return;
  }
  // Shed S = demand - target work, split over classes in proportion to
  // delta_c * demand_c (lower classes shed more).  A class asked to shed
  // more than its own demand is clamped to zero keep and the excess is
  // redistributed over the classes still above zero — repeat until the
  // requested shed fits (terminates: each pass zeroes >= 1 class).
  std::vector<double> dem(delta_.size()), shed(delta_.size(), 0.0);
  for (std::size_t c = 0; c < delta_.size(); ++c) {
    dem[c] = lambda_hat[c] * mean_size_;
  }
  double excess = demand - target;
  std::vector<bool> open(delta_.size(), true);
  while (excess > 0.0) {
    double weight = 0.0;
    for (std::size_t c = 0; c < delta_.size(); ++c) {
      if (open[c]) weight += delta_[c] * dem[c];
    }
    if (weight <= 0.0) break;  // nothing left to shed; admit the floor
    bool clamped = false;
    double granted = 0.0;
    for (std::size_t c = 0; c < delta_.size(); ++c) {
      if (!open[c]) continue;
      const double want = excess * delta_[c] * dem[c] / weight;
      const double room = dem[c] - shed[c];
      if (want >= room) {
        shed[c] = dem[c];
        open[c] = false;
        clamped = true;
        granted += room;
      } else {
        shed[c] += want;
        granted += want;
      }
    }
    excess -= granted;
    if (!clamped) break;  // everyone took their full share: done
    if (excess <= 1e-12 * demand) break;
  }
  for (std::size_t c = 0; c < delta_.size(); ++c) {
    keep_[c] = dem[c] > 0.0 ? (dem[c] - shed[c]) / dem[c] : 1.0;
  }
}

bool ProportionalShedGate::admit(ClassId cls) const {
  PSD_REQUIRE(cls < keep_.size(), "class id out of range");
  return keep_[cls] > 0.0;
}

bool ProportionalShedGate::admit_request(ClassId cls, Time /*now*/,
                                         double /*size*/) {
  PSD_REQUIRE(cls < keep_.size(), "class id out of range");
  credit_[cls] += keep_[cls];
  if (credit_[cls] >= 1.0) {
    credit_[cls] -= 1.0;
    return true;
  }
  return false;
}

TokenBucketGate::TokenBucketGate(std::size_t num_classes, double mean_size,
                                 double capacity, double threshold,
                                 double burst_tu) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
  PSD_REQUIRE(burst_tu > 0.0, "burst must be positive");
  const double rate =
      threshold * capacity / static_cast<double>(num_classes);
  const double burst = rate * burst_tu * mean_size / capacity;
  buckets_.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    buckets_.emplace_back(rate, burst, 0.0);
  }
}

bool TokenBucketGate::admit_request(ClassId cls, Time now, double size) {
  PSD_REQUIRE(cls < buckets_.size(), "class id out of range");
  return buckets_[cls].try_consume(size, now);
}

void AdmissionSpec::validate() const {
  if (kind == Kind::kNone || kind == Kind::kAdmitAll) return;
  if (kind == Kind::kSlowdownBudget) {
    PSD_REQUIRE(budget > 0.0, "admission budget must be positive");
    return;
  }
  PSD_REQUIRE(threshold > 0.0 && threshold < 1.0,
              "admission threshold in (0,1)");
  if (kind == Kind::kTokenBucket) {
    PSD_REQUIRE(burst_tu > 0.0, "admission burst must be positive");
  }
}

std::string AdmissionSpec::name() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kAdmitAll:
      return "admit-all";
    case Kind::kUtilization:
      return "util:" + fmt(threshold);
    case Kind::kSlowdownBudget:
      return "slowdown-budget:" + fmt(budget);
    case Kind::kDeltaAware:
      return "delta-aware:" + fmt(threshold);
    case Kind::kTokenBucket:
      return "token-bucket:" + fmt(threshold) + "," + fmt(burst_tu);
  }
  return "none";
}

AdmissionSpec AdmissionSpec::parse(const std::string& spec) {
  AdmissionSpec out;
  const auto colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  std::vector<double> params;
  if (colon != std::string::npos) {
    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const auto comma = rest.find(',', pos);
      const std::string tok =
          rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
      char* end = nullptr;
      const double v = std::strtod(tok.c_str(), &end);
      PSD_REQUIRE(end != tok.c_str() && *end == '\0' && !tok.empty(),
                  "bad admission parameter: " + spec);
      params.push_back(v);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  PSD_REQUIRE(params.size() <= 2, "too many admission parameters: " + spec);
  if (head == "none") {
    PSD_REQUIRE(params.empty(), "'none' takes no parameters");
    out.kind = Kind::kNone;
  } else if (head == "admit-all") {
    PSD_REQUIRE(params.empty(), "'admit-all' takes no parameters");
    out.kind = Kind::kAdmitAll;
  } else if (head == "util") {
    out.kind = Kind::kUtilization;
    if (!params.empty()) out.threshold = params[0];
  } else if (head == "slowdown-budget") {
    out.kind = Kind::kSlowdownBudget;
    if (!params.empty()) out.budget = params[0];
  } else if (head == "delta-aware") {
    out.kind = Kind::kDeltaAware;
    if (!params.empty()) out.threshold = params[0];
  } else if (head == "token-bucket") {
    out.kind = Kind::kTokenBucket;
    if (!params.empty()) out.threshold = params[0];
    if (params.size() > 1) out.burst_tu = params[1];
  } else {
    PSD_REQUIRE(false, "unknown admission policy: " + spec);
  }
  out.validate();
  return out;
}

std::unique_ptr<AdmissionController> make_admission(
    const AdmissionSpec& spec, const std::vector<double>& delta,
    const SamplerVariant& dist, double capacity) {
  spec.validate();
  switch (spec.kind) {
    case AdmissionSpec::Kind::kNone:
      return nullptr;
    case AdmissionSpec::Kind::kAdmitAll:
      return std::make_unique<AdmitAll>();
    case AdmissionSpec::Kind::kUtilization:
      return std::make_unique<UtilizationGate>(delta.size(), dist.mean(),
                                               capacity, spec.threshold);
    case AdmissionSpec::Kind::kSlowdownBudget:
      return std::make_unique<SlowdownBudgetGate>(delta, dist, capacity,
                                                  spec.budget);
    case AdmissionSpec::Kind::kDeltaAware:
      return std::make_unique<ProportionalShedGate>(delta, dist.mean(),
                                                    capacity, spec.threshold);
    case AdmissionSpec::Kind::kTokenBucket:
      return std::make_unique<TokenBucketGate>(delta.size(), dist.mean(),
                                               capacity, spec.threshold,
                                               spec.burst_tu);
  }
  return nullptr;
}

}  // namespace psd
