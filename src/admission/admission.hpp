// Admission control (paper §5: admission control is the standard companion
// of DiffServ scheduling — Abdelzaher et al., Lee/Lui/Yau — but is "not
// sufficient" for PSD on its own; here it complements the eq.-17 allocator).
//
// Controllers gate requests *before* they enter the waiting queues:
//   * AdmitAll            — pass-through (default).
//   * UtilizationGate     — reject any class's request when the measured
//                           total utilization demand exceeds a threshold
//                           (overload protection, Abdelzaher-style).
//   * SlowdownBudgetGate  — the PSD-native controller: admit a request only
//                           while eq. 18 predicts every class's slowdown
//                           stays within its budget delta_i * S_max at the
//                           current estimated loads.  Uses the closed form,
//                           so the gate is O(N) per decision window.
//   * ProportionalShedGate — delta-aware graceful degradation: thin *every*
//                           class (deterministic error-diffusion thinning)
//                           so the admitted lambdas stay under the target
//                           utilization while all classes survive — the
//                           eq.-17 allocator then still holds every ratio.
//   * TokenBucketGate     — per-class work-rate caps (rt/token_bucket.hpp
//                           deficit buckets): each class banks an equal
//                           share of threshold * capacity.
// Controllers are evaluated per estimation window (decisions latch between
// reallocations, mirroring the rate allocator's cadence).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/sampler.hpp"
#include "rt/token_bucket.hpp"

namespace psd {

/// How a policy sheds, for span/trace annotation (obs/trace.hpp SpanVerdict
/// is value-aligned with this enum; the shard span hook static_asserts it).
/// kAdmitted is never returned by shed_verdict(); it exists so the verdict
/// byte has one shared zero meaning "not shed".
enum AdmitVerdict : std::uint8_t {
  kAdmitted = 0,
  kShedMask = 1,     ///< Latched per-class admit/deny mask said no.
  kShedThinned = 2,  ///< Within-class proportional thinning said no.
  kShedBucket = 3,   ///< The class's token bucket was empty.
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Latch per-class admit/deny decisions from fresh load estimates.
  /// Called once per estimation window with per-class lambda estimates.
  virtual void update(const std::vector<double>& lambda_hat) = 0;

  /// Decide for one arriving request of class `cls` (must be O(1)).
  virtual bool admit(ClassId cls) const = 0;

  /// Per-request decision hook: policies that thin within a class (error
  /// diffusion) or meter work (token buckets) need the arrival time and
  /// size; the latched-mask gates ignore both.  `now` must be monotone
  /// across calls.  Default forwards to the latched admit().
  virtual bool admit_request(ClassId cls, Time now, double size) {
    (void)now;
    (void)size;
    return admit(cls);
  }

  /// How this policy sheds when admit_request() returns false — a static
  /// property of the policy, used to annotate shed spans.  Mask-style gates
  /// (the default) deny whole classes; thinning and metering policies
  /// override.
  virtual AdmitVerdict shed_verdict() const { return kShedMask; }

  virtual std::string name() const = 0;
};

class AdmitAll final : public AdmissionController {
 public:
  void update(const std::vector<double>& /*lambda_hat*/) override {}
  bool admit(ClassId /*cls*/) const override { return true; }
  std::string name() const override { return "admit-all"; }
};

/// Rejects *lower* classes first when estimated utilization exceeds the
/// threshold: classes are dropped from the lowest priority (largest index)
/// upward until the remaining demand fits.
class UtilizationGate final : public AdmissionController {
 public:
  UtilizationGate(std::size_t num_classes, double mean_size, double capacity,
                  double threshold = 0.9);

  void update(const std::vector<double>& lambda_hat) override;
  bool admit(ClassId cls) const override;
  std::string name() const override { return "utilization-gate"; }

  const std::vector<bool>& admitted() const { return admit_; }

 private:
  double mean_size_, capacity_, threshold_;
  std::vector<bool> admit_;
};

/// Admit while eq. 18 keeps every class's predicted slowdown within
/// delta_i * max_unit_slowdown; otherwise shed lower classes first.
class SlowdownBudgetGate final : public AdmissionController {
 public:
  /// `max_unit_slowdown`: budget for a hypothetical delta == 1 class; class
  /// i's budget is delta_i * max_unit_slowdown (proportionality preserved).
  SlowdownBudgetGate(std::vector<double> delta, SamplerVariant dist,
                     double capacity, double max_unit_slowdown);

  void update(const std::vector<double>& lambda_hat) override;
  bool admit(ClassId cls) const override;
  std::string name() const override { return "slowdown-budget"; }

  const std::vector<bool>& admitted() const { return admit_; }

 private:
  /// Predicted unit slowdown (E[S_i]/delta_i) if only classes with
  /// mask[j] participate; +inf when infeasible.
  double predicted_unit_slowdown(const std::vector<double>& lambda_hat,
                                 const std::vector<bool>& mask) const;

  std::vector<double> delta_;
  SamplerVariant dist_;
  double capacity_, budget_;
  std::vector<bool> admit_;
};

/// Delta-aware proportional shedding: when estimated demand exceeds
/// threshold * capacity, thin every class — shedding work in proportion to
/// delta_c * lambda_c * E[X], so lower classes (larger delta) shed more —
/// instead of cutting whole classes.  All classes stay alive, the admitted
/// demand fits under the target, and the eq.-17 allocator keeps *all*
/// slowdown ratios among the survivors (which is every class).
///
/// Per-request thinning is deterministic error diffusion: class c banks
/// keep_[c] of credit per arrival and admits whenever the bank reaches one
/// whole request — so an admitted fraction of exactly keep_[c] with no RNG,
/// preserving replay/bitwise determinism.
class ProportionalShedGate final : public AdmissionController {
 public:
  ProportionalShedGate(std::vector<double> delta, double mean_size,
                       double capacity, double threshold = 0.9);

  void update(const std::vector<double>& lambda_hat) override;
  bool admit(ClassId cls) const override;
  bool admit_request(ClassId cls, Time now, double size) override;
  AdmitVerdict shed_verdict() const override { return kShedThinned; }
  std::string name() const override { return "delta-aware"; }

  /// Admitted fraction per class after the last update (1.0 = no shedding).
  const std::vector<double>& keep() const { return keep_; }

 private:
  std::vector<double> delta_;
  double mean_size_, capacity_, threshold_;
  std::vector<double> keep_;    ///< Latched admitted fraction per class.
  std::vector<double> credit_;  ///< Error-diffusion accumulators.
};

/// Per-class work-rate caps: class c owns a deficit token bucket accruing an
/// equal share of threshold * capacity work units per time unit; a request
/// is admitted while its class bucket is non-negative and debits its size.
/// No latched mask — classes are never cut, just metered.
class TokenBucketGate final : public AdmissionController {
 public:
  /// `burst_tu`: banked allowance per class, measured in mean-request
  /// service times (paper tu: burst = rate * burst_tu * mean_size /
  /// capacity work units) so one spec means the same thing in simulator
  /// raw time and rt wall seconds.
  TokenBucketGate(std::size_t num_classes, double mean_size, double capacity,
                  double threshold = 0.9, double burst_tu = 4.0);

  void update(const std::vector<double>& /*lambda_hat*/) override {}
  bool admit(ClassId /*cls*/) const override { return true; }
  bool admit_request(ClassId cls, Time now, double size) override;
  AdmitVerdict shed_verdict() const override { return kShedBucket; }
  std::string name() const override { return "token-bucket"; }

 private:
  std::vector<rt::TokenBucket> buckets_;
};

/// Copyable, comparable, serializable admission-policy spec (DistSpec /
/// LoadProfile idiom): what ScenarioConfig / RtConfig / the campaign grid
/// carry; make_admission() turns it into a live controller.
struct AdmissionSpec {
  enum class Kind {
    kNone,            ///< No gate installed (default; zero-cost path).
    kAdmitAll,        ///< Explicit pass-through (counts offered load).
    kUtilization,     ///< UtilizationGate at `threshold`.
    kSlowdownBudget,  ///< SlowdownBudgetGate at `budget` unit slowdown.
    kDeltaAware,      ///< ProportionalShedGate at `threshold`.
    kTokenBucket,     ///< TokenBucketGate at `threshold`, `burst_tu`.
  };

  Kind kind = Kind::kNone;
  double threshold = 0.9;  ///< Target utilization (util/delta-aware/bucket).
  double budget = 25.0;    ///< Max unit slowdown (slowdown-budget).
  double burst_tu = 4.0;   ///< Bucket burst, in time units (token-bucket).

  bool active() const { return kind != Kind::kNone; }

  void validate() const;

  /// Canonical parsable form ("delta-aware:0.9"); "none" when inactive.
  std::string name() const;

  /// Inverse of name().  Accepted grammar (params optional, defaulted):
  ///   none | admit-all | util[:threshold] | slowdown-budget[:budget] |
  ///   delta-aware[:threshold] | token-bucket[:threshold[,burst_tu]]
  static AdmissionSpec parse(const std::string& spec);

  friend bool operator==(const AdmissionSpec& x, const AdmissionSpec& y) {
    return x.kind == y.kind && x.threshold == y.threshold &&
           x.budget == y.budget && x.burst_tu == y.burst_tu;
  }
  friend bool operator!=(const AdmissionSpec& x, const AdmissionSpec& y) {
    return !(x == y);
  }
};

/// Build the controller a spec describes, sized for `delta.size()` classes
/// at `capacity`.  Returns nullptr for Kind::kNone (install no gate).
std::unique_ptr<AdmissionController> make_admission(
    const AdmissionSpec& spec, const std::vector<double>& delta,
    const SamplerVariant& dist, double capacity);

}  // namespace psd
