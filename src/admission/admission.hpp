// Admission control (paper §5: admission control is the standard companion
// of DiffServ scheduling — Abdelzaher et al., Lee/Lui/Yau — but is "not
// sufficient" for PSD on its own; here it complements the eq.-17 allocator).
//
// Controllers gate requests *before* they enter the waiting queues:
//   * AdmitAll            — pass-through (default).
//   * UtilizationGate     — reject any class's request when the measured
//                           total utilization demand exceeds a threshold
//                           (overload protection, Abdelzaher-style).
//   * SlowdownBudgetGate  — the PSD-native controller: admit a request only
//                           while eq. 18 predicts every class's slowdown
//                           stays within its budget delta_i * S_max at the
//                           current estimated loads.  Uses the closed form,
//                           so the gate is O(N) per decision window.
// Controllers are evaluated per estimation window (decisions latch between
// reallocations, mirroring the rate allocator's cadence).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/sampler.hpp"

namespace psd {

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Latch per-class admit/deny decisions from fresh load estimates.
  /// Called once per estimation window with per-class lambda estimates.
  virtual void update(const std::vector<double>& lambda_hat) = 0;

  /// Decide for one arriving request of class `cls` (must be O(1)).
  virtual bool admit(ClassId cls) const = 0;

  virtual std::string name() const = 0;
};

class AdmitAll final : public AdmissionController {
 public:
  void update(const std::vector<double>& /*lambda_hat*/) override {}
  bool admit(ClassId /*cls*/) const override { return true; }
  std::string name() const override { return "admit-all"; }
};

/// Rejects *lower* classes first when estimated utilization exceeds the
/// threshold: classes are dropped from the lowest priority (largest index)
/// upward until the remaining demand fits.
class UtilizationGate final : public AdmissionController {
 public:
  UtilizationGate(std::size_t num_classes, double mean_size, double capacity,
                  double threshold = 0.9);

  void update(const std::vector<double>& lambda_hat) override;
  bool admit(ClassId cls) const override;
  std::string name() const override { return "utilization-gate"; }

  const std::vector<bool>& admitted() const { return admit_; }

 private:
  double mean_size_, capacity_, threshold_;
  std::vector<bool> admit_;
};

/// Admit while eq. 18 keeps every class's predicted slowdown within
/// delta_i * max_unit_slowdown; otherwise shed lower classes first.
class SlowdownBudgetGate final : public AdmissionController {
 public:
  /// `max_unit_slowdown`: budget for a hypothetical delta == 1 class; class
  /// i's budget is delta_i * max_unit_slowdown (proportionality preserved).
  SlowdownBudgetGate(std::vector<double> delta, SamplerVariant dist,
                     double capacity, double max_unit_slowdown);

  void update(const std::vector<double>& lambda_hat) override;
  bool admit(ClassId cls) const override;
  std::string name() const override { return "slowdown-budget"; }

  const std::vector<bool>& admitted() const { return admit_; }

 private:
  /// Predicted unit slowdown (E[S_i]/delta_i) if only classes with
  /// mask[j] participate; +inf when infeasible.
  double predicted_unit_slowdown(const std::vector<double>& lambda_hat,
                                 const std::vector<bool>& mask) const;

  std::vector<double> delta_;
  SamplerVariant dist_;
  double capacity_, budget_;
  std::vector<bool> admit_;
};

}  // namespace psd
