// Umbrella header for the psd library.
//
// psdserv — processing-rate allocation for proportional slowdown
// differentiation (PSD) on Internet servers, after Zhou, Wei & Xu,
// IPDPS 2004.  See README.md for a tour and DESIGN.md for the system map.
#pragma once

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

#include "stats/batch_means.hpp"
#include "stats/ci.hpp"
#include "stats/histogram.hpp"
#include "stats/interval_series.hpp"
#include "stats/online.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/percentile.hpp"
#include "stats/reservoir.hpp"

#include "dist/adapter.hpp"
#include "dist/alias_table.hpp"
#include "dist/bounded_exponential.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/deterministic.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/mixture.hpp"
#include "dist/pareto.hpp"
#include "dist/sampler.hpp"
#include "dist/uniform.hpp"
#include "dist/ziggurat.hpp"

#include "queueing/md1.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1_priority.hpp"
#include "queueing/mm1.hpp"

#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

#include "workload/arrival.hpp"
#include "workload/class_spec.hpp"
#include "workload/generator.hpp"
#include "workload/session.hpp"
#include "workload/trace.hpp"

#include "sched/dedicated_rate.hpp"
#include "sched/lottery.hpp"
#include "sched/priority.hpp"
#include "sched/sfq.hpp"

#include "admission/admission.hpp"
#include "cluster/dispatcher.hpp"
#include "server/server.hpp"

#include "core/adaptive_psd.hpp"
#include "core/hetero_psd_allocator.hpp"
#include "core/psd_allocation.hpp"
#include "core/psd_rate_allocator.hpp"

#include "baselines/pdd_policies.hpp"
#include "baselines/static_allocators.hpp"

#include "experiment/figures.hpp"
#include "experiment/lockstep.hpp"
#include "experiment/runner.hpp"
#include "experiment/table.hpp"

#include "sweep/campaign.hpp"
#include "sweep/grid.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/thread_pool.hpp"

#include "obs/config.hpp"
#include "obs/counters.hpp"
#include "obs/exporter.hpp"
#include "obs/prof.hpp"

#include "rt/clock.hpp"
#include "rt/controller.hpp"
#include "rt/loadgen.hpp"
#include "rt/mpsc_queue.hpp"
#include "rt/runtime.hpp"
#include "rt/seqlock.hpp"
#include "rt/shard.hpp"
#include "rt/token_bucket.hpp"
