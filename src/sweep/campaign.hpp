// Campaign engine: execute an expanded grid as scenarios x replications on
// one shared work-stealing pool, stream schema'd JSONL records, and skip
// already-completed points on re-run.
//
// Determinism contract: every point's seed is derive_point_seed(master,
// config content), every replication forks stream `r` from that seed, and
// aggregation consumes replications in index order — so the numbers (and
// the default JSONL bytes) are identical whatever the thread count or
// execution interleaving.  Records are emitted in expansion order even
// though points complete out of order (completed records buffer until their
// turn).  Per-point wall time is measured but only written when
// options.timing is set, because timing is the one field that cannot be
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "obs/counters.hpp"
#include "sweep/grid.hpp"
#include "sweep/thread_pool.hpp"

namespace psd {

struct CampaignOptions {
  std::size_t runs = 8;             ///< Replications per point.
  std::uint64_t master_seed = 42;
  std::size_t threads = 0;          ///< For an owned pool; 0 = hardware.
  std::string jsonl_path;           ///< Empty = no artifact file.
  /// true: append to jsonl_path, skipping keys already present for this
  /// master seed.  false: truncate jsonl_path and run every point.
  bool resume = true;
  bool timing = false;              ///< Add wall_ms (breaks byte-identity).
  /// Execution mode (experiment/runner.hpp).  kLockstep schedules each
  /// point's replications as lane-groups of `lockstep_lanes` — one pool
  /// task per group, run on the lane-stepped batch kernel where the config
  /// is eligible (per-lane path otherwise).  Pure execution option: keys,
  /// derived seeds, resume identity and JSONL bytes are identical across
  /// modes (lockstep lanes are bitwise-equal to per-task replications).
  ReplicationMode replication_mode = ReplicationMode::kPerTask;
  std::size_t lockstep_lanes = 8;   ///< Lane-group width K for kLockstep.
};

/// Live campaign progress, readable from another thread while run_campaign
/// executes (a ticker thread, a dashboard).  Counters are relaxed and
/// monotone; a reader sees a slightly stale but internally plausible view.
/// `total` is set once when the grid expands, so `done() < total.get()`
/// doubles as "still running" once the campaign has started.
struct CampaignGauge {
  obs::Counter total;         ///< Grid points (set when the grid expands).
  obs::Counter executed;      ///< Points fully aggregated this run.
  obs::Counter skipped;       ///< Points resumed from a previous artifact.
  obs::Counter replications;  ///< Individual replications finished.

  std::uint64_t done() const { return executed.get() + skipped.get(); }
};

struct PointOutcome {
  CampaignPoint point;
  ReplicatedResult result;  ///< Empty when skipped.
  std::uint64_t point_seed = 0;
  double wall_ms = 0.0;     ///< Summed replication execution time.
  bool skipped = false;     ///< Completed in a previous campaign run.
  std::string record;       ///< The JSONL line (empty when skipped).
};

struct CampaignResult {
  std::vector<PointOutcome> points;  ///< In expansion order.
  std::size_t executed = 0;
  std::size_t skipped = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;       ///< Whole-campaign wall time.
  double pool_busy_seconds = 0.0;  ///< Summed task time (this campaign only).

  double points_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(executed) / wall_seconds
                              : 0.0;
  }
  /// Fraction of worker capacity spent executing tasks: busy / (wall x
  /// workers).  1.0 = perfectly saturated.
  double pool_efficiency() const {
    return wall_seconds > 0.0 && threads > 0
               ? pool_busy_seconds /
                     (wall_seconds * static_cast<double>(threads))
               : 0.0;
  }
};

/// Expand, execute, and (optionally) persist a campaign.  `pool` == nullptr
/// creates a pool with options.threads workers for the duration of the call;
/// passing a pool lets several campaigns share one set of workers.
/// `on_point` (may be null) fires in expansion order as records are
/// released, including for skipped points.  `gauge` (may be null) is bumped
/// live as replications and points finish — pass one and read it from a
/// ticker thread for points/s and ETA without touching the emit path.
CampaignResult run_campaign(
    const GridSpec& grid, const CampaignOptions& options,
    WorkStealingPool* pool = nullptr,
    const std::function<void(const PointOutcome&)>& on_point = nullptr,
    CampaignGauge* gauge = nullptr);

/// Render one point's JSONL record (schema v1; see README "Running
/// campaigns" for the field list).
std::string render_point_record(const CampaignPoint& point,
                                const ReplicatedResult& result,
                                std::uint64_t master_seed,
                                std::uint64_t point_seed, std::size_t runs,
                                double wall_ms, bool timing);

}  // namespace psd
