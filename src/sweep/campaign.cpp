#include "sweep/campaign.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/error.hpp"
#include "experiment/lockstep.hpp"
#include "sweep/jsonl.hpp"

namespace psd {

std::string render_point_record(const CampaignPoint& point,
                                const ReplicatedResult& result,
                                std::uint64_t master_seed,
                                std::uint64_t point_seed, std::size_t runs,
                                double wall_ms, bool timing) {
  const ScenarioConfig& cfg = point.cfg;
  JsonObject o;
  o.field("type", "point")
      .field("schema", std::uint64_t{1})
      .field("key", point.key)
      .field("master_seed", master_seed)
      .field("point_seed", point_seed)
      .field("label", point.label)
      .raw("delta", json_array(cfg.delta))
      .field("load", cfg.load)
      .field("backend", backend_name(cfg.backend))
      .field("allocator", allocator_name(cfg.allocator))
      .field("dist", dist_name(cfg.size_dist))
      .field("rate_change", rate_change_name(cfg.rate_change))
      .field("nodes", cfg.cluster_nodes)
      .field("policy",
             AssignmentSpec(cfg.cluster_policy, cfg.cluster_jsq_d).name())
      .field("runs", runs);

  // Per-class slowdown CIs.
  std::string slow = "[";
  for (std::size_t i = 0; i < result.slowdown.size(); ++i) {
    if (i > 0) slow += ',';
    slow += JsonObject()
                .field("mean", result.slowdown[i].mean)
                .field("half_width", result.slowdown[i].half_width)
                .field("n", result.slowdown[i].n)
                .str();
  }
  slow += ']';
  o.raw("slowdown", slow);

  o.raw("expected", json_array(result.expected))
      .field("system_slowdown", result.system_slowdown)
      .field("expected_system", result.expected_system);

  // Achieved vs target ratios (class j over class 0); target from deltas.
  std::vector<double> target(cfg.delta.size(), kNaN);
  std::vector<double> achieved_over_target(cfg.delta.size(), kNaN);
  for (std::size_t i = 0; i < cfg.delta.size(); ++i) {
    target[i] = cfg.delta[i] / cfg.delta[0];
    if (i < result.mean_ratio.size() && target[i] > 0.0) {
      achieved_over_target[i] = result.mean_ratio[i] / target[i];
    }
  }
  o.raw("mean_ratio", json_array(result.mean_ratio))
      .raw("target_ratio", json_array(target))
      .raw("achieved_over_target", json_array(achieved_over_target));

  // Windowed ratio percentiles (Figs. 5-6, 9-10 material).
  std::string rw = "[";
  for (std::size_t j = 0; j < result.ratio.size(); ++j) {
    if (j > 0) rw += ',';
    rw += JsonObject()
              .field("p5", result.ratio[j].p5)
              .field("p50", result.ratio[j].p50)
              .field("p95", result.ratio[j].p95)
              .field("mean", result.ratio[j].mean)
              .field("windows", result.ratio[j].windows)
              .str();
  }
  rw += ']';
  o.raw("ratio_windows", rw);

  // Nonstationary points carry the transient-response block; appending it
  // conditionally keeps every stationary record's bytes unchanged.
  if (cfg.profile.active()) {
    o.field("profile", cfg.profile.name());
    if (!result.settle_mean_tu.empty()) {
      o.raw("settle_mean_tu", json_array(result.settle_mean_tu))
          .raw("settle_rate", json_array(result.settle_rate))
          .raw("settle_p75_tu", json_array(result.settle_p75_tu));
    }
  }

  // Gated points carry the overload-survival block; same conditional-append
  // discipline as the profile block above.
  if (cfg.admission.active()) {
    o.field("admission", cfg.admission.name())
        .field("shed_total", result.shed_total)
        .raw("shed_rate", json_array(result.shed_rate))
        .field("goodput_tu", result.goodput_tu)
        .field("survivor_ratio_err", result.survivor_ratio_err);
  }

  o.field("completed", result.completed_total);
  if (timing) o.field("wall_ms", wall_ms);
  return o.str();
}

CampaignResult run_campaign(
    const GridSpec& grid, const CampaignOptions& options,
    WorkStealingPool* pool,
    const std::function<void(const PointOutcome&)>& on_point,
    CampaignGauge* gauge) {
  PSD_REQUIRE(options.runs > 0, "need at least one replication per point");
  const auto t0 = std::chrono::steady_clock::now();

  auto points = expand_grid(grid);
  if (gauge != nullptr) gauge->total.add(points.size());

  std::unique_ptr<WorkStealingPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<WorkStealingPool>(options.threads);
    pool = owned.get();
  }
  const auto stats0 = pool->stats();

  std::unordered_set<std::string> done;
  if (options.resume && !options.jsonl_path.empty()) {
    done = load_completed_keys(options.jsonl_path, options.master_seed);
  }

  CampaignResult out;
  out.threads = pool->worker_count();
  out.points.resize(points.size());

  std::ofstream jsonl;
  if (!options.jsonl_path.empty()) {
    // resume=false starts the artifact over: appending would leave two
    // records per key for the same master seed and double-count points in
    // any downstream grouping.
    jsonl.open(options.jsonl_path,
               options.resume ? std::ios::app : std::ios::trunc);
    PSD_REQUIRE(static_cast<bool>(jsonl),
                "cannot open campaign JSONL for writing: " +
                    options.jsonl_path);
  }

  // Per-point replication slots; aggregation fires when the last one lands.
  // Errors gate per point: a failed point emits no record, but every other
  // point still aggregates and persists (so a rerun resumes all the work
  // that did succeed).
  struct PointState {
    std::vector<RunResult> reps;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> rep_ns{0};
    std::string error;  // guarded by emit_m
  };
  std::vector<PointState> state(points.size());

  // In-order release: completed records buffer until every earlier point is
  // out, which keeps the artifact bytes independent of execution order.
  std::mutex emit_m;
  std::map<std::size_t, const PointOutcome*> ready;
  std::size_t next_emit = 0;
  std::string first_error;

  auto release_ready = [&]() {  // call with emit_m held
    while (true) {
      if (next_emit >= out.points.size()) break;
      const auto it = ready.find(next_emit);
      if (it == ready.end()) break;
      const PointOutcome& po = *it->second;
      if (jsonl.is_open() && !po.record.empty()) {
        jsonl << po.record << '\n';
        jsonl.flush();
      }
      if (on_point) on_point(po);
      ready.erase(it);
      ++next_emit;
    }
  };

  for (std::size_t i = 0; i < points.size(); ++i) {
    PointOutcome& po = out.points[i];
    po.point = points[i];
    po.point_seed = derive_point_seed(options.master_seed, points[i].cfg);
    if (done.count(points[i].key) > 0) {
      po.skipped = true;
      ++out.skipped;
      if (gauge != nullptr) gauge->skipped.add();
      std::lock_guard<std::mutex> lk(emit_m);
      ready.emplace(i, &po);
      release_ready();
      continue;
    }
    ++out.executed;
    state[i].reps.resize(options.runs);
    state[i].remaining.store(options.runs, std::memory_order_relaxed);

    // Task granularity: one replication per task (per-task mode), or one
    // lane-group of up to `lockstep_lanes` replications per task (lockstep
    // mode; the last group of a point takes the ragged tail).  Group tasks
    // land their lanes in the same reps slots a per-task campaign would
    // fill, so aggregation — and with it every record byte — is unchanged.
    const std::size_t group =
        options.replication_mode == ReplicationMode::kLockstep
            ? std::max<std::size_t>(std::size_t{1}, options.lockstep_lanes)
            : std::size_t{1};

    for (std::size_t r0 = 0; r0 < options.runs; r0 += group) {
      const std::size_t count = std::min(group, options.runs - r0);
      pool->submit([&, i, r0, count] {
        PointState& st = state[i];
        PointOutcome& outcome = out.points[i];
        const auto rep0 = std::chrono::steady_clock::now();
        try {
          ScenarioConfig cfg = outcome.point.cfg;
          cfg.seed = outcome.point_seed;
          if (count == 1 && group == 1) {
            st.reps[r0] = run_scenario(cfg, r0);
          } else {
            auto lanes = run_scenario_lanes(cfg, r0, count);
            for (std::size_t j = 0; j < count; ++j) {
              st.reps[r0 + j] = std::move(lanes[j]);
            }
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lk(emit_m);
          if (st.error.empty()) {
            st.error = outcome.point.label + ": " + e.what();
          }
        }
        st.rep_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - rep0)
                    .count()),
            std::memory_order_relaxed);
        if (gauge != nullptr) gauge->replications.add(count);
        if (st.remaining.fetch_sub(count, std::memory_order_acq_rel) ==
            count) {
          // Last replication of this point: aggregate + render + release.
          if (gauge != nullptr) gauge->executed.add();
          outcome.wall_ms =
              static_cast<double>(st.rep_ns.load(std::memory_order_relaxed)) *
              1e-6;
          std::lock_guard<std::mutex> lk(emit_m);
          if (st.error.empty()) {
            outcome.result =
                aggregate_replications(outcome.point.cfg, st.reps);
            outcome.record = render_point_record(
                outcome.point, outcome.result, options.master_seed,
                outcome.point_seed, options.runs, outcome.wall_ms,
                options.timing);
          } else if (first_error.empty()) {
            first_error = st.error;
          }
          st.reps.clear();
          st.reps.shrink_to_fit();
          ready.emplace(i, &outcome);
          release_ready();
        }
      });
    }
  }

  pool->wait_idle();
  {
    // Flush any tail (all points should be released by now).
    std::lock_guard<std::mutex> lk(emit_m);
    release_ready();
  }
  if (!first_error.empty()) {
    throw std::runtime_error("campaign point failed: " + first_error);
  }

  const auto stats1 = pool->stats();
  out.pool_busy_seconds = stats1.busy_seconds - stats0.busy_seconds;
  out.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace psd
