// Work-stealing thread pool shared by an entire campaign: every
// (scenario point, replication) pair becomes one task, so a 200-point grid
// saturates all cores instead of serializing scenarios and parallelizing
// only within one (the run_replications bottleneck this subsystem replaces).
//
// Design: one deque per worker, LIFO pop from the owner's back, FIFO steal
// from a victim's front (the classic Blumofe/Leiserson discipline).  Tasks
// here are coarse — a full scenario replication runs for milliseconds to
// seconds — so the deques are mutex-guarded rather than lock-free; the
// steal path's cost is noise next to the work it moves.  Determinism is the
// caller's job: campaign tasks write into preassigned slots and every
// scenario derives its seed from config content, so results are identical
// whatever the steal order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psd {

class WorkStealingPool {
 public:
  /// `workers` == 0 picks std::thread::hardware_concurrency().
  explicit WorkStealingPool(std::size_t workers = 0);

  /// Drains remaining tasks (wait_idle) before joining the workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a task.  Safe from any thread; a task may submit more tasks
  /// (they land on the submitting worker's own deque).
  void submit(std::function<void()> task);

  /// Block until every submitted task (including ones submitted by running
  /// tasks) has finished.  Must not be called from inside a task.
  void wait_idle();

  std::size_t worker_count() const { return workers_.size(); }

  struct Stats {
    std::uint64_t executed = 0;  ///< Tasks run to completion.
    std::uint64_t stolen = 0;    ///< Tasks taken from another worker's deque.
    double busy_seconds = 0.0;   ///< Summed task execution time, all workers.
  };
  Stats stats() const;

 private:
  struct Worker {
    mutable std::mutex m;
    std::deque<std::function<void()>> deque;
  };

  void worker_loop(std::size_t index);
  bool try_acquire(std::size_t self, std::function<void()>& task,
                   bool& stolen);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  // Guards the idle/wake protocol and the counters below.
  mutable std::mutex state_m_;
  std::condition_variable work_cv_;   ///< Workers sleep here.
  std::condition_variable idle_cv_;   ///< wait_idle sleeps here.
  std::size_t queued_ = 0;            ///< Submitted, not yet dequeued.
  std::size_t in_flight_ = 0;         ///< Dequeued, still executing.
  bool stop_ = false;

  std::uint64_t executed_ = 0;
  std::uint64_t stolen_ = 0;
  std::uint64_t busy_ns_ = 0;
  std::size_t submit_rr_ = 0;  ///< Round-robin target for external submits.
};

}  // namespace psd
