#include "sweep/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace psd {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonObject::key(const std::string& name) {
  if (!body_.empty()) body_ += ',';
  body_ += json_string(name);
  body_ += ':';
}

JsonObject& JsonObject::field(const std::string& name, double v) {
  key(name);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::field(const std::string& name, const std::string& v) {
  key(name);
  body_ += json_string(v);
  return *this;
}

JsonObject& JsonObject::field(const std::string& name, const char* v) {
  return field(name, std::string(v));
}

JsonObject& JsonObject::field_bool(const std::string& name, bool v) {
  key(name);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::raw(const std::string& name,
                            const std::string& rendered) {
  key(name);
  body_ += rendered;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

std::string json_array(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(v[i]);
  }
  out += ']';
  return out;
}

std::unordered_set<std::string> load_completed_keys(
    const std::string& path, std::uint64_t master_seed) {
  std::unordered_set<std::string> keys;
  std::ifstream in(path);
  if (!in) return keys;
  const std::string seed_marker =
      "\"master_seed\":" + std::to_string(master_seed);
  const std::string key_marker = "\"key\":\"";
  std::string line;
  while (std::getline(in, line)) {
    // The seed match must not be a prefix of a longer number (seed 4 vs 42).
    const auto sp = line.find(seed_marker);
    if (sp == std::string::npos) continue;
    const auto after = sp + seed_marker.size();
    if (after < line.size() && line[after] >= '0' && line[after] <= '9') {
      continue;
    }
    const auto kp = line.find(key_marker);
    if (kp == std::string::npos) continue;
    const auto start = kp + key_marker.size();
    const auto end = line.find('"', start);
    if (end == std::string::npos || end == start) continue;
    keys.insert(line.substr(start, end - start));
  }
  return keys;
}

}  // namespace psd
