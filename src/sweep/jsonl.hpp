// Minimal JSON rendering + JSONL scanning for campaign artifacts.
//
// Writing: campaign records must be byte-identical for identical inputs
// regardless of thread count, so doubles are rendered with "%.17g"
// (shortest exact round-trip bound) and non-finite values become null
// (JSON has no NaN/inf).  Reading: resume only needs two fields per line
// ("key", "master_seed"), so the loader is a tolerant string scan rather
// than a full parser — foreign or truncated lines are skipped.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace psd {

/// "%.17g" for finite values, "null" otherwise.
std::string json_number(double v);

/// Escape and quote a string for JSON (control chars, quote, backslash).
std::string json_string(const std::string& s);

/// Incremental single-object builder: field() in call order, no nesting
/// helper needed beyond raw() for pre-rendered arrays/objects.
class JsonObject {
 public:
  JsonObject& field(const std::string& name, double v);
  /// Any unsigned integer type.  A std::uint64_t-only overload would leave
  /// std::size_t callers ambiguous on targets where size_t is a distinct
  /// type (unsigned long vs unsigned long long on LP64 macOS): both the
  /// uint64_t and double conversions then rank equally.
  template <typename T,
            std::enable_if_t<std::is_unsigned_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonObject& field(const std::string& name, T v) {
    key(name);
    body_ += std::to_string(static_cast<unsigned long long>(v));
    return *this;
  }
  JsonObject& field(const std::string& name, const std::string& v);
  JsonObject& field(const std::string& name, const char* v);
  JsonObject& field_bool(const std::string& name, bool v);
  /// `rendered` is inserted verbatim (already-valid JSON).
  JsonObject& raw(const std::string& name, const std::string& rendered);

  /// "{...}" — no trailing newline.
  std::string str() const;

 private:
  void key(const std::string& name);
  std::string body_;
};

/// Render a numeric array: "[1,2.5,null]".
std::string json_array(const std::vector<double>& v);

/// Scan a JSONL file for records carrying `"master_seed":<seed>` and return
/// the set of their `"key"` values.  Missing file => empty set.
std::unordered_set<std::string> load_completed_keys(const std::string& path,
                                                    std::uint64_t master_seed);

}  // namespace psd
