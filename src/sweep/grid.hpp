// Declarative parameter grids: the paper's evaluation (Figs. 2-12) and the
// ablations are all crosses of load x differentiation weights x backend x
// service-time shape (x cluster policy for the task-assignment extension).
// A GridSpec names the axes once; expand_grid() crosses them into concrete
// ScenarioConfigs, keyed by a content hash so campaigns are deduplicated,
// resumable, and execution-order independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"

namespace psd {

struct GridSpec {
  /// Template for every point; axis values overwrite the matching fields.
  /// An empty axis means "keep the base value" (a single implicit value).
  ScenarioConfig base;

  std::vector<double> loads;                    ///< Utilization in (0,1).
  std::vector<std::vector<double>> deltas;      ///< Class weight vectors.
  std::vector<BackendKind> backends;
  std::vector<AllocatorKind> allocators;
  std::vector<DistSpec> dists;
  std::vector<RateChangePolicy> rate_changes;
  std::vector<std::size_t> cluster_nodes;
  std::vector<AssignmentPolicy> cluster_policies;
  /// Nonstationary load profiles (times in paper tu); LoadProfile::none()
  /// as an axis value runs the stationary control alongside the transients.
  std::vector<LoadProfile> profiles;
  /// Admission policies; AdmissionSpec{} (kNone) as an axis value runs the
  /// ungated control alongside the gated points.  Any active spec lifts the
  /// load < 1 restriction, so overload factors belong on the loads axis.
  std::vector<AdmissionSpec> admissions;
};

struct CampaignPoint {
  ScenarioConfig cfg;
  std::string key;    ///< 16 hex digits: FNV-1a of the canonical config.
  std::string label;  ///< Short human-readable axis summary.
};

/// Cross the axes (loads varying fastest, deltas slowest), validate each
/// config, drop content-duplicates, and key every survivor.  Order is
/// deterministic: nesting order of the axes above, reversed (deltas
/// outermost).
std::vector<CampaignPoint> expand_grid(const GridSpec& grid);

/// Canonical serialization of every semantic ScenarioConfig field EXCEPT
/// `seed` (the campaign overwrites seeds, and a point's identity must not
/// depend on one).  Fields irrelevant to the selected machinery are
/// normalized to their defaults first — the lottery quantum with a
/// non-lottery backend, the rate-change policy off the dedicated backend,
/// adaptive gains off the adaptive allocator, the cluster policy on one
/// node, burstiness off bursty arrivals, the recording window with
/// recording off — so two configs that cannot behave differently share one
/// key (better dedup, and fixing a lottery-only parameter does not
/// invalidate the resume keys of dedicated points).  Doubles render with
/// "%.17g" so equality is bitwise.
std::string config_canonical(const ScenarioConfig& cfg);

/// FNV-1a (64-bit) over config_canonical().
std::uint64_t config_hash(const ScenarioConfig& cfg);

/// config_hash as 16 lowercase hex digits — the JSONL "key" field.
std::string config_key(const ScenarioConfig& cfg);

/// Deterministic per-point seed from (campaign master seed, config content);
/// independent of expansion or execution order.
std::uint64_t derive_point_seed(std::uint64_t master_seed,
                                const ScenarioConfig& cfg);

// --- axis-value names (shared by labels, JSONL records, CLI parsing) ---
const char* backend_name(BackendKind k);
const char* allocator_name(AllocatorKind k);
const char* rate_change_name(RateChangePolicy p);
const char* assignment_policy_name(AssignmentPolicy p);
/// CLI-style spec, e.g. "bp:1.5,0.1,100" (parsable by tools/cli_util.hpp).
std::string dist_name(const DistSpec& spec);

}  // namespace psd
