#include "sweep/thread_pool.hpp"

#include <chrono>

#include "common/error.hpp"

namespace psd {

namespace {

// Which pool (if any) the current thread belongs to, and its worker index;
// lets nested submits go to the submitting worker's own deque.
thread_local const WorkStealingPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lk(state_m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  PSD_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    // queued_ and the deque push update together under state_m_: counting
    // first-then-publishing would let a woken worker observe queued_ > 0
    // with every deque still empty and busy-spin through its wait
    // predicate until the push lands; publishing first would let a fast
    // worker decrement queued_ below zero.  (Workers take a deque mutex
    // only with state_m_ released, so the nesting here cannot deadlock.)
    std::lock_guard<std::mutex> lk(state_m_);
    ++queued_;
    std::size_t target;
    if (tl_pool == this) {
      target = tl_index;  // nested submit: stay local, stealers balance it
    } else {
      target = submit_rr_;
      submit_rr_ = (submit_rr_ + 1) % queues_.size();
    }
    std::lock_guard<std::mutex> qlk(queues_[target]->m);
    queues_[target]->deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool WorkStealingPool::try_acquire(std::size_t self,
                                   std::function<void()>& task, bool& stolen) {
  {  // own deque: back (LIFO keeps nested work warm)
    std::lock_guard<std::mutex> lk(queues_[self]->m);
    if (!queues_[self]->deque.empty()) {
      task = std::move(queues_[self]->deque.back());
      queues_[self]->deque.pop_back();
      stolen = false;
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    const std::size_t victim = (self + off) % queues_.size();
    std::lock_guard<std::mutex> lk(queues_[victim]->m);
    if (!queues_[victim]->deque.empty()) {
      task = std::move(queues_[victim]->deque.front());
      queues_[victim]->deque.pop_front();
      stolen = true;
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (try_acquire(index, task, stolen)) {
      {
        std::lock_guard<std::mutex> lk(state_m_);
        --queued_;
        ++in_flight_;
        if (stolen) ++stolen_;
      }
      const auto start = std::chrono::steady_clock::now();
      task();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      bool all_done;
      {
        std::lock_guard<std::mutex> lk(state_m_);
        --in_flight_;
        ++executed_;
        busy_ns_ += static_cast<std::uint64_t>(ns);
        all_done = queued_ == 0 && in_flight_ == 0;
      }
      if (all_done) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(state_m_);
    work_cv_.wait(lk, [&] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void WorkStealingPool::wait_idle() {
  PSD_REQUIRE(tl_pool != this,
              "wait_idle() called from inside a pool task (would deadlock)");
  std::unique_lock<std::mutex> lk(state_m_);
  idle_cv_.wait(lk, [&] { return queued_ == 0 && in_flight_ == 0; });
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  std::lock_guard<std::mutex> lk(state_m_);
  Stats s;
  s.executed = executed_;
  s.stolen = stolen_;
  s.busy_seconds = static_cast<double>(busy_ns_) * 1e-9;
  return s;
}

}  // namespace psd
