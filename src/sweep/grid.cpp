#include "sweep/grid.hpp"

#include <cstdio>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sweep/jsonl.hpp"

namespace psd {

namespace {

// %g (6 significant digits) for human-facing labels; the canonical/hashed
// form uses the exact json_number rendering instead.
std::string short_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string delta_label(const std::vector<double>& delta) {
  std::string out;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (i > 0) out += ':';
    out += short_num(delta[i]);
  }
  return out;
}

}  // namespace

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kDedicated: return "dedicated";
    case BackendKind::kSfq: return "sfq";
    case BackendKind::kLottery: return "lottery";
    case BackendKind::kWtp: return "wtp";
    case BackendKind::kPad: return "pad";
    case BackendKind::kHpd: return "hpd";
    case BackendKind::kStrict: return "strict";
  }
  PSD_UNREACHABLE("unknown backend kind");
}

const char* allocator_name(AllocatorKind k) {
  switch (k) {
    case AllocatorKind::kPsd: return "psd";
    case AllocatorKind::kAdaptivePsd: return "adaptive";
    case AllocatorKind::kEqualShare: return "equal";
    case AllocatorKind::kLoadProportional: return "loadprop";
    case AllocatorKind::kNone: return "none";
  }
  PSD_UNREACHABLE("unknown allocator kind");
}

const char* rate_change_name(RateChangePolicy p) {
  switch (p) {
    case RateChangePolicy::kRescaleRemaining: return "rescale";
    case RateChangePolicy::kFinishAtOldRate: return "finish";
  }
  PSD_UNREACHABLE("unknown rate-change policy");
}

const char* assignment_policy_name(AssignmentPolicy p) {
  switch (p) {
    case AssignmentPolicy::kRandom: return "random";
    case AssignmentPolicy::kRoundRobin: return "rr";
    case AssignmentPolicy::kLeastWorkLeft: return "lwl";
    case AssignmentPolicy::kSizeInterval: return "sita";
    case AssignmentPolicy::kJsq: return "jsq";
  }
  PSD_UNREACHABLE("unknown assignment policy");
}

std::string dist_name(const DistSpec& spec) { return spec.name(); }

std::string config_canonical(const ScenarioConfig& in) {
  // Normalize away fields the selected machinery never reads (see header).
  ScenarioConfig cfg = in;
  const ScenarioConfig defaults;
  if (cfg.backend != BackendKind::kLottery) {
    cfg.lottery_quantum_tu = defaults.lottery_quantum_tu;
  }
  if (cfg.backend != BackendKind::kDedicated) {
    cfg.rate_change = defaults.rate_change;
  }
  if (cfg.allocator != AllocatorKind::kAdaptivePsd) {
    cfg.adaptive = AdaptiveConfig{};
  }
  if (cfg.cluster_nodes == 1) cfg.cluster_policy = defaults.cluster_policy;
  if (cfg.cluster_policy != AssignmentPolicy::kJsq) {
    cfg.cluster_jsq_d = defaults.cluster_jsq_d;
  }
  if (cfg.arrivals != ArrivalKind::kBursty) {
    cfg.burstiness = defaults.burstiness;
    cfg.mmpp_sojourn = defaults.mmpp_sojourn;
    cfg.mmpp_duty = defaults.mmpp_duty;
  }
  if (!cfg.profile.active()) cfg.converge_tol = defaults.converge_tol;
  if (!cfg.admission.active()) cfg.admission = AdmissionSpec{};
  if (!cfg.record_requests) {
    cfg.record_from_tu = defaults.record_from_tu;
    cfg.record_to_tu = defaults.record_to_tu;
  }

  std::string s;
  s.reserve(512);
  auto num = [&](const char* name, double v) {
    s += name;
    s += '=';
    s += json_number(v);
    s += ';';
  };
  auto vec = [&](const char* name, const std::vector<double>& v) {
    s += name;
    s += '=';
    s += json_array(v);
    s += ';';
  };
  auto uns = [&](const char* name, std::uint64_t v) {
    s += name;
    s += '=';
    s += std::to_string(v);
    s += ';';
  };
  vec("delta", cfg.delta);
  num("load", cfg.load);
  vec("load_share", cfg.load_share);
  s += "dist=";
  s += cfg.size_dist.kind_name();
  s += '(' + json_number(cfg.size_dist.a) + ',' +
       json_number(cfg.size_dist.b) + ',' + json_number(cfg.size_dist.c) +
       ");";
  uns("arrivals", static_cast<std::uint64_t>(cfg.arrivals));
  num("burstiness", cfg.burstiness);
  // Nonstationary fields append only when off their defaults, so every
  // pre-existing (stationary, symmetric-MMPP) config keeps its canonical
  // string — and with it its content key, resume identity, and derived
  // point seed — byte-for-byte.
  if (cfg.mmpp_sojourn != defaults.mmpp_sojourn) {
    num("mmpp_sojourn", cfg.mmpp_sojourn);
  }
  if (cfg.mmpp_duty != defaults.mmpp_duty) num("mmpp_duty", cfg.mmpp_duty);
  if (cfg.profile.active()) {
    s += "profile=";
    s += std::to_string(static_cast<int>(cfg.profile.kind));
    s += '(' + json_number(cfg.profile.a) + ',' + json_number(cfg.profile.b) +
         ',' + json_number(cfg.profile.c) + ',' + json_number(cfg.profile.d) +
         ");";
    num("converge_tol", cfg.converge_tol);
  }
  if (cfg.admission != AdmissionSpec{}) {
    // name() round-trips through AdmissionSpec::parse and renders params
    // canonically, so it is safe to hash.
    s += "admission=";
    s += cfg.admission.name();
    s += ';';
  }
  num("capacity", cfg.capacity);
  num("warmup_tu", cfg.warmup_tu);
  num("measure_tu", cfg.measure_tu);
  num("window_tu", cfg.window_tu);
  num("realloc_tu", cfg.realloc_tu);
  uns("estimator_history", cfg.estimator_history);
  s += "backend=";
  s += backend_name(cfg.backend);
  s += ';';
  s += "allocator=";
  s += allocator_name(cfg.allocator);
  s += ';';
  num("adaptive.gain", cfg.adaptive.gain);
  num("adaptive.max_correction", cfg.adaptive.max_correction);
  num("adaptive.smoothing", cfg.adaptive.smoothing);
  num("lottery_quantum_tu", cfg.lottery_quantum_tu);
  s += "rate_change=";
  s += rate_change_name(cfg.rate_change);
  s += ';';
  num("rho_max", cfg.rho_max);
  num("min_residual_share", cfg.min_residual_share);
  uns("cluster_nodes", cfg.cluster_nodes);
  s += "cluster_policy=";
  s += assignment_policy_name(cfg.cluster_policy);
  s += ';';
  // Appended only under kJsq (a policy no pre-existing config could name),
  // so every other config keeps its canonical string — and with it its
  // content key, resume identity, and derived point seed — byte-for-byte.
  if (cfg.cluster_policy == AssignmentPolicy::kJsq) {
    uns("cluster_jsq_d", cfg.cluster_jsq_d);
  }
  uns("record_requests", cfg.record_requests ? 1 : 0);
  num("record_from_tu", cfg.record_from_tu);
  num("record_to_tu", cfg.record_to_tu);
  return s;
}

std::uint64_t config_hash(const ScenarioConfig& cfg) {
  const std::string canon = config_canonical(cfg);
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : canon) {
    h ^= c;
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::string config_key(const ScenarioConfig& cfg) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(config_hash(cfg)));
  return buf;
}

std::uint64_t derive_point_seed(std::uint64_t master_seed,
                                const ScenarioConfig& cfg) {
  // SplitMix64 over (master ^ content hash): any change to either yields an
  // unrelated stream, and the result depends on nothing else.
  SplitMix64 sm(master_seed ^ (config_hash(cfg) * 0x9E3779B97F4A7C15ULL));
  return sm.next();
}

std::vector<CampaignPoint> expand_grid(const GridSpec& grid) {
  // Defaulted axes: one value taken from the base config.
  const auto deltas =
      grid.deltas.empty() ? std::vector<std::vector<double>>{grid.base.delta}
                          : grid.deltas;
  const auto dists = grid.dists.empty() ? std::vector<DistSpec>{grid.base.size_dist}
                                        : grid.dists;
  const auto backends = grid.backends.empty()
                            ? std::vector<BackendKind>{grid.base.backend}
                            : grid.backends;
  const auto allocators =
      grid.allocators.empty() ? std::vector<AllocatorKind>{grid.base.allocator}
                              : grid.allocators;
  const auto rate_changes =
      grid.rate_changes.empty()
          ? std::vector<RateChangePolicy>{grid.base.rate_change}
          : grid.rate_changes;
  const auto nodes = grid.cluster_nodes.empty()
                         ? std::vector<std::size_t>{grid.base.cluster_nodes}
                         : grid.cluster_nodes;
  const auto policies =
      grid.cluster_policies.empty()
          ? std::vector<AssignmentPolicy>{grid.base.cluster_policy}
          : grid.cluster_policies;
  const auto loads =
      grid.loads.empty() ? std::vector<double>{grid.base.load} : grid.loads;
  const auto profiles = grid.profiles.empty()
                            ? std::vector<LoadProfile>{grid.base.profile}
                            : grid.profiles;
  const auto admissions = grid.admissions.empty()
                              ? std::vector<AdmissionSpec>{grid.base.admission}
                              : grid.admissions;

  std::vector<CampaignPoint> points;
  std::unordered_set<std::string> seen;
  for (const auto& delta : deltas) {
    for (const auto& dist : dists) {
      for (const auto backend : backends) {
        for (const auto allocator : allocators) {
          for (const auto rate_change : rate_changes) {
            for (const auto node_count : nodes) {
              for (const auto policy : policies) {
                for (const auto& profile : profiles) {
                  for (const auto& admission : admissions) {
                    for (const double load : loads) {
                      ScenarioConfig cfg = grid.base;
                      cfg.delta = delta;
                      cfg.size_dist = dist;
                      cfg.backend = backend;
                      cfg.allocator = allocator;
                      cfg.rate_change = rate_change;
                      cfg.cluster_nodes = node_count;
                      cfg.cluster_policy = policy;
                      cfg.profile = profile;
                      cfg.admission = admission;
                      cfg.load = load;
                      cfg.validate();
                      // Dedup on the full canonical form, not the 64-bit
                      // key, so a hash collision can never silently drop a
                      // point.
                      if (!seen.insert(config_canonical(cfg)).second) {
                        continue;
                      }
                      CampaignPoint p;
                      p.key = config_key(cfg);
                      p.label = "delta=" + delta_label(delta) +
                                " load=" + short_num(load) +
                                " backend=" + backend_name(backend) +
                                " alloc=" + allocator_name(allocator) +
                                " dist=" + dist_name(dist);
                      if (rate_change != RateChangePolicy::kRescaleRemaining) {
                        p.label += std::string(" rate_change=") +
                                   rate_change_name(rate_change);
                      }
                      if (node_count > 1) {
                        p.label +=
                            " nodes=" + std::to_string(node_count) +
                            " policy=" +
                            AssignmentSpec(policy, cfg.cluster_jsq_d).name();
                      }
                      if (profile.active()) {
                        p.label += " profile=" + profile.name();
                      }
                      if (admission.active()) {
                        p.label += " admission=" + admission.name();
                      }
                      p.cfg = std::move(cfg);
                      points.push_back(std::move(p));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

}  // namespace psd
