#include "obs/trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sweep/jsonl.hpp"

namespace psd::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* span_verdict_name(std::uint8_t v) {
  switch (v) {
    case kSpanAdmitted:
      return "admitted";
    case kSpanShedMask:
      return "shed-mask";
    case kSpanShedThinned:
      return "shed-thinned";
    case kSpanShedBucket:
      return "shed-bucket";
    default:
      return "unknown";
  }
}

// ---------------------------------------------------------------- SpanRing

SpanRing::SpanRing(std::size_t capacity)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

bool SpanRing::push(const Span& s) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  // The consumer's head store is release-paired with this acquire, so the
  // slot it vacated is safely reusable here.
  if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = s;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

std::size_t SpanRing::drain(std::vector<Span>& out) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  for (std::uint64_t i = head; i != tail; ++i) {
    out.push_back(slots_[i & mask_]);
  }
  head_.store(tail, std::memory_order_release);
  return static_cast<std::size_t>(tail - head);
}

// -------------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  out_.open(path, std::ios::trunc);
  PSD_REQUIRE(out_.is_open(),
              "cannot open trace output file '" + path + "'");
  // Header: the schema tag rides in otherData, where Chrome's loader
  // ignores it and tooling can still find it.
  out_ << "{\"otherData\":{\"schema\":\"psd.rt.trace.v1\"},"
          "\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::emit(const std::string& rendered) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << rendered;
  ++events_;
}

void TraceWriter::ensure_track(std::uint32_t pid, std::uint32_t tid) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pid) << 32) | tid;
  if (std::find(tracks_.begin(), tracks_.end(), key) != tracks_.end()) {
    return;
  }
  const bool new_pid =
      std::none_of(tracks_.begin(), tracks_.end(), [&](std::uint64_t k) {
        return (k >> 32) == pid;
      });
  tracks_.push_back(key);
  if (new_pid) {
    JsonObject m;
    m.field("name", "process_name")
        .field("ph", "M")
        .field("pid", static_cast<std::uint64_t>(pid))
        .raw("args",
             "{\"name\":" +
                 json_string(pid == 0 ? std::string("controller")
                                      : "shard " + std::to_string(pid - 1)) +
                 "}");
    emit(m.str());
  }
  JsonObject m;
  m.field("name", "thread_name")
      .field("ph", "M")
      .field("pid", static_cast<std::uint64_t>(pid))
      .field("tid", static_cast<std::uint64_t>(tid))
      .raw("args",
           "{\"name\":" +
               json_string(pid == 0 ? std::string("reallocations")
                                    : "class " + std::to_string(tid - 1)) +
               "}");
  emit(m.str());
}

void TraceWriter::write_span(const Span& s) {
  PSD_CHECK(!closed_, "trace writer already closed");
  const std::uint32_t pid = s.shard + 1;
  const std::uint32_t tid = s.cls + 1;
  ensure_track(pid, tid);
  const bool shed = s.verdict != kSpanAdmitted;
  // Sheds span ingress -> verdict; admitted spans ingress -> completion.
  const double end = shed ? s.t_admit : s.t_complete;
  JsonObject args;
  args.field("trace_id", s.trace_id)
      .field("verdict", span_verdict_name(s.verdict))
      .field("size", s.size)
      .field("tick", s.tick_seq)
      .field("t_ingress", s.t_ingress)
      .field("t_admit", s.t_admit);
  if (!shed) {
    args.field("t_pop", s.t_pop)
        .field("t_start", s.t_start)
        .field("t_complete", s.t_complete)
        .field("slowdown", s.slowdown);
  }
  JsonObject e;
  e.field("name", shed ? "shed" : "req")
      .field("cat", "request")
      .field("ph", "X")
      .field("pid", static_cast<std::uint64_t>(pid))
      .field("tid", static_cast<std::uint64_t>(tid))
      .raw("ts", json_number(s.t_ingress * 1e6))
      .raw("dur", json_number(std::max(0.0, (end - s.t_ingress) * 1e6)))
      .raw("args", args.str());
  emit(e.str());
}

void TraceWriter::write_realloc(double t, std::uint64_t tick,
                                bool fresh_window, const double* rate,
                                std::size_t num_classes) {
  PSD_CHECK(!closed_, "trace writer already closed");
  ensure_track(0, 0);
  JsonObject args;
  args.field("tick", tick).field_bool("fresh_window", fresh_window);
  args.raw("rate", json_array(std::vector<double>(rate, rate + num_classes)));
  JsonObject e;
  e.field("name", "realloc")
      .field("cat", "controller")
      .field("ph", "i")
      .field("s", "p")
      .field("pid", std::uint64_t{0})
      .field("tid", std::uint64_t{0})
      .raw("ts", json_number(t * 1e6))
      .raw("args", args.str());
  emit(e.str());
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_ << "\n]}\n";
  out_.flush();
}

}  // namespace psd::obs
