// Streaming stats exporter: the read side of the obs layer.
//
// A StatsExporter borrows the runtime's shards, controller, and load
// sources and, on each sample(now), scrapes their seqlock snapshots +
// telemetry + the controller decision trace into one self-describing JSONL
// line (schema "psd.rt.stats.v1" — field reference in src/obs/README.md).
// Scraping never blocks the scraped components: every read is a seqlock
// copy or a relaxed counter load, except the decision trace (a mutex the
// controller holds for microseconds per tick).
//
// Determinism contract: under a ManualClock the runtime drives sample() on
// a fixed interval grid from step_to(), every timestamp comes from the
// manual clock, and the (wall-clock) self-profiling block is omitted — so a
// fixed seed + step sequence yields bit-identical JSONL across repeats
// (doubles render via json_number's "%.17g").  Threaded runs drive
// sample() from a dedicated exporter thread instead, and may additionally
// serve Prometheus text exposition (format 0.0.4) from a minimal blocking
// HTTP listener: GET /metrics renders a fresh scrape on demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/config.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "rt/controller.hpp"
#include "rt/loadgen.hpp"
#include "rt/shard.hpp"

namespace psd::obs {

class StatsExporter {
 public:
  /// All pointers are borrowed and must outlive the exporter.
  /// `deterministic` marks a ManualClock drive: the self-profiling block
  /// (wall-clock timings) is then excluded from the stream.
  StatsExporter(ObsConfig cfg, std::vector<rt::Shard*> shards,
                rt::Controller* controller,
                std::vector<rt::LoadSource*> gens, bool deterministic);

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  ~StatsExporter();

  /// True when a JSONL destination is configured (sample() writes a line).
  bool streaming() const { return out_.is_open(); }

  /// True when sample() does anything at all — streaming JSONL, draining
  /// span rings into the trace sink, or feeding the SLO watchdog.  The
  /// deterministic driver gates its interval grid on this.
  bool sampling_active() const {
    return streaming() || trace_writer_ != nullptr || watchdog_ != nullptr;
  }

  /// Attach the SLO watchdog (setup time, before sampling starts); the
  /// exporter feeds it drained spans and evaluates it once per sample.
  void attach_watchdog(Watchdog* watchdog) { watchdog_ = watchdog; }
  Watchdog* watchdog() const { return watchdog_; }

  /// Scrape everything and append one JSONL line stamped `now`.  One caller
  /// at a time (the deterministic driver or the exporter thread).
  void sample(double now);

  /// Final drain at shutdown (after shard finalize): pulls the span rings
  /// dry, evaluates the watchdog once more, and closes the trace file so
  /// its footer is written even when the run ends mid-interval.
  void final_flush(double now);

  /// Trace events written so far (0 without a trace sink).
  std::uint64_t trace_events() const {
    return trace_writer_ != nullptr ? trace_writer_->events() : 0;
  }

  /// Render a full Prometheus text exposition scrape (any thread).
  std::string prometheus_text() const;

  /// Start/stop the blocking HTTP listener on cfg.metrics_port (threaded
  /// runs only; throws on bind failure).  stop_http() is idempotent and
  /// also runs from the destructor.
  void start_http();
  void stop_http();

  std::uint64_t samples() const { return samples_; }
  const ObsConfig& config() const { return cfg_; }

 private:
  std::string render_line(double now);
  void pump_trace(double now);
  void http_loop();

  ObsConfig cfg_;
  std::vector<rt::Shard*> shards_;
  rt::Controller* controller_;
  std::vector<rt::LoadSource*> gens_;
  bool deterministic_;

  std::ofstream out_;
  std::uint64_t samples_ = 0;
  std::uint64_t trace_cursor_ = 0;
  ProfTable prof_;  ///< Self-timing of sample() itself (kProfExportSample).

  // Request-trace sink: spans drained from every shard ring each sample,
  // written as Chrome trace events; controller reallocations ride along as
  // instant events via their own trace cursor.
  std::unique_ptr<TraceWriter> trace_writer_;
  std::uint64_t realloc_cursor_ = 0;
  std::vector<Span> span_buf_;
  Watchdog* watchdog_ = nullptr;  ///< Borrowed; evaluated once per sample.

  int listen_fd_ = -1;
  std::thread http_thread_;
  std::atomic<bool> http_stop_{false};
};

}  // namespace psd::obs
