// Streaming stats exporter: the read side of the obs layer.
//
// A StatsExporter borrows the runtime's shards, controller, and load
// sources and, on each sample(now), scrapes their seqlock snapshots +
// telemetry + the controller decision trace into one self-describing JSONL
// line (schema "psd.rt.stats.v1" — field reference in src/obs/README.md).
// Scraping never blocks the scraped components: every read is a seqlock
// copy or a relaxed counter load, except the decision trace (a mutex the
// controller holds for microseconds per tick).
//
// Determinism contract: under a ManualClock the runtime drives sample() on
// a fixed interval grid from step_to(), every timestamp comes from the
// manual clock, and the (wall-clock) self-profiling block is omitted — so a
// fixed seed + step sequence yields bit-identical JSONL across repeats
// (doubles render via json_number's "%.17g").  Threaded runs drive
// sample() from a dedicated exporter thread instead, and may additionally
// serve Prometheus text exposition (format 0.0.4) from a minimal blocking
// HTTP listener: GET /metrics renders a fresh scrape on demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/config.hpp"
#include "obs/prof.hpp"
#include "rt/controller.hpp"
#include "rt/loadgen.hpp"
#include "rt/shard.hpp"

namespace psd::obs {

class StatsExporter {
 public:
  /// All pointers are borrowed and must outlive the exporter.
  /// `deterministic` marks a ManualClock drive: the self-profiling block
  /// (wall-clock timings) is then excluded from the stream.
  StatsExporter(ObsConfig cfg, std::vector<rt::Shard*> shards,
                rt::Controller* controller,
                std::vector<rt::LoadSource*> gens, bool deterministic);

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  ~StatsExporter();

  /// True when a JSONL destination is configured (sample() writes a line).
  bool streaming() const { return out_.is_open(); }

  /// Scrape everything and append one JSONL line stamped `now`.  One caller
  /// at a time (the deterministic driver or the exporter thread).
  void sample(double now);

  /// Render a full Prometheus text exposition scrape (any thread).
  std::string prometheus_text() const;

  /// Start/stop the blocking HTTP listener on cfg.metrics_port (threaded
  /// runs only; throws on bind failure).  stop_http() is idempotent and
  /// also runs from the destructor.
  void start_http();
  void stop_http();

  std::uint64_t samples() const { return samples_; }
  const ObsConfig& config() const { return cfg_; }

 private:
  std::string render_line(double now);
  void http_loop();

  ObsConfig cfg_;
  std::vector<rt::Shard*> shards_;
  rt::Controller* controller_;
  std::vector<rt::LoadSource*> gens_;
  bool deterministic_;

  std::ofstream out_;
  std::uint64_t samples_ = 0;
  std::uint64_t trace_cursor_ = 0;
  ProfTable prof_;  ///< Self-timing of sample() itself (kProfExportSample).

  int listen_fd_ = -1;
  std::thread http_thread_;
  std::atomic<bool> http_stop_{false};
};

}  // namespace psd::obs
