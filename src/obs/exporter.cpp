#include "obs/exporter.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "sweep/jsonl.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSD_OBS_HAVE_SOCKETS 1
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace psd::obs {

namespace {

std::string uint_array(const std::uint64_t* v, std::size_t n) {
  std::string out = "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
  return out;
}

std::string double_array(const double* v, std::size_t n) {
  return json_array(std::vector<double>(v, v + n));
}

/// Compact per-class summary of one Log2Hist; full buckets go to the
/// Prometheus endpoint, the JSONL stream carries the queryable digest.
std::string hist_json(const Log2Hist& h) {
  JsonObject o;
  o.field("count", h.count)
      .field("underflow", h.underflow)
      .field("overflow", h.overflow)
      .field("sum", h.sum)
      .field("mean", h.mean())
      .field("p50", h.quantile(0.50))
      .field("p95", h.quantile(0.95))
      .field("p99", h.quantile(0.99));
  return o.str();
}

std::string hist_array(const Log2Hist* h, std::size_t n) {
  std::string out = "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += hist_json(h[i]);
  }
  out += ']';
  return out;
}

/// "%.17g" like the JSONL side, but non-finite values stay literal — the
/// Prometheus text format parses NaN/Inf while JSON cannot carry them.
std::string prom_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

StatsExporter::StatsExporter(ObsConfig cfg, std::vector<rt::Shard*> shards,
                             rt::Controller* controller,
                             std::vector<rt::LoadSource*> gens,
                             bool deterministic)
    : cfg_(std::move(cfg)),
      shards_(std::move(shards)),
      controller_(controller),
      gens_(std::move(gens)),
      deterministic_(deterministic) {
  PSD_REQUIRE(!shards_.empty() && controller_ != nullptr,
              "exporter needs shards and a controller");
  PSD_REQUIRE(cfg_.stats_interval > 0.0, "stats interval must be positive");
  if (!cfg_.stats_path.empty()) {
    out_.open(cfg_.stats_path, std::ios::trunc);
    PSD_REQUIRE(out_.is_open(), "cannot open stats output file '" +
                                    cfg_.stats_path + "'");
  }
  if (!cfg_.trace_path.empty()) {
    trace_writer_ = std::make_unique<TraceWriter>(cfg_.trace_path);
  }
  prof_.set_enabled(cfg_.profile);
}

StatsExporter::~StatsExporter() { stop_http(); }

std::string StatsExporter::render_line(double now) {
  const std::size_t n = shards_[0]->config().num_classes;

  std::uint64_t produced = 0;
  for (const auto* g : gens_) produced += g->produced();

  std::uint64_t dropped = 0;
  std::uint64_t shed = 0;
  std::string shards_json = "[";
  ProfSnap prof_all;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const rt::ShardSnapshot s = shards_[i]->snapshot();
    const rt::ShardTelemetry t = shards_[i]->telemetry();
    dropped += s.drops;
    for (std::size_t c = 0; c < n; ++c) shed += s.sheds_cls[c];
    prof_all.merge(t.prof);

    JsonObject sh;
    sh.field("shard", static_cast<std::uint64_t>(i))
        .field("t", s.time)
        .field("drains", s.drains)
        .field("windows", s.windows_closed)
        .raw("drops", uint_array(s.drops_cls, n))
        // Additive split of the rejection taxonomy: "drops" above stays the
        // ring-full count it always was; "drops_shed" is the admission
        // gate's per-class policy sheds (all-zero without a gate).
        .raw("drops_shed", uint_array(s.sheds_cls, n))
        .raw("accepted", uint_array(s.accepted, n))
        .raw("completed", uint_array(s.completed, n))
        .raw("staged", uint_array(s.staged, n))
        .raw("outstanding", uint_array(s.outstanding, n))
        .raw("lambda_hat", double_array(s.lambda_hat, n))
        .raw("rate", double_array(s.rate, n))
        .raw("mean_slowdown", double_array(s.mean_slowdown, n))
        .raw("window_slowdown", double_array(s.window_slowdown, n))
        .raw("mean_ingress_wait", double_array(s.mean_ingress_wait, n));

    // Telemetry block: counters copied INTO the telemetry snapshot, so
    // hist counts and these counts are coherent with each other (the
    // consistency the CI schema check asserts), even though the block may
    // lag the per-drain snapshot above by up to one estimator window.
    // Histograms hold a deterministic 1-in-sample_period subsample per
    // class; the counters are exact.
    JsonObject tel;
    tel.field("t", t.time)
        .field("sample_period", static_cast<std::uint64_t>(t.sample_period))
        .raw("accepted", uint_array(t.accepted, n))
        .raw("completions", uint_array(t.completions, n))
        .raw("ingress_wait", hist_array(t.ingress_wait, n))
        .raw("queue_delay", hist_array(t.queue_delay, n))
        .raw("slowdown", hist_array(t.slowdown, n));
    sh.raw("telem", tel.str());

    if (i > 0) shards_json += ',';
    shards_json += sh.str();
  }
  shards_json += ']';

  const rt::ControllerSnapshot cs = controller_->snapshot();
  JsonObject ctl;
  ctl.field("t", cs.time)
      .field("ticks", cs.ticks)
      .field("allocations", cs.allocations)
      .raw("lambda", double_array(cs.lambda, n))
      .raw("rate", double_array(cs.rate, n))
      .raw("window_slowdown", double_array(cs.window_slowdown, n));
  {
    std::string trace_json = "[";
    bool first = true;
    for (const auto& e : controller_->trace_since(&trace_cursor_)) {
      JsonObject te;
      te.field("t", e.time)
          .field("tick", e.tick)
          .field_bool("realloc", e.reallocated)
          .field_bool("fresh_window", e.fresh_window)
          .raw("lambda", double_array(e.lambda, n))
          .raw("window_slowdown", double_array(e.window_slowdown, n))
          .raw("rate_in", double_array(e.rate_in, n))
          .raw("rate_out", double_array(e.rate_out, n));
      if (!first) trace_json += ',';
      first = false;
      trace_json += te.str();
    }
    trace_json += ']';
    ctl.raw("trace", trace_json);
  }

  JsonObject line;
  line.field("schema", "psd.rt.stats.v1")
      .field("sample", samples_)
      .field("t", now)
      .field("classes", static_cast<std::uint64_t>(n))
      .field("produced", produced)
      .field("dropped", dropped)
      .field("shed", shed)
      .raw("shards", shards_json)
      .raw("controller", ctl.str());

  // Self-profiling timings are wall-clock and hence nondeterministic;
  // a ManualClock stream must stay bit-identical across repeats, so the
  // block only appears on threaded runs.
  if (cfg_.profile && !deterministic_) {
    prof_all.merge(controller_->prof().snap());
    prof_all.merge(prof_.snap());
    std::string prof_json = "{";
    bool first = true;
    for (unsigned s = 0; s < kProfSlotCount; ++s) {
      const auto slot = static_cast<ProfSlot>(s);
      JsonObject p;
      p.field("count", prof_all.count[s])
          .field("seconds", prof_all.seconds(slot));
      if (!first) prof_json += ',';
      first = false;
      prof_json += json_string(prof_slot_name(slot)) + ":" + p.str();
    }
    prof_json += '}';
    line.raw("prof", prof_json);
  }
  return line.str();
}

void StatsExporter::pump_trace(double now) {
  if (trace_writer_ == nullptr && watchdog_ == nullptr) return;
  // One drain serves both sinks: spans flow to the Chrome trace file AND
  // into the watchdog's flight-recorder retention, in shard order so the
  // output is a deterministic function of the per-shard event sequences.
  span_buf_.clear();
  for (rt::Shard* shard : shards_) shard->drain_spans(span_buf_);
  if (trace_writer_ != nullptr) {
    for (const Span& s : span_buf_) trace_writer_->write_span(s);
    // Controller reallocations as instant events, via a cursor separate
    // from the JSONL stream's (either sink may run without the other).
    for (const auto& e : controller_->trace_since(&realloc_cursor_)) {
      if (!e.reallocated) continue;
      trace_writer_->write_realloc(e.time, e.tick, e.fresh_window, e.rate_out,
                                   e.num_classes);
    }
  }
  if (watchdog_ != nullptr) {
    watchdog_->observe_spans(span_buf_);
    watchdog_->evaluate(now);
  }
}

void StatsExporter::sample(double now) {
  ScopedProfTimer prof_sample(&prof_, kProfExportSample);
  ++samples_;
  pump_trace(now);
  if (!out_.is_open()) return;
  out_ << render_line(now) << '\n';
  out_.flush();
}

void StatsExporter::final_flush(double now) {
  pump_trace(now);
  if (trace_writer_ != nullptr) trace_writer_->close();
}

std::string StatsExporter::prometheus_text() const {
  const std::size_t n = shards_[0]->config().num_classes;
  std::ostringstream os;

  std::uint64_t produced = 0;
  for (const auto* g : gens_) produced += g->produced();
  os << "# TYPE psd_rt_produced_total counter\n"
     << "psd_rt_produced_total " << produced << "\n";

  auto labels = [](std::size_t shard, std::size_t cls) {
    return "{shard=\"" + std::to_string(shard) + "\",cls=\"" +
           std::to_string(cls) + "\"}";
  };
  auto emit_hist = [&](const char* name, std::size_t shard, std::size_t cls,
                       const Log2Hist& h) {
    // The underflow mass (x <= lowest bound) belongs in every cumulative
    // bucket; the overflow mass only in +Inf.
    std::uint64_t cum = h.underflow;
    for (int b = 0; b < Log2Hist::kBuckets; ++b) {
      cum += h.bucket[b];
      os << name << "_bucket{shard=\"" << shard << "\",cls=\"" << cls
         << "\",le=\"" << prom_num(Log2Hist::bucket_upper(b)) << "\"} "
         << cum << "\n";
    }
    os << name << "_bucket{shard=\"" << shard << "\",cls=\"" << cls
       << "\",le=\"+Inf\"} " << h.count << "\n"
       << name << "_sum" << labels(shard, cls) << " " << prom_num(h.sum)
       << "\n"
       << name << "_count" << labels(shard, cls) << " " << h.count << "\n";
  };

  // Snapshot every shard once so all families render one coherent view,
  // then emit family by family: the exposition format requires all lines
  // of a metric to form a single group under its TYPE header.
  std::vector<rt::ShardSnapshot> snaps;
  std::vector<rt::ShardTelemetry> telem;
  snaps.reserve(shards_.size());
  telem.reserve(shards_.size());
  for (const auto* s : shards_) {
    snaps.push_back(s->snapshot());
    telem.push_back(s->telemetry());
  }

  os << "# TYPE psd_rt_shard_drains_total counter\n";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    os << "psd_rt_shard_drains_total{shard=\"" << i << "\"} "
       << snaps[i].drains << "\n";
  }

  auto family = [&](const char* name, const char* type,
                    const std::function<std::string(
                        const rt::ShardSnapshot&, std::size_t)>& field) {
    os << "# TYPE " << name << " " << type << "\n";
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      for (std::size_t c = 0; c < n; ++c) {
        os << name << labels(i, c) << " " << field(snaps[i], c) << "\n";
      }
    }
  };
  auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  family("psd_rt_dropped_total", "counter",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.drops_cls[c]);
         });
  family("psd_rt_shed_total", "counter",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.sheds_cls[c]);
         });
  family("psd_rt_accepted_total", "counter",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.accepted[c]);
         });
  family("psd_rt_completed_total", "counter",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.completed[c]);
         });
  family("psd_rt_outstanding", "gauge",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.outstanding[c]);
         });
  family("psd_rt_staged", "gauge",
         [&](const rt::ShardSnapshot& s, std::size_t c) {
           return u64(s.staged[c]);
         });
  family("psd_rt_lambda_hat", "gauge",
         [](const rt::ShardSnapshot& s, std::size_t c) {
           return prom_num(s.lambda_hat[c]);
         });
  family("psd_rt_rate", "gauge",
         [](const rt::ShardSnapshot& s, std::size_t c) {
           return prom_num(s.rate[c]);
         });

  auto hist_family = [&](const char* name,
                         const std::function<const Log2Hist&(
                             const rt::ShardTelemetry&, std::size_t)>& pick) {
    os << "# TYPE " << name << " histogram\n";
    for (std::size_t i = 0; i < telem.size(); ++i) {
      for (std::size_t c = 0; c < n; ++c) {
        emit_hist(name, i, c, pick(telem[i], c));
      }
    }
  };
  hist_family("psd_rt_ingress_wait_seconds",
              [](const rt::ShardTelemetry& t, std::size_t c) -> const
              Log2Hist& { return t.ingress_wait[c]; });
  hist_family("psd_rt_queue_delay_seconds",
              [](const rt::ShardTelemetry& t, std::size_t c) -> const
              Log2Hist& { return t.queue_delay[c]; });
  hist_family("psd_rt_slowdown",
              [](const rt::ShardTelemetry& t, std::size_t c) -> const
              Log2Hist& { return t.slowdown[c]; });

  const rt::ControllerSnapshot cs = controller_->snapshot();
  os << "# TYPE psd_rt_controller_ticks_total counter\n"
     << "psd_rt_controller_ticks_total " << cs.ticks << "\n"
     << "# TYPE psd_rt_controller_allocations_total counter\n"
     << "psd_rt_controller_allocations_total " << cs.allocations << "\n";
  os << "# TYPE psd_rt_controller_rate gauge\n";
  for (std::size_t c = 0; c < n; ++c) {
    os << "psd_rt_controller_rate{cls=\"" << c << "\"} "
       << prom_num(cs.rate[c]) << "\n";
  }
  os << "# TYPE psd_rt_controller_lambda gauge\n";
  for (std::size_t c = 0; c < n; ++c) {
    os << "psd_rt_controller_lambda{cls=\"" << c << "\"} "
       << prom_num(cs.lambda[c]) << "\n";
  }
  return os.str();
}

#ifdef PSD_OBS_HAVE_SOCKETS

void StatsExporter::start_http() {
  if (cfg_.metrics_port <= 0 || listen_fd_ >= 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PSD_REQUIRE(fd >= 0, "metrics endpoint: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.metrics_port));
  const bool ok =
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::listen(fd, 8) == 0;
  if (!ok) {
    const int err = errno;
    ::close(fd);
    PSD_REQUIRE(false, "metrics endpoint: cannot bind/listen on port " +
                           std::to_string(cfg_.metrics_port) + " (" +
                           std::strerror(err) + ")");
  }
  listen_fd_ = fd;
  http_stop_.store(false, std::memory_order_release);
  http_thread_ = std::thread([this] { http_loop(); });
}

void StatsExporter::http_loop() {
  while (!http_stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    char req[1024];
    const auto got = ::read(conn, req, sizeof req - 1);
    std::string head(req, got > 0 ? static_cast<std::size_t>(got) : 0);
    std::string response;
    if (head.rfind("GET ", 0) == 0 &&
        head.find("/metrics") != std::string::npos) {
      const std::string body = prometheus_text();
      response =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " + std::to_string(body.size()) + "\r\n"
          "Connection: close\r\n\r\n" + body;
    } else if (head.rfind("GET ", 0) == 0 &&
               head.find("/healthz") != std::string::npos) {
      // Liveness probe: reaching this loop at all means the exporter
      // thread is serving; keep the body trivially parseable.
      response =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; charset=utf-8\r\n"
          "Content-Length: 3\r\nConnection: close\r\n\r\nok\n";
    } else {
      response =
          "HTTP/1.1 404 Not Found\r\n"
          "Content-Length: 0\r\nConnection: close\r\n\r\n";
    }
    std::size_t off = 0;
    while (off < response.size()) {
      const auto w = ::write(conn, response.data() + off,
                             response.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    ::close(conn);
  }
}

void StatsExporter::stop_http() {
  if (listen_fd_ < 0) return;
  http_stop_.store(true, std::memory_order_release);
  if (http_thread_.joinable()) http_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

#else  // !PSD_OBS_HAVE_SOCKETS

void StatsExporter::start_http() {
  PSD_REQUIRE(cfg_.metrics_port <= 0,
              "metrics endpoint requires POSIX sockets");
}
void StatsExporter::http_loop() {}
void StatsExporter::stop_http() {}

#endif

}  // namespace psd::obs
