// Request-lifecycle span tracing (schema "psd.rt.trace.v1").
//
// A Span is the causal record of one sampled request: producer ingress,
// ring-pop admission verdict, staging release into the embedded server,
// service start, and completion — each on the shared time axis — plus the
// controller tick whose allocation governed it.  Spans are recorded by the
// shard thread into a per-shard lock-free SPSC ring (SpanRing) and drained
// by the exporter thread into a Chrome trace-event JSON file (TraceWriter)
// that loads directly in chrome://tracing or Perfetto, with controller
// reallocations as instant events on a dedicated track.
//
// Sampling reuses the telemetry idiom (obs/config.hpp): 1-in-N per class by
// the ordinal counters the hot path already increments, N a power of two,
// so tracing-off costs one AND+branch per hook and the traced subset is a
// deterministic function of the event sequence — a ManualClock run writes
// byte-identical trace files across repeats.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace psd::obs {

/// Verdict byte carried by every span.  Shed codes mirror how the admission
/// policy sheds (admission/admission.hpp AdmitVerdict — value-aligned,
/// static_asserted at the shard hook): a latched class mask, within-class
/// thinning, or an empty token bucket.
enum SpanVerdict : std::uint8_t {
  kSpanAdmitted = 0,
  kSpanShedMask = 1,
  kSpanShedThinned = 2,
  kSpanShedBucket = 3,
};

const char* span_verdict_name(std::uint8_t v);

/// One sampled request lifecycle.  Trivially copyable: it crosses threads
/// by value through the SPSC ring.  Sheds carry only the ingress/verdict
/// timestamps; the service-side fields stay at their -1/NaN defaults.
struct Span {
  std::uint64_t trace_id = 0;  ///< shard/class/ordinal-derived, run-unique.
  std::uint64_t tick_seq = 0;  ///< Controller tick whose rates governed it.
  double t_ingress = 0.0;      ///< Producer arrival stamp.
  double t_admit = 0.0;        ///< Ring pop + admission verdict.
  double t_pop = -1.0;         ///< Staging release into the server.
  double t_start = -1.0;       ///< First service.
  double t_complete = -1.0;    ///< Completion.
  double size = 0.0;           ///< Work units.
  double slowdown = kNaN;      ///< delay / service time; NaN for sheds.
  std::uint32_t cls = 0;
  std::uint32_t shard = 0;
  std::uint8_t verdict = kSpanAdmitted;
};

/// Single-producer single-consumer span ring: the shard thread pushes, the
/// exporter thread drains.  Bounded; a full ring drops the newest span and
/// counts it (tracing must never block or grow the hot path).
class SpanRing {
 public:
  /// Capacity is rounded up to a power of two.
  explicit SpanRing(std::size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Producer only.  False (and a drop count) when full.
  bool push(const Span& s);

  /// Consumer only: append everything available to `out`; returns count.
  std::size_t drain(std::vector<Span>& out);

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Span> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< Consumer cursor.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< Producer cursor.
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

/// Streaming Chrome trace-event writer.  Emits the JSON object form
/// ({"traceEvents":[...]}) so the file carries its schema tag and loads in
/// chrome://tracing and Perfetto.  Track layout: pid 0 = the controller
/// (reallocations as instant events), pid s+1 = shard s, tid c+1 = class c;
/// process/thread metadata names are emitted lazily on first use, which
/// keeps the output deterministic for a deterministic event sequence.
/// Timestamps are microseconds (seconds * 1e6), rendered with the same
/// "%.17g" rule as every other deterministic artifact.
class TraceWriter {
 public:
  /// Opens `path` (truncating) and writes the header; throws with the path
  /// in the message when the file cannot be created — tracing must fail at
  /// startup, not produce a silent empty artifact.
  explicit TraceWriter(const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  ~TraceWriter();

  /// One request span ("X" complete event; sheds render as name "shed").
  void write_span(const Span& s);

  /// One controller reallocation ("i" instant event on the pid-0 track).
  void write_realloc(double t, std::uint64_t tick, bool fresh_window,
                     const double* rate, std::size_t num_classes);

  /// Write the footer and close; idempotent (the destructor calls it too).
  void close();

  std::uint64_t events() const { return events_; }

 private:
  void emit(const std::string& rendered);
  void ensure_track(std::uint32_t pid, std::uint32_t tid);

  std::ofstream out_;
  std::string path_;
  bool closed_ = false;
  bool first_ = true;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> tracks_;  ///< (pid<<32)|tid already named.
};

}  // namespace psd::obs
