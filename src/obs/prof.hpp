// Scoped self-profiling timers for the serving runtime's own hot paths.
//
// Each instrumented component (shard, controller, exporter) owns a ProfTable
// with one cache-line-aligned cell per ProfSlot; a ScopedProfTimer brackets
// a region (the drain loop, the allocator tick, a ring push) and adds the
// elapsed ticks into the slot with two relaxed atomic adds.  Disabled tables
// cost a single predictable branch per region — cheap enough to leave the
// instrumentation compiled into the production paths.
//
// Ticks come from rdtsc on x86-64 (a serializing clock read costs ~20+ ns of
// steady_clock machinery per sample, which per-request sites cannot afford)
// and from steady_clock elsewhere; ticks_per_second() calibrates the rate
// once, lazily, so the exporter can render seconds.  Self-profiling numbers
// are inherently wall-clock-nondeterministic, so the exporter omits them
// under a ManualClock (see obs/exporter.hpp) — the deterministic stats
// stream stays bit-identical across repeats.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace psd::obs {

/// Instrumented regions.  One enum for the whole runtime so the exporter
/// can aggregate tables from every component into a single profile block.
enum ProfSlot : unsigned {
  kProfRingPush = 0,   ///< Shard::submit (producer threads).
  kProfRingPop,        ///< Ingress backlog ingestion within a drain.
  kProfDrain,          ///< Whole Shard::drain call.
  kProfBucketRelease,  ///< Token-bucket staged-work release within a drain.
  kProfPublish,        ///< Seqlock snapshot publication.
  kProfControllerTick, ///< Whole Controller::tick.
  kProfAllocate,       ///< The eq.-17 allocator call inside a tick.
  kProfExportSample,   ///< One exporter scrape+render+write cycle.
  kProfSlotCount,
};

const char* prof_slot_name(ProfSlot slot);

inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Ticks per second of now_ticks(), calibrated once against steady_clock
/// (x86) or exactly 1e9 (nanosecond clocks).  Thread-safe via static init.
double ticks_per_second();

/// Aggregated view of one table — plain POD so it can ride in seqlock
/// snapshots and be summed across components by the exporter.
struct ProfSnap {
  std::uint64_t count[kProfSlotCount] = {};
  std::uint64_t ticks[kProfSlotCount] = {};

  void merge(const ProfSnap& other) {
    for (unsigned i = 0; i < kProfSlotCount; ++i) {
      count[i] += other.count[i];
      ticks[i] += other.ticks[i];
    }
  }
  double seconds(ProfSlot slot) const {
    return static_cast<double>(ticks[slot]) / ticks_per_second();
  }
};

/// Per-component accumulation table.  Writers may be concurrent (ring push
/// comes from every producer thread), so cells are relaxed atomics, each on
/// its own cache line.
class ProfTable {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void add(ProfSlot slot, std::uint64_t ticks) {
    cells_[slot].count.fetch_add(1, std::memory_order_relaxed);
    cells_[slot].ticks.fetch_add(ticks, std::memory_order_relaxed);
  }

  ProfSnap snap() const {
    ProfSnap s;
    for (unsigned i = 0; i < kProfSlotCount; ++i) {
      s.count[i] = cells_[i].count.load(std::memory_order_relaxed);
      s.ticks[i] = cells_[i].ticks.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> ticks{0};
  };
  Cell cells_[kProfSlotCount];
  bool enabled_ = false;
};

/// RAII region bracket; no-op (one branch) when `table` is null or
/// disabled.
class ScopedProfTimer {
 public:
  ScopedProfTimer(ProfTable* table, ProfSlot slot)
      : table_(table != nullptr && table->enabled() ? table : nullptr),
        slot_(slot),
        start_(table_ != nullptr ? now_ticks() : 0) {}

  ScopedProfTimer(const ScopedProfTimer&) = delete;
  ScopedProfTimer& operator=(const ScopedProfTimer&) = delete;

  ~ScopedProfTimer() {
    if (table_ != nullptr) table_->add(slot_, now_ticks() - start_);
  }

 private:
  ProfTable* table_;
  ProfSlot slot_;
  std::uint64_t start_;
};

}  // namespace psd::obs
