// SLO watchdog + flight recorder.
//
// Declarative service-level rules ("ratio_err>0.3,goodput<9000") evaluated
// once per stats window against the shards' existing seqlock snapshots —
// the watchdog adds no hot-path state of its own.  On a breach it dumps a
// flight-recorder bundle (schema "psd.rt.flight.v1"): the breach context,
// the per-window SLO metrics, every shard snapshot, the controller decision
// trace backlog, and the last-K traced spans — a self-contained postmortem
// artifact, written to a timestamped file.
//
// Rule grammar (src/obs/README.md): comma- or semicolon-separated
// `metric(op)value` terms, metrics:
//   ratio_err  worst |achieved/target - 1| of the cross-shard last-window
//              slowdown ratios (classes vs class 0)
//   goodput    post-warmup completions/sec over the last stats window
//   shed_rate  admission sheds / offered over the last stats window
//   settle     seconds the windowed ratio error has continuously sat
//              outside the settle band (0 while in band)
// op is `>` or `<`; a rule breaches when its metric is finite and compares
// true.  Rules stay disarmed until `arm_time` (the run's warmup) has passed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "rt/controller.hpp"
#include "rt/shard.hpp"

namespace psd::obs {

enum class SloMetric { kRatioErr, kGoodput, kShedRate, kSettle };

struct SloRule {
  SloMetric metric = SloMetric::kRatioErr;
  bool greater = true;  ///< Breach when value > threshold (else <).
  double threshold = 0.0;
  std::string text;  ///< Original spelling, for messages and bundles.
};

/// Parse the rule grammar above; throws (std::invalid_argument) with the
/// offending term on any violation — a misspelled SLO must fail at startup.
std::vector<SloRule> parse_slo_rules(const std::string& spec);

struct WatchdogConfig {
  std::string rules;          ///< Rule string (parse_slo_rules grammar).
  std::vector<double> delta;  ///< Per-class targets (ratio_err, vs delta_0).
  /// Band half-width for the settle clock (the run's converge_tol).
  double settle_band = 0.25;
  /// Rules stay disarmed before this time (the run's warmup: cold windows
  /// would trip goodput floors before any completion can exist).
  double arm_time = 0.0;
  /// Minimum seconds between flight-recorder dumps.
  double cooldown = 1.0;
  /// Flight bundle path prefix; the breach time is appended, so under a
  /// ManualClock the dump filename is deterministic too.
  std::string flight_prefix = "psd-flight";
  /// Last-K traced spans retained for the bundle.
  std::size_t flight_span_capacity = 1024;
};

/// Per-window SLO metrics, kept for introspection and the bundle.
struct SloWindowStats {
  double t = 0.0;
  double ratio_err = kNaN;
  double goodput = kNaN;
  double shed_rate = kNaN;
  double settle = 0.0;
};

class Watchdog {
 public:
  /// Borrowed pointers must outlive the watchdog.  Throws on a rule-grammar
  /// violation or an empty rule string.
  Watchdog(WatchdogConfig cfg, std::vector<rt::Shard*> shards,
           const rt::Controller* controller);

  /// Feed freshly drained spans into the flight-recorder retention ring
  /// (exporter thread, before evaluate()).
  void observe_spans(const std::vector<Span>& spans);

  /// Evaluate every rule against fresh snapshots; called once per stats
  /// window from the exporter.  On any breach past the cooldown, writes a
  /// flight bundle.  Returns the number of rules breached this window.
  std::size_t evaluate(double now);

  /// Permanently stop evaluating (load generation ended; the runtime calls
  /// this at drain start).  SLO rules govern the LIVE serving interval:
  /// during the shutdown drain arrivals stop, windows close over draining
  /// backlog, and metrics like the settle clock would climb on data that no
  /// longer describes service — a false alarm at every clean shutdown.
  void disarm() { disarmed_.store(true, std::memory_order_release); }

  std::uint64_t total_breaches() const { return total_breaches_; }
  std::uint64_t dumps() const { return dumps_; }
  const std::string& last_flight_path() const { return last_flight_path_; }
  const SloWindowStats& stats() const { return stats_; }
  const std::vector<SloRule>& rules() const { return rules_; }

 private:
  SloWindowStats scrape(double now);
  double metric_value(SloMetric m) const;
  void dump_flight(double now, const std::vector<const SloRule*>& breached);

  WatchdogConfig cfg_;
  std::vector<rt::Shard*> shards_;
  const rt::Controller* controller_;
  std::vector<SloRule> rules_;

  SloWindowStats stats_;
  // Previous-window totals for the rate metrics.
  double prev_t_ = -1.0;
  std::uint64_t prev_completed_ = 0;
  std::uint64_t prev_accepted_ = 0;
  std::uint64_t prev_shed_ = 0;
  double out_of_band_since_ = kNaN;  ///< Settle clock anchor.

  std::deque<Span> recent_spans_;  ///< Bounded at flight_span_capacity.
  /// Atomic: run() flips it from the main thread while the exporter thread
  /// is still sampling.
  std::atomic<bool> disarmed_{false};
  std::uint64_t total_breaches_ = 0;
  std::uint64_t dumps_ = 0;
  double last_dump_t_ = -kInf;
  std::string last_flight_path_;
};

}  // namespace psd::obs
