#include "obs/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "sweep/jsonl.hpp"

namespace psd::obs {

namespace {

const char* metric_name(SloMetric m) {
  switch (m) {
    case SloMetric::kRatioErr:
      return "ratio_err";
    case SloMetric::kGoodput:
      return "goodput";
    case SloMetric::kShedRate:
      return "shed_rate";
    case SloMetric::kSettle:
      return "settle";
  }
  PSD_UNREACHABLE("unknown SLO metric");
}

std::string uint_array(const std::uint64_t* v, std::size_t n) {
  std::string out = "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
  return out;
}

std::string double_array(const double* v, std::size_t n) {
  return json_array(std::vector<double>(v, v + n));
}

std::string span_json(const Span& s) {
  JsonObject o;
  o.field("trace_id", s.trace_id)
      .field("cls", static_cast<std::uint64_t>(s.cls))
      .field("shard", static_cast<std::uint64_t>(s.shard))
      .field("verdict", span_verdict_name(s.verdict))
      .field("tick", s.tick_seq)
      .field("t_ingress", s.t_ingress)
      .field("t_admit", s.t_admit)
      .field("t_pop", s.t_pop)
      .field("t_start", s.t_start)
      .field("t_complete", s.t_complete)
      .field("size", s.size)
      .field("slowdown", s.slowdown);
  return o.str();
}

}  // namespace

std::vector<SloRule> parse_slo_rules(const std::string& spec) {
  std::vector<SloRule> rules;
  std::string term;
  auto flush_term = [&] {
    if (term.empty()) return;
    const std::size_t gt = term.find('>');
    const std::size_t lt = term.find('<');
    PSD_REQUIRE((gt == std::string::npos) != (lt == std::string::npos),
                "SLO rule '" + term + "' needs exactly one of '>' or '<'");
    const std::size_t op = gt != std::string::npos ? gt : lt;
    SloRule r;
    r.greater = gt != std::string::npos;
    r.text = term;
    const std::string name = term.substr(0, op);
    if (name == "ratio_err") r.metric = SloMetric::kRatioErr;
    else if (name == "goodput") r.metric = SloMetric::kGoodput;
    else if (name == "shed_rate") r.metric = SloMetric::kShedRate;
    else if (name == "settle") r.metric = SloMetric::kSettle;
    else {
      PSD_REQUIRE(false, "unknown SLO metric '" + name +
                             "' (ratio_err|goodput|shed_rate|settle)");
    }
    const std::string value = term.substr(op + 1);
    char* end = nullptr;
    r.threshold = std::strtod(value.c_str(), &end);
    PSD_REQUIRE(end != nullptr && *end == '\0' && !value.empty(),
                "SLO rule '" + term + "' needs a numeric threshold");
    rules.push_back(std::move(r));
    term.clear();
  };
  for (char ch : spec) {
    if (ch == ',' || ch == ';') flush_term();
    else if (ch != ' ') term += ch;
  }
  flush_term();
  PSD_REQUIRE(!rules.empty(), "empty SLO rule string");
  return rules;
}

Watchdog::Watchdog(WatchdogConfig cfg, std::vector<rt::Shard*> shards,
                   const rt::Controller* controller)
    : cfg_(std::move(cfg)),
      shards_(std::move(shards)),
      controller_(controller),
      rules_(parse_slo_rules(cfg_.rules)) {
  PSD_REQUIRE(!shards_.empty() && controller_ != nullptr,
              "watchdog needs shards and a controller");
  PSD_REQUIRE(!cfg_.delta.empty(), "watchdog needs the class deltas");
  PSD_REQUIRE(cfg_.settle_band > 0.0, "settle band must be positive");
  PSD_REQUIRE(cfg_.cooldown >= 0.0, "cooldown must be non-negative");
}

void Watchdog::observe_spans(const std::vector<Span>& spans) {
  for (const Span& s : spans) {
    recent_spans_.push_back(s);
    if (recent_spans_.size() > cfg_.flight_span_capacity) {
      recent_spans_.pop_front();
    }
  }
}

SloWindowStats Watchdog::scrape(double now) {
  const std::size_t n = cfg_.delta.size();
  SloWindowStats w;
  w.t = now;

  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::vector<double> sd_sum(n, 0.0);
  std::vector<std::uint32_t> sd_cnt(n, 0);
  for (const rt::Shard* shard : shards_) {
    const rt::ShardSnapshot s = shard->snapshot();
    for (std::size_t c = 0; c < n; ++c) {
      completed += s.completed[c];
      accepted += s.accepted[c];
      shed += s.sheds_cls[c];
      // Last CLOSED metrics window per shard — sticky between rolls, unlike
      // the controller snapshot's per-tick means, so a slow stats cadence
      // still sees every shard's latest window.
      if (std::isfinite(s.window_slowdown[c])) {
        sd_sum[c] += s.window_slowdown[c];
        ++sd_cnt[c];
      }
    }
  }

  // Windowed ratio error: cross-shard mean last-window slowdowns, each
  // class's ratio vs class 0 against its delta target.
  if (sd_cnt[0] > 0 && n >= 2) {
    const double s0 = sd_sum[0] / sd_cnt[0];
    if (s0 > 0.0) {
      double worst = kNaN;
      for (std::size_t c = 1; c < n; ++c) {
        if (sd_cnt[c] == 0) continue;
        const double ratio = (sd_sum[c] / sd_cnt[c]) / s0;
        const double target = cfg_.delta[c] / cfg_.delta[0];
        const double err = std::abs(ratio / target - 1.0);
        worst = std::isfinite(worst) ? std::max(worst, err) : err;
      }
      w.ratio_err = worst;
    }
  }

  // Rate metrics need a previous window; the first scrape only baselines.
  if (prev_t_ >= 0.0 && now > prev_t_) {
    const double dt = now - prev_t_;
    // Goodput counts POST-WARMUP completions, so a window straddling the
    // warmup boundary undercounts by construction and would trip any floor
    // the moment the rules arm.  Only windows fully inside the armed region
    // yield a number; shed/accepted counters are not warmup-gated, so
    // shed_rate has no such artifact.
    if (prev_t_ >= cfg_.arm_time) {
      w.goodput = static_cast<double>(completed - prev_completed_) / dt;
    }
    const std::uint64_t d_offered =
        (accepted - prev_accepted_) + (shed - prev_shed_);
    if (d_offered > 0) {
      w.shed_rate = static_cast<double>(shed - prev_shed_) /
                    static_cast<double>(d_offered);
    }
  }
  prev_t_ = now;
  prev_completed_ = completed;
  prev_accepted_ = accepted;
  prev_shed_ = shed;

  // Settle clock: seconds the windowed ratio error has continuously sat
  // outside the band.  A non-finite error (no closed windows yet) keeps the
  // clock untouched rather than resetting it — silence is not convergence.
  if (std::isfinite(w.ratio_err)) {
    if (w.ratio_err > cfg_.settle_band) {
      if (!std::isfinite(out_of_band_since_)) out_of_band_since_ = now;
    } else {
      out_of_band_since_ = kNaN;
    }
  }
  w.settle =
      std::isfinite(out_of_band_since_) ? now - out_of_band_since_ : 0.0;
  return w;
}

double Watchdog::metric_value(SloMetric m) const {
  switch (m) {
    case SloMetric::kRatioErr:
      return stats_.ratio_err;
    case SloMetric::kGoodput:
      return stats_.goodput;
    case SloMetric::kShedRate:
      return stats_.shed_rate;
    case SloMetric::kSettle:
      return stats_.settle;
  }
  PSD_UNREACHABLE("unknown SLO metric");
}

std::size_t Watchdog::evaluate(double now) {
  if (disarmed_.load(std::memory_order_acquire)) return 0;
  stats_ = scrape(now);
  if (now < cfg_.arm_time) return 0;
  std::vector<const SloRule*> breached;
  for (const SloRule& r : rules_) {
    const double v = metric_value(r.metric);
    if (!std::isfinite(v)) continue;
    if (r.greater ? v > r.threshold : v < r.threshold) {
      breached.push_back(&r);
    }
  }
  total_breaches_ += breached.size();
  if (!breached.empty() && now - last_dump_t_ >= cfg_.cooldown) {
    last_dump_t_ = now;
    dump_flight(now, breached);
  }
  return breached.size();
}

void Watchdog::dump_flight(double now,
                           const std::vector<const SloRule*>& breached) {
  const std::size_t n = cfg_.delta.size();

  std::string breach_json = "[";
  for (std::size_t i = 0; i < breached.size(); ++i) {
    const SloRule& r = *breached[i];
    JsonObject b;
    b.field("rule", r.text)
        .field("metric", metric_name(r.metric))
        .field("value", metric_value(r.metric))
        .field("threshold", r.threshold);
    if (i > 0) breach_json += ',';
    breach_json += b.str();
  }
  breach_json += ']';

  JsonObject window;
  window.field("t", stats_.t)
      .field("ratio_err", stats_.ratio_err)
      .field("goodput", stats_.goodput)
      .field("shed_rate", stats_.shed_rate)
      .field("settle", stats_.settle);

  std::string shards_json = "[";
  std::uint64_t spans_dropped = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const rt::ShardSnapshot s = shards_[i]->snapshot();
    spans_dropped += shards_[i]->spans_dropped();
    JsonObject sh;
    sh.field("shard", static_cast<std::uint64_t>(i))
        .field("t", s.time)
        .field("drains", s.drains)
        .raw("accepted", uint_array(s.accepted, n))
        .raw("completed", uint_array(s.completed, n))
        .raw("sheds", uint_array(s.sheds_cls, n))
        .raw("drops", uint_array(s.drops_cls, n))
        .raw("staged", uint_array(s.staged, n))
        .raw("outstanding", uint_array(s.outstanding, n))
        .raw("lambda_hat", double_array(s.lambda_hat, n))
        .raw("rate", double_array(s.rate, n))
        .raw("window_slowdown", double_array(s.window_slowdown, n));
    if (i > 0) shards_json += ',';
    shards_json += sh.str();
  }
  shards_json += ']';

  const rt::ControllerSnapshot cs = controller_->snapshot();
  JsonObject ctl;
  ctl.field("ticks", cs.ticks)
      .field("allocations", cs.allocations)
      .raw("lambda", double_array(cs.lambda, n))
      .raw("rate", double_array(cs.rate, n));

  // The full retained decision-trace backlog: a fresh zero cursor returns
  // everything still in the controller's bounded ring.
  std::string trace_json = "[";
  {
    std::uint64_t cursor = 0;
    bool first = true;
    for (const auto& e : controller_->trace_since(&cursor)) {
      JsonObject te;
      te.field("t", e.time)
          .field("tick", e.tick)
          .field_bool("realloc", e.reallocated)
          .field_bool("fresh_window", e.fresh_window)
          .raw("lambda", double_array(e.lambda, n))
          .raw("window_slowdown", double_array(e.window_slowdown, n))
          .raw("rate_in", double_array(e.rate_in, n))
          .raw("rate_out", double_array(e.rate_out, n));
      if (!first) trace_json += ',';
      first = false;
      trace_json += te.str();
    }
    trace_json += ']';
  }

  std::string spans_json = "[";
  {
    bool first = true;
    for (const Span& s : recent_spans_) {
      if (!first) spans_json += ',';
      first = false;
      spans_json += span_json(s);
    }
    spans_json += ']';
  }

  JsonObject bundle;
  bundle.field("schema", "psd.rt.flight.v1")
      .field("t", now)
      .raw("breach", breach_json)
      .raw("window", window.str())
      .raw("delta", json_array(cfg_.delta))
      .raw("shards", shards_json)
      .raw("controller", ctl.str())
      .raw("controller_trace", trace_json)
      .raw("spans", spans_json)
      .field("spans_dropped", spans_dropped);

  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "%.3f", now);
  const std::string path = cfg_.flight_prefix + "-t" + stamp + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return;  // postmortem dump must never kill the run
  out << bundle.str() << "\n";
  out.flush();
  ++dumps_;
  last_flight_path_ = path;
}

}  // namespace psd::obs
