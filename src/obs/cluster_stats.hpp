// Cluster-level stats stream: one JSONL line per global-controller tick.
//
// The per-node exporters (obs/exporter.hpp, psd.rt.stats.v1) describe one
// runtime from the inside; this stream describes the CLUSTER from the
// dispatcher's seat — which nodes are alive, how arrivals were spread, what
// per-class rates the global controller pushed where — so a rebalance or a
// node kill can be replayed offline from a single file.  Schema
// psd.cluster.stats.v1: a header line, then sample lines, then `kill` event
// lines interleaved at the times they happened.
//
// Same rendering discipline as the campaign artifacts (sweep/jsonl.hpp):
// %.17g doubles, NaN -> null, so a ManualClock run emits identical bytes on
// every execution.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace psd::obs {

/// One node's contribution to a sample line (aggregated over its shards).
struct ClusterNodeStats {
  bool alive = true;
  std::uint64_t dispatched = 0;   ///< Requests routed here so far.
  std::uint64_t outstanding = 0;  ///< Accepted, not yet completed.
  std::vector<double> lambda;     ///< Per-class admitted arrivals/sec.
};

class ClusterStatsLog {
 public:
  /// Opens `path` (truncating) and writes the header line.  Throws on I/O
  /// failure — a stats file the user asked for must not silently vanish.
  ClusterStatsLog(const std::string& path, std::size_t nodes,
                  std::size_t num_classes, const std::string& assignment);

  /// Append one sample line (call on the global-controller cadence).
  void sample(double now, const std::vector<ClusterNodeStats>& nodes,
              const std::vector<double>& global_rates,
              std::uint64_t rebalances);

  /// Append a node-kill event line.
  void kill(double now, std::size_t node);

 private:
  std::ofstream out_;
};

}  // namespace psd::obs
