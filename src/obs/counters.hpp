// Lock-free telemetry primitives: cache-line-aligned counters and a POD
// log2-bucket histogram.
//
// These are the building blocks of the live observability layer (src/obs):
// a Counter is a single relaxed atomic on its own cache line — safe for any
// number of concurrent writers (the shard ingress drop path, the campaign
// engine's replication ticker) with no false sharing between adjacent
// counters — and Log2Hist is a trivially-copyable histogram whose buckets
// are powers of two, cheap enough to update per completion on the shard
// thread and small enough to publish wholesale through the existing seqlock
// snapshot path (rt/seqlock.hpp).
//
// Log2Hist deliberately trades bin resolution for constant layout: every
// instance has the same bucket grid, so merging across shards (or across
// samples) is plain element-wise addition with no layout negotiation, and
// the exporter can render Prometheus cumulative buckets straight from the
// array.  For fine-grained post-run percentiles the report path uses
// stats/histogram.hpp (20 bins/decade, see LogHistogram::merge).
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

namespace psd::obs {

/// Monotone event counter on its own cache line.  Any thread may add();
/// reads are relaxed (telemetry tolerates momentary staleness, never tears).
struct alignas(64) Counter {
  std::atomic<std::uint64_t> value{0};

  void add(std::uint64_t n = 1) {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const { return value.load(std::memory_order_relaxed); }
};

/// Histogram over powers of two: bucket i counts samples in
/// [2^(kMinExp+i), 2^(kMinExp+i+1)).  Covers 2^-27 (~7.5 ns as seconds;
/// slowdowns well below measurable) up to 2^27 (~1.3e8) — everything the
/// runtime observes (ingress waits, queueing delays, slowdowns) lands
/// inside, and anything that does not is counted in underflow/overflow so
/// `count` always equals the number of add() calls.
///
/// Single writer, trivially copyable; publish via Seqlock, fold via merge().
struct Log2Hist {
  static constexpr int kMinExp = -27;
  static constexpr int kBuckets = 54;

  std::uint64_t count = 0;
  std::uint64_t underflow = 0;  ///< x <= 0, NaN, or below 2^kMinExp.
  std::uint64_t overflow = 0;   ///< x >= 2^(kMinExp+kBuckets).
  double sum = 0.0;
  std::uint64_t bucket[kBuckets] = {};

  void add(double x) {
    ++count;
    if (!(x > 0.0)) {  // also catches NaN
      ++underflow;
      return;
    }
    sum += x;
    // Bucket index straight from the IEEE-754 exponent field (x > 0 here,
    // so the sign bit is clear): for a normal double the biased exponent
    // minus 1023 is exactly the frexp exponent minus one.  Subnormals read
    // as biased 0 and land far below kMinExp (underflow); +inf reads as
    // 2047 and lands past kBuckets (overflow).  No libm call on this path.
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    const int idx =
        static_cast<int>((bits >> 52) & 0x7FFu) - 1023 - kMinExp;
    if (idx < 0) {
      ++underflow;
    } else if (idx >= kBuckets) {
      ++overflow;
    } else {
      ++bucket[idx];
    }
  }

  /// Element-wise fold: same fixed grid by construction.
  void merge(const Log2Hist& other) {
    count += other.count;
    underflow += other.underflow;
    overflow += other.overflow;
    sum += other.sum;
    for (int i = 0; i < kBuckets; ++i) bucket[i] += other.bucket[i];
  }

  static double bucket_lower(int i) {
    return std::ldexp(1.0, kMinExp + i);
  }
  static double bucket_upper(int i) {
    return std::ldexp(1.0, kMinExp + i + 1);
  }

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count)
                     : std::nan("");
  }

  /// Log-linear interpolated quantile; the underflow mass reads as 0 and
  /// the overflow mass as the top bucket bound.  NaN when empty.
  double quantile(double q) const {
    if (count == 0) return std::nan("");
    const double target = q * static_cast<double>(count);
    double cum = static_cast<double>(underflow);
    if (target <= cum && underflow > 0) return 0.0;
    for (int i = 0; i < kBuckets; ++i) {
      const double next = cum + static_cast<double>(bucket[i]);
      if (target <= next && bucket[i] > 0) {
        const double frac =
            (target - cum) / static_cast<double>(bucket[i]);
        return bucket_lower(i) * std::exp2(frac);
      }
      cum = next;
    }
    return bucket_upper(kBuckets - 1);
  }
};

}  // namespace psd::obs
