#include "obs/prof.hpp"

#include <thread>

namespace psd::obs {

const char* prof_slot_name(ProfSlot slot) {
  switch (slot) {
    case kProfRingPush: return "ring_push";
    case kProfRingPop: return "ring_pop";
    case kProfDrain: return "drain";
    case kProfBucketRelease: return "bucket_release";
    case kProfPublish: return "publish";
    case kProfControllerTick: return "controller_tick";
    case kProfAllocate: return "allocate";
    case kProfExportSample: return "export_sample";
    case kProfSlotCount: break;
  }
  return "unknown";
}

#if defined(__x86_64__) || defined(_M_X64)
namespace {

// One short sleep bounded by two (rdtsc, steady_clock) pairs.  10ms keeps
// the relative error of the sleep jitter under ~1% — profiling numbers are
// for ranking hot paths, not cycle accounting.
double calibrate_tsc() {
  const auto w0 = std::chrono::steady_clock::now();
  const std::uint64_t t0 = now_ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto w1 = std::chrono::steady_clock::now();
  const std::uint64_t t1 = now_ticks();
  const double secs = std::chrono::duration<double>(w1 - w0).count();
  if (secs <= 0.0 || t1 <= t0) return 1e9;  // defensive: pretend ns clock
  return static_cast<double>(t1 - t0) / secs;
}

}  // namespace
#endif

double ticks_per_second() {
#if defined(__x86_64__) || defined(_M_X64)
  static const double rate = calibrate_tsc();
  return rate;
#else
  return 1e9;
#endif
}

}  // namespace psd::obs
