#include "obs/cluster_stats.hpp"

#include "common/error.hpp"
#include "sweep/jsonl.hpp"

namespace psd::obs {

ClusterStatsLog::ClusterStatsLog(const std::string& path, std::size_t nodes,
                                 std::size_t num_classes,
                                 const std::string& assignment) {
  out_.open(path, std::ios::trunc);
  PSD_REQUIRE(static_cast<bool>(out_),
              "cannot open cluster stats file for writing: " + path);
  out_ << JsonObject()
              .field("type", "header")
              .field("schema", "psd.cluster.stats.v1")
              .field("nodes", nodes)
              .field("classes", num_classes)
              .field("assignment", assignment)
              .str()
       << '\n';
}

void ClusterStatsLog::sample(double now,
                             const std::vector<ClusterNodeStats>& nodes,
                             const std::vector<double>& global_rates,
                             std::uint64_t rebalances) {
  std::string arr = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) arr += ',';
    JsonObject o;
    o.field("node", i)
        .field_bool("alive", nodes[i].alive)
        .field("dispatched", nodes[i].dispatched)
        .field("outstanding", nodes[i].outstanding)
        .raw("lambda", json_array(nodes[i].lambda));
    arr += o.str();
  }
  arr += ']';
  out_ << JsonObject()
              .field("type", "sample")
              .field("time", now)
              .field("rebalances", rebalances)
              .raw("rate", json_array(global_rates))
              .raw("node", arr)
              .str()
       << '\n';
  out_.flush();
}

void ClusterStatsLog::kill(double now, std::size_t node) {
  out_ << JsonObject()
              .field("type", "kill")
              .field("time", now)
              .field("node", node)
              .str()
       << '\n';
  out_.flush();
}

}  // namespace psd::obs
