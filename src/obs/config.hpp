// Observability configuration shared by the rt runtime and its tools.
//
// Telemetry is compiled in everywhere but OFF by default: with
// `enabled == false` the shard hot paths skip every histogram update behind
// one predictable branch, no exporter exists, and reports are byte-identical
// to a build that never heard of src/obs.  Flipping `enabled` turns on the
// per-shard histogram/telemetry snapshots and the controller decision trace;
// `stats_path` / `metrics_port` additionally start the streaming JSONL
// exporter and the Prometheus endpoint; `profile` arms the self-profiling
// timers (obs/prof.hpp).
#pragma once

#include <cstddef>
#include <string>

namespace psd::obs {

struct ObsConfig {
  /// Master switch for telemetry collection (histograms, telemetry
  /// snapshots, controller decision trace).
  bool enabled = false;

  /// Exporter sampling period in (wall or manual) seconds.
  double stats_interval = 0.5;

  /// JSONL time-series destination; empty = no stream.  Implies `enabled`
  /// via active() consumers (the tools set `enabled` when they set this).
  std::string stats_path;

  /// TCP port for the blocking GET /metrics endpoint; 0 = no HTTP server.
  /// Only meaningful for threaded runs (a ManualClock run has no threads to
  /// serve from).
  int metrics_port = 0;

  /// Record every Nth event per class into the live/report histograms;
  /// counters stay exact.  1 = record everything (exact percentiles,
  /// measurable per-request cost); the default keeps telemetry within a
  /// few percent of the telemetry-off throughput.
  unsigned sample_period = 32;

  /// Arm the scoped rdtsc/steady-clock self-profiling timers.
  bool profile = false;

  /// Bounded length of the controller decision-trace ring.
  std::size_t trace_capacity = 512;

  /// Chrome trace-event span destination (schema psd.rt.trace.v1); empty =
  /// no request tracing.  Like stats_path, the tools set `enabled` with it.
  std::string trace_path;

  /// Trace every Nth request per class (power of two, same mask idiom as
  /// sample_period).  1 = every request.
  unsigned trace_sample_period = 64;

  /// Per-shard SPSC span-ring capacity (rounded up to a power of two).
  std::size_t span_ring_capacity = 1 << 12;

  /// SLO watchdog rule string (obs/watchdog.hpp grammar); empty = no
  /// watchdog.  Rules are evaluated once per stats window.
  std::string slo_rules;

  /// Flight-recorder bundle path prefix ("<prefix>-t<time>.json").
  std::string flight_prefix = "psd-flight";

  /// Minimum seconds between flight-recorder dumps.
  double slo_cooldown = 1.0;

  bool active() const { return enabled; }
  /// True when request-lifecycle spans must be recorded at all: either a
  /// trace sink or a watchdog (whose flight bundles carry the last-K spans)
  /// needs them.
  bool tracing() const { return !trace_path.empty() || !slo_rules.empty(); }
  /// True when the runtime should construct a StatsExporter at all.
  bool wants_exporter() const {
    return enabled && (!stats_path.empty() || metrics_port > 0 || tracing());
  }
};

}  // namespace psd::obs
