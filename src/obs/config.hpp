// Observability configuration shared by the rt runtime and its tools.
//
// Telemetry is compiled in everywhere but OFF by default: with
// `enabled == false` the shard hot paths skip every histogram update behind
// one predictable branch, no exporter exists, and reports are byte-identical
// to a build that never heard of src/obs.  Flipping `enabled` turns on the
// per-shard histogram/telemetry snapshots and the controller decision trace;
// `stats_path` / `metrics_port` additionally start the streaming JSONL
// exporter and the Prometheus endpoint; `profile` arms the self-profiling
// timers (obs/prof.hpp).
#pragma once

#include <cstddef>
#include <string>

namespace psd::obs {

struct ObsConfig {
  /// Master switch for telemetry collection (histograms, telemetry
  /// snapshots, controller decision trace).
  bool enabled = false;

  /// Exporter sampling period in (wall or manual) seconds.
  double stats_interval = 0.5;

  /// JSONL time-series destination; empty = no stream.  Implies `enabled`
  /// via active() consumers (the tools set `enabled` when they set this).
  std::string stats_path;

  /// TCP port for the blocking GET /metrics endpoint; 0 = no HTTP server.
  /// Only meaningful for threaded runs (a ManualClock run has no threads to
  /// serve from).
  int metrics_port = 0;

  /// Record every Nth event per class into the live/report histograms;
  /// counters stay exact.  1 = record everything (exact percentiles,
  /// measurable per-request cost); the default keeps telemetry within a
  /// few percent of the telemetry-off throughput.
  unsigned sample_period = 32;

  /// Arm the scoped rdtsc/steady-clock self-profiling timers.
  bool profile = false;

  /// Bounded length of the controller decision-trace ring.
  std::size_t trace_capacity = 512;

  bool active() const { return enabled; }
  /// True when the runtime should construct a StatsExporter at all.
  bool wants_exporter() const {
    return enabled && (!stats_path.empty() || metrics_port > 0);
  }
};

}  // namespace psd::obs
