// Open-loop per-class request generator (paper Fig. 1, "request generators").
//
// Each generator owns an arrival variant and a size sampler *by value* —
// no virtual dispatch, no unique_ptr clone at setup — creates requests for
// exactly one class, and submits them to a RequestSink.
//
// Hot-path shape: interarrival gaps and sizes are pre-generated kBatch at a
// time into flat buffers (one variant dispatch per refill instead of two
// per event), and the arrival timeline is a simulator *stream* — the run
// loop pulls the next arrival from the buffered block directly, so an
// arrival costs one callback instead of a schedule+sift+pop cycle through
// the central event heap.  Draw order within the owning Rng stream is
// blocks of kBatch gaps followed by kBatch sizes; fixed seeds remain
// exactly reproducible.
#pragma once

#include <array>

#include "dist/sampler.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/sink.hpp"

namespace psd {

class RequestGenerator {
 public:
  /// The generator does not own the sink; all other collaborators are owned.
  RequestGenerator(Simulator& sim, Rng rng, ClassId cls,
                   ArrivalVariant arrivals, SamplerVariant sizes,
                   RequestSink& sink);

  RequestGenerator(const RequestGenerator&) = delete;
  RequestGenerator& operator=(const RequestGenerator&) = delete;

  /// Begin arrivals (the first one interarrival after `origin`).
  void start(Time origin);

  /// Stop generating; the arrival stream goes idle immediately.
  void stop();

  std::uint64_t generated() const { return count_; }
  ClassId cls() const { return cls_; }

 private:
  /// One variant dispatch refills kBatch gaps, one refills kBatch sizes.
  static constexpr std::size_t kBatch = 64;

  Time arrive(Time now);
  double next_gap();

  Simulator& sim_;
  Rng rng_;
  ClassId cls_;
  ArrivalVariant arrivals_;
  SamplerVariant sizes_;
  RequestSink& sink_;
  std::array<double, kBatch> gap_buf_;
  std::array<double, kBatch> size_buf_;
  std::size_t cursor_ = kBatch;  ///< == kBatch forces a refill.
  Simulator::StreamId stream_ = Simulator::kNoStream;
  std::uint64_t count_ = 0;
};

}  // namespace psd
