// Open-loop per-class request generator (paper Fig. 1, "request generators").
//
// Each generator owns an arrival process and a size distribution, creates
// requests for exactly one class, and submits them to a RequestSink.
#pragma once

#include <memory>

#include "dist/distribution.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"
#include "workload/sink.hpp"

namespace psd {

class RequestGenerator {
 public:
  /// The generator does not own the sink; all other collaborators are owned.
  RequestGenerator(Simulator& sim, Rng rng, ClassId cls,
                   std::unique_ptr<ArrivalProcess> arrivals,
                   std::unique_ptr<SizeDistribution> sizes, RequestSink& sink);

  RequestGenerator(const RequestGenerator&) = delete;
  RequestGenerator& operator=(const RequestGenerator&) = delete;

  /// Schedule the first arrival (one interarrival after `origin`).
  void start(Time origin);

  /// Stop generating (pending arrival is cancelled).
  void stop();

  std::uint64_t generated() const { return count_; }
  ClassId cls() const { return cls_; }

 private:
  void arrive();
  void schedule_next();

  Simulator& sim_;
  Rng rng_;
  ClassId cls_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<SizeDistribution> sizes_;
  RequestSink& sink_;
  EventHandle next_;
  std::uint64_t count_ = 0;
};

}  // namespace psd
