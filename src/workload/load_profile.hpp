// Time-varying load profiles: a small spec type (DistSpec-style — copyable,
// comparable, serializable) describing a multiplicative rate modulation
// factor(t) applied to a stationary arrival process.
//
// The paper's eq.-17 allocator is a *periodic* controller driven by a
// windowed load estimator; holding slowdown ratios through transients is
// exactly what the adaptive variant exists for, yet a stationary Poisson
// scenario never exercises it.  A LoadProfile turns any base arrival
// process into a nonstationary one:
//
//   * ramp:t0,t1,f0,f1  — piecewise-linear: factor f0 before t0, linear to
//                         f1 across [t0,t1], f1 after (load steps and
//                         gradual migrations),
//   * sin:period,amp    — 1 + amp * sin(2*pi*t/period), the classic
//                         "diurnal" cycle compressed to simulation scale,
//   * spike:t0,dur,mag  — factor mag inside [t0, t0+dur), 1 elsewhere
//                         (flash crowd: a sudden arrival surge that later
//                         subsides).
//
// Times are in the *consumer's* time base: paper time units in
// ScenarioConfig (the runner rescales via scaled_time(unit)), wall seconds
// in RtConfig.  The modulation itself is applied by ModulatedArrivals
// (workload/arrival.hpp) through Lewis-Shedler thinning, which preserves
// the devirtualized batch-draw hot path — see src/workload/README.md.
#pragma once

#include <string>

#include "common/types.hpp"

namespace psd {

struct LoadProfile {
  enum class Kind { kNone, kRamp, kSin, kSpike };

  Kind kind = Kind::kNone;
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;

  static LoadProfile none() { return {}; }
  /// Linear from factor f0 at t0 to f1 at t1 (clamped outside).
  static LoadProfile ramp(double t0, double t1, double f0, double f1) {
    return {Kind::kRamp, t0, t1, f0, f1};
  }
  /// 1 + amp * sin(2*pi*t / period); amp in [0, 1).
  static LoadProfile sinusoid(double period, double amp) {
    return {Kind::kSin, period, amp, 0.0, 0.0};
  }
  /// Factor `mag` during [t0, t0 + dur), 1 elsewhere.
  static LoadProfile spike(double t0, double dur, double mag) {
    return {Kind::kSpike, t0, dur, mag, 0.0};
  }

  bool active() const { return kind != Kind::kNone; }

  /// Multiplicative rate factor at elapsed time t (>= 0) since the stream
  /// started.  Always > 0 for a validated profile.
  double factor(Time t) const;

  /// max over t of factor(t) — the thinning envelope.
  double peak_factor() const;

  /// When the profile's last discontinuity/transition settles: the moment
  /// from which re-convergence of the slowdown ratios is measured (spike ->
  /// spike END, ramp -> ramp end; NaN for sin/none, which never settle).
  double step_time() const;

  /// Same shape with all *times* multiplied by `s` (factors untouched);
  /// converts a profile specified in paper tu into raw simulator time.
  LoadProfile scaled_time(double s) const;

  void validate() const;

  /// Canonical parsable form ("spike:100,20,3"); "none" when inactive.
  std::string name() const;

  /// Inverse of name().  Throws psd::Error on malformed input; accepted
  /// grammar: none | ramp:t0,t1,f0,f1 | sin:period,amp | spike:t0,dur,mag.
  static LoadProfile parse(const std::string& spec);

  friend bool operator==(const LoadProfile& x, const LoadProfile& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b && x.c == y.c &&
           x.d == y.d;
  }
};

}  // namespace psd
