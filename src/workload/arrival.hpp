// Arrival processes.
//
// The paper's traffic model is Poisson (the M in M/G_B/1); deterministic
// arrivals support engine validation and the MMPP keeps a knob for bursty
// extensions (§4.4 attributes estimation error to traffic burstiness).
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace psd {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Time until the next arrival (strictly positive).
  virtual Duration next_interarrival(Rng& rng) = 0;

  /// Long-run average arrival rate.
  virtual double mean_rate() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// Poisson process: exponential i.i.d. interarrivals.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);

  Duration next_interarrival(Rng& rng) override;
  double mean_rate() const override { return rate_; }
  std::string name() const override;
  std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double rate_;
};

/// Deterministic arrivals with fixed spacing 1/rate.
class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(double rate);

  Duration next_interarrival(Rng& rng) override;
  double mean_rate() const override { return rate_; }
  std::string name() const override;
  std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double rate_;
};

/// Two-state Markov-modulated Poisson process; the chain switches between a
/// low-rate and a high-rate phase with exponential sojourns.  mean_rate() is
/// the stationary-weighted average of the two phase rates.
class Mmpp2Arrivals final : public ArrivalProcess {
 public:
  /// rate_low/rate_high: Poisson rates in each phase;
  /// switch_to_high/switch_to_low: phase transition rates.
  Mmpp2Arrivals(double rate_low, double rate_high, double switch_to_high,
                double switch_to_low);

  Duration next_interarrival(Rng& rng) override;
  double mean_rate() const override;
  std::string name() const override;
  std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double rate_low_, rate_high_, to_high_, to_low_;
  bool high_ = false;
  Duration residual_phase_ = 0.0;  ///< Time left in the current phase.
};

/// Scale an MMPP-style burstiness profile to a target mean rate.
std::unique_ptr<ArrivalProcess> make_bursty_arrivals(double mean_rate,
                                                     double burstiness);

}  // namespace psd
