// Arrival processes — sealed, value-semantic.
//
// The paper's traffic model is Poisson (the M in M/G_B/1); deterministic
// arrivals support engine validation and the MMPP keeps a knob for bursty
// extensions (§4.4 attributes estimation error to traffic burstiness).
//
// Like the size-distribution layer (dist/sampler.hpp), the open virtual
// hierarchy is gone: each process is a plain copyable type with an inline
// next_interarrival(), and ArrivalVariant is the closed std::variant over
// them — one visit per draw (or per refilled batch) instead of a virtual
// call, and copies never touch the heap.  Exponential draws go through the
// ziggurat (see src/dist/README.md for the stream re-baseline note).
#pragma once

#include <string>
#include <variant>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dist/ziggurat.hpp"
#include "workload/class_spec.hpp"

namespace psd {

/// Poisson process: exponential i.i.d. interarrivals.
class PoissonArrivals {
 public:
  explicit PoissonArrivals(double rate);

  Duration next_interarrival(Rng& rng) {
    return ziggurat_exponential(rng) * inv_rate_;
  }
  double mean_rate() const { return rate_; }
  std::string name() const;

 private:
  double rate_, inv_rate_;
};

/// Deterministic arrivals with fixed spacing 1/rate.
class DeterministicArrivals {
 public:
  explicit DeterministicArrivals(double rate);

  Duration next_interarrival(Rng&) { return gap_; }
  double mean_rate() const { return rate_; }
  std::string name() const;

 private:
  double rate_, gap_;
};

/// Two-state Markov-modulated Poisson process; the chain switches between a
/// low-rate and a high-rate phase with exponential sojourns.  mean_rate() is
/// the stationary-weighted average of the two phase rates.  Copies carry the
/// current phase state with them (value semantics).
class Mmpp2Arrivals {
 public:
  /// rate_low/rate_high: Poisson rates in each phase;
  /// switch_to_high/switch_to_low: phase transition rates.
  Mmpp2Arrivals(double rate_low, double rate_high, double switch_to_high,
                double switch_to_low);

  Duration next_interarrival(Rng& rng);
  double mean_rate() const;
  std::string name() const;

 private:
  double rate_low_, rate_high_, to_high_, to_low_;
  bool high_ = false;
  Duration residual_phase_ = 0.0;  ///< Time left in the current phase.
};

/// The sealed arrival-process set.  next_interarrival is stateful (MMPP phase
/// evolution), so draws mutate the variant in place.
class ArrivalVariant {
 public:
  using Alternatives =
      std::variant<PoissonArrivals, DeterministicArrivals, Mmpp2Arrivals>;

  template <typename A,
            typename = std::enable_if_t<
                std::is_constructible_v<Alternatives, A&&> &&
                !std::is_same_v<std::decay_t<A>, ArrivalVariant>>>
  ArrivalVariant(A&& process) : alt_(std::forward<A>(process)) {}

  Duration next_interarrival(Rng& rng) {
    return std::visit([&rng](auto& a) { return a.next_interarrival(rng); },
                      alt_);
  }

  /// Batch draw: one dispatch fills n interarrival gaps (generator refill).
  void fill_interarrivals(Rng& rng, double* out, std::size_t n) {
    std::visit(
        [&](auto& a) {
          for (std::size_t i = 0; i < n; ++i) out[i] = a.next_interarrival(rng);
        },
        alt_);
  }

  double mean_rate() const {
    return std::visit([](const auto& a) { return a.mean_rate(); }, alt_);
  }
  std::string name() const {
    return std::visit([](const auto& a) { return a.name(); }, alt_);
  }

  template <typename A>
  const A* get_if() const {
    return std::get_if<A>(&alt_);
  }

 private:
  Alternatives alt_;
};

/// Scale an MMPP-style burstiness profile to a target mean rate
/// (burstiness == 1 degenerates to plain Poisson).
ArrivalVariant make_bursty_arrivals(double mean_rate, double burstiness);

/// The arrival process a ScenarioConfig axis describes.
ArrivalVariant make_arrivals(ArrivalKind kind, double rate,
                             double burstiness = 1.0);

}  // namespace psd
