// Arrival processes — sealed, value-semantic.
//
// The paper's traffic model is Poisson (the M in M/G_B/1); deterministic
// arrivals support engine validation and the MMPP keeps a knob for bursty
// extensions (§4.4 attributes estimation error to traffic burstiness).
//
// Like the size-distribution layer (dist/sampler.hpp), the open virtual
// hierarchy is gone: each process is a plain copyable type with an inline
// next_interarrival(), and ArrivalVariant is the closed std::variant over
// them — one visit per draw (or per refilled batch) instead of a virtual
// call, and copies never touch the heap.  Exponential draws go through the
// ziggurat (see src/dist/README.md for the stream re-baseline note).
#pragma once

#include <string>
#include <variant>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dist/ziggurat.hpp"
#include "workload/class_spec.hpp"
#include "workload/load_profile.hpp"

namespace psd {

/// Poisson process: exponential i.i.d. interarrivals.
class PoissonArrivals {
 public:
  explicit PoissonArrivals(double rate);

  Duration next_interarrival(Rng& rng) {
    return ziggurat_exponential(rng) * inv_rate_;
  }
  double mean_rate() const { return rate_; }
  std::string name() const;

 private:
  double rate_, inv_rate_;
};

/// Deterministic arrivals with fixed spacing 1/rate.
class DeterministicArrivals {
 public:
  explicit DeterministicArrivals(double rate);

  Duration next_interarrival(Rng&) { return gap_; }
  double mean_rate() const { return rate_; }
  std::string name() const;

 private:
  double rate_, gap_;
};

/// Two-state Markov-modulated Poisson process; the chain switches between a
/// low-rate and a high-rate phase with exponential sojourns.  mean_rate() is
/// the stationary-weighted average of the two phase rates.  Copies carry the
/// current phase state with them (value semantics).
class Mmpp2Arrivals {
 public:
  /// rate_low/rate_high: Poisson rates in each phase;
  /// switch_to_high/switch_to_low: phase transition rates.
  Mmpp2Arrivals(double rate_low, double rate_high, double switch_to_high,
                double switch_to_low);

  Duration next_interarrival(Rng& rng);
  double mean_rate() const;
  std::string name() const;

 private:
  double rate_low_, rate_high_, to_high_, to_low_;
  bool high_ = false;
  Duration residual_phase_ = 0.0;  ///< Time left in the current phase.
};

/// A stationary base process modulated by a LoadProfile through
/// Lewis-Shedler thinning: the base runs at `peak_factor()` times the
/// nominal rate, and each candidate arrival is accepted with probability
/// factor(t) / peak — for a Poisson base this is exactly the nonhomogeneous
/// Poisson process with rate lambda * factor(t).  The process carries its
/// own elapsed clock (sum of emitted base gaps), so it stays a plain
/// stateful value type: next_interarrival() needs no absolute time from the
/// caller and the generator's batched fill path works unchanged.  Draw
/// order per candidate is (base gap, acceptance uniform), fixed, so
/// profiled streams are exactly reproducible at a seed.
class ModulatedArrivals {
 public:
  /// The stationary processes a profile can modulate.  Thinning a
  /// non-Poisson base is an approximation (it deletes, not rescales), noted
  /// in name(); the Poisson case is exact.
  using Base =
      std::variant<PoissonArrivals, DeterministicArrivals, Mmpp2Arrivals>;

  /// `base_at_peak` must already run at nominal_rate * profile.peak_factor()
  /// (make_arrivals does this scaling); `nominal_rate` is kept for
  /// mean_rate() reporting.
  ModulatedArrivals(Base base_at_peak, LoadProfile profile,
                    double nominal_rate);

  Duration next_interarrival(Rng& rng);
  /// The nominal (unmodulated) rate — the profile multiplies around it.
  double mean_rate() const { return nominal_rate_; }
  std::string name() const;

  const LoadProfile& profile() const { return profile_; }
  /// Elapsed time accumulated by emitted arrivals (testing hook).
  Time elapsed() const { return elapsed_; }

 private:
  Base base_;
  LoadProfile profile_;
  double nominal_rate_;
  double inv_peak_;
  Time elapsed_ = 0.0;
};

/// The sealed arrival-process set.  next_interarrival is stateful (MMPP
/// phase and modulation-clock evolution), so draws mutate the variant in
/// place.
class ArrivalVariant {
 public:
  using Alternatives = std::variant<PoissonArrivals, DeterministicArrivals,
                                    Mmpp2Arrivals, ModulatedArrivals>;

  template <typename A,
            typename = std::enable_if_t<
                std::is_constructible_v<Alternatives, A&&> &&
                !std::is_same_v<std::decay_t<A>, ArrivalVariant>>>
  ArrivalVariant(A&& process) : alt_(std::forward<A>(process)) {}

  Duration next_interarrival(Rng& rng) {
    return std::visit([&rng](auto& a) { return a.next_interarrival(rng); },
                      alt_);
  }

  /// Batch draw: one dispatch fills n interarrival gaps (generator refill).
  void fill_interarrivals(Rng& rng, double* out, std::size_t n) {
    std::visit(
        [&](auto& a) {
          for (std::size_t i = 0; i < n; ++i) out[i] = a.next_interarrival(rng);
        },
        alt_);
  }

  double mean_rate() const {
    return std::visit([](const auto& a) { return a.mean_rate(); }, alt_);
  }
  std::string name() const {
    return std::visit([](const auto& a) { return a.name(); }, alt_);
  }

  template <typename A>
  const A* get_if() const {
    return std::get_if<A>(&alt_);
  }

 private:
  Alternatives alt_;
};

/// Scale an MMPP/ON-OFF burstiness shape to a target mean rate (burstiness
/// == 1 degenerates to plain Poisson).  `sojourn` is the mean high-phase
/// length in mean interarrival times; `duty` the stationary fraction of
/// time spent in the high phase (0.5 = the symmetric legacy shape; small
/// duty with large burstiness approaches an ON-OFF source).  Defaults
/// reproduce the historical two-parameter form draw-for-draw.
ArrivalVariant make_bursty_arrivals(double mean_rate, double burstiness,
                                    double sojourn = 10.0, double duty = 0.5);

/// The arrival process a ScenarioConfig axis describes.  When `profile` is
/// active the stationary process is built at the profile's peak rate and
/// wrapped in ModulatedArrivals; when inactive the construction (and hence
/// the draw stream at a fixed seed) is identical to the historical one.
ArrivalVariant make_arrivals(ArrivalKind kind, double rate,
                             double burstiness = 1.0, double sojourn = 10.0,
                             double duty = 0.5,
                             const LoadProfile& profile = {});

/// Bundled spec form (used by RtConfig and the CLI --arrivals parser).
ArrivalVariant make_arrivals(const ArrivalSpec& spec, double rate,
                             const LoadProfile& profile = {});

}  // namespace psd
