#include "workload/trace.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace psd {

void RecordingSink::submit(const Request& req) {
  trace_.push_back(TraceEntry{req.arrival, req.cls, req.size});
  if (downstream_ != nullptr) downstream_->submit(req);
}

TracePlayer::TracePlayer(Simulator& sim, Trace trace, RequestSink& sink)
    : sim_(sim), trace_(std::move(trace)), sink_(sink) {
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    PSD_REQUIRE(trace_[i].time >= trace_[i - 1].time,
                "trace must be time-ordered");
  }
}

void TracePlayer::start(Time origin) {
  if (trace_.empty()) return;
  const Time base = trace_.front().time;
  RequestId id = 0;
  for (const auto& e : trace_) {
    const Time when = origin + (e.time - base);
    const TraceEntry entry = e;
    const RequestId rid = id++;
    sim_.at_fast(when, [this, entry, when, rid] {
      Request req;
      req.id = (static_cast<RequestId>(entry.cls) << 48) | rid;
      req.cls = entry.cls;
      req.arrival = when;
      req.size = entry.size;
      sink_.submit(req);
    });
  }
}

void write_trace(std::ostream& os, const Trace& trace) {
  // max_digits10 so the text round-trip reproduces every double exactly —
  // a replayed trace must hit the server at bit-identical times.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "# time,class,size\n";
  for (const auto& e : trace) {
    os << e.time << ',' << e.cls << ',' << e.size << '\n';
  }
  os.precision(old_precision);
}

Trace read_trace(std::istream& is) {
  Trace out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    char comma1 = 0, comma2 = 0;
    ls >> e.time >> comma1 >> e.cls >> comma2 >> e.size;
    PSD_REQUIRE(comma1 == ',' && comma2 == ',' && !ls.fail(),
                "malformed trace line: " + line);
    out.push_back(e);
  }
  return out;
}

}  // namespace psd
