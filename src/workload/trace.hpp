// Arrival-trace record and replay.
//
// A trace is a time-ordered list of (time, class, size) tuples.  Recording
// wraps any RequestSink; replay feeds a recorded (or synthetic) trace back
// into a server, enabling reproducible workload comparisons across
// allocators (the same arrivals hit every policy).
#pragma once

#include <iosfwd>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/sink.hpp"

namespace psd {

struct TraceEntry {
  Time time = 0.0;
  ClassId cls = 0;
  Work size = 0.0;
};

using Trace = std::vector<TraceEntry>;

/// Tee: forwards every submitted request downstream and appends it to a trace.
class RecordingSink final : public RequestSink {
 public:
  explicit RecordingSink(RequestSink* downstream = nullptr)
      : downstream_(downstream) {}

  void submit(const Request& req) override;

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }

 private:
  RequestSink* downstream_;
  Trace trace_;
};

/// Schedules every trace entry as a future submission into a sink.
class TracePlayer {
 public:
  TracePlayer(Simulator& sim, Trace trace, RequestSink& sink);

  /// Schedule all entries, shifted so the first entry fires at `origin` +
  /// its recorded offset from the trace start.
  void start(Time origin);

  std::size_t size() const { return trace_.size(); }

 private:
  Simulator& sim_;
  Trace trace_;
  RequestSink& sink_;
};

/// CSV round-trip: "time,class,size" per line, '#' comments allowed.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

}  // namespace psd
