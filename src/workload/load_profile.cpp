#include "workload/load_profile.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace psd {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Factors may never reach 0: the thinning loop in ModulatedArrivals draws
// base candidates until one is accepted, and a zero-rate stretch of
// unbounded length would spin forever.  1% of nominal is low enough to model
// an idle valley.
constexpr double kMinFactor = 0.01;

std::vector<double> parse_params(const std::string& spec,
                                 const std::string& kind, std::size_t n) {
  const auto colon = spec.find(':');
  PSD_REQUIRE(colon != std::string::npos,
              "profile '" + kind + "' needs ':' parameters (" + spec + ")");
  std::vector<double> out;
  std::stringstream ss(spec.substr(colon + 1));
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    PSD_REQUIRE(used == item.size() && !item.empty(),
                "profile parameter '" + item + "' is not a number (" + spec +
                    ")");
    out.push_back(v);
  }
  PSD_REQUIRE(out.size() == n, "profile '" + kind + "' needs " +
                                   std::to_string(n) + " parameters (" +
                                   spec + ")");
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

double LoadProfile::factor(Time t) const {
  switch (kind) {
    case Kind::kNone:
      return 1.0;
    case Kind::kRamp: {
      if (t <= a) return c;
      if (t >= b) return d;
      return c + (d - c) * (t - a) / (b - a);
    }
    case Kind::kSin:
      return 1.0 + b * std::sin(kTwoPi * t / a);
    case Kind::kSpike:
      return (t >= a && t < a + b) ? c : 1.0;
  }
  PSD_UNREACHABLE("unknown profile kind");
}

double LoadProfile::peak_factor() const {
  switch (kind) {
    case Kind::kNone:
      return 1.0;
    case Kind::kRamp:
      return std::max(c, d);
    case Kind::kSin:
      return 1.0 + b;
    case Kind::kSpike:
      return std::max(c, 1.0);
  }
  PSD_UNREACHABLE("unknown profile kind");
}

double LoadProfile::step_time() const {
  switch (kind) {
    case Kind::kNone:
    case Kind::kSin:
      return kNaN;  // no settling point: nothing to re-converge after
    case Kind::kRamp:
      return b;
    case Kind::kSpike:
      return a + b;
  }
  PSD_UNREACHABLE("unknown profile kind");
}

LoadProfile LoadProfile::scaled_time(double s) const {
  PSD_REQUIRE(s > 0.0, "profile time scale must be positive");
  LoadProfile out = *this;
  switch (kind) {
    case Kind::kNone:
      break;
    case Kind::kRamp:
      out.a *= s;
      out.b *= s;
      break;
    case Kind::kSin:
      out.a *= s;
      break;
    case Kind::kSpike:
      out.a *= s;
      out.b *= s;
      break;
  }
  return out;
}

void LoadProfile::validate() const {
  switch (kind) {
    case Kind::kNone:
      return;
    case Kind::kRamp:
      PSD_REQUIRE(a >= 0.0 && b > a, "ramp needs 0 <= t0 < t1");
      PSD_REQUIRE(c >= kMinFactor && d >= kMinFactor,
                  "ramp factors must be >= 0.01");
      return;
    case Kind::kSin:
      PSD_REQUIRE(a > 0.0, "sin period must be positive");
      PSD_REQUIRE(b >= 0.0 && b <= 1.0 - kMinFactor,
                  "sin amplitude must be in [0, 0.99]");
      return;
    case Kind::kSpike:
      PSD_REQUIRE(a >= 0.0 && b > 0.0, "spike needs t0 >= 0 and duration > 0");
      PSD_REQUIRE(c >= kMinFactor, "spike magnitude must be >= 0.01");
      return;
  }
  PSD_UNREACHABLE("unknown profile kind");
}

std::string LoadProfile::name() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kRamp:
      return "ramp:" + num(a) + ',' + num(b) + ',' + num(c) + ',' + num(d);
    case Kind::kSin:
      return "sin:" + num(a) + ',' + num(b);
    case Kind::kSpike:
      return "spike:" + num(a) + ',' + num(b) + ',' + num(c);
  }
  PSD_UNREACHABLE("unknown profile kind");
}

LoadProfile LoadProfile::parse(const std::string& spec) {
  const std::string kind = spec.substr(0, spec.find(':'));
  LoadProfile out;
  if (kind == "none") {
    PSD_REQUIRE(spec == "none", "profile 'none' takes no parameters");
    return out;
  }
  if (kind == "ramp") {
    const auto p = parse_params(spec, kind, 4);
    out = ramp(p[0], p[1], p[2], p[3]);
  } else if (kind == "sin") {
    const auto p = parse_params(spec, kind, 2);
    out = sinusoid(p[0], p[1]);
  } else if (kind == "spike") {
    const auto p = parse_params(spec, kind, 3);
    out = spike(p[0], p[1], p[2]);
  } else {
    PSD_REQUIRE(false, "unknown profile '" + spec +
                           "' (expected none | ramp:t0,t1,f0,f1 | "
                           "sin:period,amp | spike:t0,dur,mag)");
  }
  out.validate();
  return out;
}

}  // namespace psd
