#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace psd {

PoissonArrivals::PoissonArrivals(double rate)
    : rate_(rate), inv_rate_(1.0 / rate) {
  PSD_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

std::string PoissonArrivals::name() const {
  std::ostringstream os;
  os << "Poisson(rate=" << rate_ << ")";
  return os.str();
}

DeterministicArrivals::DeterministicArrivals(double rate)
    : rate_(rate), gap_(1.0 / rate) {
  PSD_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

std::string DeterministicArrivals::name() const {
  std::ostringstream os;
  os << "Deterministic(rate=" << rate_ << ")";
  return os.str();
}

Mmpp2Arrivals::Mmpp2Arrivals(double rate_low, double rate_high,
                             double switch_to_high, double switch_to_low)
    : rate_low_(rate_low),
      rate_high_(rate_high),
      to_high_(switch_to_high),
      to_low_(switch_to_low) {
  PSD_REQUIRE(rate_low > 0.0 && rate_high > 0.0, "phase rates must be positive");
  PSD_REQUIRE(switch_to_high > 0.0 && switch_to_low > 0.0,
              "switching rates must be positive");
}

Duration Mmpp2Arrivals::next_interarrival(Rng& rng) {
  // Competing exponentials: the next arrival in the current phase races the
  // phase switch; phase changes accumulate into the interarrival gap.
  Duration gap = 0.0;
  for (;;) {
    if (residual_phase_ <= 0.0) {
      residual_phase_ =
          ziggurat_exponential(rng, high_ ? to_low_ : to_high_);
    }
    const double rate = high_ ? rate_high_ : rate_low_;
    const Duration to_arrival = ziggurat_exponential(rng, rate);
    if (to_arrival <= residual_phase_) {
      residual_phase_ -= to_arrival;
      return gap + to_arrival;
    }
    gap += residual_phase_;
    residual_phase_ = 0.0;
    high_ = !high_;
  }
}

double Mmpp2Arrivals::mean_rate() const {
  // Stationary phase probabilities of the two-state chain.
  const double p_high = to_high_ / (to_high_ + to_low_);
  return p_high * rate_high_ + (1.0 - p_high) * rate_low_;
}

std::string Mmpp2Arrivals::name() const {
  std::ostringstream os;
  os << "MMPP2(low=" << rate_low_ << ", high=" << rate_high_ << ")";
  return os.str();
}

ArrivalVariant make_bursty_arrivals(double mean_rate, double burstiness) {
  PSD_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  PSD_REQUIRE(burstiness >= 1.0, "burstiness >= 1 (1 == plain Poisson)");
  if (burstiness == 1.0) return PoissonArrivals(mean_rate);
  // Symmetric two-phase chain: phases split time evenly, so the mean rate is
  // (low + high) / 2; spread controlled by `burstiness` = high/mean.
  const double high = burstiness * mean_rate;
  const double low = std::max(2.0 * mean_rate - high, 0.05 * mean_rate);
  // Renormalize so (low + high)/2 == mean_rate even after the floor.
  const double scale = 2.0 * mean_rate / (low + high);
  const double sw = mean_rate / 10.0;  // phases last ~10 mean interarrivals
  return Mmpp2Arrivals(low * scale, high * scale, sw, sw);
}

ArrivalVariant make_arrivals(ArrivalKind kind, double rate, double burstiness) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return PoissonArrivals(rate);
    case ArrivalKind::kDeterministic:
      return DeterministicArrivals(rate);
    case ArrivalKind::kBursty:
      return make_bursty_arrivals(rate, burstiness);
  }
  PSD_UNREACHABLE("unknown arrival kind");
}

}  // namespace psd
