#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace psd {

PoissonArrivals::PoissonArrivals(double rate)
    : rate_(rate), inv_rate_(1.0 / rate) {
  PSD_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

std::string PoissonArrivals::name() const {
  std::ostringstream os;
  os << "Poisson(rate=" << rate_ << ")";
  return os.str();
}

DeterministicArrivals::DeterministicArrivals(double rate)
    : rate_(rate), gap_(1.0 / rate) {
  PSD_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

std::string DeterministicArrivals::name() const {
  std::ostringstream os;
  os << "Deterministic(rate=" << rate_ << ")";
  return os.str();
}

Mmpp2Arrivals::Mmpp2Arrivals(double rate_low, double rate_high,
                             double switch_to_high, double switch_to_low)
    : rate_low_(rate_low),
      rate_high_(rate_high),
      to_high_(switch_to_high),
      to_low_(switch_to_low) {
  PSD_REQUIRE(rate_low > 0.0 && rate_high > 0.0, "phase rates must be positive");
  PSD_REQUIRE(switch_to_high > 0.0 && switch_to_low > 0.0,
              "switching rates must be positive");
}

Duration Mmpp2Arrivals::next_interarrival(Rng& rng) {
  // Competing exponentials: the next arrival in the current phase races the
  // phase switch; phase changes accumulate into the interarrival gap.
  Duration gap = 0.0;
  for (;;) {
    if (residual_phase_ <= 0.0) {
      residual_phase_ =
          ziggurat_exponential(rng, high_ ? to_low_ : to_high_);
    }
    const double rate = high_ ? rate_high_ : rate_low_;
    const Duration to_arrival = ziggurat_exponential(rng, rate);
    if (to_arrival <= residual_phase_) {
      residual_phase_ -= to_arrival;
      return gap + to_arrival;
    }
    gap += residual_phase_;
    residual_phase_ = 0.0;
    high_ = !high_;
  }
}

double Mmpp2Arrivals::mean_rate() const {
  // Stationary phase probabilities of the two-state chain.
  const double p_high = to_high_ / (to_high_ + to_low_);
  return p_high * rate_high_ + (1.0 - p_high) * rate_low_;
}

std::string Mmpp2Arrivals::name() const {
  std::ostringstream os;
  os << "MMPP2(low=" << rate_low_ << ", high=" << rate_high_ << ")";
  return os.str();
}

ModulatedArrivals::ModulatedArrivals(Base base_at_peak, LoadProfile profile,
                                     double nominal_rate)
    : base_(std::move(base_at_peak)),
      profile_(profile),
      nominal_rate_(nominal_rate),
      inv_peak_(1.0 / profile.peak_factor()) {
  PSD_REQUIRE(nominal_rate > 0.0, "nominal rate must be positive");
  profile_.validate();
}

Duration ModulatedArrivals::next_interarrival(Rng& rng) {
  // Lewis-Shedler thinning against the peak-rate envelope.  Candidate gaps
  // advance the modulation clock whether accepted or not; rejected
  // candidates simply vanish from the output stream.  The loop terminates
  // because validated profiles keep factor(t) >= 0.01 everywhere.
  Duration gap = 0.0;
  for (;;) {
    const Duration step = std::visit(
        [&rng](auto& a) { return a.next_interarrival(rng); }, base_);
    gap += step;
    elapsed_ += step;
    if (rng.uniform01() < profile_.factor(elapsed_) * inv_peak_) return gap;
  }
}

std::string ModulatedArrivals::name() const {
  std::ostringstream os;
  os << "Modulated("
     << std::visit([](const auto& a) { return a.name(); }, base_) << " x "
     << profile_.name() << ")";
  return os.str();
}

ArrivalVariant make_bursty_arrivals(double mean_rate, double burstiness,
                                    double sojourn, double duty) {
  PSD_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  PSD_REQUIRE(burstiness >= 1.0, "burstiness >= 1 (1 == plain Poisson)");
  PSD_REQUIRE(sojourn > 0.0, "mean phase sojourn must be positive");
  PSD_REQUIRE(duty > 0.0 && duty < 1.0, "duty must be in (0,1)");
  if (burstiness == 1.0) return PoissonArrivals(mean_rate);
  // Two-phase chain spending `duty` of its time in the high phase, so the
  // mean rate is duty*high + (1-duty)*low; spread is `burstiness` =
  // high/mean.  duty 0.5 reduces to the symmetric legacy shape.
  const double high = burstiness * mean_rate;
  const double low =
      std::max((mean_rate - duty * high) / (1.0 - duty), 0.05 * mean_rate);
  // Renormalize so the duty-weighted mean is mean_rate even after the floor.
  const double scale = mean_rate / (duty * high + (1.0 - duty) * low);
  // High phases last ~`sojourn` mean interarrivals; the low-phase sojourn
  // follows from the duty cycle.
  const double to_low = mean_rate / sojourn;
  const double to_high = to_low * duty / (1.0 - duty);
  return Mmpp2Arrivals(low * scale, high * scale, to_high, to_low);
}

namespace {

/// The stationary process at `rate` (no modulation applied).
ArrivalVariant make_stationary(ArrivalKind kind, double rate,
                               double burstiness, double sojourn,
                               double duty) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return PoissonArrivals(rate);
    case ArrivalKind::kDeterministic:
      return DeterministicArrivals(rate);
    case ArrivalKind::kBursty:
      return make_bursty_arrivals(rate, burstiness, sojourn, duty);
  }
  PSD_UNREACHABLE("unknown arrival kind");
}

}  // namespace

ArrivalVariant make_arrivals(ArrivalKind kind, double rate, double burstiness,
                             double sojourn, double duty,
                             const LoadProfile& profile) {
  if (!profile.active()) {
    return make_stationary(kind, rate, burstiness, sojourn, duty);
  }
  profile.validate();
  // The thinning envelope: run the base at the profile's peak rate, then
  // hand it (as a ModulatedArrivals::Base) to the wrapper.
  const double peak_rate = rate * profile.peak_factor();
  ArrivalVariant base = make_stationary(kind, peak_rate, burstiness, sojourn,
                                        duty);
  if (const auto* p = base.get_if<PoissonArrivals>()) {
    return ModulatedArrivals(*p, profile, rate);
  }
  if (const auto* d = base.get_if<DeterministicArrivals>()) {
    return ModulatedArrivals(*d, profile, rate);
  }
  const auto* m = base.get_if<Mmpp2Arrivals>();
  PSD_CHECK(m != nullptr, "stationary factory returned a modulated process");
  return ModulatedArrivals(*m, profile, rate);
}

ArrivalVariant make_arrivals(const ArrivalSpec& spec, double rate,
                             const LoadProfile& profile) {
  return make_arrivals(spec.kind, rate, spec.burstiness, spec.sojourn,
                       spec.duty, profile);
}

}  // namespace psd
