// Request record flowing through the server.
#pragma once

#include "common/types.hpp"

namespace psd {

struct Request {
  RequestId id = 0;
  ClassId cls = 0;
  Time arrival = 0.0;        ///< Enqueue time at the server.
  Work size = 0.0;           ///< Processing demand at full capacity.
  Time service_start = -1.0; ///< First moment the request receives service.
  Time departure = -1.0;     ///< Completion time.
  Duration service_elapsed = 0.0;  ///< Total time spent receiving service.

  /// Queueing delay: time between arrival and first service.
  Duration delay() const { return service_start - arrival; }

  /// Slowdown = queueing delay / actual service duration (paper's metric:
  /// "the ratio of a request's queueing delay to its service time").
  double slowdown() const { return delay() / service_elapsed; }

  bool completed() const { return departure >= 0.0; }
};

}  // namespace psd
