#include "workload/session.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dist/ziggurat.hpp"

namespace psd {

SessionProfile SessionProfile::storefront(double session_rate) {
  SessionProfile p;
  p.session_rate = session_rate;
  // State indices: 0 home, 1 browse, 2 search, 3 register, 4 buy.
  // Class mapping: 0 = premium transaction path (register/buy),
  //                1 = browsing path (home/browse/search).
  p.states = {
      {"home", 1, DistSpec::deterministic(0.2), 0.5, {0.0, 0.7, 0.2, 0.05, 0.0}},
      {"browse", 1, DistSpec::bounded_pareto(1.5, 0.1, 50.0), 1.0,
       {0.0, 0.45, 0.3, 0.1, 0.05}},
      {"search", 1, DistSpec::bounded_pareto(1.5, 0.2, 80.0), 1.0,
       {0.0, 0.4, 0.25, 0.1, 0.05}},
      {"register", 0, DistSpec::deterministic(0.3), 0.5,
       {0.0, 0.2, 0.1, 0.0, 0.6}},
      {"buy", 0, DistSpec::deterministic(0.5), 0.5, {0.0, 0.15, 0.0, 0.0, 0.0}},
  };
  return p;
}

std::vector<double> SessionProfile::expected_visits() const {
  const std::size_t n = states.size();
  PSD_REQUIRE(n > 0, "profile has no states");
  // v = e + P^T v  solved by damped fixed-point iteration; the chain is
  // substochastic (every state leaks probability to "exit"), so the
  // iteration converges geometrically.
  std::vector<double> v(n, 0.0);
  for (int iter = 0; iter < 10000; ++iter) {
    std::vector<double> next(n, 0.0);
    next[entry_state] = 1.0;
    for (std::size_t s = 0; s < n; ++s) {
      PSD_REQUIRE(states[s].next_prob.size() == n,
                  "transition row size mismatch");
      for (std::size_t t = 0; t < n; ++t) {
        next[t] += v[s] * states[s].next_prob[t];
      }
    }
    double diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) diff += std::abs(next[s] - v[s]);
    v = std::move(next);
    if (diff < 1e-13) break;
  }
  return v;
}

std::vector<double> SessionProfile::class_request_rates(
    std::size_t num_classes) const {
  const auto visits = expected_visits();
  std::vector<double> rates(num_classes, 0.0);
  for (std::size_t s = 0; s < states.size(); ++s) {
    PSD_REQUIRE(states[s].cls < num_classes, "state class out of range");
    rates[states[s].cls] += session_rate * visits[s];
  }
  return rates;
}

std::vector<SamplerVariant> SessionProfile::class_mixtures(
    std::size_t num_classes) const {
  const auto visits = expected_visits();
  std::vector<std::vector<MixtureComponent>> per_class(num_classes);
  for (std::size_t s = 0; s < states.size(); ++s) {
    PSD_REQUIRE(states[s].cls < num_classes, "state class out of range");
    if (visits[s] <= 0.0) continue;
    per_class[states[s].cls].push_back(
        MixtureComponent{visits[s], make_sampler(states[s].size)});
  }
  std::vector<SamplerVariant> out;
  out.reserve(num_classes);
  for (auto& comps : per_class) {
    PSD_REQUIRE(!comps.empty(), "a class has no reachable states");
    out.push_back(MixtureSampler(std::move(comps)));
  }
  return out;
}

SessionWorkload::SessionWorkload(Simulator& sim, Rng rng,
                                 SessionProfile profile, RequestSink& sink)
    : sim_(sim), rng_(rng), profile_(std::move(profile)), sink_(sink) {
  PSD_REQUIRE(!profile_.states.empty(), "profile has no states");
  PSD_REQUIRE(profile_.entry_state < profile_.states.size(),
              "entry state out of range");
  PSD_REQUIRE(profile_.session_rate > 0.0, "session rate must be positive");
  dists_.reserve(profile_.states.size());
  for (const auto& st : profile_.states) {
    double total = 0.0;
    for (double q : st.next_prob) total += q;
    PSD_REQUIRE(total <= 1.0 + 1e-9, "transition row exceeds probability 1");
    dists_.push_back(make_sampler(st.size));
  }
}

void SessionWorkload::start(Time origin) {
  stopped_ = false;
  const Duration gap = ziggurat_exponential(rng_, profile_.session_rate);
  next_session_ = sim_.at(origin + gap, [this] { session_arrive(); });
}

void SessionWorkload::stop() {
  stopped_ = true;
  next_session_.cancel();
}

void SessionWorkload::schedule_next_session() {
  const Duration gap = ziggurat_exponential(rng_, profile_.session_rate);
  next_session_ = sim_.at(sim_.now() + gap, [this] { session_arrive(); });
}

void SessionWorkload::session_arrive() {
  ++sessions_;
  visit_state(profile_.entry_state);
  schedule_next_session();
}

void SessionWorkload::visit_state(std::size_t state) {
  if (stopped_) return;
  const auto& st = profile_.states[state];
  Request req;
  req.id = (static_cast<RequestId>(st.cls) << 48) | requests_;
  req.cls = st.cls;
  req.arrival = sim_.now();
  req.size = dists_[state].sample(rng_);
  ++requests_;
  sink_.submit(req);

  // Choose the next state (or end the session with the leftover mass).
  double u = rng_.uniform01();
  for (std::size_t t = 0; t < st.next_prob.size(); ++t) {
    if (u < st.next_prob[t]) {
      const Duration think =
          st.think_mean * ziggurat_exponential(rng_);
      sim_.after_fast(think, [this, t] { visit_state(t); });
      return;
    }
    u -= st.next_prob[t];
  }
  // Session ends.
}

}  // namespace psd
