#include "workload/class_spec.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace psd {

namespace {

std::string short_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

constexpr const char* kArrivalGrammar =
    "poisson | det | mmpp:burst[,sojourn[,duty]]";

}  // namespace

void ArrivalSpec::validate() const {
  if (kind == ArrivalKind::kBursty) {
    PSD_REQUIRE(burstiness >= 1.0, "mmpp burst must be >= 1");
    PSD_REQUIRE(sojourn > 0.0, "mmpp sojourn must be positive");
    PSD_REQUIRE(duty > 0.0 && duty < 1.0, "mmpp duty must be in (0,1)");
  }
}

std::string ArrivalSpec::name() const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDeterministic:
      return "det";
    case ArrivalKind::kBursty:
      return "mmpp:" + short_num(burstiness) + ',' + short_num(sojourn) +
             ',' + short_num(duty);
  }
  PSD_UNREACHABLE("unknown arrival kind");
}

ArrivalSpec ArrivalSpec::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  ArrivalSpec out;
  if (kind == "poisson" || kind == "det" || kind == "deterministic") {
    PSD_REQUIRE(colon == std::string::npos,
                "arrival process '" + kind + "' takes no parameters");
    out.kind = kind == "poisson" ? ArrivalKind::kPoisson
                                 : ArrivalKind::kDeterministic;
    return out;
  }
  PSD_REQUIRE(kind == "mmpp", "unknown arrival process '" + spec +
                                  "' (expected " + kArrivalGrammar + ")");
  std::vector<double> args;
  if (colon != std::string::npos) {
    std::stringstream ss(spec.substr(colon + 1));
    std::string item;
    while (std::getline(ss, item, ',')) {
      try {
        std::size_t used = 0;
        const double v = std::stod(item, &used);
        PSD_REQUIRE(used == item.size(), "");
        args.push_back(v);
      } catch (const std::exception&) {
        PSD_REQUIRE(false, "mmpp has a malformed parameter (expected " +
                               std::string(kArrivalGrammar) + ")");
      }
    }
  }
  PSD_REQUIRE(!args.empty() && args.size() <= 3,
              "mmpp needs 1-3 parameters (burst[,sojourn[,duty]])");
  out.kind = ArrivalKind::kBursty;
  out.burstiness = args[0];
  if (args.size() >= 2) out.sojourn = args[1];
  if (args.size() >= 3) out.duty = args[2];
  out.validate();
  return out;
}

std::vector<double> rates_for_load(double load, double capacity,
                                   double mean_size,
                                   const std::vector<double>& share) {
  PSD_REQUIRE(load > 0.0, "load must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(!share.empty(), "need at least one class");
  const double total = std::accumulate(share.begin(), share.end(), 0.0);
  PSD_REQUIRE(std::abs(total - 1.0) < 1e-6, "load shares must sum to 1");
  std::vector<double> rates(share.size());
  for (std::size_t i = 0; i < share.size(); ++i) {
    PSD_REQUIRE(share[i] > 0.0, "each class share must be positive");
    rates[i] = share[i] * load * capacity / mean_size;
  }
  return rates;
}

std::vector<double> rates_for_equal_load(double load, double capacity,
                                         double mean_size,
                                         std::size_t num_classes) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  const std::vector<double> share(num_classes,
                                  1.0 / static_cast<double>(num_classes));
  return rates_for_load(load, capacity, mean_size, share);
}

}  // namespace psd
