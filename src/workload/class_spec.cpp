#include "workload/class_spec.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace psd {

std::vector<double> rates_for_load(double load, double capacity,
                                   double mean_size,
                                   const std::vector<double>& share) {
  PSD_REQUIRE(load > 0.0, "load must be positive");
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(mean_size > 0.0, "mean size must be positive");
  PSD_REQUIRE(!share.empty(), "need at least one class");
  const double total = std::accumulate(share.begin(), share.end(), 0.0);
  PSD_REQUIRE(std::abs(total - 1.0) < 1e-6, "load shares must sum to 1");
  std::vector<double> rates(share.size());
  for (std::size_t i = 0; i < share.size(); ++i) {
    PSD_REQUIRE(share[i] > 0.0, "each class share must be positive");
    rates[i] = share[i] * load * capacity / mean_size;
  }
  return rates;
}

std::vector<double> rates_for_equal_load(double load, double capacity,
                                         double mean_size,
                                         std::size_t num_classes) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  const std::vector<double> share(num_classes,
                                  1.0 / static_cast<double>(num_classes));
  return rates_for_load(load, capacity, mean_size, share);
}

}  // namespace psd
