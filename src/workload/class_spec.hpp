// Per-class workload specification and helpers that translate the paper's
// experiment parameters ("system load X%, all classes share load equally")
// into per-class arrival rates.
#pragma once

#include <string>
#include <vector>

#include "dist/factory.hpp"

namespace psd {

enum class ArrivalKind { kPoisson, kDeterministic, kBursty };

/// Shape parameters of an arrival process, rate left open (the rate is
/// derived from load targets downstream).  The kBursty fields follow
/// make_bursty_arrivals: `burstiness` = high-phase rate over the mean,
/// `sojourn` = mean high-phase length in mean interarrivals, `duty` =
/// stationary high-phase time fraction.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double burstiness = 1.0;
  double sojourn = 10.0;
  double duty = 0.5;

  void validate() const;

  /// Canonical parsable form: "poisson" | "det" | "mmpp:burst,sojourn,duty"
  /// (%g-rendered params).
  std::string name() const;

  /// Inverse of name().  Accepted grammar: poisson | det | deterministic |
  /// mmpp:burst[,sojourn[,duty]] (burst >= 1, sojourn > 0, duty in (0,1));
  /// omitted mmpp params keep their defaults.  Throws psd::Error on
  /// malformed input.
  static ArrivalSpec parse(const std::string& spec);

  friend bool operator==(const ArrivalSpec& x, const ArrivalSpec& y) {
    return x.kind == y.kind && x.burstiness == y.burstiness &&
           x.sojourn == y.sojourn && x.duty == y.duty;
  }
};

struct ClassSpec {
  double delta = 1.0;       ///< Differentiation parameter (class 0 smallest).
  double arrival_rate = 0;  ///< Mean arrivals per unit time.
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double burstiness = 1.0;  ///< Only for kBursty.
  DistSpec size;            ///< Service-time distribution at full capacity.
};

/// Compute per-class Poisson rates so that class i contributes
/// `share[i] * load * capacity` of utilization given mean size E[X].
/// share must sum to 1 (within tolerance).
std::vector<double> rates_for_load(double load, double capacity,
                                   double mean_size,
                                   const std::vector<double>& share);

/// Equal-share convenience (the paper: "we assumed that all classes had the
/// same load").
std::vector<double> rates_for_equal_load(double load, double capacity,
                                         double mean_size,
                                         std::size_t num_classes);

}  // namespace psd
