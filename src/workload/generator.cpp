#include "workload/generator.hpp"

#include "common/error.hpp"

namespace psd {

RequestGenerator::RequestGenerator(Simulator& sim, Rng rng, ClassId cls,
                                   std::unique_ptr<ArrivalProcess> arrivals,
                                   std::unique_ptr<SizeDistribution> sizes,
                                   RequestSink& sink)
    : sim_(sim),
      rng_(rng),
      cls_(cls),
      arrivals_(std::move(arrivals)),
      sizes_(std::move(sizes)),
      sink_(sink) {
  PSD_REQUIRE(arrivals_ != nullptr, "arrival process required");
  PSD_REQUIRE(sizes_ != nullptr, "size distribution required");
}

void RequestGenerator::start(Time origin) {
  stop();
  const Duration gap = arrivals_->next_interarrival(rng_);
  next_ = sim_.at(origin + gap, [this] { arrive(); });
}

void RequestGenerator::stop() { next_.cancel(); }

void RequestGenerator::arrive() {
  Request req;
  // Encode the class in the top bits so ids are unique across generators.
  req.id = (static_cast<RequestId>(cls_) << 48) | count_;
  req.cls = cls_;
  req.arrival = sim_.now();
  req.size = sizes_->sample(rng_);
  ++count_;
  sink_.submit(req);
  schedule_next();
}

void RequestGenerator::schedule_next() {
  const Duration gap = arrivals_->next_interarrival(rng_);
  next_ = sim_.at(sim_.now() + gap, [this] { arrive(); });
}

}  // namespace psd
