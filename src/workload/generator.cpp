#include "workload/generator.hpp"

namespace psd {

RequestGenerator::RequestGenerator(Simulator& sim, Rng rng, ClassId cls,
                                   ArrivalVariant arrivals,
                                   SamplerVariant sizes, RequestSink& sink)
    : sim_(sim),
      rng_(rng),
      cls_(cls),
      arrivals_(std::move(arrivals)),
      sizes_(std::move(sizes)),
      sink_(sink) {}

double RequestGenerator::next_gap() {
  if (cursor_ == kBatch) {
    arrivals_.fill_interarrivals(rng_, gap_buf_.data(), kBatch);
    sizes_.sample_n(rng_, size_buf_.data(), kBatch);
    cursor_ = 0;
  }
  return gap_buf_[cursor_];
}

void RequestGenerator::start(Time origin) {
  cursor_ = kBatch;  // restart consumes a fresh block
  const Time first = origin + next_gap();
  if (stream_ == Simulator::kNoStream) {
    // Rank 0: a simultaneous arrival fires before any completion stream.
    stream_ = sim_.add_stream(
        first, [this](Time t) { return arrive(t); }, /*tie_rank=*/0);
  } else {
    sim_.set_stream_time(stream_, first);
  }
}

void RequestGenerator::stop() {
  if (stream_ != Simulator::kNoStream) {
    sim_.set_stream_time(stream_, kInf);
  }
}

Time RequestGenerator::arrive(Time now) {
  Request req;
  // Encode the class in the top bits so ids are unique across generators.
  req.id = (static_cast<RequestId>(cls_) << 48) | count_;
  req.cls = cls_;
  req.arrival = now;
  req.size = size_buf_[cursor_];
  ++cursor_;
  ++count_;
  sink_.submit(req);
  return now + next_gap();
}

}  // namespace psd
