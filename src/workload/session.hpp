// Session-based e-commerce workload (paper §2.2).
//
// A session is "a sequence of requests of different types made by a single
// customer during a single visit".  Sessions arrive as a Poisson stream; each
// session walks a finite state machine (home → browse → search → register →
// buy → exit); every visited state issues one request whose class and size
// distribution are state-specific, separated by exponential think times.
// States like "home entry" and "register" have near-constant service demand,
// which is what motivates the paper's M/D/1 special case (eq. 15).
#pragma once

#include <string>
#include <vector>

#include "dist/sampler.hpp"
#include "sim/simulator.hpp"
#include "workload/sink.hpp"

namespace psd {

struct SessionState {
  std::string label;
  ClassId cls = 0;          ///< Service class of requests issued here.
  DistSpec size;            ///< Request size distribution for this state.
  double think_mean = 1.0;  ///< Mean exponential think time before next state.
  /// Transition probabilities to each state; remaining mass = session ends.
  std::vector<double> next_prob;
};

struct SessionProfile {
  double session_rate = 0.1;  ///< Poisson arrival rate of new sessions.
  std::size_t entry_state = 0;
  std::vector<SessionState> states;

  /// Canonical 5-state storefront used by examples/benches:
  /// home(cls hi, det) → browse(BP) → search(BP) → register(det) → buy(det).
  static SessionProfile storefront(double session_rate);

  /// Expected number of visits to each state per session (absorbing-chain
  /// solve); used to convert session rate into per-class request rates.
  std::vector<double> expected_visits() const;

  /// Long-run request arrival rate per class implied by the profile.
  std::vector<double> class_request_rates(std::size_t num_classes) const;

  /// Per-class service-time distribution: the visit-weighted mixture of the
  /// state distributions mapped to each class.  Feeds the heterogeneous PSD
  /// allocator.
  std::vector<SamplerVariant> class_mixtures(std::size_t num_classes) const;
};

/// Drives session arrivals and state walks, emitting requests into a sink.
class SessionWorkload {
 public:
  SessionWorkload(Simulator& sim, Rng rng, SessionProfile profile,
                  RequestSink& sink);

  void start(Time origin);
  void stop();

  std::uint64_t sessions_started() const { return sessions_; }
  std::uint64_t requests_issued() const { return requests_; }

 private:
  void session_arrive();
  void visit_state(std::size_t state);
  void schedule_next_session();

  Simulator& sim_;
  Rng rng_;
  SessionProfile profile_;
  RequestSink& sink_;
  EventHandle next_session_;
  std::vector<SamplerVariant> dists_;  ///< Per-state samplers, by value.
  bool stopped_ = false;
  std::uint64_t sessions_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace psd
