// Consumer-side interface for generated requests; implemented by the server
// runtime and by trace recorders.
#pragma once

#include "workload/request.hpp"

namespace psd {

class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual void submit(Request req) = 0;
};

}  // namespace psd
