// Consumer-side interface for generated requests; implemented by the server
// runtime and by trace recorders.
#pragma once

#include "workload/request.hpp"

namespace psd {

class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// By reference: requests flow generator -> sink -> waiting queue at
  /// millions/sec, and Request is a 56-byte POD for which every by-value
  /// hop is a real memcpy.  The sink copies exactly once, where it stores.
  virtual void submit(const Request& req) = 0;
};

}  // namespace psd
