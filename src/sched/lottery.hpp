// Lottery scheduling (Waldspurger & Weihl, OSDI'94) over one shared
// processor: at every quantum boundary a backlogged class is drawn with
// probability proportional to its ticket count (= allocated rate), and its
// head-of-line request runs at full capacity for one quantum (preempt-resume
// at quantum grain).
//
// Proportional share holds in expectation; the quantum length trades
// scheduling overhead against allocation variance (ablation A1).
#pragma once

#include "sched/backend.hpp"

namespace psd {

class LotteryBackend final : public SchedulerBackend {
 public:
  /// `quantum`: processor time slice per lottery draw (simulator time).
  explicit LotteryBackend(Duration quantum);

  void attach(Simulator& sim, std::vector<WaitingQueue>& queues,
              double capacity, Rng rng, CompletionFn on_complete) override;
  void set_rates(const std::vector<double>& rates) override;
  void notify_arrival(ClassId cls) override;
  std::string name() const override { return "lottery"; }
  std::size_t in_service() const override { return running_ ? 1 : 0; }

  Duration quantum() const { return quantum_; }

 private:
  struct PerClass {
    bool has_partial = false;  ///< A preempted request is parked here.
    Request partial;
    Work remaining = 0.0;
  };

  void draw_and_run();
  void quantum_end(ClassId cls, Duration ran);

  Duration quantum_;
  Simulator* sim_ = nullptr;
  std::vector<WaitingQueue>* queues_ = nullptr;
  CompletionFn on_complete_;
  double capacity_ = 1.0;
  Rng rng_{0};
  std::vector<double> tickets_;
  std::vector<PerClass> state_;
  bool running_ = false;
};

}  // namespace psd
