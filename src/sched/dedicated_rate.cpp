#include "sched/dedicated_rate.hpp"

#include "common/error.hpp"

namespace psd {

namespace {
// A paused class (rate ~ 0) never completes; keep a tiny floor so the
// completion time stays finite and the event heap stays sane.
constexpr double kMinRate = 1e-9;
}  // namespace

DedicatedRateBackend::DedicatedRateBackend(RateChangePolicy policy)
    : policy_(policy) {}

void DedicatedRateBackend::attach(Simulator& sim,
                                  std::vector<WaitingQueue>& queues,
                                  double capacity, Rng /*rng*/,
                                  CompletionFn on_complete) {
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  sim_ = &sim;
  queues_ = &queues;
  on_complete_ = std::move(on_complete);
  const std::size_t n = queues.size();
  slots_.resize(n);
  // Until the allocator runs, split capacity evenly.
  rates_.assign(n, capacity / static_cast<double>(n));
  // One completion stream per class, idle until service starts.  Rank 1:
  // at equal times, generator arrival streams (rank 0) fire first, matching
  // the legacy schedule order of arrival-before-completion.
  for (ClassId cls = 0; cls < n; ++cls) {
    slots_[cls].stream = sim.add_stream(
        kInf, [this, cls](Time) { return complete(cls); }, /*tie_rank=*/1);
  }
}

std::size_t DedicatedRateBackend::in_service() const {
  std::size_t n = 0;
  for (const auto& s : slots_) n += s.busy ? 1 : 0;
  return n;
}

void DedicatedRateBackend::settle(ClassId cls) {
  Slot& s = slots_[cls];
  if (!s.busy) return;
  const Time now = sim_->now();
  s.remaining -= (now - s.last_settle) * rates_[cls];
  if (s.remaining < 0.0) s.remaining = 0.0;
  s.last_settle = now;
}

void DedicatedRateBackend::schedule_completion(ClassId cls) {
  Slot& s = slots_[cls];
  const double rate = std::max(rates_[cls], kMinRate);
  const Duration left = s.remaining / rate;
  s.completion_at = sim_->now() + left;
  sim_->set_stream_time(s.stream, s.completion_at);
}

void DedicatedRateBackend::set_rates(const std::vector<double>& rates) {
  PSD_REQUIRE(rates.size() == rates_.size(), "rate vector size mismatch");
  if (policy_ == RateChangePolicy::kFinishAtOldRate) {
    // Idle classes adopt the new rate now; busy classes keep their current
    // completion event and pick up the new rate at their next completion.
    pending_rates_ = rates;
    for (ClassId cls = 0; cls < rates.size(); ++cls) {
      if (!slots_[cls].busy) rates_[cls] = rates[cls];
    }
    return;
  }
  for (ClassId cls = 0; cls < rates.size(); ++cls) {
    settle(cls);
    rates_[cls] = rates[cls];
    if (slots_[cls].busy) schedule_completion(cls);  // moves the stream, O(1)
  }
}

void DedicatedRateBackend::notify_arrival(ClassId cls) {
  if (!slots_[cls].busy) start_service(cls);
}

void DedicatedRateBackend::start_service(ClassId cls) {
  auto& q = (*queues_)[cls];
  if (q.empty()) return;
  Slot& s = slots_[cls];
  PSD_CHECK(!s.busy, "start_service on busy task server");
  const Time now = sim_->now();
  s.current = q.pop(now);
  s.current.service_start = now;
  s.remaining = s.current.size;
  s.last_settle = now;
  s.busy = true;
  schedule_completion(cls);
}

Time DedicatedRateBackend::complete(ClassId cls) {
  Slot& s = slots_[cls];
  PSD_CHECK(s.busy, "completion for idle task server");
  const Time now = sim_->now();
  Request done = std::move(s.current);
  done.departure = now;
  done.service_elapsed = now - done.service_start;
  s.busy = false;
  s.remaining = 0.0;
  s.completion_at = kInf;
  if (policy_ == RateChangePolicy::kFinishAtOldRate && !pending_rates_.empty()) {
    rates_[cls] = pending_rates_[cls];
  }
  on_complete_(std::move(done));
  start_service(cls);  // refreshes completion_at when the queue is non-empty
  return s.completion_at;
}

}  // namespace psd
