// Non-preemptive priority scheduling over one shared processor, hosting the
// time-dependent-priority PDD baselines from the literature (Dovrolis et al.):
//
//   WTP (waiting-time priority):  p_i(t) = w_i(t) / delta_i, where w_i(t) is
//       the head-of-line waiting time of class i;
//   PAD (proportional average delay): p_i(t) = Dbar_i / delta_i, where Dbar_i
//       is the running average queueing delay of class i's served requests —
//       serve the class *furthest below* its proportional share, i.e. the
//       one with minimum normalized average delay... (PAD serves the class
//       whose normalized average delay is smallest relative to the target,
//       implemented as maximizing the deficit);
//   HPD (hybrid): g * WTP + (1 - g) * PAD.
//
// These schedulers differentiate *queueing delay*.  The paper's §5 argues
// they cannot provide proportional *slowdown* differentiation because they
// never look at service times; ablation A3 demonstrates that.
#pragma once

#include <memory>

#include "sched/backend.hpp"

namespace psd {

/// Strategy for choosing which backlogged class to serve next.
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;

  /// Score for a backlogged class; the largest score is served next.
  /// `hol_wait` is the current waiting time of the class's oldest request;
  /// `avg_delay` is the running mean queueing delay of completed requests.
  virtual double score(ClassId cls, Duration hol_wait,
                       double avg_delay) const = 0;

  virtual std::string name() const = 0;
};

class WtpPolicy final : public PriorityPolicy {
 public:
  explicit WtpPolicy(std::vector<double> deltas);
  double score(ClassId cls, Duration hol_wait, double avg_delay) const override;
  std::string name() const override { return "wtp"; }

 private:
  std::vector<double> deltas_;
};

class PadPolicy final : public PriorityPolicy {
 public:
  explicit PadPolicy(std::vector<double> deltas);
  double score(ClassId cls, Duration hol_wait, double avg_delay) const override;
  std::string name() const override { return "pad"; }

 private:
  std::vector<double> deltas_;
};

class HpdPolicy final : public PriorityPolicy {
 public:
  /// g in [0,1]: weight of the WTP term.
  HpdPolicy(std::vector<double> deltas, double g);
  double score(ClassId cls, Duration hol_wait, double avg_delay) const override;
  std::string name() const override { return "hpd"; }

 private:
  WtpPolicy wtp_;
  PadPolicy pad_;
  double g_;
};

/// Strict priority: class 0 always first (the Almeida et al. scheme the paper
/// cites as failing controllability).
class StrictPolicy final : public PriorityPolicy {
 public:
  explicit StrictPolicy(std::size_t num_classes);
  double score(ClassId cls, Duration hol_wait, double avg_delay) const override;
  std::string name() const override { return "strict"; }

 private:
  std::size_t n_;
};

class PriorityBackend final : public SchedulerBackend {
 public:
  explicit PriorityBackend(std::unique_ptr<PriorityPolicy> policy);

  void attach(Simulator& sim, std::vector<WaitingQueue>& queues,
              double capacity, Rng rng, CompletionFn on_complete) override;
  void set_rates(const std::vector<double>& rates) override;  // ignored
  void notify_arrival(ClassId cls) override;
  std::string name() const override;
  std::size_t in_service() const override { return busy_ ? 1 : 0; }

 private:
  void dispatch();
  void complete();

  std::unique_ptr<PriorityPolicy> policy_;
  Simulator* sim_ = nullptr;
  std::vector<WaitingQueue>* queues_ = nullptr;
  CompletionFn on_complete_;
  double capacity_ = 1.0;
  bool busy_ = false;
  Request current_;
  // Running average queueing delay per class (for PAD/HPD).
  std::vector<double> delay_sum_;
  std::vector<std::uint64_t> delay_count_;
};

}  // namespace psd
