// Scheduling backend interface: how the server's processing capacity is
// turned into per-class service.
//
// The paper assumes capacity "can be proportionally allocated to a number of
// task servers" via GPS / PGPS / lottery scheduling; the backends here make
// that assumption concrete at different fidelities:
//   * DedicatedRateBackend — the paper's model: class i is a private fluid
//     server of rate r_i (strict partition, non-work-conserving).
//   * SfqBackend — start-time fair queueing over one shared processor
//     (packet-by-packet GPS, work-conserving).
//   * LotteryBackend — quantum-based randomized proportional share.
//   * PriorityBackend — non-preemptive priority policies (hosts the WTP/PAD/
//     HPD delay-differentiation baselines, which ignore rates entirely).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "server/waiting_queue.hpp"
#include "sim/simulator.hpp"

namespace psd {

/// Invoked exactly once per request at completion; the request has
/// service_start, departure and service_elapsed filled in.  A non-allocating
/// delegate (see sim/delegate.hpp): completion observers capture at most a
/// few pointers.
using CompletionFn = InlineFunction<void(Request&&)>;

class SchedulerBackend {
 public:
  virtual ~SchedulerBackend() = default;

  /// Wire the backend to its runtime.  Called once before any arrival.
  /// `queues` outlives the backend; `capacity` is the server's total rate.
  virtual void attach(Simulator& sim, std::vector<WaitingQueue>& queues,
                      double capacity, Rng rng, CompletionFn on_complete) = 0;

  /// Install new absolute per-class rates (sum <= capacity).  Backends that
  /// share one processor interpret them as weights.
  virtual void set_rates(const std::vector<double>& rates) = 0;

  /// A request for `cls` was just pushed to queues[cls].
  virtual void notify_arrival(ClassId cls) = 0;

  virtual std::string name() const = 0;

  /// Work still in progress (for drain diagnostics); default 0.
  virtual std::size_t in_service() const = 0;
};

}  // namespace psd
