#include "sched/sfq.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

namespace {
constexpr double kMinWeight = 1e-9;
}

void SfqBackend::attach(Simulator& sim, std::vector<WaitingQueue>& queues,
                        double capacity, Rng /*rng*/,
                        CompletionFn on_complete) {
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  sim_ = &sim;
  queues_ = &queues;
  capacity_ = capacity;
  on_complete_ = std::move(on_complete);
  const std::size_t n = queues.size();
  weights_.assign(n, 1.0 / static_cast<double>(n));
  last_finish_.assign(n, 0.0);
  hol_.resize(n);
  hol_valid_.assign(n, false);
}

void SfqBackend::set_rates(const std::vector<double>& rates) {
  PSD_REQUIRE(rates.size() == weights_.size(), "rate vector size mismatch");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    weights_[i] = std::max(rates[i], kMinWeight);
  }
}

void SfqBackend::notify_arrival(ClassId cls) {
  // Tag the head-of-line request if the class had none tagged yet.
  if (!hol_valid_[cls] && !(*queues_)[cls].empty()) {
    Tagged t;
    t.req = (*queues_)[cls].pop(sim_->now());
    t.start_tag = std::max(vtime_, last_finish_[cls]);
    last_finish_[cls] = t.start_tag + t.req.size / weights_[cls];
    hol_[cls] = std::move(t);
    hol_valid_[cls] = true;
  }
  if (!busy_) dispatch();
}

void SfqBackend::dispatch() {
  // Pick the tagged head-of-line request with minimum start tag.
  std::size_t best = hol_.size();
  for (std::size_t i = 0; i < hol_.size(); ++i) {
    if (!hol_valid_[i]) continue;
    if (best == hol_.size() || hol_[i].start_tag < hol_[best].start_tag) {
      best = i;
    }
  }
  if (best == hol_.size()) return;  // all idle

  Tagged t = std::move(hol_[best]);
  hol_valid_[best] = false;
  vtime_ = t.start_tag;

  // Promote the next queued request of that class to tagged HOL.
  auto& q = (*queues_)[best];
  if (!q.empty()) {
    Tagged nt;
    nt.req = q.pop(sim_->now());
    nt.start_tag = std::max(vtime_, last_finish_[best]);
    last_finish_[best] = nt.start_tag + nt.req.size / weights_[best];
    hol_[best] = std::move(nt);
    hol_valid_[best] = true;
  }

  busy_ = true;
  current_ = std::move(t.req);
  current_.service_start = sim_->now();
  const Duration service = current_.size / capacity_;
  sim_->after_fast(service, [this] { complete(); });
}

void SfqBackend::complete() {
  PSD_CHECK(busy_, "completion while idle");
  const Time now = sim_->now();
  Request done = std::move(current_);
  done.departure = now;
  done.service_elapsed = now - done.service_start;
  busy_ = false;
  on_complete_(std::move(done));
  dispatch();
}

}  // namespace psd
