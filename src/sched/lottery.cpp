#include "sched/lottery.hpp"

#include "common/error.hpp"

namespace psd {

LotteryBackend::LotteryBackend(Duration quantum) : quantum_(quantum) {
  PSD_REQUIRE(quantum > 0.0, "quantum must be positive");
}

void LotteryBackend::attach(Simulator& sim, std::vector<WaitingQueue>& queues,
                            double capacity, Rng rng,
                            CompletionFn on_complete) {
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  sim_ = &sim;
  queues_ = &queues;
  capacity_ = capacity;
  rng_ = rng;
  on_complete_ = std::move(on_complete);
  const std::size_t n = queues.size();
  tickets_.assign(n, 1.0);
  state_.resize(n);
}

void LotteryBackend::set_rates(const std::vector<double>& rates) {
  PSD_REQUIRE(rates.size() == tickets_.size(), "rate vector size mismatch");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    tickets_[i] = std::max(rates[i], 0.0);
  }
}

void LotteryBackend::notify_arrival(ClassId /*cls*/) {
  if (!running_) draw_and_run();
}

void LotteryBackend::draw_and_run() {
  // Collect backlogged classes (partial request parked or queue non-empty).
  double total = 0.0;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_[i].has_partial || !(*queues_)[i].empty()) {
      total += tickets_[i] > 0.0 ? tickets_[i] : 1e-12;
    }
  }
  if (total <= 0.0) return;  // nothing backlogged

  double pick = rng_.uniform01() * total;
  std::size_t winner = state_.size();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (!(state_[i].has_partial || !(*queues_)[i].empty())) continue;
    const double t = tickets_[i] > 0.0 ? tickets_[i] : 1e-12;
    winner = i;
    if (pick < t) break;
    pick -= t;
  }
  PSD_CHECK(winner < state_.size(), "lottery draw failed");

  auto& st = state_[winner];
  const Time now = sim_->now();
  if (!st.has_partial) {
    st.partial = (*queues_)[winner].pop(now);
    st.partial.service_start = now;
    st.remaining = st.partial.size;
    st.has_partial = true;
  }
  const Duration need = st.remaining / capacity_;
  const Duration ran = std::min(need, quantum_);
  running_ = true;
  const ClassId cls = static_cast<ClassId>(winner);
  sim_->after_fast(ran, [this, cls, ran] { quantum_end(cls, ran); });
}

void LotteryBackend::quantum_end(ClassId cls, Duration ran) {
  auto& st = state_[cls];
  PSD_CHECK(st.has_partial, "quantum end without a running request");
  st.remaining -= ran * capacity_;
  st.partial.service_elapsed += ran;
  running_ = false;
  if (st.remaining <= 1e-12) {
    Request done = std::move(st.partial);
    done.departure = sim_->now();
    st.has_partial = false;
    st.remaining = 0.0;
    on_complete_(std::move(done));
  }
  draw_and_run();
}

}  // namespace psd
