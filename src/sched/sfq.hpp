// Start-time Fair Queueing (Goyal, Vin & Cheng 1996) — a practical
// packet-by-packet approximation of GPS over one shared processor.
//
// Contrasts with the paper's strict-partition task servers: SFQ is
// work-conserving (idle class capacity is redistributed), so achieved
// per-class rates exceed the nominal allocation whenever some class is idle.
// Ablation A1 measures how this distorts slowdown proportionality.
//
// Mechanics: request r of class i gets start tag S = max(V, F_i) and finish
// tag F_i = S + size / w_i, where V is the start tag of the request in
// service; the server picks the eligible head-of-line request with the
// minimum start tag (ties by class index). Non-preemptive at request grain,
// served at full capacity.
#pragma once

#include "sched/backend.hpp"

namespace psd {

class SfqBackend final : public SchedulerBackend {
 public:
  void attach(Simulator& sim, std::vector<WaitingQueue>& queues,
              double capacity, Rng rng, CompletionFn on_complete) override;
  void set_rates(const std::vector<double>& rates) override;
  void notify_arrival(ClassId cls) override;
  std::string name() const override { return "sfq"; }
  std::size_t in_service() const override { return busy_ ? 1 : 0; }

  double virtual_time() const { return vtime_; }

 private:
  struct Tagged {
    Request req;
    double start_tag = 0.0;
  };

  void dispatch();
  void complete();

  Simulator* sim_ = nullptr;
  std::vector<WaitingQueue>* queues_ = nullptr;
  CompletionFn on_complete_;
  double capacity_ = 1.0;
  std::vector<double> weights_;
  std::vector<double> last_finish_;  ///< F_i per class.
  // Tagged head-of-line view: tags are assigned when a request reaches the
  // head of its class queue (FCFS within class preserves the SFQ order).
  std::vector<Tagged> hol_;
  std::vector<bool> hol_valid_;
  bool busy_ = false;
  Request current_;
  double vtime_ = 0.0;
};

}  // namespace psd
