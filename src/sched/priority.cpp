#include "sched/priority.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

namespace {
void require_deltas(const std::vector<double>& deltas) {
  PSD_REQUIRE(!deltas.empty(), "need at least one delta");
  for (double d : deltas) PSD_REQUIRE(d > 0.0, "deltas must be positive");
}
}  // namespace

WtpPolicy::WtpPolicy(std::vector<double> deltas) : deltas_(std::move(deltas)) {
  require_deltas(deltas_);
}

double WtpPolicy::score(ClassId cls, Duration hol_wait,
                        double /*avg_delay*/) const {
  return hol_wait / deltas_[cls];
}

PadPolicy::PadPolicy(std::vector<double> deltas) : deltas_(std::move(deltas)) {
  require_deltas(deltas_);
}

double PadPolicy::score(ClassId cls, Duration /*hol_wait*/,
                        double avg_delay) const {
  // Serve the class whose normalized average delay is largest: it is the one
  // furthest *behind* its proportional-delay target.
  return avg_delay / deltas_[cls];
}

HpdPolicy::HpdPolicy(std::vector<double> deltas, double g)
    : wtp_(deltas), pad_(std::move(deltas)), g_(g) {
  PSD_REQUIRE(g >= 0.0 && g <= 1.0, "g must be in [0,1]");
}

double HpdPolicy::score(ClassId cls, Duration hol_wait, double avg_delay) const {
  return g_ * wtp_.score(cls, hol_wait, avg_delay) +
         (1.0 - g_) * pad_.score(cls, hol_wait, avg_delay);
}

StrictPolicy::StrictPolicy(std::size_t num_classes) : n_(num_classes) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
}

double StrictPolicy::score(ClassId cls, Duration /*hol_wait*/,
                           double /*avg_delay*/) const {
  // Higher classes (smaller index) always dominate.
  return static_cast<double>(n_ - cls);
}

PriorityBackend::PriorityBackend(std::unique_ptr<PriorityPolicy> policy)
    : policy_(std::move(policy)) {
  PSD_REQUIRE(policy_ != nullptr, "policy required");
}

void PriorityBackend::attach(Simulator& sim, std::vector<WaitingQueue>& queues,
                             double capacity, Rng /*rng*/,
                             CompletionFn on_complete) {
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  sim_ = &sim;
  queues_ = &queues;
  capacity_ = capacity;
  on_complete_ = std::move(on_complete);
  delay_sum_.assign(queues.size(), 0.0);
  delay_count_.assign(queues.size(), 0);
}

void PriorityBackend::set_rates(const std::vector<double>& /*rates*/) {
  // Priority policies are rate-oblivious by design.
}

void PriorityBackend::notify_arrival(ClassId /*cls*/) {
  if (!busy_) dispatch();
}

std::string PriorityBackend::name() const {
  return "priority-" + policy_->name();
}

void PriorityBackend::dispatch() {
  const Time now = sim_->now();
  std::size_t best = queues_->size();
  double best_score = 0.0;
  for (std::size_t i = 0; i < queues_->size(); ++i) {
    auto& q = (*queues_)[i];
    if (q.empty()) continue;
    const Duration wait = now - q.front().arrival;
    const double avg = delay_count_[i]
                           ? delay_sum_[i] / static_cast<double>(delay_count_[i])
                           : 0.0;
    const double s = policy_->score(static_cast<ClassId>(i), wait, avg);
    if (best == queues_->size() || s > best_score) {
      best = i;
      best_score = s;
    }
  }
  if (best == queues_->size()) return;

  busy_ = true;
  current_ = (*queues_)[best].pop(now);
  current_.service_start = now;
  delay_sum_[best] += current_.delay();
  ++delay_count_[best];
  const Duration service = current_.size / capacity_;
  sim_->after_fast(service, [this] { complete(); });
}

void PriorityBackend::complete() {
  PSD_CHECK(busy_, "completion while idle");
  const Time now = sim_->now();
  Request done = std::move(current_);
  done.departure = now;
  done.service_elapsed = now - done.service_start;
  busy_ = false;
  on_complete_(std::move(done));
  dispatch();
}

}  // namespace psd
