// The paper's task-server model: each class owns a private fluid server of
// rate r_i.  Strict partition — idle capacity of one class is NOT lent to
// another (non-work-conserving), exactly matching the M/G_B/1-per-class
// analysis of Theorem 1.
//
// Rate changes take effect immediately: the in-service request's remaining
// work is settled at the old rate and its completion is rescheduled at the
// new rate (RateChangePolicy::kRescaleRemaining, default).  The alternative
// kFinishAtOldRate lets the current request finish untouched, applying the
// new rate from the next request on.
#pragma once

#include "sched/backend.hpp"

namespace psd {

enum class RateChangePolicy { kRescaleRemaining, kFinishAtOldRate };

class DedicatedRateBackend final : public SchedulerBackend {
 public:
  explicit DedicatedRateBackend(
      RateChangePolicy policy = RateChangePolicy::kRescaleRemaining);

  void attach(Simulator& sim, std::vector<WaitingQueue>& queues,
              double capacity, Rng rng, CompletionFn on_complete) override;
  void set_rates(const std::vector<double>& rates) override;
  void notify_arrival(ClassId cls) override;
  std::string name() const override { return "dedicated-rate"; }
  std::size_t in_service() const override;

  const std::vector<double>& rates() const { return rates_; }

 private:
  struct Slot {
    bool busy = false;
    Request current;
    Work remaining = 0.0;     ///< Work left at full capacity units.
    Time last_settle = 0.0;   ///< Last time `remaining` was updated.
    Time completion_at = kInf;  ///< Scheduled completion time of `current`.
    /// Per-class completion timeline.  A class has at most one pending
    /// completion, so it rides a simulator stream: rate changes move the
    /// stream's fire time in O(1) instead of cancelling and rescheduling
    /// through the event heap.
    Simulator::StreamId stream = Simulator::kNoStream;
  };

  void start_service(ClassId cls);
  void settle(ClassId cls);
  void schedule_completion(ClassId cls);
  /// Stream callback: completes the in-service request and returns the next
  /// completion time for the class (kInf when it goes idle).
  Time complete(ClassId cls);

  RateChangePolicy policy_;
  Simulator* sim_ = nullptr;
  std::vector<WaitingQueue>* queues_ = nullptr;
  CompletionFn on_complete_;
  std::vector<double> rates_;
  std::vector<double> pending_rates_;  ///< kFinishAtOldRate: rates to adopt.
  std::vector<Slot> slots_;
};

}  // namespace psd
