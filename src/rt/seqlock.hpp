// Seqlock-published snapshots: read runtime metrics without stopping the
// world.
//
// Each shard (and the controller) owns one Seqlock<T> and republishes its
// trivially-copyable snapshot struct after every drain/tick; any thread may
// read at any moment and either gets a torn-free copy or retries.  Writers
// never block on readers and readers never block writers — the monitoring
// path costs the shard ~a hundred relaxed stores per drain, independent of
// how many observers poll.
//
// The payload is staged through an array of relaxed std::atomic<uint64_t>
// words rather than a raw memcpy: the classic raw-memory seqlock is a data
// race by the letter of the memory model, and ThreadSanitizer rightly flags
// it.  Word-atomic staging keeps the races out of the program entirely (the
// sequence counter still orders the words), so the rt tests run clean under
// -fsanitize=thread with no suppressions.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace psd::rt {

template <typename T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "seqlock payloads must be trivially copyable");

 public:
  Seqlock() { publish(T{}); }

  /// Single writer only.
  void publish(const T& value) {
    std::uint64_t staged[kWords] = {};
    std::memcpy(staged, &value, sizeof(T));
    const std::uint32_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i) {
      words_[i].store(staged[i], std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);
  }

  /// Any thread; loops until it observes an even, unchanged sequence.
  T read() const {
    std::uint64_t staged[kWords];
    for (;;) {
      const std::uint32_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1u) continue;
      for (std::size_t i = 0; i < kWords; ++i) {
        staged[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) break;
    }
    T out;
    std::memcpy(&out, staged, sizeof(T));
    return out;
  }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint64_t> words_[kWords];
};

}  // namespace psd::rt
