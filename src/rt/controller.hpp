// The runtime's reallocation loop, lifted out of the simulated server and
// onto its own (wall-clock) cadence.
//
// Every tick the controller reads each shard's seqlock snapshot — live
// LoadEstimator arrival rates plus last-window slowdowns — aggregates them
// into a cluster-wide view, re-runs the PSD rate allocator (eq. 17, or its
// adaptive feedback extension) against the TOTAL capacity, and hands each
// shard an equal slice of the result.  Slices are equal because the load
// generators spray classes round-robin across shards, so per-shard class
// mixes converge to the global mix; shard imbalance beyond that is exactly
// the kind of scenario the rt runtime exists to expose.
//
// tick() is plain and synchronous: the threaded Runtime calls it from a
// periodic thread, deterministic tests call it directly under a ManualClock.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/adaptive_psd.hpp"
#include "experiment/scenario.hpp"
#include "rt/shard.hpp"

namespace psd::rt {

struct ControllerConfig {
  std::vector<double> delta;
  double total_capacity = 1.0;  ///< Sum of shard capacities (work/sec).
  double mean_size = 1.0;       ///< E[X] of the service-time distribution.
  AllocatorKind allocator = AllocatorKind::kAdaptivePsd;
  AdaptiveConfig adaptive;
  double rho_max = 0.98;
  double min_residual_share = 1e-3;
  /// Shards carry admission gates: aggregate their OFFERED-load estimates
  /// each tick and stage a cluster-wide per-shard update (shards call
  /// gate->update() on their own threads) once per estimation window.
  bool admission = false;
  /// Record a per-tick decision trace (obs layer); bounded ring below.
  bool trace = false;
  std::size_t trace_capacity = 512;
  /// Arm the tick/allocate self-profiling timers.
  bool profile = false;
};

/// One reallocation decision: everything the allocator saw and produced.
/// With these, convergence and rebalance transients replay offline — the
/// exporter streams the ring into the stats JSONL.
struct ControllerTraceEntry {
  double time = 0.0;
  std::uint64_t tick = 0;       ///< Monotone; doubles as the trace cursor.
  bool reallocated = false;     ///< False on cold-start ticks (no lambda).
  bool fresh_window = false;    ///< Slowdown feedback was integrated.
  std::uint32_t num_classes = 0;
  double lambda[kMaxRtClasses] = {};           ///< Aggregated arrivals/sec.
  double window_slowdown[kMaxRtClasses] = {};  ///< Cross-shard window mean.
  double rate_in[kMaxRtClasses] = {};          ///< Rates before allocate().
  double rate_out[kMaxRtClasses] = {};         ///< Rates after (== in when
                                               ///< not reallocated).
};

struct ControllerSnapshot {
  double time = 0.0;
  std::uint32_t num_classes = 0;
  std::uint32_t pad = 0;
  std::uint64_t ticks = 0;
  std::uint64_t allocations = 0;  ///< Ticks that produced new rates.
  double lambda[kMaxRtClasses] = {};  ///< Aggregated arrivals/sec estimate.
  double rate[kMaxRtClasses] = {};    ///< Current GLOBAL rates (all shards).
  double window_slowdown[kMaxRtClasses] = {};  ///< Cross-shard mean.
};

class Controller {
 public:
  /// `shards` are borrowed and must outlive the controller.
  Controller(ControllerConfig cfg, std::vector<Shard*> shards);

  /// Aggregate estimates, reallocate, push rates to every shard.  Called
  /// from exactly one thread at a time.
  void tick(Time now);

  /// Any thread.
  ControllerSnapshot snapshot() const { return snap_.read(); }

  /// Drain trace entries with tick > `*cursor` (any thread; the ring is
  /// mutex-guarded — tick() appends at ~20 Hz, readers poll slower).
  /// Advances `*cursor` to the newest tick returned.  Empty unless
  /// cfg.trace.
  std::vector<ControllerTraceEntry> trace_since(std::uint64_t* cursor) const;

  std::string allocator_name() const;

  obs::ProfTable& prof() { return prof_; }

 private:
  ControllerConfig cfg_;
  std::vector<Shard*> shards_;
  std::unique_ptr<RateAllocator> allocator_;  ///< Null for kNone.
  /// Last window_seq seen, per (shard, class) — feedback from a class is
  /// integrated only when its metrics window genuinely advanced.
  std::vector<std::uint64_t> windows_seen_;
  /// Sum of shard estimator windows_closed at the last staged admission
  /// update — gate decisions latch per estimation window, not per tick.
  std::uint64_t admission_windows_seen_ = 0;
  std::vector<double> rates_;                 ///< Global (summed) rates.
  std::uint64_t ticks_ = 0;
  std::uint64_t allocations_ = 0;
  Seqlock<ControllerSnapshot> snap_;

  // Decision trace: bounded ring, oldest entries evicted.  A mutex (not a
  // seqlock) because the payload is a variable-length backlog and the
  // exchange is off every hot path.
  mutable std::mutex trace_m_;
  std::deque<ControllerTraceEntry> trace_;
  obs::ProfTable prof_;
};

}  // namespace psd::rt
