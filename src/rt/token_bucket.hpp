// Deficit token bucket: per-class work-rate policing at the shard boundary.
//
// The controller's psd_allocation output is a work consumption rate r_c per
// class (work units per second).  The shard's dispatcher releases a staged
// request of size s only while the class bucket is non-negative, then debits
// s — the bucket may go into deficit, which it pays off at `rate`, so a
// single request larger than the burst allowance delays its class instead of
// deadlocking it (the classic strict-bucket failure with heavy-tailed sizes,
// where one Bounded-Pareto giant can exceed any reasonable burst).
//
// Long-run admitted work rate converges to `rate`; `burst` bounds how much
// unused allowance a quiet class can bank.  Owned and used by exactly one
// shard thread — no synchronization here.
#pragma once

#include <algorithm>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd::rt {

class TokenBucket {
 public:
  TokenBucket() = default;

  /// `rate`: tokens (work units) accrued per second.  `burst`: cap on banked
  /// tokens.  Starts full so an idle class serves its first burst instantly.
  TokenBucket(double rate, double burst, Time now)
      : rate_(rate), burst_(burst), tokens_(burst), last_(now) {
    PSD_REQUIRE(rate >= 0.0, "token rate must be non-negative");
    PSD_REQUIRE(burst > 0.0, "burst must be positive");
  }

  /// Re-target the accrual rate (controller pushed a new allocation).
  /// Accrues at the old rate up to `now` first, so mid-window changes are
  /// exact; banked tokens and any deficit carry over.
  void set_rate(double rate, Time now) {
    PSD_REQUIRE(rate >= 0.0, "token rate must be non-negative");
    refill(now);
    rate_ = rate;
  }

  /// Release `amount` units of work if the bucket is currently non-negative
  /// (deficit semantics: the debit itself may push the level below zero).
  bool try_consume(double amount, Time now) {
    refill(now);
    if (tokens_ < 0.0) return false;
    tokens_ -= amount;
    return true;
  }

  double level(Time now) {
    refill(now);
    return tokens_;
  }

  double rate() const { return rate_; }

 private:
  void refill(Time now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_));
    last_ = now;
  }

  double rate_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 1.0;
  Time last_ = 0.0;
};

}  // namespace psd::rt
