#include "rt/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "dist/sampler.hpp"
#include "stats/convergence.hpp"
#include "workload/class_spec.hpp"

#ifdef __linux__
#include <pthread.h>
#endif

namespace psd::rt {

bool pin_current_thread(unsigned cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

double RtConfig::shard_capacity() const {
  return make_sampler(size_dist).mean() / mean_service_seconds;
}

std::vector<double> RtConfig::lambdas() const {
  std::vector<double> share = load_share;
  if (share.empty()) {
    share.assign(delta.size(), 1.0 / static_cast<double>(delta.size()));
  }
  // Utilization rho per shard means a TOTAL work arrival rate of
  // rho * shards * capacity, i.e. rho * shards / mean_service_seconds
  // requests per second, split by share.
  std::vector<double> out(delta.size());
  const double total =
      load * static_cast<double>(shards) / mean_service_seconds;
  for (std::size_t c = 0; c < delta.size(); ++c) out[c] = total * share[c];
  return out;
}

void RtConfig::validate() const {
  PSD_REQUIRE(!delta.empty() && delta.size() <= kMaxRtClasses,
              "need 1..kMaxRtClasses classes");
  for (std::size_t i = 0; i < delta.size(); ++i) {
    PSD_REQUIRE(delta[i] > 0.0, "delta must be positive");
    if (i > 0) {
      PSD_REQUIRE(delta[i] >= delta[i - 1], "delta must be non-decreasing");
    }
  }
  if (admission.active()) {
    // A gate makes beyond-capacity load a survivable, measured regime.
    PSD_REQUIRE(load > 0.0, "load must be positive");
  } else {
    PSD_REQUIRE(load > 0.0 && load < 1.0, "load must be in (0,1)");
  }
  admission.validate();
  if (!load_share.empty()) {
    PSD_REQUIRE(load_share.size() == delta.size(),
                "load_share size mismatch");
    const double sum =
        std::accumulate(load_share.begin(), load_share.end(), 0.0);
    PSD_REQUIRE(std::abs(sum - 1.0) < 1e-6, "load shares must sum to 1");
  }
  PSD_REQUIRE(mean_service_seconds > 0.0,
              "mean_service_seconds must be positive");
  PSD_REQUIRE(shards >= 1, "need at least one shard");
  PSD_REQUIRE(loadgens >= 1, "need at least one load generator");
  PSD_REQUIRE(controller_period > 0.0, "controller period must be positive");
  PSD_REQUIRE(warmup >= 0.0 && warmup < duration,
              "need warmup in [0, duration)");
  PSD_REQUIRE(bucket_burst_seconds > 0.0, "burst must be positive");
  if (arrivals.kind == ArrivalKind::kBursty) {
    PSD_REQUIRE(arrivals.burstiness >= 1.0, "burstiness must be >= 1");
    PSD_REQUIRE(arrivals.sojourn > 0.0, "mmpp sojourn must be positive");
    PSD_REQUIRE(arrivals.duty > 0.0 && arrivals.duty < 1.0,
                "mmpp duty must be in (0,1)");
  }
  profile.validate();
  PSD_REQUIRE(converge_tol > 0.0, "convergence tolerance must be positive");
}

void Runtime::build_shards(double shard_capacity) {
  Rng master(cfg_.seed);
  ShardConfig sc;
  sc.num_classes = cfg_.num_classes();
  sc.capacity = shard_capacity;
  sc.window = cfg_.controller_period;
  sc.estimator_history = cfg_.estimator_history;
  sc.warmup = cfg_.warmup;
  sc.bucket_burst_seconds = cfg_.bucket_burst_seconds;
  sc.ingress_capacity = cfg_.ingress_capacity;
  sc.telemetry = cfg_.obs.enabled;
  sc.profile = cfg_.obs.profile;
  sc.telemetry_sample_period = cfg_.obs.sample_period;
  // Publish at least as often as the exporter samples, so a fast
  // --stats-interval never reads a stale snapshot twice.
  sc.telemetry_publish_interval =
      std::min(sc.telemetry_publish_interval, cfg_.obs.stats_interval);
  sc.tracing = cfg_.obs.tracing();
  sc.trace_sample_period = cfg_.obs.trace_sample_period;
  sc.span_ring_capacity = cfg_.obs.span_ring_capacity;
  shards_.reserve(cfg_.shards);
  const SamplerVariant dist = make_sampler(cfg_.size_dist);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    sc.shard_id = static_cast<std::uint32_t>(i);
    shards_.push_back(std::make_unique<Shard>(sc, master.fork(9000 + i)));
    if (cfg_.admission.active()) {
      // One gate per shard, sized at shard capacity — gate state stays
      // shard-thread-private; the controller only stages estimates.
      shards_.back()->set_admission(
          make_admission(cfg_.admission, cfg_.delta, dist, shard_capacity));
    }
  }
}

std::vector<Shard*> Runtime::shard_ptrs() {
  std::vector<Shard*> ptrs;
  ptrs.reserve(shards_.size());
  for (auto& s : shards_) ptrs.push_back(s.get());
  return ptrs;
}

SamplerVariant Runtime::init_topology() {
  cfg_.validate();
  const SamplerVariant sampler = make_sampler(cfg_.size_dist);
  const double capacity = cfg_.shard_capacity();
  build_shards(capacity);

  ControllerConfig cc;
  cc.delta = cfg_.delta;
  cc.total_capacity = capacity * static_cast<double>(cfg_.shards);
  cc.mean_size = sampler.mean();
  cc.allocator = cfg_.allocator;
  cc.adaptive = cfg_.adaptive;
  cc.rho_max = cfg_.rho_max;
  cc.min_residual_share = cfg_.min_residual_share;
  cc.admission = cfg_.admission.active();
  cc.trace = cfg_.obs.enabled;
  cc.trace_capacity = cfg_.obs.trace_capacity;
  cc.profile = cfg_.obs.profile;
  controller_ = std::make_unique<Controller>(std::move(cc), shard_ptrs());
  return sampler;
}

void Runtime::init_exporter() {
  if (!cfg_.obs.wants_exporter()) return;
  std::vector<LoadSource*> gen_ptrs;
  gen_ptrs.reserve(gens_.size());
  for (auto& g : gens_) gen_ptrs.push_back(g.get());
  exporter_ = std::make_unique<obs::StatsExporter>(
      cfg_.obs, shard_ptrs(), controller_.get(), std::move(gen_ptrs),
      clock_.is_manual());
  next_sample_ = cfg_.obs.stats_interval;
  if (!cfg_.obs.slo_rules.empty()) {
    obs::WatchdogConfig wc;
    wc.rules = cfg_.obs.slo_rules;
    wc.delta = cfg_.delta;
    wc.settle_band = cfg_.converge_tol;
    // Cold windows would trip goodput floors before any completion can
    // exist; rules arm when metrics do.
    wc.arm_time = cfg_.warmup;
    wc.cooldown = cfg_.obs.slo_cooldown;
    wc.flight_prefix = cfg_.obs.flight_prefix;
    watchdog_ = std::make_unique<obs::Watchdog>(std::move(wc), shard_ptrs(),
                                                controller_.get());
    exporter_->attach_watchdog(watchdog_.get());
  }
}

Runtime::Runtime(RtConfig cfg, ClockVariant clock)
    : cfg_(std::move(cfg)),
      clock_(std::move(clock)),
      next_tick_(cfg_.controller_period) {
  const SamplerVariant sampler = init_topology();
  const auto lam = cfg_.lambdas();
  const double inv_gens = 1.0 / static_cast<double>(cfg_.loadgens);
  Rng master(cfg_.seed);
  for (std::size_t g = 0; g < cfg_.loadgens; ++g) {
    std::vector<SyntheticLoadGen::ClassLoad> classes;
    classes.reserve(cfg_.num_classes());
    for (std::size_t c = 0; c < cfg_.num_classes(); ++c) {
      // Stationary default stays the bare Poisson construction (identical
      // draw streams at a fixed seed); MMPP shapes and load profiles route
      // through the workload factory.  Each generator thread carries its
      // own thinned stream at rate/loadgens — the superposition still
      // tracks the profile on the wall clock.
      if (cfg_.arrivals.kind == ArrivalKind::kPoisson &&
          !cfg_.profile.active()) {
        classes.push_back({static_cast<ClassId>(c),
                           PoissonArrivals(lam[c] * inv_gens), sampler});
      } else {
        classes.push_back({static_cast<ClassId>(c),
                           make_arrivals(cfg_.arrivals, lam[c] * inv_gens,
                                         cfg_.profile),
                           sampler});
      }
    }
    gens_.push_back(std::make_unique<SyntheticLoadGen>(
        static_cast<std::uint32_t>(g), master.fork(100 + g),
        std::move(classes), shard_ptrs(), 0.0));
  }
  init_exporter();
}

Runtime::Runtime(RtConfig cfg, ClockVariant clock, Trace trace,
                 double time_scale)
    : cfg_(std::move(cfg)),
      clock_(std::move(clock)),
      next_tick_(cfg_.controller_period) {
  init_topology();
  gens_.push_back(std::make_unique<TraceLoadGen>(
      std::move(trace), time_scale, cfg_.num_classes(), shard_ptrs()));
  init_exporter();
}

Runtime::Runtime(RtConfig cfg, ClockVariant clock, EmbeddedTag)
    : cfg_(std::move(cfg)),
      clock_(std::move(clock)),
      next_tick_(cfg_.controller_period) {
  init_topology();
  init_exporter();
}

std::uint64_t Runtime::total_outstanding() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->outstanding();
  return n;
}

void Runtime::step_to(Time t) {
  ManualClock* mc = clock_.manual();
  PSD_REQUIRE(mc != nullptr, "step_to requires a ManualClock");
  PSD_REQUIRE(!ran_, "step_to cannot mix with a threaded run()");
  mc->advance_to(t);
  // Load stops at cfg.duration in both drive modes (threaded run() stops
  // its generator threads there); quiesce steps beyond it to drain.
  const Time gen_horizon = std::min(t, cfg_.duration);
  for (auto& g : gens_) g->step_until(gen_horizon);
  for (auto& s : shards_) s->drain(t);
  while (next_tick_ <= t) {
    controller_->tick(next_tick_);
    next_tick_ += cfg_.controller_period;
  }
  // Deterministic exporter drive: samples land on the fixed interval grid
  // with manual-clock timestamps, so repeated runs emit identical bytes.
  if (exporter_ != nullptr && exporter_->sampling_active()) {
    while (next_sample_ <= t) {
      exporter_->sample(next_sample_);
      next_sample_ += cfg_.obs.stats_interval;
    }
  }
}

void Runtime::quiesce(Duration max_extra, Duration step) {
  PSD_REQUIRE(clock_.is_manual(), "quiesce requires a ManualClock");
  // Load generation is over: the SLO watchdog must not alarm on windows
  // that close over the draining backlog.
  if (watchdog_ != nullptr) watchdog_->disarm();
  Time t = clock_.now();
  const Time limit = t + max_extra;
  while (total_outstanding() > 0 && t < limit) {
    t = std::min(t + step, limit);
    step_to(t);
  }
}

void Runtime::finish() {
  if (finalized_) return;
  finalized_ = true;
  const Time now = clock_.now();
  for (auto& s : shards_) s->finalize(now);
  // After the final drains: pull the span rings dry and write the trace
  // footer, so spans emitted between the last sample and shutdown land in
  // the file and it is loadable even for runs shorter than one interval.
  if (exporter_ != nullptr) exporter_->final_flush(now);
}

RtReport Runtime::run() {
  PSD_REQUIRE(!ran_ && !finalized_, "run() is one-shot");
  PSD_REQUIRE(!clock_.is_manual(),
              "run() spins wall-clock threads; use step_to with ManualClock");
  ran_ = true;

  // Bind the metrics listener BEFORE any worker thread exists: a bound
  // port or socket failure must surface as a clean startup exception, and
  // throwing with joinable std::threads alive would std::terminate.
  if (exporter_ != nullptr) exporter_->start_http();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::atomic<bool> stop_gen{false};
  std::atomic<bool> stop_rest{false};
  std::vector<std::thread> threads;
  threads.reserve(shards_.size() + gens_.size() + 1);

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, hw, &stop_rest] {
      if (cfg_.pin_threads) pin_current_thread(static_cast<unsigned>(i % hw));
      Shard& sh = *shards_[i];
      while (!stop_rest.load(std::memory_order_acquire)) {
        if (sh.drain(clock_.now()) == 0) {
          // Nothing arrived: yield the core instead of spinning.  Latency
          // this adds lands in mean_ingress_wait, never in slowdowns (the
          // embedded simulator timestamps are exact).
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }
  for (std::size_t g = 0; g < gens_.size(); ++g) {
    threads.emplace_back([this, g, hw, &stop_gen] {
      if (cfg_.pin_threads) {
        pin_current_thread(
            static_cast<unsigned>((shards_.size() + g) % hw));
      }
      LoadSource& gen = *gens_[g];
      while (!stop_gen.load(std::memory_order_acquire)) {
        gen.step_until(clock_.now());
        const double dt = gen.next_time() - clock_.now();
        if (dt > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(dt, 1e-3)));
        }
      }
    });
  }
  threads.emplace_back([this, hw, &stop_rest] {
    if (cfg_.pin_threads) pin_current_thread(hw - 1);
    Time next = next_tick_;
    while (!stop_rest.load(std::memory_order_acquire)) {
      const Time now = clock_.now();
      if (now >= next) {
        controller_->tick(now);
        next = now + cfg_.controller_period;
      }
      const double dt = next - clock_.now();
      if (dt > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(dt, 1e-3)));
      }
    }
  });
  if (exporter_ != nullptr) {
    if (exporter_->sampling_active()) {
      threads.emplace_back([this, &stop_rest] {
        Time next = next_sample_;
        while (!stop_rest.load(std::memory_order_acquire)) {
          const Time now = clock_.now();
          if (now >= next) {
            exporter_->sample(now);
            next = now + cfg_.obs.stats_interval;
          }
          const double dt = next - clock_.now();
          if (dt > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(std::min(dt, 1e-2)));
          }
        }
        // One closing sample so short runs always stream at least one line
        // covering the full workload.
        exporter_->sample(clock_.now());
      });
    }
  }

  // Let the workload run its course.
  while (clock_.now() < cfg_.duration) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(cfg_.duration - clock_.now(), 1e-2)));
  }
  stop_gen.store(true, std::memory_order_release);
  // The exporter thread keeps sampling through the grace period; the
  // watchdog must not alarm on drain-phase windows (see quiesce()).
  if (watchdog_ != nullptr) watchdog_->disarm();

  // Grace period: shards keep draining until the accepted backlog clears
  // (bounded — a near-zero-rate class paying off a token deficit may
  // legitimately never finish).
  const Time grace_end = clock_.now() + 2.0;
  while (clock_.now() < grace_end && total_outstanding() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop_rest.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  if (exporter_ != nullptr) exporter_->stop_http();

  run_elapsed_ = clock_.now();
  finish();
  return report();
}

RtReport Runtime::report() const {
  const std::size_t n = cfg_.num_classes();
  RtReport r;
  r.cls.resize(n);
  std::vector<double> sd_sum(n, 0.0);
  std::vector<std::uint64_t> sd_n(n, 0);
  std::vector<double> wait_sum(n, 0.0);
  std::vector<std::uint64_t> wait_n(n, 0);
  std::vector<std::uint64_t> accepted(n, 0);
  for (const auto& shard : shards_) {
    const ShardSnapshot snap = shard->snapshot();
    r.drains += snap.drains;
    for (std::size_t c = 0; c < n; ++c) {
      r.cls[c].shed += snap.sheds_cls[c];
      accepted[c] += snap.accepted[c];
      r.cls[c].completed += snap.completed[c];
      if (snap.completed[c] > 0 && std::isfinite(snap.mean_slowdown[c])) {
        sd_sum[c] += snap.mean_slowdown[c] *
                     static_cast<double>(snap.completed[c]);
        sd_n[c] += snap.completed[c];
      }
      if (snap.accepted[c] > 0 &&
          std::isfinite(snap.mean_ingress_wait[c])) {
        wait_sum[c] += snap.mean_ingress_wait[c] *
                       static_cast<double>(snap.accepted[c]);
        wait_n[c] += snap.accepted[c];
      }
      r.cls[c].dropped += shard->dropped(static_cast<ClassId>(c));
    }
    r.dropped += shard->dropped();
    r.completed_all += shard->completed_all();
    r.outstanding += shard->outstanding();
  }
  for (std::size_t c = 0; c < n; ++c) {
    r.cls[c].delta = cfg_.delta[c];
    if (sd_n[c] > 0) {
      r.cls[c].mean_slowdown = sd_sum[c] / static_cast<double>(sd_n[c]);
    }
    if (wait_n[c] > 0) {
      r.cls[c].mean_ingress_wait =
          wait_sum[c] / static_cast<double>(wait_n[c]);
    }
    r.cls[c].target_ratio = cfg_.delta[c] / cfg_.delta[0];
    r.completed_total += r.cls[c].completed;
    r.shed_total += r.cls[c].shed;
    if (cfg_.admission.active() && accepted[c] + r.cls[c].shed > 0) {
      r.cls[c].shed_rate =
          static_cast<double>(r.cls[c].shed) /
          static_cast<double>(accepted[c] + r.cls[c].shed);
    }
  }
  if (cfg_.admission.active() && cfg_.duration > cfg_.warmup) {
    r.goodput = static_cast<double>(r.completed_total) /
                (cfg_.duration - cfg_.warmup);
  }
  const double s0 = r.cls[0].mean_slowdown;
  double worst = kNaN;
  for (std::size_t c = 0; c < n; ++c) {
    if (std::isfinite(s0) && s0 > 0.0 &&
        std::isfinite(r.cls[c].mean_slowdown)) {
      r.cls[c].achieved_ratio = r.cls[c].mean_slowdown / s0;
      if (c > 0) {
        const double err =
            std::abs(r.cls[c].achieved_ratio / r.cls[c].target_ratio - 1.0);
        worst = std::isfinite(worst) ? std::max(worst, err) : err;
      }
    }
  }
  r.max_ratio_error = worst;

  // Telemetry-only extras: fold the per-shard post-warmup slowdown
  // histograms (identical layout by construction) into per-class
  // percentiles.  Reads shard-thread-private state, so after finish() only.
  if (finalized_ && cfg_.obs.enabled) {
    for (std::size_t c = 0; c < n; ++c) {
      LogHistogram merged = shards_[0]->slowdown_hists()[c];
      for (std::size_t i = 1; i < shards_.size(); ++i) {
        merged.merge(shards_[i]->slowdown_hists()[c]);
      }
      if (merged.count() > 0) {
        r.cls[c].slowdown_p50 = merged.quantile(0.50);
        r.cls[c].slowdown_p95 = merged.quantile(0.95);
        r.cls[c].slowdown_p99 = merged.quantile(0.99);
      }
    }
  }

  // Windowed medians: pool per-window slowdown ratios (class c vs class 0,
  // index-aligned — every shard rolls the same warmup/window grid) across
  // shards and take the median (stats/convergence.hpp; the cluster report
  // applies the same statistic one level up, across all nodes' shards).
  // Reads the servers' window series directly, so only after finish()
  // stopped the shard threads.
  if (finalized_) {
    double worst_w = kNaN;
    for (std::size_t c = 1; c < n; ++c) {
      std::vector<const std::vector<IntervalStat>*> base, cls;
      for (const auto& shard : shards_) {
        const auto& m = shard->server().metrics();
        base.push_back(&m.windows(0));
        cls.push_back(&m.windows(static_cast<ClassId>(c)));
      }
      const double p50 = pooled_window_ratio_median(base, cls);
      if (!std::isfinite(p50)) continue;
      r.cls[c].window_ratio_p50 = p50;
      const double err = std::abs(p50 / r.cls[c].target_ratio - 1.0);
      worst_w = std::isfinite(worst_w) ? std::max(worst_w, err) : err;
      // Survivor-only ratio integrity: under a gate, a fully-shed class
      // contributes no windows and drops out of this statistic by
      // construction — what remains is the differentiation among classes
      // that kept completing.
      if (cfg_.admission.active() && r.cls[c].completed > 0) {
        r.survivor_window_ratio_error =
            std::isfinite(r.survivor_window_ratio_error)
                ? std::max(r.survivor_window_ratio_error, err)
                : err;
      }
    }
    r.max_window_ratio_error = worst_w;

    // Ratio re-convergence after the profile's settling point.  Shard
    // window series are index-aligned (same warmup/window grid), so merge
    // them count-weighted into one per-class series first — the same
    // pairing rule the simulator's cluster aggregation uses.
    const double step_at = cfg_.profile.step_time();
    if (std::isfinite(step_at) && n >= 2) {
      auto merged = [&](ClassId cls) {
        std::vector<IntervalStat> out;
        for (const auto& shard : shards_) {
          merge_windows_into(out, shard->server().metrics().windows(cls));
        }
        return out;
      };
      const auto w0 = merged(0);
      const double onset = std::max(step_at, cfg_.warmup);
      double worst_s = 0.0;
      for (std::size_t c = 1; c < n; ++c) {
        const double settled = ratio_settle_time(
            w0, merged(static_cast<ClassId>(c)), r.cls[c].target_ratio,
            cfg_.converge_tol, onset, cfg_.controller_period);
        r.cls[c].settle_seconds = settled;
        // NaN (never settled) poisons the max: a bounded check must fail.
        if (!std::isfinite(settled)) worst_s = kNaN;
        else if (std::isfinite(worst_s)) worst_s = std::max(worst_s, settled);
      }
      r.max_settle_seconds = worst_s;
    }
  }

  for (const auto& g : gens_) {
    r.produced += g->produced();
  }
  const ControllerSnapshot cs = controller_->snapshot();
  r.controller_ticks = cs.ticks;
  r.reallocations = cs.allocations;
  r.elapsed = run_elapsed_ >= 0.0 ? run_elapsed_ : clock_.now();
  r.requests_per_sec =
      r.elapsed > 0.0 ? static_cast<double>(r.completed_all) / r.elapsed
                      : 0.0;
  return r;
}

}  // namespace psd::rt
