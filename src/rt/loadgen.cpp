#include "rt/loadgen.hpp"

#include <algorithm>

namespace psd::rt {

SyntheticLoadGen::SyntheticLoadGen(std::uint32_t gen_id, Rng rng,
                                   std::vector<ClassLoad> classes,
                                   std::vector<Shard*> shards, Time start)
    : rng_(std::move(rng)),
      shards_(std::move(shards)),
      id_base_(static_cast<std::uint64_t>(gen_id) << 48) {
  PSD_REQUIRE(!shards_.empty(), "load generator needs at least one shard");
  PSD_REQUIRE(!classes.empty(), "load generator needs at least one class");
  streams_.reserve(classes.size());
  for (auto& cl : classes) {
    Stream s{cl.cls, std::move(cl.arrivals), std::move(cl.sizes), 0.0, 0};
    s.next = start + s.arrivals.next_interarrival(rng_);
    streams_.push_back(std::move(s));
  }
}

SyntheticLoadGen::SyntheticLoadGen(std::uint32_t gen_id, Rng rng,
                                   std::vector<ClassLoad> classes, Sink sink,
                                   Time start)
    : rng_(std::move(rng)),
      id_base_(static_cast<std::uint64_t>(gen_id) << 48) {
  PSD_REQUIRE(sink != nullptr, "sink-mode load generator needs a sink");
  PSD_REQUIRE(!classes.empty(), "load generator needs at least one class");
  set_sink(std::move(sink));
  streams_.reserve(classes.size());
  for (auto& cl : classes) {
    Stream s{cl.cls, std::move(cl.arrivals), std::move(cl.sizes), 0.0, 0};
    s.next = start + s.arrivals.next_interarrival(rng_);
    streams_.push_back(std::move(s));
  }
}

Time SyntheticLoadGen::next_time() const {
  Time best = kInf;
  for (const auto& s : streams_) best = std::min(best, s.next);
  return best;
}

void SyntheticLoadGen::step_until(Time t) {
  for (;;) {
    // Earliest pending stream; draws interleave across classes in global
    // arrival order, so a fixed seed yields one well-defined trace.
    Stream* earliest = nullptr;
    for (auto& s : streams_) {
      if (s.next <= t && (earliest == nullptr || s.next < earliest->next)) {
        earliest = &s;
      }
    }
    if (earliest == nullptr) return;
    Request req;
    req.id = id_base_ | ++count_;
    req.cls = earliest->cls;
    req.arrival = earliest->next;
    req.size = earliest->sizes.sample(rng_);
    route(shards_, earliest->rr, req);
    earliest->next += earliest->arrivals.next_interarrival(rng_);
  }
}

TraceLoadGen::TraceLoadGen(Trace trace, double time_scale,
                           std::size_t num_classes, std::vector<Shard*> shards)
    : trace_(std::move(trace)),
      scale_(time_scale),
      shards_(std::move(shards)),
      rr_(num_classes, 0) {
  PSD_REQUIRE(!shards_.empty(), "trace replay needs at least one shard");
  PSD_REQUIRE(time_scale > 0.0, "trace time scale must be positive");
  Time prev = -kInf;
  for (const auto& e : trace_) {
    PSD_REQUIRE(e.time >= prev, "trace must be time-ordered");
    PSD_REQUIRE(e.cls < num_classes, "trace class out of range");
    PSD_REQUIRE(e.size > 0.0, "trace sizes must be positive");
    prev = e.time;
  }
  // Replay relative to the trace start (a simulator trace recorded after a
  // warmup period should not stall the runtime for the warmup's length).
  base_ = trace_.empty() ? 0.0 : trace_.front().time;
}

Time TraceLoadGen::next_time() const {
  return idx_ < trace_.size() ? (trace_[idx_].time - base_) * scale_ : kInf;
}

void TraceLoadGen::step_until(Time t) {
  while (idx_ < trace_.size() && (trace_[idx_].time - base_) * scale_ <= t) {
    const TraceEntry& e = trace_[idx_];
    Request req;
    req.id = static_cast<RequestId>(idx_);
    req.cls = e.cls;
    req.arrival = (e.time - base_) * scale_;
    req.size = e.size;
    route(shards_, rr_[e.cls], req);
    ++idx_;
  }
}

}  // namespace psd::rt
