// Wall-clock abstraction for the real-time serving runtime.
//
// Everything in src/rt asks "what time is it" through a ClockVariant so the
// same shard/load-generator/controller code runs in two modes:
//
//   * SteadyClock — std::chrono::steady_clock mapped to double seconds since
//     construction.  Production mode: threads poll it concurrently.
//   * ManualClock — an atomic double advanced explicitly by a test (or by a
//     single-threaded driver).  Deterministic mode: no sleeps, no jitter;
//     Runtime::step_to drives every component on the calling thread.
//
// Sealed-variant idiom as in ArrivalVariant/SamplerVariant: no virtual
// dispatch on the now() hot path, value semantics, closed set.
//
// Time values are double seconds (Time/Duration aliases); the embedded
// per-shard simulators run on the SAME axis, which is what makes rt metrics
// immune to thread-scheduling noise — see src/rt/README.md.
#pragma once

#include <atomic>
#include <chrono>
#include <variant>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd::rt {

/// Monotone wall clock; seconds since construction.
class SteadyClock {
 public:
  SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

  Time now() const {
    const auto d = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Explicitly advanced clock.  now() is safe from any thread; advancing is
/// the test driver's job (normally exactly one thread).
class ManualClock {
 public:
  ManualClock() = default;
  explicit ManualClock(Time start) : t_(start) {}

  // std::atomic is not copyable; the variant needs copies for value
  // semantics, so copy the observed value.
  ManualClock(const ManualClock& other)
      : t_(other.t_.load(std::memory_order_acquire)) {}
  ManualClock& operator=(const ManualClock& other) {
    t_.store(other.t_.load(std::memory_order_acquire),
             std::memory_order_release);
    return *this;
  }

  Time now() const { return t_.load(std::memory_order_acquire); }

  /// Move the clock forward to absolute time `t` (must not go backwards).
  void advance_to(Time t) {
    PSD_REQUIRE(t >= now(), "manual clock cannot go backwards");
    t_.store(t, std::memory_order_release);
  }

  void advance(Duration d) { advance_to(now() + d); }

 private:
  std::atomic<double> t_{0.0};
};

/// The sealed clock set.
class ClockVariant {
 public:
  using Alternatives = std::variant<SteadyClock, ManualClock>;

  template <typename C,
            typename = std::enable_if_t<
                std::is_constructible_v<Alternatives, C&&> &&
                !std::is_same_v<std::decay_t<C>, ClockVariant>>>
  ClockVariant(C&& clock) : alt_(std::forward<C>(clock)) {}

  Time now() const {
    return std::visit([](const auto& c) { return c.now(); }, alt_);
  }

  /// Non-null iff this is a ManualClock (the deterministic driver needs to
  /// advance it).
  ManualClock* manual() { return std::get_if<ManualClock>(&alt_); }
  const ManualClock* manual() const {
    return std::get_if<ManualClock>(&alt_);
  }

  bool is_manual() const { return manual() != nullptr; }

 private:
  Alternatives alt_;
};

}  // namespace psd::rt
