// Bounded lock-free multi-producer single-consumer ingress queue.
//
// Vyukov's bounded queue: a power-of-two ring of cells, each carrying a
// sequence number that encodes whether the cell is free for the producer
// lap or holds data for the consumer lap.  Producers claim a slot with one
// CAS on the enqueue cursor; the consumer needs no atomic RMW at all (it is
// alone).  No node allocation, no locks, and a full queue reports failure
// instead of blocking — the load generators are open-loop, so overload
// surfaces as a counted drop, never as backpressure into the arrival
// process (matching the paper's open-loop traffic model).
//
// Liveness: a producer that claimed a slot writes the value and then
// releases the cell by storing its sequence; the consumer waits only on the
// cell at its own cursor, so a stalled producer delays the requests behind
// its slot but cannot wedge the queue (try_pop simply returns false until
// the release lands).  Per-producer FIFO holds: CAS claims are strictly
// ordered, so one producer's requests dequeue in the order it pushed them.
// tests/test_mpsc_queue.cpp exercises exactly these two properties under
// ThreadSanitizer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace psd::rt {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit MpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer enqueue; false when the ring is full.
  bool try_push(const T& value) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh cursor.
      } else if (diff < 0) {
        return false;  // cell still holds last lap's value: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue; false when empty (or the head producer has
  /// claimed but not yet released its cell).
  bool try_pop(T& out) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                               static_cast<std::intptr_t>(dequeue_pos_ + 1);
    if (diff < 0) return false;
    PSD_CHECK(diff == 0, "mpsc consumer raced (single-consumer contract)");
    out = cell.value;
    cell.seq.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer-side estimate of occupancy (racy, for snapshots only).
  std::size_t approx_size() const {
    const std::size_t e = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t d = consumed_.load(std::memory_order_relaxed);
    return e >= d ? e - d : 0;
  }

  /// Consumer calls this after a batch of pops so approx_size stays honest.
  void publish_consumed() {
    consumed_.store(dequeue_pos_, std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  static constexpr std::size_t kCacheLine = 64;

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  // Consumer-private cursor on its own line; consumed_ is its public echo.
  alignas(kCacheLine) std::size_t dequeue_pos_ = 0;
  std::atomic<std::size_t> consumed_{0};
};

}  // namespace psd::rt
