// Open-loop load sources for the serving runtime.
//
// A LoadSource produces every arrival with timestamp <= t when asked to
// step_until(t) — the threaded driver calls it with the advancing wall
// clock (sleeping toward next_time() between calls), the deterministic
// driver calls it with a ManualClock time.  Arrivals are pushed straight
// into shard MPSC rings; a full ring counts a drop and the source moves on
// (open loop: overload never throttles the arrival process).
//
//   * SyntheticLoadGen — per-class ArrivalVariant + SamplerVariant streams,
//     the same sealed value types the simulator's RequestGenerator uses.
//     When several generator threads carry one class, each runs the class's
//     Poisson process at rate/num_gens (superposition of independent
//     Poisson streams is Poisson at the summed rate).
//   * TraceLoadGen — replays a recorded arrival trace (workload/trace) at a
//     configurable time scale, so a trace captured from the simulator can
//     drive the rt stack bit-for-bit (same classes, same sizes, same
//     relative spacing).
//
// Requests are sprayed round-robin per class across the shard set, which
// keeps per-shard class mixes aligned with the global mix (the controller's
// equal-slice assumption).  Alternatively a source can be built with a Sink:
// arrivals then go to the sink callback instead of a shard set, which is how
// the cluster dispatcher interposes its assignment policy between the
// generators and the nodes without the sources knowing about clusters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "rt/shard.hpp"
#include "workload/arrival.hpp"
#include "workload/trace.hpp"

namespace psd::rt {

class LoadSource {
 public:
  /// Arrival consumer for sink-mode sources (cluster dispatch).  Called on
  /// the generator's thread for every produced request.
  using Sink = std::function<void(const Request&)>;

  virtual ~LoadSource() = default;

  /// Produce (and route) every arrival with timestamp <= t.
  virtual void step_until(Time t) = 0;

  /// Timestamp of the next pending arrival; kInf when exhausted.
  virtual Time next_time() const = 0;

  std::uint64_t produced() const {
    return produced_.load(std::memory_order_relaxed);
  }

 protected:
  /// Drops are counted where they happen (Shard::submit), not here.  With a
  /// sink installed the shard spray is bypassed entirely (`shards` may be
  /// empty) and the sink owns routing.
  void route(std::vector<Shard*>& shards, std::size_t& rr,
             const Request& req) {
    produced_.fetch_add(1, std::memory_order_relaxed);
    if (sink_) {
      sink_(req);
      return;
    }
    shards[rr]->submit(req);
    rr = (rr + 1) % shards.size();
  }

  void set_sink(Sink sink) { sink_ = std::move(sink); }

 private:
  std::atomic<std::uint64_t> produced_{0};
  Sink sink_;
};

class SyntheticLoadGen final : public LoadSource {
 public:
  struct ClassLoad {
    ClassId cls = 0;
    ArrivalVariant arrivals;
    SamplerVariant sizes;
  };

  /// `gen_id` namespaces request ids across generator threads.
  SyntheticLoadGen(std::uint32_t gen_id, Rng rng,
                   std::vector<ClassLoad> classes, std::vector<Shard*> shards,
                   Time start);

  /// Sink mode: every arrival goes to `sink` (the cluster dispatcher)
  /// instead of a shard spray.  Draw sequences are identical to the
  /// shard-spray construction at the same seed — only delivery differs.
  SyntheticLoadGen(std::uint32_t gen_id, Rng rng,
                   std::vector<ClassLoad> classes, Sink sink, Time start);

  void step_until(Time t) override;
  Time next_time() const override;

 private:
  struct Stream {
    ClassId cls;
    ArrivalVariant arrivals;
    SamplerVariant sizes;
    Time next;
    std::size_t rr = 0;
  };

  Rng rng_;
  std::vector<Stream> streams_;
  std::vector<Shard*> shards_;
  std::uint64_t count_ = 0;
  std::uint64_t id_base_;
};

class TraceLoadGen final : public LoadSource {
 public:
  /// Entry times are multiplied by `time_scale` (a simulator trace recorded
  /// in raw model time replays at mean_service_seconds / E[X]); entries must
  /// be time-ordered with classes < num_classes.
  TraceLoadGen(Trace trace, double time_scale, std::size_t num_classes,
               std::vector<Shard*> shards);

  void step_until(Time t) override;
  Time next_time() const override;

  std::size_t size() const { return trace_.size(); }

 private:
  Trace trace_;
  double scale_;
  std::vector<Shard*> shards_;
  std::vector<std::size_t> rr_;  ///< Per-class round-robin cursor.
  std::size_t idx_ = 0;
  Time base_ = 0.0;  ///< First entry's recorded time (replay is relative).
};

}  // namespace psd::rt
