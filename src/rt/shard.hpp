// A worker shard: one thread's slice of the serving runtime.
//
// Each shard owns a complete single-node PSD pipeline — a private Simulator
// plus a Server (waiting queues, dedicated-rate backend, metrics) — and runs
// it on the WALL clock: drain(now) advances the embedded simulator to `now`,
// so scheduled completions fire at their exact model times and only then
// injects freshly arrived requests.  The embedded simulator is the shard's
// service engine; the wall clock merely gates how far it may advance.  The
// payoff is that service_start/departure timestamps are exact on the shared
// time axis no matter how late the OS schedules the shard thread, which is
// what makes slowdown ratios reproducible on loaded machines (and bitwise
// deterministic under ManualClock).
//
// Ingress is a lock-free MPSC ring fed by the load-generator threads; on
// pop, a request is stamped with its shard-entry time and parked in a
// per-class staging queue behind a deficit token bucket charged at the
// class's allocated rate.  The bucket is the rt-side rate enforcement
// derived from psd_allocation: a class consumes work no faster than r_c in
// the long run, and time spent staged counts toward its queueing delay (the
// differentiation the controller is steering).
//
// Thread roles: submit() — any producer; drain()/finalize() — the one shard
// thread; apply_rates() — the controller; snapshot() — anyone, via seqlock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/counters.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "rt/mpsc_queue.hpp"
#include "rt/seqlock.hpp"
#include "rt/token_bucket.hpp"
#include "server/load_estimator.hpp"
#include "server/server.hpp"
#include "stats/histogram.hpp"

namespace psd::rt {

/// Fixed snapshot arity: snapshots are trivially-copyable PODs published
/// through a seqlock, so the class count is bounded at compile time.
inline constexpr std::size_t kMaxRtClasses = 8;

struct ShardSnapshot {
  double time = 0.0;
  std::uint32_t num_classes = 0;
  std::uint32_t pad = 0;
  std::uint64_t drains = 0;
  std::uint64_t drops = 0;                ///< Ingress-full rejections (total).
  /// Estimator windows rolled so far (lambda_hat freshness).
  std::uint64_t windows_closed = 0;
  /// Per-class count of CLOSED metrics windows behind window_slowdown.
  /// Metrics windows close lazily (when a completion lands past the
  /// boundary), so this — not windows_closed — is what tells the controller
  /// a class's window_slowdown is genuinely new.  The adaptive allocator
  /// must integrate each window's feedback exactly ONCE: shard rolls and
  /// controller ticks are not phase-locked, and re-integrating a stale
  /// window (e.g. during a completion lull) double-applies its error.
  std::uint64_t window_seq[kMaxRtClasses] = {};
  std::uint64_t drops_cls[kMaxRtClasses] = {};  ///< Ring-full, per class.
  /// Admission-gate sheds per class (policy decisions at ring-pop time),
  /// counted separately from the ring-full drops above; zero without a
  /// gate.  `drops`/`drops_cls` keep their historical meaning untouched.
  std::uint64_t sheds_cls[kMaxRtClasses] = {};
  std::uint64_t accepted[kMaxRtClasses] = {};   ///< Popped and admitted.
  std::uint64_t completed[kMaxRtClasses] = {};  ///< Post-warmup completions.
  std::uint64_t staged[kMaxRtClasses] = {};     ///< Waiting behind buckets.
  std::uint64_t outstanding[kMaxRtClasses] = {};  ///< In shard, not done.
  double lambda_hat[kMaxRtClasses] = {};  ///< ADMITTED arrivals/sec.
  /// OFFERED arrivals/sec including gate sheds — what the controller feeds
  /// back into admission update() so gates see true demand.  Zero (and
  /// never estimated) without a gate.
  double offered_lambda[kMaxRtClasses] = {};
  double mean_slowdown[kMaxRtClasses] = {};     ///< Cumulative post-warmup.
  double window_slowdown[kMaxRtClasses] = {};   ///< Last closed window.
  double rate[kMaxRtClasses] = {};              ///< Current allocation.
  double mean_ingress_wait[kMaxRtClasses] = {};  ///< Produce -> pop latency.
};

/// Live distribution state, published through a second (larger) seqlock on
/// estimator-window rolls — throttled further by telemetry_publish_interval
/// because the payload is a few KB of histogram buckets.  All fields are
/// accumulated by the shard thread only; `accepted`/`completions` are
/// copied INTO the struct so a single seqlock read yields a coherent
/// (counter, histogram) pair — the exporter's consistency invariants
/// (slowdown[c].count == floor(completions[c] / sample_period),
/// ingress_wait[c].count == floor(accepted[c] / sample_period)) hold within
/// one snapshot even while the shard keeps running.  Unlike the report
/// path, these include warmup completions: live dashboards want to see the
/// warmup transient.
struct ShardTelemetry {
  double time = 0.0;
  std::uint32_t num_classes = 0;
  /// Distribution sampling period in effect (1 = every event); counters are
  /// always exact, so hist.count ~= counter / sample_period.
  std::uint32_t sample_period = 1;
  std::uint64_t accepted[kMaxRtClasses] = {};     ///< Popped from ingress.
  std::uint64_t completions[kMaxRtClasses] = {};  ///< Incl. warmup.
  obs::Log2Hist ingress_wait[kMaxRtClasses];  ///< Produce -> pop (seconds).
  obs::Log2Hist queue_delay[kMaxRtClasses];   ///< arrival -> service_start.
  obs::Log2Hist slowdown[kMaxRtClasses];      ///< delay / service time.
  obs::ProfSnap prof;                         ///< Shard-thread self timings.
};

struct ShardConfig {
  std::size_t num_classes = 2;
  double capacity = 1.0;       ///< Work units per second.
  double window = 0.05;        ///< Estimator/metrics window (seconds).
  std::size_t estimator_history = 5;
  double warmup = 0.0;         ///< Metrics warmup cutoff (seconds).
  double bucket_burst_seconds = 0.1;  ///< Burst = rate * this.
  std::size_t ingress_capacity = 1 << 14;
  std::vector<double> initial_rates;  ///< Empty = equal split.
  /// Collect live histograms + telemetry snapshots (obs layer).  Off by
  /// default: the hot paths then skip every update behind one branch.
  bool telemetry = false;
  /// Minimum seconds between telemetry seqlock publishes (the payload is
  /// ~11 KB; copying it every estimator window costs real throughput at
  /// high request rates).  Readers see a snapshot at most this stale.
  double telemetry_publish_interval = 0.5;
  /// Record every Nth event per class into the live/report histograms
  /// (counters stay exact).  Even a division-free histogram update costs a
  /// few ns per event — several per request blows the telemetry throughput
  /// budget — and slowdown/delay percentiles converge just as well from a
  /// deterministic 1-in-N subsample.  Must be a power of two: the sample
  /// test is then one AND against counters the hot path already
  /// increments, with no extra countdown state.  1 = record everything.
  std::uint32_t telemetry_sample_period = 32;
  /// Arm the scoped self-profiling timers (implies nothing about telemetry;
  /// only read when telemetry is on).
  bool profile = false;
  /// Record sampled request-lifecycle spans (obs/trace.hpp) into the SPSC
  /// span ring.  Off by default: every span hook then costs one AND+branch
  /// against an all-ones mask, exactly the telemetry idiom above.
  bool tracing = false;
  /// Trace every Nth request per class (power of two; the traced subset is
  /// a deterministic function of the per-class event ordinals).
  std::uint32_t trace_sample_period = 64;
  /// Span-ring capacity (rounded up to a power of two); a full ring drops
  /// the newest span and counts it.
  std::size_t span_ring_capacity = 1 << 12;
  /// This shard's index in the runtime — stamped into spans / trace ids.
  std::uint32_t shard_id = 0;
};

class Shard {
 public:
  Shard(const ShardConfig& cfg, Rng rng);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Producer side (any thread): enqueue a request whose `arrival` is its
  /// production wall time.  Returns false (and counts a drop) on a full ring.
  bool submit(const Request& req);

  /// Shard thread only: advance the embedded simulator to `now`, ingest the
  /// ingress backlog, release staged work under the token buckets, roll the
  /// estimator window, publish a fresh snapshot.  Returns requests popped.
  std::size_t drain(Time now);

  /// Controller thread: stage a new per-class rate vector; the shard adopts
  /// it at the start of its next drain.  `tick_seq` is the controller tick
  /// that produced the vector; requests admitted after adoption carry it in
  /// their spans, causally linking each span to the allocation that
  /// governed it.
  void apply_rates(const std::vector<double>& rates,
                   std::uint64_t tick_seq = 0);

  /// Setup time (before any producer/controller thread runs): install a
  /// pre-sim admission gate.  Shed requests are counted per class,
  /// separately from ring-full drops, and never reach the estimator or the
  /// embedded simulator.
  void set_admission(std::unique_ptr<AdmissionController> admission);

  /// Controller thread: stage fresh per-class OFFERED arrival-rate
  /// estimates for the gate; the shard calls admission->update() with them
  /// at the start of its next drain.  Same single-slot handoff discipline
  /// as apply_rates, so all gate state stays shard-thread-private.
  void stage_admission_update(const std::vector<double>& offered_lambda);

  /// Any thread, any time: consistent copy of the latest published state.
  ShardSnapshot snapshot() const { return snap_.read(); }

  /// Any thread: latest telemetry snapshot (all-zero unless cfg.telemetry).
  ShardTelemetry telemetry() const { return telem_snap_.read(); }

  /// Requests accepted by submit() and neither completed nor shed by the
  /// admission gate (any thread).
  std::uint64_t outstanding() const {
    const std::uint64_t pushed = pushed_.load(std::memory_order_acquire);
    const std::uint64_t done = done_.load(std::memory_order_acquire) +
                               shed_n_.load(std::memory_order_acquire);
    return pushed > done ? pushed - done : 0;
  }

  /// Admission-gate sheds, all classes (any thread).  Per-class counts are
  /// shard-thread-private; read them from snapshot().sheds_cls.
  std::uint64_t shed_total() const {
    return shed_n_.load(std::memory_order_acquire);
  }

  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
      n += drops_cls_[c].get();
    }
    return n;
  }

  std::uint64_t dropped(ClassId cls) const { return drops_cls_[cls].get(); }

  /// Total completions including warmup (any thread).
  std::uint64_t completed_all() const {
    return done_.load(std::memory_order_acquire);
  }

  /// Final drain + metrics close.  Call after all producer/controller
  /// threads have stopped; single-threaded from here on.
  void finalize(Time now);

  /// Direct access for deterministic tests (no concurrent drains).
  const Server& server() const { return *server_; }
  const ShardConfig& config() const { return cfg_; }

  /// Fine-grained POST-WARMUP slowdown distributions (stats/histogram.hpp
  /// layout, one per class); empty unless cfg.telemetry.  Shard thread
  /// mutates them per completion, so read only after threads stopped (the
  /// report path, post finalize) or under a deterministic drive.
  const std::vector<LogHistogram>& slowdown_hists() const {
    return sd_hist_;
  }

  /// Self-profiling table (any thread may read a snap; the producer-side
  /// ring-push timer writes from any thread).
  obs::ProfTable& prof() { return prof_; }

  /// True when span tracing is armed (cfg.tracing).
  bool tracing() const { return span_ring_ != nullptr; }

  /// Exporter thread: drain the span ring (appends to `out`, returns count).
  std::size_t drain_spans(std::vector<obs::Span>& out) {
    return span_ring_ != nullptr ? span_ring_->drain(out) : 0;
  }

  /// Spans lost to a full ring (any thread).
  std::uint64_t spans_dropped() const {
    return span_ring_ != nullptr ? span_ring_->dropped() : 0;
  }

 private:
  /// A traced request between admission and completion: `ordinal` is its
  /// per-class accepted ordinal, which — staging and the dedicated-rate
  /// backend both being FIFO within a class — equals its release and
  /// completion ordinals, so the later hooks find it by ordinal match
  /// instead of a per-request map.
  struct PendingTrace {
    std::uint64_t ordinal = 0;
    obs::Span span;
  };

  void refresh_estimates();
  void publish(Time now);
  void publish_telemetry(Time now);

  // Span hooks (shard thread; each fires 1-in-trace_sample_period).
  void trace_shed(ClassId c, const Request& req, Time now);
  void trace_admit(ClassId c, const Request& req, Time now);
  void trace_release(ClassId c, Time now);
  void trace_complete(const Request& req);

  ShardConfig cfg_;
  Simulator sim_;
  std::unique_ptr<Server> server_;
  MpscQueue<Request> ingress_;
  std::vector<std::deque<Request>> staged_;
  std::vector<TokenBucket> buckets_;
  LoadEstimator estimator_;
  Time next_roll_;
  std::vector<double> rates_;

  // Admission gate (shard-thread-owned after setup).  The offered-load
  // estimator exists only alongside a gate, so the admission-off pop loop
  // pays exactly one null-pointer branch.
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<LoadEstimator> offered_est_;
  std::vector<std::uint64_t> sheds_cls_;   ///< Shard-thread private.
  std::vector<double> offered_cache_;

  // Controller -> shard handoff (rarely contended; one exchange per tick).
  std::mutex pending_m_;
  std::vector<double> pending_rates_;
  std::uint64_t pending_tick_seq_ = 0;
  bool has_pending_ = false;
  std::vector<double> pending_offered_;
  bool has_pending_admission_ = false;

  // Cross-thread counters.  Drops are per class (any producer may reject
  // any class), each on its own cache line.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> shed_n_{0};  ///< Shard thread writes, any reads.
  std::array<obs::Counter, kMaxRtClasses> drops_cls_;

  // Shard-thread-private statistics.
  std::vector<std::uint64_t> accepted_;
  std::vector<std::uint64_t> done_cls_;
  std::vector<MeanStat> ingress_wait_;
  std::vector<double> lambda_cache_;
  std::vector<double> window_sd_cache_;
  std::vector<std::uint64_t> window_seq_cache_;  ///< Coherent with the above.
  std::uint64_t drains_ = 0;

  // Telemetry (shard-thread private accumulator + its own seqlock; the
  // payload is KBs, so it publishes on window rolls, not every drain).
  ShardTelemetry telem_;
  std::vector<LogHistogram> sd_hist_;  ///< Post-warmup, for report folds.
  obs::ProfTable prof_;
  Time last_telem_publish_ = 0.0;
  /// telemetry_sample_period - 1; an event is sampled into the histograms
  /// when (its per-class event ordinal & sample_mask_) == 0.
  std::uint64_t sample_mask_ = 0;

  // Request-lifecycle tracing (shard-thread private except the SPSC ring).
  // trace_mask_ follows the sample_mask_ idiom: all-ones when tracing is
  // off, so every span hook is one AND+branch that never fires.  released_
  // is allocated unconditionally (per-class u64s) so the heap layout does
  // not shift with tracing; the ring and pending deques — like the
  // telemetry histograms — are allocated LAST in the ctor.
  std::uint64_t trace_mask_ = ~std::uint64_t{0};
  std::uint64_t ctrl_tick_seq_ = 0;  ///< Adopted at the last rate handoff.
  std::vector<std::uint64_t> released_;  ///< Staging releases, per class.
  std::vector<std::deque<PendingTrace>> pending_spans_;
  std::unique_ptr<obs::SpanRing> span_ring_;

  Seqlock<ShardSnapshot> snap_;
  Seqlock<ShardTelemetry> telem_snap_;
};

}  // namespace psd::rt
