#include "rt/controller.hpp"

#include <cmath>
#include <numeric>

#include "baselines/static_allocators.hpp"
#include "core/psd_rate_allocator.hpp"

namespace psd::rt {

namespace {

std::unique_ptr<RateAllocator> make_rt_allocator(const ControllerConfig& cfg) {
  PsdAllocatorConfig pc;
  pc.delta = cfg.delta;
  pc.capacity = cfg.total_capacity;
  pc.mean_size = cfg.mean_size;
  pc.rho_max = cfg.rho_max;
  pc.min_residual_share = cfg.min_residual_share;
  switch (cfg.allocator) {
    case AllocatorKind::kPsd:
      return std::make_unique<PsdRateAllocator>(pc);
    case AllocatorKind::kAdaptivePsd:
      return std::make_unique<AdaptivePsdAllocator>(pc, cfg.adaptive);
    case AllocatorKind::kEqualShare:
      return std::make_unique<EqualShareAllocator>(cfg.delta.size(),
                                                   cfg.total_capacity);
    case AllocatorKind::kLoadProportional:
      return std::make_unique<LoadProportionalAllocator>(
          cfg.delta.size(), cfg.total_capacity, cfg.mean_size);
    case AllocatorKind::kNone:
      return nullptr;
  }
  PSD_UNREACHABLE("unknown allocator kind");
}

}  // namespace

Controller::Controller(ControllerConfig cfg, std::vector<Shard*> shards)
    : cfg_(std::move(cfg)),
      shards_(std::move(shards)),
      allocator_(make_rt_allocator(cfg_)) {
  PSD_REQUIRE(!shards_.empty(), "controller needs at least one shard");
  PSD_REQUIRE(!cfg_.delta.empty() && cfg_.delta.size() <= kMaxRtClasses,
              "controller supports 1..kMaxRtClasses classes");
  windows_seen_.assign(shards_.size() * cfg_.delta.size(), 0);
  // Until the first warm tick, every shard runs its initial (equal) split.
  rates_.assign(cfg_.delta.size(),
                cfg_.total_capacity / static_cast<double>(cfg_.delta.size()));
  prof_.set_enabled(cfg_.profile);
}

std::vector<ControllerTraceEntry> Controller::trace_since(
    std::uint64_t* cursor) const {
  std::vector<ControllerTraceEntry> out;
  std::lock_guard<std::mutex> lock(trace_m_);
  for (const auto& e : trace_) {
    if (e.tick > *cursor) out.push_back(e);
  }
  if (!out.empty()) *cursor = out.back().tick;
  return out;
}

std::string Controller::allocator_name() const {
  return allocator_ ? allocator_->name() : "none";
}

void Controller::tick(Time now) {
  obs::ScopedProfTimer prof_tick(&prof_, obs::kProfControllerTick);
  const std::size_t n = cfg_.delta.size();
  std::vector<double> lambda(n, 0.0);
  std::vector<double> offered(n, 0.0);
  std::uint64_t windows_total = 0;
  std::vector<double> sd_sum(n, 0.0);
  std::vector<std::uint32_t> sd_cnt(n, 0);
  bool fresh_window = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardSnapshot snap = shards_[i]->snapshot();
    windows_total += snap.windows_closed;
    for (std::size_t c = 0; c < n; ++c) {
      lambda[c] += snap.lambda_hat[c];
      offered[c] += snap.offered_lambda[c];
      // Slowdown feedback only from classes whose metrics window actually
      // advanced since this controller last looked: ticks and shard window
      // rolls are not phase-locked (and windows close lazily, on the first
      // completion past the boundary), so gating on the per-class sequence
      // number is what makes the adaptive integrator see each window once —
      // not once per tick, and not again during a completion lull.
      std::uint64_t& seen = windows_seen_[i * n + c];
      const bool advanced = snap.window_seq[c] > seen;
      seen = snap.window_seq[c];
      if (advanced && std::isfinite(snap.window_slowdown[c])) {
        sd_sum[c] += snap.window_slowdown[c];
        ++sd_cnt[c];
        fresh_window = true;
      }
    }
  }
  std::vector<double> mean_sd(n, kNaN);
  for (std::size_t c = 0; c < n; ++c) {
    if (sd_cnt[c] > 0) mean_sd[c] = sd_sum[c] / sd_cnt[c];
  }

  // Admission update cadence: once per estimation window (some shard's
  // estimator rolled since the last staged update), not once per tick —
  // gate decisions latch between windows, mirroring the allocator.  Each
  // shard's gate is sized at shard capacity, so it receives the per-shard
  // slice of the aggregated offered view.
  if (cfg_.admission && windows_total > admission_windows_seen_) {
    admission_windows_seen_ = windows_total;
    const double inv_shards = 1.0 / static_cast<double>(shards_.size());
    std::vector<double> offered_slice(n);
    for (std::size_t c = 0; c < n; ++c) {
      offered_slice[c] = offered[c] * inv_shards;
    }
    for (Shard* shard : shards_) {
      shard->stage_admission_update(offered_slice);
    }
  }

  ++ticks_;
  ControllerTraceEntry trace_entry;
  if (cfg_.trace) {
    trace_entry.time = now;
    trace_entry.tick = ticks_;
    trace_entry.fresh_window = fresh_window;
    trace_entry.num_classes = static_cast<std::uint32_t>(n);
    for (std::size_t c = 0; c < n; ++c) {
      trace_entry.lambda[c] = lambda[c];
      trace_entry.window_slowdown[c] = mean_sd[c];
      trace_entry.rate_in[c] = rates_[c];
    }
  }
  const double total =
      std::accumulate(lambda.begin(), lambda.end(), 0.0);
  // Cold start (estimators have not closed a window yet) keeps the initial
  // equal split; eq. 17 needs at least one positive lambda.
  if (allocator_ != nullptr && total > 0.0) {
    if (fresh_window) allocator_->observe_slowdowns(mean_sd);
    {
      obs::ScopedProfTimer prof_alloc(&prof_, obs::kProfAllocate);
      rates_ = allocator_->allocate(lambda);
    }
    ++allocations_;
    trace_entry.reallocated = true;
    const double inv_shards = 1.0 / static_cast<double>(shards_.size());
    std::vector<double> slice(n);
    for (std::size_t c = 0; c < n; ++c) slice[c] = rates_[c] * inv_shards;
    // Stamp the handoff with this tick so spans admitted under these rates
    // name the allocation that governed them.
    for (Shard* shard : shards_) shard->apply_rates(slice, ticks_);
  }
  if (cfg_.trace) {
    for (std::size_t c = 0; c < n; ++c) trace_entry.rate_out[c] = rates_[c];
    std::lock_guard<std::mutex> lock(trace_m_);
    trace_.push_back(trace_entry);
    while (trace_.size() > cfg_.trace_capacity) trace_.pop_front();
  }

  ControllerSnapshot s;
  s.time = now;
  s.num_classes = static_cast<std::uint32_t>(n);
  s.ticks = ticks_;
  s.allocations = allocations_;
  for (std::size_t c = 0; c < n; ++c) {
    s.lambda[c] = lambda[c];
    s.rate[c] = rates_[c];
    s.window_slowdown[c] = mean_sd[c];
  }
  snap_.publish(s);
}

}  // namespace psd::rt
