// RuntimeHandle: the narrow interface an embedder drives a Runtime through.
//
// The Runtime class carries two concerns — the shard/controller topology and
// the thread lifecycle that drives it.  Everything that wants to EMBED a
// runtime (the cluster dispatcher treating it as one node of many,
// deterministic tests injecting hand-built arrivals, psdserved as the 1-node
// special case) needs only the first concern, behind four verbs:
//
//   submit()    — inject one request (per-class round-robin over the shards,
//                 the same spray discipline the internal load sources use, so
//                 per-shard class mixes stay aligned with the global mix),
//   snapshot()  — read the seqlock-published per-shard state,
//   set_rates() — stage a GLOBAL per-class rate vector (split equally across
//                 shards, exactly like the node controller's handoff),
//   drain()     — advance every shard to `now` on the calling thread.
//
// The handle is a non-owning view: it borrows the Runtime and adds only the
// round-robin cursors.  Thread discipline mirrors the components it fronts —
// submit() from one dispatcher thread at a time (the cursors are plain
// integers), set_rates() from one controller thread, drain() from the shard
// owner; snapshot readers are free.
#pragma once

#include <vector>

#include "rt/runtime.hpp"

namespace psd::rt {

class RuntimeHandle {
 public:
  explicit RuntimeHandle(Runtime& rt)
      : rt_(&rt), rr_(rt.config().num_classes(), 0) {}

  /// Inject one request; false (a counted drop) when the target shard's
  /// ingress ring is full.  One dispatcher thread at a time.
  bool submit(const Request& req) {
    std::size_t& cursor = rr_[req.cls];
    const std::size_t shard = cursor;
    cursor = (cursor + 1) % rt_->num_shards();
    return rt_->shard(shard).submit(req);
  }

  /// Seqlock-consistent state of every shard (any thread).
  std::vector<ShardSnapshot> shard_snapshots() const {
    std::vector<ShardSnapshot> out;
    out.reserve(rt_->num_shards());
    for (std::size_t i = 0; i < rt_->num_shards(); ++i) {
      out.push_back(rt_->shard(i).snapshot());
    }
    return out;
  }

  /// Stage a GLOBAL per-class rate vector: each shard receives an equal
  /// slice and adopts it at its next drain.  `tick_seq` stamps request spans
  /// with the allocation that governed them (see Shard::apply_rates).
  void set_rates(const std::vector<double>& rates, std::uint64_t tick_seq) {
    std::vector<double> slice(rates.size());
    const double inv = 1.0 / static_cast<double>(rt_->num_shards());
    for (std::size_t c = 0; c < rates.size(); ++c) slice[c] = rates[c] * inv;
    for (std::size_t i = 0; i < rt_->num_shards(); ++i) {
      rt_->shard(i).apply_rates(slice, tick_seq);
    }
  }

  /// Advance every shard's embedded simulator to `now` and ingest its
  /// backlog on the calling thread; returns requests popped.
  std::size_t drain(Time now) {
    std::size_t popped = 0;
    for (std::size_t i = 0; i < rt_->num_shards(); ++i) {
      popped += rt_->shard(i).drain(now);
    }
    return popped;
  }

  // Lifecycle forwards — psdserved runs a whole serving session through the
  // handle; the cluster calls finish()/report() per node.
  RtReport run() { return rt_->run(); }
  void step_to(Time t) { rt_->step_to(t); }
  void finish() { rt_->finish(); }
  RtReport report() const { return rt_->report(); }

  std::uint64_t outstanding() const { return rt_->total_outstanding(); }
  std::size_t num_shards() const { return rt_->num_shards(); }
  const RtConfig& config() const { return rt_->config(); }
  Runtime& runtime() { return *rt_; }
  const Runtime& runtime() const { return *rt_; }

 private:
  Runtime* rt_;
  std::vector<std::size_t> rr_;  ///< Per-class shard cursor (submit spray).
};

}  // namespace psd::rt
