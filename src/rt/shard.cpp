#include "rt/shard.hpp"

#include <algorithm>
#include <cmath>

#include "sched/dedicated_rate.hpp"

namespace psd::rt {

Shard::Shard(const ShardConfig& cfg, Rng rng)
    : cfg_(cfg),
      ingress_(cfg.ingress_capacity),
      staged_(cfg.num_classes),
      estimator_(cfg.num_classes, cfg.window, cfg.estimator_history),
      next_roll_(cfg.window),
      accepted_(cfg.num_classes, 0),
      done_cls_(cfg.num_classes, 0),
      ingress_wait_(cfg.num_classes),
      lambda_cache_(cfg.num_classes, 0.0),
      window_sd_cache_(cfg.num_classes, kNaN),
      window_seq_cache_(cfg.num_classes, 0) {
  PSD_REQUIRE(cfg.num_classes >= 1 && cfg.num_classes <= kMaxRtClasses,
              "shard supports 1..kMaxRtClasses classes");
  PSD_REQUIRE(cfg.window > 0.0, "window must be positive");
  PSD_REQUIRE(cfg.bucket_burst_seconds > 0.0, "burst must be positive");

  ServerConfig sc;
  sc.num_classes = cfg.num_classes;
  sc.capacity = cfg.capacity;
  sc.realloc_period = 0.0;  // the rt controller reallocates, not the server
  sc.metrics.num_classes = cfg.num_classes;
  sc.metrics.warmup_end = cfg.warmup;
  sc.metrics.window = cfg.window;
  sc.initial_rates = cfg.initial_rates;
  server_ = std::make_unique<Server>(
      sim_, sc, std::make_unique<DedicatedRateBackend>(), nullptr,
      std::move(rng));
  server_->set_completion_observer([this](const Request& req) {
    ++done_cls_[req.cls];
    done_.fetch_add(1, std::memory_order_release);
  });

  rates_ = server_->current_rates();
  const double burst = cfg.capacity * cfg.bucket_burst_seconds;
  buckets_.reserve(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    buckets_.emplace_back(rates_[c], burst, 0.0);
  }
  publish(0.0);
}

bool Shard::submit(const Request& req) {
  // Count BEFORE the push: once the request is in the ring the shard thread
  // may pop, serve, and complete it before this producer runs another
  // instruction, and done_ passing pushed_ would wrap outstanding().
  pushed_.fetch_add(1, std::memory_order_release);
  if (ingress_.try_push(req)) return true;
  pushed_.fetch_sub(1, std::memory_order_release);
  drops_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void Shard::apply_rates(const std::vector<double>& rates) {
  PSD_REQUIRE(rates.size() == cfg_.num_classes, "rate vector size mismatch");
  std::lock_guard<std::mutex> lock(pending_m_);
  pending_rates_ = rates;
  has_pending_ = true;
}

std::size_t Shard::drain(Time now) {
  // The wall clock is monotone across calls, but the embedded simulator may
  // already sit exactly at `now` from the previous drain.
  if (now < sim_.now()) now = sim_.now();

  // 1. Fire every completion due by `now` at its exact model time, then
  //    leave the simulation clock parked at `now` for the injections below.
  sim_.run_until(now);

  // 2. Adopt a controller handoff, effective `now` (in-service work is
  //    settled at the old rate up to here; buckets likewise).
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    if (has_pending_) {
      rates_ = pending_rates_;
      has_pending_ = false;
      server_->set_rates(rates_);
      for (std::size_t c = 0; c < buckets_.size(); ++c) {
        buckets_[c].set_rate(rates_[c], now);
      }
    }
  }

  // 3. Ingest the ingress backlog into the per-class staging queues.  The
  //    request's queueing clock starts here: time spent in flight between
  //    the producer and this pop is reported separately (mean_ingress_wait),
  //    so slowdown measurements stay on the exact simulator time axis.
  Request req;
  std::size_t popped = 0;
  while (ingress_.try_pop(req)) {
    ++popped;
    const ClassId c = req.cls;
    // Clamped at zero: producers stamp arrival from their own clock reads,
    // which may postdate this drain's single read of `now`.
    ingress_wait_[c].add(std::max(0.0, now - req.arrival));
    req.arrival = now;
    estimator_.on_arrival(c, req.size);
    ++accepted_[c];
    staged_[c].push_back(req);
  }
  if (popped > 0) ingress_.publish_consumed();

  // 4. Release staged work the token buckets can pay for.
  for (std::size_t c = 0; c < staged_.size(); ++c) {
    auto& q = staged_[c];
    while (!q.empty() && buckets_[c].try_consume(q.front().size, now)) {
      server_->submit(q.front());
      q.pop_front();
    }
  }

  // 5. Roll estimator windows that closed by `now` and refresh the cached
  //    estimates the controller consumes.
  bool rolled = false;
  while (next_roll_ <= now) {
    estimator_.roll(next_roll_);
    next_roll_ += cfg_.window;
    rolled = true;
  }
  if (rolled) refresh_estimates();

  ++drains_;
  publish(now);
  return popped;
}

void Shard::refresh_estimates() {
  lambda_cache_ = estimator_.lambda_estimate();
  window_sd_cache_ = server_->metrics().last_window_slowdowns();
  // Captured together with the slowdowns so the published (value, seq)
  // pair is coherent: seq is the number of CLOSED windows behind value.
  for (std::size_t c = 0; c < window_seq_cache_.size(); ++c) {
    window_seq_cache_[c] =
        server_->metrics().windows(static_cast<ClassId>(c)).size();
  }
}

void Shard::publish(Time now) {
  ShardSnapshot s;
  s.time = now;
  s.num_classes = static_cast<std::uint32_t>(cfg_.num_classes);
  s.drains = drains_;
  s.drops = drops_.load(std::memory_order_relaxed);
  s.windows_closed = estimator_.windows_closed();
  const auto& metrics = server_->metrics();
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    const auto cls = static_cast<ClassId>(c);
    s.accepted[c] = accepted_[c];
    s.completed[c] = metrics.completed(cls);
    s.staged[c] = staged_[c].size();
    s.outstanding[c] = accepted_[c] - done_cls_[c];
    s.lambda_hat[c] = lambda_cache_[c];
    s.mean_slowdown[c] = metrics.slowdown(cls).mean();
    s.window_slowdown[c] = window_sd_cache_[c];
    s.rate[c] = rates_[c];
    s.mean_ingress_wait[c] = ingress_wait_[c].mean();
    s.window_seq[c] = window_seq_cache_[c];
  }
  snap_.publish(s);
}

void Shard::finalize(Time now) {
  drain(now);
  server_->finalize();
  refresh_estimates();
  publish(now);
}

}  // namespace psd::rt
