#include "rt/shard.hpp"

#include <algorithm>
#include <cmath>

#include "sched/dedicated_rate.hpp"

namespace psd::rt {

// The span verdict byte is AdmitVerdict passed through untranslated; keep
// the two enums value-aligned or the trace files lie about shed causes.
static_assert(obs::kSpanAdmitted == static_cast<std::uint8_t>(kAdmitted) &&
                  obs::kSpanShedMask == static_cast<std::uint8_t>(kShedMask) &&
                  obs::kSpanShedThinned ==
                      static_cast<std::uint8_t>(kShedThinned) &&
                  obs::kSpanShedBucket ==
                      static_cast<std::uint8_t>(kShedBucket),
              "obs::SpanVerdict must stay value-aligned with AdmitVerdict");

namespace {

/// Run-unique span id: shard(8) | class(8) | shed-flag(1) | ordinal(47).
/// Pure function of (shard, class, per-class ordinal), so ids — like the
/// sampled subset itself — are deterministic across replays.
std::uint64_t make_trace_id(std::uint32_t shard, ClassId cls, bool shed,
                            std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(shard & 0xff) << 56) |
         (static_cast<std::uint64_t>(cls & 0xff) << 48) |
         (shed ? (std::uint64_t{1} << 47) : 0) |
         (ordinal & ((std::uint64_t{1} << 47) - 1));
}

}  // namespace

Shard::Shard(const ShardConfig& cfg, Rng rng)
    : cfg_(cfg),
      ingress_(cfg.ingress_capacity),
      staged_(cfg.num_classes),
      estimator_(cfg.num_classes, cfg.window, cfg.estimator_history),
      next_roll_(cfg.window),
      accepted_(cfg.num_classes, 0),
      done_cls_(cfg.num_classes, 0),
      ingress_wait_(cfg.num_classes),
      lambda_cache_(cfg.num_classes, 0.0),
      window_sd_cache_(cfg.num_classes, kNaN),
      window_seq_cache_(cfg.num_classes, 0),
      released_(cfg.num_classes, 0) {
  PSD_REQUIRE(cfg.num_classes >= 1 && cfg.num_classes <= kMaxRtClasses,
              "shard supports 1..kMaxRtClasses classes");
  PSD_REQUIRE(cfg.window > 0.0, "window must be positive");
  PSD_REQUIRE(cfg.bucket_burst_seconds > 0.0, "burst must be positive");
  PSD_REQUIRE(cfg.telemetry_sample_period >= 1 &&
                  (cfg.telemetry_sample_period &
                   (cfg.telemetry_sample_period - 1)) == 0,
              "telemetry_sample_period must be a power of two");
  PSD_REQUIRE(cfg.trace_sample_period >= 1 &&
                  (cfg.trace_sample_period &
                   (cfg.trace_sample_period - 1)) == 0,
              "trace_sample_period must be a power of two");

  telem_.num_classes = static_cast<std::uint32_t>(cfg.num_classes);
  telem_.sample_period = cfg.telemetry_sample_period;
  // With telemetry off the mask is all-ones: the per-event sample test
  // `(ordinal & mask) == 0` is then false for every ordinal >= 1, so the
  // hot paths pay exactly one AND+branch and never re-read cfg_.telemetry.
  sample_mask_ = cfg.telemetry
                     ? std::uint64_t{cfg.telemetry_sample_period} - 1
                     : ~std::uint64_t{0};
  // Same idiom for the span hooks.
  trace_mask_ = cfg.tracing ? std::uint64_t{cfg.trace_sample_period} - 1
                            : ~std::uint64_t{0};

  ServerConfig sc;
  sc.num_classes = cfg.num_classes;
  sc.capacity = cfg.capacity;
  sc.realloc_period = 0.0;  // the rt controller reallocates, not the server
  sc.metrics.num_classes = cfg.num_classes;
  sc.metrics.warmup_end = cfg.warmup;
  sc.metrics.window = cfg.window;
  sc.initial_rates = cfg.initial_rates;
  server_ = std::make_unique<Server>(
      sim_, sc, std::make_unique<DedicatedRateBackend>(), nullptr,
      std::move(rng));
  server_->set_completion_observer([this](const Request& req) {
    ++done_cls_[req.cls];
    // Completion ordinal == accepted ordinal (FIFO within class), so the
    // same mask that sampled this request at admission fires again here.
    if ((done_cls_[req.cls] & trace_mask_) == 0) trace_complete(req);
    // Distribution fills are 1-in-N sampled per class (counters stay
    // exact): one AND against the completion ordinal just incremented, so
    // the subsample — and every percentile derived from it — is a
    // deterministic function of the completion sequence.  The mask is
    // all-ones when telemetry is off, so this never fires then.
    if ((done_cls_[req.cls] & sample_mask_) == 0) {
      // Live histograms include warmup (dashboards want the transient);
      // the report-grade sd_hist_ honors the same cutoff as metrics.
      const double sd = req.slowdown();
      telem_.queue_delay[req.cls].add(req.delay());
      telem_.slowdown[req.cls].add(sd);
      if (req.departure >= cfg_.warmup) {
        sd_hist_[req.cls].add_fast(sd);
      }
    }
    done_.fetch_add(1, std::memory_order_release);
  });

  rates_ = server_->current_rates();
  const double burst = cfg.capacity * cfg.bucket_burst_seconds;
  buckets_.reserve(cfg.num_classes);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    buckets_.emplace_back(rates_[c], burst, 0.0);
  }

  // Telemetry allocations come LAST so the heap layout of everything on the
  // hot path (server, simulator, queues) is identical whether telemetry is
  // on or off — a layout shift shows up as a phantom cache/TLB "overhead"
  // that has nothing to do with the telemetry code itself.
  if (cfg.telemetry) {
    // Fine-grained slowdown distribution for the report fold; the paper's
    // slowdowns live in roughly [1e-3, 1e4] on a log axis.
    sd_hist_.assign(cfg.num_classes, LogHistogram(1e-3, 1e4, 20));
    prof_.set_enabled(cfg.profile);
  }
  if (cfg.tracing) {
    pending_spans_.resize(cfg.num_classes);
    span_ring_ = std::make_unique<obs::SpanRing>(cfg.span_ring_capacity);
  }

  publish(0.0);
  publish_telemetry(0.0);
}

bool Shard::submit(const Request& req) {
  obs::ScopedProfTimer prof(&prof_, obs::kProfRingPush);
  // Count BEFORE the push: once the request is in the ring the shard thread
  // may pop, serve, and complete it before this producer runs another
  // instruction, and done_ passing pushed_ would wrap outstanding().
  pushed_.fetch_add(1, std::memory_order_release);
  if (ingress_.try_push(req)) return true;
  pushed_.fetch_sub(1, std::memory_order_release);
  drops_cls_[req.cls].add();
  return false;
}

void Shard::apply_rates(const std::vector<double>& rates,
                        std::uint64_t tick_seq) {
  PSD_REQUIRE(rates.size() == cfg_.num_classes, "rate vector size mismatch");
  std::lock_guard<std::mutex> lock(pending_m_);
  pending_rates_ = rates;
  pending_tick_seq_ = tick_seq;
  has_pending_ = true;
}

void Shard::set_admission(std::unique_ptr<AdmissionController> admission) {
  admission_ = std::move(admission);
  if (admission_ != nullptr) {
    offered_est_ = std::make_unique<LoadEstimator>(
        cfg_.num_classes, cfg_.window, cfg_.estimator_history);
    sheds_cls_.assign(cfg_.num_classes, 0);
    offered_cache_.assign(cfg_.num_classes, 0.0);
  }
}

void Shard::stage_admission_update(
    const std::vector<double>& offered_lambda) {
  PSD_REQUIRE(offered_lambda.size() == cfg_.num_classes,
              "offered estimate size mismatch");
  std::lock_guard<std::mutex> lock(pending_m_);
  pending_offered_ = offered_lambda;
  has_pending_admission_ = true;
}

std::size_t Shard::drain(Time now) {
  obs::ScopedProfTimer prof_drain(&prof_, obs::kProfDrain);
  // The wall clock is monotone across calls, but the embedded simulator may
  // already sit exactly at `now` from the previous drain.
  if (now < sim_.now()) now = sim_.now();

  // 1. Fire every completion due by `now` at its exact model time, then
  //    leave the simulation clock parked at `now` for the injections below.
  sim_.run_until(now);

  // 2. Adopt a controller handoff, effective `now` (in-service work is
  //    settled at the old rate up to here; buckets likewise).
  {
    std::lock_guard<std::mutex> lock(pending_m_);
    if (has_pending_) {
      rates_ = pending_rates_;
      ctrl_tick_seq_ = pending_tick_seq_;
      has_pending_ = false;
      server_->set_rates(rates_);
      for (std::size_t c = 0; c < buckets_.size(); ++c) {
        buckets_[c].set_rate(rates_[c], now);
      }
    }
    // Gate decisions latch here, once per staged controller update (i.e.
    // per estimation window) — the shard thread owns all gate state, the
    // controller only hands estimates across.
    if (has_pending_admission_) {
      has_pending_admission_ = false;
      if (admission_ != nullptr) admission_->update(pending_offered_);
    }
  }

  // 3. Ingest the ingress backlog into the per-class staging queues.  The
  //    request's queueing clock starts here: time spent in flight between
  //    the producer and this pop is reported separately (mean_ingress_wait),
  //    so slowdown measurements stay on the exact simulator time axis.
  Request req;
  std::size_t popped = 0;
  {
    obs::ScopedProfTimer prof_pop(&prof_, obs::kProfRingPop);
    // Hoisted: the opaque push_back below would otherwise force a reload
    // every iteration.  All-ones when telemetry/tracing is off (never fires).
    const std::uint64_t mask = sample_mask_;
    const std::uint64_t tmask = trace_mask_;
    while (ingress_.try_pop(req)) {
      ++popped;
      const ClassId c = req.cls;
      // Admission gate: O(1) decision at pop time, BEFORE the request can
      // touch the estimator or the embedded simulator — the allocator only
      // ever sees admitted load, while the offered estimator (feeding the
      // gate's own update cadence) sees everything.
      if (admission_ != nullptr) {
        offered_est_->on_arrival(c, req.size);
        if (!admission_->admit_request(c, now, req.size)) {
          ++sheds_cls_[c];
          shed_n_.fetch_add(1, std::memory_order_release);
          if ((sheds_cls_[c] & tmask) == 0) trace_shed(c, req, now);
          continue;
        }
      }
      // Clamped at zero: producers stamp arrival from their own clock
      // reads, which may postdate this drain's single read of `now`.
      const double wait = std::max(0.0, now - req.arrival);
      ingress_wait_[c].add(wait);
      ++accepted_[c];
      if ((accepted_[c] & mask) == 0) {
        telem_.ingress_wait[c].add(wait);
      }
      // Span open: before the arrival rewrite below, while req.arrival is
      // still the producer's ingress stamp.
      if ((accepted_[c] & tmask) == 0) trace_admit(c, req, now);
      req.arrival = now;
      estimator_.on_arrival(c, req.size);
      staged_[c].push_back(req);
    }
    if (popped > 0) ingress_.publish_consumed();
  }

  // 4. Release staged work the token buckets can pay for.
  {
    obs::ScopedProfTimer prof_release(&prof_, obs::kProfBucketRelease);
    const std::uint64_t tmask = trace_mask_;
    for (std::size_t c = 0; c < staged_.size(); ++c) {
      auto& q = staged_[c];
      while (!q.empty() && buckets_[c].try_consume(q.front().size, now)) {
        server_->submit(q.front());
        q.pop_front();
        // Release ordinal == accepted ordinal (staging is FIFO), so the
        // admission-sampled requests are exactly the ones that fire here.
        if ((++released_[c] & tmask) == 0) {
          trace_release(static_cast<ClassId>(c), now);
        }
      }
    }
  }

  // 5. Roll estimator windows that closed by `now` and refresh the cached
  //    estimates the controller consumes.
  bool rolled = false;
  while (next_roll_ <= now) {
    estimator_.roll(next_roll_);
    if (offered_est_ != nullptr) offered_est_->roll(next_roll_);
    next_roll_ += cfg_.window;
    rolled = true;
  }
  if (rolled) refresh_estimates();

  ++drains_;
  publish(now);
  // Telemetry is KBs of histogram state; republish on window rolls, and
  // then only once per telemetry_publish_interval — at high request rates
  // the seqlock copy would otherwise show up in per-request cost.
  if (rolled && cfg_.telemetry &&
      now - last_telem_publish_ >= cfg_.telemetry_publish_interval) {
    publish_telemetry(now);
  }
  return popped;
}

void Shard::trace_shed(ClassId c, const Request& req, Time now) {
  obs::Span s;
  s.trace_id = make_trace_id(cfg_.shard_id, c, /*shed=*/true, sheds_cls_[c]);
  s.tick_seq = ctrl_tick_seq_;
  s.t_ingress = req.arrival;  // still the producer stamp on the shed path
  s.t_admit = now;
  s.size = req.size;
  s.cls = c;
  s.shard = cfg_.shard_id;
  s.verdict = static_cast<std::uint8_t>(admission_->shed_verdict());
  span_ring_->push(s);  // sheds are complete at the verdict: emit now
}

void Shard::trace_admit(ClassId c, const Request& req, Time now) {
  PendingTrace p;
  p.ordinal = accepted_[c];
  p.span.trace_id =
      make_trace_id(cfg_.shard_id, c, /*shed=*/false, accepted_[c]);
  p.span.tick_seq = ctrl_tick_seq_;
  p.span.t_ingress = req.arrival;  // caller runs this hook pre-rewrite
  p.span.t_admit = now;
  p.span.size = req.size;
  p.span.cls = c;
  p.span.shard = cfg_.shard_id;
  pending_spans_[c].push_back(p);
}

void Shard::trace_release(ClassId c, Time now) {
  // Front-biased scan: releases happen in ordinal order, so the match is
  // almost always the first entry without a t_pop yet.
  for (PendingTrace& p : pending_spans_[c]) {
    if (p.ordinal == released_[c]) {
      p.span.t_pop = now;
      return;
    }
  }
}

void Shard::trace_complete(const Request& req) {
  auto& q = pending_spans_[req.cls];
  const std::uint64_t ordinal = done_cls_[req.cls];
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->ordinal != ordinal) continue;
    it->span.t_start = req.service_start;
    it->span.t_complete = req.departure;
    it->span.slowdown = req.slowdown();
    span_ring_->push(it->span);
    q.erase(it);
    return;
  }
}

void Shard::refresh_estimates() {
  lambda_cache_ = estimator_.lambda_estimate();
  if (offered_est_ != nullptr) {
    offered_cache_ = offered_est_->lambda_estimate();
  }
  window_sd_cache_ = server_->metrics().last_window_slowdowns();
  // Captured together with the slowdowns so the published (value, seq)
  // pair is coherent: seq is the number of CLOSED windows behind value.
  for (std::size_t c = 0; c < window_seq_cache_.size(); ++c) {
    window_seq_cache_[c] =
        server_->metrics().windows(static_cast<ClassId>(c)).size();
  }
}

void Shard::publish(Time now) {
  obs::ScopedProfTimer prof_pub(&prof_, obs::kProfPublish);
  ShardSnapshot s;
  s.time = now;
  s.num_classes = static_cast<std::uint32_t>(cfg_.num_classes);
  s.drains = drains_;
  s.windows_closed = estimator_.windows_closed();
  const auto& metrics = server_->metrics();
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    const auto cls = static_cast<ClassId>(c);
    s.drops_cls[c] = drops_cls_[c].get();
    s.drops += s.drops_cls[c];
    s.accepted[c] = accepted_[c];
    s.completed[c] = metrics.completed(cls);
    s.staged[c] = staged_[c].size();
    s.outstanding[c] = accepted_[c] - done_cls_[c];
    s.lambda_hat[c] = lambda_cache_[c];
    s.mean_slowdown[c] = metrics.slowdown(cls).mean();
    s.window_slowdown[c] = window_sd_cache_[c];
    s.rate[c] = rates_[c];
    s.mean_ingress_wait[c] = ingress_wait_[c].mean();
    s.window_seq[c] = window_seq_cache_[c];
  }
  if (admission_ != nullptr) {
    for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
      s.sheds_cls[c] = sheds_cls_[c];
      s.offered_lambda[c] = offered_cache_[c];
    }
  }
  snap_.publish(s);
}

void Shard::publish_telemetry(Time now) {
  last_telem_publish_ = now;
  telem_.time = now;
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    telem_.accepted[c] = accepted_[c];
    telem_.completions[c] = done_cls_[c];
  }
  telem_.prof = prof_.snap();
  telem_snap_.publish(telem_);
}

void Shard::finalize(Time now) {
  drain(now);
  server_->finalize();
  refresh_estimates();
  publish(now);
  if (cfg_.telemetry) publish_telemetry(now);
}

}  // namespace psd::rt
