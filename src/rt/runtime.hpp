// The serving runtime: load generators + worker shards + controller wired
// behind one configuration, drivable two ways.
//
//   * Threaded (SteadyClock): run() spawns one thread per load generator,
//     one per shard, and one controller thread, optionally affinity-pinned,
//     runs for cfg.duration wall seconds, drains, and reports.  This is the
//     psdserved / bench/micro_rt mode.
//   * Deterministic (ManualClock): step_to(t) advances every component on
//     the calling thread in a fixed order — generators, shards, controller —
//     so a fixed seed yields bit-identical reports with zero sleeps.  This
//     is the unit-test mode; see src/rt/README.md for why both modes share
//     every line of component code.
//
// The configuration speaks the paper's language (deltas, load, size
// distribution) plus one rt-only knob: mean_service_seconds maps the mean
// request's full-capacity service time onto the wall clock, fixing the
// shard capacity at E[X]/mean_service_seconds work units per second.
#pragma once

#include <memory>
#include <vector>

#include "dist/factory.hpp"
#include "obs/config.hpp"
#include "obs/exporter.hpp"
#include "rt/clock.hpp"
#include "rt/controller.hpp"
#include "rt/loadgen.hpp"
#include "rt/shard.hpp"

namespace psd::rt {

struct RtConfig {
  // --- classes & workload ---
  std::vector<double> delta = {1.0, 2.0};
  double load = 0.6;               ///< Target utilization per shard, in (0,1).
  std::vector<double> load_share;  ///< Empty = equal shares.
  DistSpec size_dist = DistSpec::bounded_pareto(1.5, 0.1, 100.0);
  /// Arrival-process shape (Poisson default; MMPP/ON-OFF via kBursty).
  ArrivalSpec arrivals;
  /// Nonstationary modulation of every class's arrival rate; times in wall
  /// seconds from the run start (warmup included).  The load-generator
  /// threads follow it on the wall clock through thinned arrival streams.
  LoadProfile profile;
  /// Tolerance band of the post-disturbance ratio settle metric.
  double converge_tol = 0.25;
  /// Wall-clock seconds the MEAN request needs at full shard capacity.
  double mean_service_seconds = 1e-4;

  // --- topology ---
  std::size_t shards = 1;
  std::size_t loadgens = 1;
  bool pin_threads = false;

  // --- control loop ---
  double controller_period = 0.05;  ///< Seconds; also the estimator window.
  std::size_t estimator_history = 5;
  AllocatorKind allocator = AllocatorKind::kAdaptivePsd;
  /// Heavier smoothing than the simulator default: rt windows are short.
  AdaptiveConfig adaptive{0.3, 4.0, 0.3};
  double rho_max = 0.98;
  double min_residual_share = 1e-3;
  /// Pre-sim admission gate evaluated at ring-pop time (src/admission).
  /// kNone (default) installs nothing — the shard pop loop pays one null
  /// check and every report byte is unchanged.  Any other kind permits
  /// load >= 1 (deliberate overload) and populates the shed/goodput report
  /// fields.
  AdmissionSpec admission;

  // --- run protocol ---
  double warmup = 0.5;    ///< Seconds excluded from metrics.
  double duration = 3.0;  ///< Total run length, warmup included.

  // --- plumbing ---
  double bucket_burst_seconds = 0.1;
  std::size_t ingress_capacity = 1 << 14;
  std::uint64_t seed = 0x5EEDBA5EULL;

  // --- observability (src/obs; off by default, zero behavior change) ---
  obs::ObsConfig obs;

  std::size_t num_classes() const { return delta.size(); }
  /// Work units per second per shard.
  double shard_capacity() const;
  /// TOTAL per-class arrival rates (requests/sec across all shards).
  std::vector<double> lambdas() const;
  void validate() const;
};

struct RtClassReport {
  double delta = 0.0;
  std::uint64_t completed = 0;   ///< Post-warmup completions.
  std::uint64_t dropped = 0;     ///< Ingress-ring-full rejections.
  /// Admission-gate sheds (policy decisions), separate from the ring-full
  /// drops above; 0 without a gate.
  std::uint64_t shed = 0;
  /// shed / (accepted + shed) — the fraction of offered work this class
  /// lost to the gate.  NaN without a gate or without arrivals.
  double shed_rate = kNaN;
  double mean_slowdown = kNaN;
  /// Post-warmup slowdown percentiles, folded across shards from the
  /// per-shard LogHistograms (stats/histogram.hpp merge()).  NaN unless
  /// telemetry was enabled for the run.
  double slowdown_p50 = kNaN;
  double slowdown_p95 = kNaN;
  double slowdown_p99 = kNaN;
  double achieved_ratio = kNaN;  ///< Of cumulative means, vs class 0.
  /// Median over measurement windows of the per-window slowdown ratio vs
  /// class 0.  Robust against single Bounded-Pareto giants that can swing a
  /// short run's cumulative mean arbitrarily; only populated after
  /// finish()/run() (it reads the closed window series).
  double window_ratio_p50 = kNaN;
  double target_ratio = kNaN;    ///< delta_c / delta_0.
  double mean_ingress_wait = kNaN;
  /// Seconds after the profile's settling point until this class's windowed
  /// slowdown ratio re-entered (and kept) the tolerance band
  /// (stats/convergence.hpp; windows merged across shards).  NaN without a
  /// profiled settling point, before finish(), or when it never settled.
  double settle_seconds = kNaN;
};

struct RtReport {
  std::vector<RtClassReport> cls;
  /// max over classes >= 1 of |achieved/target - 1| (NaN without data).
  double max_ratio_error = kNaN;
  /// Same, over the windowed medians — the statistic smoke checks gate on.
  double max_window_ratio_error = kNaN;
  /// max over classes >= 1 of settle_seconds; NaN when any class lacks one
  /// (strict: a class that never re-converged must fail a bounded check).
  double max_settle_seconds = kNaN;
  std::uint64_t produced = 0;
  std::uint64_t dropped = 0;
  /// Admission-gate sheds over all classes/shards; 0 without a gate.
  std::uint64_t shed_total = 0;
  /// Goodput: post-warmup completions of ADMITTED work per second of the
  /// measurement interval (duration - warmup).  NaN without a gate — the
  /// metric exists to compare against capacity under overload.
  double goodput = kNaN;
  /// Worst |window_ratio_p50 / target - 1| over classes that actually
  /// completed work — ratio integrity among the admitted survivors.  NaN
  /// without a gate (max_window_ratio_error covers the nominal regime).
  double survivor_window_ratio_error = kNaN;
  std::uint64_t completed_total = 0;  ///< Post-warmup.
  std::uint64_t completed_all = 0;    ///< Including warmup.
  std::uint64_t outstanding = 0;      ///< Accepted but never completed.
  double elapsed = 0.0;               ///< Wall/model seconds covered.
  double requests_per_sec = 0.0;      ///< completed_all / elapsed.
  std::uint64_t controller_ticks = 0;
  std::uint64_t reallocations = 0;
  std::uint64_t drains = 0;
};

/// Tag for the embedded (generator-less) Runtime construction below.
struct EmbeddedTag {};

class Runtime {
 public:
  Runtime(RtConfig cfg, ClockVariant clock);

  /// Replay construction: the trace drives arrivals instead of synthetic
  /// generators.  `time_scale` multiplies recorded times into seconds.
  Runtime(RtConfig cfg, ClockVariant clock, Trace trace, double time_scale);

  /// Embedded construction: full shard/controller/exporter topology, but NO
  /// internal load sources — an external driver (the cluster dispatcher, a
  /// test) injects arrivals through a RuntimeHandle and owns the question of
  /// when load stops.  step_to/run work unchanged (the generator loop is
  /// simply empty); report().produced stays 0 because production is the
  /// driver's statistic.
  Runtime(RtConfig cfg, ClockVariant clock, EmbeddedTag);

  // --- threaded drive (SteadyClock) ---

  /// Spawn generator/shard/controller threads, run for cfg.duration, drain,
  /// finalize, report.  One-shot.
  RtReport run();

  // --- deterministic drive (ManualClock) ---

  /// Advance the clock to `t` and step generators, shards, controller (in
  /// that order) on the calling thread.
  void step_to(Time t);

  /// Keep stepping past the end of load until every accepted request
  /// completed or `max_extra` seconds of model time elapse.
  void quiesce(Duration max_extra = 10.0, Duration step = 0.01);

  /// Close metrics windows; idempotent.  run() does this itself.
  void finish();

  RtReport report() const;

  std::uint64_t total_outstanding() const;
  std::size_t num_shards() const { return shards_.size(); }
  Shard& shard(std::size_t i) { return *shards_[i]; }
  const Controller& controller() const { return *controller_; }
  Controller& controller_mut() { return *controller_; }
  const RtConfig& config() const { return cfg_; }
  ClockVariant& clock() { return clock_; }
  /// Null unless cfg.obs requested a stream, a metrics port, tracing, or
  /// an SLO watchdog.
  obs::StatsExporter* exporter() { return exporter_.get(); }
  /// Null unless cfg.obs.slo_rules is non-empty.
  obs::Watchdog* watchdog() { return watchdog_.get(); }

 private:
  /// Shared constructor core: validate, build shards + controller.  Returns
  /// the sampler so the synthetic path can reuse it for size draws.
  SamplerVariant init_topology();
  void build_shards(double shard_capacity);
  void init_exporter();
  std::vector<Shard*> shard_ptrs();

  RtConfig cfg_;
  ClockVariant clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<LoadSource>> gens_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<obs::StatsExporter> exporter_;
  std::unique_ptr<obs::Watchdog> watchdog_;  ///< Driven via the exporter.
  Time next_tick_;
  Time next_sample_ = 0.0;
  double run_elapsed_ = -1.0;  ///< Set once a threaded run completes.
  bool ran_ = false;
  bool finalized_ = false;
};

/// Best-effort affinity pin of the calling thread (Linux); false elsewhere
/// or on failure.  Exposed for the bench harness.
bool pin_current_thread(unsigned cpu);

}  // namespace psd::rt
