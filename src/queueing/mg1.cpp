#include "queueing/mg1.hpp"

#include <cmath>
#include <stdexcept>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

Mg1::Mg1(double lambda, const SizeDistribution& dist, double rate,
         double third_moment)
    : lambda_(lambda), rate_(rate), m3_(third_moment) {
  PSD_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  PSD_REQUIRE(rate > 0.0, "processing rate must be positive");
  mean_ = dist.mean();
  m2_ = dist.second_moment();
  // E[1/X] may diverge (e.g. unbounded exponential).  Delay/response metrics
  // remain valid in that case; only expected_slowdown() is unavailable.
  try {
    mean_inv_ = dist.mean_inverse();
  } catch (const std::domain_error&) {
    mean_inv_ = kNaN;
  }
}

double Mg1::utilization() const { return lambda_ * mean_ / rate_; }

void Mg1::require_stable() const {
  if (utilization() >= 1.0) {
    throw std::domain_error("M/G/1 queue is unstable (rho >= 1)");
  }
}

double Mg1::expected_wait() const {
  require_stable();
  // P-K with service times X/r: E[(X/r)^2] = E[X^2]/r^2.
  const double rho = utilization();
  return lambda_ * m2_ / (rate_ * rate_) / (2.0 * (1.0 - rho));
}

double Mg1::expected_response() const {
  return expected_wait() + mean_ / rate_;
}

double Mg1::expected_slowdown() const {
  require_stable();
  if (std::isnan(mean_inv_)) {
    throw std::domain_error(
        "expected slowdown undefined: E[1/X] diverges for this service-time "
        "distribution (paper §5)");
  }
  // Lemma 1 with Lemma-2 scaling: E[1/(X/r)] = r E[1/X]; algebra collapses to
  // lambda E[X^2] E[1/X] / (2 (r - lambda E[X])).
  return lambda_ * m2_ * mean_inv_ / (2.0 * (rate_ - lambda_ * mean_));
}

double Mg1::wait_second_moment() const {
  require_stable();
  if (std::isnan(m3_)) {
    throw std::domain_error(
        "wait_second_moment needs the service third moment (pass it to the "
        "Mg1 constructor)");
  }
  const double w = expected_wait();
  const double m3_scaled = m3_ / (rate_ * rate_ * rate_);
  return 2.0 * w * w + lambda_ * m3_scaled / (3.0 * (1.0 - utilization()));
}

double Mg1::slowdown_variance(double inverse_second_moment) const {
  PSD_REQUIRE(inverse_second_moment > 0.0, "E[1/X^2] must be positive");
  // E[1/(X/r)^2] = r^2 E[1/X^2].
  const double s = expected_slowdown();
  const double s2 =
      wait_second_moment() * inverse_second_moment * rate_ * rate_;
  return s2 - s * s;
}

double Mg1::slowdown_cv(double inverse_second_moment) const {
  return std::sqrt(slowdown_variance(inverse_second_moment)) /
         expected_slowdown();
}

Mg1Metrics Mg1::metrics() const {
  Mg1Metrics m;
  m.utilization = utilization();
  m.expected_wait = expected_wait();
  m.expected_response = expected_response();
  m.expected_slowdown = expected_slowdown();
  return m;
}

}  // namespace psd
