// Analytic M/G/1 FCFS results.
//
// Implements the paper's Lemma 1 and Theorem 1: with Poisson arrivals of rate
// lambda and service times X drawn from `dist` on a server of processing rate
// r (so the effective service time is X/r),
//
//   rho    = lambda E[X] / r
//   E[W]   = lambda E[(X/r)^2] / (2 (1 - rho))          (Pollaczek–Khinchin)
//   E[S]   = E[W] * E[r/X]                              (Lemma 1 + Lemma 2)
//          = lambda E[X^2] E[1/X] / (2 (r - lambda E[X]))
//
// The closed form is exercised for Bounded Pareto (the paper's M/G_B/1) but
// is valid for any distribution with finite E[X^2] and E[1/X].
#pragma once

#include "common/types.hpp"
#include "dist/distribution.hpp"

namespace psd {

struct Mg1Metrics {
  double utilization = 0.0;       ///< rho = lambda E[X] / r.
  double expected_wait = 0.0;     ///< E[W], queueing delay.
  double expected_response = 0.0; ///< E[W] + E[X]/r.
  double expected_slowdown = 0.0; ///< E[S] = E[W] E[1/(X/r)].
};

class Mg1 {
 public:
  /// lambda > 0, rate > 0.  Stability (rho < 1) is NOT required to construct;
  /// metrics throw std::domain_error when the queue is unstable.
  /// Second-moment metrics (wait_second_moment, slowdown variance) need the
  /// distribution's third moment; pass it via `third_moment` when the
  /// SizeDistribution interface cannot provide it (NaN disables them).
  Mg1(double lambda, const SizeDistribution& dist, double rate = 1.0,
      double third_moment = kNaN);

  double utilization() const;
  double expected_wait() const;
  double expected_response() const;
  double expected_slowdown() const;

  /// E[W^2] via the Takacs recursion:
  ///   E[W^2] = 2 E[W]^2 + lambda E[(X/r)^3] / (3 (1 - rho)).
  /// Requires a finite third service moment (see constructor).
  double wait_second_moment() const;

  /// Var[S] with W independent of the request's own X under FCFS:
  ///   E[S^2] = E[W^2] E[1/X^2],  Var[S] = E[S^2] - E[S]^2.
  /// Requires a finite E[1/X^2]; supplied by `inverse_second_moment`.
  double slowdown_variance(double inverse_second_moment) const;

  /// Coefficient of variation of the slowdown — the analytic handle on the
  /// windowed-ratio spread of the paper's Fig. 5.
  double slowdown_cv(double inverse_second_moment) const;

  Mg1Metrics metrics() const;

  bool stable() const { return utilization() < 1.0; }

  double lambda() const { return lambda_; }
  double rate() const { return rate_; }

 private:
  void require_stable() const;

  double lambda_;
  double rate_;
  double mean_, m2_, m3_, mean_inv_;
};

}  // namespace psd
