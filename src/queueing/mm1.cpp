#include "queueing/mm1.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace psd {

Mm1::Mm1(double lambda, double mu) : lambda_(lambda), mu_(mu) {
  PSD_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  PSD_REQUIRE(mu > 0.0, "service rate must be positive");
}

double Mm1::utilization() const { return lambda_ / mu_; }

void Mm1::require_stable() const {
  if (utilization() >= 1.0) {
    throw std::domain_error("M/M/1 queue is unstable (rho >= 1)");
  }
}

double Mm1::expected_wait() const {
  require_stable();
  return utilization() / (mu_ - lambda_);
}

double Mm1::expected_response() const {
  require_stable();
  return 1.0 / (mu_ - lambda_);
}

double Mm1::expected_queue_length() const {
  require_stable();
  const double rho = utilization();
  return rho * rho / (1.0 - rho);
}

}  // namespace psd
