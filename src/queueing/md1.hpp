// Analytic M/D/1 FCFS results — the paper's eq. (15):
//   E[S] = rho / (2 (1 - rho)),
// independent of the constant service time c.  This models session states
// (home entry, register, ...) with near-constant processing demand.
#pragma once

namespace psd {

class Md1 {
 public:
  /// lambda > 0, c > 0 (constant service time at full capacity), rate > 0.
  Md1(double lambda, double service_time, double rate = 1.0);

  double utilization() const;
  double expected_wait() const;      ///< lambda c^2 / (2 r^2 (1 - rho)).
  double expected_response() const;
  double expected_slowdown() const;  ///< eq. (15): rho / (2 (1 - rho)).
  bool stable() const { return utilization() < 1.0; }

 private:
  void require_stable() const;

  double lambda_, c_, rate_;
};

}  // namespace psd
