#include "queueing/mg1_priority.hpp"

#include <cmath>
#include <stdexcept>

#include "common/error.hpp"
#include "common/types.hpp"

namespace psd {

Mg1Priority::Mg1Priority(std::vector<double> lambda,
                         std::vector<const SizeDistribution*> dist,
                         double rate)
    : lambda_(std::move(lambda)), rate_(rate) {
  PSD_REQUIRE(!lambda_.empty(), "need at least one class");
  PSD_REQUIRE(lambda_.size() == dist.size(), "lambda/dist size mismatch");
  PSD_REQUIRE(rate > 0.0, "rate must be positive");
  const std::size_t n = lambda_.size();
  mean_.resize(n);
  m2_.resize(n);
  mean_inv_.resize(n);
  residual_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    PSD_REQUIRE(lambda_[i] > 0.0, "lambda must be positive");
    PSD_REQUIRE(dist[i] != nullptr, "distribution required");
    mean_[i] = dist[i]->mean() / rate_;
    m2_[i] = dist[i]->second_moment() / (rate_ * rate_);
    try {
      mean_inv_[i] = dist[i]->mean_inverse() * rate_;
    } catch (const std::domain_error&) {
      mean_inv_[i] = kNaN;
    }
    residual_ += lambda_[i] * m2_[i] / 2.0;
  }
}

double Mg1Priority::utilization() const {
  double rho = 0.0;
  for (std::size_t i = 0; i < lambda_.size(); ++i) rho += lambda_[i] * mean_[i];
  return rho;
}

double Mg1Priority::expected_wait(std::size_t i) const {
  PSD_REQUIRE(i < lambda_.size(), "class index out of range");
  double sigma_prev = 0.0;
  for (std::size_t j = 0; j < i; ++j) sigma_prev += lambda_[j] * mean_[j];
  const double sigma_i = sigma_prev + lambda_[i] * mean_[i];
  if (sigma_i >= 1.0) {
    throw std::domain_error(
        "priority M/G/1: cumulative load through this class reaches 1");
  }
  return residual_ / ((1.0 - sigma_prev) * (1.0 - sigma_i));
}

double Mg1Priority::expected_slowdown(std::size_t i) const {
  PSD_REQUIRE(i < lambda_.size(), "class index out of range");
  if (std::isnan(mean_inv_[i])) {
    throw std::domain_error("E[1/X] diverges for this class's distribution");
  }
  return expected_wait(i) * mean_inv_[i];
}

std::vector<double> Mg1Priority::expected_waits() const {
  std::vector<double> out(lambda_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = expected_wait(i);
  return out;
}

std::vector<double> Mg1Priority::expected_slowdowns() const {
  std::vector<double> out(lambda_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = expected_slowdown(i);
  return out;
}

}  // namespace psd
