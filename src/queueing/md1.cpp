#include "queueing/md1.hpp"

#include <stdexcept>

#include "common/error.hpp"

namespace psd {

Md1::Md1(double lambda, double service_time, double rate)
    : lambda_(lambda), c_(service_time), rate_(rate) {
  PSD_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  PSD_REQUIRE(service_time > 0.0, "service time must be positive");
  PSD_REQUIRE(rate > 0.0, "processing rate must be positive");
}

double Md1::utilization() const { return lambda_ * c_ / rate_; }

void Md1::require_stable() const {
  if (utilization() >= 1.0) {
    throw std::domain_error("M/D/1 queue is unstable (rho >= 1)");
  }
}

double Md1::expected_wait() const {
  require_stable();
  const double rho = utilization();
  const double service = c_ / rate_;
  return lambda_ * service * service / (2.0 * (1.0 - rho)) / 1.0;
}

double Md1::expected_response() const { return expected_wait() + c_ / rate_; }

double Md1::expected_slowdown() const {
  require_stable();
  const double rho = utilization();
  return rho / (2.0 * (1.0 - rho));
}

}  // namespace psd
