// Non-preemptive priority M/G/1 with N classes (Cobham 1954) — the analytic
// model behind the strict-priority baseline (paper §5, Almeida et al.).
//
// With classes indexed by priority (0 highest), per-class Poisson rates
// lambda_i and service moments E[X_i], E[X_i^2]:
//
//   R      = sum_j lambda_j E[X_j^2] / 2        (mean residual work)
//   sigma_i = sum_{j <= i} rho_j
//   E[W_i] = R / ((1 - sigma_{i-1}) (1 - sigma_i))
//
// Slowdown follows by Lemma-1 style independence within a class:
// E[S_i] = E[W_i] E[1/X_i] (waiting time of a class-i request is independent
// of its own service time).  This lets tests validate the PriorityBackend
// against closed forms, and quantifies WHY strict priority cannot provide
// controllable spacing: the ratios are fixed by loads, not by operator knobs.
#pragma once

#include <vector>

#include "dist/distribution.hpp"

namespace psd {

class Mg1Priority {
 public:
  /// Classes ordered by priority (index 0 served first).  All classes share
  /// one processor of rate `rate`.
  Mg1Priority(std::vector<double> lambda,
              std::vector<const SizeDistribution*> dist, double rate = 1.0);

  std::size_t num_classes() const { return lambda_.size(); }
  double utilization() const;  ///< Total rho.
  bool stable() const { return utilization() < 1.0; }

  /// Expected queueing delay of class i (throws std::domain_error if the
  /// cumulative load through class i reaches 1).
  double expected_wait(std::size_t i) const;

  /// Expected slowdown of class i; requires finite E[1/X_i].
  double expected_slowdown(std::size_t i) const;

  /// All waits / slowdowns at once.
  std::vector<double> expected_waits() const;
  std::vector<double> expected_slowdowns() const;

 private:
  std::vector<double> lambda_;
  std::vector<double> mean_, m2_, mean_inv_;
  double rate_;
  double residual_;  ///< R = sum lambda_j E[(X_j/r)^2] / 2.
};

}  // namespace psd
