// Textbook M/M/1 FCFS results, used to validate the simulation engine
// (service = Exponential) independently of the Bounded Pareto machinery.
// Note slowdown has no finite expectation in M/M/1 (E[1/X] diverges), which
// is why the paper bounds the service-time distribution.
#pragma once

namespace psd {

class Mm1 {
 public:
  /// lambda: arrival rate; mu: service rate (1 / mean service time).
  Mm1(double lambda, double mu);

  double utilization() const;
  double expected_wait() const;          ///< rho / (mu - lambda).
  double expected_response() const;      ///< 1 / (mu - lambda).
  double expected_queue_length() const;  ///< rho^2 / (1 - rho) (waiting only).
  bool stable() const { return utilization() < 1.0; }

 private:
  void require_stable() const;

  double lambda_, mu_;
};

}  // namespace psd
