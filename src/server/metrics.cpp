#include "server/metrics.hpp"

#include "common/error.hpp"

namespace psd {

MetricsCollector::MetricsCollector(const MetricsConfig& cfg) : cfg_(cfg) {
  PSD_REQUIRE(cfg.num_classes > 0, "need at least one class");
  slowdown_.resize(cfg.num_classes);
  delay_.resize(cfg.num_classes);
  service_.resize(cfg.num_classes);
  series_.reserve(cfg.num_classes);
  for (std::size_t i = 0; i < cfg.num_classes; ++i) {
    series_.emplace_back(cfg.warmup_end, cfg.window);
  }
}

void MetricsCollector::on_complete(const Request& req) {
  PSD_REQUIRE(req.cls < slowdown_.size(), "class id out of range");
  PSD_CHECK(req.completed(), "on_complete with incomplete request");
  if (req.departure < cfg_.warmup_end) return;
  const double sd = req.slowdown();
  slowdown_[req.cls].add(sd);
  delay_[req.cls].add(req.delay());
  service_[req.cls].add(req.service_elapsed);
  series_[req.cls].add(req.departure, sd);
  if (cfg_.record_requests && req.departure >= cfg_.record_from &&
      req.departure < cfg_.record_to) {
    records_.push_back(req);
  }
}

void MetricsCollector::finalize() {
  for (auto& s : series_) s.finalize();
}

std::uint64_t MetricsCollector::completed_total() const {
  std::uint64_t n = 0;
  for (const auto& m : slowdown_) n += m.count();
  return n;
}

double MetricsCollector::system_slowdown() const {
  WeightedMean wm;
  for (const auto& m : slowdown_) {
    if (m.count() > 0) wm.add(m.mean(), static_cast<double>(m.count()));
  }
  return wm.mean();
}

std::vector<double> MetricsCollector::last_window_slowdowns() const {
  std::vector<double> out(slowdown_.size(), kNaN);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const auto& w = series_[i].windows();
    if (!w.empty() && w.back().count > 0) out[i] = w.back().mean;
  }
  return out;
}

}  // namespace psd
