#include "server/waiting_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

void WaitingQueue::advance(Time now) {
  if (now > last_change_) {
    area_ += static_cast<double>(size()) * (now - last_change_);
    last_change_ = now;
  }
}

void WaitingQueue::grow() {
  const std::size_t n = size();
  std::vector<Request> next(buf_.empty() ? 16 : buf_.size() * 2);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = buf_[(head_ + i) & mask_];
  }
  buf_ = std::move(next);
  mask_ = buf_.size() - 1;
  head_ = 0;
  tail_ = n;
}

void WaitingQueue::push(const Request& req, Time now) {
  advance(now);
  if (tail_ - head_ == buf_.size()) grow();
  buf_[tail_ & mask_] = req;
  ++tail_;
  ++arrivals_;
  max_depth_ = std::max(max_depth_, size());
}

Request WaitingQueue::pop(Time now) {
  PSD_CHECK(!empty(), "pop from empty waiting queue");
  advance(now);
  const Request& r = buf_[head_ & mask_];
  ++head_;
  return r;
}

const Request& WaitingQueue::front() const {
  PSD_CHECK(!empty(), "front of empty waiting queue");
  return buf_[head_ & mask_];
}

double WaitingQueue::length_time_integral(Time now) const {
  return area_ + static_cast<double>(size()) * (now - last_change_);
}

}  // namespace psd
