#include "server/waiting_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace psd {

void WaitingQueue::advance(Time now) {
  if (now > last_change_) {
    area_ += static_cast<double>(q_.size()) * (now - last_change_);
    last_change_ = now;
  }
}

void WaitingQueue::push(Request req, Time now) {
  advance(now);
  q_.push_back(std::move(req));
  ++arrivals_;
  max_depth_ = std::max(max_depth_, q_.size());
}

Request WaitingQueue::pop(Time now) {
  PSD_CHECK(!q_.empty(), "pop from empty waiting queue");
  advance(now);
  Request r = std::move(q_.front());
  q_.pop_front();
  return r;
}

const Request& WaitingQueue::front() const {
  PSD_CHECK(!q_.empty(), "front of empty waiting queue");
  return q_.front();
}

double WaitingQueue::length_time_integral(Time now) const {
  return area_ + static_cast<double>(q_.size()) * (now - last_change_);
}

}  // namespace psd
