// Rate-allocation strategy interface (paper Fig. 1, "rate allocator").
//
// Called periodically with the load estimator's per-class arrival-rate
// estimates; returns absolute per-class processing rates summing to the
// server capacity.  The paper's eq.-17 strategy lives in src/core; static
// baselines live in src/baselines.
#pragma once

#include <string>
#include <vector>

namespace psd {

class RateAllocator {
 public:
  virtual ~RateAllocator() = default;

  /// `lambda_hat[i]`: estimated arrival rate of class i (>= 0; zero means the
  /// estimator saw no arrivals).  Returns rates r with sum(r) == capacity.
  virtual std::vector<double> allocate(
      const std::vector<double>& lambda_hat) = 0;

  virtual std::string name() const = 0;

  /// Feedback hook: measured mean slowdown per class over the last window
  /// (NaN where a class completed nothing).  Default: ignored.  The adaptive
  /// extension (core/adaptive_psd) overrides this.
  virtual void observe_slowdowns(const std::vector<double>& /*mean_sd*/) {}
};

}  // namespace psd
