// Per-class FCFS waiting queue with occupancy statistics.
//
// Tracks a time-weighted queue-length integral so tests can cross-check
// Little's law (L = lambda W) against the analytic models.
#pragma once

#include <cstdint>
#include <deque>

#include "workload/request.hpp"

namespace psd {

class WaitingQueue {
 public:
  void push(Request req, Time now);

  /// Pop the head-of-line request.  Precondition: !empty().
  Request pop(Time now);

  /// Head-of-line request without removing it.  Precondition: !empty().
  const Request& front() const;

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  std::uint64_t total_arrivals() const { return arrivals_; }
  std::size_t max_depth() const { return max_depth_; }

  /// Integral of queue length over time up to `now` (finalize before reading).
  double length_time_integral(Time now) const;

 private:
  void advance(Time now);

  std::deque<Request> q_;
  std::uint64_t arrivals_ = 0;
  std::size_t max_depth_ = 0;
  Time last_change_ = 0.0;
  double area_ = 0.0;
};

}  // namespace psd
