// Per-class FCFS waiting queue with occupancy statistics.
//
// Backed by a power-of-two ring buffer (monotone head/tail counters, masked
// indexing): push and pop are one masked store/load each, with no deque
// chunk-map indirection on the per-request hot path.
//
// Tracks a time-weighted queue-length integral so tests can cross-check
// Little's law (L = lambda W) against the analytic models.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/request.hpp"

namespace psd {

class WaitingQueue {
 public:
  void push(const Request& req, Time now);

  /// Pop the head-of-line request.  Precondition: !empty().
  Request pop(Time now);

  /// Head-of-line request without removing it.  Precondition: !empty().
  const Request& front() const;

  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }

  std::uint64_t total_arrivals() const { return arrivals_; }
  std::size_t max_depth() const { return max_depth_; }

  /// Integral of queue length over time up to `now` (finalize before reading).
  double length_time_integral(Time now) const;

 private:
  void advance(Time now);
  void grow();

  std::vector<Request> buf_;  ///< Power-of-two capacity ring storage.
  std::uint64_t head_ = 0;    ///< Monotone pop counter; index = head_ & mask_.
  std::uint64_t tail_ = 0;    ///< Monotone push counter.
  std::uint64_t mask_ = 0;    ///< buf_.size() - 1 (0 while unallocated).
  std::uint64_t arrivals_ = 0;
  std::size_t max_depth_ = 0;
  Time last_change_ = 0.0;
  double area_ = 0.0;
};

}  // namespace psd
