#include "server/server.hpp"

#include <numeric>

#include "common/error.hpp"

namespace psd {

Server::Server(Simulator& sim, const ServerConfig& cfg,
               std::unique_ptr<SchedulerBackend> backend,
               std::unique_ptr<RateAllocator> allocator, Rng rng)
    : sim_(sim),
      cfg_(cfg),
      queues_(cfg.num_classes),
      backend_(std::move(backend)),
      allocator_(std::move(allocator)),
      rejected_(cfg.num_classes, 0),
      offered_count_(cfg.num_classes, 0),
      estimator_(cfg.num_classes,
                 cfg.realloc_period > 0.0 ? cfg.realloc_period : 1.0,
                 cfg.estimator_history),
      offered_(cfg.num_classes,
               cfg.realloc_period > 0.0 ? cfg.realloc_period : 1.0,
               cfg.estimator_history),
      metrics_(cfg.metrics) {
  PSD_REQUIRE(cfg.num_classes > 0, "need at least one class");
  PSD_REQUIRE(cfg.capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(backend_ != nullptr, "backend required");
  PSD_REQUIRE(cfg.metrics.num_classes == cfg.num_classes,
              "metrics class count mismatch");
  if (cfg.realloc_period > 0.0) {
    PSD_REQUIRE(allocator_ != nullptr,
                "allocator required when reallocation is enabled");
  }

  backend_->attach(sim_, queues_, cfg.capacity, rng, [this](Request&& req) {
    metrics_.on_complete(req);
    if (observer_) observer_(req);
  });

  if (!cfg.initial_rates.empty()) {
    PSD_REQUIRE(cfg.initial_rates.size() == cfg.num_classes,
                "initial rate vector size mismatch");
    const double total = std::accumulate(cfg.initial_rates.begin(),
                                         cfg.initial_rates.end(), 0.0);
    PSD_REQUIRE(total <= cfg.capacity * (1.0 + 1e-9),
                "initial rates exceed capacity");
    rates_ = cfg.initial_rates;
  } else {
    rates_.assign(cfg.num_classes,
                  cfg.capacity / static_cast<double>(cfg.num_classes));
  }
  backend_->set_rates(rates_);
}

void Server::start(Time origin) {
  if (cfg_.realloc_period <= 0.0) return;
  realloc_ = std::make_unique<PeriodicProcess>(
      sim_, cfg_.realloc_period, [this](Time t) { realloc_tick(t); });
  realloc_->start(origin + cfg_.realloc_period);
}

void Server::set_rates(const std::vector<double>& rates) {
  PSD_REQUIRE(rates.size() == cfg_.num_classes, "rate vector size mismatch");
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  PSD_REQUIRE(total <= cfg_.capacity * (1.0 + 1e-9),
              "rates exceed capacity");
  rates_ = rates;
  backend_->set_rates(rates_);
}

void Server::set_admission(std::unique_ptr<AdmissionController> admission) {
  admission_ = std::move(admission);
}

void Server::set_completion_observer(
    std::function<void(const Request&)> observer) {
  observer_ = std::move(observer);
}

std::uint64_t Server::rejected_total() const {
  std::uint64_t n = 0;
  for (auto r : rejected_) n += r;
  return n;
}

void Server::submit(const Request& req) {
  PSD_REQUIRE(req.cls < cfg_.num_classes, "class id out of range");
  PSD_REQUIRE(req.size > 0.0, "request size must be positive");
  ++submitted_;
  // The offered-load estimator sees everything (so the admission gate keeps
  // an accurate view of demand while shedding); the allocator's estimator
  // only sees what was actually admitted into the queues.  Without a gate
  // the two views coincide, so only the allocator's estimator runs — and
  // with reallocation disabled entirely (realloc_period == 0, e.g. the rt
  // runtime's shards, which measure load outside the server) nothing would
  // ever roll or read it, so the per-arrival update is skipped too.
  if (admission_ != nullptr) {
    ++offered_count_[req.cls];
    offered_.on_arrival(req.cls, req.size);
    if (!admission_->admit_request(req.cls, sim_.now(), req.size)) {
      ++rejected_[req.cls];
      return;
    }
  }
  if (cfg_.realloc_period > 0.0) estimator_.on_arrival(req.cls, req.size);
  const ClassId cls = req.cls;
  queues_[cls].push(req, sim_.now());
  backend_->notify_arrival(cls);
}

void Server::realloc_tick(Time now) {
  estimator_.roll(now);
  if (admission_ != nullptr) {
    offered_.roll(now);
    admission_->update(offered_.lambda_estimate());
  }
  allocator_->observe_slowdowns(metrics_.last_window_slowdowns());
  rates_ = allocator_->allocate(estimator_.lambda_estimate());
  PSD_CHECK(rates_.size() == cfg_.num_classes, "allocator size mismatch");
  backend_->set_rates(rates_);
  ++reallocs_;
}

void Server::finalize() { metrics_.finalize(); }

}  // namespace psd
