#include "server/load_estimator.hpp"

#include "common/error.hpp"

namespace psd {

LoadEstimator::LoadEstimator(std::size_t num_classes, Duration window,
                             std::size_t history)
    : n_(num_classes), window_(window), history_(history) {
  PSD_REQUIRE(num_classes > 0, "need at least one class");
  PSD_REQUIRE(window > 0.0, "window length must be positive");
  PSD_REQUIRE(history > 0, "history must be at least one window");
  cur_arrivals_.assign(n_, 0);
  cur_work_.assign(n_, 0.0);
}

void LoadEstimator::on_arrival(ClassId cls, Work size) {
  PSD_REQUIRE(cls < n_, "class id out of range");
  ++cur_arrivals_[cls];
  cur_work_[cls] += size;
}

void LoadEstimator::roll(Time now) {
  const Duration len = now - window_start_;
  PSD_REQUIRE(len > 0.0, "roll() before any time elapsed");
  WindowCounters w;
  w.arrivals = cur_arrivals_;
  w.work = cur_work_;
  w.length = len;
  closed_.push_back(std::move(w));
  ++total_closed_;
  while (closed_.size() > history_) closed_.pop_front();
  cur_arrivals_.assign(n_, 0);
  cur_work_.assign(n_, 0.0);
  window_start_ = now;
}

std::vector<double> LoadEstimator::lambda_estimate() const {
  std::vector<double> est(n_, 0.0);
  if (closed_.empty()) return est;
  Duration total_time = 0.0;
  std::vector<double> counts(n_, 0.0);
  for (const auto& w : closed_) {
    total_time += w.length;
    for (std::size_t i = 0; i < n_; ++i) {
      counts[i] += static_cast<double>(w.arrivals[i]);
    }
  }
  for (std::size_t i = 0; i < n_; ++i) est[i] = counts[i] / total_time;
  return est;
}

std::vector<double> LoadEstimator::work_rate_estimate() const {
  std::vector<double> est(n_, 0.0);
  if (closed_.empty()) return est;
  Duration total_time = 0.0;
  std::vector<double> work(n_, 0.0);
  for (const auto& w : closed_) {
    total_time += w.length;
    for (std::size_t i = 0; i < n_; ++i) work[i] += w.work[i];
  }
  for (std::size_t i = 0; i < n_; ++i) est[i] = work[i] / total_time;
  return est;
}

}  // namespace psd
