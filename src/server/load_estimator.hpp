// Windowed per-class load estimation (paper §4.1):
//   "The load estimator measured the arrival rate and the incurred load for
//    every class. ... the load for next thousand time units was the average
//    load in past five thousand time units."
//
// Windows have fixed length; at each roll the counters of the closing window
// are archived and the estimate becomes the mean over the last `history`
// archived windows.  Both count-based (arrivals/time) and work-based
// (arrived work/time) estimates are exposed; eq. 17 consumes the count-based
// lambda estimate together with the known E[X].
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"

namespace psd {

class LoadEstimator {
 public:
  LoadEstimator(std::size_t num_classes, Duration window,
                std::size_t history = 5);

  void on_arrival(ClassId cls, Work size);

  /// Close the current window at time `now` (its start is tracked
  /// internally); call at every window boundary.
  void roll(Time now);

  /// Estimated arrival rate per class: mean of the last `history` closed
  /// windows.  Zero for classes with no observed arrivals; empty history
  /// (cold start) yields all-zeros.
  std::vector<double> lambda_estimate() const;

  /// Estimated work arrival rate per class (utilization demand given
  /// capacity 1).
  std::vector<double> work_rate_estimate() const;

  bool warm() const { return !closed_.empty(); }
  std::size_t windows_closed() const { return total_closed_; }
  Duration window_length() const { return window_; }

 private:
  struct WindowCounters {
    std::vector<std::uint64_t> arrivals;
    std::vector<double> work;
    Duration length = 0.0;
  };

  std::size_t n_;
  Duration window_;
  std::size_t history_;
  Time window_start_ = 0.0;
  std::vector<std::uint64_t> cur_arrivals_;
  std::vector<double> cur_work_;
  std::deque<WindowCounters> closed_;
  std::size_t total_closed_ = 0;
};

}  // namespace psd
