// Measurement pipeline for one simulation run.
//
// Collects, per class and after a warmup cutoff:
//   * whole-run slowdown / delay / service-time moments,
//   * per-window mean slowdowns (the paper measures every 1000 time units;
//     Figs. 5-6 build percentiles over these windows),
//   * optionally, individual request records inside a time range
//     (Figs. 7-8 plot single requests in [60000, 61000)).
// The "system slowdown" is the completed-request-weighted mean over classes.
#pragma once

#include <optional>
#include <vector>

#include "stats/interval_series.hpp"
#include "stats/online.hpp"
#include "workload/request.hpp"

namespace psd {

struct MetricsConfig {
  std::size_t num_classes = 2;
  Time warmup_end = 0.0;     ///< Completions before this are ignored.
  Duration window = 1000.0;  ///< Per-window series length (raw time).
  bool record_requests = false;
  Time record_from = 0.0;
  Time record_to = 0.0;
};

/// Count + sum accumulator: the only statistic the run pipeline reads from
/// whole-run metrics is the mean, so the per-completion cost is one add
/// instead of a full Welford update (which pays a divide per sample).
struct MeanStat {
  std::uint64_t n = 0;
  double sum = 0.0;

  void add(double x) {
    ++n;
    sum += x;
  }
  std::uint64_t count() const { return n; }
  double mean() const { return n ? sum / static_cast<double>(n) : kNaN; }
};

class MetricsCollector {
 public:
  explicit MetricsCollector(const MetricsConfig& cfg);

  void on_complete(const Request& req);

  /// Close open windows; call once when the run ends.
  void finalize();

  // --- whole-run statistics (post-warmup) ---
  const MeanStat& slowdown(ClassId cls) const { return slowdown_[cls]; }
  const MeanStat& delay(ClassId cls) const { return delay_[cls]; }
  const MeanStat& service(ClassId cls) const { return service_[cls]; }
  std::uint64_t completed(ClassId cls) const { return slowdown_[cls].count(); }
  std::uint64_t completed_total() const;

  /// Completed-weighted mean slowdown across classes.
  double system_slowdown() const;

  // --- per-window series ---
  const std::vector<IntervalStat>& windows(ClassId cls) const {
    return series_[cls].windows();
  }

  /// Mean slowdown of the most recent *closed* window per class (NaN where a
  /// class completed nothing); feeds adaptive allocators.
  std::vector<double> last_window_slowdowns() const;

  // --- per-request records (optional) ---
  const std::vector<Request>& records() const { return records_; }

  std::size_t num_classes() const { return slowdown_.size(); }

 private:
  MetricsConfig cfg_;
  std::vector<MeanStat> slowdown_;
  std::vector<MeanStat> delay_;
  std::vector<MeanStat> service_;
  std::vector<IntervalSeries> series_;
  std::vector<Request> records_;
};

}  // namespace psd
