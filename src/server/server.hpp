// The composed Internet-server model of paper Fig. 1: waiting queues + task
// servers (a scheduling backend) + load estimator + rate allocator + metrics.
//
// Control loop: every `realloc_period` the estimator window closes, the
// allocator maps the lambda estimates to fresh per-class rates, and the
// backend re-scales in-flight service accordingly — exactly the paper's
// "the processing rate was reallocated for every thousand time units".
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "admission/admission.hpp"
#include "server/allocator.hpp"
#include "server/load_estimator.hpp"
#include "server/metrics.hpp"
#include "sched/backend.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "workload/sink.hpp"

namespace psd {

struct ServerConfig {
  std::size_t num_classes = 2;
  double capacity = 1.0;
  Duration realloc_period = 0.0;   ///< 0 disables periodic reallocation.
  std::size_t estimator_history = 5;
  MetricsConfig metrics;
  /// Initial rates before the first reallocation; empty = equal split.
  std::vector<double> initial_rates;
};

class Server final : public RequestSink {
 public:
  /// Takes ownership of the backend and allocator.  `allocator` may be null
  /// when realloc_period == 0 (fixed initial rates forever).
  Server(Simulator& sim, const ServerConfig& cfg,
         std::unique_ptr<SchedulerBackend> backend,
         std::unique_ptr<RateAllocator> allocator, Rng rng);

  /// Optional pre-queue admission gate; decisions latch per estimation
  /// window.  Null (default) admits everything.
  void set_admission(std::unique_ptr<AdmissionController> admission);

  /// Optional observer invoked after metrics for every completion (e.g. a
  /// cluster dispatcher tracking outstanding work per node).
  void set_completion_observer(std::function<void(const Request&)> observer);

  /// Begin the reallocation loop (first tick one period after `origin`).
  void start(Time origin);

  /// Externally install absolute per-class rates (sum <= capacity).  The rt
  /// runtime makes reallocation decisions outside the simulation (its
  /// controller thread spans shards), so the transition realloc_tick performs
  /// internally is also exposed as an entry point.
  void set_rates(const std::vector<double>& rates);

  // RequestSink: entry point for generators / trace players.
  void submit(const Request& req) override;

  /// Flush window series at end of run.
  void finalize();

  const MetricsCollector& metrics() const { return metrics_; }
  MetricsCollector& metrics() { return metrics_; }
  const std::vector<double>& current_rates() const { return rates_; }
  /// Estimator over ADMITTED load (feeds the rate allocator).  Only
  /// populated while periodic reallocation is enabled (realloc_period > 0);
  /// otherwise nothing rolls it, so the per-arrival update is skipped.
  const LoadEstimator& estimator() const { return estimator_; }
  /// Estimator over OFFERED load including rejected requests (feeds the
  /// admission gate, so shedding decisions see true demand).  Only populated
  /// while an admission controller is installed; without one it would just
  /// duplicate estimator(), so the per-arrival update is skipped.
  const LoadEstimator& offered_estimator() const { return offered_; }
  const SchedulerBackend& backend() const { return *backend_; }
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t reallocations() const { return reallocs_; }
  std::uint64_t rejected(ClassId cls) const { return rejected_[cls]; }
  std::uint64_t rejected_total() const;
  /// Per-class offered arrivals (admitted + rejected).  Counted only while
  /// an admission controller is installed (0 otherwise) — shed-rate
  /// denominators, same gating as offered_estimator().
  std::uint64_t offered(ClassId cls) const { return offered_count_[cls]; }

 private:
  void realloc_tick(Time now);

  Simulator& sim_;
  ServerConfig cfg_;
  std::vector<WaitingQueue> queues_;
  std::unique_ptr<SchedulerBackend> backend_;
  std::unique_ptr<RateAllocator> allocator_;
  std::unique_ptr<AdmissionController> admission_;
  std::function<void(const Request&)> observer_;
  std::vector<std::uint64_t> rejected_;
  std::vector<std::uint64_t> offered_count_;
  LoadEstimator estimator_;
  LoadEstimator offered_;
  MetricsCollector metrics_;
  std::unique_ptr<PeriodicProcess> realloc_;
  std::vector<double> rates_;
  std::uint64_t submitted_ = 0;
  std::uint64_t reallocs_ = 0;
};

}  // namespace psd
