// Declarative experiment description, expressed in the paper's units:
// one time unit (tu) = processing time of an average-size request at full
// capacity = E[X] / C.  The runner converts to raw simulator time.
//
// Paper protocol defaults (§4.1): BP(1.5, 0.1, 100); warmup 10,000 tu;
// measurement 60,000 tu sampled every 1,000 tu; load estimated from the last
// 5,000 tu; rates reallocated every 1,000 tu; equal class loads; results
// averaged over many independent runs.
#pragma once

#include <cstdint>
#include <vector>

#include "admission/admission.hpp"
#include "cluster/assignment.hpp"
#include "core/adaptive_psd.hpp"
#include "dist/factory.hpp"
#include "sched/dedicated_rate.hpp"
#include "workload/class_spec.hpp"
#include "workload/load_profile.hpp"

namespace psd {

enum class BackendKind {
  kDedicated,  ///< Paper's task-server-per-class model (default).
  kSfq,        ///< Work-conserving packet-by-packet GPS.
  kLottery,    ///< Randomized proportional share with quanta.
  kWtp,        ///< PDD baseline: waiting-time priority.
  kPad,        ///< PDD baseline: proportional average delay.
  kHpd,        ///< PDD baseline: hybrid proportional delay.
  kStrict,     ///< Strict priority baseline.
};

enum class AllocatorKind {
  kPsd,               ///< eq. 17 (the paper's strategy).
  kAdaptivePsd,       ///< eq. 17 + feedback bias (future-work extension).
  kEqualShare,
  kLoadProportional,
  kNone,              ///< Keep initial rates forever (no reallocation).
};

struct ScenarioConfig {
  // --- classes & workload ---
  std::vector<double> delta = {1.0, 2.0};
  double load = 0.5;                 ///< Target utilization sum.
  std::vector<double> load_share;    ///< Empty = equal shares (paper).
  DistSpec size_dist = DistSpec::bounded_pareto(1.5, 0.1, 100.0);
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double burstiness = 1.0;           ///< For ArrivalKind::kBursty.
  double mmpp_sojourn = 10.0;  ///< kBursty: mean high-phase length, in mean
                               ///< interarrivals (make_bursty_arrivals).
  double mmpp_duty = 0.5;      ///< kBursty: high-phase time fraction.
  /// Nonstationary modulation of every class's arrival process; times in
  /// paper tu from the run start (warmup included).  kNone = stationary.
  LoadProfile profile;
  /// Half-width of the relative tolerance band used by the ratio
  /// re-convergence metric when `profile` has a settling point.
  double converge_tol = 0.25;
  double capacity = 1.0;

  // --- measurement protocol (paper time units) ---
  double warmup_tu = 10000.0;
  double measure_tu = 60000.0;
  double window_tu = 1000.0;   ///< Slowdown sampling window.
  double realloc_tu = 1000.0;  ///< Estimator window == reallocation period.
  std::size_t estimator_history = 5;

  // --- machinery ---
  BackendKind backend = BackendKind::kDedicated;
  AllocatorKind allocator = AllocatorKind::kPsd;
  AdaptiveConfig adaptive;           ///< For kAdaptivePsd.
  double lottery_quantum_tu = 1.0;
  RateChangePolicy rate_change = RateChangePolicy::kRescaleRemaining;
  double rho_max = 0.98;
  double min_residual_share = 1e-3;
  /// Pre-queue admission gate (src/admission).  kNone (default) installs
  /// nothing and keeps every output byte-identical; any other kind permits
  /// beyond-capacity loads (load >= 1 = deliberate overload) and surfaces
  /// per-class shed counts + goodput in RunResult.
  AdmissionSpec admission;

  // --- cluster composition (src/cluster) ---
  /// 1 = the paper's single node.  > 1 builds `cluster_nodes` identical
  /// servers (each of `capacity`, running its own Fig.-1 pipeline) behind a
  /// task-assignment dispatcher; `load` stays the per-node target
  /// utilization, so total arrival rate scales with the node count.
  std::size_t cluster_nodes = 1;
  AssignmentPolicy cluster_policy = AssignmentPolicy::kRoundRobin;
  std::size_t cluster_jsq_d = 2;  ///< JSQ(d) sample width (kJsq only).

  // --- per-request recording (Figs. 7-8) ---
  bool record_requests = false;
  double record_from_tu = 60000.0;
  double record_to_tu = 61000.0;

  std::uint64_t seed = 0x5EEDBA5EULL;

  std::size_t num_classes() const { return delta.size(); }

  /// True per-class arrival rates (raw time) implied by load and shares.
  std::vector<double> true_lambdas() const;

  /// Raw-time length of one paper time unit for this config.
  double time_unit() const;

  void validate() const;
};

}  // namespace psd
