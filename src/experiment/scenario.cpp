#include "experiment/scenario.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "dist/sampler.hpp"

namespace psd {

double ScenarioConfig::time_unit() const {
  return make_sampler(size_dist).mean() / capacity;
}

std::vector<double> ScenarioConfig::true_lambdas() const {
  const double mean = make_sampler(size_dist).mean();
  if (load_share.empty()) {
    return rates_for_equal_load(load, capacity, mean, delta.size());
  }
  return rates_for_load(load, capacity, mean, load_share);
}

void ScenarioConfig::validate() const {
  PSD_REQUIRE(!delta.empty(), "need at least one class");
  for (std::size_t i = 0; i < delta.size(); ++i) {
    PSD_REQUIRE(delta[i] > 0.0, "delta must be positive");
    if (i > 0) {
      PSD_REQUIRE(delta[i] >= delta[i - 1],
                  "deltas must be non-decreasing (class 0 is highest)");
    }
  }
  if (admission.active()) {
    // An admission gate makes beyond-capacity offered load a deliberate,
    // survivable regime; without one the system must stay stable.
    PSD_REQUIRE(load > 0.0, "load must be positive");
  } else {
    PSD_REQUIRE(load > 0.0 && load < 1.0,
                "load must be in (0,1) for a stable system");
  }
  admission.validate();
  if (!admission.active() && load * profile.peak_factor() > 1.0) {
    std::fprintf(stderr,
                 "psd: warning: peak offered utilization %.3g (load %g x "
                 "profile peak %g) exceeds capacity with admission off; the "
                 "queues grow without bound during the peak\n",
                 load * profile.peak_factor(), load, profile.peak_factor());
  }
  PSD_REQUIRE(capacity > 0.0, "capacity must be positive");
  PSD_REQUIRE(warmup_tu >= 0.0, "warmup must be >= 0");
  PSD_REQUIRE(measure_tu > 0.0, "measurement length must be positive");
  PSD_REQUIRE(window_tu > 0.0, "window must be positive");
  PSD_REQUIRE(realloc_tu >= 0.0, "realloc period must be >= 0");
  PSD_REQUIRE(!load_share.empty() ? load_share.size() == delta.size() : true,
              "load_share size mismatch");
  PSD_REQUIRE(cluster_nodes >= 1, "need at least one cluster node");
  if (arrivals == ArrivalKind::kBursty) {
    PSD_REQUIRE(burstiness >= 1.0, "burstiness must be >= 1");
    PSD_REQUIRE(mmpp_sojourn > 0.0, "mmpp sojourn must be positive");
    PSD_REQUIRE(mmpp_duty > 0.0 && mmpp_duty < 1.0,
                "mmpp duty must be in (0,1)");
  }
  profile.validate();
  PSD_REQUIRE(converge_tol > 0.0, "convergence tolerance must be positive");
  if (cluster_nodes > 1 && cluster_policy == AssignmentPolicy::kSizeInterval) {
    PSD_REQUIRE(size_dist.kind == DistSpec::Kind::kBoundedPareto,
                "size-interval (SITA-E) cutoffs require a bounded-pareto "
                "service-time distribution");
  }
  if (cluster_policy == AssignmentPolicy::kJsq) {
    PSD_REQUIRE(cluster_jsq_d >= 1, "jsq sample size d must be >= 1");
  }
  if (record_requests) {
    PSD_REQUIRE(record_to_tu > record_from_tu, "empty recording window");
  }
}

}  // namespace psd
