// Fixed-width ASCII table / CSV output for the bench harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace psd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row of already-formatted cells (size must match headers).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision; NaN prints "-".
  void add_row(const std::vector<double>& values, int precision = 4);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Format helper shared with bench mains.
  static std::string fmt(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psd
