// Lockstep batch execution: K independent replications of one scenario in a
// single task, on the lane-stepped kernel (src/sim/lane_stepper.hpp +
// src/dist/lane_block.hpp) instead of K separate Simulator instances.
//
// The kernel replaces only the *orchestration* — event heap, stream
// registry, InlineFunction dispatch, the Server/backend virtual call chain —
// with a flat per-lane loop over a SoA clock grid.  Every piece of stateful
// arithmetic (WaitingQueue, MetricsCollector, LoadEstimator, the allocator,
// the sampler/arrival draw streams, the dedicated-rate slot updates in the
// same floating-point operation order) is the same code or the same ops as
// the per-task path, so per-lane results are BITWISE identical to
// run_scenario(cfg, first_run_index + lane) — the contract
// tests/test_lockstep.cpp pins.  Shared immutable tables (the sampler's
// ziggurat/alias data, the arrival prototypes, the scenario protocol) are
// built once per point and shared across lanes.
#pragma once

#include <cstdint>
#include <vector>

#include "experiment/runner.hpp"

namespace psd {

/// True when `cfg` runs on the lane-stepped kernel: single node with the
/// dedicated-rate backend (the paper's model — every campaign default).
/// Other backends/cluster scenarios still accept lockstep scheduling; each
/// lane of the group just executes the regular per-task path.
bool lockstep_eligible(const ScenarioConfig& cfg);

/// Run `lanes` replications with run indices first_run_index ..
/// first_run_index + lanes - 1.  Results are returned in lane order and are
/// bitwise identical to calling run_scenario per index.
std::vector<RunResult> run_scenario_lanes(const ScenarioConfig& cfg,
                                          std::uint64_t first_run_index,
                                          std::size_t lanes);

}  // namespace psd
