// Canned scenario builders matching the paper's evaluation section, one per
// figure family, so every bench binary states only what varies.
#pragma once

#include <vector>

#include "experiment/scenario.hpp"

namespace psd {

/// Load sweep used across Figs. 2-6 and 9-10 (percent utilization).
/// The paper plots 0-100%; we sweep 5-95% (0% has no slowdown, 100% is
/// unstable).
std::vector<double> standard_load_sweep();

/// Baseline two-class scenario of §4.1-§4.2: BP(1.5, 0.1, 100), equal class
/// loads, deltas (1, delta2), dedicated-rate backend, eq.-17 allocator.
ScenarioConfig two_class_scenario(double delta2, double load_percent);

/// Three-class scenario with deltas (1, 2, 3) (Figs. 4, 6, 10).
ScenarioConfig three_class_scenario(double load_percent);

/// Fig. 7/8: per-request recording in [60000, 61000) tu, single run.
ScenarioConfig individual_request_scenario(double load_percent);

/// Fig. 11: shape-parameter sweep grid (alpha in [1.0, 2.0]).
std::vector<double> shape_parameter_sweep();

/// Fig. 12: upper-bound sweep grid (p in [100, 10000], log-spaced).
std::vector<double> upper_bound_sweep();

}  // namespace psd
